file(REMOVE_RECURSE
  "CMakeFiles/tbp.dir/comm/communicator.cc.o"
  "CMakeFiles/tbp.dir/comm/communicator.cc.o.d"
  "CMakeFiles/tbp.dir/common/error.cc.o"
  "CMakeFiles/tbp.dir/common/error.cc.o.d"
  "CMakeFiles/tbp.dir/common/types.cc.o"
  "CMakeFiles/tbp.dir/common/types.cc.o.d"
  "CMakeFiles/tbp.dir/perf/cost_model.cc.o"
  "CMakeFiles/tbp.dir/perf/cost_model.cc.o.d"
  "CMakeFiles/tbp.dir/perf/machine.cc.o"
  "CMakeFiles/tbp.dir/perf/machine.cc.o.d"
  "CMakeFiles/tbp.dir/perf/qdwh_model.cc.o"
  "CMakeFiles/tbp.dir/perf/qdwh_model.cc.o.d"
  "CMakeFiles/tbp.dir/runtime/engine.cc.o"
  "CMakeFiles/tbp.dir/runtime/engine.cc.o.d"
  "libtbp.a"
  "libtbp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
