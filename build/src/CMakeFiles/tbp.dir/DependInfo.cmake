
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/communicator.cc" "src/CMakeFiles/tbp.dir/comm/communicator.cc.o" "gcc" "src/CMakeFiles/tbp.dir/comm/communicator.cc.o.d"
  "/root/repo/src/common/error.cc" "src/CMakeFiles/tbp.dir/common/error.cc.o" "gcc" "src/CMakeFiles/tbp.dir/common/error.cc.o.d"
  "/root/repo/src/common/types.cc" "src/CMakeFiles/tbp.dir/common/types.cc.o" "gcc" "src/CMakeFiles/tbp.dir/common/types.cc.o.d"
  "/root/repo/src/perf/cost_model.cc" "src/CMakeFiles/tbp.dir/perf/cost_model.cc.o" "gcc" "src/CMakeFiles/tbp.dir/perf/cost_model.cc.o.d"
  "/root/repo/src/perf/machine.cc" "src/CMakeFiles/tbp.dir/perf/machine.cc.o" "gcc" "src/CMakeFiles/tbp.dir/perf/machine.cc.o.d"
  "/root/repo/src/perf/qdwh_model.cc" "src/CMakeFiles/tbp.dir/perf/qdwh_model.cc.o" "gcc" "src/CMakeFiles/tbp.dir/perf/qdwh_model.cc.o.d"
  "/root/repo/src/runtime/engine.cc" "src/CMakeFiles/tbp.dir/runtime/engine.cc.o" "gcc" "src/CMakeFiles/tbp.dir/runtime/engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
