# Empty dependencies file for tbp.
# This may be replaced when dependencies are built.
