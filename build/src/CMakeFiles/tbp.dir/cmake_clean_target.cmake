file(REMOVE_RECURSE
  "libtbp.a"
)
