# Empty dependencies file for svd_via_polar.
# This may be replaced when dependencies are built.
