file(REMOVE_RECURSE
  "CMakeFiles/svd_via_polar.dir/svd_via_polar.cpp.o"
  "CMakeFiles/svd_via_polar.dir/svd_via_polar.cpp.o.d"
  "svd_via_polar"
  "svd_via_polar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svd_via_polar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
