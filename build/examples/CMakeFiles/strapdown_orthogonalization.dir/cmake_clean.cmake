file(REMOVE_RECURSE
  "CMakeFiles/strapdown_orthogonalization.dir/strapdown_orthogonalization.cpp.o"
  "CMakeFiles/strapdown_orthogonalization.dir/strapdown_orthogonalization.cpp.o.d"
  "strapdown_orthogonalization"
  "strapdown_orthogonalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strapdown_orthogonalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
