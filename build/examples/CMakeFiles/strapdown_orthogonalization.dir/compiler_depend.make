# Empty compiler generated dependencies file for strapdown_orthogonalization.
# This may be replaced when dependencies are built.
