file(REMOVE_RECURSE
  "CMakeFiles/spectrum_slicing.dir/spectrum_slicing.cpp.o"
  "CMakeFiles/spectrum_slicing.dir/spectrum_slicing.cpp.o.d"
  "spectrum_slicing"
  "spectrum_slicing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectrum_slicing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
