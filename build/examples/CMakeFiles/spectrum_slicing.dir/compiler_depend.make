# Empty compiler generated dependencies file for spectrum_slicing.
# This may be replaced when dependencies are built.
