# Empty compiler generated dependencies file for procrustes.
# This may be replaced when dependencies are built.
