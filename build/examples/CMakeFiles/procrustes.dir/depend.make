# Empty dependencies file for procrustes.
# This may be replaced when dependencies are built.
