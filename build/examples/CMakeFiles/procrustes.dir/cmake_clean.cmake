file(REMOVE_RECURSE
  "CMakeFiles/procrustes.dir/procrustes.cpp.o"
  "CMakeFiles/procrustes.dir/procrustes.cpp.o.d"
  "procrustes"
  "procrustes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procrustes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
