file(REMOVE_RECURSE
  "CMakeFiles/test_qdwh_svd.dir/test_qdwh_svd.cc.o"
  "CMakeFiles/test_qdwh_svd.dir/test_qdwh_svd.cc.o.d"
  "test_qdwh_svd"
  "test_qdwh_svd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qdwh_svd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
