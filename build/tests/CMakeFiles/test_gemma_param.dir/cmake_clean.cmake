file(REMOVE_RECURSE
  "CMakeFiles/test_gemma_param.dir/test_gemma_param.cc.o"
  "CMakeFiles/test_gemma_param.dir/test_gemma_param.cc.o.d"
  "test_gemma_param"
  "test_gemma_param.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gemma_param.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
