# Empty compiler generated dependencies file for test_gemma_param.
# This may be replaced when dependencies are built.
