file(REMOVE_RECURSE
  "CMakeFiles/test_blas_householder.dir/test_blas_householder.cc.o"
  "CMakeFiles/test_blas_householder.dir/test_blas_householder.cc.o.d"
  "test_blas_householder"
  "test_blas_householder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blas_householder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
