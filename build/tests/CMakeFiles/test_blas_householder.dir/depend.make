# Empty dependencies file for test_blas_householder.
# This may be replaced when dependencies are built.
