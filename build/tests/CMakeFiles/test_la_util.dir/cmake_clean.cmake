file(REMOVE_RECURSE
  "CMakeFiles/test_la_util.dir/test_la_util.cc.o"
  "CMakeFiles/test_la_util.dir/test_la_util.cc.o.d"
  "test_la_util"
  "test_la_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_la_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
