# Empty dependencies file for test_la_util.
# This may be replaced when dependencies are built.
