file(REMOVE_RECURSE
  "CMakeFiles/test_blas_factor.dir/test_blas_factor.cc.o"
  "CMakeFiles/test_blas_factor.dir/test_blas_factor.cc.o.d"
  "test_blas_factor"
  "test_blas_factor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blas_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
