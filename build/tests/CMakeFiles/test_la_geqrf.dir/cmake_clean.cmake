file(REMOVE_RECURSE
  "CMakeFiles/test_la_geqrf.dir/test_la_geqrf.cc.o"
  "CMakeFiles/test_la_geqrf.dir/test_la_geqrf.cc.o.d"
  "test_la_geqrf"
  "test_la_geqrf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_la_geqrf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
