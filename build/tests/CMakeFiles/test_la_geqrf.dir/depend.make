# Empty dependencies file for test_la_geqrf.
# This may be replaced when dependencies are built.
