file(REMOVE_RECURSE
  "CMakeFiles/test_zolopd.dir/test_zolopd.cc.o"
  "CMakeFiles/test_zolopd.dir/test_zolopd.cc.o.d"
  "test_zolopd"
  "test_zolopd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zolopd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
