# Empty dependencies file for test_zolopd.
# This may be replaced when dependencies are built.
