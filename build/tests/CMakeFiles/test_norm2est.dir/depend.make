# Empty dependencies file for test_norm2est.
# This may be replaced when dependencies are built.
