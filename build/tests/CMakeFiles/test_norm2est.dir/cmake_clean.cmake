file(REMOVE_RECURSE
  "CMakeFiles/test_norm2est.dir/test_norm2est.cc.o"
  "CMakeFiles/test_norm2est.dir/test_norm2est.cc.o.d"
  "test_norm2est"
  "test_norm2est.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_norm2est.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
