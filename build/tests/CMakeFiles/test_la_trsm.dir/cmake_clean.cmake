file(REMOVE_RECURSE
  "CMakeFiles/test_la_trsm.dir/test_la_trsm.cc.o"
  "CMakeFiles/test_la_trsm.dir/test_la_trsm.cc.o.d"
  "test_la_trsm"
  "test_la_trsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_la_trsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
