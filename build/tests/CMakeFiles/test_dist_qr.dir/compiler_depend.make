# Empty compiler generated dependencies file for test_dist_qr.
# This may be replaced when dependencies are built.
