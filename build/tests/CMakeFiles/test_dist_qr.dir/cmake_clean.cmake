file(REMOVE_RECURSE
  "CMakeFiles/test_dist_qr.dir/test_dist_qr.cc.o"
  "CMakeFiles/test_dist_qr.dir/test_dist_qr.cc.o.d"
  "test_dist_qr"
  "test_dist_qr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_qr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
