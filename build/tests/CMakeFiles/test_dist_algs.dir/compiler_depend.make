# Empty compiler generated dependencies file for test_dist_algs.
# This may be replaced when dependencies are built.
