file(REMOVE_RECURSE
  "CMakeFiles/test_dist_algs.dir/test_dist_algs.cc.o"
  "CMakeFiles/test_dist_algs.dir/test_dist_algs.cc.o.d"
  "test_dist_algs"
  "test_dist_algs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_algs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
