# Empty dependencies file for test_geqrf_param.
# This may be replaced when dependencies are built.
