file(REMOVE_RECURSE
  "CMakeFiles/test_geqrf_param.dir/test_geqrf_param.cc.o"
  "CMakeFiles/test_geqrf_param.dir/test_geqrf_param.cc.o.d"
  "test_geqrf_param"
  "test_geqrf_param.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geqrf_param.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
