file(REMOVE_RECURSE
  "CMakeFiles/test_tiled_matrix.dir/test_tiled_matrix.cc.o"
  "CMakeFiles/test_tiled_matrix.dir/test_tiled_matrix.cc.o.d"
  "test_tiled_matrix"
  "test_tiled_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tiled_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
