file(REMOVE_RECURSE
  "CMakeFiles/test_condest.dir/test_condest.cc.o"
  "CMakeFiles/test_condest.dir/test_condest.cc.o.d"
  "test_condest"
  "test_condest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_condest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
