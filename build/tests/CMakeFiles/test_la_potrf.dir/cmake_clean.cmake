file(REMOVE_RECURSE
  "CMakeFiles/test_la_potrf.dir/test_la_potrf.cc.o"
  "CMakeFiles/test_la_potrf.dir/test_la_potrf.cc.o.d"
  "test_la_potrf"
  "test_la_potrf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_la_potrf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
