# Empty dependencies file for test_la_potrf.
# This may be replaced when dependencies are built.
