file(REMOVE_RECURSE
  "CMakeFiles/test_ref.dir/test_ref.cc.o"
  "CMakeFiles/test_ref.dir/test_ref.cc.o.d"
  "test_ref"
  "test_ref.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
