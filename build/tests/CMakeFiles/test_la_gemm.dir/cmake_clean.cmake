file(REMOVE_RECURSE
  "CMakeFiles/test_la_gemm.dir/test_la_gemm.cc.o"
  "CMakeFiles/test_la_gemm.dir/test_la_gemm.cc.o.d"
  "test_la_gemm"
  "test_la_gemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_la_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
