file(REMOVE_RECURSE
  "CMakeFiles/test_qdwh_param.dir/test_qdwh_param.cc.o"
  "CMakeFiles/test_qdwh_param.dir/test_qdwh_param.cc.o.d"
  "test_qdwh_param"
  "test_qdwh_param.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qdwh_param.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
