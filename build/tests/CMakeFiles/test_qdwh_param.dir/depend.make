# Empty dependencies file for test_qdwh_param.
# This may be replaced when dependencies are built.
