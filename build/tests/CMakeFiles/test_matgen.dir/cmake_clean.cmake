file(REMOVE_RECURSE
  "CMakeFiles/test_matgen.dir/test_matgen.cc.o"
  "CMakeFiles/test_matgen.dir/test_matgen.cc.o.d"
  "test_matgen"
  "test_matgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_matgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
