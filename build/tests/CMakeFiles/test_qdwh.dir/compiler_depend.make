# Empty compiler generated dependencies file for test_qdwh.
# This may be replaced when dependencies are built.
