file(REMOVE_RECURSE
  "CMakeFiles/test_qdwh.dir/test_qdwh.cc.o"
  "CMakeFiles/test_qdwh.dir/test_qdwh.cc.o.d"
  "test_qdwh"
  "test_qdwh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qdwh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
