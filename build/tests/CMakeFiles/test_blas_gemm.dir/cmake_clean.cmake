file(REMOVE_RECURSE
  "CMakeFiles/test_blas_gemm.dir/test_blas_gemm.cc.o"
  "CMakeFiles/test_blas_gemm.dir/test_blas_gemm.cc.o.d"
  "test_blas_gemm"
  "test_blas_gemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blas_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
