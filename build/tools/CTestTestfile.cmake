# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(driver_qdwh "/root/repo/build/tools/tbp_driver" "--algo" "qdwh" "--n" "64" "--cond" "1e10")
set_tests_properties(driver_qdwh PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(driver_zolo "/root/repo/build/tools/tbp_driver" "--algo" "zolo" "--n" "48" "--r" "4")
set_tests_properties(driver_zolo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(driver_mixed "/root/repo/build/tools/tbp_driver" "--algo" "mixed" "--n" "64" "--cond" "1e4")
set_tests_properties(driver_mixed PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(driver_newton "/root/repo/build/tools/tbp_driver" "--algo" "newton" "--n" "48" "--cond" "1e3")
set_tests_properties(driver_newton PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(driver_svdpd "/root/repo/build/tools/tbp_driver" "--algo" "svdpd" "--n" "48" "--cond" "1e6")
set_tests_properties(driver_svdpd PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(driver_svd "/root/repo/build/tools/tbp_driver" "--algo" "svd" "--n" "48" "--cond" "1e4")
set_tests_properties(driver_svd PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(driver_complex_forkjoin "/root/repo/build/tools/tbp_driver" "--algo" "qdwh" "--n" "48" "--type" "z" "--mode" "forkjoin")
set_tests_properties(driver_complex_forkjoin PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
