# Empty compiler generated dependencies file for tbp_driver.
# This may be replaced when dependencies are built.
