file(REMOVE_RECURSE
  "CMakeFiles/tbp_driver.dir/tbp_driver.cc.o"
  "CMakeFiles/tbp_driver.dir/tbp_driver.cc.o.d"
  "tbp_driver"
  "tbp_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbp_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
