# Empty compiler generated dependencies file for bench_flops_model.
# This may be replaced when dependencies are built.
