file(REMOVE_RECURSE
  "CMakeFiles/bench_tile_tuning.dir/bench_tile_tuning.cc.o"
  "CMakeFiles/bench_tile_tuning.dir/bench_tile_tuning.cc.o.d"
  "bench_tile_tuning"
  "bench_tile_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tile_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
