# Empty dependencies file for bench_tile_tuning.
# This may be replaced when dependencies are built.
