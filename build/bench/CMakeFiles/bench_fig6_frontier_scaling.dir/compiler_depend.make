# Empty compiler generated dependencies file for bench_fig6_frontier_scaling.
# This may be replaced when dependencies are built.
