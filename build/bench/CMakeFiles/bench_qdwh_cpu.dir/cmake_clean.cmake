file(REMOVE_RECURSE
  "CMakeFiles/bench_qdwh_cpu.dir/bench_qdwh_cpu.cc.o"
  "CMakeFiles/bench_qdwh_cpu.dir/bench_qdwh_cpu.cc.o.d"
  "bench_qdwh_cpu"
  "bench_qdwh_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qdwh_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
