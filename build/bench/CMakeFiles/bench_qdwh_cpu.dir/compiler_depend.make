# Empty compiler generated dependencies file for bench_qdwh_cpu.
# This may be replaced when dependencies are built.
