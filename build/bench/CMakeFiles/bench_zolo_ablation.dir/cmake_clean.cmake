file(REMOVE_RECURSE
  "CMakeFiles/bench_zolo_ablation.dir/bench_zolo_ablation.cc.o"
  "CMakeFiles/bench_zolo_ablation.dir/bench_zolo_ablation.cc.o.d"
  "bench_zolo_ablation"
  "bench_zolo_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_zolo_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
