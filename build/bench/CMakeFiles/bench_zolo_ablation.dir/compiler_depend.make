# Empty compiler generated dependencies file for bench_zolo_ablation.
# This may be replaced when dependencies are built.
