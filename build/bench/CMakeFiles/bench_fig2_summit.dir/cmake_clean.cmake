file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_summit.dir/bench_fig2_summit.cc.o"
  "CMakeFiles/bench_fig2_summit.dir/bench_fig2_summit.cc.o.d"
  "bench_fig2_summit"
  "bench_fig2_summit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_summit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
