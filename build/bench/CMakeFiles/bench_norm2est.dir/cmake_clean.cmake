file(REMOVE_RECURSE
  "CMakeFiles/bench_norm2est.dir/bench_norm2est.cc.o"
  "CMakeFiles/bench_norm2est.dir/bench_norm2est.cc.o.d"
  "bench_norm2est"
  "bench_norm2est.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_norm2est.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
