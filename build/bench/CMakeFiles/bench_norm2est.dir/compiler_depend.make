# Empty compiler generated dependencies file for bench_norm2est.
# This may be replaced when dependencies are built.
