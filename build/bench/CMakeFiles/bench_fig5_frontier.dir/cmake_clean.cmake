file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_frontier.dir/bench_fig5_frontier.cc.o"
  "CMakeFiles/bench_fig5_frontier.dir/bench_fig5_frontier.cc.o.d"
  "bench_fig5_frontier"
  "bench_fig5_frontier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_frontier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
