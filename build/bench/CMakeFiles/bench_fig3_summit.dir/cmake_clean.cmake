file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_summit.dir/bench_fig3_summit.cc.o"
  "CMakeFiles/bench_fig3_summit.dir/bench_fig3_summit.cc.o.d"
  "bench_fig3_summit"
  "bench_fig3_summit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_summit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
