# Empty dependencies file for bench_fig4_summit_scaling.
# This may be replaced when dependencies are built.
