// tbp_driver — command-line driver for the TBP polar decomposition stack,
// in the spirit of SLATE's `tester`: pick an algorithm, a matrix, a
// schedule, and get the paper's metrics printed.
//
// Usage:
//   tbp_driver [--algo qdwh|zolo|mixed|newton|svdpd|svd|dqdwh|serve]
//              [--m M] [--n N] [--nb NB] [--cond KAPPA]
//              [--dist geom|arith|cluster|loguni]
//              [--type s|d|c|z] [--mode task|forkjoin|seq]
//              [--sched steal|global] [--threads T] [--seed S] [--r R]
//              [--jobs J] [--rate R] [--fifo] [--verbose]
//
// Examples:
//   tbp_driver --algo qdwh --n 512 --cond 1e16
//   tbp_driver --algo qdwh --n 512 --cond 1e12 --precision adaptive
//   tbp_driver --algo zolo --n 256 --r 8 --type z
//   tbp_driver --algo qdwh --n 384 --mode forkjoin   # ScaLAPACK-style run
//   tbp_driver --algo serve --jobs 200 --n 64 --nb 32  # batched service

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <complex>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "blas/kernel/stats.hh"
#include "comm/dist_qdwh.hh"
#include "common/timer.hh"
#include "core/baselines.hh"
#include "fault/fault_plan.hh"
#include "perf/fault_report.hh"
#include "perf/qdwh_model.hh"
#include "perf/sched_report.hh"
#include "core/qdwh.hh"
#include "core/qdwh_mixed.hh"
#include "device/executor.hh"
#include "core/qdwh_svd.hh"
#include "core/zolopd.hh"
#include "gen/matgen.hh"
#include "ref/dense.hh"
#include "service/service.hh"

using namespace tbp;

namespace {

struct Args {
    std::string algo = "qdwh";
    std::int64_t m = 0;  // 0 -> square (= n)
    std::int64_t n = 256;
    int nb = 32;
    double cond = 1e12;
    gen::SigmaDist dist = gen::SigmaDist::Geometric;
    char type = 'd';
    rt::Mode mode = rt::Mode::TaskDataflow;
    rt::Sched sched = rt::Sched::WorkStealing;
    int threads = 3;
    std::uint64_t seed = 42;
    int r = 8;
    bool verbose = false;
    int ranks = 4;             // --algo dqdwh: virtual ranks
    int gp = 0, gq = 0;        // process grid (0 -> auto near-square)
    std::string comm = "engine";  // engine | legacy | ring
    comm::CommPlan comm_plan = comm::CommPlan::Auto;  // --comm-plan
    int repl = 0;              // --repl: explicit 2.5D depth c (0 = derive)
    int jobs = 200;            // --algo serve: batch size
    double rate = 0;           // arrival rate jobs/s (0 -> submit at once)
    bool fifo = false;         // serve: disable the QoS priority split
    dev::Target target = dev::Target::Tasks;  // per-tile oracle or batched
    bool target_set = false;   // --target given (serve: Auto when unset)
    int lookahead = 0;         // panel lookahead depth (geqrf/potrf)
    int max_batch = 32;        // largest coalesced batch under --target batched
    // --- precision ladder (qdwh, zolo) ------------------------------------
    prec::Precision precision = prec::Precision::Native;  // --precision
    double rung_safety = 0;    // --rung-safety (0 = policy default)
    int tail_native = -1;      // --tail-native (-1 = policy default)
    bool compensated = false;  // --compensated bf16 accumulation
    // --- fault plane (dqdwh, serve) ---------------------------------------
    std::string fault_plan = "off";  // off|drop|delay|dup|corrupt|slow|poison|mix
    std::uint64_t fault_seed = 1;    // chaos seed (replayable)
    double fault_rate = 0.05;        // per-message fault probability
    double timeout_ms = 0;           // comm retry timeout (0 = default)
    int retry_max = 0;               // comm resend budget (0 = default)
};

/// Build the seeded chaos plan the --fault-* flags describe (inert when
/// --fault-plan is "off").
fault::FaultPlan make_fault_plan(Args const& a) {
    if (a.fault_plan == "off")
        return {};
    fault::FaultKind k = a.fault_plan == "drop"      ? fault::FaultKind::Drop
                         : a.fault_plan == "delay"   ? fault::FaultKind::Delay
                         : a.fault_plan == "dup"     ? fault::FaultKind::Duplicate
                         : a.fault_plan == "corrupt" ? fault::FaultKind::Corrupt
                         : a.fault_plan == "slow"    ? fault::FaultKind::Slowdown
                         : a.fault_plan == "poison"  ? fault::FaultKind::PoisonRank
                                                     : fault::FaultKind::Mix;
    return fault::FaultPlan::preset(k, a.fault_seed, a.fault_rate);
}

fault::RetryConfig make_retry_config(Args const& a) {
    fault::RetryConfig rc;
    if (a.timeout_ms > 0)
        rc.timeout_ms = a.timeout_ms;
    if (a.retry_max > 0)
        rc.retry_max = a.retry_max;
    return rc;
}

[[noreturn]] void usage(char const* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--algo qdwh|zolo|mixed|newton|svdpd|svd|dqdwh|"
                 "serve] [--m M] [--n N]\n"
                 "          [--nb NB] [--cond K] [--dist geom|arith|cluster|"
                 "loguni]\n"
                 "          [--type s|d|c|z] [--mode task|forkjoin|seq] "
                 "[--sched steal|global]\n"
                 "          [--threads T] [--seed S] [--r R] [--verbose]\n"
                 "          [--ranks P] [--grid PxQ] [--comm engine|legacy|"
                 "ring]\n"
                 "          [--comm-plan auto|2d|2.5d] [--repl C]\n"
                 "          [--jobs J] [--rate JOBS_PER_SEC] [--fifo]\n"
                 "          [--target tasks|batched] [--lookahead D] "
                 "[--max-batch B]\n"
                 "          [--precision double|float|bf16|adaptive] "
                 "[--rung-safety S]\n"
                 "          [--tail-native K] [--compensated]\n"
                 "\n"
                 "  --target batched coalesces same-shape tile ops into "
                 "batched engine\n"
                 "  tasks (SLATE Target::Devices analogue); tasks is the "
                 "per-tile oracle.\n"
                 "  --lookahead D prioritizes trailing updates feeding the "
                 "next D panels.\n"
                 "  --precision puts qdwh/zolo on the precision ladder: "
                 "'adaptive' picks\n"
                 "  simulated-bf16 / float / native per iteration from the "
                 "l_k recurrence\n"
                 "  (condition-driven), 'float'/'bf16' force every "
                 "non-tail iteration onto\n"
                 "  that rung; --rung-safety S tightens/loosens the "
                 "admissibility bound\n"
                 "  u <= S * l_{k+1}, --tail-native K forces the last K "
                 "iterations native,\n"
                 "  --compensated turns on the 3-pass compensated bf16 "
                 "accumulation.\n"
                 "  --algo dqdwh runs the distributed QDWH over P virtual "
                 "ranks.\n"
                 "  --algo serve runs a mixed qdwh/zolo/posv/geqrf batch of "
                 "J jobs\n"
                 "  (every 4th in the Latency QoS class) through the service "
                 "layer at\n"
                 "  --rate jobs/s Poisson arrivals (0 = all at once); --fifo "
                 "disables\n"
                 "  the priority split for an A/B baseline.\n"
                 "  --comm selects the collective algorithms: 'engine' "
                 "(tree/recursive-\n"
                 "  doubling, pipelined staging), 'legacy' (linear reference "
                 "oracle —\n"
                 "  results must be bit-identical to engine), 'ring' "
                 "(bandwidth-optimal\n"
                 "  allreduce; re-associates, deterministic only at fixed "
                 "P).\n"
                 "  --comm-plan picks the SUMMA variant for dqdwh's trailing "
                 "gemms:\n"
                 "  'auto' costs 2D vs replicated-layer 2.5D with the "
                 "max_rank_bytes\n"
                 "  bottleneck model and takes the cheaper; '2d'/'2.5d' force "
                 "one.\n"
                 "  --repl C forces replication depth C (layer grid spans "
                 "ranks/C).\n"
                 "  --fault-plan off|drop|delay|dup|corrupt|slow|poison|mix "
                 "installs a\n"
                 "  seeded chaos plan on the dqdwh World (or the serve batch's "
                 "dqdwh\n"
                 "  jobs): --fault-seed S replays the exact same faults, "
                 "--fault-rate R\n"
                 "  sets the per-message probability, --timeout-ms / "
                 "--retry-max tune the\n"
                 "  reliable transport's resend policy.\n",
                 argv0);
    std::exit(2);
}

Args parse(int argc, char** argv) {
    Args a;
    for (int i = 1; i < argc; ++i) {
        auto need = [&](char const* flag) -> char const* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", flag);
                usage(argv[0]);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--algo")) {
            a.algo = need("--algo");
        } else if (!std::strcmp(argv[i], "--m")) {
            a.m = std::atoll(need("--m"));
        } else if (!std::strcmp(argv[i], "--n")) {
            a.n = std::atoll(need("--n"));
        } else if (!std::strcmp(argv[i], "--nb")) {
            a.nb = std::atoi(need("--nb"));
        } else if (!std::strcmp(argv[i], "--cond")) {
            a.cond = std::atof(need("--cond"));
        } else if (!std::strcmp(argv[i], "--dist")) {
            std::string d = need("--dist");
            a.dist = d == "arith"     ? gen::SigmaDist::Arithmetic
                     : d == "cluster" ? gen::SigmaDist::ClusterAtOne
                     : d == "loguni"  ? gen::SigmaDist::LogUniform
                                      : gen::SigmaDist::Geometric;
        } else if (!std::strcmp(argv[i], "--type")) {
            a.type = need("--type")[0];
        } else if (!std::strcmp(argv[i], "--mode")) {
            std::string m = need("--mode");
            a.mode = m == "forkjoin" ? rt::Mode::ForkJoin
                     : m == "seq"    ? rt::Mode::Sequential
                                     : rt::Mode::TaskDataflow;
        } else if (!std::strcmp(argv[i], "--sched")) {
            std::string sc = need("--sched");
            a.sched = sc == "global" ? rt::Sched::GlobalQueue
                                     : rt::Sched::WorkStealing;
        } else if (!std::strcmp(argv[i], "--threads")) {
            a.threads = std::atoi(need("--threads"));
        } else if (!std::strcmp(argv[i], "--seed")) {
            a.seed = static_cast<std::uint64_t>(std::atoll(need("--seed")));
        } else if (!std::strcmp(argv[i], "--r")) {
            a.r = std::atoi(need("--r"));
        } else if (!std::strcmp(argv[i], "--verbose")) {
            a.verbose = true;
        } else if (!std::strcmp(argv[i], "--ranks")) {
            a.ranks = std::atoi(need("--ranks"));
        } else if (!std::strcmp(argv[i], "--grid")) {
            if (std::sscanf(need("--grid"), "%dx%d", &a.gp, &a.gq) != 2) {
                std::fprintf(stderr, "--grid wants PxQ, e.g. 2x2\n");
                usage(argv[0]);
            }
        } else if (!std::strcmp(argv[i], "--jobs")) {
            a.jobs = std::atoi(need("--jobs"));
        } else if (!std::strcmp(argv[i], "--rate")) {
            a.rate = std::atof(need("--rate"));
        } else if (!std::strcmp(argv[i], "--fifo")) {
            a.fifo = true;
        } else if (!std::strcmp(argv[i], "--target")) {
            std::string t = need("--target");
            if (t != "tasks" && t != "batched") {
                std::fprintf(stderr, "unknown --target %s\n", t.c_str());
                usage(argv[0]);
            }
            a.target = t == "batched" ? dev::Target::BatchedHost
                                      : dev::Target::Tasks;
            a.target_set = true;
        } else if (!std::strcmp(argv[i], "--lookahead")) {
            a.lookahead = std::atoi(need("--lookahead"));
        } else if (!std::strcmp(argv[i], "--max-batch")) {
            a.max_batch = std::atoi(need("--max-batch"));
        } else if (!std::strcmp(argv[i], "--precision")) {
            std::string p = need("--precision");
            if (p == "native" || p == "double") {
                a.precision = prec::Precision::Native;
            } else if (p == "float") {
                a.precision = prec::Precision::Float;
            } else if (p == "bf16") {
                a.precision = prec::Precision::Bf16;
            } else if (p == "adaptive") {
                a.precision = prec::Precision::Adaptive;
            } else {
                std::fprintf(stderr, "unknown --precision %s\n", p.c_str());
                usage(argv[0]);
            }
        } else if (!std::strcmp(argv[i], "--rung-safety")) {
            a.rung_safety = std::atof(need("--rung-safety"));
        } else if (!std::strcmp(argv[i], "--tail-native")) {
            a.tail_native = std::atoi(need("--tail-native"));
        } else if (!std::strcmp(argv[i], "--compensated")) {
            a.compensated = true;
        } else if (!std::strcmp(argv[i], "--comm")) {
            a.comm = need("--comm");
            if (a.comm != "engine" && a.comm != "legacy" && a.comm != "ring") {
                std::fprintf(stderr, "unknown --comm %s\n", a.comm.c_str());
                usage(argv[0]);
            }
        } else if (!std::strcmp(argv[i], "--comm-plan")) {
            std::string cp = need("--comm-plan");
            if (cp == "auto") {
                a.comm_plan = comm::CommPlan::Auto;
            } else if (cp == "2d") {
                a.comm_plan = comm::CommPlan::Grid2d;
            } else if (cp == "2.5d") {
                a.comm_plan = comm::CommPlan::Grid25d;
            } else {
                std::fprintf(stderr, "unknown --comm-plan %s\n", cp.c_str());
                usage(argv[0]);
            }
        } else if (!std::strcmp(argv[i], "--repl")) {
            a.repl = std::atoi(need("--repl"));
        } else if (!std::strcmp(argv[i], "--fault-plan")) {
            a.fault_plan = need("--fault-plan");
            if (a.fault_plan != "off" && a.fault_plan != "drop"
                && a.fault_plan != "delay" && a.fault_plan != "dup"
                && a.fault_plan != "corrupt" && a.fault_plan != "slow"
                && a.fault_plan != "poison" && a.fault_plan != "mix") {
                std::fprintf(stderr, "unknown --fault-plan %s\n",
                             a.fault_plan.c_str());
                usage(argv[0]);
            }
        } else if (!std::strcmp(argv[i], "--fault-seed")) {
            a.fault_seed =
                static_cast<std::uint64_t>(std::atoll(need("--fault-seed")));
            if (a.fault_plan == "off")
                a.fault_plan = "mix";  // a seed alone means "chaos, please"
        } else if (!std::strcmp(argv[i], "--fault-rate")) {
            a.fault_rate = std::atof(need("--fault-rate"));
        } else if (!std::strcmp(argv[i], "--timeout-ms")) {
            a.timeout_ms = std::atof(need("--timeout-ms"));
        } else if (!std::strcmp(argv[i], "--retry-max")) {
            a.retry_max = std::atoi(need("--retry-max"));
        } else {
            std::fprintf(stderr, "unknown flag %s\n", argv[i]);
            usage(argv[0]);
        }
    }
    if (a.m == 0)
        a.m = a.n;
    if (a.m < a.n) {
        std::fprintf(stderr, "require m >= n\n");
        std::exit(2);
    }
    if (a.gp == 0) {
        // Near-square grid: largest divisor of P not above sqrt(P).
        for (int p = 1; p * p <= a.ranks; ++p)
            if (a.ranks % p == 0)
                a.gp = p;
        a.gq = a.ranks / a.gp;
    } else if (a.gp * a.gq != a.ranks) {
        a.ranks = a.gp * a.gq;  // an explicit grid defines the rank count
    }
    return a;
}

prec::PrecisionPolicy make_policy(Args const& a) {
    prec::PrecisionPolicy pol;
    pol.request = a.precision;
    if (a.rung_safety > 0)
        pol.rung_safety = a.rung_safety;
    if (a.tail_native >= 0)
        pol.tail_native = a.tail_native;
    pol.compensated = a.compensated;
    return pol;
}

template <typename T>
int run_tiled(Args const& a) {
    rt::Engine eng(a.threads, a.mode, a.sched);
    gen::MatGenOptions opt;
    opt.cond = a.cond;
    opt.dist = a.dist;
    opt.seed = a.seed;

    Timer t_gen;
    auto A = gen::cond_matrix<T>(eng, a.m, a.n, a.nb, opt);
    auto Ad = ref::to_dense(A);
    double const gen_s = t_gen.elapsed();

    TiledMatrix<T> H(a.n, a.n, a.nb);
    Timer t_run;
    int iters = 0, it_qr = 0, it_chol = 0;
    double flops = 0;
    eng.reset_stats();
    double const kflops0 = blas::kernel::flops_performed();

    std::uint64_t batch_ops = 0, batch_tasks = 0;
    double coalescing = 0, stream_h2d = 0, stream_overlap = 0;
    std::vector<prec::Prec> rungs;
    std::array<double, prec::kNumPrec> prec_flops{};
    int fallbacks = 0;
    if (a.algo == "qdwh") {
        QdwhOptions qo;
        qo.target = a.target;
        qo.lookahead = a.lookahead;
        qo.max_batch = a.max_batch;
        qo.precision = make_policy(a);
        auto info = qdwh(eng, A, H, qo);
        iters = info.iterations;
        it_qr = info.it_qr;
        it_chol = info.it_chol;
        flops = info.flops;
        batch_ops = info.tile_ops;
        batch_tasks = info.engine_tasks;
        coalescing = info.coalescing;
        stream_h2d = info.stream_h2d_bytes;
        stream_overlap = info.stream_overlap;
        rungs = info.rungs;
        prec_flops = info.kernel_flops_by_prec;
        fallbacks = info.fallbacks;
    } else if (a.algo == "zolo") {
        ZoloOptions zo;
        zo.r = a.r;
        zo.target = a.target;
        zo.lookahead = a.lookahead;
        zo.max_batch = a.max_batch;
        zo.precision = make_policy(a);
        auto info = zolo_pd(eng, A, H, zo);
        iters = info.iterations;
        it_qr = info.qr_solves;
        it_chol = info.chol_solves;
        flops = info.flops;
    } else if (a.algo == "mixed") {
        if constexpr (std::is_same_v<T, double>) {
            auto info = qdwh_mixed(eng, A, H);
            iters = info.low_precision.iterations;
            it_qr = info.low_precision.it_qr;
            it_chol = info.refine_steps;
            flops = info.low_precision.flops;
        } else {
            std::fprintf(stderr, "--algo mixed requires --type d\n");
            return 2;
        }
    } else if (a.algo == "svd") {
        auto res = qdwh_svd(eng, A, {});
        double const secs = t_run.elapsed();
        std::printf("algo=svd n=%lld sigma_max=%.6e sigma_min=%.6e time=%.3fs\n",
                    static_cast<long long>(a.n), static_cast<double>(res.sigma.front()),
                    static_cast<double>(res.sigma.back()), secs);
        return 0;
    } else {
        std::fprintf(stderr, "unknown tiled algo %s\n", a.algo.c_str());
        return 2;
    }
    double const secs = t_run.elapsed();
    double const kflops = blas::kernel::flops_performed() - kflops0;

    // The paper's metrics.
    auto U = ref::to_dense(A);
    auto Hd = ref::to_dense(H);
    double const orth =
        ref::orthogonality(U) / std::sqrt(static_cast<double>(a.n));
    auto UH = ref::gemm(Op::NoTrans, Op::NoTrans, T(1), U, Hd);
    double const bwd = ref::diff_fro(UH, Ad) / ref::norm_fro(Ad);

    std::printf("algo=%-6s type=%c m=%lld n=%lld nb=%d cond=%.1e mode=%s "
                "target=%s lookahead=%d\n",
                a.algo.c_str(), a.type, static_cast<long long>(a.m),
                static_cast<long long>(a.n), a.nb, a.cond,
                a.mode == rt::Mode::TaskDataflow ? "task"
                : a.mode == rt::Mode::ForkJoin   ? "forkjoin"
                                                 : "seq",
                dev::target_name(a.target), a.lookahead);
    if (batch_tasks > 0)
        std::printf("  batched: %llu tile ops in %llu engine tasks "
                    "(%.1fx coalescing)   h2d %.1f MB   overlap %.2f\n",
                    static_cast<unsigned long long>(batch_ops),
                    static_cast<unsigned long long>(batch_tasks), coalescing,
                    stream_h2d / 1e6, stream_overlap);
    std::printf("  iterations %d (qr/solves %d, chol %d)   time %.3fs   "
                "%.2f Gflop/s\n",
                iters, it_qr, it_chol, secs, flops / secs / 1e9);
    if (a.precision != prec::Precision::Native && !rungs.empty()) {
        std::string sched;
        for (auto r : rungs) {
            if (!sched.empty())
                sched += ",";
            sched += prec::prec_name(r);
        }
        std::printf("  precision ladder: %s   rungs %s   fallbacks %d\n",
                    prec::precision_name(a.precision), sched.c_str(),
                    fallbacks);
        std::printf("  kernel flops by rung: double %.3e  float %.3e  "
                    "bf16 %.3e\n",
                    prec_flops[static_cast<std::size_t>(prec::Prec::Double)],
                    prec_flops[static_cast<std::size_t>(prec::Prec::Float)],
                    prec_flops[static_cast<std::size_t>(prec::Prec::Bf16)]);
    }
    std::printf("  kernel flops %.3e   achieved %.2f Gflop/s (measured)\n",
                kflops, secs > 0 ? kflops / secs / 1e9 : 0.0);
    std::printf("  ||I-U'U||/sqrt(n) = %.3e   ||A-UH||/||A|| = %.3e\n", orth,
                bwd);
    if (a.verbose) {
        std::printf("  gen time %.3fs   tasks %llu\n", gen_s,
                    static_cast<unsigned long long>(eng.tasks_executed()));
        if (a.algo == "qdwh") {
            // Measured rate vs the Summit single-node CPU projection for the
            // same problem — how far this host is from the model's testbed.
            auto model = perf::qdwh_perf(perf::MachineModel::summit(1),
                                         perf::Device::Cpu,
                                         perf::Schedule::TaskDataflow, a.n,
                                         a.nb, it_qr, it_chol);
            auto rate = perf::achieved_vs_model(model, kflops, secs);
            std::printf("  model (summit 1-node cpu): %.2f Gflop/s modeled, "
                        "ratio %.3f\n",
                        rate.modeled_gflops, rate.ratio);
        }
    }
    return 0;
}

template <typename T>
int run_dense(Args const& a) {
    rt::Engine eng(a.threads);
    gen::MatGenOptions opt;
    opt.cond = a.cond;
    opt.dist = a.dist;
    opt.seed = a.seed;
    auto Ad = ref::to_dense(gen::cond_matrix<T>(eng, a.m, a.n, a.nb, opt));

    ref::Dense<T> U, H;
    Timer t_run;
    int iters = 0;
    if (a.algo == "newton") {
        if (a.m != a.n) {
            std::fprintf(stderr, "newton requires a square matrix\n");
            return 2;
        }
        auto info = newton_polar(Ad, U, H);
        iters = info.iterations;
    } else {
        svd_polar(Ad, U, H);
    }
    double const secs = t_run.elapsed();
    double const orth =
        ref::orthogonality(U) / std::sqrt(static_cast<double>(a.n));
    auto UH = ref::gemm(Op::NoTrans, Op::NoTrans, T(1), U, H);
    double const bwd = ref::diff_fro(UH, Ad) / ref::norm_fro(Ad);
    std::printf("algo=%-6s type=%c n=%lld cond=%.1e (dense baseline)\n",
                a.algo.c_str(), a.type, static_cast<long long>(a.n), a.cond);
    std::printf("  iterations %d   time %.3fs\n", iters, secs);
    std::printf("  ||I-U'U||/sqrt(n) = %.3e   ||A-UH||/||A|| = %.3e\n", orth,
                bwd);
    return 0;
}

/// Distributed QDWH over virtual ranks: the whole solve runs SPMD inside
/// World::run; afterwards the measured comm-engine counters are printed next
/// to the cost model's collective_volume prediction for the dominant
/// allreduce shape.
template <typename T>
int run_dist(Args const& a) {
    if (a.m % a.nb != 0) {
        std::fprintf(stderr, "dqdwh requires m %% nb == 0\n");
        return 2;
    }
    rt::Engine eng(a.threads);
    gen::MatGenOptions opt;
    opt.cond = a.cond;
    opt.dist = a.dist;
    opt.seed = a.seed;
    auto Ad = ref::to_dense(gen::cond_matrix<T>(eng, a.m, a.n, a.nb, opt));

    comm::coll::Config cfg;
    if (a.comm == "legacy") {
        cfg.legacy = true;
    } else if (a.comm == "ring") {
        cfg.allreduce = comm::coll::Algo::Ring;
        cfg.allgather = comm::coll::Algo::Ring;
        cfg.deterministic = false;
    }
    // Resolve the SUMMA plan for the trailing updates. --repl C pins the
    // replication depth; otherwise the chooser costs every c | P for the
    // reduction mode that will run and takes the max_rank_bytes minimizer.
    perf::SummaPlan plan;
    if (a.repl > 1) {
        if (a.ranks % a.repl != 0) {
            std::fprintf(stderr, "--repl %d must divide --ranks %d\n", a.repl,
                         a.ranks);
            return 2;
        }
        int const L = a.ranks / a.repl;
        plan.c = a.repl;
        for (int p = 1; p * p <= L; ++p)
            if (L % p == 0)
                plan.p = p;
        plan.q = L / plan.p;
        plan.vol = perf::summa_volume(a.m, a.n, a.n, a.nb, sizeof(T), plan.p,
                                      plan.q, plan.c, cfg.deterministic);
        auto ref2d = perf::choose_summa_plan(a.ranks, a.m, a.n, a.n, a.nb,
                                             sizeof(T), cfg.deterministic,
                                             comm::CommPlan::Grid2d);
        plan.vol2d = ref2d.vol;
    } else {
        plan = perf::choose_summa_plan(a.ranks, a.m, a.n, a.n, a.nb,
                                       sizeof(T), cfg.deterministic,
                                       a.comm_plan);
    }
    // c == 1 keeps the legacy behavior exactly (including an explicit
    // --grid); c > 1 uses the plan's near-square layer grid.
    comm::ProcGrid3d g3 = plan.c == 1
                              ? comm::ProcGrid3d{a.gp, a.gq, 1}
                              : comm::ProcGrid3d{plan.p, plan.q, plan.c};
    Grid const g = g3.layer();
    comm::World world(a.ranks);
    world.set_coll_config(cfg);
    auto const plan_f = make_fault_plan(a);
    if (plan_f.enabled()) {
        world.set_fault(plan_f, make_retry_config(a));
        std::printf("fault plan: %s\n", plan_f.describe().c_str());
    }

    ref::Dense<T> U(a.m, a.n);
    comm::DistQdwhInfo info;
    Timer t_run;
    world.run([&](comm::Communicator& c) {
        comm::DistMatrix<T> A(c, a.m, a.n, a.nb, g);
        A.fill([&](std::int64_t i, std::int64_t j) { return Ad(i, j); });
        auto inf = comm::dist_qdwh(c, g3, A, 1.0 / a.cond);
        auto dense = comm::dist_gather(c, A);
        if (c.rank() == 0) {
            info = inf;
            for (std::int64_t j = 0; j < a.n; ++j)
                for (std::int64_t i = 0; i < a.m; ++i)
                    U(i, j) = dense[static_cast<size_t>(i + j * a.m)];
        }
    });
    double const secs = t_run.elapsed();

    double const orth =
        ref::orthogonality(U) / std::sqrt(static_cast<double>(a.n));
    auto UhA = ref::gemm(Op::ConjTrans, Op::NoTrans, T(1), U, Ad);
    ref::Dense<T> Hd(a.n, a.n);
    for (std::int64_t j = 0; j < a.n; ++j)
        for (std::int64_t i = 0; i < a.n; ++i)
            Hd(i, j) = T(0.5) * (UhA(i, j) + conj_val(UhA(j, i)));
    auto UH = ref::gemm(Op::NoTrans, Op::NoTrans, T(1), U, Hd);
    double const bwd = ref::diff_fro(UH, Ad) / ref::norm_fro(Ad);

    std::printf("algo=dqdwh type=%c m=%lld n=%lld nb=%d cond=%.1e ranks=%d "
                "grid=%dx%dx%d comm=%s plan=%s\n",
                a.type, static_cast<long long>(a.m),
                static_cast<long long>(a.n), a.nb, a.cond, a.ranks, g3.p,
                g3.q, g3.c, a.comm.c_str(),
                comm::comm_plan_name(a.comm_plan));
    std::printf("  summa model: chosen %dx%dx%d max_rank_bytes %llu "
                "(2d %llu)  stage %llu  fiber %llu  reduce %llu\n",
                g3.p, g3.q, g3.c,
                static_cast<unsigned long long>(
                    g3.c == 1 ? plan.vol2d.total.max_rank_bytes
                              : plan.vol.total.max_rank_bytes),
                static_cast<unsigned long long>(
                    plan.vol2d.total.max_rank_bytes),
                static_cast<unsigned long long>(plan.vol.stage_bytes),
                static_cast<unsigned long long>(plan.vol.fiber_bytes),
                static_cast<unsigned long long>(plan.vol.reduce_bytes));
    std::printf("  iterations %d   ||A||_2 est %.3e   time %.3fs\n",
                info.iterations, info.norm2_estimate, secs);
    std::printf("  ||I-U'U||/sqrt(n) = %.3e   ||A-UH||/||A|| = %.3e\n", orth,
                bwd);
    auto rep = perf::comm_report(world);
    std::printf("%s", rep.format().c_str());
    if (world.fault())
        std::printf("%s", perf::fault_report(world).format().c_str());
    if (a.verbose) {
        // Model check: predicted traffic of one n-element allreduce (the
        // norm-estimator / convergence shape) under the selected algorithm.
        auto algo = comm::coll::resolve_allreduce(
            cfg, static_cast<size_t>(a.n) * sizeof(T));
        auto v = perf::collective_volume(perf::CollKind::Allreduce, algo,
                                         a.ranks, static_cast<size_t>(a.n),
                                         sizeof(T));
        std::printf("  model: one %s allreduce(n) = %llu msgs, %llu bytes, "
                    "max/rank sends %llu\n",
                    comm::coll::algo_name(algo),
                    static_cast<unsigned long long>(v.messages),
                    static_cast<unsigned long long>(v.bytes),
                    static_cast<unsigned long long>(v.max_rank_sends));
    }
    return 0;
}

/// Batched service mode: a mixed workload through src/service/, reporting
/// jobs/sec and per-QoS-class latency percentiles.
int run_serve(Args const& a) {
    rt::Engine eng(a.threads, rt::Mode::TaskDataflow, a.sched);
    auto const plan_f = make_fault_plan(a);
    svc::ServiceOptions so;
    so.fifo = a.fifo;
    if (plan_f.enabled()) {
        // Chaos workloads get a real retry budget so the resilience stats
        // show recovery, not just failure.
        so.retry.max_attempts = 3;
        std::printf("fault plan: %s\n", plan_f.describe().c_str());
    }
    svc::PolarService service(eng, so);

    // Under a fault plan the Latency slot (every 4th job) becomes a
    // distributed QDWH carrying the chaos plan, so the batch exercises the
    // comm recovery path and the service's retry/failover machinery.
    svc::JobKind const kinds[] = {plan_f.enabled() ? svc::JobKind::DistQdwh
                                                   : svc::JobKind::Qdwh,
                                  svc::JobKind::Posv, svc::JobKind::Geqrf,
                                  svc::JobKind::ZoloPd};
    CounterRng arrivals(a.seed ^ 0x5E17E);
    std::vector<svc::JobHandle> handles;
    handles.reserve(static_cast<size_t>(a.jobs));
    double const t0 = wall_time();
    double t_arr = 0;
    for (int i = 0; i < a.jobs; ++i) {
        svc::JobSpec s;
        s.kind = kinds[i % 4];
        s.cls = (i % 4 == 0) ? svc::JobClass::Latency : svc::JobClass::Bulk;
        s.type = a.type;
        s.n = a.n;
        s.m = s.kind == svc::JobKind::Posv ? 1 : a.m;
        s.nb = a.nb;
        s.cond = a.cond;
        s.seed = a.seed + static_cast<std::uint64_t>(i);
        if (s.kind == svc::JobKind::ZoloPd)
            s.r = a.r;
        if (s.kind == svc::JobKind::DistQdwh) {
            s.ranks = std::min(a.ranks, 4);
            s.fault = plan_f;
            s.fault.seed = a.fault_seed + static_cast<std::uint64_t>(i);
            s.timeout_ms = a.timeout_ms;
            s.retry_max = a.retry_max;
        }
        // Default Auto routes Bulk jobs onto the batched executor; an
        // explicit --target forces one path for the whole batch.
        if (a.target_set)
            s.target = a.target == dev::Target::BatchedHost
                           ? svc::JobTarget::Batched
                           : svc::JobTarget::Tasks;
        s.lookahead = a.lookahead;
        if (a.rate > 0) {
            double const u = arrivals.uniform(static_cast<std::uint64_t>(i));
            t_arr += -std::log1p(-std::min(u, 0.999999)) / a.rate;
            while (wall_time() - t0 < t_arr)
                std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
        handles.push_back(service.submit(s));
    }
    service.wait_all();

    std::vector<double> lat[2];
    double t_last = t0;
    std::uint64_t failed = 0;
    for (auto const& h : handles) {
        auto const& res = h.result();
        t_last = std::max(t_last, res.t_end);
        lat[res.cls == svc::JobClass::Latency ? 0 : 1].push_back(
            res.latency());
        if (!res.ok()) {
            ++failed;
            if (a.verbose)
                std::printf("  job %llu %s/%s failed: %s\n",
                            static_cast<unsigned long long>(res.id),
                            svc::job_kind_name(res.kind),
                            svc::job_class_name(res.cls), res.error.c_str());
        }
    }
    auto pct = [](std::vector<double> v, double p) {
        if (v.empty())
            return 0.0;
        std::sort(v.begin(), v.end());
        return v[static_cast<size_t>(p * (static_cast<double>(v.size()) - 1))];
    };
    double const wall = t_last - t0;
    auto const st = service.stats();
    std::printf("algo=serve type=%c n=%lld nb=%d jobs=%d threads=%d "
                "sched=%s rate=%s\n",
                a.type, static_cast<long long>(a.n), a.nb, a.jobs, a.threads,
                a.fifo ? "fifo" : "qos",
                a.rate > 0 ? std::to_string(a.rate).c_str() : "burst");
    std::printf("  %.0f jobs/s   wall %.3fs   failed %llu/%llu   "
                "workspaces %zu\n",
                wall > 0 ? a.jobs / wall : 0.0, wall,
                static_cast<unsigned long long>(failed),
                static_cast<unsigned long long>(st.completed),
                st.workspaces_created);
    std::printf("  latency-class p50 %.2fms p99 %.2fms   bulk p50 %.2fms "
                "p99 %.2fms\n",
                pct(lat[0], 0.5) * 1e3, pct(lat[0], 0.99) * 1e3,
                pct(lat[1], 0.5) * 1e3, pct(lat[1], 0.99) * 1e3);
    if (plan_f.enabled() || st.retried_jobs > 0) {
        auto const h = service.health();
        std::printf("  resilience: retried %llu   recovered %llu   "
                    "failed-over %llu   heartbeats %llu\n",
                    static_cast<unsigned long long>(st.retried_jobs),
                    static_cast<unsigned long long>(st.recovered_jobs),
                    static_cast<unsigned long long>(st.failed_over),
                    static_cast<unsigned long long>(h.heartbeats));
    }
    return failed == 0 ? 0 : 1;
}

template <typename T>
int dispatch(Args const& a) {
    if (a.algo == "newton" || a.algo == "svdpd")
        return run_dense<T>(a);
    if (a.algo == "dqdwh")
        return run_dist<T>(a);
    return run_tiled<T>(a);
}

}  // namespace

int main(int argc, char** argv) {
    auto const a = parse(argc, argv);
    try {
        if (a.algo == "serve")
            return run_serve(a);
        switch (a.type) {
            case 's': return dispatch<float>(a);
            case 'd': return dispatch<double>(a);
            case 'c': return dispatch<std::complex<float>>(a);
            case 'z': return dispatch<std::complex<double>>(a);
            default:
                std::fprintf(stderr, "unknown type '%c'\n", a.type);
                return 2;
        }
    } catch (std::exception const& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
