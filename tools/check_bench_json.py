#!/usr/bin/env python3
"""Validate bench JSON documents (bench_util.hh JsonEmitter output).

Usage: check_bench_json.py FILE [FILE...]

The benches emit self-judging records: boolean fields that assert a
cross-check held (``model_match``, ``*_model_match``, ``*_ok``) and
counter fields that must be zero for a clean run (``oracle_mismatches``,
``*_mismatches``). This script fails (exit 1) if any such field in any
record carries a failing value, or if a document is unreadable or holds
no records — so a bench that silently emitted nothing cannot pass.

Wired into ctest next to each JSON-emitting smoke target; also usable by
hand on a BENCH_*.json produced by a full (non-smoke) run.
"""

import json
import sys


def check_record(path, idx, rec):
    """Return a list of failure strings for one flat record."""
    failures = []
    for key, val in rec.items():
        if key == "model_match" or key.endswith("_model_match") or key.endswith("_ok"):
            if val is not True:
                failures.append(f"{path}: records[{idx}].{key} = {val!r} (expected true)")
        elif key == "oracle_mismatches" or key.endswith("_mismatches"):
            if val != 0:
                failures.append(f"{path}: records[{idx}].{key} = {val!r} (expected 0)")
    return failures


def check_file(path):
    failures = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: unreadable: {e}"]
    records = doc.get("records")
    if not isinstance(records, list) or not records:
        return [f"{path}: no records"]
    for idx, rec in enumerate(records):
        if not isinstance(rec, dict):
            failures.append(f"{path}: records[{idx}] is not an object")
            continue
        failures.extend(check_record(path, idx, rec))
    return failures


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = []
    checked = 0
    for path in argv[1:]:
        failures.extend(check_file(path))
        checked += 1
    for f in failures:
        print(f"check_bench_json: FAIL {f}")
    if not failures:
        print(f"check_bench_json: OK ({checked} file(s))")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
