// Micro-kernel layer (blas/kernel/) vs the naive reference loops.
//
// Every routine that dispatches between a packed/blocked path and the naive
// element loops is checked for bitwise-plausible agreement on the same
// inputs: gemm across all op combinations, odd/fringe sizes (deliberately
// not multiples of any MR/NR/MC/KC), strided sub-views with ld > mb, and the
// alpha/beta corner cases including the beta == 0 store-zeros convention.
// herk/trsm/trmm run blocked-vs-naive above the kL3Block crossover, and the
// level-3 Householder appliers run against their element-loop references.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "blas/gemm.hh"
#include "blas/householder.hh"
#include "blas/level3.hh"
#include "ref/dense.hh"
#include "test_util.hh"

using namespace tbp;

template <typename T>
class BlasKernel : public ::testing::Test {};
TYPED_TEST_SUITE(BlasKernel, test::AllTypes);

namespace {

template <typename T>
Tile<T> as_tile(ref::Dense<T>& D) {
    return Tile<T>(D.data(), static_cast<int>(D.m()), static_cast<int>(D.n()),
                   static_cast<int>(D.m()));
}

/// Agreement tolerance between two level-3 formulations of the same product:
/// both accumulate ~k rounding steps, so scale eps by the reduction depth.
template <typename T>
real_t<T> path_tol(int k) {
    return test::tol<T>(50.0 * std::max(k, 8));
}

template <typename T>
void check_gemm_paths(Op opA, Op opB, int m, int n, int k, T alpha, T beta) {
    auto A = (opA == Op::NoTrans) ? ref::random_dense<T>(m, k, 17)
                                  : ref::random_dense<T>(k, m, 17);
    auto B = (opB == Op::NoTrans) ? ref::random_dense<T>(k, n, 29)
                                  : ref::random_dense<T>(n, k, 29);
    auto C = ref::random_dense<T>(m, n, 43);
    auto Cref = C;

    blas::gemm_naive(opA, opB, alpha, as_tile(A), as_tile(B), beta,
                     as_tile(Cref));
    blas::kernel::gemm(opA, opB, alpha, as_tile(A), as_tile(B), beta,
                       as_tile(C));
    EXPECT_LE(ref::diff_fro(C, Cref),
              path_tol<T>(k) * (1 + ref::norm_fro(Cref)))
        << "opA=" << static_cast<int>(opA) << " opB=" << static_cast<int>(opB)
        << " m=" << m << " n=" << n << " k=" << k;
}

}  // namespace

TYPED_TEST(BlasKernel, GemmAllOpsOddSizes) {
    using T = TypeParam;
    T const alpha = from_real<T>(real_t<T>(1.25));
    T const beta = from_real<T>(real_t<T>(-0.5));
    for (Op opA : {Op::NoTrans, Op::Trans, Op::ConjTrans})
        for (Op opB : {Op::NoTrans, Op::Trans, Op::ConjTrans})
            check_gemm_paths<T>(opA, opB, 37, 29, 31, alpha, beta);
}

TYPED_TEST(BlasKernel, GemmFringeSizes) {
    using T = TypeParam;
    T const alpha = from_real<T>(real_t<T>(0.75));
    T const beta = from_real<T>(real_t<T>(1.5));
    // Degenerate panels, single rows/columns, and sizes straddling the
    // register/cache blocking (MR/NR fringes, MC/KC boundaries).
    check_gemm_paths<T>(Op::NoTrans, Op::NoTrans, 5, 67, 3, alpha, beta);
    check_gemm_paths<T>(Op::NoTrans, Op::NoTrans, 130, 70, 85, alpha, beta);
    check_gemm_paths<T>(Op::ConjTrans, Op::NoTrans, 1, 9, 200, alpha, beta);
    check_gemm_paths<T>(Op::NoTrans, Op::ConjTrans, 97, 1, 33, alpha, beta);
    check_gemm_paths<T>(Op::Trans, Op::Trans, 33, 31, 1, alpha, beta);
    check_gemm_paths<T>(Op::NoTrans, Op::NoTrans, 257, 129, 96, alpha, beta);
}

TYPED_TEST(BlasKernel, GemmAlphaBetaCorners) {
    using T = TypeParam;
    int const m = 41, n = 23, k = 19;
    T const one(1), zero(0);
    T const a = from_real<T>(real_t<T>(2.0));
    check_gemm_paths<T>(Op::NoTrans, Op::NoTrans, m, n, k, zero, a);
    check_gemm_paths<T>(Op::NoTrans, Op::NoTrans, m, n, k, a, zero);
    check_gemm_paths<T>(Op::NoTrans, Op::NoTrans, m, n, k, one, one);
    check_gemm_paths<T>(Op::NoTrans, Op::NoTrans, m, n, k, zero, zero);
}

TYPED_TEST(BlasKernel, GemmSubViewsLdGtMb) {
    using T = TypeParam;
    // Operands are interior windows of a larger tile, so every view has
    // ld > mb and a nonzero row/col offset — the packing routines must honor
    // the stride, and stores must not touch the frame.
    int const M = 150, N = 140;
    int const m = 53, n = 38, k = 47;
    auto Abig = ref::random_dense<T>(M, N, 7);
    auto Bbig = ref::random_dense<T>(M, N, 8);
    auto Cbig = ref::random_dense<T>(M, N, 9);
    auto Cframe = Cbig;

    auto A = as_tile(Abig).sub(11, 5, m, k);
    auto B = as_tile(Bbig).sub(3, 21, k, n);
    auto C = as_tile(Cbig).sub(29, 17, m, n);

    ref::Dense<T> Ad(m, k), Bd(k, n), Cd(m, n);
    for (int j = 0; j < k; ++j)
        for (int i = 0; i < m; ++i)
            Ad(i, j) = A(i, j);
    for (int j = 0; j < n; ++j)
        for (int i = 0; i < k; ++i)
            Bd(i, j) = B(i, j);
    for (int j = 0; j < n; ++j)
        for (int i = 0; i < m; ++i)
            Cd(i, j) = C(i, j);

    T const alpha = from_real<T>(real_t<T>(1.5));
    T const beta = from_real<T>(real_t<T>(0.25));
    blas::gemm_naive(Op::NoTrans, Op::NoTrans, alpha, as_tile(Ad),
                     as_tile(Bd), beta, as_tile(Cd));
    blas::kernel::gemm(Op::NoTrans, Op::NoTrans, alpha, A, B, beta, C);

    for (int j = 0; j < n; ++j)
        for (int i = 0; i < m; ++i)
            EXPECT_LE(std::abs(C(i, j) - Cd(i, j)),
                      path_tol<T>(k) * (1 + std::abs(Cd(i, j))));

    // The frame around the window must be untouched.
    for (int j = 0; j < N; ++j)
        for (int i = 0; i < M; ++i) {
            bool const inside =
                i >= 29 && i < 29 + m && j >= 17 && j < 17 + n;
            if (!inside)
                ASSERT_EQ(Cbig(i, j), Cframe(i, j))
                    << "frame touched at (" << i << "," << j << ")";
        }
}

TYPED_TEST(BlasKernel, GemmBetaZeroClearsNaN) {
    using T = TypeParam;
    using R = real_t<T>;
    int const m = 40, n = 36, k = 24;
    auto A = ref::random_dense<T>(m, k, 4);
    auto B = ref::random_dense<T>(k, n, 5);
    ref::Dense<T> C(m, n);
    R const qnan = std::numeric_limits<R>::quiet_NaN();
    for (int j = 0; j < n; ++j)
        for (int i = 0; i < m; ++i)
            C(i, j) = from_real<T>(qnan);
    auto Cref = ref::gemm(Op::NoTrans, Op::NoTrans, T(1), A, B);

    // beta == 0 must overwrite, never scale: NaNs in C may not survive.
    blas::kernel::gemm(Op::NoTrans, Op::NoTrans, T(1), as_tile(A), as_tile(B),
                       T(0), as_tile(C));
    for (int j = 0; j < n; ++j)
        for (int i = 0; i < m; ++i)
            ASSERT_TRUE(std::isfinite(std::abs(C(i, j))));
    EXPECT_LE(ref::diff_fro(C, Cref),
              path_tol<T>(k) * (1 + ref::norm_fro(Cref)));

    // Same convention on the naive path.
    for (int j = 0; j < n; ++j)
        for (int i = 0; i < m; ++i)
            C(i, j) = from_real<T>(qnan);
    blas::gemm_naive(Op::NoTrans, Op::NoTrans, T(1), as_tile(A), as_tile(B),
                     T(0), as_tile(C));
    for (int j = 0; j < n; ++j)
        for (int i = 0; i < m; ++i)
            ASSERT_TRUE(std::isfinite(std::abs(C(i, j))));
}

TYPED_TEST(BlasKernel, HerkBlockedMatchesNaive) {
    using T = TypeParam;
    using R = real_t<T>;
    int const n = 100, k = 37;  // n > kL3Block so the public entry blocks
    R const alpha = R(0.5), beta = R(-1.5);
    for (Uplo uplo : {Uplo::Lower, Uplo::Upper})
        for (Op op : {Op::NoTrans, Op::ConjTrans}) {
            auto A = (op == Op::NoTrans) ? ref::random_dense<T>(n, k, 21)
                                         : ref::random_dense<T>(k, n, 21);
            auto C = ref::random_dense<T>(n, n, 31);
            auto Cref = C;
            blas::herk_naive(uplo, op, alpha, as_tile(A), beta,
                             as_tile(Cref));
            blas::herk_blocked(uplo, op, alpha, as_tile(A), beta, as_tile(C));
            EXPECT_LE(ref::diff_fro(C, Cref),
                      path_tol<T>(k) * (1 + ref::norm_fro(Cref)))
                << "uplo=" << static_cast<int>(uplo)
                << " op=" << static_cast<int>(op);
        }
}

TYPED_TEST(BlasKernel, TrsmBlockedMatchesNaive) {
    using T = TypeParam;
    int const m = 96, n = 70;  // both > kL3Block in the triangular dimension
    T const alpha = from_real<T>(real_t<T>(2.0));
    for (Side side : {Side::Left, Side::Right})
        for (Uplo uplo : {Uplo::Lower, Uplo::Upper})
            for (Op op : {Op::NoTrans, Op::ConjTrans})
                for (Diag diag : {Diag::NonUnit, Diag::Unit}) {
                    int const na = (side == Side::Left) ? m : n;
                    auto A = ref::random_dense<T>(na, na, 51);
                    for (int i = 0; i < na; ++i)  // well-conditioned solve
                        A(i, i) = A(i, i) + from_real<T>(real_t<T>(4));
                    auto B = ref::random_dense<T>(m, n, 61);
                    auto Bref = B;
                    blas::trsm_naive(side, uplo, op, diag, alpha, as_tile(A),
                                     as_tile(Bref));
                    blas::trsm_blocked(side, uplo, op, diag, alpha,
                                       as_tile(A), as_tile(B));
                    EXPECT_LE(ref::diff_fro(B, Bref),
                              path_tol<T>(na) * (1 + ref::norm_fro(Bref)))
                        << "side=" << static_cast<int>(side)
                        << " uplo=" << static_cast<int>(uplo)
                        << " op=" << static_cast<int>(op)
                        << " diag=" << static_cast<int>(diag);
                }
}

TYPED_TEST(BlasKernel, TrmmBlockedMatchesNaive) {
    using T = TypeParam;
    int const m = 96, n = 58;
    T const alpha = from_real<T>(real_t<T>(-0.75));
    for (Uplo uplo : {Uplo::Lower, Uplo::Upper})
        for (Op op : {Op::NoTrans, Op::ConjTrans})
            for (Diag diag : {Diag::NonUnit, Diag::Unit}) {
                auto A = ref::random_dense<T>(m, m, 71);
                auto B = ref::random_dense<T>(m, n, 81);
                auto Bref = B;
                blas::trmm_naive(uplo, op, diag, alpha, as_tile(A),
                                 as_tile(Bref));
                blas::trmm_blocked(uplo, op, diag, alpha, as_tile(A),
                                   as_tile(B));
                EXPECT_LE(ref::diff_fro(B, Bref),
                          path_tol<T>(m) * (1 + ref::norm_fro(Bref)))
                    << "uplo=" << static_cast<int>(uplo)
                    << " op=" << static_cast<int>(op)
                    << " diag=" << static_cast<int>(diag);
            }
}

TYPED_TEST(BlasKernel, UnmqrLevel3MatchesNaive) {
    using T = TypeParam;
    int const mb = 96, nb = 32, nn = 40;
    auto V = ref::random_dense<T>(mb, nb, 91);
    ref::Dense<T> Tf(nb, nb);
    blas::geqrt(as_tile(V), as_tile(Tf));

    for (Op op : {Op::NoTrans, Op::ConjTrans}) {
        auto C = ref::random_dense<T>(mb, nn, 92);
        auto Cref = C;
        blas::unmqr_naive(op, as_tile(V), as_tile(Tf), as_tile(Cref));
        blas::unmqr_level3(op, as_tile(V), as_tile(Tf), as_tile(C));
        EXPECT_LE(ref::diff_fro(C, Cref),
                  path_tol<T>(mb) * (1 + ref::norm_fro(Cref)))
            << "op=" << static_cast<int>(op);
    }
}

TYPED_TEST(BlasKernel, TsmqrLevel3MatchesNaive) {
    using T = TypeParam;
    int const n = 32, m2 = 96, nn = 40;
    auto A1 = ref::random_dense<T>(n, n, 93);
    auto A2 = ref::random_dense<T>(m2, n, 94);
    ref::Dense<T> Tf(n, n);
    blas::tsqrt(as_tile(A1), as_tile(A2), as_tile(Tf));

    for (Op op : {Op::NoTrans, Op::ConjTrans}) {
        auto C1 = ref::random_dense<T>(n, nn, 95);
        auto C2 = ref::random_dense<T>(m2, nn, 96);
        auto C1ref = C1, C2ref = C2;
        blas::tsmqr_naive(op, as_tile(A2), as_tile(Tf), as_tile(C1ref),
                          as_tile(C2ref));
        blas::tsmqr_level3(op, as_tile(A2), as_tile(Tf), as_tile(C1),
                           as_tile(C2));
        EXPECT_LE(ref::diff_fro(C1, C1ref),
                  path_tol<T>(m2) * (1 + ref::norm_fro(C1ref)))
            << "op=" << static_cast<int>(op);
        EXPECT_LE(ref::diff_fro(C2, C2ref),
                  path_tol<T>(m2) * (1 + ref::norm_fro(C2ref)))
            << "op=" << static_cast<int>(op);
    }
}

TYPED_TEST(BlasKernel, PublicGemmRoutesAndCounts) {
    using T = TypeParam;
    // The public entry must agree with the naive path regardless of which
    // kernel it picks, and the flop counter must advance by the model count.
    int const m = 80, n = 72, k = 64;
    auto A = ref::random_dense<T>(m, k, 97);
    auto B = ref::random_dense<T>(k, n, 98);
    auto C = ref::random_dense<T>(m, n, 99);
    auto Cref = C;
    T const alpha = from_real<T>(real_t<T>(1.5));
    T const beta = from_real<T>(real_t<T>(0.5));

    blas::gemm_naive(Op::NoTrans, Op::NoTrans, alpha, as_tile(A), as_tile(B),
                     beta, as_tile(Cref));
    double const f0 = blas::kernel::flops_performed();
    blas::gemm(Op::NoTrans, Op::NoTrans, alpha, as_tile(A), as_tile(B), beta,
               as_tile(C));
    double const df = blas::kernel::flops_performed() - f0;
    EXPECT_LE(ref::diff_fro(C, Cref),
              path_tol<T>(k) * (1 + ref::norm_fro(Cref)));
    EXPECT_DOUBLE_EQ(df, flops::gemm(m, n, k) * (fma_flops<T>() / 2.0));
}
