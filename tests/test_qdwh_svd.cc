// Polar-based SVD and one-level spectral divide-and-conquer EVD.

#include <gtest/gtest.h>

#include "core/qdwh_svd.hh"
#include "gen/matgen.hh"
#include "test_util.hh"

using namespace tbp;

template <typename T>
class QdwhSvd : public ::testing::Test {};
TYPED_TEST_SUITE(QdwhSvd, test::AllTypes);

TYPED_TEST(QdwhSvd, RecoversSingularValues) {
    using T = TypeParam;
    rt::Engine eng(3);
    gen::MatGenOptions opt;
    opt.cond = 1e4;
    opt.seed = 111;
    int const n = 16, nb = 8;
    auto A = gen::cond_matrix<T>(eng, n, n, nb, opt);
    auto res = qdwh_svd(eng, A);
    auto expected = gen::sigma_values<real_t<T>>(n, opt);
    for (int i = 0; i < n; ++i)
        EXPECT_NEAR(res.sigma[static_cast<size_t>(i)],
                    expected[static_cast<size_t>(i)],
                    test::tol<T>(5000) * (1 + expected[static_cast<size_t>(i)]));
}

TYPED_TEST(QdwhSvd, FactorsReconstruct) {
    using T = TypeParam;
    rt::Engine eng(3);
    gen::MatGenOptions opt;
    opt.cond = 1e2;
    opt.seed = 112;
    int const m = 22, n = 10, nb = 6;
    auto A = gen::cond_matrix<T>(eng, m, n, nb, opt);
    auto Ad = ref::to_dense(A);
    auto res = qdwh_svd(eng, A);

    EXPECT_LE(ref::orthogonality(res.U), test::tol<T>(2000) * m);
    EXPECT_LE(ref::orthogonality(res.V), test::tol<T>(2000) * n);

    auto Us = res.U;
    for (int j = 0; j < n; ++j)
        for (int i = 0; i < m; ++i)
            Us(i, j) = res.U(i, j) * from_real<T>(res.sigma[static_cast<size_t>(j)]);
    auto R = ref::gemm(Op::NoTrans, Op::ConjTrans, T(1), Us, res.V);
    EXPECT_LE(ref::diff_fro(R, Ad), test::tol<T>(5000) * (1 + ref::norm_fro(Ad)));
}

TYPED_TEST(QdwhSvd, EigDecomposesHermitian) {
    using T = TypeParam;
    rt::Engine eng(3);
    int const n = 14, nb = 6;
    // Hermitian with both signs in the spectrum so the split engages.
    auto B = ref::random_dense<T>(n, n, 113);
    ref::Dense<T> Ad(n, n);
    for (int j = 0; j < n; ++j)
        for (int i = 0; i < n; ++i)
            Ad(i, j) = (B(i, j) + conj_val(B(j, i))) * from_real<T>(real_t<T>(0.5));
    auto A = ref::to_tiled(Ad, nb);

    auto res = qdwh_eig(eng, A);
    ASSERT_EQ(static_cast<int>(res.lambda.size()), n);
    EXPECT_LE(ref::orthogonality(res.V), test::tol<T>(5000) * n);

    auto AV = ref::gemm(Op::NoTrans, Op::NoTrans, T(1), Ad, res.V);
    ref::Dense<T> VD(n, n);
    for (int j = 0; j < n; ++j)
        for (int i = 0; i < n; ++i)
            VD(i, j) = res.V(i, j) * from_real<T>(res.lambda[static_cast<size_t>(j)]);
    EXPECT_LE(ref::diff_fro(AV, VD), test::tol<T>(20000) * (1 + ref::norm_fro(Ad)));

    // The polar step really ran as the splitter.
    EXPECT_GE(res.polar_info.iterations, 1);
}

TYPED_TEST(QdwhSvd, EigDefiniteFallback) {
    // Positive definite input: all eigenvalues above the trace-mean shift?
    // No — the mean splits any non-constant spectrum; use a scalar matrix
    // to force the degenerate path.
    using T = TypeParam;
    rt::Engine eng(2);
    int const n = 8, nb = 4;
    TiledMatrix<T> A(n, n, nb);
    for (int i = 0; i < n; ++i)
        A.at(i, i) = T(3);
    // A - (trace/n) I == 0 would make QDWH throw on the zero matrix; the
    // implementation must still deliver the EVD through its fallback.
    ref::Dense<T> Ad = ref::to_dense(A);
    try {
        auto res = qdwh_eig(eng, A);
        for (int i = 0; i < n; ++i)
            EXPECT_NEAR(res.lambda[static_cast<size_t>(i)], real_t<T>(3),
                        test::tol<T>(100));
    } catch (Error const&) {
        // Acceptable: zero shifted matrix is documented as degenerate.
        SUCCEED();
    }
    (void)Ad;
}

TYPED_TEST(QdwhSvd, EigMatchesJacobiDirect) {
    using T = TypeParam;
    rt::Engine eng(3);
    int const n = 12, nb = 4;
    auto B = ref::random_dense<T>(n, n, 114);
    ref::Dense<T> Ad(n, n);
    for (int j = 0; j < n; ++j)
        for (int i = 0; i < n; ++i)
            Ad(i, j) = (B(i, j) + conj_val(B(j, i))) * from_real<T>(real_t<T>(0.5));
    auto A = ref::to_tiled(Ad, nb);
    auto res = qdwh_eig(eng, A);

    std::vector<real_t<T>> w;
    ref::Dense<T> V;
    auto Acopy = Ad;
    ref::jacobi_eig(Acopy, w, V);
    for (int i = 0; i < n; ++i)
        EXPECT_NEAR(res.lambda[static_cast<size_t>(i)], w[static_cast<size_t>(i)],
                    test::tol<T>(20000) * (1 + std::abs(w[static_cast<size_t>(i)])));
}
