// Work-stealing scheduler stress: thousands of tiny tasks with random
// read/write access patterns checked for dataflow-equivalence against
// Sequential mode, steal-path exercise, priority ordering, forced
// exceptions, and pop/steal accounting. Designed to run clean under
// ThreadSanitizer (-DTBP_SANITIZE=thread).

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "runtime/engine.hh"

using namespace tbp;

namespace {

/// Run the same randomly generated task program on `eng` and return the
/// final key values. Access lists intentionally contain duplicate keys
/// (Read + ReadWrite of the same address) to exercise dependency dedup.
std::vector<long> run_random_program(rt::Engine& eng, int n_keys, int n_tasks,
                                     std::uint64_t seed) {
    std::vector<long> vals(static_cast<size_t>(n_keys), 1);
    CounterRng rng(seed);
    for (int t = 0; t < n_tasks; ++t) {
        int const a = static_cast<int>(rng.uniform(4 * t) * n_keys);
        int const b = static_cast<int>(rng.uniform(4 * t + 1) * n_keys);
        int const dst = static_cast<int>(rng.uniform(4 * t + 2) * n_keys);
        long const add = static_cast<long>(rng.uniform(4 * t + 3) * 7);
        int const prio = (t % 5 == 0) ? 1 : 0;
        eng.submit("mix",
                   {rt::read(&vals[static_cast<size_t>(a)]),
                    rt::read(&vals[static_cast<size_t>(b)]),
                    rt::read(&vals[static_cast<size_t>(dst)]),  // dup of rw
                    rt::readwrite(&vals[static_cast<size_t>(dst)])},
                   [&vals, a, b, dst, add] {
                       vals[static_cast<size_t>(dst)] +=
                           vals[static_cast<size_t>(a)] % 13
                           + vals[static_cast<size_t>(b)] % 7 + add;
                   },
                   prio);
    }
    eng.wait();
    return vals;
}

}  // namespace

TEST(EngineStress, RandomDagMatchesSequential) {
    // The work-stealing schedule must be dataflow-equivalent to inline
    // sequential execution of the same program order, across thread counts.
    rt::Engine seq(0, rt::Mode::Sequential);
    auto const ref = run_random_program(seq, 10, 4000, 99);
    for (int threads : {2, 4, 8}) {
        rt::Engine eng(threads, rt::Mode::TaskDataflow, rt::Sched::WorkStealing);
        auto const got = run_random_program(eng, 10, 4000, 99);
        EXPECT_EQ(got, ref) << "threads=" << threads;
    }
}

TEST(EngineStress, GlobalQueueMatchesSequential) {
    rt::Engine seq(0, rt::Mode::Sequential);
    auto const ref = run_random_program(seq, 10, 4000, 123);
    rt::Engine eng(4, rt::Mode::TaskDataflow, rt::Sched::GlobalQueue);
    auto const got = run_random_program(eng, 10, 4000, 123);
    EXPECT_EQ(got, ref);
}

TEST(EngineStress, PopAccountingCoversAllTasks) {
    // Every executed task was obtained by exactly one of: local pop, steal,
    // or (in the other mode) a global-queue pop.
    rt::Engine eng(4, rt::Mode::TaskDataflow, rt::Sched::WorkStealing);
    run_random_program(eng, 8, 3000, 7);
    auto const s = eng.sched_stats();
    EXPECT_EQ(s.local_pops + s.steals, eng.tasks_executed());
    EXPECT_EQ(s.global_pops, 0u);

    rt::Engine gq(4, rt::Mode::TaskDataflow, rt::Sched::GlobalQueue);
    run_random_program(gq, 8, 3000, 7);
    auto const g = gq.sched_stats();
    EXPECT_EQ(g.global_pops, gq.tasks_executed());
    EXPECT_EQ(g.local_pops + g.steals, 0u);
}

TEST(EngineStress, StealPathMovesFanOutWork) {
    // One root task fans out to many independent children. The children are
    // all released onto the finishing worker's own deque, so every other
    // worker can only obtain them by stealing.
    rt::Engine eng(4, rt::Mode::TaskDataflow, rt::Sched::WorkStealing);
    int const fan = 256;
    int root_key = 0;
    std::vector<int> child_keys(static_cast<size_t>(fan), 0);
    std::atomic<long> sum{0};
    std::atomic<bool> go{false};
    // The root idles until every child is submitted, so all of them are
    // released as its successors onto one deque (none pre-distributed).
    eng.submit("root", {rt::write(&root_key)}, [&] {
        while (!go.load())
            std::this_thread::yield();
        root_key = 1;
    });
    for (int i = 0; i < fan; ++i)
        eng.submit("child",
                   {rt::read(&root_key),
                    rt::write(&child_keys[static_cast<size_t>(i)])},
                   [&, i] {
                       long acc = 0;
                       for (int k = 0; k < 20000; ++k)
                           acc += (k ^ i) % 17;
                       child_keys[static_cast<size_t>(i)] = 1;
                       sum.fetch_add(acc, std::memory_order_relaxed);
                   });
    go.store(true);
    eng.wait();
    for (int v : child_keys)
        EXPECT_EQ(v, 1);
    EXPECT_GT(eng.sched_stats().steals, 0u);
}

TEST(EngineStress, PriorityTaskRunsBeforeQueuedBulk) {
    // Single worker: while it is pinned on a blocker task, queue low-priority
    // tasks and then one high-priority task; the high-priority task must be
    // the first of the queued batch to execute.
    rt::Engine eng(1, rt::Mode::TaskDataflow, rt::Sched::WorkStealing);
    std::atomic<bool> started{false};
    std::atomic<bool> release{false};
    std::mutex order_mtx;
    std::vector<std::string> order;
    auto log = [&](char const* who) {
        std::lock_guard<std::mutex> lk(order_mtx);
        order.push_back(who);
    };
    eng.submit("blocker", {}, [&] {
        started.store(true);
        while (!release.load())
            std::this_thread::yield();
    });
    while (!started.load())
        std::this_thread::yield();
    for (int i = 0; i < 4; ++i)
        eng.submit("low", {}, [&] { log("low"); });
    eng.submit("high", {}, [&] { log("high"); }, /*priority=*/1);
    release.store(true);
    eng.wait();
    ASSERT_EQ(order.size(), 5u);
    EXPECT_EQ(order.front(), "high");
}

TEST(EngineStress, ErrorSkipsSuccessorBodies) {
    // After a task throws, dependent tasks still retire (wait() terminates)
    // but their bodies must not run on the poisoned data.
    rt::Engine eng(4);
    int x = 0;
    std::atomic<int> ran{0};
    eng.submit("boom", {rt::write(&x)}, [&]() -> void {
        throw std::runtime_error("boom");
    });
    for (int i = 0; i < 50; ++i)
        eng.submit("after", {rt::readwrite(&x)}, [&] { ran.fetch_add(1); });
    EXPECT_THROW(eng.wait(), std::runtime_error);
    EXPECT_EQ(ran.load(), 0);
    EXPECT_EQ(eng.tasks_executed(), 51u);  // all retired, bodies skipped

    // The latch clears with wait(): the next epoch runs normally.
    eng.submit("ok", {rt::readwrite(&x)}, [&] { ran.fetch_add(1); });
    eng.wait();
    EXPECT_EQ(ran.load(), 1);
}

TEST(EngineStress, ForcedExceptionsUnderLoad) {
    // Random DAG with several throwing tasks: first error surfaces, engine
    // stays reusable and consistent afterwards.
    for (int trial = 0; trial < 3; ++trial) {
        rt::Engine eng(4);
        std::vector<long> vals(6, 0);
        CounterRng rng(static_cast<std::uint64_t>(trial) + 31);
        for (int t = 0; t < 1500; ++t) {
            int const dst = static_cast<int>(rng.uniform(2 * t) * 6);
            if (t % 500 == 250)
                eng.submit("boom", {rt::readwrite(&vals[static_cast<size_t>(dst)])},
                           []() -> void { throw std::runtime_error("x"); });
            else
                eng.submit("inc", {rt::readwrite(&vals[static_cast<size_t>(dst)])},
                           [&vals, dst] { ++vals[static_cast<size_t>(dst)]; });
        }
        EXPECT_THROW(eng.wait(), std::runtime_error);
        // Engine reusable: a clean epoch after the failure.
        std::atomic<int> ok{0};
        for (int i = 0; i < 100; ++i)
            eng.submit("ok", {}, [&] { ok.fetch_add(1); });
        eng.wait();
        EXPECT_EQ(ok.load(), 100);
    }
}

TEST(EngineStress, DedupDuplicateAccessEdges) {
    // Read + ReadWrite of the same key must record a single dependency edge
    // to the previous writer.
    rt::Engine eng(2);
    eng.set_trace(true);
    int x = 0;
    eng.submit("w", {rt::write(&x)}, [&] { x = 1; });
    eng.submit("rrw", {rt::read(&x), rt::readwrite(&x)}, [&] { ++x; });
    eng.wait();
    auto const& tr = eng.trace();
    ASSERT_EQ(tr.size(), 2u);
    auto const& rrw = (tr[0].name == "rrw") ? tr[0] : tr[1];
    auto const& w = (tr[0].name == "w") ? tr[0] : tr[1];
    ASSERT_EQ(rrw.deps.size(), 1u);
    EXPECT_EQ(rrw.deps[0], w.id);
    EXPECT_EQ(x, 2);
}

TEST(EngineStress, JobScopedErrorLatchIsolatesJobs) {
    // Two explicit jobs share the engine; one throws. The failure must
    // skip only its own job's successor bodies, never the other job's, and
    // must surface through take_job_error() — not through wait().
    rt::Engine eng(4);
    auto const job_a = eng.new_job();
    auto const job_b = eng.new_job();

    std::atomic<int> a_ran{0}, b_ran{0};
    long key_a = 0, key_b = 0;
    eng.submit("a_boom", {rt::readwrite(&key_a)},
               []() -> void { throw std::runtime_error("job A failed"); },
               0, job_a);
    for (int i = 0; i < 50; ++i) {
        eng.submit("a_skip", {rt::readwrite(&key_a)},
                   [&a_ran] { a_ran.fetch_add(1); }, 0, job_a);
        eng.submit("b_ok", {rt::readwrite(&key_b)},
                   [&b_ran] { b_ran.fetch_add(1); }, 0, job_b);
    }
    // No ambient error: wait() must NOT throw.
    EXPECT_NO_THROW(eng.wait());
    EXPECT_EQ(a_ran.load(), 0) << "poisoned job ran successor bodies";
    EXPECT_EQ(b_ran.load(), 50) << "failure leaked across jobs";

    // The error is latched for its owner, claimed exactly once.
    EXPECT_TRUE(eng.job_poisoned(job_a));
    EXPECT_FALSE(eng.job_poisoned(job_b));
    auto err = eng.take_job_error(job_a);
    ASSERT_TRUE(err != nullptr);
    EXPECT_THROW(std::rethrow_exception(err), std::runtime_error);
    EXPECT_FALSE(eng.job_poisoned(job_a));
    EXPECT_TRUE(eng.take_job_error(job_a) == nullptr);
}

TEST(EngineStress, AmbientJobContractUnchangedAlongsideJobs) {
    // Plain submit() (ambient job) still rethrows on wait() even while an
    // explicit job is poisoned in the same epoch — and that job's error
    // stays latched rather than being consumed by wait().
    rt::Engine eng(3);
    auto const job = eng.new_job();
    eng.submit("job_boom", {},
               []() -> void { throw std::runtime_error("explicit"); }, 0,
               job);
    eng.submit("ambient_boom", {},
               []() -> void { throw std::logic_error("ambient"); });
    EXPECT_THROW(eng.wait(), std::logic_error);
    EXPECT_NO_THROW(eng.wait());  // ambient error consumed by first wait
    auto err = eng.take_job_error(job);
    ASSERT_TRUE(err != nullptr);
    EXPECT_THROW(std::rethrow_exception(err), std::runtime_error);
}

TEST(EngineStress, HostPoisonedJobSkipsQueuedBodies) {
    // poison_job() from the host (the service layer's path) marks the job
    // before its queued tasks run; their bodies are skipped but dependents
    // still release, so wait() terminates.
    rt::Engine eng(2);
    auto const job = eng.new_job();
    eng.poison_job(job, std::make_exception_ptr(std::runtime_error("host")));
    std::atomic<int> ran{0};
    long key = 0;
    for (int i = 0; i < 20; ++i)
        eng.submit("skipped", {rt::readwrite(&key)},
                   [&ran] { ran.fetch_add(1); }, 0, job);
    EXPECT_NO_THROW(eng.wait());
    EXPECT_EQ(ran.load(), 0);
    EXPECT_TRUE(eng.take_job_error(job) != nullptr);
}
