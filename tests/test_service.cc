// Service-layer tests: batched jobs through PolarService checked bit-for-
// bit against single-job oracle runs, failure containment (one bad job
// never aborts a batch), QoS classes, spec validation, single-tile jobs,
// and workspace-pool reuse. Runs under the "service" ctest label (and the
// tsan-service preset).

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "service/service.hh"

using namespace tbp;
using svc::JobClass;
using svc::JobKind;
using svc::JobSpec;
using svc::Workspace;

namespace {

/// Single-job oracle: execute the spec exactly as a service worker would
/// (builtin provider, private sequential engine) and return the staged
/// OutU/OutH bytes.
struct OracleOut {
    std::vector<std::byte> u, h;
    Status status = Status::InternalError;
};

OracleOut oracle(JobSpec const& spec) {
    OracleOut o;
    auto reg = svc::ProviderRegistry::builtin();
    Workspace ws;
    svc::JobResult res;
    try {
        rt::Engine eng(1, rt::Mode::Sequential);
        (*reg.find(spec.kind))(eng, spec, ws, res);
        o.status = res.status;
    } catch (Error const&) {
        o.status = Status::NumericalError;
    }
    if (o.status == Status::Ok) {
        o.u.assign(ws.data(Workspace::OutU),
                   ws.data(Workspace::OutU) + ws.used(Workspace::OutU));
        o.h.assign(ws.data(Workspace::OutH),
                   ws.data(Workspace::OutH) + ws.used(Workspace::OutH));
    }
    return o;
}

JobSpec make_spec(JobKind k, char type, std::int64_t m, std::int64_t n,
                  int nb, std::uint64_t seed, double cond = 1e4) {
    JobSpec s;
    s.kind = k;
    s.type = type;
    s.m = m;
    s.n = n;
    s.nb = nb;
    s.seed = seed;
    s.cond = cond;
    if (k == JobKind::ZoloPd)
        s.r = 2;
    // Pinned, not Auto: these tests compare Latency- and Bulk-class
    // instances of one spec against a single oracle run, and Auto precision
    // resolves per QoS class (Bulk -> Adaptive), which would legitimately
    // change the bytes. Pinning Adaptive keeps the comparison class-blind
    // while still exercising the ladder in the polar kinds.
    s.precision = svc::JobPrec::Adaptive;
    return s;
}

bool bytes_match(svc::JobHandle const& h, OracleOut const& o) {
    return h.output_bytes(Workspace::OutU) == o.u.size()
           && h.output_bytes(Workspace::OutH) == o.h.size()
           && std::memcmp(h.output(Workspace::OutU), o.u.data(),
                          o.u.size()) == 0
           && std::memcmp(h.output(Workspace::OutH), o.h.data(),
                          o.h.size()) == 0;
}

}  // namespace

TEST(Service, MixedBatchMatchesSingleJobOracleBitwise) {
    // Deterministic seeds, all four kinds and scalar types, each spec
    // repeated several times across the concurrent batch: every output
    // must be byte-identical to a single-job run of the same spec.
    std::vector<JobSpec> specs = {
        make_spec(JobKind::Qdwh, 'd', 16, 16, 8, 11),
        make_spec(JobKind::Qdwh, 's', 20, 12, 4, 12, 1e3),
        make_spec(JobKind::Qdwh, 'z', 12, 12, 4, 13),
        make_spec(JobKind::ZoloPd, 'd', 12, 12, 4, 14),
        make_spec(JobKind::Geqrf, 'c', 16, 12, 4, 15),
        make_spec(JobKind::Posv, 'd', 2, 16, 8, 16),
    };
    std::vector<OracleOut> oracles;
    for (auto const& s : specs)
        oracles.push_back(oracle(s));

    rt::Engine eng(3);
    svc::PolarService service(eng);
    int const jobs = 36;
    std::vector<svc::JobHandle> handles;
    for (int i = 0; i < jobs; ++i) {
        JobSpec s = specs[static_cast<size_t>(i) % specs.size()];
        s.cls = (i % 4 == 0) ? JobClass::Latency : JobClass::Bulk;
        handles.push_back(service.submit(s));
    }
    service.wait_all();

    for (int i = 0; i < jobs; ++i) {
        auto const d = static_cast<size_t>(i) % specs.size();
        auto const& res = handles[static_cast<size_t>(i)].result();
        ASSERT_EQ(res.status, Status::Ok)
            << "job " << i << ": " << res.error;
        EXPECT_TRUE(bytes_match(handles[static_cast<size_t>(i)], oracles[d]))
            << "job " << i << " bytes differ from its oracle";
    }
    auto const st = service.stats();
    EXPECT_EQ(st.admitted, static_cast<std::uint64_t>(jobs));
    EXPECT_EQ(st.completed, static_cast<std::uint64_t>(jobs));
    EXPECT_EQ(st.failed, 0u);
}

TEST(Service, FailingJobsReportErrorsWithoutAbortingBatch) {
    rt::Engine eng(3);
    svc::PolarService service(eng);

    // Healthy jobs surrounding three distinct failure modes.
    auto good = make_spec(JobKind::Qdwh, 'd', 12, 12, 4, 21);
    auto not_conv = make_spec(JobKind::Qdwh, 'd', 16, 16, 8, 22, 1e8);
    not_conv.max_iter = 1;
    auto non_hpd = make_spec(JobKind::Posv, 'd', 1, 16, 8, 23);
    non_hpd.cond = -1;  // indefinite input: potrf throws mid-batch
    auto invalid = make_spec(JobKind::Qdwh, 'd', 8, 16, 8, 24);  // m < n

    std::vector<svc::JobHandle> handles;
    for (int i = 0; i < 6; ++i)
        handles.push_back(service.submit(good));
    auto const h_nc = service.submit(not_conv);
    auto const h_hpd = service.submit(non_hpd);
    auto const h_inv = service.submit(invalid);
    for (int i = 0; i < 6; ++i)
        handles.push_back(service.submit(good));
    service.wait_all();

    EXPECT_EQ(h_nc.result().status, Status::NotConverged);
    EXPECT_FALSE(h_nc.result().error.empty());
    EXPECT_EQ(h_hpd.result().status, Status::NumericalError);
    EXPECT_FALSE(h_hpd.result().error.empty());
    EXPECT_EQ(h_inv.result().status, Status::InvalidArgument);

    auto const o = oracle(good);
    for (auto const& h : handles) {
        ASSERT_EQ(h.result().status, Status::Ok) << h.result().error;
        EXPECT_TRUE(bytes_match(h, o));
    }
    EXPECT_EQ(service.stats().failed, 3u);

    // The shared engine survives unpoisoned: its ambient job still works.
    int ran = 0;
    eng.submit("probe", {}, [&ran] { ran = 1; });
    eng.wait();
    EXPECT_EQ(ran, 1);
}

TEST(Service, InvalidSpecsYieldInvalidArgumentResults) {
    rt::Engine eng(2);
    svc::PolarService service(eng);
    auto bad_type = make_spec(JobKind::Qdwh, 'q', 8, 8, 4, 1);
    auto bad_nb = make_spec(JobKind::Qdwh, 'd', 8, 8, 0, 2);
    auto bad_dims = make_spec(JobKind::Geqrf, 'd', 4, 9, 4, 3);
    auto bad_rhs = make_spec(JobKind::Posv, 'd', 0, 8, 4, 4);
    for (auto const& s : {bad_type, bad_nb, bad_dims, bad_rhs}) {
        auto h = service.submit(s);
        EXPECT_EQ(h.result().status, Status::InvalidArgument);
        EXPECT_FALSE(h.result().error.empty());
    }
    service.wait_all();
    EXPECT_EQ(service.stats().failed, 4u);
}

TEST(Service, SingleTileJobsRun) {
    // nb >= n: the whole problem in one tile, every kind.
    rt::Engine eng(2);
    svc::PolarService service(eng);
    std::vector<svc::JobHandle> handles;
    handles.push_back(
        service.submit(make_spec(JobKind::Qdwh, 'd', 12, 12, 16, 31)));
    handles.push_back(
        service.submit(make_spec(JobKind::ZoloPd, 'z', 8, 8, 8, 32, 1e2)));
    handles.push_back(
        service.submit(make_spec(JobKind::Geqrf, 's', 12, 8, 12, 33)));
    handles.push_back(
        service.submit(make_spec(JobKind::Posv, 'c', 1, 8, 8, 34)));
    service.wait_all();
    for (auto const& h : handles) {
        ASSERT_EQ(h.result().status, Status::Ok) << h.result().error;
        EXPECT_GT(h.output_bytes(Workspace::OutU), 0u);
    }
}

TEST(Service, LatencyClassDoesNotStarveBulkAndViceVersa) {
    // A deep bulk backlog plus interleaved latency jobs: everything must
    // complete in both QoS and FIFO modes (the priority split reorders,
    // never drops or starves).
    for (bool fifo : {false, true}) {
        rt::Engine eng(3);
        svc::ServiceOptions so;
        so.fifo = fifo;
        svc::PolarService service(eng, so);
        std::vector<svc::JobHandle> handles;
        for (int i = 0; i < 48; ++i) {
            auto s = make_spec(JobKind::Geqrf, 'd', 12, 8, 4,
                               100 + static_cast<std::uint64_t>(i));
            s.cls = (i % 8 == 0) ? JobClass::Latency : JobClass::Bulk;
            handles.push_back(service.submit(s));
        }
        service.wait_all();
        auto const st = service.stats();
        EXPECT_EQ(st.completed, 48u);
        EXPECT_EQ(st.failed, 0u);
        for (auto const& h : handles)
            EXPECT_TRUE(h.result().ok());
    }
}

TEST(Service, WorkspacePoolReusesArenasAcrossBatches) {
    rt::Engine eng(2);
    svc::PolarService service(eng);
    auto spec = make_spec(JobKind::Geqrf, 'd', 16, 12, 4, 41);

    {
        std::vector<svc::JobHandle> handles;
        for (int i = 0; i < 12; ++i)
            handles.push_back(service.submit(spec));
        service.wait_all();
    }  // handles destroyed: workspaces return to the pool
    auto const created_first = service.stats().workspaces_created;
    EXPECT_GT(created_first, 0u);

    {
        std::vector<svc::JobHandle> handles;
        for (int i = 0; i < 12; ++i)
            handles.push_back(service.submit(spec));
        service.wait_all();
    }
    // A warm pool admits a same-shape batch without any new arenas.
    EXPECT_EQ(service.stats().workspaces_created, created_first);
}

TEST(Service, WorkspaceArenaGrowsMonotonically) {
    svc::Workspace ws;
    auto* p1 = ws.get(Workspace::OutU, 64);
    ASSERT_NE(p1, nullptr);
    EXPECT_EQ(ws.used(Workspace::OutU), 64u);
    ws.get(Workspace::OutU, 32);  // shrink request: capacity stays
    EXPECT_EQ(ws.used(Workspace::OutU), 32u);
    EXPECT_GE(ws.capacity(), 64u);
    ws.reset();
    EXPECT_EQ(ws.used(Workspace::OutU), 0u);
    EXPECT_GE(ws.capacity(), 64u);  // reset keeps buffers for reuse
}

TEST(Service, CustomProviderRegistryAndUnregisteredKind) {
    rt::Engine eng(2);
    svc::ProviderRegistry reg;  // empty: nothing registered
    reg.add(JobKind::Qdwh, [](rt::Engine&, JobSpec const&, Workspace&,
                              svc::JobResult& res) {
        throw std::runtime_error("provider exploded");
        (void)res;
    });
    svc::PolarService service(eng, reg);

    auto h_throw = service.submit(make_spec(JobKind::Qdwh, 'd', 8, 8, 4, 51));
    auto h_none = service.submit(make_spec(JobKind::Posv, 'd', 1, 8, 4, 52));
    service.wait_all();

    EXPECT_EQ(h_throw.result().status, Status::InternalError);
    EXPECT_NE(h_throw.result().error.find("provider exploded"),
              std::string::npos);
    EXPECT_EQ(h_none.result().status, Status::InvalidArgument);

    // The thrown exception was scoped to its job: ambient engine use is
    // unaffected after the service claimed the latch in wait_all().
    eng.submit("probe", {}, [] {});
    EXPECT_NO_THROW(eng.wait());
}
