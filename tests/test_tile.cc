#include <gtest/gtest.h>

#include <vector>

#include "common/error.hh"
#include "matrix/tile.hh"

using namespace tbp;

TEST(Tile, BasicAccess) {
    std::vector<double> buf(12);
    Tile<double> t(buf.data(), 3, 4, 3);
    EXPECT_EQ(t.mb(), 3);
    EXPECT_EQ(t.nb(), 4);
    t(2, 3) = 7.5;
    EXPECT_EQ(buf[2 + 3 * 3], 7.5);
}

TEST(Tile, LeadingDimension) {
    std::vector<double> buf(20, 0.0);
    Tile<double> t(buf.data(), 3, 4, 5);  // ld 5 > mb 3
    t(1, 2) = 2.0;
    EXPECT_EQ(buf[1 + 2 * 5], 2.0);
}

TEST(Tile, SubView) {
    std::vector<double> buf(16);
    for (int i = 0; i < 16; ++i)
        buf[static_cast<size_t>(i)] = i;
    Tile<double> t(buf.data(), 4, 4, 4);
    auto s = t.sub(1, 2, 2, 2);
    EXPECT_EQ(s.mb(), 2);
    EXPECT_EQ(s.nb(), 2);
    EXPECT_EQ(s(0, 0), t(1, 2));
    EXPECT_EQ(s(1, 1), t(2, 3));
}

TEST(Tile, AtBoundsChecked) {
    std::vector<double> buf(4);
    Tile<double> t(buf.data(), 2, 2, 2);
    EXPECT_NO_THROW(t.at(1, 1));
    EXPECT_THROW(t.at(2, 0), Error);
    EXPECT_THROW(t.at(0, -1), Error);
}

TEST(Tile, EmptyDefault) {
    Tile<double> t;
    EXPECT_TRUE(t.empty());
}

TEST(Tile, BadDimsRejected) {
    std::vector<double> buf(4);
    EXPECT_THROW(Tile<double>(buf.data(), 4, 1, 2), Error);  // ld < mb
}
