#include <gtest/gtest.h>

#include <complex>

#include "common/flops.hh"
#include "common/types.hh"

using namespace tbp;

TEST(Types, IsComplex) {
    EXPECT_FALSE(is_complex_v<float>);
    EXPECT_FALSE(is_complex_v<double>);
    EXPECT_TRUE(is_complex_v<std::complex<float>>);
    EXPECT_TRUE(is_complex_v<std::complex<double>>);
}

TEST(Types, RealType) {
    static_assert(std::is_same_v<real_t<double>, double>);
    static_assert(std::is_same_v<real_t<std::complex<float>>, float>);
    static_assert(std::is_same_v<real_t<std::complex<double>>, double>);
    SUCCEED();
}

TEST(Types, ConjVal) {
    EXPECT_EQ(conj_val(3.0), 3.0);
    std::complex<double> z(1.0, 2.0);
    EXPECT_EQ(conj_val(z), std::conj(z));
}

TEST(Types, AbsSq) {
    EXPECT_DOUBLE_EQ(abs_sq(3.0), 9.0);
    EXPECT_DOUBLE_EQ(abs_sq(std::complex<double>(3.0, 4.0)), 25.0);
}

TEST(Types, RealPartAndFromReal) {
    EXPECT_DOUBLE_EQ(real_part(std::complex<double>(5.0, -2.0)), 5.0);
    EXPECT_DOUBLE_EQ(real_part(7.0), 7.0);
    EXPECT_EQ(from_real<std::complex<double>>(2.5),
              std::complex<double>(2.5, 0.0));
}

TEST(Types, FmaFlops) {
    EXPECT_DOUBLE_EQ(fma_flops<double>(), 2.0);
    EXPECT_DOUBLE_EQ(fma_flops<std::complex<double>>(), 8.0);
}

TEST(Types, ApplyOp) {
    std::complex<double> z(1.0, 2.0);
    EXPECT_EQ(apply_op(Op::NoTrans, z), z);
    EXPECT_EQ(apply_op(Op::Trans, z), z);
    EXPECT_EQ(apply_op(Op::ConjTrans, z), std::conj(z));
}

TEST(Types, Transpose) {
    EXPECT_EQ(transpose(Op::NoTrans), Op::Trans);
    EXPECT_EQ(transpose(Op::Trans), Op::NoTrans);
}

TEST(Types, ToString) {
    EXPECT_STREQ(to_string(Op::ConjTrans), "ConjTrans");
    EXPECT_STREQ(to_string(Uplo::Lower), "Lower");
    EXPECT_STREQ(to_string(Norm::Fro), "Fro");
}

TEST(Flops, QdwhModelMatchesPaperFormula) {
    // Paper Section 4 with 3 QR + 3 Cholesky iterations at n = 100:
    // (4/3 + 26 + 13 + 2) n^3
    double const n3 = 1e6;
    EXPECT_NEAR(tbp::flops::qdwh_model(100, 3, 3),
                (4.0 / 3.0 + 3 * (8 + 2.0 / 3.0) + 3 * (4 + 1.0 / 3.0) + 2.0) * n3,
                1e-6 * n3);
}

TEST(Flops, BasicFormulas) {
    EXPECT_DOUBLE_EQ(tbp::flops::gemm(2, 3, 4), 48.0);
    EXPECT_GT(tbp::flops::geqrf(100, 50), 0.0);
    EXPECT_GT(tbp::flops::potrf(64), 64.0 * 64 * 64 / 3);
}
