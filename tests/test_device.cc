// Device-executor tests: the batched path (dev::Executor, Target::
// BatchedHost) must be bitwise identical to the per-tile oracle — the
// collector only changes how tile operations are grouped into scheduler
// tasks, never what runs or in what order on each tile — and its DAG
// accounting (tile ops vs engine tasks) must reconcile exactly with the
// perf model's batch-aware replay.

#include <gtest/gtest.h>

#include <cstring>

#include "core/qdwh.hh"
#include "device/executor.hh"
#include "gen/matgen.hh"
#include "linalg/gemm.hh"
#include "linalg/geqrf.hh"
#include "linalg/potrf.hh"
#include "linalg/util.hh"
#include "matrix/tiled_matrix.hh"
#include "perf/cost_model.hh"
#include "runtime/engine.hh"
#include "runtime/trace_analysis.hh"
#include "test_util.hh"

using namespace tbp;

namespace {

/// Bitwise equality: the batched path must not perturb a single ulp.
template <typename T>
void expect_bitwise(TiledMatrix<T> const& A, TiledMatrix<T> const& B) {
    ASSERT_EQ(A.m(), B.m());
    ASSERT_EQ(A.n(), B.n());
    for (std::int64_t j = 0; j < A.n(); ++j)
        for (std::int64_t i = 0; i < A.m(); ++i) {
            T const a = A.at(i, j);
            T const b = B.at(i, j);
            ASSERT_EQ(0, std::memcmp(&a, &b, sizeof(T)))
                << "mismatch at (" << i << ", " << j << ")";
        }
}

dev::ExecOptions batched_opts(int max_batch = 32) {
    dev::ExecOptions eo;
    eo.target = dev::Target::BatchedHost;
    eo.max_batch = max_batch;
    return eo;
}

}  // namespace

template <typename T>
class DeviceTyped : public ::testing::Test {};
TYPED_TEST_SUITE(DeviceTyped, test::AllTypes);

// Batched gemm vs the per-tile oracle, with ragged edge tiles (dimensions
// deliberately not multiples of nb: edge tiles carry different flop keys
// and must split off into their own groups without corrupting anything).
TYPED_TEST(DeviceTyped, GemmBitwiseVsOracle) {
    using T = TypeParam;
    rt::Engine eng(3);
    int const nb = 16;
    std::int64_t const m = 70, n = 53, k = 37;
    TiledMatrix<T> A(m, k, nb), B(k, n, nb), C0(m, n, nb), C1(m, n, nb);
    gen::fill_gaussian(eng, A, 11);
    gen::fill_gaussian(eng, B, 22);
    gen::fill_gaussian(eng, C0, 33);
    la::copy(eng, C0, C1);
    eng.wait();

    la::gemm(eng, Op::NoTrans, Op::NoTrans, T(1), A, B, T(2), C0);
    eng.wait();

    dev::Executor ex(eng, batched_opts(8));
    la::gemm(ex, Op::NoTrans, Op::NoTrans, T(1), A, B, T(2), C1);
    ex.wait();

    expect_bitwise(C0, C1);
    EXPECT_GT(ex.batch_stats().coalescing(), 1.0);
}

// Batched dense QR (geqrf + ungqr: the unmqr/tsmqr update sweeps coalesce,
// the geqrt/tsqrt panel chain stays per-tile) vs the oracle, ragged tiles.
TYPED_TEST(DeviceTyped, GeqrfBitwiseVsOracle) {
    using T = TypeParam;
    rt::Engine eng(3);
    int const nb = 16;
    std::int64_t const m = 93, n = 60;
    TiledMatrix<T> A0(m, n, nb), A1(m, n, nb);
    gen::fill_gaussian(eng, A0, 7);
    la::copy(eng, A0, A1);
    eng.wait();

    TiledMatrix<T> T0 = la::alloc_qr_t(A0);
    TiledMatrix<T> Q0(m, n, nb);
    la::geqrf(eng, A0, T0);
    la::ungqr(eng, A0, T0, Q0);
    eng.wait();

    dev::Executor ex(eng, batched_opts());
    TiledMatrix<T> T1 = la::alloc_qr_t(A1);
    TiledMatrix<T> Q1(m, n, nb);
    la::geqrf(ex, A1, T1);
    la::ungqr(ex, A1, T1, Q1);
    ex.wait();

    expect_bitwise(A0, A1);
    expect_bitwise(Q0, Q1);
}

// Batched structured stacked QR (the ttqrt/ttmqr fold path of the QDWH
// iterate) vs the oracle.
TYPED_TEST(DeviceTyped, StackedTriBitwiseVsOracle) {
    using T = TypeParam;
    rt::Engine eng(3);
    int const nb = 16;
    std::int64_t const n = 64;
    int const mt1 = 4, nt = 4;
    TiledMatrix<T> W0(2 * n, n, nb), W1(2 * n, n, nb);
    // Only W1 (the top block) is caller-initialized; W2 rows belong to the
    // structured factorization.
    gen::fill_gaussian(eng, W0.sub(0, 0, mt1, nt), 5);
    la::copy(eng, W0.sub(0, 0, mt1, nt), W1.sub(0, 0, mt1, nt));
    eng.wait();

    T const diag = from_real<T>(real_t<T>(0.75));
    TiledMatrix<T> T0 = la::alloc_qr_t(W0);
    TiledMatrix<T> Q0(2 * n, n, nb);
    la::geqrf_stacked_tri(eng, W0, mt1, diag, T0);
    la::ungqr_stacked_tri(eng, W0, mt1, T0, Q0);
    eng.wait();

    dev::Executor ex(eng, batched_opts(16));
    TiledMatrix<T> T1 = la::alloc_qr_t(W1);
    TiledMatrix<T> Q1(2 * n, n, nb);
    la::geqrf_stacked_tri(ex, W1, mt1, diag, T1);
    la::ungqr_stacked_tri(ex, W1, mt1, T1, Q1);
    ex.wait();

    expect_bitwise(W0, W1);
    expect_bitwise(Q0, Q1);
}

// max_batch = 1 degenerates to the per-tile path: one engine task per tile
// op, still bitwise identical.
TEST(Device, BatchSizeOne) {
    rt::Engine eng(2);
    int const nb = 8;
    TiledMatrix<double> A(32, 32, nb), B(32, 32, nb), C0(32, 32, nb),
        C1(32, 32, nb);
    gen::fill_gaussian(eng, A, 1);
    gen::fill_gaussian(eng, B, 2);
    la::set(eng, 0.0, 0.0, C0);
    la::set(eng, 0.0, 0.0, C1);
    eng.wait();

    la::gemm(eng, Op::NoTrans, Op::NoTrans, 1.0, A, B, 0.0, C0);
    eng.wait();

    dev::Executor ex(eng, batched_opts(1));
    la::gemm(ex, Op::NoTrans, Op::NoTrans, 1.0, A, B, 0.0, C1);
    ex.wait();

    expect_bitwise(C0, C1);
    auto const& bs = ex.batch_stats();
    EXPECT_EQ(bs.ops, bs.tasks);
    EXPECT_EQ(bs.groups, 0u);
    EXPECT_DOUBLE_EQ(bs.coalescing(), 1.0);
}

// An executor with no submissions: flush/fence/wait are no-ops and the
// stats stay zero (empty-batch edge of the collector).
TEST(Device, EmptyExecutor) {
    rt::Engine eng(1);
    dev::Executor ex(eng, batched_opts());
    ex.flush();
    ex.op_fence();
    ex.wait();
    ex.wait();  // idempotent
    EXPECT_EQ(ex.batch_stats().ops, 0u);
    EXPECT_EQ(ex.batch_stats().tasks, 0u);
    EXPECT_EQ(ex.stream_stats().issues, 0u);
    EXPECT_EQ(ex.stream_stats().h2d_events, 0u);
}

// The Tasks-target executor is a transparent passthrough: no grouping, no
// stream traffic, identical results.
TEST(Device, TasksTargetPassthrough) {
    rt::Engine eng(2);
    dev::ExecOptions eo;  // Target::Tasks
    dev::Executor ex(eng, eo);
    TiledMatrix<double> A(24, 24, 8), B(24, 24, 8), C(24, 24, 8);
    gen::fill_gaussian(eng, A, 3);
    gen::fill_gaussian(eng, B, 4);
    la::set(ex, 0.0, 0.0, C);
    la::gemm(ex, Op::NoTrans, Op::NoTrans, 1.0, A, B, 0.0, C);
    ex.wait();
    auto const& bs = ex.batch_stats();
    EXPECT_EQ(bs.ops, bs.tasks);
    EXPECT_EQ(ex.stream_stats().h2d_bytes, 0.0);
}

// Batched QDWH must be bitwise identical to the per-tile oracle. The
// engine runs in Sequential mode: the norm estimates accumulate partial
// sums in task-completion order, which is schedule-dependent under a
// multithreaded engine for both targets alike — Sequential pins it so the
// comparison is exact.
TYPED_TEST(DeviceTyped, QdwhBitwiseVsOracle) {
    using T = TypeParam;
    rt::Engine eng(1, rt::Mode::Sequential);
    std::int64_t const n = 48;
    int const nb = 16;
    gen::MatGenOptions g;
    g.cond = 1e4;
    g.seed = 99;
    TiledMatrix<T> A0 = gen::cond_matrix<T>(eng, n, n, nb, g);
    TiledMatrix<T> A1(n, n, nb);
    la::copy(eng, A0, A1);
    eng.wait();
    TiledMatrix<T> H0(n, n, nb), H1(n, n, nb);

    QdwhInfo i0, i1;
    QdwhOptions o0;
    ASSERT_EQ(Status::Ok, qdwh_status(eng, A0, H0, i0, o0));

    QdwhOptions o1;
    o1.target = dev::Target::BatchedHost;
    ASSERT_EQ(Status::Ok, qdwh_status(eng, A1, H1, i1, o1));

    EXPECT_EQ(i0.iterations, i1.iterations);
    expect_bitwise(A0, A1);
    expect_bitwise(H0, H1);
    // The batched run reports its DAG shape: ops routed, tasks created,
    // and a real coalescing factor.
    EXPECT_GT(i1.tile_ops, 0u);
    EXPECT_GT(i1.engine_tasks, 0u);
    EXPECT_LT(i1.engine_tasks, i1.tile_ops);
    EXPECT_GT(i1.coalescing, 1.0);
    EXPECT_GT(i1.stream_h2d_bytes, 0.0);
    EXPECT_GE(i1.stream_overlap, 0.0);
    EXPECT_LE(i1.stream_overlap, 1.0);
}

// Lookahead is a pure scheduling hint: promoting updates into the next
// panels' columns changes priorities only, never the numerical result.
TYPED_TEST(DeviceTyped, LookaheadBitwise) {
    using T = TypeParam;
    rt::Engine eng(3);
    std::int64_t const m = 96, n = 64;
    int const nb = 16;
    TiledMatrix<T> A0(m, n, nb), A1(m, n, nb);
    gen::fill_gaussian(eng, A0, 17);
    la::copy(eng, A0, A1);
    eng.wait();

    TiledMatrix<T> T0 = la::alloc_qr_t(A0);
    TiledMatrix<T> T1 = la::alloc_qr_t(A1);
    la::geqrf(eng, A0, T0, /*lookahead=*/0);
    la::geqrf(eng, A1, T1, /*lookahead=*/2);
    eng.wait();
    expect_bitwise(A0, A1);

    // potrf lookahead likewise (on a fresh HPD matrix).
    TiledMatrix<T> P0 = gen::hpd_matrix<T>(eng, n, nb, 23);
    TiledMatrix<T> P1(n, n, nb);
    la::copy(eng, P0, P1);
    eng.wait();
    la::potrf(eng, Uplo::Lower, P0, /*lookahead=*/0);
    la::potrf(eng, Uplo::Lower, P1, /*lookahead=*/3);
    eng.wait();
    expect_bitwise(P0, P1);
}

// DAG accounting: for a uniform tiling, the traced batched run must match
// perf::qr_batched_counts exactly — tile_ops equals the per-tile replay
// (qr_task_counts) and tasks equals the collector replay.
TEST(Device, DenseQrCountsMatchTrace) {
    rt::Engine eng(2);
    int const nb = 8;
    int const mt1 = 4, nt = 3;
    int const max_batch = 6;
    std::int64_t const m = static_cast<std::int64_t>(mt1 + nt) * nb;
    std::int64_t const n = static_cast<std::int64_t>(nt) * nb;

    TiledMatrix<double> W(m, n, nb);
    gen::fill_gaussian(eng, W.sub(0, 0, mt1, nt), 3);
    eng.wait();
    eng.reset_stats();
    eng.set_trace(true);

    dev::Executor ex(eng, batched_opts(max_batch));
    // The dense contract of qr_task_counts: W2 := I, geqrf(W), Q := I,
    // ungqr — submitted in exactly this order.
    la::set_identity(ex, W.sub(mt1, 0, nt, nt));
    TiledMatrix<double> Tm = la::alloc_qr_t(W);
    la::geqrf(ex, W, Tm);
    TiledMatrix<double> Q(m, n, nb);
    la::ungqr(ex, W, Tm, Q);
    ex.wait();
    eng.set_trace(false);

    auto const dag = rt::analyze(eng.trace());
    auto const per_tile = perf::qr_task_counts(mt1, nt, /*structured=*/false);
    auto const batched =
        perf::qr_batched_counts(mt1, nt, nb, /*structured=*/false, max_batch);

    EXPECT_EQ(batched.tile_ops, per_tile.total());
    EXPECT_EQ(static_cast<std::int64_t>(dag.tile_ops), batched.tile_ops);
    EXPECT_EQ(static_cast<std::int64_t>(dag.tasks), batched.engine_tasks);
    EXPECT_EQ(static_cast<std::int64_t>(ex.batch_stats().ops),
              batched.tile_ops);
    EXPECT_EQ(static_cast<std::int64_t>(ex.batch_stats().tasks),
              batched.engine_tasks);
    EXPECT_LT(batched.engine_tasks, batched.tile_ops);
}

// Same reconciliation for the structured stacked-triangle path.
TEST(Device, StructuredQrCountsMatchTrace) {
    rt::Engine eng(2);
    int const nb = 8;
    int const mt1 = 4, nt = 4;
    int const max_batch = 8;
    std::int64_t const m = static_cast<std::int64_t>(mt1 + nt) * nb;
    std::int64_t const n = static_cast<std::int64_t>(nt) * nb;

    TiledMatrix<double> W(m, n, nb);
    gen::fill_gaussian(eng, W.sub(0, 0, mt1, nt), 3);
    eng.wait();
    eng.reset_stats();
    eng.set_trace(true);

    dev::Executor ex(eng, batched_opts(max_batch));
    TiledMatrix<double> Tm = la::alloc_qr_t(W);
    la::geqrf_stacked_tri(ex, W, mt1, 1.0, Tm);
    TiledMatrix<double> Q(m, n, nb);
    la::ungqr_stacked_tri(ex, W, mt1, Tm, Q);
    ex.wait();
    eng.set_trace(false);

    auto const dag = rt::analyze(eng.trace());
    auto const per_tile = perf::qr_task_counts(mt1, nt, /*structured=*/true);
    auto const batched =
        perf::qr_batched_counts(mt1, nt, nb, /*structured=*/true, max_batch);

    EXPECT_EQ(batched.tile_ops, per_tile.total());
    EXPECT_EQ(static_cast<std::int64_t>(dag.tile_ops), batched.tile_ops);
    EXPECT_EQ(static_cast<std::int64_t>(dag.tasks), batched.engine_tasks);
    EXPECT_LT(batched.engine_tasks, batched.tile_ops);
}

// The acceptance bar of the batched path: at QDWH scale (nt >= 16 panels)
// the scheduler sees at least 5x fewer tasks than tile ops.
TEST(Device, TaskReductionAtScale) {
    auto const c =
        perf::qr_batched_counts(16, 16, 64, /*structured=*/true, 32);
    EXPECT_GE(c.coalescing(), 5.0);
}

// Stream model sanity: issuing batches stages tiles H2D once (residency),
// sync writes dirty tiles back D2H, overlap stays in [0, 1]. One device,
// because residency is per-device and placement round-robins across them.
TEST(Device, StreamModel) {
    perf::MachineModel mach = perf::MachineModel::summit(1);
    std::size_t const tile_bytes = 64 * 64 * sizeof(double);
    dev::StreamSet ss(1, mach, tile_bytes);

    int x = 0, y = 0, z = 0;
    std::vector<rt::Access> acc = {rt::read(&x), rt::read(&y),
                                   rt::readwrite(&z)};
    ss.issue(acc, 1e9);
    auto const& st1 = ss.stats();
    EXPECT_EQ(st1.issues, 1u);
    EXPECT_EQ(st1.h2d_events, 3u);
    EXPECT_EQ(st1.h2d_bytes, 3.0 * static_cast<double>(tile_bytes));
    EXPECT_GT(st1.compute_seconds, 0.0);

    // Re-issuing the same accesses is resident: no new H2D traffic.
    ss.issue(acc, 1e9);
    EXPECT_EQ(ss.stats().h2d_events, 3u);

    ss.sync();
    auto const& st2 = ss.stats();
    EXPECT_EQ(st2.d2h_events, 1u);  // only z is dirty
    EXPECT_EQ(st2.d2h_bytes, static_cast<double>(tile_bytes));
    EXPECT_GE(st2.overlap_fraction(), 0.0);
    EXPECT_LE(st2.overlap_fraction(), 1.0);

    ss.reset_residency();
    ss.issue(acc, 1e9);
    EXPECT_EQ(ss.stats().h2d_events, 6u);

    // Round-robin placement: two devices alternate, and each stages its
    // own copy of the operands (residency is per-device).
    dev::StreamSet ss2(2, mach, tile_bytes);
    EXPECT_EQ(ss2.issue(acc, 1e9), 0);
    EXPECT_EQ(ss2.issue(acc, 1e9), 1);
    EXPECT_EQ(ss2.stats().h2d_events, 6u);
}

// Error propagation through a batched body: a throwing tile op must
// surface at the executor's synchronization point like any engine task.
TEST(Device, BatchedErrorPropagates) {
    rt::Engine eng(2);
    int const nb = 8;
    TiledMatrix<double> A = gen::hpd_matrix<double>(eng, 32, nb, 31);
    // Make the matrix indefinite so potrf's trailing solve chain feeds a
    // batched herk/gemm sweep after a failing pivot.
    for (std::int64_t i = 0; i < 32; ++i)
        A.at(i, i) -= 1000.0;
    eng.wait();
    dev::Executor ex(eng, batched_opts());
    EXPECT_THROW(
        {
            la::potrf(ex, Uplo::Lower, A);
            ex.wait();
        },
        Error);
    // The engine must be clean again for the next use.
    eng.wait();
}
