// Regression tests for the benchmark JSON emitter: JsonRecord::quote must
// produce RFC 8259-valid strings for every byte a solver name, error
// message, or hostname can carry (the service bench serializes JobResult
// error strings, which contain quotes and newlines from exception text).

#include <gtest/gtest.h>

#include <string>

#include "bench/bench_util.hh"

using tbp::bench::JsonRecord;

TEST(JsonQuote, PlainStringPassesThrough) {
    EXPECT_EQ(JsonRecord::quote("qdwh d 1024"), "\"qdwh d 1024\"");
    EXPECT_EQ(JsonRecord::quote(""), "\"\"");
}

TEST(JsonQuote, QuoteAndBackslashEscaped) {
    EXPECT_EQ(JsonRecord::quote("a\"b"), "\"a\\\"b\"");
    EXPECT_EQ(JsonRecord::quote("a\\b"), "\"a\\\\b\"");
    EXPECT_EQ(JsonRecord::quote("\\\""), "\"\\\\\\\"\"");
}

TEST(JsonQuote, CommonControlShorthands) {
    EXPECT_EQ(JsonRecord::quote("a\nb"), "\"a\\nb\"");
    EXPECT_EQ(JsonRecord::quote("a\tb"), "\"a\\tb\"");
    EXPECT_EQ(JsonRecord::quote("a\rb"), "\"a\\rb\"");
    EXPECT_EQ(JsonRecord::quote("a\bb"), "\"a\\bb\"");
    EXPECT_EQ(JsonRecord::quote("a\fb"), "\"a\\fb\"");
}

TEST(JsonQuote, RemainingControlCharsUseUnicodeEscapes) {
    EXPECT_EQ(JsonRecord::quote(std::string(1, '\x01')), "\"\\u0001\"");
    EXPECT_EQ(JsonRecord::quote(std::string(1, '\x1f')), "\"\\u001f\"");
    EXPECT_EQ(JsonRecord::quote(std::string("a\x0b") + "b"), "\"a\\u000bb\"");
    // NUL embedded in a std::string must not truncate the output.
    std::string nul("a");
    nul.push_back('\0');
    nul += "b";
    EXPECT_EQ(JsonRecord::quote(nul), "\"a\\u0000b\"");
}

TEST(JsonQuote, HighBytesPassThroughUnchanged) {
    // UTF-8 multibyte sequences (bytes >= 0x80) are legal raw in JSON
    // strings; they must not be treated as negative chars and escaped.
    std::string const utf8 = "\xce\xba";  // kappa
    EXPECT_EQ(JsonRecord::quote(utf8), "\"\xce\xba\"");
}

TEST(JsonRecordTest, FieldsComposeIntoValidObject) {
    JsonRecord r;
    r.field("name", "qdwh \"latency\"")
        .field("error", std::string("line1\nline2\ttail"))
        .field("n", 512)
        .field("ok", true);
    EXPECT_EQ(r.str(),
              "{\"name\":\"qdwh \\\"latency\\\"\","
              "\"error\":\"line1\\nline2\\ttail\","
              "\"n\":512,\"ok\":true}");
}
