// 2.5D SUMMA correctness: the replicated-layer gemm (SPMD and engine-task
// forms) and the 2.5D distributed QDWH must be bit-identical to their 2D
// oracles in deterministic (ExactOrder) mode across grid shapes, including
// non-power-of-two layer grids and ragged tile edges; PartialSum mode must
// be reproducible at a fixed grid and accurate against dense references.
// The traffic model (perf::summa_volume) and the 2D/2.5D auto-selector are
// cross-checked against measured per-rank counters.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <utility>
#include <vector>

#include "comm/comm_task.hh"
#include "comm/dist_qdwh.hh"
#include "comm/dist_summa25.hh"
#include "gen/matgen.hh"
#include "perf/cost_model.hh"
#include "perf/sched_report.hh"
#include "ref/dense.hh"

using namespace tbp;

namespace {

/// 2.5D shapes under test: P = 2, 4, 6, 8, 16 with c in {2, 4}, including
/// non-power-of-two and non-square layer grids.
std::vector<comm::ProcGrid3d> const kGrids25 = {
    {1, 1, 2}, {2, 1, 2}, {1, 3, 2}, {2, 2, 2}, {2, 2, 4}};

template <typename T>
bool bits_equal(std::vector<T> const& a, std::vector<T> const& b) {
    return a.size() == b.size()
           && (a.empty()
               || std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0);
}

comm::coll::Config det_cfg(bool deterministic) {
    comm::coll::Config cfg;
    cfg.deterministic = deterministic;
    return cfg;
}

/// One C := 2 A B - C through the requested path on a p*q*c world; returns
/// rank 0's gathered C. path: 0 = 2D dist_gemm (oracle; requires c == 1),
/// 1 = SPMD summa_25d, 2 = engine-task dist_gemm_tasks_25d.
template <typename T>
std::vector<T> run_gemm(ref::Dense<T> const& Da, ref::Dense<T> const& Db,
                        ref::Dense<T> const& Dc, int nb,
                        comm::ProcGrid3d g3, comm::coll::Config cfg,
                        int path, int workers = 2,
                        rt::Mode mode = rt::Mode::TaskDataflow) {
    comm::World world(g3.size());
    world.set_coll_config(cfg);
    Grid const g = g3.layer();
    std::vector<T> out;
    world.run([&](comm::Communicator& c) {
        comm::DistMatrix<T> A(c, Da.m(), Da.n(), nb, g),
            B(c, Db.m(), Db.n(), nb, g), C(c, Dc.m(), Dc.n(), nb, g);
        A.fill([&](std::int64_t i, std::int64_t j) { return Da(i, j); });
        B.fill([&](std::int64_t i, std::int64_t j) { return Db(i, j); });
        C.fill([&](std::int64_t i, std::int64_t j) { return Dc(i, j); });
        if (path == 0) {
            comm::dist_gemm(c, g, T(2), A, B, T(-1), C);
        } else if (path == 1) {
            comm::dist_gemm_25d(c, g3, T(2), A, B, T(-1), C);
        } else {
            rt::Engine eng(workers, mode);
            comm::dist_gemm_tasks_25d(c, eng, g3, T(2), A, B, T(-1), C);
        }
        auto d = comm::dist_gather(c, C);
        if (c.rank() == 0)
            out = d;
    });
    EXPECT_EQ(world.leaked_messages(), 0u);
    return out;
}

/// Full distributed QDWH on the 3D grid; returns rank 0's gathered U.
template <typename T>
std::vector<T> run_dqdwh(ref::Dense<T> const& Ad, int nb,
                         comm::ProcGrid3d g3, comm::coll::Config cfg,
                         double l0) {
    comm::World world(g3.size());
    world.set_coll_config(cfg);
    std::vector<T> out;
    world.run([&](comm::Communicator& c) {
        comm::DistMatrix<T> A(c, Ad.m(), Ad.n(), nb, g3.layer());
        A.fill([&](std::int64_t i, std::int64_t j) { return Ad(i, j); });
        comm::dist_qdwh(c, g3, A, l0);
        auto d = comm::dist_gather(c, A);
        if (c.rank() == 0)
            out = d;
    });
    EXPECT_EQ(world.leaked_messages(), 0u);
    return out;
}

}  // namespace

TEST(Summa25d, GemmMatches2dOracleBitwise) {
    // Deterministic (ExactOrder) mode: the replicated-layer gemm must fold
    // steps in exactly the 2D order, so the result is bitwise identical to
    // dist_gemm on the same p x q layer grid. Ragged tile edges throughout.
    using T = double;
    int const m = 18, k = 14, n = 11, nb = 4;
    auto Da = ref::random_dense<T>(m, k, 701);
    auto Db = ref::random_dense<T>(k, n, 702);
    auto Dc = ref::random_dense<T>(m, n, 703);

    for (auto g3 : kGrids25) {
        comm::ProcGrid3d g2{g3.p, g3.q, 1};
        auto oracle = run_gemm(Da, Db, Dc, nb, g2, det_cfg(true), 0);
        auto got = run_gemm(Da, Db, Dc, nb, g3, det_cfg(true), 1);
        EXPECT_TRUE(bits_equal(oracle, got))
            << g3.p << "x" << g3.q << "x" << g3.c;
    }
}

TEST(Summa25d, GemmTasksMatchSpmdBitwise) {
    // The engine-task 2.5D gemm must reproduce the blocking SPMD summa_25d
    // exactly at every worker count, in both reduction modes (the task DAG
    // orders the folds identically; only the overlap differs).
    using T = double;
    int const m = 18, k = 14, n = 11, nb = 4;
    auto Da = ref::random_dense<T>(m, k, 711);
    auto Db = ref::random_dense<T>(k, n, 712);
    auto Dc = ref::random_dense<T>(m, n, 713);

    for (bool det : {true, false}) {
        for (auto g3 : {comm::ProcGrid3d{2, 1, 2}, comm::ProcGrid3d{2, 2, 2}}) {
            auto spmd = run_gemm(Da, Db, Dc, nb, g3, det_cfg(det), 1);
            struct EngCase {
                int workers;
                rt::Mode mode;
            };
            for (auto ec : {EngCase{1, rt::Mode::Sequential},
                            EngCase{1, rt::Mode::TaskDataflow},
                            EngCase{2, rt::Mode::TaskDataflow}}) {
                auto tasks = run_gemm(Da, Db, Dc, nb, g3, det_cfg(det), 2,
                                      ec.workers, ec.mode);
                EXPECT_TRUE(bits_equal(spmd, tasks))
                    << g3.p << "x" << g3.q << "x" << g3.c
                    << " det=" << det << " workers=" << ec.workers;
            }
        }
    }
}

TEST(Summa25d, DqdwhMatches2dOracleBitwise) {
    // Full solver: QR-branch trailing updates run as 2.5D SUMMA; with
    // deterministic collectives every iterate must stay bit-identical to
    // the 2D solver on the same layer grid, so the final U matches bitwise.
    using T = double;
    int const n = 16, nb = 4;
    gen::MatGenOptions opt;
    opt.cond = 1e4;  // engages the QR branch before the Cholesky branch
    opt.seed = 721;
    rt::Engine eng(2);
    auto Ad = ref::to_dense(gen::cond_matrix<T>(eng, n, n, nb, opt));
    double const l0 = 1.0 / opt.cond;

    for (auto g3 : kGrids25) {
        comm::ProcGrid3d g2{g3.p, g3.q, 1};
        auto oracle = run_dqdwh(Ad, nb, g2, det_cfg(true), l0);
        auto got = run_dqdwh(Ad, nb, g3, det_cfg(true), l0);
        EXPECT_TRUE(bits_equal(oracle, got))
            << g3.p << "x" << g3.q << "x" << g3.c;
    }
}

TEST(Summa25d, PartialSumReproducibleAndAccurate) {
    // PartialSum mode re-associates the reduction (that is where the
    // traffic win comes from), so it is not bitwise against the 2D oracle —
    // but at a fixed grid the fold order is fixed: two runs must agree
    // bitwise, and the result must match the dense reference numerically.
    using T = double;
    int const m = 18, k = 14, n = 11, nb = 4;
    auto Da = ref::random_dense<T>(m, k, 731);
    auto Db = ref::random_dense<T>(k, n, 732);
    auto Dc = ref::random_dense<T>(m, n, 733);
    auto Cref = ref::gemm(Op::NoTrans, Op::NoTrans, T(2), Da, Db);
    for (int j = 0; j < n; ++j)
        for (int i = 0; i < m; ++i)
            Cref(i, j) -= Dc(i, j);  // beta = -1

    for (auto g3 : {comm::ProcGrid3d{2, 1, 2}, comm::ProcGrid3d{2, 2, 4}}) {
        auto one = run_gemm(Da, Db, Dc, nb, g3, det_cfg(false), 1);
        auto two = run_gemm(Da, Db, Dc, nb, g3, det_cfg(false), 1);
        EXPECT_TRUE(bits_equal(one, two))
            << g3.p << "x" << g3.q << "x" << g3.c;
        ASSERT_EQ(one.size(), static_cast<size_t>(m) * n);
        double err = 0;
        for (int j = 0; j < n; ++j)
            for (int i = 0; i < m; ++i) {
                double const d =
                    one[static_cast<size_t>(i + j * m)] - Cref(i, j);
                err += d * d;
            }
        EXPECT_LE(std::sqrt(err), 1e-12 * (1 + ref::norm_fro(Cref)))
            << g3.p << "x" << g3.q << "x" << g3.c;
    }
}

TEST(Summa25d, VolumeModelMatchesMeasured) {
    // perf::summa_volume replays the implementation loops, so measured
    // per-rank counters of a lone gemm must match it exactly — both
    // reduction modes, 2D included, ragged edges.
    using T = double;
    int const m = 18, k = 14, n = 11, nb = 4;
    auto Da = ref::random_dense<T>(m, k, 741);
    auto Db = ref::random_dense<T>(k, n, 742);
    auto Dc = ref::random_dense<T>(m, n, 743);

    for (auto g3 : {comm::ProcGrid3d{2, 2, 1}, comm::ProcGrid3d{3, 1, 2},
                    comm::ProcGrid3d{2, 2, 2}}) {
        for (bool det : {true, false}) {
            comm::World world(g3.size());
            world.set_coll_config(det_cfg(det));
            Grid const g = g3.layer();
            world.run([&](comm::Communicator& c) {
                comm::DistMatrix<T> A(c, m, k, nb, g), B(c, k, n, nb, g),
                    C(c, m, n, nb, g);
                A.fill(
                    [&](std::int64_t i, std::int64_t j) { return Da(i, j); });
                B.fill(
                    [&](std::int64_t i, std::int64_t j) { return Db(i, j); });
                C.fill(
                    [&](std::int64_t i, std::int64_t j) { return Dc(i, j); });
                if (g3.c == 1)
                    comm::dist_gemm(c, g, T(2), A, B, T(-1), C);
                else
                    comm::dist_gemm_25d(c, g3, T(2), A, B, T(-1), C);
            });
            auto rep = perf::comm_report(world);
            auto v = perf::summa_volume(m, n, k, nb, sizeof(T), g3.p, g3.q,
                                        g3.c, det);
            EXPECT_EQ(rep.total.sends, v.total.messages)
                << g3.p << "x" << g3.q << "x" << g3.c << " det=" << det;
            EXPECT_EQ(rep.total.bytes_sent, v.total.bytes)
                << g3.p << "x" << g3.q << "x" << g3.c << " det=" << det;
            EXPECT_EQ(rep.max_rank_sends(), v.total.max_rank_sends)
                << g3.p << "x" << g3.q << "x" << g3.c << " det=" << det;
            EXPECT_EQ(rep.max_rank_bytes(), v.total.max_rank_bytes)
                << g3.p << "x" << g3.q << "x" << g3.c << " det=" << det;
            EXPECT_EQ(rep.leaked, 0u);
            // Role attribution covers the whole volume, charged to the
            // summa roles only.
            EXPECT_EQ(v.stage_bytes + v.fiber_bytes + v.reduce_bytes,
                      v.total.bytes);
            EXPECT_EQ(v.total.p2p_bytes, v.stage_bytes);
            EXPECT_EQ(v.total.bcast_bytes, v.fiber_bytes);
            EXPECT_EQ(v.total.reduce_bytes, v.reduce_bytes);
            EXPECT_EQ(v.total.allreduce_bytes, 0u);
            EXPECT_EQ(v.total.allgather_bytes, 0u);
        }
    }
}

TEST(Summa25d, ChooseSummaPlanInvariants) {
    // The selector must honor forced plans, never pick a shape worse than
    // the 2D reference, and find a winning c >= 2 at the weak-scaled P = 16
    // point in PartialSum mode on the k-heavy bench shape (the acceptance
    // crossover). A square gemm at P = 16 is the one structural tie: the
    // best 2.5D grid's per-rank send volume exactly equals 2D's, so Auto
    // must keep c = 1 there (ties break toward the simpler plan).
    int const nb = 8;
    std::int64_t const m = 64;  // 8x8 tiles; 2x2 per rank on a 4x4 grid

    for (bool det : {true, false}) {
        auto p2d = perf::choose_summa_plan(16, m, m, m, nb, sizeof(double),
                                           det, comm::CommPlan::Grid2d);
        EXPECT_EQ(p2d.c, 1);
        EXPECT_EQ(p2d.p * p2d.q, 16);
        auto p25 = perf::choose_summa_plan(16, m, m, m, nb, sizeof(double),
                                           det, comm::CommPlan::Grid25d);
        EXPECT_GE(p25.c, 2);
        EXPECT_EQ(p25.p * p25.q * p25.c, 16);
        auto pauto = perf::choose_summa_plan(16, m, m, m, nb, sizeof(double),
                                             det, comm::CommPlan::Auto);
        EXPECT_LE(pauto.vol.total.max_rank_bytes,
                  pauto.vol2d.total.max_rank_bytes);
    }

    // Square P = 16: exact tie, Auto keeps the 2D oracle.
    auto sq = perf::choose_summa_plan(16, m, m, m, nb, sizeof(double),
                                      /*deterministic=*/false,
                                      comm::CommPlan::Auto);
    EXPECT_EQ(sq.c, 1);
    EXPECT_EQ(sq.vol.total.max_rank_bytes, sq.vol2d.total.max_rank_bytes);

    // k-heavy weak-scaling shape (m : n : k = 2 : 1 : 4, the bench's):
    // strict max_rank_bytes win with c >= 2 from P = 16 up.
    for (int P : {16, 64}) {
        int const side = P == 16 ? 2 : 4;
        auto plan = perf::choose_summa_plan(
            P, 4 * side * nb, 2 * side * nb, 8 * side * nb, nb,
            sizeof(double), /*deterministic=*/false, comm::CommPlan::Auto);
        EXPECT_GE(plan.c, 2) << "P=" << P;
        EXPECT_LT(plan.vol.total.max_rank_bytes,
                  plan.vol2d.total.max_rank_bytes)
            << "P=" << P;
    }

    // Prime P: the only c > 1 divisor is P itself (single-rank layers) —
    // still a valid forced-2.5D grid.
    auto prime = perf::choose_summa_plan(7, m, m, m, nb, sizeof(double),
                                         false, comm::CommPlan::Grid25d);
    EXPECT_EQ(prime.c, 7);
    EXPECT_EQ(prime.p * prime.q, 1);
}

TEST(Summa25d, CollVolumeFamilyBreakdown) {
    // collective_volume charges its whole volume to the family that was
    // called; the other per-role fields stay zero.
    auto b = perf::collective_volume(perf::CollKind::Bcast,
                                     comm::coll::Algo::Tree, 8, 1024, 8);
    EXPECT_EQ(b.bcast_bytes, b.bytes);
    EXPECT_EQ(b.reduce_bytes + b.allreduce_bytes + b.allgather_bytes
                  + b.p2p_bytes,
              0u);
    auto r = perf::collective_volume(perf::CollKind::Allreduce,
                                     comm::coll::Algo::Ring, 8, 1024, 8);
    EXPECT_EQ(r.allreduce_bytes, r.bytes);
    EXPECT_EQ(r.bcast_bytes + r.reduce_bytes + r.allgather_bytes
                  + r.p2p_bytes,
              0u);
}
