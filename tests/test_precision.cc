// Adaptive precision-ladder QDWH (core/precision_policy.hh,
// core/qdwh_ladder.hh, comm/dist_qdwh.hh, perf/prec_model.hh): accuracy of
// the adaptive schedule against the all-native run across types and
// conditioning, fallback promotion, bitwise determinism, distributed /
// single-rank schedule agreement with the exact byte-halving identity, and
// exact model == measured kernel-counter agreement per precision bucket.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "comm/dist_qdwh.hh"
#include "core/qdwh.hh"
#include "core/qdwh_mixed.hh"
#include "gen/matgen.hh"
#include "perf/prec_model.hh"
#include "ref/dense.hh"
#include "test_util.hh"

using namespace tbp;

namespace {

/// Collect a distributed matrix into a dense image on every rank (zeros
/// where remote, allreduced) — the same helper the dist-algorithm tests use.
template <typename T>
ref::Dense<T> gather(comm::DistMatrix<T>& A, comm::Communicator& c) {
    ref::Dense<T> D(A.m(), A.n());
    std::int64_t row0 = 0;
    for (int i = 0; i < A.mt(); ++i) {
        std::int64_t col0 = 0;
        for (int j = 0; j < A.nt(); ++j) {
            if (A.is_local(i, j)) {
                auto t = A.tile(i, j);
                for (int cc = 0; cc < t.nb(); ++cc)
                    for (int rr = 0; rr < t.mb(); ++rr)
                        D(row0 + rr, col0 + cc) = t(rr, cc);
            }
            col0 += A.tile_nb(j);
        }
        row0 += A.tile_mb(i);
    }
    std::vector<T> buf(static_cast<std::size_t>(A.m()) * A.n());
    for (std::int64_t j = 0; j < A.n(); ++j)
        for (std::int64_t i = 0; i < A.m(); ++i)
            buf[static_cast<std::size_t>(i + j * A.m())] = D(i, j);
    c.allreduce_sum(buf);
    for (std::int64_t j = 0; j < A.n(); ++j)
        for (std::int64_t i = 0; i < A.m(); ++i)
            D(i, j) = buf[static_cast<std::size_t>(i + j * A.m())];
    return D;
}

template <typename T>
struct PolarErrors {
    real_t<T> orth;
    real_t<T> backward;
};

template <typename T>
PolarErrors<T> polar_errors(ref::Dense<T> const& A, ref::Dense<T> const& U,
                            ref::Dense<T> const& H) {
    PolarErrors<T> e;
    e.orth = ref::orthogonality(U) / std::sqrt(static_cast<real_t<T>>(U.n()));
    auto UH = ref::gemm(Op::NoTrans, Op::NoTrans, T(1), U, H);
    e.backward = ref::diff_fro(UH, A) / ref::norm_fro(A);
    return e;
}

/// Exact per-bucket model == measured comparison (kernel_flops_exact runs).
template <typename T>
void expect_prec_model_exact(QdwhInfo const& info, std::vector<int> const& rows,
                             std::vector<int> const& cols, bool structured) {
    ASSERT_TRUE(info.kernel_flops_exact);
    auto const model = perf::qdwh_prec_kernel_flops(
        rows, cols, info.rungs, info.it_qr, structured, /*compute_h=*/true,
        fma_flops<T>() / 2.0, prec::native_prec<T>());
    for (std::size_t p = 0; p < static_cast<std::size_t>(prec::kNumPrec); ++p)
        EXPECT_EQ(model.by_prec[p], info.kernel_flops_by_prec[p])
            << "bucket " << prec::prec_name(static_cast<prec::Prec>(p));
}

}  // namespace

template <typename T>
class Precision : public ::testing::Test {};
TYPED_TEST_SUITE(Precision, test::AllTypes);

// The ladder's accuracy contract across the conditioning range: native
// orthogonality out of the adaptive schedule (the native tail cubes the
// float-level error below eps), with the backward error free to sit at the
// lowest executed rung's precision (bf16 rungs commit a ~2^-9 backward
// perturbation that later native iterations cannot undo).
TYPED_TEST(Precision, AdaptiveMatchesNativeOrthogonalityAcrossCond) {
    using T = TypeParam;
    int const n = 48, nb = 16;
    std::vector<double> conds{1.5, 1e3, test::ill_cond<T>()};
    if (!std::is_same_v<real_t<T>, float>)
        conds.insert(conds.end() - 1, 1e9);
    for (double cond : conds) {
        rt::Engine eng(3);
        gen::MatGenOptions opt;
        opt.cond = cond;
        opt.seed = 600 + static_cast<std::uint64_t>(std::log10(cond));
        auto A = gen::cond_matrix<T>(eng, n, n, nb, opt);
        auto Ad = ref::to_dense(A);
        TiledMatrix<T> H(n, n, nb);
        QdwhOptions qo;
        qo.precision.request = prec::Precision::Adaptive;
        QdwhInfo info;
        ASSERT_EQ(qdwh_status(eng, A, H, info, qo), Status::Ok) << cond;
        ASSERT_TRUE(info.converged) << cond;
        auto e = polar_errors(Ad, ref::to_dense(A), ref::to_dense(H));
        EXPECT_LE(e.orth, test::tol<T>(100)) << cond;
        // Backward: bounded by the coarsest rung's roundoff, with slack for
        // the n-dependent constant. A blown ladder would sit at O(1).
        EXPECT_LE(e.backward, real_t<T>(0.05)) << cond;
        EXPECT_EQ(info.rungs.size(),
                  static_cast<std::size_t>(info.iterations));
        expect_prec_model_exact<T>(info, A.row_tile_sizes(),
                                   A.col_tile_sizes(), qo.structured_qr);
    }
}

// Ill-conditioned double-kind inputs must actually engage low rungs (the
// speedup exists only if the schedule leaves native).
TEST(PrecisionLadder, AdaptiveLeavesNativeRungWhenIllConditioned) {
    rt::Engine eng(3);
    gen::MatGenOptions opt;
    opt.cond = 1e12;
    opt.seed = 611;
    int const n = 48, nb = 16;
    auto A = gen::cond_matrix<double>(eng, n, n, nb, opt);
    TiledMatrix<double> H(n, n, nb);
    QdwhOptions qo;
    qo.precision.request = prec::Precision::Adaptive;
    QdwhInfo info;
    ASSERT_EQ(qdwh_status(eng, A, H, info, qo), Status::Ok);
    int low = 0, bf16 = 0;
    for (auto r : info.rungs) {
        low += r != prec::Prec::Double;
        bf16 += r == prec::Prec::Bf16;
    }
    EXPECT_GE(low, 2);
    EXPECT_GE(bf16, 1);  // admissible mid-schedule rung at this conditioning
    // The final iteration is native by the tail contract.
    ASSERT_FALSE(info.rungs.empty());
    EXPECT_EQ(info.rungs.back(), prec::Prec::Double);
}

// Forced fallback: a low-precision iteration that fails pre-submission must
// re-run one rung up, be recorded, and keep the flop accounting exact.
TEST(PrecisionLadder, ForcedFallbackPromotesOneRung) {
    double const l0 = 1e-10;
    double const tol1 = 5 * std::numeric_limits<double>::epsilon();
    prec::PrecisionPolicy pol;
    pol.request = prec::Precision::Adaptive;
    auto const plan = prec::plan_rungs(l0, tol1, 50, pol, prec::Prec::Double);
    int low_iter = -1;
    for (std::size_t k = 0; k < plan.size(); ++k)
        if (plan[k].rung != prec::Prec::Double) {
            low_iter = static_cast<int>(k);
            break;
        }
    ASSERT_GE(low_iter, 0) << "plan at l0=1e-10 must hold a low rung";

    rt::Engine eng(3);
    gen::MatGenOptions opt;
    opt.cond = 1e10;
    opt.seed = 612;
    int const n = 48, nb = 16;
    auto A = gen::cond_matrix<double>(eng, n, n, nb, opt);
    auto Ad = ref::to_dense(A);
    TiledMatrix<double> H(n, n, nb);
    QdwhOptions qo;
    qo.condest_override = l0;  // pin the schedule to the planned one
    qo.precision = pol;
    qo.precision.force_fallback_iter = low_iter;
    QdwhInfo info;
    ASSERT_EQ(qdwh_status(eng, A, H, info, qo), Status::Ok);
    EXPECT_GE(info.fallbacks, 1);
    // The executed rung of the forced iteration is the planned rung
    // promoted once (bf16 -> float, float -> native).
    auto const planned = plan[static_cast<std::size_t>(low_iter)].rung;
    EXPECT_EQ(info.rungs[static_cast<std::size_t>(low_iter)],
              prec::promote(planned, prec::Prec::Double));
    // Pre-submission failure discards no charges: accounting stays exact.
    expect_prec_model_exact<double>(info, A.row_tile_sizes(),
                                    A.col_tile_sizes(), qo.structured_qr);
    auto e = polar_errors(Ad, ref::to_dense(A), ref::to_dense(H));
    EXPECT_LE(e.orth, test::tol<double>(100));
}

// Two identical adaptive runs must agree bitwise: same rung schedule, same
// iterate bytes (the plan is a pure double function of l0, bf16 truncation
// is deterministic, and the runtime's reductions are order-fixed).
TEST(PrecisionLadder, AdaptiveScheduleAndIterateAreDeterministic) {
    auto run = [](QdwhInfo& info) {
        rt::Engine eng(3);
        gen::MatGenOptions opt;
        opt.cond = 1e10;
        opt.seed = 613;
        int const n = 40, nb = 8;
        auto A = gen::cond_matrix<double>(eng, n, n, nb, opt);
        TiledMatrix<double> H(n, n, nb);
        QdwhOptions qo;
        qo.precision.request = prec::Precision::Adaptive;
        EXPECT_EQ(qdwh_status(eng, A, H, info, qo), Status::Ok);
        return ref::to_dense(A);
    };
    QdwhInfo i1, i2;
    auto U1 = run(i1);
    auto U2 = run(i2);
    ASSERT_EQ(i1.rungs, i2.rungs);
    ASSERT_EQ(i1.iterations, i2.iterations);
    ASSERT_EQ(U1.m(), U2.m());
    for (std::int64_t j = 0; j < U1.n(); ++j)
        for (std::int64_t i = 0; i < U1.m(); ++i)
            ASSERT_EQ(std::memcmp(&U1(i, j), &U2(i, j), sizeof(double)), 0)
                << i << "," << j;
}

// Distributed adaptive ladder: P = 4 and P = 1 execute the identical rung
// schedule (plan_rungs is a pure function of l0 every rank evaluates), and
// the per-iteration branch-region traffic of a low rung is *exactly* half
// the all-native run's bytes at an identical message count.
TEST(PrecisionLadder, DistAdaptiveMatchesSingleRankAndHalvesBytes) {
    using T = double;
    int const n = 24, nb = 4;
    double const l0 = 1e-8;
    gen::MatGenOptions opt;
    opt.cond = 1e8;
    opt.seed = 614;
    rt::Engine eng(2);
    auto At = gen::cond_matrix<T>(eng, n, n, nb, opt);
    auto Ad = ref::to_dense(At);

    prec::PrecisionPolicy pol;
    pol.request = prec::Precision::Adaptive;

    auto run_dist = [&](int p, int q, bool adaptive, comm::DistQdwhInfo& info,
                        ref::Dense<T>& U) {
        Grid g{p, q};
        comm::World world(g.size());
        world.run([&](comm::Communicator& c) {
            comm::DistMatrix<T> A(c, n, n, nb, g);
            A.fill([&](std::int64_t i, std::int64_t j) { return Ad(i, j); });
            auto inf = adaptive
                           ? comm::dist_qdwh_adaptive(
                                 c, comm::ProcGrid3d{p, q, 1}, A, l0, pol)
                           : comm::dist_qdwh(c, g, A, l0);
            auto D = gather(A, c);
            if (c.rank() == 0) {
                info = inf;
                U = D;
            }
        });
    };

    comm::DistQdwhInfo a1, a4, n4;
    ref::Dense<T> U1, U4, Un;
    run_dist(1, 1, true, a1, U1);
    run_dist(2, 2, true, a4, U4);
    run_dist(2, 2, false, n4, Un);

    // Identical schedule across process counts.
    ASSERT_EQ(a1.rungs, a4.rungs);
    EXPECT_EQ(a1.iterations, a4.iterations);
    bool left_native = false;
    for (auto r : a1.rungs)
        left_native |= r != prec::Prec::Double;
    EXPECT_TRUE(left_native);

    // Both converge to the polar factor at native orthogonality.
    EXPECT_LE(ref::orthogonality(U1) / std::sqrt(double(n)), 1e-13);
    EXPECT_LE(ref::orthogonality(U4) / std::sqrt(double(n)), 1e-13);
    EXPECT_LE(ref::diff_fro(U1, U4) / ref::norm_fro(U4), 1e-6);

    // Byte-halving identity against the all-native run (same l0, so the
    // same iteration stream): a float-payload iteration ships exactly half
    // the native bytes with an unchanged message count; a native-rung
    // iteration ships exactly the native traffic.
    ASSERT_EQ(n4.rungs.size(), static_cast<std::size_t>(n4.iterations));
    // Same l0 -> same planned stream; the adaptive run may pay at most one
    // conv-margin straggler (native by contract) past the native run.
    EXPECT_GE(a4.iterations, n4.iterations);
    EXPECT_LE(a4.iterations, n4.iterations + 1);
    std::size_t const common =
        std::min(a4.rungs.size(), n4.rungs.size());
    ASSERT_GE(common, 1u);
    ASSERT_GE(a4.iter_msgs_sent.size(), common);
    ASSERT_GE(a4.iter_bytes_sent.size(), common);
    ASSERT_GE(n4.iter_msgs_sent.size(), common);
    ASSERT_GE(n4.iter_bytes_sent.size(), common);
    for (std::size_t k = 0; k < common; ++k) {
        EXPECT_EQ(a4.iter_msgs_sent[k], n4.iter_msgs_sent[k]) << "iter " << k;
        if (a4.rungs[k] != prec::Prec::Double)
            EXPECT_EQ(2 * a4.iter_bytes_sent[k], n4.iter_bytes_sent[k])
                << "iter " << k;
        else
            EXPECT_EQ(a4.iter_bytes_sent[k], n4.iter_bytes_sent[k])
                << "iter " << k;
    }
}

// Model == measured identity for every fixed precision request and an
// uneven-tile rectangular shape (the replay must price the true tile
// geometry, not an n/nb idealization).
TEST(PrecisionLadder, ModelMatchesMeasuredPerRequestAndShape) {
    struct Case {
        std::int64_t m, n;
        prec::Precision req;
    } cases[] = {
        {40, 40, prec::Precision::Native},
        {40, 40, prec::Precision::Float},
        {40, 40, prec::Precision::Bf16},
        {40, 40, prec::Precision::Adaptive},
        {56, 40, prec::Precision::Adaptive},  // rectangular, uneven tiles
    };
    for (auto const& cs : cases) {
        rt::Engine eng(3);
        gen::MatGenOptions opt;
        opt.cond = 1e8;
        opt.seed = 615;
        int const nb = 16;  // 40 = 16+16+8: uneven trailing tile
        auto A = gen::cond_matrix<double>(eng, cs.m, cs.n, nb, opt);
        TiledMatrix<double> H(cs.n, cs.n, nb);
        QdwhOptions qo;
        qo.precision.request = cs.req;
        QdwhInfo info;
        ASSERT_EQ(qdwh_status(eng, A, H, info, qo), Status::Ok)
            << prec::precision_name(cs.req) << " " << cs.m << "x" << cs.n;
        expect_prec_model_exact<double>(info, A.row_tile_sizes(),
                                        A.col_tile_sizes(), qo.structured_qr);
    }
}

// Float-kind adaptive: the only low rung is bf16 (no promotion above the
// native float), and the tail is native float.
TEST(PrecisionLadder, FloatKindAdaptiveCapsAtFloat) {
    rt::Engine eng(3);
    gen::MatGenOptions opt;
    opt.cond = 1e5;
    opt.seed = 616;
    int const n = 48, nb = 16;
    auto A = gen::cond_matrix<float>(eng, n, n, nb, opt);
    TiledMatrix<float> H(n, n, nb);
    QdwhOptions qo;
    qo.precision.request = prec::Precision::Adaptive;
    QdwhInfo info;
    ASSERT_EQ(qdwh_status(eng, A, H, info, qo), Status::Ok);
    for (auto r : info.rungs)
        EXPECT_NE(r, prec::Prec::Double);
    ASSERT_FALSE(info.rungs.empty());
    EXPECT_EQ(info.rungs.back(), prec::Prec::Float);
    expect_prec_model_exact<float>(info, A.row_tile_sizes(),
                                   A.col_tile_sizes(), qo.structured_qr);
}

// qdwh_mixed's H contract (satellite of the ladder work): H is computed in
// double from the *original* A and the refined U — Hermitian, and equal to
// sym(U^H A) at double roundoff even though the iteration ran in float.
TEST(QdwhMixed, HComputedInDoubleFromOriginalA) {
    rt::Engine eng(3);
    gen::MatGenOptions opt;
    opt.cond = 1e4;
    opt.seed = 617;
    int const n = 40, nb = 8;
    auto A = gen::cond_matrix<double>(eng, n, n, nb, opt);
    auto Ad = ref::to_dense(A);
    TiledMatrix<double> H(n, n, nb);
    auto info = qdwh_mixed(eng, A, H);
    EXPECT_LE(info.orth_after, 1e-13);

    auto U = ref::to_dense(A);
    auto Hd = ref::to_dense(H);
    // Hermitian to the last bit of the symmetrization.
    for (int j = 0; j < n; ++j)
        for (int i = 0; i < n; ++i)
            EXPECT_NEAR(Hd(i, j), Hd(j, i), 1e-14);
    // H == sym(U^H A) in double: the float stage must not leak into H.
    auto UhA = ref::gemm(Op::ConjTrans, Op::NoTrans, 1.0, U, Ad);
    double hdiff = 0;
    for (int j = 0; j < n; ++j)
        for (int i = 0; i < n; ++i)
            hdiff = std::max(hdiff, std::abs(Hd(i, j)
                                             - 0.5 * (UhA(i, j) + UhA(j, i))));
    EXPECT_LE(hdiff, 1e-12);
    auto UH = ref::gemm(Op::NoTrans, Op::NoTrans, 1.0, U, Hd);
    EXPECT_LE(ref::diff_fro(UH, Ad) / ref::norm_fro(Ad), 1e-5);
}
