// Tile-level Cholesky kernel: L L^H reconstruction and HPD failure path.

#include <gtest/gtest.h>

#include "blas/factor.hh"
#include "common/error.hh"
#include "ref/dense.hh"
#include "test_util.hh"

using namespace tbp;

template <typename T>
class BlasFactor : public ::testing::Test {};
TYPED_TEST_SUITE(BlasFactor, test::AllTypes);

namespace {

template <typename T>
Tile<T> as_tile(ref::Dense<T>& D) {
    return Tile<T>(D.data(), static_cast<int>(D.m()), static_cast<int>(D.n()),
                   static_cast<int>(D.m()));
}

template <typename T>
ref::Dense<T> make_hpd(int n, std::uint64_t seed) {
    auto B = ref::random_dense<T>(n, n, seed);
    auto A = ref::gemm(Op::NoTrans, Op::ConjTrans, T(1), B, B);
    for (int i = 0; i < n; ++i)
        A(i, i) += from_real<T>(static_cast<real_t<T>>(n));
    return A;
}

}  // namespace

TYPED_TEST(BlasFactor, LowerReconstructs) {
    using T = TypeParam;
    int const n = 11;
    auto A = make_hpd<T>(n, 1);
    auto L = A;
    blas::potrf(Uplo::Lower, as_tile(L));
    // Zero the strict upper part (kernel leaves it untouched).
    for (int j = 0; j < n; ++j)
        for (int i = 0; i < j; ++i)
            L(i, j) = T(0);
    auto R = ref::gemm(Op::NoTrans, Op::ConjTrans, T(1), L, L);
    EXPECT_LE(ref::diff_fro(R, A), test::tol<T>(500) * (1 + ref::norm_fro(A)));
}

TYPED_TEST(BlasFactor, UpperReconstructs) {
    using T = TypeParam;
    int const n = 9;
    auto A = make_hpd<T>(n, 2);
    auto U = A;
    blas::potrf(Uplo::Upper, as_tile(U));
    for (int j = 0; j < n; ++j)
        for (int i = j + 1; i < n; ++i)
            U(i, j) = T(0);
    auto R = ref::gemm(Op::ConjTrans, Op::NoTrans, T(1), U, U);
    EXPECT_LE(ref::diff_fro(R, A), test::tol<T>(500) * (1 + ref::norm_fro(A)));
}

TYPED_TEST(BlasFactor, DiagonalIsPositive) {
    using T = TypeParam;
    int const n = 6;
    auto A = make_hpd<T>(n, 3);
    blas::potrf(Uplo::Lower, as_tile(A));
    for (int i = 0; i < n; ++i)
        EXPECT_GT(real_part(A(i, i)), real_t<T>(0));
}

TYPED_TEST(BlasFactor, IndefiniteThrows) {
    using T = TypeParam;
    int const n = 4;
    ref::Dense<T> A(n, n);
    for (int i = 0; i < n; ++i)
        A(i, i) = T(1);
    A(2, 2) = T(-1);  // indefinite
    EXPECT_THROW(blas::potrf(Uplo::Lower, as_tile(A)), Error);
}

TYPED_TEST(BlasFactor, SingularThrows) {
    using T = TypeParam;
    int const n = 3;
    ref::Dense<T> A(n, n);  // all zeros
    EXPECT_THROW(blas::potrf(Uplo::Lower, as_tile(A)), Error);
}

TYPED_TEST(BlasFactor, OneByOne) {
    using T = TypeParam;
    ref::Dense<T> A(1, 1);
    A(0, 0) = T(9);
    blas::potrf(Uplo::Lower, as_tile(A));
    EXPECT_NEAR(real_part(A(0, 0)), real_t<T>(3), test::tol<T>());
}
