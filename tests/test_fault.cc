// Chaos suite for the deterministic fault plane (src/fault/) and the
// recovery machinery built on it: seeded drop/delay/dup/corrupt plans over
// rank-count and seed sweeps, counter identities against the injected plan,
// bit-identical distributed QDWH results vs the fault-free oracle, clean
// dimensioned errors when recovery is impossible, and the service layer's
// retry + graceful-degradation path.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "comm/comm_error.hh"
#include "comm/communicator.hh"
#include "comm/dist.hh"
#include "comm/dist_qdwh.hh"
#include "fault/fault_plan.hh"
#include "perf/fault_report.hh"
#include "service/service.hh"
#include "test_util.hh"

using namespace tbp;

namespace {

fault::RetryConfig chaos_retry() {
    fault::RetryConfig rc;
    rc.timeout_ms = 10;
    rc.retry_max = 5;
    return rc;
}

// Every rank sends a distinctive vector to every other rank and checks the
// bytes it receives — the correctness oracle for all payload-fault kinds.
void all_to_all_exchange(comm::Communicator& c, int P) {
    constexpr int kLen = 17;
    auto value = [](int src, int dst, int k) {
        return static_cast<double>(src * 1000 + dst * 100 + k) + 0.25;
    };
    std::vector<double> buf(kLen);
    for (int dst = 0; dst < P; ++dst) {
        if (dst == c.rank())
            continue;
        for (int k = 0; k < kLen; ++k)
            buf[static_cast<size_t>(k)] = value(c.rank(), dst, k);
        c.send(buf.data(), kLen, dst, 3);
    }
    std::vector<double> got(kLen);
    for (int src = 0; src < P; ++src) {
        if (src == c.rank())
            continue;
        c.recv(got.data(), kLen, src, 3);
        for (int k = 0; k < kLen; ++k)
            ASSERT_EQ(got[static_cast<size_t>(k)], value(src, c.rank(), k))
                << "src " << src << " dst " << c.rank() << " k " << k;
    }
}

}  // namespace

TEST(FaultPlan, ActionIsPureAndSeedSensitive) {
    auto plan = fault::FaultPlan::preset(fault::FaultKind::Mix, 42, 0.3);
    bool differs = false;
    for (std::uint64_t seq = 0; seq < 64; ++seq) {
        auto a1 = plan.action(1, 2, 7, seq);
        auto a2 = plan.action(1, 2, 7, seq);  // replay: identical verdict
        EXPECT_EQ(a1.drop, a2.drop);
        EXPECT_EQ(a1.corrupt, a2.corrupt);
        EXPECT_EQ(a1.duplicate, a2.duplicate);
        EXPECT_EQ(a1.delay_ms, a2.delay_ms);
        auto other = plan;
        other.seed = 43;
        auto b = other.action(1, 2, 7, seq);
        if (a1.drop != b.drop || a1.corrupt != b.corrupt
            || a1.duplicate != b.duplicate || a1.delay_ms != b.delay_ms)
            differs = true;
    }
    EXPECT_TRUE(differs) << "seed does not influence the fault stream";
}

// Sweep seeds x rank counts x fault kinds: payloads must always arrive
// intact, nothing may leak, and the recovery counters must be exact
// identities of what the plan injected.
TEST(FaultChaos, ExchangeSurvivesEveryKind) {
    fault::FaultKind const kinds[] = {
        fault::FaultKind::Drop, fault::FaultKind::Corrupt,
        fault::FaultKind::Duplicate, fault::FaultKind::Delay};
    for (int P : {2, 4, 8}) {
        for (std::uint64_t seed : {11u, 22u, 33u}) {
            for (auto kind : kinds) {
                auto plan = fault::FaultPlan::preset(kind, seed, 0.2);
                comm::World world(P);
                world.set_fault(plan, chaos_retry());
                world.run([&](comm::Communicator& c) {
                    all_to_all_exchange(c, P);
                });
                EXPECT_EQ(world.leaked_messages(), 0u);
                auto const t = world.total_stats();
                EXPECT_EQ(t.recvs, t.sends);  // logical traffic only
                auto const& f = t.fault;
                switch (kind) {
                    case fault::FaultKind::Drop:
                        EXPECT_EQ(f.resends, f.injected_drops);
                        EXPECT_EQ(f.checksum_failures, 0u);
                        break;
                    case fault::FaultKind::Corrupt:
                        EXPECT_EQ(f.checksum_failures, f.injected_corrupts);
                        EXPECT_EQ(f.resends, f.injected_corrupts);
                        break;
                    case fault::FaultKind::Duplicate:
                        EXPECT_EQ(f.dup_absorbed + world.teardown_absorbed(),
                                  f.injected_dups);
                        break;
                    case fault::FaultKind::Delay:
                        EXPECT_EQ(f.checksum_failures, 0u);
                        break;
                    default:
                        break;
                }
            }
        }
    }
}

// The whole point of a seeded plane: the same (plan, workload) replays the
// exact same faults and the exact same recovery.
TEST(FaultChaos, SameSeedReplaysSameCounters) {
    auto run_once = [](std::uint64_t seed) {
        auto plan = fault::FaultPlan::preset(fault::FaultKind::Mix, seed, 0.2);
        comm::World world(4);
        world.set_fault(plan, chaos_retry());
        world.run([&](comm::Communicator& c) { all_to_all_exchange(c, 4); });
        auto r = perf::fault_report(world);
        r.total.slowdowns = 0;  // timing-dependent kinds excluded from Mix
        return r;
    };
    auto a = run_once(77);
    auto b = run_once(77);
    EXPECT_EQ(a.total.injected_drops, b.total.injected_drops);
    EXPECT_EQ(a.total.injected_delays, b.total.injected_delays);
    EXPECT_EQ(a.total.injected_dups, b.total.injected_dups);
    EXPECT_EQ(a.total.injected_corrupts, b.total.injected_corrupts);
    EXPECT_EQ(a.total.resends, b.total.resends);
    EXPECT_EQ(a.total.checksum_failures, b.total.checksum_failures);
    EXPECT_EQ(a.dups_accounted(), b.dups_accounted());
    // Counter totals over a 12-message workload can collide for one other
    // seed; across several seeds at least one stream must differ.
    bool differs = false;
    for (std::uint64_t s : {78u, 79u, 80u, 81u}) {
        auto c = run_once(s);
        if (a.total.injected_drops != c.total.injected_drops
            || a.total.injected_dups != c.total.injected_dups
            || a.total.injected_corrupts != c.total.injected_corrupts
            || a.total.injected_delays != c.total.injected_delays)
            differs = true;
    }
    EXPECT_TRUE(differs) << "different seeds injected identical fault streams";
}

// A mismatched receive surfaces a dimensioned CommError naming both sides
// of the channel and both byte counts — never a bare assert.
TEST(FaultErrors, SizeMismatchIsDimensioned) {
    comm::World world(2);
    bool checked = false;
    world.run([&](comm::Communicator& c) {
        if (c.rank() == 0) {
            double xs[4] = {1, 2, 3, 4};
            c.send(xs, 4, 1, 9);
        } else {
            double got[2];
            try {
                c.recv(got, 2, 0, 9);
                FAIL() << "mismatched recv did not throw";
            } catch (comm::CommError const& e) {
                EXPECT_EQ(e.kind(), comm::CommError::Kind::SizeMismatch);
                EXPECT_EQ(e.self(), 1);
                EXPECT_EQ(e.peer(), 0);
                EXPECT_EQ(e.tag(), 9);
                EXPECT_EQ(e.expected_bytes(), 2 * sizeof(double));
                EXPECT_EQ(e.actual_bytes(), 4 * sizeof(double));
                EXPECT_NE(std::string(e.what()).find("tag 9"),
                          std::string::npos);
                checked = true;
            }
        }
    });
    EXPECT_TRUE(checked);
}

// Distributed QDWH under a combined drop+corrupt+dup plan must produce the
// exact bytes of the fault-free run (deterministic collectives), with the
// logical traffic counters model-exact (untouched by resends/dups) and the
// recovery counters matching the injected plan.
TEST(FaultChaos, DistQdwhBitIdenticalToFaultFreeOracle) {
    std::int64_t const n = 64;
    int const nb = 32;
    auto fill = [](std::int64_t i, std::int64_t j) {
        return (i == j ? 2.0 : 0.0) + 1.0 / static_cast<double>(1 + i + j);
    };
    auto solve = [&](comm::World& world, int P) {
        Grid g{2, P / 2};
        std::vector<double> U;
        int iters = 0;
        world.run([&](comm::Communicator& c) {
            comm::DistMatrix<double> A(c, n, n, nb, g);
            A.fill(fill);
            auto inf = comm::dist_qdwh(c, g, A, 1e-3);
            auto dense = comm::dist_gather(c, A);
            if (c.rank() == 0) {
                U = std::move(dense);
                iters = inf.iterations;
            }
        });
        EXPECT_GT(iters, 0);
        return U;
    };
    for (int P : {4, 8}) {
        comm::World clean(P);
        auto oracle = solve(clean, P);
        auto const clean_bytes = clean.total_stats().bytes_sent;
        ASSERT_GT(clean_bytes, 0u);

        fault::FaultPlan plan;
        plan.seed = 1234;
        plan.drop_rate = 0.01;
        plan.corrupt_rate = 0.01;
        plan.dup_rate = 0.02;
        comm::World chaos(P);
        chaos.set_fault(plan, chaos_retry());
        auto got = solve(chaos, P);
        ASSERT_EQ(got.size(), oracle.size());
        EXPECT_EQ(std::memcmp(got.data(), oracle.data(),
                              oracle.size() * sizeof(double)),
                  0)
            << "chaos run diverged from the fault-free oracle at P=" << P;

        // Logical counters are fault-invariant: resent/duplicated wire
        // traffic never reaches sends/bytes.
        auto const t = chaos.total_stats();
        EXPECT_EQ(t.bytes_sent, clean_bytes);
        EXPECT_EQ(t.recvs, t.sends);
        auto rep = perf::fault_report(chaos);
        EXPECT_TRUE(rep.installed);
        EXPECT_GT(rep.injected(), 0u);
        EXPECT_EQ(rep.total.resends,
                  rep.total.injected_drops + rep.total.injected_corrupts);
        EXPECT_EQ(rep.dups_accounted(), rep.total.injected_dups);
    }
}

// When recovery is impossible (a poisoned rank stops sending), every
// surviving rank must fail with a clean typed error — never hang, never
// abort the process.
TEST(FaultChaos, PoisonedRankFailsCleanly) {
    auto plan = fault::FaultPlan::preset(fault::FaultKind::PoisonRank, 5);
    plan.poison_rank = 1;
    plan.poison_after_sends = 3;
    comm::World world(4);
    fault::RetryConfig rc;
    rc.timeout_ms = 5;
    rc.retry_max = 3;
    world.set_fault(plan, rc);
    EXPECT_THROW(
        world.run([&](comm::Communicator& c) {
            for (int round = 0; round < 8; ++round)
                all_to_all_exchange(c, 4);
        }),
        Error);
}

// An installed-but-inert plan routes everything through the enveloped
// transport; the logical counters and the payloads must not notice.
TEST(FaultChaos, InertPlanIsTransparent) {
    comm::World bare(4);
    bare.run([&](comm::Communicator& c) { all_to_all_exchange(c, 4); });
    auto const base = bare.total_stats();

    comm::World wrapped(4);
    wrapped.set_fault(fault::FaultPlan{}, chaos_retry());
    wrapped.run([&](comm::Communicator& c) { all_to_all_exchange(c, 4); });
    auto const t = wrapped.total_stats();
    EXPECT_EQ(t.sends, base.sends);
    EXPECT_EQ(t.recvs, base.recvs);
    EXPECT_EQ(t.bytes_sent, base.bytes_sent);
    EXPECT_EQ(t.bytes_recv, base.bytes_recv);
    EXPECT_FALSE(t.fault.any());
}

// Service-level resilience: a DistQdwh job whose World keeps getting a rank
// poisoned exhausts its attempts and degrades to the single-rank provider —
// producing the byte-identical polar factor a plain Qdwh job of the same
// spec computes.
TEST(FaultService, PoisonedJobFailsOverAndRecovers) {
    rt::Engine eng(3);
    svc::ServiceOptions so;
    so.retry.max_attempts = 2;
    so.retry.backoff_ms = 0.1;
    svc::PolarService service(eng, so);

    svc::JobSpec dist;
    dist.kind = svc::JobKind::DistQdwh;
    dist.type = 'd';
    dist.m = dist.n = 64;
    dist.nb = 32;
    dist.cond = 1e4;
    dist.seed = 99;
    dist.ranks = 4;
    dist.fault = fault::FaultPlan::preset(fault::FaultKind::PoisonRank, 5);
    dist.timeout_ms = 5;
    dist.retry_max = 2;

    svc::JobSpec local = dist;
    local.kind = svc::JobKind::Qdwh;
    local.fault = fault::FaultPlan{};

    auto hd = service.submit(dist);
    auto hl = service.submit(local);
    service.wait_all();

    auto const& rd = hd.result();
    ASSERT_TRUE(rd.ok()) << rd.error;
    EXPECT_TRUE(rd.failed_over);
    EXPECT_TRUE(rd.recovered);
    EXPECT_GE(rd.attempts, 2);
    auto const& rl = hl.result();
    ASSERT_TRUE(rl.ok()) << rl.error;
    ASSERT_EQ(hd.output_bytes(svc::Workspace::OutU),
              hl.output_bytes(svc::Workspace::OutU));
    EXPECT_EQ(std::memcmp(hd.output(svc::Workspace::OutU),
                          hl.output(svc::Workspace::OutU),
                          hl.output_bytes(svc::Workspace::OutU)),
              0)
        << "failed-over job's factor differs from the local provider's";

    auto const st = service.stats();
    EXPECT_EQ(st.failed_over, 1u);
    EXPECT_EQ(st.recovered_jobs, 1u);
    EXPECT_GE(st.retried_jobs, 1u);
    auto const h = service.health();
    EXPECT_GE(h.heartbeats, 2u);
    EXPECT_EQ(h.queued, 0u);
    EXPECT_EQ(h.in_flight, 0u);
}

// With failover disabled the same job must fail cleanly (typed status and
// message) without disturbing the rest of the batch.
TEST(FaultService, FailoverDisabledReportsCleanError) {
    rt::Engine eng(3);
    svc::ServiceOptions so;
    so.retry.max_attempts = 2;
    so.retry.backoff_ms = 0.1;
    so.retry.failover = false;
    svc::PolarService service(eng, so);

    svc::JobSpec dist;
    dist.kind = svc::JobKind::DistQdwh;
    dist.type = 'd';
    dist.m = dist.n = 64;
    dist.nb = 32;
    dist.cond = 1e4;
    dist.seed = 7;
    dist.ranks = 4;
    dist.fault = fault::FaultPlan::preset(fault::FaultKind::PoisonRank, 5);
    dist.timeout_ms = 5;
    dist.retry_max = 2;

    svc::JobSpec clean;
    clean.kind = svc::JobKind::Qdwh;
    clean.type = 'd';
    clean.m = clean.n = 64;
    clean.nb = 32;
    clean.cond = 1e4;
    clean.seed = 8;

    auto hd = service.submit(dist);
    auto hc = service.submit(clean);
    service.wait_all();

    auto const& rd = hd.result();
    EXPECT_FALSE(rd.ok());
    EXPECT_EQ(rd.status, Status::InternalError);
    EXPECT_FALSE(rd.error.empty());
    EXPECT_EQ(rd.attempts, 2);
    EXPECT_FALSE(rd.failed_over);
    EXPECT_TRUE(hc.result().ok());
    auto const st = service.stats();
    EXPECT_EQ(st.failed, 1u);
    EXPECT_EQ(st.failed_over, 0u);
    EXPECT_EQ(st.recovered_jobs, 0u);
}
