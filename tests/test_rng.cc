#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "common/rng.hh"

using namespace tbp;

TEST(Rng, Deterministic) {
    CounterRng a(123), b(123);
    for (std::uint64_t i = 0; i < 100; ++i) {
        EXPECT_EQ(a.uniform(i), b.uniform(i));
        EXPECT_EQ(a.normal(i), b.normal(i));
    }
}

TEST(Rng, SeedsDiffer) {
    CounterRng a(1), b(2);
    int same = 0;
    for (std::uint64_t i = 0; i < 100; ++i)
        if (a.uniform(i) == b.uniform(i))
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformRange) {
    CounterRng rng(7);
    for (std::uint64_t i = 0; i < 1000; ++i) {
        double const u = rng.uniform(i);
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, NormalMoments) {
    CounterRng rng(99);
    int const n = 20000;
    double sum = 0, sum_sq = 0;
    for (int i = 0; i < n; ++i) {
        double const x = rng.normal(static_cast<std::uint64_t>(i));
        sum += x;
        sum_sq += x * x;
    }
    double const mean = sum / n;
    double const var = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.05);
    EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(Rng, ComplexGaussianHasIndependentParts) {
    CounterRng rng(5);
    auto z1 = rng.gaussian<std::complex<double>>(10);
    auto z2 = rng.gaussian<std::complex<double>>(11);
    EXPECT_NE(z1, z2);
    EXPECT_NE(z1.real(), z1.imag());
}

TEST(Rng, RealGaussianMatchesNormal) {
    CounterRng rng(5);
    EXPECT_EQ(rng.gaussian<double>(3), rng.normal(3));
}
