// Trace analysis and DAG replay: critical path, parallelism, utilization,
// list-scheduling replay consistency.

#include <gtest/gtest.h>

#include <thread>

#include "core/qdwh.hh"
#include "gen/matgen.hh"
#include "runtime/trace_analysis.hh"

using namespace tbp;

namespace {

/// Build a synthetic trace by running a small task program with tracing on.
std::vector<rt::TaskRecord> record_chain_and_fan(int chain, int fan) {
    rt::Engine eng(3);
    eng.set_trace(true);
    long x = 0;
    std::vector<long> ys(static_cast<size_t>(fan), 0);
    for (int i = 0; i < chain; ++i)
        eng.submit("chain", 1.0, {rt::readwrite(&x)}, [&x] { ++x; });
    for (int i = 0; i < fan; ++i)
        eng.submit("fan", 1.0, {rt::read(&x), rt::write(&ys[static_cast<size_t>(i)])},
                   [&ys, &x, i] { ys[static_cast<size_t>(i)] = x; });
    eng.wait();
    return eng.trace();
}

}  // namespace

TEST(TraceAnalysis, CountsAndWork) {
    auto tr = record_chain_and_fan(10, 5);
    auto s = rt::analyze(tr);
    EXPECT_EQ(s.tasks, 15u);
    EXPECT_GT(s.total_work, 0);
    EXPECT_DOUBLE_EQ(s.total_flops, 15.0);
    EXPECT_LE(s.critical_path, s.total_work + 1e-12);
    EXPECT_GE(s.avg_parallelism, 1.0);
}

TEST(TraceAnalysis, ChainHasNoParallelism) {
    auto tr = record_chain_and_fan(30, 0);
    auto s = rt::analyze(tr);
    // A pure chain: the critical path is (nearly) all the work.
    EXPECT_GT(s.critical_path, 0.95 * s.total_work);
    EXPECT_LT(s.avg_parallelism, 1.1);
}

TEST(TraceAnalysis, FanExposesParallelism) {
    auto tr = record_chain_and_fan(1, 64);
    auto s = rt::analyze(tr);
    EXPECT_GT(s.avg_parallelism, 2.0);
}

TEST(TraceAnalysis, ReplayOneWorkerEqualsTotalWork) {
    auto tr = record_chain_and_fan(8, 8);
    auto s = rt::analyze(tr);
    double const m1 = rt::replay(tr, 1);
    EXPECT_NEAR(m1, s.total_work, 1e-9 * (1 + s.total_work));
}

TEST(TraceAnalysis, ReplayManyWorkersApproachesCriticalPath) {
    auto tr = record_chain_and_fan(4, 64);
    auto s = rt::analyze(tr);
    double const inf = rt::replay(tr, 1024);
    EXPECT_NEAR(inf, s.critical_path, 1e-9 * (1 + s.critical_path));
}

TEST(TraceAnalysis, ReplayMonotoneInWorkers) {
    auto tr = record_chain_and_fan(4, 40);
    double prev = rt::replay(tr, 1);
    for (int w : {2, 4, 8, 16}) {
        double const m = rt::replay(tr, w);
        EXPECT_LE(m, prev * (1 + 1e-9));
        prev = m;
    }
}

TEST(TraceAnalysis, ReplayWithModeledTimes) {
    auto tr = record_chain_and_fan(5, 10);
    // Model every task as 1 second: chain of 5 + one fan level.
    auto unit = [](rt::TaskRecord const&) { return 1.0; };
    EXPECT_NEAR(rt::replay(tr, 1, unit), 15.0, 1e-9);
    EXPECT_NEAR(rt::replay(tr, 1000, unit), 6.0, 1e-9);  // 5 chain + 1 fan
    EXPECT_NEAR(rt::replay(tr, 5, unit), 7.0, 1e-9);     // fan takes ceil(10/5)
}

TEST(TraceAnalysis, WorkerUtilization) {
    auto tr = record_chain_and_fan(5, 20);
    auto u = rt::worker_utilization(tr);
    EXPECT_GT(u.makespan, 0);
    EXPECT_GT(u.utilization, 0);
    EXPECT_LE(u.utilization, 1.0 + 1e-9);
}

TEST(TraceAnalysis, QdwhDagHasLookaheadParallelism) {
    // The real QDWH DAG must expose substantial task parallelism — the
    // paper's core argument for the task-based formulation.
    rt::Engine eng(3);
    gen::MatGenOptions opt;
    opt.cond = 1e8;
    opt.seed = 555;
    int const n = 96, nb = 16;
    auto A = gen::cond_matrix<double>(eng, n, n, nb, opt);
    eng.set_trace(true);
    eng.clear_trace();
    TiledMatrix<double> H(n, n, nb);
    qdwh(eng, A, H);
    auto s = rt::analyze(eng.trace());
    EXPECT_GT(s.tasks, 500u);
    EXPECT_GT(s.avg_parallelism, 2.0);
    // Replay on growing worker counts: the modeled makespan must shrink
    // meaningfully from 1 to 8 workers (flops-proportional time model).
    auto by_flops = [](rt::TaskRecord const& r) { return 1e-9 * (r.flops + 1e3); };
    double const m1 = rt::replay(eng.trace(), 1, by_flops);
    double const m8 = rt::replay(eng.trace(), 8, by_flops);
    EXPECT_GT(m1 / m8, 2.0);
}
