// Zolo-PD extension: elliptic-function substrate, Zolotarev coefficient
// identities, and the polar decomposition itself (agreement with QDWH,
// 2-iteration convergence at r = 8, accuracy at kappa = 1e16).

#include <gtest/gtest.h>

#include <cmath>

#include "common/elliptic.hh"
#include "core/qdwh.hh"
#include "core/zolopd.hh"
#include "gen/matgen.hh"
#include "test_util.hh"

using namespace tbp;

TEST(Elliptic, KnownKValues) {
    EXPECT_NEAR(ellip_K(0.0), M_PI / 2, 1e-14);
    // K(1/sqrt(2)) = Gamma(1/4)^2 / (4 sqrt(pi)) = 1.85407467730137...
    EXPECT_NEAR(ellip_K(1.0 / std::sqrt(2.0)), 1.854074677301372, 1e-12);
    EXPECT_NEAR(ellip_K(0.5), 1.685750354812596, 1e-12);
    // K diverges logarithmically as k -> 1.
    EXPECT_GT(ellip_K(0.999999999), 10.0);
}

TEST(Elliptic, SncndnDegenerateModuli) {
    // k = 0: circular functions.
    for (double u : {0.3, 1.1, 2.0}) {
        auto e = ellip_sncndn(u, 0.0);
        EXPECT_NEAR(e.sn, std::sin(u), 1e-12);
        EXPECT_NEAR(e.cn, std::cos(u), 1e-12);
        EXPECT_NEAR(e.dn, 1.0, 1e-12);
    }
    // k = 1: hyperbolic functions.
    for (double u : {0.5, 1.5}) {
        auto e = ellip_sncndn(u, 1.0);
        EXPECT_NEAR(e.sn, std::tanh(u), 1e-12);
        EXPECT_NEAR(e.cn, 1.0 / std::cosh(u), 1e-12);
    }
}

TEST(Elliptic, PythagoreanIdentities) {
    for (double k : {0.1, 0.5, 0.9, 0.99999}) {
        for (double u : {0.2, 0.8, 1.7, 3.0}) {
            auto e = ellip_sncndn(u, k);
            EXPECT_NEAR(e.sn * e.sn + e.cn * e.cn, 1.0, 1e-10);
            EXPECT_NEAR(e.dn * e.dn + k * k * e.sn * e.sn, 1.0, 1e-10);
        }
    }
}

TEST(Elliptic, QuarterPeriod) {
    // sn(K, k) = 1, cn(K, k) = 0.
    for (double k : {0.3, 0.7, 0.95}) {
        auto e = ellip_sncndn(ellip_K(k), k);
        EXPECT_NEAR(e.sn, 1.0, 1e-9);
        EXPECT_NEAR(e.cn, 0.0, 1e-9);
    }
}

TEST(ZoloCoeffs, PartialFractionMatchesProductForm) {
    // f(x) = x prod (x^2+c_2j)/(x^2+c_{2j-1}) == x (1 + sum a_j/(x^2+c_{2j-1})).
    for (double l : {0.5, 1e-2, 1e-8}) {
        for (int r : {2, 4, 8}) {
            auto z = tbp::detail::zolo_coeffs(l, r);
            for (double x : {l, 0.5 * (l + 1), 1.0}) {
                double prod = x;
                for (int j = 1; j <= r; ++j)
                    prod *= (x * x + z.c[static_cast<size_t>(2 * j - 1)])
                            / (x * x + z.c[static_cast<size_t>(2 * j - 2)]);
                double pf = 1;
                for (int j = 1; j <= r; ++j)
                    pf += z.a[static_cast<size_t>(j - 1)]
                          / (x * x + z.c[static_cast<size_t>(2 * j - 2)]);
                pf *= x;
                EXPECT_NEAR(pf, prod, 1e-9 * std::abs(prod) + 1e-12)
                    << "l=" << l << " r=" << r << " x=" << x;
            }
        }
    }
}

TEST(ZoloCoeffs, MapContractsTowardOne) {
    // One application of f/f(1) must map [l, 1] onto [l', 1] with l' >> l.
    for (double l : {1e-4, 1e-8}) {
        auto z = tbp::detail::zolo_coeffs(l, 8);
        double const lp = z.f_min / z.f_max;
        EXPECT_GT(lp, std::pow(l, 0.1));  // dramatic contraction at r = 8
        EXPECT_LE(lp, 1.0);
        EXPECT_GT(lp, l);
    }
}

template <typename T>
class ZoloPd : public ::testing::Test {};
TYPED_TEST_SUITE(ZoloPd, test::AllTypes);

TYPED_TEST(ZoloPd, IllConditionedAccuracy) {
    using T = TypeParam;
    rt::Engine eng(3);
    gen::MatGenOptions opt;
    opt.cond = test::ill_cond<T>();
    opt.seed = 131;
    int const n = 24, nb = 8;
    auto A = gen::cond_matrix<T>(eng, n, n, nb, opt);
    auto Ad = ref::to_dense(A);
    TiledMatrix<T> H(n, n, nb);
    auto info = zolo_pd(eng, A, H);
    auto U = ref::to_dense(A);
    EXPECT_LE(ref::orthogonality(U) / std::sqrt(real_t<T>(n)), test::tol<T>(200));
    auto UH = ref::gemm(Op::NoTrans, Op::NoTrans, T(1), U, ref::to_dense(H));
    EXPECT_LE(ref::diff_fro(UH, Ad) / ref::norm_fro(Ad), test::tol<T>(200));
    EXPECT_LE(info.iterations, 4);
}

TYPED_TEST(ZoloPd, AgreesWithQdwh) {
    using T = TypeParam;
    gen::MatGenOptions opt;
    opt.cond = 1e5;
    opt.seed = 132;
    int const n = 18, nb = 6;
    ref::Dense<T> u_zolo, u_qdwh;
    {
        rt::Engine eng(3);
        auto A = gen::cond_matrix<T>(eng, n, n, nb, opt);
        TiledMatrix<T> H(n, n, nb);
        zolo_pd(eng, A, H);
        u_zolo = ref::to_dense(A);
    }
    {
        rt::Engine eng(3);
        auto A = gen::cond_matrix<T>(eng, n, n, nb, opt);
        TiledMatrix<T> H(n, n, nb);
        qdwh(eng, A, H);
        u_qdwh = ref::to_dense(A);
    }
    EXPECT_LE(ref::diff_fro(u_zolo, u_qdwh), test::tol<T>(50000));
}

TEST(ZoloPdDouble, TwoIterationsAtR8) {
    // The Zolotarev degree-17 function handles kappa = 1e16 in 2 iterations
    // (Nakatsukasa-Freund), vs QDWH's 6.
    rt::Engine eng(3);
    gen::MatGenOptions opt;
    opt.cond = 1e16;
    opt.seed = 133;
    int const n = 32, nb = 8;
    auto A = gen::cond_matrix<double>(eng, n, n, nb, opt);
    TiledMatrix<double> H(n, n, nb);
    ZoloOptions o;
    o.r = 8;
    auto info = zolo_pd(eng, A, H, o);
    EXPECT_LE(info.iterations, 3);
    EXPECT_GE(info.qr_solves, o.r);  // first sweep runs r independent QRs
}

TEST(ZoloPdDouble, SmallerRNeedsMoreIterations) {
    gen::MatGenOptions opt;
    opt.cond = 1e12;
    opt.seed = 134;
    int const n = 24, nb = 8;
    int iters_r2 = 0, iters_r8 = 0;
    for (int r : {2, 8}) {
        rt::Engine eng(3);
        auto A = gen::cond_matrix<double>(eng, n, n, nb, opt);
        TiledMatrix<double> H(n, n, nb);
        ZoloOptions o;
        o.r = r;
        auto info = zolo_pd(eng, A, H, o);
        (r == 2 ? iters_r2 : iters_r8) = info.iterations;
    }
    EXPECT_GE(iters_r2, iters_r8);
}

TYPED_TEST(ZoloPd, Rectangular) {
    using T = TypeParam;
    rt::Engine eng(3);
    gen::MatGenOptions opt;
    opt.cond = 1e4;
    opt.seed = 135;
    int const m = 30, n = 13, nb = 6;
    auto A = gen::cond_matrix<T>(eng, m, n, nb, opt);
    auto Ad = ref::to_dense(A);
    TiledMatrix<T> H(n, n, nb);
    zolo_pd(eng, A, H);
    auto U = ref::to_dense(A);
    EXPECT_LE(ref::orthogonality(U) / std::sqrt(real_t<T>(n)), test::tol<T>(200));
    auto UH = ref::gemm(Op::NoTrans, Op::NoTrans, T(1), U, ref::to_dense(H));
    EXPECT_LE(ref::diff_fro(UH, Ad) / ref::norm_fro(Ad), test::tol<T>(200));
}
