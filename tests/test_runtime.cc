// Dataflow engine: dependency semantics (RAW/WAR/WAW), modes, stress,
// error propagation, tracing.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "common/rng.hh"
#include "runtime/engine.hh"

using namespace tbp;

TEST(Runtime, RunsAllTasks) {
    rt::Engine eng(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        eng.submit("inc", {}, [&] { count.fetch_add(1); });
    eng.wait();
    EXPECT_EQ(count.load(), 100);
    EXPECT_EQ(eng.tasks_executed(), 100u);
}

TEST(Runtime, RawDependency) {
    rt::Engine eng(4);
    int x = 0;
    int observed = -1;
    eng.submit("w", {rt::write(&x)}, [&] { x = 42; });
    eng.submit("r", {rt::read(&x)}, [&] { observed = x; });
    eng.wait();
    EXPECT_EQ(observed, 42);
}

TEST(Runtime, WawOrdering) {
    rt::Engine eng(4);
    int x = 0;
    for (int i = 1; i <= 50; ++i)
        eng.submit("w", {rt::write(&x)}, [&x, i] { x = i; });
    eng.wait();
    EXPECT_EQ(x, 50);
}

TEST(Runtime, WarDependency) {
    // A writer submitted after readers must wait for all of them.
    rt::Engine eng(4);
    int x = 7;
    std::atomic<int> reads_ok{0};
    for (int i = 0; i < 20; ++i)
        eng.submit("r", {rt::read(&x)}, [&] {
            if (x == 7)
                reads_ok.fetch_add(1);
        });
    eng.submit("w", {rt::write(&x)}, [&] { x = 99; });
    eng.wait();
    EXPECT_EQ(reads_ok.load(), 20);
    EXPECT_EQ(x, 99);
}

TEST(Runtime, ChainAccumulation) {
    rt::Engine eng(4);
    long sum = 0;
    for (int i = 1; i <= 1000; ++i)
        eng.submit("acc", {rt::readwrite(&sum)}, [&sum, i] { sum += i; });
    eng.wait();
    EXPECT_EQ(sum, 500500);
}

TEST(Runtime, IndependentKeysRunConcurrently) {
    // No ordering between disjoint keys: both chains complete correctly.
    rt::Engine eng(4);
    long a = 0, b = 0;
    for (int i = 0; i < 500; ++i) {
        eng.submit("a", {rt::readwrite(&a)}, [&a] { ++a; });
        eng.submit("b", {rt::readwrite(&b)}, [&b] { ++b; });
    }
    eng.wait();
    EXPECT_EQ(a, 500);
    EXPECT_EQ(b, 500);
}

TEST(Runtime, SequentialModeExecutesInline) {
    rt::Engine eng(0, rt::Mode::Sequential);
    int x = 0;
    eng.submit("w", {rt::write(&x)}, [&] { x = 5; });
    EXPECT_EQ(x, 5);  // already done, no wait needed
    eng.wait();
}

TEST(Runtime, ForkJoinOpFenceWaits) {
    rt::Engine eng(2, rt::Mode::ForkJoin);
    int x = 0;
    eng.submit("w", {rt::write(&x)}, [&] { x = 1; });
    eng.op_fence();
    EXPECT_EQ(x, 1);
}

TEST(Runtime, DataflowOpFenceDoesNotBlockSubmission) {
    rt::Engine eng(2, rt::Mode::TaskDataflow);
    std::atomic<int> done{0};
    eng.submit("t", {}, [&] { done.fetch_add(1); });
    eng.op_fence();  // no-op; just must not deadlock
    eng.submit("t", {}, [&] { done.fetch_add(1); });
    eng.wait();
    EXPECT_EQ(done.load(), 2);
}

TEST(Runtime, ExceptionPropagates) {
    rt::Engine eng(2);
    eng.submit("boom", {}, [] { throw std::runtime_error("boom"); });
    EXPECT_THROW(eng.wait(), std::runtime_error);
    // Engine is reusable after the failure.
    std::atomic<int> ok{0};
    eng.submit("ok", {}, [&] { ok.fetch_add(1); });
    eng.wait();
    EXPECT_EQ(ok.load(), 1);
}

TEST(Runtime, FlopAccounting) {
    rt::Engine eng(2);
    eng.submit("a", 100.0, {}, [] {});
    eng.submit("b", 250.0, {}, [] {});
    eng.wait();
    EXPECT_DOUBLE_EQ(eng.flops_executed(), 350.0);
    eng.reset_stats();
    EXPECT_DOUBLE_EQ(eng.flops_executed(), 0.0);
}

TEST(Runtime, TraceRecordsTasksAndDeps) {
    rt::Engine eng(2);
    eng.set_trace(true);
    int x = 0;
    eng.submit("w1", 1.0, {rt::write(&x)}, [&] { x = 1; });
    eng.submit("w2", 2.0, {rt::readwrite(&x)}, [&] { x = 2; });
    eng.wait();
    auto const& tr = eng.trace();
    ASSERT_EQ(tr.size(), 2u);
    // Find w2; it must depend on w1's id.
    auto const& w2 = (tr[0].name == "w2") ? tr[0] : tr[1];
    auto const& w1 = (tr[0].name == "w1") ? tr[0] : tr[1];
    ASSERT_EQ(w2.deps.size(), 1u);
    EXPECT_EQ(w2.deps[0], w1.id);
    EXPECT_GE(w2.t_start, w1.t_start);
}

TEST(Runtime, StressRandomDag) {
    // Random reads/writes over a small key set; verify against a serial
    // replay of the same program order.
    int const n_keys = 8;
    int const n_tasks = 2000;
    std::vector<long> vals(n_keys, 0);
    std::vector<long> ref_vals(n_keys, 0);
    CounterRng rng(2024);

    rt::Engine eng(4);
    for (int t = 0; t < n_tasks; ++t) {
        int const dst = static_cast<int>(rng.uniform(3 * t) * n_keys);
        int const src = static_cast<int>(rng.uniform(3 * t + 1) * n_keys);
        long const add = static_cast<long>(rng.uniform(3 * t + 2) * 10);
        eng.submit("mix",
                   {rt::read(&vals[src]), rt::readwrite(&vals[dst])},
                   [&vals, src, dst, add] { vals[dst] += vals[src] + add; });
        ref_vals[dst] += ref_vals[src] + add;
    }
    eng.wait();
    EXPECT_EQ(vals, ref_vals);
}

TEST(Runtime, WaitIsReentrantEpoch) {
    rt::Engine eng(2);
    int x = 0;
    eng.submit("w", {rt::write(&x)}, [&] { x = 1; });
    eng.wait();
    eng.submit("w", {rt::readwrite(&x)}, [&] { x += 1; });
    eng.wait();
    EXPECT_EQ(x, 2);
}

TEST(Runtime, ManyThreadsManyTasks) {
    rt::Engine eng(8);
    std::atomic<long> sum{0};
    for (int i = 0; i < 5000; ++i)
        eng.submit("s", {}, [&] { sum.fetch_add(1); });
    eng.wait();
    EXPECT_EQ(sum.load(), 5000);
}

TEST(Runtime, GlobalQueueModeKeepsDependencySemantics) {
    // The legacy single-queue scheduler stays selectable (bench baseline)
    // and must honor the same dataflow ordering.
    rt::Engine eng(4, rt::Mode::TaskDataflow, rt::Sched::GlobalQueue);
    long sum = 0;
    for (int i = 1; i <= 1000; ++i)
        eng.submit("acc", {rt::readwrite(&sum)}, [&sum, i] { sum += i; });
    eng.wait();
    EXPECT_EQ(sum, 500500);
    EXPECT_EQ(eng.sched_stats().global_pops, 1000u);
}

TEST(Runtime, TraceRecordsPriorityAndWorker) {
    rt::Engine eng(2);
    eng.set_trace(true);
    int x = 0;
    eng.submit("panel", 1.0, {rt::write(&x)}, [&] { x = 1; }, /*priority=*/1);
    eng.submit("update", 1.0, {rt::readwrite(&x)}, [&] { ++x; });
    eng.wait();
    auto const& tr = eng.trace();
    ASSERT_EQ(tr.size(), 2u);
    auto const& panel = (tr[0].name == "panel") ? tr[0] : tr[1];
    auto const& update = (tr[0].name == "update") ? tr[0] : tr[1];
    EXPECT_EQ(panel.priority, 1);
    EXPECT_EQ(update.priority, 0);
    EXPECT_GE(panel.worker, 0);
    EXPECT_LT(panel.worker, eng.num_threads());
}

TEST(Runtime, DuplicateAccessesSingleEdge) {
    // The same key listed twice must not double-count the dependency edge.
    rt::Engine eng(2);
    eng.set_trace(true);
    int x = 0;
    eng.submit("w", {rt::write(&x)}, [&] { x = 3; });
    eng.submit("dup", {rt::read(&x), rt::read(&x), rt::readwrite(&x)},
               [&] { ++x; });
    eng.wait();
    EXPECT_EQ(x, 4);
    auto const& tr = eng.trace();
    ASSERT_EQ(tr.size(), 2u);
    auto const& dup = (tr[0].name == "dup") ? tr[0] : tr[1];
    EXPECT_EQ(dup.deps.size(), 1u);
}
