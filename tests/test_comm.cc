// Virtual-rank message passing: point-to-point, collectives, determinism,
// and the distributed kernels built on them.

#include <gtest/gtest.h>

#include <numeric>

#include "comm/communicator.hh"
#include "comm/dist.hh"
#include "ref/dense.hh"
#include "test_util.hh"

using namespace tbp;

TEST(Comm, SendRecvRing) {
    int const P = 4;
    comm::World world(P);
    std::vector<int> received(P, -1);
    world.run([&](comm::Communicator& c) {
        int const next = (c.rank() + 1) % P;
        int const prev = (c.rank() + P - 1) % P;
        int payload = c.rank() * 10;
        c.send(&payload, 1, next, 7);
        int got = -1;
        c.recv(&got, 1, prev, 7);
        received[static_cast<size_t>(c.rank())] = got;
    });
    for (int r = 0; r < P; ++r)
        EXPECT_EQ(received[static_cast<size_t>(r)], ((r + P - 1) % P) * 10);
}

TEST(Comm, TagsKeepChannelsSeparate) {
    comm::World world(2);
    std::vector<double> got(2, 0);
    world.run([&](comm::Communicator& c) {
        if (c.rank() == 0) {
            double a = 1.5, b = 2.5;
            c.send(&b, 1, 1, /*tag=*/2);  // sent first...
            c.send(&a, 1, 1, /*tag=*/1);
        } else {
            double a = 0, b = 0;
            c.recv(&a, 1, 0, /*tag=*/1);  // ...but tag 1 received first
            c.recv(&b, 1, 0, /*tag=*/2);
            got[0] = a;
            got[1] = b;
        }
    });
    EXPECT_EQ(got[0], 1.5);
    EXPECT_EQ(got[1], 2.5);
}

TEST(Comm, FifoPerChannel) {
    comm::World world(2);
    std::vector<int> order;
    world.run([&](comm::Communicator& c) {
        if (c.rank() == 0) {
            for (int i = 0; i < 10; ++i)
                c.send(&i, 1, 1, 0);
        } else {
            for (int i = 0; i < 10; ++i) {
                int v;
                c.recv(&v, 1, 0, 0);
                order.push_back(v);
            }
        }
    });
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Comm, Barrier) {
    int const P = 5;
    comm::World world(P);
    std::atomic<int> phase1{0};
    std::vector<int> seen(P, -1);
    world.run([&](comm::Communicator& c) {
        phase1.fetch_add(1);
        c.barrier();
        seen[static_cast<size_t>(c.rank())] = phase1.load();
        c.barrier();
    });
    for (int r = 0; r < P; ++r)
        EXPECT_EQ(seen[static_cast<size_t>(r)], P);
}

TEST(Comm, BarrierReusable) {
    comm::World world(3);
    std::atomic<int> count{0};
    world.run([&](comm::Communicator& c) {
        for (int i = 0; i < 50; ++i) {
            c.barrier();
            if (c.rank() == 0)
                count.fetch_add(1);
            c.barrier();
        }
    });
    EXPECT_EQ(count.load(), 50);
}

TEST(Comm, Bcast) {
    comm::World world(4);
    std::vector<std::vector<double>> got(4);
    world.run([&](comm::Communicator& c) {
        std::vector<double> v(3, 0);
        if (c.rank() == 1)
            v = {1.0, 2.0, 3.0};
        c.bcast(v, 1);
        got[static_cast<size_t>(c.rank())] = v;
    });
    for (int r = 0; r < 4; ++r)
        EXPECT_EQ(got[static_cast<size_t>(r)], (std::vector<double>{1, 2, 3}));
}

TEST(Comm, AllreduceSum) {
    int const P = 6;
    comm::World world(P);
    std::vector<std::vector<long>> got(static_cast<size_t>(P));
    world.run([&](comm::Communicator& c) {
        std::vector<long> v{static_cast<long>(c.rank()), 1};
        c.allreduce_sum(v);
        got[static_cast<size_t>(c.rank())] = v;
    });
    long const expect0 = P * (P - 1) / 2;
    for (int r = 0; r < P; ++r) {
        EXPECT_EQ(got[static_cast<size_t>(r)][0], expect0);
        EXPECT_EQ(got[static_cast<size_t>(r)][1], P);
    }
}

TEST(Comm, AllreduceMax) {
    comm::World world(5);
    std::vector<double> got(5, -1);
    world.run([&](comm::Communicator& c) {
        got[static_cast<size_t>(c.rank())] =
            c.allreduce_max(static_cast<double>((c.rank() * 7) % 5));
    });
    for (auto v : got)
        EXPECT_EQ(v, 4.0);
}

TEST(Comm, ExceptionPropagatesFromRank) {
    comm::World world(2);
    EXPECT_THROW(world.run([&](comm::Communicator& c) {
        c.barrier();
        if (c.rank() == 1)
            throw std::runtime_error("rank failure");
    }),
                 std::runtime_error);
}

TEST(CommDist, BlockCyclicOwnershipPartitions) {
    comm::World world(4);
    std::vector<int> owned(4, 0);
    world.run([&](comm::Communicator& c) {
        comm::DistMatrix<double> A(c, 20, 20, 4, Grid{2, 2});
        int count = 0;
        for (int j = 0; j < A.nt(); ++j)
            for (int i = 0; i < A.mt(); ++i)
                if (A.is_local(i, j))
                    ++count;
        owned[static_cast<size_t>(c.rank())] = count;
    });
    EXPECT_EQ(std::accumulate(owned.begin(), owned.end(), 0), 25);
    for (auto c : owned)  // 5x5 tiles over 2x2 grid: 4/6/6/9 or similar
        EXPECT_GT(c, 0);
}

TEST(CommDist, ColSumsMatchDense) {
    using T = double;
    int const m = 18, n = 13;
    auto D = ref::random_dense<T>(m, n, 121);
    comm::World world(6);
    std::vector<std::vector<double>> per_rank(6);
    world.run([&](comm::Communicator& c) {
        comm::DistMatrix<T> A(c, m, n, 4, Grid{3, 2});
        A.fill([&](std::int64_t i, std::int64_t j) { return D(i, j); });
        per_rank[static_cast<size_t>(c.rank())] = comm::dist_col_abs_sums(c, A);
    });
    for (int r = 0; r < 6; ++r) {
        ASSERT_EQ(per_rank[static_cast<size_t>(r)].size(), static_cast<size_t>(n));
        for (int j = 0; j < n; ++j) {
            double s = 0;
            for (int i = 0; i < m; ++i)
                s += std::abs(D(i, j));
            EXPECT_NEAR(per_rank[static_cast<size_t>(r)][static_cast<size_t>(j)], s,
                        1e-12 * (1 + s));
        }
    }
}

TEST(CommDist, GemmAMatchesDense) {
    using T = double;
    int const m = 17, n = 11;
    auto D = ref::random_dense<T>(m, n, 122);
    auto xd = ref::random_dense<T>(n, 1, 123);
    std::vector<T> x(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        x[static_cast<size_t>(i)] = xd(i, 0);

    comm::World world(4);
    std::vector<std::vector<T>> ys(4);
    world.run([&](comm::Communicator& c) {
        comm::DistMatrix<T> A(c, m, n, 4, Grid{2, 2});
        A.fill([&](std::int64_t i, std::int64_t j) { return D(i, j); });
        std::vector<T> y;
        comm::dist_gemmA(c, Op::NoTrans, A, x, y);
        ys[static_cast<size_t>(c.rank())] = y;
    });
    auto yref = ref::gemm(Op::NoTrans, Op::NoTrans, T(1), D, xd);
    for (int r = 0; r < 4; ++r) {
        // Identical on every rank (deterministic allreduce).
        EXPECT_EQ(ys[static_cast<size_t>(r)], ys[0]);
    }
    for (int i = 0; i < m; ++i)
        EXPECT_NEAR(ys[0][static_cast<size_t>(i)], yref(i, 0),
                    1e-11 * (1 + std::abs(yref(i, 0))));
}

TEST(CommDist, FroNormMatches) {
    using T = double;
    auto D = ref::random_dense<T>(15, 10, 124);
    comm::World world(2);
    std::vector<double> norms(2, 0);
    world.run([&](comm::Communicator& c) {
        comm::DistMatrix<T> A(c, 15, 10, 4, Grid{2, 1});
        A.fill([&](std::int64_t i, std::int64_t j) { return D(i, j); });
        norms[static_cast<size_t>(c.rank())] = comm::dist_norm_fro(c, A);
    });
    EXPECT_NEAR(norms[0], ref::norm_fro(D), 1e-12 * ref::norm_fro(D));
    EXPECT_EQ(norms[0], norms[1]);
}
