// Virtual-rank message passing: point-to-point, the request/progress layer,
// algorithmic collectives (all algorithms, non-power-of-two rank counts, all
// scalar types, determinism contracts), traffic counters vs the cost model,
// and the distributed kernels built on them.

#include <gtest/gtest.h>

#include <complex>
#include <numeric>

#include "comm/communicator.hh"
#include "comm/dist.hh"
#include "perf/cost_model.hh"
#include "perf/sched_report.hh"
#include "ref/dense.hh"
#include "test_util.hh"

using namespace tbp;

TEST(Comm, SendRecvRing) {
    int const P = 4;
    comm::World world(P);
    std::vector<int> received(P, -1);
    world.run([&](comm::Communicator& c) {
        int const next = (c.rank() + 1) % P;
        int const prev = (c.rank() + P - 1) % P;
        int payload = c.rank() * 10;
        c.send(&payload, 1, next, 7);
        int got = -1;
        c.recv(&got, 1, prev, 7);
        received[static_cast<size_t>(c.rank())] = got;
    });
    for (int r = 0; r < P; ++r)
        EXPECT_EQ(received[static_cast<size_t>(r)], ((r + P - 1) % P) * 10);
}

TEST(Comm, TagsKeepChannelsSeparate) {
    comm::World world(2);
    std::vector<double> got(2, 0);
    world.run([&](comm::Communicator& c) {
        if (c.rank() == 0) {
            double a = 1.5, b = 2.5;
            c.send(&b, 1, 1, /*tag=*/2);  // sent first...
            c.send(&a, 1, 1, /*tag=*/1);
        } else {
            double a = 0, b = 0;
            c.recv(&a, 1, 0, /*tag=*/1);  // ...but tag 1 received first
            c.recv(&b, 1, 0, /*tag=*/2);
            got[0] = a;
            got[1] = b;
        }
    });
    EXPECT_EQ(got[0], 1.5);
    EXPECT_EQ(got[1], 2.5);
}

TEST(Comm, FifoPerChannel) {
    comm::World world(2);
    std::vector<int> order;
    world.run([&](comm::Communicator& c) {
        if (c.rank() == 0) {
            for (int i = 0; i < 10; ++i)
                c.send(&i, 1, 1, 0);
        } else {
            for (int i = 0; i < 10; ++i) {
                int v;
                c.recv(&v, 1, 0, 0);
                order.push_back(v);
            }
        }
    });
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Comm, Barrier) {
    int const P = 5;
    comm::World world(P);
    std::atomic<int> phase1{0};
    std::vector<int> seen(P, -1);
    world.run([&](comm::Communicator& c) {
        phase1.fetch_add(1);
        c.barrier();
        seen[static_cast<size_t>(c.rank())] = phase1.load();
        c.barrier();
    });
    for (int r = 0; r < P; ++r)
        EXPECT_EQ(seen[static_cast<size_t>(r)], P);
}

TEST(Comm, BarrierReusable) {
    comm::World world(3);
    std::atomic<int> count{0};
    world.run([&](comm::Communicator& c) {
        for (int i = 0; i < 50; ++i) {
            c.barrier();
            if (c.rank() == 0)
                count.fetch_add(1);
            c.barrier();
        }
    });
    EXPECT_EQ(count.load(), 50);
}

TEST(Comm, Bcast) {
    comm::World world(4);
    std::vector<std::vector<double>> got(4);
    world.run([&](comm::Communicator& c) {
        std::vector<double> v(3, 0);
        if (c.rank() == 1)
            v = {1.0, 2.0, 3.0};
        c.bcast(v, 1);
        got[static_cast<size_t>(c.rank())] = v;
    });
    for (int r = 0; r < 4; ++r)
        EXPECT_EQ(got[static_cast<size_t>(r)], (std::vector<double>{1, 2, 3}));
}

TEST(Comm, AllreduceSum) {
    int const P = 6;
    comm::World world(P);
    std::vector<std::vector<long>> got(static_cast<size_t>(P));
    world.run([&](comm::Communicator& c) {
        std::vector<long> v{static_cast<long>(c.rank()), 1};
        c.allreduce_sum(v);
        got[static_cast<size_t>(c.rank())] = v;
    });
    long const expect0 = P * (P - 1) / 2;
    for (int r = 0; r < P; ++r) {
        EXPECT_EQ(got[static_cast<size_t>(r)][0], expect0);
        EXPECT_EQ(got[static_cast<size_t>(r)][1], P);
    }
}

TEST(Comm, AllreduceMax) {
    comm::World world(5);
    std::vector<double> got(5, -1);
    world.run([&](comm::Communicator& c) {
        got[static_cast<size_t>(c.rank())] =
            c.allreduce_max(static_cast<double>((c.rank() * 7) % 5));
    });
    for (auto v : got)
        EXPECT_EQ(v, 4.0);
}

TEST(Comm, ExceptionPropagatesFromRank) {
    comm::World world(2);
    EXPECT_THROW(world.run([&](comm::Communicator& c) {
        c.barrier();
        if (c.rank() == 1)
            throw std::runtime_error("rank failure");
    }),
                 std::runtime_error);
}

TEST(CommReq, IsendIrecvWaitAll) {
    int const N = 8;
    comm::World world(2);
    std::vector<int> got(static_cast<size_t>(N), -1);
    world.run([&](comm::Communicator& c) {
        if (c.rank() == 0) {
            std::vector<comm::Request> reqs;
            std::vector<int> vals(static_cast<size_t>(N));
            for (int i = 0; i < N; ++i) {
                vals[static_cast<size_t>(i)] = 100 + i;
                reqs.push_back(
                    c.isend(&vals[static_cast<size_t>(i)], 1, 1, i));
            }
            comm::Request::wait_all(reqs);
        } else {
            std::vector<comm::Request> reqs;
            for (int i = 0; i < N; ++i)
                reqs.push_back(c.irecv(&got[static_cast<size_t>(i)], 1, 0, i));
            comm::Request::wait_all(reqs);
        }
    });
    for (int i = 0; i < N; ++i)
        EXPECT_EQ(got[static_cast<size_t>(i)], 100 + i);
}

TEST(CommReq, TestPollsToCompletion) {
    comm::World world(2);
    std::vector<double> out(2, 0);
    world.run([&](comm::Communicator& c) {
        if (c.rank() == 0) {
            c.barrier();  // receiver posts first
            double v = 2.75;
            c.send(&v, 1, 1, 3);
        } else {
            double v = 0;
            auto r = c.irecv(&v, 1, 0, 3);
            EXPECT_FALSE(r.done());
            c.barrier();
            while (!r.test()) {
            }
            EXPECT_TRUE(r.done());
            out[1] = v;
        }
    });
    EXPECT_EQ(out[1], 2.75);
}

TEST(CommReq, ZeroLengthMessages) {
    comm::World world(2);
    std::vector<int> after(2, 0);
    world.run([&](comm::Communicator& c) {
        if (c.rank() == 0) {
            c.send(static_cast<double const*>(nullptr), 0, 1, 1);
            std::vector<double> empty;
            c.send(empty, 1, 2);
        } else {
            c.recv(static_cast<double*>(nullptr), 0, 0, 1);
            std::vector<double> v;
            c.recv(v, 0, 2);
            EXPECT_TRUE(v.empty());
        }
        after[static_cast<size_t>(c.rank())] = 1;
    });
    EXPECT_EQ(after[0] + after[1], 2);
}

TEST(CommReq, SelfSendRecv) {
    comm::World world(3);
    std::vector<int> got(3, -1);
    world.run([&](comm::Communicator& c) {
        int v = c.rank() * 11;
        c.send(&v, 1, c.rank(), 5);
        int r = -1;
        c.recv(&r, 1, c.rank(), 5);
        got[static_cast<size_t>(c.rank())] = r;
    });
    for (int r = 0; r < 3; ++r)
        EXPECT_EQ(got[static_cast<size_t>(r)], r * 11);
}

TEST(CommReq, RecvVectorResizesFromMessage) {
    comm::World world(2);
    std::vector<float> got;
    world.run([&](comm::Communicator& c) {
        if (c.rank() == 0) {
            std::vector<float> v{1.f, 2.f, 3.f, 4.f, 5.f};
            c.send(v, 1, 0);
        } else {
            std::vector<float> v;  // default-constructed: sized by message
            c.recv(v, 0, 0);
            got = v;
        }
    });
    ASSERT_EQ(got.size(), 5u);
    EXPECT_EQ(got[4], 5.f);
}

TEST(CommReq, RecvCountMismatchThrows) {
    comm::World world(2);
    EXPECT_THROW(world.run([&](comm::Communicator& c) {
        if (c.rank() == 0) {
            std::vector<double> v(3, 1.0);
            c.send(v, 1, 0);
        } else {
            double buf[5];
            c.recv(buf, 5, 0, 0);  // message carries 3 elements
        }
    }),
                 tbp::Error);
}

TEST(CommReq, NegativeUserTagThrows) {
    comm::World world(2);
    EXPECT_THROW(world.run([&](comm::Communicator& c) {
        if (c.rank() == 0) {
            int v = 1;
            c.send(&v, 1, 1, -3);  // reserved for internal collectives
        }
    }),
                 tbp::Error);
}

TEST(CommReq, LeakedMessagesCounted) {
    comm::World world(2);
    world.run([&](comm::Communicator& c) {
        if (c.rank() == 0) {
            int v = 9;
            c.send(&v, 1, 1, 0);  // never received
        }
    });
    EXPECT_EQ(world.leaked_messages(), 1u);
}

namespace {

template <typename T>
T coll_val(int rank, int i) {
    if constexpr (is_complex_v<T>)
        return T(static_cast<real_t<T>>(rank + 1),
                 static_cast<real_t<T>>(i + 1));
    else
        return static_cast<T>((rank + 1) * (i % 3 + 1));
}

/// One sweep of bcast / allreduce_sum / allgather / allgatherv on P ranks
/// under `cfg`; all results checked against rank-ordered references.
template <typename T>
void check_collectives(int P, comm::coll::Config cfg) {
    int const n = 5;
    comm::World world(P);
    world.set_coll_config(cfg);
    world.run([&](comm::Communicator& c) {
        // bcast from a non-zero root
        std::vector<T> b(static_cast<size_t>(n));
        int const root = P - 1;
        if (c.rank() == root)
            for (int i = 0; i < n; ++i)
                b[static_cast<size_t>(i)] = coll_val<T>(root, i);
        c.bcast(b, root);
        for (int i = 0; i < n; ++i)
            ASSERT_EQ(b[static_cast<size_t>(i)], coll_val<T>(root, i));

        // allreduce_sum: ascending-rank fold reference
        std::vector<T> v(static_cast<size_t>(n));
        for (int i = 0; i < n; ++i)
            v[static_cast<size_t>(i)] = coll_val<T>(c.rank(), i);
        c.allreduce_sum(v);
        for (int i = 0; i < n; ++i) {
            T expect = coll_val<T>(0, i);
            for (int r = 1; r < P; ++r)
                expect += coll_val<T>(r, i);
            ASSERT_EQ(v[static_cast<size_t>(i)], expect);
        }

        // allgather
        std::vector<T> mine(static_cast<size_t>(n));
        for (int i = 0; i < n; ++i)
            mine[static_cast<size_t>(i)] = coll_val<T>(c.rank(), i);
        std::vector<T> all(static_cast<size_t>(n) * P);
        c.allgather(mine.data(), mine.size(), all.data());
        for (int r = 0; r < P; ++r)
            for (int i = 0; i < n; ++i)
                ASSERT_EQ(all[static_cast<size_t>(r * n + i)],
                          coll_val<T>(r, i));

        // allgatherv: rank r contributes r + 1 elements
        std::vector<T> var(static_cast<size_t>(c.rank() + 1),
                           coll_val<T>(c.rank(), 0));
        std::vector<std::size_t> counts;
        auto cat = c.allgatherv(var, &counts);
        ASSERT_EQ(counts.size(), static_cast<size_t>(P));
        std::size_t pos = 0;
        for (int r = 0; r < P; ++r) {
            ASSERT_EQ(counts[static_cast<size_t>(r)],
                      static_cast<size_t>(r + 1));
            for (int i = 0; i <= r; ++i)
                ASSERT_EQ(cat[pos++], coll_val<T>(r, 0));
        }
    });
}

}  // namespace

TEST(CommColl, NonPowerOfTwoRanksAllTypes) {
    for (int P : {3, 5, 6, 7}) {
        for (bool legacy : {false, true}) {
            comm::coll::Config cfg;
            cfg.legacy = legacy;
            check_collectives<float>(P, cfg);
            check_collectives<double>(P, cfg);
            check_collectives<std::complex<float>>(P, cfg);
            check_collectives<std::complex<double>>(P, cfg);
        }
    }
}

TEST(CommColl, ExplicitAlgorithmsAllRankCounts) {
    using comm::coll::Algo;
    for (int P : {2, 3, 4, 5, 7, 8}) {
        for (auto algo : {Algo::Linear, Algo::Tree, Algo::RecDouble,
                          Algo::Ring}) {
            comm::coll::Config cfg;
            cfg.allreduce = algo;
            cfg.bcast = algo == Algo::Linear ? Algo::Linear : Algo::Tree;
            cfg.allgather = algo == Algo::Ring ? Algo::Ring : Algo::Tree;
            if (algo == Algo::Ring)
                cfg.deterministic = false;
            check_collectives<double>(P, cfg);
        }
    }
}

namespace {

std::vector<double> run_allreduce(int P, comm::coll::Algo algo,
                                  std::size_t n) {
    comm::coll::Config cfg;
    cfg.allreduce = algo;
    cfg.deterministic = algo != comm::coll::Algo::Ring;
    comm::World world(P);
    world.set_coll_config(cfg);
    std::vector<double> out;
    world.run([&](comm::Communicator& c) {
        std::vector<double> v(n);
        std::uint64_t s = static_cast<std::uint64_t>(c.rank()) * 977 + 13;
        for (auto& x : v) {
            s = s * 6364136223846793005ull + 1442695040888963407ull;
            x = static_cast<double>(s >> 11) * 0x1.0p-53 - 0.5;
        }
        c.allreduce_sum(v);
        if (c.rank() == 0)
            out = v;
    });
    return out;
}

}  // namespace

TEST(CommColl, RankOrderedAlgosBitIdentical) {
    // Linear, Tree, and RecDouble all fold contributions in ascending rank
    // order, so with rounding-sensitive doubles the results must agree to
    // the last bit — the property that lets the engine replace the legacy
    // collectives without perturbing any numerical result.
    using comm::coll::Algo;
    for (int P : {3, 4, 6, 7, 8}) {
        auto lin = run_allreduce(P, Algo::Linear, 33);
        auto tre = run_allreduce(P, Algo::Tree, 33);
        auto rec = run_allreduce(P, Algo::RecDouble, 33);
        EXPECT_EQ(lin, tre) << "P=" << P;
        EXPECT_EQ(lin, rec) << "P=" << P;
    }
}

TEST(CommColl, RingReproducibleAtFixedP) {
    // Ring re-associates (chunked reduce-scatter), so it may differ from the
    // rank-ordered fold — but repeated runs at the same P are bit-identical.
    using comm::coll::Algo;
    for (int P : {4, 6}) {
        auto a = run_allreduce(P, Algo::Ring, 64);
        auto b = run_allreduce(P, Algo::Ring, 64);
        EXPECT_EQ(a, b) << "P=" << P;
    }
}

TEST(CommColl, StatsMatchCostModelPrediction) {
    // One collective per run: the measured counters must equal the
    // cost model's replayed volumes exactly, message for message.
    using comm::coll::Algo;
    struct Case {
        perf::CollKind kind;
        Algo algo;
    };
    for (int P : {3, 4, 6}) {
        for (auto [kind, algo] :
             {Case{perf::CollKind::Bcast, Algo::Tree},
              Case{perf::CollKind::Allreduce, Algo::RecDouble},
              Case{perf::CollKind::Allreduce, Algo::Ring},
              Case{perf::CollKind::Allgather, Algo::Linear}}) {
            std::size_t const n = 24;
            comm::coll::Config cfg;
            cfg.bcast = algo;
            cfg.allreduce = algo;
            cfg.allgather = algo;
            cfg.deterministic = algo != Algo::Ring;
            comm::World world(P);
            world.set_coll_config(cfg);
            world.run([&](comm::Communicator& c) {
                std::vector<double> v(n, c.rank() + 1.0);
                std::vector<double> all(n * static_cast<size_t>(P));
                switch (kind) {
                    case perf::CollKind::Bcast:
                        c.bcast(v.data(), n, 0);
                        break;
                    case perf::CollKind::Allreduce:
                        c.allreduce_sum(v);
                        break;
                    default:
                        c.allgather(v.data(), n, all.data());
                        break;
                }
            });
            auto rep = perf::comm_report(world);
            auto vol = perf::collective_volume(kind, algo, P, n,
                                               sizeof(double));
            EXPECT_EQ(rep.total.sends, vol.messages) << P;
            EXPECT_EQ(rep.total.bytes_sent, vol.bytes) << P;
            EXPECT_EQ(rep.max_rank_sends(), vol.max_rank_sends) << P;
            EXPECT_EQ(rep.max_rank_bytes(), vol.max_rank_bytes) << P;
            EXPECT_EQ(rep.total.sends, rep.total.recvs) << P;
            EXPECT_EQ(rep.leaked, 0u) << P;
        }
    }
}

TEST(CommDist, BlockCyclicOwnershipPartitions) {
    comm::World world(4);
    std::vector<int> owned(4, 0);
    world.run([&](comm::Communicator& c) {
        comm::DistMatrix<double> A(c, 20, 20, 4, Grid{2, 2});
        int count = 0;
        for (int j = 0; j < A.nt(); ++j)
            for (int i = 0; i < A.mt(); ++i)
                if (A.is_local(i, j))
                    ++count;
        owned[static_cast<size_t>(c.rank())] = count;
    });
    EXPECT_EQ(std::accumulate(owned.begin(), owned.end(), 0), 25);
    for (auto c : owned)  // 5x5 tiles over 2x2 grid: 4/6/6/9 or similar
        EXPECT_GT(c, 0);
}

TEST(CommDist, ColSumsMatchDense) {
    using T = double;
    int const m = 18, n = 13;
    auto D = ref::random_dense<T>(m, n, 121);
    comm::World world(6);
    std::vector<std::vector<double>> per_rank(6);
    world.run([&](comm::Communicator& c) {
        comm::DistMatrix<T> A(c, m, n, 4, Grid{3, 2});
        A.fill([&](std::int64_t i, std::int64_t j) { return D(i, j); });
        per_rank[static_cast<size_t>(c.rank())] = comm::dist_col_abs_sums(c, A);
    });
    for (int r = 0; r < 6; ++r) {
        ASSERT_EQ(per_rank[static_cast<size_t>(r)].size(), static_cast<size_t>(n));
        for (int j = 0; j < n; ++j) {
            double s = 0;
            for (int i = 0; i < m; ++i)
                s += std::abs(D(i, j));
            EXPECT_NEAR(per_rank[static_cast<size_t>(r)][static_cast<size_t>(j)], s,
                        1e-12 * (1 + s));
        }
    }
}

TEST(CommDist, GemmAMatchesDense) {
    using T = double;
    int const m = 17, n = 11;
    auto D = ref::random_dense<T>(m, n, 122);
    auto xd = ref::random_dense<T>(n, 1, 123);
    std::vector<T> x(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        x[static_cast<size_t>(i)] = xd(i, 0);

    comm::World world(4);
    std::vector<std::vector<T>> ys(4);
    world.run([&](comm::Communicator& c) {
        comm::DistMatrix<T> A(c, m, n, 4, Grid{2, 2});
        A.fill([&](std::int64_t i, std::int64_t j) { return D(i, j); });
        std::vector<T> y;
        comm::dist_gemmA(c, Op::NoTrans, A, x, y);
        ys[static_cast<size_t>(c.rank())] = y;
    });
    auto yref = ref::gemm(Op::NoTrans, Op::NoTrans, T(1), D, xd);
    for (int r = 0; r < 4; ++r) {
        // Identical on every rank (deterministic allreduce).
        EXPECT_EQ(ys[static_cast<size_t>(r)], ys[0]);
    }
    for (int i = 0; i < m; ++i)
        EXPECT_NEAR(ys[0][static_cast<size_t>(i)], yref(i, 0),
                    1e-11 * (1 + std::abs(yref(i, 0))));
}

TEST(CommDist, FroNormMatches) {
    using T = double;
    auto D = ref::random_dense<T>(15, 10, 124);
    comm::World world(2);
    std::vector<double> norms(2, 0);
    world.run([&](comm::Communicator& c) {
        comm::DistMatrix<T> A(c, 15, 10, 4, Grid{2, 1});
        A.fill([&](std::int64_t i, std::int64_t j) { return D(i, j); });
        norms[static_cast<size_t>(c.rank())] = comm::dist_norm_fro(c, A);
    });
    EXPECT_NEAR(norms[0], ref::norm_fro(D), 1e-12 * ref::norm_fro(D));
    EXPECT_EQ(norms[0], norms[1]);
}
