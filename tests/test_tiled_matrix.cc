#include <gtest/gtest.h>

#include "common/error.hh"
#include "matrix/tiled_matrix.hh"

using namespace tbp;

TEST(TiledMatrix, UniformTiling) {
    TiledMatrix<double> A(10, 7, 4);
    EXPECT_EQ(A.m(), 10);
    EXPECT_EQ(A.n(), 7);
    EXPECT_EQ(A.mt(), 3);
    EXPECT_EQ(A.nt(), 2);
    EXPECT_EQ(A.tile_mb(0), 4);
    EXPECT_EQ(A.tile_mb(2), 2);
    EXPECT_EQ(A.tile_nb(1), 3);
}

TEST(TiledMatrix, ExplicitTiling) {
    TiledMatrix<double> A({3, 5, 2}, {4, 4});
    EXPECT_EQ(A.m(), 10);
    EXPECT_EQ(A.n(), 8);
    EXPECT_EQ(A.tile_mb(1), 5);
}

TEST(TiledMatrix, ZeroInitialized) {
    TiledMatrix<double> A(6, 6, 4);
    for (int j = 0; j < 6; ++j)
        for (int i = 0; i < 6; ++i)
            EXPECT_EQ(A.at(i, j), 0.0);
}

TEST(TiledMatrix, ElementAccessRoundTrip) {
    TiledMatrix<double> A(9, 11, 4);
    double v = 0;
    for (int j = 0; j < 11; ++j)
        for (int i = 0; i < 9; ++i)
            A.at(i, j) = v++;
    v = 0;
    for (int j = 0; j < 11; ++j)
        for (int i = 0; i < 9; ++i)
            EXPECT_EQ(A.at(i, j), v++);
}

TEST(TiledMatrix, TileAndAtAgree) {
    TiledMatrix<double> A(10, 10, 3);
    A.at(4, 7) = 3.5;  // tile (1, 2), local (1, 1)
    EXPECT_EQ(A.tile(1, 2)(1, 1), 3.5);
}

TEST(TiledMatrix, SubViewSharesStorage) {
    TiledMatrix<double> A(8, 8, 4);
    auto S = A.sub(1, 1, 1, 1);
    S.at(0, 0) = 9.0;
    EXPECT_EQ(A.at(4, 4), 9.0);
    EXPECT_EQ(S.m(), 4);
}

TEST(TiledMatrix, NestedSubViews) {
    TiledMatrix<double> A(12, 12, 3);
    auto S = A.sub(1, 1, 3, 3);
    auto SS = S.sub(1, 1, 1, 1);
    SS.at(0, 0) = 2.0;
    EXPECT_EQ(A.at(6, 6), 2.0);
}

TEST(TiledMatrix, BlockCyclicOwnership) {
    TiledMatrix<double> A(16, 16, 4, Grid{2, 2});
    EXPECT_EQ(A.owner_rank(0, 0), 0);
    EXPECT_EQ(A.owner_rank(0, 1), 1);
    EXPECT_EQ(A.owner_rank(1, 0), 2);
    EXPECT_EQ(A.owner_rank(1, 1), 3);
    EXPECT_EQ(A.owner_rank(2, 2), 0);  // cyclic wrap
}

TEST(TiledMatrix, SubViewKeepsOwnership) {
    TiledMatrix<double> A(16, 16, 4, Grid{2, 2});
    auto S = A.sub(1, 1, 2, 2);
    EXPECT_EQ(S.owner_rank(0, 0), A.owner_rank(1, 1));
}

TEST(TiledMatrix, CloneIsDeep) {
    TiledMatrix<double> A(6, 6, 4);
    A.at(2, 2) = 5.0;
    auto B = A.clone();
    B.at(2, 2) = 6.0;
    EXPECT_EQ(A.at(2, 2), 5.0);
    EXPECT_EQ(B.at(2, 2), 6.0);
}

TEST(TiledMatrix, TileKeysDistinct) {
    TiledMatrix<double> A(8, 8, 4);
    EXPECT_NE(A.tile_key(0, 0), A.tile_key(0, 1));
    EXPECT_NE(A.tile_key(0, 0), A.tile_key(1, 0));
}

TEST(TiledMatrix, ChopHelper) {
    auto v = TiledMatrix<double>::chop(10, 4);
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], 4);
    EXPECT_EQ(v[2], 2);
    EXPECT_TRUE(TiledMatrix<double>::chop(0, 4).empty());
}

TEST(TiledMatrix, SubViewBoundsChecked) {
    TiledMatrix<double> A(8, 8, 4);
    EXPECT_THROW(A.sub(0, 0, 3, 1), Error);
}
