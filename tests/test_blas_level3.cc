// Tile-level herk / trsm / trmm kernels vs dense references.

#include <gtest/gtest.h>

#include "blas/gemm.hh"
#include "blas/level3.hh"
#include "ref/dense.hh"
#include "test_util.hh"

using namespace tbp;

template <typename T>
class BlasLevel3 : public ::testing::Test {};
TYPED_TEST_SUITE(BlasLevel3, test::AllTypes);

namespace {

template <typename T>
Tile<T> as_tile(ref::Dense<T>& D) {
    return Tile<T>(D.data(), static_cast<int>(D.m()), static_cast<int>(D.n()),
                   static_cast<int>(D.m()));
}

/// Copy only the `uplo` triangle, mirror-conjugate the other (to compare a
/// herk result against a full dense product).
template <typename T>
void symmetrize_from(Uplo uplo, ref::Dense<T>& C) {
    auto const n = C.n();
    for (std::int64_t j = 0; j < n; ++j)
        for (std::int64_t i = j + 1; i < n; ++i) {
            if (uplo == Uplo::Lower)
                C(j, i) = conj_val(C(i, j));
            else
                C(i, j) = conj_val(C(j, i));
        }
}

template <typename T>
void check_herk(Uplo uplo, Op op) {
    int const n = 9, k = 6;
    auto A = (op == Op::NoTrans) ? ref::random_dense<T>(n, k, 1)
                                 : ref::random_dense<T>(k, n, 1);
    // Hermitian C with real diagonal.
    auto C0 = ref::random_dense<T>(n, n, 2);
    ref::Dense<T> C(n, n);
    for (int j = 0; j < n; ++j)
        for (int i = 0; i < n; ++i)
            C(i, j) = C0(i, j) + conj_val(C0(j, i));

    auto Cref = C;
    real_t<T> const alpha = 2, beta = -1;
    auto P = (op == Op::NoTrans)
                 ? ref::gemm(Op::NoTrans, Op::ConjTrans, from_real<T>(alpha), A, A)
                 : ref::gemm(Op::ConjTrans, Op::NoTrans, from_real<T>(alpha), A, A);
    for (int j = 0; j < n; ++j)
        for (int i = 0; i < n; ++i)
            Cref(i, j) = P(i, j) + from_real<T>(beta) * Cref(i, j);

    blas::herk(uplo, op, alpha, as_tile(A), beta, as_tile(C));
    symmetrize_from(uplo, C);
    EXPECT_LE(ref::diff_fro(C, Cref), test::tol<T>(100) * (1 + ref::norm_fro(Cref)));
}

template <typename T>
void check_trsm(Side side, Uplo uplo, Op op, Diag diag) {
    int const m = 8, n = 5;
    int const na = (side == Side::Left) ? m : n;
    // Well-conditioned triangular A: dominant diagonal.
    auto A = ref::random_dense<T>(na, na, 3);
    for (int i = 0; i < na; ++i)
        A(i, i) = A(i, i) + from_real<T>(real_t<T>(4));
    auto B = ref::random_dense<T>(m, n, 4);
    auto X = B;

    T const alpha = from_real<T>(real_t<T>(1.5));
    blas::trsm(side, uplo, op, diag, alpha, as_tile(A), as_tile(X));

    // Verify op(tri(A)) X == alpha B (or X op(tri(A))).
    ref::Dense<T> Atri(na, na);
    for (int j = 0; j < na; ++j)
        for (int i = 0; i < na; ++i) {
            bool const in_tri = (uplo == Uplo::Lower) ? (i >= j) : (i <= j);
            Atri(i, j) = in_tri ? A(i, j) : T(0);
            if (i == j && diag == Diag::Unit)
                Atri(i, j) = T(1);
        }
    auto P = (side == Side::Left) ? ref::gemm(op, Op::NoTrans, T(1), Atri, X)
                                  : ref::gemm(Op::NoTrans, op, T(1), X, Atri);
    ref::Dense<T> aB(m, n);
    for (int j = 0; j < n; ++j)
        for (int i = 0; i < m; ++i)
            aB(i, j) = alpha * B(i, j);
    EXPECT_LE(ref::diff_fro(P, aB), test::tol<T>(500) * (1 + ref::norm_fro(aB)));
}

}  // namespace

TYPED_TEST(BlasLevel3, HerkLowerNoTrans) { check_herk<TypeParam>(Uplo::Lower, Op::NoTrans); }
TYPED_TEST(BlasLevel3, HerkUpperNoTrans) { check_herk<TypeParam>(Uplo::Upper, Op::NoTrans); }
TYPED_TEST(BlasLevel3, HerkLowerConjTrans) { check_herk<TypeParam>(Uplo::Lower, Op::ConjTrans); }
TYPED_TEST(BlasLevel3, HerkUpperConjTrans) { check_herk<TypeParam>(Uplo::Upper, Op::ConjTrans); }

TYPED_TEST(BlasLevel3, TrsmLeftLowerNoTrans) {
    check_trsm<TypeParam>(Side::Left, Uplo::Lower, Op::NoTrans, Diag::NonUnit);
}
TYPED_TEST(BlasLevel3, TrsmLeftLowerConjTrans) {
    check_trsm<TypeParam>(Side::Left, Uplo::Lower, Op::ConjTrans, Diag::NonUnit);
}
TYPED_TEST(BlasLevel3, TrsmLeftUpperNoTrans) {
    check_trsm<TypeParam>(Side::Left, Uplo::Upper, Op::NoTrans, Diag::NonUnit);
}
TYPED_TEST(BlasLevel3, TrsmLeftUpperConjTrans) {
    check_trsm<TypeParam>(Side::Left, Uplo::Upper, Op::ConjTrans, Diag::NonUnit);
}
TYPED_TEST(BlasLevel3, TrsmRightLowerNoTrans) {
    check_trsm<TypeParam>(Side::Right, Uplo::Lower, Op::NoTrans, Diag::NonUnit);
}
TYPED_TEST(BlasLevel3, TrsmRightLowerConjTrans) {
    check_trsm<TypeParam>(Side::Right, Uplo::Lower, Op::ConjTrans, Diag::NonUnit);
}
TYPED_TEST(BlasLevel3, TrsmRightUpperNoTrans) {
    check_trsm<TypeParam>(Side::Right, Uplo::Upper, Op::NoTrans, Diag::NonUnit);
}
TYPED_TEST(BlasLevel3, TrsmRightUpperConjTrans) {
    check_trsm<TypeParam>(Side::Right, Uplo::Upper, Op::ConjTrans, Diag::NonUnit);
}
TYPED_TEST(BlasLevel3, TrsmUnitDiag) {
    check_trsm<TypeParam>(Side::Left, Uplo::Lower, Op::NoTrans, Diag::Unit);
}
TYPED_TEST(BlasLevel3, TrsmTransReal) {
    check_trsm<TypeParam>(Side::Right, Uplo::Upper, Op::Trans, Diag::NonUnit);
}

TYPED_TEST(BlasLevel3, TrmmMatchesDense) {
    using T = TypeParam;
    int const m = 7, n = 4;
    auto A = ref::random_dense<T>(m, m, 6);
    auto B = ref::random_dense<T>(m, n, 7);
    for (auto uplo : {Uplo::Lower, Uplo::Upper}) {
        for (auto op : {Op::NoTrans, Op::ConjTrans}) {
            auto X = B;
            blas::trmm(uplo, op, Diag::NonUnit, T(2), as_tile(A), as_tile(X));
            ref::Dense<T> Atri(m, m);
            for (int j = 0; j < m; ++j)
                for (int i = 0; i < m; ++i)
                    Atri(i, j) = ((uplo == Uplo::Lower) ? i >= j : i <= j)
                                     ? A(i, j) : T(0);
            auto Xref = ref::gemm(op, Op::NoTrans, T(2), Atri, B);
            EXPECT_LE(ref::diff_fro(X, Xref),
                      test::tol<T>(100) * (1 + ref::norm_fro(Xref)));
        }
    }
}

TYPED_TEST(BlasLevel3, TrmmUnitDiag) {
    using T = TypeParam;
    int const m = 5;
    auto A = ref::random_dense<T>(m, m, 8);
    auto B = ref::random_dense<T>(m, 3, 9);
    auto X = B;
    blas::trmm(Uplo::Lower, Op::NoTrans, Diag::Unit, T(1), as_tile(A), as_tile(X));
    ref::Dense<T> Atri(m, m);
    for (int j = 0; j < m; ++j)
        for (int i = 0; i < m; ++i)
            Atri(i, j) = (i > j) ? A(i, j) : (i == j ? T(1) : T(0));
    auto Xref = ref::gemm(Op::NoTrans, Op::NoTrans, T(1), Atri, B);
    EXPECT_LE(ref::diff_fro(X, Xref), test::tol<T>(100) * (1 + ref::norm_fro(Xref)));
}

TYPED_TEST(BlasLevel3, HerkForcesRealDiagonal) {
    using T = TypeParam;
    if constexpr (is_complex_v<T>) {
        auto A = ref::random_dense<T>(5, 3, 10);
        ref::Dense<T> C(5, 5);
        blas::herk(Uplo::Lower, Op::NoTrans, real_t<T>(1), as_tile(A),
                   real_t<T>(0), as_tile(C));
        for (int i = 0; i < 5; ++i)
            EXPECT_EQ(C(i, i).imag(), real_t<T>(0));
    }
}
