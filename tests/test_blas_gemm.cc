// Tile-level gemm/gemv vs the dense reference, across all four scalar types
// and all op combinations.

#include <gtest/gtest.h>

#include "blas/gemm.hh"
#include "ref/dense.hh"
#include "test_util.hh"

using namespace tbp;

template <typename T>
class BlasGemm : public ::testing::Test {};
TYPED_TEST_SUITE(BlasGemm, test::AllTypes);

namespace {

template <typename T>
Tile<T> as_tile(ref::Dense<T>& D) {
    return Tile<T>(D.data(), static_cast<int>(D.m()), static_cast<int>(D.n()),
                   static_cast<int>(D.m()));
}

template <typename T>
void check_gemm(Op opA, Op opB, int m, int n, int k) {
    auto A = (opA == Op::NoTrans) ? ref::random_dense<T>(m, k, 1)
                                  : ref::random_dense<T>(k, m, 1);
    auto B = (opB == Op::NoTrans) ? ref::random_dense<T>(k, n, 2)
                                  : ref::random_dense<T>(n, k, 2);
    auto C = ref::random_dense<T>(m, n, 3);
    auto Cref = C;

    T const alpha = from_real<T>(real_t<T>(1.5));
    T const beta = from_real<T>(real_t<T>(-0.5));

    // Reference: Cref = alpha op(A) op(B) + beta Cref.
    auto P = ref::gemm(opA, opB, alpha, A, B);
    for (int j = 0; j < n; ++j)
        for (int i = 0; i < m; ++i)
            Cref(i, j) = P(i, j) + beta * Cref(i, j);

    blas::gemm(opA, opB, alpha, as_tile(A), as_tile(B), beta, as_tile(C));
    EXPECT_LE(ref::diff_fro(C, Cref), test::tol<T>(100) * (1 + ref::norm_fro(Cref)));
}

}  // namespace

TYPED_TEST(BlasGemm, NoTransNoTrans) {
    check_gemm<TypeParam>(Op::NoTrans, Op::NoTrans, 13, 9, 7);
}

TYPED_TEST(BlasGemm, NoTransConjTrans) {
    check_gemm<TypeParam>(Op::NoTrans, Op::ConjTrans, 13, 9, 7);
}

TYPED_TEST(BlasGemm, ConjTransNoTrans) {
    check_gemm<TypeParam>(Op::ConjTrans, Op::NoTrans, 13, 9, 7);
}

TYPED_TEST(BlasGemm, ConjTransConjTrans) {
    check_gemm<TypeParam>(Op::ConjTrans, Op::ConjTrans, 8, 12, 5);
}

TYPED_TEST(BlasGemm, TransTrans) {
    check_gemm<TypeParam>(Op::Trans, Op::Trans, 6, 6, 6);
}

TYPED_TEST(BlasGemm, BetaZeroOverwritesGarbage) {
    using T = TypeParam;
    auto A = ref::random_dense<T>(4, 3, 1);
    auto B = ref::random_dense<T>(3, 5, 2);
    ref::Dense<T> C(4, 5);
    for (int j = 0; j < 5; ++j)
        for (int i = 0; i < 4; ++i)
            C(i, j) = from_real<T>(real_t<T>(1e30f));  // must be ignored
    blas::gemm(Op::NoTrans, Op::NoTrans, T(1), as_tile(A), as_tile(B), T(0),
               as_tile(C));
    auto Cref = ref::gemm(Op::NoTrans, Op::NoTrans, T(1), A, B);
    EXPECT_LE(ref::diff_fro(C, Cref), test::tol<T>(100) * (1 + ref::norm_fro(Cref)));
}

TYPED_TEST(BlasGemm, AlphaZeroScalesOnly) {
    using T = TypeParam;
    auto A = ref::random_dense<T>(4, 4, 1);
    auto B = ref::random_dense<T>(4, 4, 2);
    auto C = ref::random_dense<T>(4, 4, 3);
    auto Cref = C;
    blas::gemm(Op::NoTrans, Op::NoTrans, T(0), as_tile(A), as_tile(B), T(2),
               as_tile(C));
    for (int j = 0; j < 4; ++j)
        for (int i = 0; i < 4; ++i)
            Cref(i, j) *= T(2);
    EXPECT_LE(ref::diff_fro(C, Cref), test::tol<T>());
}

TYPED_TEST(BlasGemm, GemvMatchesGemm) {
    using T = TypeParam;
    int const m = 9, n = 6;
    auto A = ref::random_dense<T>(m, n, 4);
    auto x = ref::random_dense<T>(n, 1, 5);
    ref::Dense<T> y(m, 1);
    blas::gemv(Op::NoTrans, T(1), as_tile(A), x.data(), T(0), y.data());
    auto yref = ref::gemm(Op::NoTrans, Op::NoTrans, T(1), A, x);
    EXPECT_LE(ref::diff_fro(y, yref), test::tol<T>() * (1 + ref::norm_fro(yref)));

    ref::Dense<T> z(n, 1);
    auto xm = ref::random_dense<T>(m, 1, 6);
    blas::gemv(Op::ConjTrans, T(1), as_tile(A), xm.data(), T(0), z.data());
    auto zref = ref::gemm(Op::ConjTrans, Op::NoTrans, T(1), A, xm);
    EXPECT_LE(ref::diff_fro(z, zref), test::tol<T>() * (1 + ref::norm_fro(zref)));
}

TYPED_TEST(BlasGemm, KZero) {
    using T = TypeParam;
    ref::Dense<T> A(3, 0), B(0, 3);
    auto C = ref::random_dense<T>(3, 3, 7);
    auto Cref = C;
    blas::gemm(Op::NoTrans, Op::NoTrans, T(1),
               Tile<T>(A.data(), 3, 0, 3), Tile<T>(B.data(), 0, 3, 1), T(1),
               as_tile(C));
    EXPECT_LE(ref::diff_fro(C, Cref), test::tol<T>());
}
