// Condition estimators: norm1est (Hager) on explicit operators, trcondest on
// QR factors of generated matrices with known condition numbers.

#include <gtest/gtest.h>

#include <cmath>

#include "cond/condest.hh"
#include "gen/matgen.hh"
#include "linalg/geqrf.hh"
#include "ref/dense.hh"
#include "test_util.hh"

using namespace tbp;

template <typename T>
class Condest : public ::testing::Test {};
TYPED_TEST_SUITE(Condest, test::AllTypes);

TYPED_TEST(Condest, Norm1estDiagonal) {
    using T = TypeParam;
    // B = diag(1..n): ||B||_1 = n; estimate via explicit matvec.
    std::int64_t const n = 10;
    auto apply = [n](std::vector<T>& v) {
        for (std::int64_t i = 0; i < n; ++i)
            v[static_cast<size_t>(i)] *= from_real<T>(static_cast<real_t<T>>(i + 1));
    };
    auto est = cond::norm1est<T>(n, apply, apply);
    EXPECT_NEAR(est, real_t<T>(n), real_t<T>(n) * 0.01);
}

TYPED_TEST(Condest, Norm1estDenseOperator) {
    using T = TypeParam;
    std::int64_t const n = 12;
    auto B = ref::random_dense<T>(n, n, 51);
    auto apply = [&](std::vector<T>& v) {
        std::vector<T> out(static_cast<size_t>(n), T(0));
        for (std::int64_t j = 0; j < n; ++j)
            for (std::int64_t i = 0; i < n; ++i)
                out[static_cast<size_t>(i)] += B(i, j) * v[static_cast<size_t>(j)];
        v = out;
    };
    auto apply_h = [&](std::vector<T>& v) {
        std::vector<T> out(static_cast<size_t>(n), T(0));
        for (std::int64_t j = 0; j < n; ++j)
            for (std::int64_t i = 0; i < n; ++i)
                out[static_cast<size_t>(j)] +=
                    conj_val(B(i, j)) * v[static_cast<size_t>(i)];
        v = out;
    };
    auto est = cond::norm1est<T>(n, apply, apply_h);
    auto exact = ref::norm_one(B);
    // Hager's estimate is a lower bound, usually within a small factor.
    EXPECT_LE(est, exact * (1 + test::tol<T>(100)));
    EXPECT_GE(est, exact * real_t<T>(0.3));
}

TYPED_TEST(Condest, Norm1estSizeOne) {
    using T = TypeParam;
    auto apply = [](std::vector<T>& v) { v[0] *= T(-4); };
    EXPECT_NEAR(cond::norm1est<T>(1, apply, apply), real_t<T>(4), test::tol<T>());
}

TYPED_TEST(Condest, TrcondestRecoversCondition) {
    using T = TypeParam;
    using R = real_t<T>;
    rt::Engine eng(3);
    for (double kappa : {1e1, 1e4}) {
        gen::MatGenOptions opt;
        opt.cond = kappa;
        opt.seed = 52;
        int const n = 24;
        auto A = gen::cond_matrix<T>(eng, n, n, 5, opt);
        auto Tm = la::alloc_qr_t(A);
        la::geqrf(eng, A, Tm);
        eng.wait();
        R const rcond = cond::trcondest(eng, A);
        // rcond approximates 1/cond_1(R); cond_1 within a factor ~n of
        // cond_2 = kappa. Accept two orders of magnitude slack.
        ASSERT_GT(rcond, R(0));
        double const est_cond = 1.0 / static_cast<double>(rcond);
        EXPECT_GT(est_cond, kappa / 100.0) << "kappa " << kappa;
        EXPECT_LT(est_cond, kappa * 100.0) << "kappa " << kappa;
    }
}

TYPED_TEST(Condest, TrcondestIdentity) {
    using T = TypeParam;
    rt::Engine eng(2);
    TiledMatrix<T> A(9, 9, 4);
    for (int i = 0; i < 9; ++i)
        A.at(i, i) = T(1);
    auto rcond = cond::trcondest(eng, A);
    EXPECT_NEAR(rcond, real_t<T>(1), real_t<T>(0.01));
}

TYPED_TEST(Condest, TrcondestSingularReturnsZero) {
    using T = TypeParam;
    rt::Engine eng(2);
    TiledMatrix<T> A(6, 6, 3);
    for (int i = 0; i < 5; ++i)
        A.at(i, i) = T(1);
    // A(5,5) stays zero -> exactly singular R.
    EXPECT_EQ(cond::trcondest(eng, A), real_t<T>(0));
}

TYPED_TEST(Condest, TrcondestRectangularFactor) {
    // trcondest must only look at the top n x n R of a tall factored panel,
    // including when m is not a tile multiple.
    using T = TypeParam;
    rt::Engine eng(3);
    gen::MatGenOptions opt;
    opt.cond = 1e3;
    opt.seed = 53;
    auto A = gen::cond_matrix<T>(eng, 22, 9, 4, opt);
    auto Tm = la::alloc_qr_t(A);
    la::geqrf(eng, A, Tm);
    eng.wait();
    auto rcond = cond::trcondest(eng, A);
    ASSERT_GT(rcond, real_t<T>(0));
    double const est_cond = 1.0 / static_cast<double>(rcond);
    EXPECT_GT(est_cond, 10.0);
    EXPECT_LT(est_cond, 1e6);
}
