// Comm/compute integration: the pipelined (nonblocking) staging paths and
// the task-runtime communication tasks must reproduce the legacy blocking
// oracle bit-for-bit — same kernels, same values, same combine order — for
// every scalar type and a sweep of process grids, while the traffic
// counters stay leak-free.

#include <gtest/gtest.h>

#include <complex>
#include <cstring>

#include "comm/comm_task.hh"
#include "comm/dist_qdwh.hh"
#include "comm/dist_qr.hh"
#include "gen/matgen.hh"
#include "perf/sched_report.hh"
#include "ref/dense.hh"
#include "test_util.hh"

using namespace tbp;

namespace {

std::vector<std::pair<int, int>> const kGrids = {
    {1, 1}, {2, 1}, {3, 1}, {2, 2}, {4, 2}};  // P = 1, 2, 3, 4, 8

comm::coll::Config engine_cfg() { return comm::coll::Config{}; }

comm::coll::Config legacy_cfg() {
    comm::coll::Config cfg;
    cfg.legacy = true;
    return cfg;
}

/// Byte-exact comparison that treats NaN == NaN (there are none in these
/// runs, but equality on floats is the point of the test).
template <typename T>
bool bits_equal(std::vector<T> const& a, std::vector<T> const& b) {
    return a.size() == b.size()
           && (a.empty()
               || std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0);
}

/// Full distributed QDWH under `cfg`; returns rank 0's gathered U.
template <typename T>
std::vector<T> run_dqdwh(ref::Dense<T> const& Ad, int nb, Grid g,
                         comm::coll::Config cfg, double l0) {
    comm::World world(g.size());
    world.set_coll_config(cfg);
    std::vector<T> out;
    world.run([&](comm::Communicator& c) {
        comm::DistMatrix<T> A(c, Ad.m(), Ad.n(), nb, g);
        A.fill([&](std::int64_t i, std::int64_t j) { return Ad(i, j); });
        comm::dist_qdwh(c, g, A, l0);
        auto d = comm::dist_gather(c, A);
        if (c.rank() == 0)
            out = d;
    });
    EXPECT_EQ(world.leaked_messages(), 0u);
    return out;
}

/// dist_geqrf + dist_ungqr under `cfg`; returns rank 0's gathered Q.
template <typename T>
std::vector<T> run_qr(ref::Dense<T> const& Ad, int nb, Grid g,
                      comm::coll::Config cfg) {
    comm::World world(g.size());
    world.set_coll_config(cfg);
    std::vector<T> out;
    world.run([&](comm::Communicator& c) {
        comm::DistMatrix<T> A(c, Ad.m(), Ad.n(), nb, g);
        comm::DistMatrix<T> Tm(c, static_cast<std::int64_t>(A.mt()) * nb,
                               Ad.n(), nb, g);
        comm::DistMatrix<T> Q(c, Ad.m(), Ad.n(), nb, g);
        A.fill([&](std::int64_t i, std::int64_t j) { return Ad(i, j); });
        comm::dist_geqrf(c, g, A, Tm);
        comm::dist_ungqr(c, g, A, Tm, Q);
        auto d = comm::dist_gather(c, Q);
        if (c.rank() == 0)
            out = d;
    });
    EXPECT_EQ(world.leaked_messages(), 0u);
    return out;
}

template <typename T>
void check_qdwh_engine_vs_legacy() {
    int const n = 16, nb = 4;
    gen::MatGenOptions opt;
    opt.cond = 1e4;  // engages the QR branch before the Cholesky branch
    opt.seed = 611;
    rt::Engine eng(2);
    auto Ad = ref::to_dense(gen::cond_matrix<T>(eng, n, n, nb, opt));
    double const l0 = 1.0 / opt.cond;

    for (auto [p, q] : kGrids) {
        Grid g{p, q};
        auto legacy = run_dqdwh(Ad, nb, g, legacy_cfg(), l0);
        auto engine = run_dqdwh(Ad, nb, g, engine_cfg(), l0);
        EXPECT_TRUE(bits_equal(legacy, engine)) << p << "x" << q;
    }
}

}  // namespace

TEST(CommEngine, QdwhBitIdenticalFloat) {
    check_qdwh_engine_vs_legacy<float>();
}
TEST(CommEngine, QdwhBitIdenticalDouble) {
    check_qdwh_engine_vs_legacy<double>();
}
TEST(CommEngine, QdwhBitIdenticalComplexFloat) {
    check_qdwh_engine_vs_legacy<std::complex<float>>();
}
TEST(CommEngine, QdwhBitIdenticalComplexDouble) {
    check_qdwh_engine_vs_legacy<std::complex<double>>();
}

TEST(CommEngine, QrPipelineBitIdentical) {
    using T = double;
    int const m = 24, n = 16, nb = 4;
    auto Ad = ref::random_dense<T>(m, n, 612);
    for (auto [p, q] : kGrids) {
        Grid g{p, q};
        auto legacy = run_qr(Ad, nb, g, legacy_cfg());
        auto engine = run_qr(Ad, nb, g, engine_cfg());
        EXPECT_TRUE(bits_equal(legacy, engine)) << p << "x" << q;
    }
}

TEST(CommEngine, GemmTasksMatchSpmdBitwise) {
    // The engine-task SUMMA (sends/recvs/gemms as dataflow tasks) must
    // reproduce the blocking SPMD dist_gemm exactly — same accumulation
    // order — at every worker count, including the sequential engine.
    using T = double;
    int const m = 18, k = 14, n = 11, nb = 4;
    auto Da = ref::random_dense<T>(m, k, 613);
    auto Db = ref::random_dense<T>(k, n, 614);
    auto Dc = ref::random_dense<T>(m, n, 615);

    for (auto [p, q] : {std::pair{2, 2}, {3, 1}}) {
        Grid g{p, q};

        std::vector<T> ref_c;
        {
            comm::World world(g.size());
            world.run([&](comm::Communicator& c) {
                comm::DistMatrix<T> A(c, m, k, nb, g), B(c, k, n, nb, g),
                    C(c, m, n, nb, g);
                A.fill([&](std::int64_t i, std::int64_t j) { return Da(i, j); });
                B.fill([&](std::int64_t i, std::int64_t j) { return Db(i, j); });
                C.fill([&](std::int64_t i, std::int64_t j) { return Dc(i, j); });
                comm::dist_gemm(c, g, T(2), A, B, T(-1), C);
                auto d = comm::dist_gather(c, C);
                if (c.rank() == 0)
                    ref_c = d;
            });
        }

        struct EngCase {
            int workers;
            rt::Mode mode;
        };
        for (auto ec : {EngCase{1, rt::Mode::Sequential},
                        EngCase{1, rt::Mode::TaskDataflow},
                        EngCase{2, rt::Mode::TaskDataflow}}) {
            comm::World world(g.size());
            std::vector<T> task_c;
            world.run([&](comm::Communicator& c) {
                rt::Engine eng(ec.workers, ec.mode);
                comm::DistMatrix<T> A(c, m, k, nb, g), B(c, k, n, nb, g),
                    C(c, m, n, nb, g);
                A.fill([&](std::int64_t i, std::int64_t j) { return Da(i, j); });
                B.fill([&](std::int64_t i, std::int64_t j) { return Db(i, j); });
                C.fill([&](std::int64_t i, std::int64_t j) { return Dc(i, j); });
                comm::dist_gemm_tasks(c, eng, g, T(2), A, B, T(-1), C);
                auto d = comm::dist_gather(c, C);
                if (c.rank() == 0)
                    task_c = d;
            });
            EXPECT_EQ(world.leaked_messages(), 0u);
            EXPECT_TRUE(bits_equal(ref_c, task_c))
                << p << "x" << q << " workers=" << ec.workers;
        }
    }
}

TEST(CommEngine, DistGatherMatchesFill) {
    // dist_gather's allgatherv-based replication must reproduce the source
    // element function exactly on every rank, for awkward tile remainders.
    using T = double;
    int const m = 19, n = 13, nb = 4;
    auto D = ref::random_dense<T>(m, n, 616);
    Grid g{3, 2};
    comm::World world(6);
    std::vector<std::vector<T>> per_rank(6);
    world.run([&](comm::Communicator& c) {
        comm::DistMatrix<T> A(c, m, n, nb, g);
        A.fill([&](std::int64_t i, std::int64_t j) { return D(i, j); });
        per_rank[static_cast<size_t>(c.rank())] = comm::dist_gather(c, A);
    });
    for (int r = 0; r < 6; ++r) {
        auto const& d = per_rank[static_cast<size_t>(r)];
        ASSERT_EQ(d.size(), static_cast<size_t>(m) * n);
        for (int j = 0; j < n; ++j)
            for (int i = 0; i < m; ++i)
                ASSERT_EQ(d[static_cast<size_t>(i + j * m)], D(i, j))
                    << r << " " << i << "," << j;
    }
}

TEST(CommEngine, CommReportAggregates) {
    comm::World world(4);
    world.run([&](comm::Communicator& c) {
        std::vector<double> v(8, c.rank() + 1.0);
        c.allreduce_sum(v);
        c.barrier();
    });
    auto rep = perf::comm_report(world);
    EXPECT_EQ(rep.per_rank.size(), 4u);
    EXPECT_EQ(rep.total.sends, rep.total.recvs);
    EXPECT_GT(rep.total.sends, 0u);
    EXPECT_GE(rep.total.collectives, 8u);  // allreduce + barrier per rank
    EXPECT_EQ(rep.leaked, 0u);
    EXPECT_FALSE(rep.format().empty());
}
