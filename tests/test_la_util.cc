// Tiled element-wise operations and norms, including equivalence across all
// three execution modes.

#include <gtest/gtest.h>

#include "linalg/util.hh"
#include "ref/dense.hh"
#include "test_util.hh"

using namespace tbp;

template <typename T>
class LaUtil : public ::testing::Test {};
TYPED_TEST_SUITE(LaUtil, test::AllTypes);

TYPED_TEST(LaUtil, CopyAndScale) {
    using T = TypeParam;
    rt::Engine eng(3);
    auto D = ref::random_dense<T>(10, 7, 1);
    auto A = ref::to_tiled(D, 4);
    TiledMatrix<T> B(10, 7, 4);
    la::copy(eng, A, B);
    la::scale(eng, T(2), B);
    eng.wait();
    for (int j = 0; j < 7; ++j)
        for (int i = 0; i < 10; ++i)
            EXPECT_EQ(B.at(i, j), T(2) * D(i, j));
}

TYPED_TEST(LaUtil, Add) {
    using T = TypeParam;
    rt::Engine eng(3);
    auto Da = ref::random_dense<T>(9, 9, 2);
    auto Db = ref::random_dense<T>(9, 9, 3);
    auto A = ref::to_tiled(Da, 4);
    auto B = ref::to_tiled(Db, 4);
    la::add(eng, T(2), A, T(-1), B);
    eng.wait();
    for (int j = 0; j < 9; ++j)
        for (int i = 0; i < 9; ++i)
            EXPECT_NEAR(std::abs(B.at(i, j) - (T(2) * Da(i, j) - Db(i, j))),
                        real_t<T>(0), test::tol<T>());
}

TYPED_TEST(LaUtil, SetIdentity) {
    using T = TypeParam;
    rt::Engine eng(2);
    TiledMatrix<T> A(11, 11, 4);
    la::set_identity(eng, A);
    eng.wait();
    for (int j = 0; j < 11; ++j)
        for (int i = 0; i < 11; ++i)
            EXPECT_EQ(A.at(i, j), (i == j) ? T(1) : T(0));
}

TYPED_TEST(LaUtil, TransposeCopy) {
    using T = TypeParam;
    rt::Engine eng(2);
    auto D = ref::random_dense<T>(8, 5, 4);
    auto A = ref::to_tiled(D, 3);
    TiledMatrix<T> B(5, 8, 3);
    la::transpose_copy(eng, Op::ConjTrans, A, B);
    eng.wait();
    for (int j = 0; j < 5; ++j)
        for (int i = 0; i < 8; ++i)
            EXPECT_EQ(B.at(j, i), conj_val(D(i, j)));
}

TYPED_TEST(LaUtil, NormsMatchDense) {
    using T = TypeParam;
    rt::Engine eng(3);
    auto D = ref::random_dense<T>(13, 9, 5);
    auto A = ref::to_tiled(D, 4);

    EXPECT_NEAR(la::norm(eng, Norm::One, A), ref::norm_one(D),
                test::tol<T>(50) * (1 + ref::norm_one(D)));
    EXPECT_NEAR(la::norm(eng, Norm::Fro, A), ref::norm_fro(D),
                test::tol<T>(50) * (1 + ref::norm_fro(D)));
    EXPECT_NEAR(la::norm(eng, Norm::Max, A), ref::norm_max(D), test::tol<T>(10));

    // Inf norm vs manual row sums.
    real_t<T> inf(0);
    for (int i = 0; i < 13; ++i) {
        real_t<T> s(0);
        for (int j = 0; j < 9; ++j)
            s += std::abs(D(i, j));
        inf = std::max(inf, s);
    }
    EXPECT_NEAR(la::norm(eng, Norm::Inf, A), inf, test::tol<T>(50) * (1 + inf));
}

TYPED_TEST(LaUtil, ColAbsSums) {
    using T = TypeParam;
    rt::Engine eng(2);
    auto D = ref::random_dense<T>(7, 6, 6);
    auto A = ref::to_tiled(D, 3);
    auto sums = la::col_abs_sums(eng, A);
    ASSERT_EQ(sums.size(), 6u);
    for (int j = 0; j < 6; ++j) {
        real_t<T> s(0);
        for (int i = 0; i < 7; ++i)
            s += std::abs(D(i, j));
        EXPECT_NEAR(sums[static_cast<size_t>(j)], s, test::tol<T>(50) * (1 + s));
    }
}

TYPED_TEST(LaUtil, ModesAgree) {
    using T = TypeParam;
    auto D = ref::random_dense<T>(12, 12, 7);
    std::vector<real_t<T>> fro;
    for (auto mode : {rt::Mode::Sequential, rt::Mode::TaskDataflow,
                      rt::Mode::ForkJoin}) {
        rt::Engine eng(3, mode);
        auto A = ref::to_tiled(D, 5);
        la::scale(eng, T(3), A);
        TiledMatrix<T> B(12, 12, 5);
        la::copy(eng, A, B);
        la::add(eng, T(1), A, T(1), B);
        fro.push_back(la::norm(eng, Norm::Fro, B));
    }
    EXPECT_EQ(fro[0], fro[1]);
    EXPECT_EQ(fro[0], fro[2]);
}

TYPED_TEST(LaUtil, SubViewOperations) {
    using T = TypeParam;
    rt::Engine eng(2);
    TiledMatrix<T> A(8, 8, 4);
    la::set(eng, T(1), T(1), A);
    auto S = A.sub(0, 0, 1, 2);  // top 4x8 strip
    la::scale(eng, T(5), S);
    eng.wait();
    EXPECT_EQ(A.at(0, 0), T(5));
    EXPECT_EQ(A.at(4, 0), T(1));
}
