// Shared helpers for the TBP test suite.

#pragma once

#include <gtest/gtest.h>

#include <complex>
#include <limits>

#include "common/types.hh"
#include "matrix/tiled_matrix.hh"
#include "ref/dense.hh"

namespace tbp::test {

using AllTypes = ::testing::Types<float, double, std::complex<float>,
                                  std::complex<double>>;
using RealTypes = ::testing::Types<float, double>;

/// Error tolerance: factor * machine epsilon of the real type.
template <typename T>
real_t<T> tol(double factor = 100.0) {
    return static_cast<real_t<T>>(factor)
           * std::numeric_limits<real_t<T>>::epsilon();
}

/// Condition number suitable for "ill-conditioned" tests in each precision:
/// near 1/eps, the paper's kappa = 1e16 regime for double.
template <typename T>
double ill_cond() {
    return std::is_same_v<real_t<T>, float> ? 1e7 : 1e16;
}

/// Fill a dense matrix into an existing tiled matrix (tilings arbitrary).
template <typename T>
void dense_to_tiled(ref::Dense<T> const& D, TiledMatrix<T>& A) {
    ASSERT_EQ(D.m(), A.m());
    ASSERT_EQ(D.n(), A.n());
    for (std::int64_t j = 0; j < D.n(); ++j)
        for (std::int64_t i = 0; i < D.m(); ++i)
            A.at(i, j) = D(i, j);
}

}  // namespace tbp::test
