// Dense reference substrate: Jacobi EVD/SVD, LU, gecondest.

#include <gtest/gtest.h>

#include "gen/matgen.hh"
#include "ref/jacobi.hh"
#include "ref/lu.hh"
#include "test_util.hh"

using namespace tbp;

template <typename T>
class Ref : public ::testing::Test {};
TYPED_TEST_SUITE(Ref, test::AllTypes);

namespace {

template <typename T>
ref::Dense<T> make_hermitian(int n, std::uint64_t seed) {
    auto B = ref::random_dense<T>(n, n, seed);
    ref::Dense<T> A(n, n);
    for (int j = 0; j < n; ++j)
        for (int i = 0; i < n; ++i)
            A(i, j) = (B(i, j) + conj_val(B(j, i))) * from_real<T>(real_t<T>(0.5));
    return A;
}

}  // namespace

TYPED_TEST(Ref, JacobiEigDecomposes) {
    using T = TypeParam;
    int const n = 14;
    auto A = make_hermitian<T>(n, 91);
    auto A0 = A;
    std::vector<real_t<T>> w;
    ref::Dense<T> V;
    ref::jacobi_eig(A, w, V);

    // V unitary; A0 V = V diag(w).
    EXPECT_LE(ref::orthogonality(V), test::tol<T>(500) * n);
    auto AV = ref::gemm(Op::NoTrans, Op::NoTrans, T(1), A0, V);
    ref::Dense<T> VD(n, n);
    for (int j = 0; j < n; ++j)
        for (int i = 0; i < n; ++i)
            VD(i, j) = V(i, j) * from_real<T>(w[static_cast<size_t>(j)]);
    EXPECT_LE(ref::diff_fro(AV, VD), test::tol<T>(2000) * (1 + ref::norm_fro(A0)));

    // Ascending order.
    for (size_t i = 1; i < w.size(); ++i)
        EXPECT_GE(w[i], w[i - 1]);
}

TYPED_TEST(Ref, JacobiEigDiagonalInput) {
    using T = TypeParam;
    int const n = 6;
    ref::Dense<T> A(n, n);
    for (int i = 0; i < n; ++i)
        A(i, i) = from_real<T>(static_cast<real_t<T>>(n - i));
    std::vector<real_t<T>> w;
    ref::Dense<T> V;
    ref::jacobi_eig(A, w, V);
    for (int i = 0; i < n; ++i)
        EXPECT_NEAR(w[static_cast<size_t>(i)], real_t<T>(i + 1), test::tol<T>(10));
}

TYPED_TEST(Ref, JacobiSvdDecomposes) {
    using T = TypeParam;
    int const m = 15, n = 9;
    auto A = ref::random_dense<T>(m, n, 92);
    ref::Dense<T> U, V;
    std::vector<real_t<T>> s;
    ref::jacobi_svd(A, U, s, V);

    EXPECT_LE(ref::orthogonality(U), test::tol<T>(500) * m);
    EXPECT_LE(ref::orthogonality(V), test::tol<T>(500) * n);
    for (size_t i = 1; i < s.size(); ++i)
        EXPECT_LE(s[i], s[i - 1] * (1 + test::tol<T>(10)));

    // U diag(s) V^H == A.
    auto Us = U;
    for (int j = 0; j < n; ++j)
        for (int i = 0; i < m; ++i)
            Us(i, j) = U(i, j) * from_real<T>(s[static_cast<size_t>(j)]);
    auto R = ref::gemm(Op::NoTrans, Op::ConjTrans, T(1), Us, V);
    EXPECT_LE(ref::diff_fro(R, A), test::tol<T>(2000) * (1 + ref::norm_fro(A)));
}

TYPED_TEST(Ref, JacobiSvdKnownValues) {
    using T = TypeParam;
    rt::Engine eng(2);
    gen::MatGenOptions opt;
    opt.cond = 1000;
    opt.seed = 93;
    int const n = 12;
    auto At = gen::cond_matrix<T>(eng, n, n, 4, opt);
    ref::Dense<T> U, V;
    std::vector<real_t<T>> s;
    ref::jacobi_svd(ref::to_dense(At), U, s, V);
    auto expected = gen::sigma_values<real_t<T>>(n, opt);
    for (int i = 0; i < n; ++i)
        EXPECT_NEAR(s[static_cast<size_t>(i)], expected[static_cast<size_t>(i)],
                    test::tol<T>(2000) * (1 + expected[static_cast<size_t>(i)]));
}

TYPED_TEST(Ref, GetrfSolves) {
    using T = TypeParam;
    int const n = 13;
    auto A = ref::random_dense<T>(n, n, 94);
    auto LU = A;
    std::vector<std::int64_t> ipiv;
    ref::getrf(LU, ipiv);

    auto x = ref::random_dense<T>(n, 1, 95);
    std::vector<T> b(static_cast<size_t>(n));
    // b = A x
    for (int i = 0; i < n; ++i) {
        T acc(0);
        for (int j = 0; j < n; ++j)
            acc += A(i, j) * x(j, 0);
        b[static_cast<size_t>(i)] = acc;
    }
    ref::getrs(Op::NoTrans, LU, ipiv, b);
    real_t<T> err(0);
    for (int i = 0; i < n; ++i)
        err += abs_sq(b[static_cast<size_t>(i)] - x(i, 0));
    EXPECT_LE(std::sqrt(err), test::tol<T>(5000) * (1 + ref::norm_fro(x)));
}

TYPED_TEST(Ref, GetrsConjTrans) {
    using T = TypeParam;
    int const n = 9;
    auto A = ref::random_dense<T>(n, n, 96);
    auto LU = A;
    std::vector<std::int64_t> ipiv;
    ref::getrf(LU, ipiv);

    auto x = ref::random_dense<T>(n, 1, 97);
    std::vector<T> b(static_cast<size_t>(n));
    // b = A^H x
    for (int i = 0; i < n; ++i) {
        T acc(0);
        for (int j = 0; j < n; ++j)
            acc += conj_val(A(j, i)) * x(j, 0);
        b[static_cast<size_t>(i)] = acc;
    }
    ref::getrs(Op::ConjTrans, LU, ipiv, b);
    real_t<T> err(0);
    for (int i = 0; i < n; ++i)
        err += abs_sq(b[static_cast<size_t>(i)] - x(i, 0));
    EXPECT_LE(std::sqrt(err), test::tol<T>(5000) * (1 + ref::norm_fro(x)));
}

TYPED_TEST(Ref, InverseRoundTrip) {
    using T = TypeParam;
    int const n = 10;
    auto A = ref::random_dense<T>(n, n, 98);
    for (int i = 0; i < n; ++i)
        A(i, i) += from_real<T>(real_t<T>(4));
    auto Inv = ref::inverse(A);
    auto P = ref::gemm(Op::NoTrans, Op::NoTrans, T(1), A, Inv);
    EXPECT_LE(ref::diff_fro(P, ref::identity<T>(n)), test::tol<T>(5000) * n);
}

TYPED_TEST(Ref, SingularGetrfThrows) {
    using T = TypeParam;
    ref::Dense<T> A(4, 4);  // zero matrix
    std::vector<std::int64_t> ipiv;
    EXPECT_THROW(ref::getrf(A, ipiv), Error);
}

TYPED_TEST(Ref, GecondestTracksCondition) {
    using T = TypeParam;
    rt::Engine eng(2);
    for (double kappa : {1e1, 1e5}) {
        gen::MatGenOptions opt;
        opt.cond = kappa;
        opt.seed = 99;
        int const n = 16;
        auto At = gen::cond_matrix<T>(eng, n, n, 4, opt);
        auto rcond = ref::gecondest(ref::to_dense(At));
        ASSERT_GT(rcond, real_t<T>(0));
        double const est = 1.0 / static_cast<double>(rcond);
        EXPECT_GT(est, kappa / 100.0);
        EXPECT_LT(est, kappa * 100.0);
    }
}

TYPED_TEST(Ref, GecondestSingular) {
    using T = TypeParam;
    ref::Dense<T> A(5, 5);
    EXPECT_EQ(ref::gecondest(A), real_t<T>(0));
}
