// Future-work extensions: mixed-precision QDWH and partial-spectrum
// subspace extraction.

#include <gtest/gtest.h>

#include <cmath>

#include "core/qdwh_mixed.hh"
#include "core/subspace.hh"
#include "gen/matgen.hh"
#include "ref/jacobi.hh"
#include "test_util.hh"

using namespace tbp;

TEST(QdwhMixed, ReachesDoubleAccuracy) {
    rt::Engine eng(3);
    gen::MatGenOptions opt;
    opt.cond = 1e6;  // within float's capability for the low-precision stage
    opt.seed = 161;
    int const n = 40, nb = 8;
    auto A = gen::cond_matrix<double>(eng, n, n, nb, opt);
    auto Ad = ref::to_dense(A);
    TiledMatrix<double> H(n, n, nb);
    auto info = qdwh_mixed(eng, A, H);

    auto U = ref::to_dense(A);
    double const orth = ref::orthogonality(U) / std::sqrt(static_cast<double>(n));
    EXPECT_LE(orth, 1e-14);  // double-precision orthogonality
    auto UH = ref::gemm(Op::NoTrans, Op::NoTrans, 1.0, U, ref::to_dense(H));
    // Backward error is bounded by the float stage's backward stability
    // (eps32-level), not eps64 — see the contract in qdwh_mixed.hh.
    EXPECT_LE(ref::diff_fro(UH, Ad) / ref::norm_fro(Ad), 50 * 1.2e-7);

    // The float stage leaves ~1e-6 orthogonality error; refinement must
    // actually engage and clean it up.
    EXPECT_GT(info.orth_before, 1e-9);
    EXPECT_LT(info.orth_after, 1e-12);
    EXPECT_GE(info.refine_steps, 1);
    EXPECT_LE(info.refine_steps, 3);  // quadratic from 1e-6
}

TEST(QdwhMixed, MatchesFullDoubleResult) {
    gen::MatGenOptions opt;
    opt.cond = 1e4;  // forward error scales as eps32 * kappa
    opt.seed = 162;
    int const n = 32, nb = 8;
    ref::Dense<double> u_mixed, u_double;
    {
        rt::Engine eng(3);
        auto A = gen::cond_matrix<double>(eng, n, n, nb, opt);
        TiledMatrix<double> H(n, n, nb);
        qdwh_mixed(eng, A, H);
        u_mixed = ref::to_dense(A);
    }
    {
        rt::Engine eng(3);
        auto A = gen::cond_matrix<double>(eng, n, n, nb, opt);
        TiledMatrix<double> H(n, n, nb);
        qdwh(eng, A, H);
        u_double = ref::to_dense(A);
    }
    // eps32 * kappa = 1.2e-7 * 1e4 ~ 1e-3 worst case; typically well below.
    EXPECT_LE(ref::diff_fro(u_mixed, u_double), 1.2e-7 * 1e4);
}

TEST(QdwhMixed, Rectangular) {
    rt::Engine eng(3);
    gen::MatGenOptions opt;
    opt.cond = 1e3;
    opt.seed = 163;
    int const m = 50, n = 20, nb = 8;
    auto A = gen::cond_matrix<double>(eng, m, n, nb, opt);
    TiledMatrix<double> H(n, n, nb);
    qdwh_mixed(eng, A, H);
    auto U = ref::to_dense(A);
    EXPECT_LE(ref::orthogonality(U) / std::sqrt(static_cast<double>(n)), 1e-14);
}

namespace {

/// Hermitian matrix with prescribed eigenvalues (ascending) via a random
/// orthogonal similarity.
ref::Dense<double> hermitian_with_spectrum(rt::Engine& eng,
                                           std::vector<double> const& lam,
                                           int nb, std::uint64_t seed) {
    int const n = static_cast<int>(lam.size());
    auto Q = gen::random_orthonormal<double>(eng, n, n, nb, seed);
    auto Qd = ref::to_dense(Q);
    auto QL = Qd;
    for (int j = 0; j < n; ++j)
        for (int i = 0; i < n; ++i)
            QL(i, j) = Qd(i, j) * lam[static_cast<size_t>(j)];
    return ref::gemm(Op::NoTrans, Op::ConjTrans, 1.0, QL, Qd);
}

}  // namespace

TEST(Subspace, ExtractsDominantInvariantSubspace) {
    rt::Engine eng(3);
    int const n = 36, nb = 8;
    std::vector<double> lam(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        lam[static_cast<size_t>(i)] = (i < 30) ? -1.0 - 0.1 * i : 2.0 + 0.1 * i;
    auto Ad = hermitian_with_spectrum(eng, lam, nb, 171);
    auto A = ref::to_tiled(Ad, nb);

    auto res = qdwh_subspace<double>(eng, A, /*mu=*/0.0);
    EXPECT_EQ(res.dim, 6);  // six eigenvalues above zero

    // Basis is orthonormal and invariant: ||A Q - Q (Q^H A Q)|| small.
    auto Q = ref::to_dense(res.basis);
    EXPECT_LE(ref::orthogonality(Q), 1e-12 * n);
    auto AQ = ref::gemm(Op::NoTrans, Op::NoTrans, 1.0, Ad, Q);
    auto B = ref::gemm(Op::ConjTrans, Op::NoTrans, 1.0, Q, AQ);
    auto QB = ref::gemm(Op::NoTrans, Op::NoTrans, 1.0, Q, B);
    EXPECT_LE(ref::diff_fro(AQ, QB), 1e-10 * (1 + ref::norm_fro(Ad)));
}

TEST(Subspace, SplitInTheMiddle) {
    rt::Engine eng(3);
    int const n = 24, nb = 8;
    std::vector<double> lam(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        lam[static_cast<size_t>(i)] = i - n / 2 + 0.5;  // half below, half above 0
    auto Ad = hermitian_with_spectrum(eng, lam, nb, 172);
    auto A = ref::to_tiled(Ad, nb);
    auto res = qdwh_subspace<double>(eng, A, 0.0);
    EXPECT_EQ(res.dim, n / 2);
    auto Q = ref::to_dense(res.basis);
    EXPECT_LE(ref::orthogonality(Q), 1e-12 * n);
}

TEST(Subspace, AllOnOneSide) {
    rt::Engine eng(3);
    int const n = 16, nb = 8;
    std::vector<double> lam(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        lam[static_cast<size_t>(i)] = 1.0 + i;  // all positive
    auto Ad = hermitian_with_spectrum(eng, lam, nb, 173);
    auto A = ref::to_tiled(Ad, nb);
    auto above = qdwh_subspace<double>(eng, A, 0.0);
    EXPECT_EQ(above.dim, n);
    auto below = qdwh_subspace<double>(eng, A, 100.0);
    EXPECT_EQ(below.dim, 0);
}

TEST(Subspace, EigenvaluesThroughCompression) {
    // Rayleigh-Ritz on the extracted basis reproduces the upper eigenvalues.
    rt::Engine eng(3);
    int const n = 20, nb = 5;
    std::vector<double> lam(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        lam[static_cast<size_t>(i)] = -5.0 + i;  // -5..14, split at 0 -> 14 above?
    auto Ad = hermitian_with_spectrum(eng, lam, nb, 174);
    auto A = ref::to_tiled(Ad, nb);
    auto res = qdwh_subspace<double>(eng, A, 0.5);
    ASSERT_GT(res.dim, 0);

    auto Q = ref::to_dense(res.basis);
    auto AQ = ref::gemm(Op::NoTrans, Op::NoTrans, 1.0, Ad, Q);
    auto B = ref::gemm(Op::ConjTrans, Op::NoTrans, 1.0, Q, AQ);
    std::vector<double> w;
    ref::Dense<double> V;
    ref::jacobi_eig(B, w, V);
    // Eigenvalues of the compression == the lam values above 0.5.
    std::vector<double> expected;
    for (double l : lam)
        if (l > 0.5)
            expected.push_back(l);
    ASSERT_EQ(w.size(), expected.size());
    for (size_t i = 0; i < w.size(); ++i)
        EXPECT_NEAR(w[i], expected[i], 1e-9 * (1 + std::abs(expected[i])));
}
