// Householder kernels: larfg, geqrt, unmqr, tsqrt, tsmqr.
//
// These validate the compact-WY conventions the tile QR relies on:
// orthogonality of Q, reconstruction A = Q R, and consistency between
// applying Q via unmqr/tsmqr and the explicitly assembled block reflector.

#include <gtest/gtest.h>

#include "blas/householder.hh"
#include "ref/dense.hh"
#include "test_util.hh"

using namespace tbp;

template <typename T>
class Householder : public ::testing::Test {};
TYPED_TEST_SUITE(Householder, test::AllTypes);

namespace {

template <typename T>
Tile<T> as_tile(ref::Dense<T>& D) {
    return Tile<T>(D.data(), static_cast<int>(D.m()), static_cast<int>(D.n()),
                   static_cast<int>(D.m()));
}

/// Assemble Q = I - V T V^H (mb x mb) from a geqrt-factored tile.
template <typename T>
ref::Dense<T> assemble_q(ref::Dense<T> const& Vfac, ref::Dense<T> const& Tf) {
    int const mb = static_cast<int>(Vfac.m());
    int const k = static_cast<int>(std::min(Vfac.m(), Vfac.n()));
    ref::Dense<T> V(mb, k);
    for (int j = 0; j < k; ++j) {
        V(j, j) = T(1);
        for (int i = j + 1; i < mb; ++i)
            V(i, j) = Vfac(i, j);
    }
    ref::Dense<T> Tk(k, k);
    for (int j = 0; j < k; ++j)
        for (int i = 0; i <= j; ++i)
            Tk(i, j) = Tf(i, j);
    auto VT = ref::gemm(Op::NoTrans, Op::NoTrans, T(1), V, Tk);
    auto VTVh = ref::gemm(Op::NoTrans, Op::ConjTrans, T(1), VT, V);
    auto Q = ref::identity<T>(mb);
    for (int j = 0; j < mb; ++j)
        for (int i = 0; i < mb; ++i)
            Q(i, j) -= VTVh(i, j);
    return Q;
}

}  // namespace

TYPED_TEST(Householder, LarfgAnnihilates) {
    using T = TypeParam;
    using R = real_t<T>;
    int const n = 7;
    auto x = ref::random_dense<T>(n, 1, 1);
    auto x0 = x;
    auto r = blas::larfg(x(0, 0), n - 1, &x(1, 0));
    // v = [1; x(1:)], check (I - tau v v^H)^H x0 == beta e1.
    ref::Dense<T> v(n, 1);
    v(0, 0) = T(1);
    for (int i = 1; i < n; ++i)
        v(i, 0) = x(i, 0);
    // y = x0 - conj(tau) v (v^H x0)
    T vhx(0);
    for (int i = 0; i < n; ++i)
        vhx += conj_val(v(i, 0)) * x0(i, 0);
    ref::Dense<T> y(n, 1);
    for (int i = 0; i < n; ++i)
        y(i, 0) = x0(i, 0) - conj_val(r.tau) * v(i, 0) * vhx;
    EXPECT_NEAR(std::abs(y(0, 0) - from_real<T>(r.beta)), R(0), test::tol<T>(50));
    for (int i = 1; i < n; ++i)
        EXPECT_NEAR(std::abs(y(i, 0)), R(0), test::tol<T>(50));
    // beta preserves the 2-norm.
    EXPECT_NEAR(std::abs(r.beta), ref::norm_fro(x0), test::tol<T>(50) * ref::norm_fro(x0));
}

TYPED_TEST(Householder, LarfgZeroTail) {
    using T = TypeParam;
    T alpha = T(3);
    auto r = blas::larfg<T>(alpha, 0, nullptr);
    EXPECT_EQ(r.tau, T(0));
    EXPECT_EQ(r.beta, real_t<T>(3));
}

TYPED_TEST(Householder, GeqrtReconstructs) {
    using T = TypeParam;
    for (auto [mb, nb] : {std::pair{10, 6}, {8, 8}, {5, 9}}) {
        auto A = ref::random_dense<T>(mb, nb, 2);
        auto A0 = A;
        int const k = std::min(mb, nb);
        ref::Dense<T> Tf(k, k);
        blas::geqrt(as_tile(A), as_tile(Tf));

        auto Q = assemble_q(A, Tf);
        // Q unitary.
        EXPECT_LE(ref::orthogonality(Q), test::tol<T>(200) * mb);
        // R = upper triangle/trapezoid of A.
        ref::Dense<T> R(mb, nb);
        for (int j = 0; j < nb; ++j)
            for (int i = 0; i <= std::min(j, mb - 1); ++i)
                R(i, j) = A(i, j);
        auto QR = ref::gemm(Op::NoTrans, Op::NoTrans, T(1), Q, R);
        EXPECT_LE(ref::diff_fro(QR, A0),
                  test::tol<T>(500) * (1 + ref::norm_fro(A0)));
    }
}

TYPED_TEST(Householder, UnmqrMatchesAssembledQ) {
    using T = TypeParam;
    int const mb = 9, nb = 5, nn = 4;
    auto A = ref::random_dense<T>(mb, nb, 3);
    ref::Dense<T> Tf(nb, nb);
    blas::geqrt(as_tile(A), as_tile(Tf));
    auto Q = assemble_q(A, Tf);

    auto C = ref::random_dense<T>(mb, nn, 4);
    auto C1 = C, C2 = C;

    blas::unmqr(Op::ConjTrans, as_tile(A), as_tile(Tf), as_tile(C1));
    auto Cref = ref::gemm(Op::ConjTrans, Op::NoTrans, T(1), Q, C);
    EXPECT_LE(ref::diff_fro(C1, Cref), test::tol<T>(500) * (1 + ref::norm_fro(C)));

    blas::unmqr(Op::NoTrans, as_tile(A), as_tile(Tf), as_tile(C2));
    auto Cref2 = ref::gemm(Op::NoTrans, Op::NoTrans, T(1), Q, C);
    EXPECT_LE(ref::diff_fro(C2, Cref2), test::tol<T>(500) * (1 + ref::norm_fro(C)));
}

TYPED_TEST(Householder, UnmqrRoundTrip) {
    // Q^H (Q C) == C.
    using T = TypeParam;
    int const mb = 8, nb = 8, nn = 3;
    auto A = ref::random_dense<T>(mb, nb, 5);
    ref::Dense<T> Tf(nb, nb);
    blas::geqrt(as_tile(A), as_tile(Tf));
    auto C = ref::random_dense<T>(mb, nn, 6);
    auto X = C;
    blas::unmqr(Op::NoTrans, as_tile(A), as_tile(Tf), as_tile(X));
    blas::unmqr(Op::ConjTrans, as_tile(A), as_tile(Tf), as_tile(X));
    EXPECT_LE(ref::diff_fro(X, C), test::tol<T>(500) * (1 + ref::norm_fro(C)));
}

TYPED_TEST(Householder, TsqrtReconstructs) {
    using T = TypeParam;
    int const n = 6, m2 = 8;
    // Top: an upper-triangular R1 (as produced by geqrt).
    auto A1 = ref::random_dense<T>(n, n, 7);
    for (int j = 0; j < n; ++j)
        for (int i = j + 1; i < n; ++i)
            A1(i, j) = T(0);
    auto A2 = ref::random_dense<T>(m2, n, 8);
    auto A1_0 = A1;
    auto A2_0 = A2;

    ref::Dense<T> Tf(n, n);
    blas::tsqrt(as_tile(A1), as_tile(A2), as_tile(Tf));

    // Assemble Q = I - [E; V2] T [E; V2]^H of size (n + m2).
    int const M = n + m2;
    ref::Dense<T> V(M, n);
    for (int j = 0; j < n; ++j) {
        V(j, j) = T(1);
        for (int i = 0; i < m2; ++i)
            V(n + i, j) = A2(i, j);
    }
    ref::Dense<T> Tk(n, n);
    for (int j = 0; j < n; ++j)
        for (int i = 0; i <= j; ++i)
            Tk(i, j) = Tf(i, j);
    auto VT = ref::gemm(Op::NoTrans, Op::NoTrans, T(1), V, Tk);
    auto VTVh = ref::gemm(Op::NoTrans, Op::ConjTrans, T(1), VT, V);
    auto Q = ref::identity<T>(M);
    for (int j = 0; j < M; ++j)
        for (int i = 0; i < M; ++i)
            Q(i, j) -= VTVh(i, j);
    EXPECT_LE(ref::orthogonality(Q), test::tol<T>(500) * M);

    // Stacked original = Q [Rnew; 0].
    ref::Dense<T> S(M, n);
    for (int j = 0; j < n; ++j) {
        for (int i = 0; i <= j; ++i)
            S(i, j) = A1(i, j);
    }
    auto QS = ref::gemm(Op::NoTrans, Op::NoTrans, T(1), Q, S);
    ref::Dense<T> Orig(M, n);
    for (int j = 0; j < n; ++j) {
        for (int i = 0; i < n; ++i)
            Orig(i, j) = A1_0(i, j);
        for (int i = 0; i < m2; ++i)
            Orig(n + i, j) = A2_0(i, j);
    }
    EXPECT_LE(ref::diff_fro(QS, Orig),
              test::tol<T>(1000) * (1 + ref::norm_fro(Orig)));
}

TYPED_TEST(Householder, TsmqrRoundTrip) {
    using T = TypeParam;
    int const n = 5, m2 = 7, nn = 4;
    auto A1 = ref::random_dense<T>(n, n, 9);
    for (int j = 0; j < n; ++j)
        for (int i = j + 1; i < n; ++i)
            A1(i, j) = T(0);
    auto A2 = ref::random_dense<T>(m2, n, 10);
    ref::Dense<T> Tf(n, n);
    blas::tsqrt(as_tile(A1), as_tile(A2), as_tile(Tf));

    auto C1 = ref::random_dense<T>(n, nn, 11);
    auto C2 = ref::random_dense<T>(m2, nn, 12);
    auto C1_0 = C1;
    auto C2_0 = C2;

    blas::tsmqr(Op::ConjTrans, as_tile(A2), as_tile(Tf), as_tile(C1), as_tile(C2));
    blas::tsmqr(Op::NoTrans, as_tile(A2), as_tile(Tf), as_tile(C1), as_tile(C2));
    EXPECT_LE(ref::diff_fro(C1, C1_0), test::tol<T>(500) * (1 + ref::norm_fro(C1_0)));
    EXPECT_LE(ref::diff_fro(C2, C2_0), test::tol<T>(500) * (1 + ref::norm_fro(C2_0)));
}

TYPED_TEST(Householder, TsqrtZeroBottomIsIdentityQ) {
    // With A2 == 0, the factorization must leave R1 unchanged (tau == 0).
    using T = TypeParam;
    int const n = 4, m2 = 3;
    auto A1 = ref::random_dense<T>(n, n, 13);
    for (int j = 0; j < n; ++j) {
        for (int i = j + 1; i < n; ++i)
            A1(i, j) = T(0);
        A1(j, j) = from_real<T>(real_t<T>(2) + real_t<T>(j));
    }
    auto A1_0 = A1;
    ref::Dense<T> A2(m2, n), Tf(n, n);
    blas::tsqrt(as_tile(A1), as_tile(A2), as_tile(Tf));
    EXPECT_LE(ref::diff_fro(A1, A1_0), test::tol<T>(10) * ref::norm_fro(A1_0));
}
