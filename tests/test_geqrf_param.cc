// Parameterized sweep over tile-QR shapes: for every (m, n, nb) point the
// factorization must satisfy the two defining properties (Q^H Q = I and
// Q R = A) in double precision.

#include <gtest/gtest.h>

#include <tuple>

#include "gen/matgen.hh"
#include "linalg/geqrf.hh"
#include "linalg/util.hh"
#include "ref/dense.hh"
#include "test_util.hh"

using namespace tbp;

namespace {

using Shape = std::tuple<int, int, int>;  // m, n, nb

class GeqrfSweep : public ::testing::TestWithParam<Shape> {};

}  // namespace

TEST_P(GeqrfSweep, FactorizationProperties) {
    auto const [m, n, nb] = GetParam();
    if (m < n)
        GTEST_SKIP() << "library contract is m >= n (as in the paper)";
    rt::Engine eng(3);
    auto D = ref::random_dense<double>(m, n, 777);
    auto A = ref::to_tiled(D, nb);
    auto Tm = la::alloc_qr_t(A);
    la::geqrf(eng, A, Tm);
    TiledMatrix<double> Q(m, n, nb);
    la::ungqr(eng, A, Tm, Q);
    eng.wait();

    auto Qd = ref::to_dense(Q);
    EXPECT_LE(ref::orthogonality(Qd), 1e-12 * std::max(m, n))
        << m << "x" << n << " nb=" << nb;

    ref::Dense<double> R(n, n);
    auto Ad = ref::to_dense(A);
    for (int j = 0; j < n; ++j)
        for (int i = 0; i <= j && i < m; ++i)
            R(i, j) = Ad(i, j);
    auto QR = ref::gemm(Op::NoTrans, Op::NoTrans, 1.0, Qd, R);
    EXPECT_LE(ref::diff_fro(QR, D), 1e-12 * (1 + ref::norm_fro(D)))
        << m << "x" << n << " nb=" << nb;
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, GeqrfSweep,
    ::testing::Combine(::testing::Values(8, 13, 24, 31, 40),
                       ::testing::Values(5, 8, 13),
                       ::testing::Values(3, 4, 8, 16)),
    [](::testing::TestParamInfo<Shape> const& info) {
        return "m" + std::to_string(std::get<0>(info.param)) + "_n"
               + std::to_string(std::get<1>(info.param)) + "_nb"
               + std::to_string(std::get<2>(info.param));
    });
