// Tiled gemm / gemmA / herk against dense references, across op
// combinations, tilings, and execution modes.

#include <gtest/gtest.h>

#include "linalg/gemm.hh"
#include "linalg/util.hh"
#include "ref/dense.hh"
#include "test_util.hh"

using namespace tbp;

template <typename T>
class LaGemm : public ::testing::Test {};
TYPED_TEST_SUITE(LaGemm, test::AllTypes);

namespace {

template <typename T>
void check_tiled_gemm(Op opA, Op opB, int m, int n, int k, int nb,
                      rt::Mode mode = rt::Mode::TaskDataflow) {
    rt::Engine eng(3, mode);
    auto Da = (opA == Op::NoTrans) ? ref::random_dense<T>(m, k, 1)
                                   : ref::random_dense<T>(k, m, 1);
    auto Db = (opB == Op::NoTrans) ? ref::random_dense<T>(k, n, 2)
                                   : ref::random_dense<T>(n, k, 2);
    auto Dc = ref::random_dense<T>(m, n, 3);

    auto A = ref::to_tiled(Da, nb);
    auto B = ref::to_tiled(Db, nb);
    auto C = ref::to_tiled(Dc, nb);

    T const alpha = from_real<T>(real_t<T>(1.25));
    T const beta = from_real<T>(real_t<T>(-0.75));
    la::gemm(eng, opA, opB, alpha, A, B, beta, C);
    eng.wait();

    auto P = ref::gemm(opA, opB, alpha, Da, Db);
    for (int j = 0; j < n; ++j)
        for (int i = 0; i < m; ++i)
            P(i, j) += beta * Dc(i, j);
    auto Cd = ref::to_dense(C);
    EXPECT_LE(ref::diff_fro(Cd, P), test::tol<T>(200) * (1 + ref::norm_fro(P)))
        << "op " << to_string(opA) << "/" << to_string(opB);
}

}  // namespace

TYPED_TEST(LaGemm, NoTransConjTrans) {
    check_tiled_gemm<TypeParam>(Op::NoTrans, Op::ConjTrans, 14, 10, 10, 4);
}

TYPED_TEST(LaGemm, ConjTransNoTrans) {
    check_tiled_gemm<TypeParam>(Op::ConjTrans, Op::NoTrans, 10, 10, 14, 4);
}

TYPED_TEST(LaGemm, NoTransNoTrans) {
    check_tiled_gemm<TypeParam>(Op::NoTrans, Op::NoTrans, 9, 13, 6, 5);
}

TYPED_TEST(LaGemm, UnevenTiles) {
    check_tiled_gemm<TypeParam>(Op::NoTrans, Op::NoTrans, 11, 7, 5, 3);
}

TYPED_TEST(LaGemm, SingleTile) {
    check_tiled_gemm<TypeParam>(Op::NoTrans, Op::ConjTrans, 6, 6, 6, 8);
}

TYPED_TEST(LaGemm, ForkJoinMode) {
    check_tiled_gemm<TypeParam>(Op::NoTrans, Op::NoTrans, 12, 12, 12, 4,
                                rt::Mode::ForkJoin);
}

TYPED_TEST(LaGemm, SequentialMode) {
    check_tiled_gemm<TypeParam>(Op::ConjTrans, Op::NoTrans, 12, 12, 12, 4,
                                rt::Mode::Sequential);
}

TYPED_TEST(LaGemm, GemmAMatchesGemm) {
    using T = TypeParam;
    rt::Engine eng(3);
    int const m = 15, n = 2, k = 9;
    auto Da = ref::random_dense<T>(m, k, 4);
    auto Db = ref::random_dense<T>(k, n, 5);
    auto A = ref::to_tiled(Da, 4);
    auto B = ref::to_tiled(Db, 4);
    TiledMatrix<T> C(m, n, 4);
    la::gemmA(eng, Op::NoTrans, T(1), A, B, T(0), C);
    eng.wait();
    auto P = ref::gemm(Op::NoTrans, Op::NoTrans, T(1), Da, Db);
    EXPECT_LE(ref::diff_fro(ref::to_dense(C), P),
              test::tol<T>(200) * (1 + ref::norm_fro(P)));
}

TYPED_TEST(LaGemm, GemmAConjTransAndBeta) {
    using T = TypeParam;
    rt::Engine eng(3);
    int const m = 12, n = 1, k = 7;  // A^H x shape from norm2est
    auto Da = ref::random_dense<T>(m, k, 6);
    auto Db = ref::random_dense<T>(m, n, 7);
    auto Dc = ref::random_dense<T>(k, n, 8);
    auto A = ref::to_tiled(Da, 5);
    auto B = ref::to_tiled(Db, 5);
    auto C = ref::to_tiled(Dc, 5);
    la::gemmA(eng, Op::ConjTrans, T(2), A, B, T(3), C);
    eng.wait();
    auto P = ref::gemm(Op::ConjTrans, Op::NoTrans, T(2), Da, Db);
    for (int i = 0; i < k; ++i)
        P(i, 0) += T(3) * Dc(i, 0);
    EXPECT_LE(ref::diff_fro(ref::to_dense(C), P),
              test::tol<T>(200) * (1 + ref::norm_fro(P)));
}

TYPED_TEST(LaGemm, HerkLowerConjTrans) {
    // Z = I + c A^H A, the QDWH Cholesky-iteration operand.
    using T = TypeParam;
    using R = real_t<T>;
    rt::Engine eng(3);
    int const m = 13, n = 9;
    auto Da = ref::random_dense<T>(m, n, 9);
    auto A = ref::to_tiled(Da, 4);
    TiledMatrix<T> Z(n, n, 4);
    la::set_identity(eng, Z);
    la::herk(eng, Uplo::Lower, Op::ConjTrans, R(2), A, R(1), Z);
    eng.wait();

    auto P = ref::gemm(Op::ConjTrans, Op::NoTrans, T(2), Da, Da);
    for (int i = 0; i < n; ++i)
        P(i, i) += T(1);
    auto Zd = ref::to_dense(Z);
    // Compare lower triangles only.
    real_t<T> err(0);
    for (int j = 0; j < n; ++j)
        for (int i = j; i < n; ++i)
            err += abs_sq(Zd(i, j) - P(i, j));
    EXPECT_LE(std::sqrt(err), test::tol<T>(200) * (1 + ref::norm_fro(P)));
}

TYPED_TEST(LaGemm, HerkNoTrans) {
    using T = TypeParam;
    using R = real_t<T>;
    rt::Engine eng(2);
    int const n = 10, k = 6;
    auto Da = ref::random_dense<T>(n, k, 10);
    auto A = ref::to_tiled(Da, 3);
    TiledMatrix<T> C(n, n, 3);
    la::herk(eng, Uplo::Lower, Op::NoTrans, R(1), A, R(0), C);
    eng.wait();
    auto P = ref::gemm(Op::NoTrans, Op::ConjTrans, T(1), Da, Da);
    auto Cd = ref::to_dense(C);
    real_t<T> err(0);
    for (int j = 0; j < n; ++j)
        for (int i = j; i < n; ++i)
            err += abs_sq(Cd(i, j) - P(i, j));
    EXPECT_LE(std::sqrt(err), test::tol<T>(200) * (1 + ref::norm_fro(P)));
}

TYPED_TEST(LaGemm, GemmOnSubViews) {
    // The QDWH update uses Q1, Q2 as sub-views of the stacked Q.
    using T = TypeParam;
    rt::Engine eng(3);
    int const m = 8, n = 4, nb = 4;
    auto Dq = ref::random_dense<T>(m + n, n, 11);
    auto Q = ref::to_tiled(Dq, nb);
    auto Q1 = Q.sub(0, 0, 2, 1);
    auto Q2 = Q.sub(2, 0, 1, 1);
    TiledMatrix<T> C(m, n, nb);
    la::gemm(eng, Op::NoTrans, Op::ConjTrans, T(1), Q1, Q2, T(0), C);
    eng.wait();

    ref::Dense<T> D1(m, n), D2(n, n);
    for (int j = 0; j < n; ++j) {
        for (int i = 0; i < m; ++i)
            D1(i, j) = Dq(i, j);
        for (int i = 0; i < n; ++i)
            D2(i, j) = Dq(m + i, j);
    }
    auto P = ref::gemm(Op::NoTrans, Op::ConjTrans, T(1), D1, D2);
    EXPECT_LE(ref::diff_fro(ref::to_dense(C), P),
              test::tol<T>(200) * (1 + ref::norm_fro(P)));
}
