// Tiled Cholesky and posv.

#include <gtest/gtest.h>

#include "common/error.hh"
#include "gen/matgen.hh"
#include "linalg/gemm.hh"
#include "linalg/potrf.hh"
#include "linalg/util.hh"
#include "ref/dense.hh"
#include "test_util.hh"

using namespace tbp;

template <typename T>
class LaPotrf : public ::testing::Test {};
TYPED_TEST_SUITE(LaPotrf, test::AllTypes);

namespace {

template <typename T>
ref::Dense<T> make_hpd_dense(int n, std::uint64_t seed) {
    auto B = ref::random_dense<T>(n, n, seed);
    auto A = ref::gemm(Op::NoTrans, Op::ConjTrans, T(1), B, B);
    for (int i = 0; i < n; ++i)
        A(i, i) += from_real<T>(static_cast<real_t<T>>(n));
    return A;
}

template <typename T>
void check_potrf(int n, int nb, rt::Mode mode = rt::Mode::TaskDataflow) {
    rt::Engine eng(3, mode);
    auto D = make_hpd_dense<T>(n, 31);
    auto A = ref::to_tiled(D, nb);
    la::potrf(eng, Uplo::Lower, A);
    eng.wait();

    // Extract L and verify L L^H == D.
    auto Ld = ref::to_dense(A);
    for (int j = 0; j < n; ++j)
        for (int i = 0; i < j; ++i)
            Ld(i, j) = T(0);
    auto P = ref::gemm(Op::NoTrans, Op::ConjTrans, T(1), Ld, Ld);
    EXPECT_LE(ref::diff_fro(P, D), test::tol<T>(1000) * (1 + ref::norm_fro(D)));
}

}  // namespace

TYPED_TEST(LaPotrf, MultiTile) { check_potrf<TypeParam>(13, 4); }
TYPED_TEST(LaPotrf, SingleTile) { check_potrf<TypeParam>(6, 8); }
TYPED_TEST(LaPotrf, ExactTiles) { check_potrf<TypeParam>(12, 4); }
TYPED_TEST(LaPotrf, ForkJoin) { check_potrf<TypeParam>(12, 4, rt::Mode::ForkJoin); }
TYPED_TEST(LaPotrf, Sequential) { check_potrf<TypeParam>(10, 3, rt::Mode::Sequential); }

TYPED_TEST(LaPotrf, PosvSolves) {
    using T = TypeParam;
    rt::Engine eng(3);
    int const n = 11, nrhs = 4, nb = 4;
    auto Dz = make_hpd_dense<T>(n, 32);
    auto Db = ref::random_dense<T>(n, nrhs, 33);
    auto Z = ref::to_tiled(Dz, nb);
    auto X = ref::to_tiled(Db, nb);
    la::posv(eng, Z, X);
    eng.wait();
    auto P = ref::gemm(Op::NoTrans, Op::NoTrans, T(1), Dz, ref::to_dense(X));
    EXPECT_LE(ref::diff_fro(P, Db), test::tol<T>(5000) * (1 + ref::norm_fro(Db)));
}

TYPED_TEST(LaPotrf, IndefiniteThrowsThroughEngine) {
    using T = TypeParam;
    rt::Engine eng(2);
    TiledMatrix<T> A(6, 6, 3);
    la::set(eng, T(0), T(-1), A);  // negative definite
    EXPECT_THROW(
        {
            la::potrf(eng, Uplo::Lower, A);
            eng.wait();
        },
        Error);
}

TYPED_TEST(LaPotrf, HpdGeneratorFactorizable) {
    using T = TypeParam;
    rt::Engine eng(3);
    auto A = gen::hpd_matrix<T>(eng, 14, 5, 77);
    auto D = ref::to_dense(A);
    la::potrf(eng, Uplo::Lower, A);
    eng.wait();
    auto Ld = ref::to_dense(A);
    for (int j = 0; j < 14; ++j)
        for (int i = 0; i < j; ++i)
            Ld(i, j) = T(0);
    auto P = ref::gemm(Op::NoTrans, Op::ConjTrans, T(1), Ld, Ld);
    EXPECT_LE(ref::diff_fro(P, D), test::tol<T>(2000) * (1 + ref::norm_fro(D)));
}
