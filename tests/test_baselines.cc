// Polar decomposition baselines (Newton iteration, SVD route) and their
// agreement with QDWH — the cross-algorithm consistency the paper's
// related-work comparisons assume.

#include <gtest/gtest.h>

#include "core/baselines.hh"
#include "core/qdwh.hh"
#include "gen/matgen.hh"
#include "test_util.hh"

using namespace tbp;

template <typename T>
class Baselines : public ::testing::Test {};
TYPED_TEST_SUITE(Baselines, test::AllTypes);

namespace {

template <typename T>
void check_polar(ref::Dense<T> const& A, ref::Dense<T> const& U,
                 ref::Dense<T> const& H, double tol_factor) {
    using R = real_t<T>;
    auto const n = U.n();
    EXPECT_LE(ref::orthogonality(U) / std::sqrt(static_cast<R>(n)),
              test::tol<T>(tol_factor));
    auto UH = ref::gemm(Op::NoTrans, Op::NoTrans, T(1), U, H);
    EXPECT_LE(ref::diff_fro(UH, A) / ref::norm_fro(A), test::tol<T>(tol_factor));
}

}  // namespace

TYPED_TEST(Baselines, NewtonPolarModerateCondition) {
    using T = TypeParam;
    rt::Engine eng(2);
    gen::MatGenOptions opt;
    opt.cond = 1e4;
    opt.seed = 101;
    int const n = 16;
    auto A = ref::to_dense(gen::cond_matrix<T>(eng, n, n, 8, opt));
    ref::Dense<T> U, H;
    auto info = newton_polar(A, U, H);
    // Newton's explicit inversions lose ~kappa * eps accuracy — exactly the
    // weakness motivating inverse-free QDWH (paper Section 3); accept the
    // kappa-proportional error band here.
    check_polar(A, U, H, 1e5);
    EXPECT_LE(info.iterations, 12);  // scaled Newton converges in < ~10
}

TYPED_TEST(Baselines, SvdPolarIllConditioned) {
    using T = TypeParam;
    rt::Engine eng(2);
    gen::MatGenOptions opt;
    opt.cond = test::ill_cond<T>();
    opt.seed = 102;
    int const n = 14;
    auto A = ref::to_dense(gen::cond_matrix<T>(eng, n, n, 8, opt));
    ref::Dense<T> U, H;
    svd_polar(A, U, H);
    check_polar(A, U, H, 500);
}

TYPED_TEST(Baselines, SvdPolarRectangular) {
    using T = TypeParam;
    rt::Engine eng(2);
    gen::MatGenOptions opt;
    opt.cond = 1e3;
    opt.seed = 103;
    auto A = ref::to_dense(gen::cond_matrix<T>(eng, 19, 8, 8, opt));
    ref::Dense<T> U, H;
    svd_polar(A, U, H);
    check_polar(A, U, H, 500);
}

TYPED_TEST(Baselines, AllThreeAlgorithmsAgree) {
    // QDWH, Newton and SVD-PD must compute the same U_p (it is unique for
    // nonsingular A).
    using T = TypeParam;
    rt::Engine eng(3);
    gen::MatGenOptions opt;
    opt.cond = 1e3;
    opt.seed = 104;
    int const n = 12, nb = 4;
    auto At = gen::cond_matrix<T>(eng, n, n, nb, opt);
    auto Ad = ref::to_dense(At);

    TiledMatrix<T> Hq(n, n, nb);
    qdwh(eng, At, Hq);
    auto Uq = ref::to_dense(At);

    ref::Dense<T> Un, Hn, Us, Hs;
    newton_polar(Ad, Un, Hn);
    svd_polar(Ad, Us, Hs);

    EXPECT_LE(ref::diff_fro(Uq, Un), test::tol<T>(50000));
    EXPECT_LE(ref::diff_fro(Uq, Us), test::tol<T>(50000));
    EXPECT_LE(ref::diff_fro(ref::to_dense(Hq), Hn),
              test::tol<T>(50000) * (1 + ref::norm_fro(Hn)));
}

TYPED_TEST(Baselines, NewtonHIsHermitian) {
    using T = TypeParam;
    rt::Engine eng(2);
    gen::MatGenOptions opt;
    opt.cond = 100;
    opt.seed = 105;
    int const n = 10;
    auto A = ref::to_dense(gen::cond_matrix<T>(eng, n, n, 4, opt));
    ref::Dense<T> U, H;
    newton_polar(A, U, H);
    for (int j = 0; j < n; ++j)
        for (int i = 0; i < n; ++i)
            EXPECT_LE(std::abs(H(i, j) - conj_val(H(j, i))), test::tol<T>(10));
}
