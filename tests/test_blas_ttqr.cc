// Triangle-on-triangle QR kernels: ttqrt, ttmqr.
//
// ttqrt folds an upper-trapezoidal m2 x n tile (m2 <= n) into an upper
// triangular R — the structured fold of the identity block of QDWH's
// stacked [sqrt(c) A; I]. Its defining property: with the strictly-lower
// part of A2 zero, every reflector tail is confined to the trapezoid, so
// the factorization produces the SAME R, V2, and T as the dense tsqrt
// oracle on the zero-padded tile, at ~40% of the flops. ttmqr applies the
// resulting reflectors exploiting the same sparsity, including the
// overwriting c2_zero path for C2 tiles that are structurally zero.

#include <gtest/gtest.h>

#include "blas/householder.hh"
#include "common/flops.hh"
#include "ref/dense.hh"
#include "test_util.hh"

using namespace tbp;

template <typename T>
class TtQr : public ::testing::Test {};
TYPED_TEST_SUITE(TtQr, test::AllTypes);

namespace {

template <typename T>
Tile<T> as_tile(ref::Dense<T>& D) {
    return Tile<T>(D.data(), static_cast<int>(D.m()), static_cast<int>(D.n()),
                   static_cast<int>(D.m()));
}

/// Random upper-triangular R tile (n x n), as geqrt leaves it.
template <typename T>
ref::Dense<T> random_r(int n, std::uint64_t seed) {
    auto A = ref::random_dense<T>(n, n, seed);
    for (int j = 0; j < n; ++j)
        for (int i = j + 1; i < n; ++i)
            A(i, j) = T(0);
    return A;
}

/// Random upper-trapezoidal m2 x n tile (zero strictly below the diagonal)
/// — the shape of W2's diagonal tile and of ttqrt's V2 output.
template <typename T>
ref::Dense<T> random_trapezoid(int m2, int n, std::uint64_t seed) {
    auto A = ref::random_dense<T>(m2, n, seed);
    for (int j = 0; j < n; ++j)
        for (int i = j + 1; i < m2; ++i)
            A(i, j) = T(0);
    return A;
}

}  // namespace

TYPED_TEST(TtQr, TtqrtMatchesTsqrtOracle) {
    // On a triangular A2, tsqrt's extra work is all on exact zeros, so the
    // two factorizations agree to rounding (the zero tail contributes
    // nothing to any larfg norm or reflector inner product).
    using T = TypeParam;
    for (auto [m2, n] : {std::pair{6, 6}, {4, 7}, {1, 5}, {8, 8}}) {
        auto A1t = random_r<T>(n, 21);
        auto A2t = random_trapezoid<T>(m2, n, 22);
        auto A1o = A1t;
        auto A2o = A2t;
        ref::Dense<T> Tft(n, n), Tfo(n, n);

        blas::ttqrt(as_tile(A1t), as_tile(A2t), as_tile(Tft));
        blas::tsqrt(as_tile(A1o), as_tile(A2o), as_tile(Tfo));

        auto const scale = 1 + ref::norm_fro(A1o) + ref::norm_fro(A2o);
        EXPECT_LE(ref::diff_fro(A1t, A1o), test::tol<T>(50) * scale)
            << "R  m2=" << m2 << " n=" << n;
        EXPECT_LE(ref::diff_fro(A2t, A2o), test::tol<T>(50) * scale)
            << "V2 m2=" << m2 << " n=" << n;
        EXPECT_LE(ref::diff_fro(Tft, Tfo), test::tol<T>(200) * scale)
            << "T  m2=" << m2 << " n=" << n;
        // The V2 output must itself stay upper-trapezoidal: no fill below
        // the diagonal (this is what makes ungqr's sparsity exploitable).
        for (int j = 0; j < n; ++j)
            for (int i = j + 1; i < m2; ++i)
                EXPECT_EQ(A2t(i, j), T(0)) << i << "," << j;
    }
}

TYPED_TEST(TtQr, TtmqrMatchesTsmqr) {
    using T = TypeParam;
    for (auto [m2, n, nn] : {std::tuple{5, 5, 4}, {3, 6, 7}, {6, 6, 6}}) {
        auto A1 = random_r<T>(n, 31);
        auto A2 = random_trapezoid<T>(m2, n, 32);
        ref::Dense<T> Tf(n, n);
        blas::ttqrt(as_tile(A1), as_tile(A2), as_tile(Tf));

        auto C1t = ref::random_dense<T>(n, nn, 33);
        auto C2t = ref::random_dense<T>(m2, nn, 34);
        auto C1o = C1t;
        auto C2o = C2t;

        for (auto op : {Op::ConjTrans, Op::NoTrans}) {
            blas::ttmqr(op, as_tile(A2), as_tile(Tf), as_tile(C1t), as_tile(C2t));
            blas::tsmqr(op, as_tile(A2), as_tile(Tf), as_tile(C1o), as_tile(C2o));
            auto const scale = 1 + ref::norm_fro(C1o) + ref::norm_fro(C2o);
            EXPECT_LE(ref::diff_fro(C1t, C1o), test::tol<T>(500) * scale)
                << "op=" << static_cast<int>(op) << " m2=" << m2;
            EXPECT_LE(ref::diff_fro(C2t, C2o), test::tol<T>(500) * scale)
                << "op=" << static_cast<int>(op) << " m2=" << m2;
        }
    }
}

TYPED_TEST(TtQr, TtmqrRoundTrip) {
    // Q^H (Q C) == C through the triangular applier.
    using T = TypeParam;
    int const n = 6, m2 = 6, nn = 3;
    auto A1 = random_r<T>(n, 41);
    auto A2 = random_trapezoid<T>(m2, n, 42);
    ref::Dense<T> Tf(n, n);
    blas::ttqrt(as_tile(A1), as_tile(A2), as_tile(Tf));

    auto C1 = ref::random_dense<T>(n, nn, 43);
    auto C2 = ref::random_dense<T>(m2, nn, 44);
    auto C1_0 = C1;
    auto C2_0 = C2;
    blas::ttmqr(Op::ConjTrans, as_tile(A2), as_tile(Tf), as_tile(C1), as_tile(C2));
    blas::ttmqr(Op::NoTrans, as_tile(A2), as_tile(Tf), as_tile(C1), as_tile(C2));
    EXPECT_LE(ref::diff_fro(C1, C1_0), test::tol<T>(500) * (1 + ref::norm_fro(C1_0)));
    EXPECT_LE(ref::diff_fro(C2, C2_0), test::tol<T>(500) * (1 + ref::norm_fro(C2_0)));
}

TYPED_TEST(TtQr, TtmqrZeroC2OverwritesGarbage) {
    // The c2_zero path must produce, from an arbitrary (stale) C2, exactly
    // what the regular path produces from an explicitly zeroed C2 — that is
    // the contract geqrf_stacked_tri relies on to skip the zero-fill sweep.
    using T = TypeParam;
    for (auto [m2, n, nn] : {std::tuple{5, 5, 4}, {3, 6, 2}}) {
        auto A1 = random_r<T>(n, 51);
        auto A2 = random_trapezoid<T>(m2, n, 52);
        ref::Dense<T> Tf(n, n);
        blas::ttqrt(as_tile(A1), as_tile(A2), as_tile(Tf));

        auto C1a = ref::random_dense<T>(n, nn, 53);
        auto C1b = C1a;
        auto C2a = ref::random_dense<T>(m2, nn, 54);  // garbage, overwritten
        ref::Dense<T> C2b(m2, nn);                    // explicit zeros

        blas::ttmqr(Op::ConjTrans, as_tile(A2), as_tile(Tf), as_tile(C1a),
                    as_tile(C2a), /*c2_zero=*/true);
        blas::ttmqr(Op::ConjTrans, as_tile(A2), as_tile(Tf), as_tile(C1b),
                    as_tile(C2b), /*c2_zero=*/false);
        auto const scale = 1 + ref::norm_fro(C1b) + ref::norm_fro(C2b);
        EXPECT_LE(ref::diff_fro(C1a, C1b), test::tol<T>(200) * scale);
        EXPECT_LE(ref::diff_fro(C2a, C2b), test::tol<T>(200) * scale);
    }
}

TYPED_TEST(TtQr, FlopChargesMatchFormulasAndBeatDense) {
    using T = TypeParam;
    int const n = 8, nn = 8;
    auto A1 = random_r<T>(n, 61);
    auto A2 = random_trapezoid<T>(n, n, 62);
    ref::Dense<T> Tf(n, n);
    double const w = fma_flops<T>() / 2.0;

    double before = blas::kernel::flops_performed();
    blas::ttqrt(as_tile(A1), as_tile(A2), as_tile(Tf));
    double const ttqrt_fl = blas::kernel::flops_performed() - before;
    EXPECT_EQ(ttqrt_fl,
              static_cast<double>(
                  static_cast<std::uint64_t>(flops::ttqrt(n, n) * w)));

    auto C1 = ref::random_dense<T>(n, nn, 63);
    auto C2 = ref::random_dense<T>(n, nn, 64);
    before = blas::kernel::flops_performed();
    blas::ttmqr(Op::ConjTrans, as_tile(A2), as_tile(Tf), as_tile(C1), as_tile(C2));
    double const ttmqr_fl = blas::kernel::flops_performed() - before;
    EXPECT_EQ(ttmqr_fl,
              static_cast<double>(static_cast<std::uint64_t>(
                  flops::ttmqr(n, n, nn, false) * w)));

    // The structured kernels must be charged well under the dense pair —
    // this is the per-tile ~2x saving the structured factorization banks.
    EXPECT_LE(flops::ttqrt(n, n) * 1.5, flops::tsqrt(n, n));
    EXPECT_LE(flops::ttmqr(n, n, nn, false) * 1.5, flops::tsmqr(n, n, nn));
    EXPECT_LE(flops::ttmqr(n, n, nn, true) * 2.0, flops::tsmqr(n, n, nn));
}
