// Property-style parameterized sweeps (TEST_P) over the QDWH configuration
// space: shapes x tile sizes x condition numbers x singular-value profiles.
// Every point must satisfy the paper's two accuracy invariants and the
// iteration bound.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/qdwh.hh"
#include "gen/matgen.hh"
#include "test_util.hh"

using namespace tbp;

namespace {

struct Case {
    int m, n, nb;
    double cond;
    gen::SigmaDist dist;
};

std::ostream& operator<<(std::ostream& os, Case const& c) {
    return os << c.m << "x" << c.n << "/nb" << c.nb << "/k" << c.cond;
}

class QdwhSweep : public ::testing::TestWithParam<Case> {};

}  // namespace

TEST_P(QdwhSweep, AccuracyAndIterationBound) {
    auto const c = GetParam();
    rt::Engine eng(3);
    gen::MatGenOptions opt;
    opt.cond = c.cond;
    opt.dist = c.dist;
    opt.seed = 4242;
    auto A = gen::cond_matrix<double>(eng, c.m, c.n, c.nb, opt);
    auto Ad = ref::to_dense(A);
    TiledMatrix<double> H(c.n, c.n, c.nb);
    auto info = qdwh(eng, A, H);

    auto U = ref::to_dense(A);
    double const orth =
        ref::orthogonality(U) / std::sqrt(static_cast<double>(c.n));
    auto UH = ref::gemm(Op::NoTrans, Op::NoTrans, 1.0, U, ref::to_dense(H));
    double const bwd = ref::diff_fro(UH, Ad) / ref::norm_fro(Ad);

    EXPECT_LE(orth, 1e-13);
    EXPECT_LE(bwd, 1e-13);
    EXPECT_LE(info.iterations, 6);  // paper Section 4 upper bound (double)
    EXPECT_LE(info.conv,
              std::cbrt(5 * std::numeric_limits<double>::epsilon()) * 1.01);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QdwhSweep,
    ::testing::Values(
        Case{16, 16, 8, 1e8, gen::SigmaDist::Geometric},
        Case{17, 17, 8, 1e8, gen::SigmaDist::Geometric},    // uneven square
        Case{32, 16, 8, 1e8, gen::SigmaDist::Geometric},    // 2:1
        Case{48, 12, 8, 1e8, gen::SigmaDist::Geometric},    // 4:1
        Case{33, 15, 8, 1e8, gen::SigmaDist::Geometric},    // both uneven
        Case{25, 25, 5, 1e8, gen::SigmaDist::Geometric},    // exact tiling
        Case{26, 26, 5, 1e8, gen::SigmaDist::Geometric},    // edge tiles
        Case{20, 20, 32, 1e8, gen::SigmaDist::Geometric})); // single tile

INSTANTIATE_TEST_SUITE_P(
    Conditioning, QdwhSweep,
    ::testing::Values(Case{24, 24, 8, 1e0 + 1e-12, gen::SigmaDist::Geometric},
                      Case{24, 24, 8, 1e2, gen::SigmaDist::Geometric},
                      Case{24, 24, 8, 1e6, gen::SigmaDist::Geometric},
                      Case{24, 24, 8, 1e10, gen::SigmaDist::Geometric},
                      Case{24, 24, 8, 1e13, gen::SigmaDist::Geometric},
                      Case{24, 24, 8, 1e16, gen::SigmaDist::Geometric}));

INSTANTIATE_TEST_SUITE_P(
    SigmaProfiles, QdwhSweep,
    ::testing::Values(Case{24, 24, 8, 1e8, gen::SigmaDist::Arithmetic},
                      Case{24, 24, 8, 1e8, gen::SigmaDist::ClusterAtOne},
                      Case{24, 24, 8, 1e8, gen::SigmaDist::LogUniform},
                      Case{40, 20, 8, 1e12, gen::SigmaDist::ClusterAtOne},
                      Case{40, 20, 8, 1e12, gen::SigmaDist::LogUniform}));
