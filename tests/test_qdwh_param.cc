// Property-style parameterized sweeps (TEST_P) over the QDWH configuration
// space: shapes x tile sizes x condition numbers x singular-value profiles.
// Every point must satisfy the paper's two accuracy invariants and the
// iteration bound.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/qdwh.hh"
#include "gen/matgen.hh"
#include "test_util.hh"

using namespace tbp;

namespace {

struct Case {
    int m, n, nb;
    double cond;
    gen::SigmaDist dist;
};

std::ostream& operator<<(std::ostream& os, Case const& c) {
    return os << c.m << "x" << c.n << "/nb" << c.nb << "/k" << c.cond;
}

class QdwhSweep : public ::testing::TestWithParam<Case> {};

}  // namespace

TEST_P(QdwhSweep, AccuracyAndIterationBound) {
    auto const c = GetParam();
    rt::Engine eng(3);
    gen::MatGenOptions opt;
    opt.cond = c.cond;
    opt.dist = c.dist;
    opt.seed = 4242;
    auto A = gen::cond_matrix<double>(eng, c.m, c.n, c.nb, opt);
    auto Ad = ref::to_dense(A);
    TiledMatrix<double> H(c.n, c.n, c.nb);
    auto info = qdwh(eng, A, H);

    auto U = ref::to_dense(A);
    double const orth =
        ref::orthogonality(U) / std::sqrt(static_cast<double>(c.n));
    auto UH = ref::gemm(Op::NoTrans, Op::NoTrans, 1.0, U, ref::to_dense(H));
    double const bwd = ref::diff_fro(UH, Ad) / ref::norm_fro(Ad);

    EXPECT_LE(orth, 1e-13);
    EXPECT_LE(bwd, 1e-13);
    EXPECT_LE(info.iterations, 6);  // paper Section 4 upper bound (double)
    EXPECT_LE(info.conv,
              std::cbrt(5 * std::numeric_limits<double>::epsilon()) * 1.01);
}

TEST_P(QdwhSweep, StructuredMatchesDenseOracle) {
    // The structured stacked-QR path must produce the same polar factors as
    // the dense-oracle path (structured_qr = false) to factorization
    // tolerance — both paths run the same iteration count on the same
    // iterates, differing only in how Q = [Q1; Q2] is formed.
    auto const c = GetParam();
    gen::MatGenOptions opt;
    opt.cond = c.cond;
    opt.dist = c.dist;
    opt.seed = 4242;

    TiledMatrix<double> Us[2] = {TiledMatrix<double>(c.m, c.n, c.nb),
                                 TiledMatrix<double>(c.m, c.n, c.nb)};
    TiledMatrix<double> Hs[2] = {TiledMatrix<double>(c.n, c.n, c.nb),
                                 TiledMatrix<double>(c.n, c.n, c.nb)};
    QdwhInfo infos[2];
    for (int s = 0; s < 2; ++s) {
        rt::Engine eng(3);
        auto A = gen::cond_matrix<double>(eng, c.m, c.n, c.nb, opt);
        la::copy(eng, A, Us[s]);
        QdwhOptions o;
        o.structured_qr = (s == 0);
        infos[s] = qdwh(eng, Us[s], Hs[s], o);
        eng.wait();
    }
    EXPECT_EQ(infos[0].iterations, infos[1].iterations);
    auto U0 = ref::to_dense(Us[0]);
    auto U1 = ref::to_dense(Us[1]);
    auto H0 = ref::to_dense(Hs[0]);
    auto H1 = ref::to_dense(Hs[1]);
    double const tol = 1e-12 * c.n;
    EXPECT_LE(ref::diff_fro(U0, U1) / std::sqrt(static_cast<double>(c.n)), tol);
    EXPECT_LE(ref::diff_fro(H0, H1) / (1 + ref::norm_fro(H1)), tol);
    // And the structured result satisfies the paper invariants on its own.
    EXPECT_LE(ref::orthogonality(U0) / std::sqrt(static_cast<double>(c.n)),
              1e-13);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QdwhSweep,
    ::testing::Values(
        Case{16, 16, 8, 1e8, gen::SigmaDist::Geometric},
        Case{17, 17, 8, 1e8, gen::SigmaDist::Geometric},    // uneven square
        Case{32, 16, 8, 1e8, gen::SigmaDist::Geometric},    // 2:1
        Case{48, 12, 8, 1e8, gen::SigmaDist::Geometric},    // 4:1
        Case{33, 15, 8, 1e8, gen::SigmaDist::Geometric},    // both uneven
        Case{25, 25, 5, 1e8, gen::SigmaDist::Geometric},    // exact tiling
        Case{26, 26, 5, 1e8, gen::SigmaDist::Geometric},    // edge tiles
        Case{20, 20, 32, 1e8, gen::SigmaDist::Geometric})); // single tile

INSTANTIATE_TEST_SUITE_P(
    Conditioning, QdwhSweep,
    ::testing::Values(Case{24, 24, 8, 1e0 + 1e-12, gen::SigmaDist::Geometric},
                      Case{24, 24, 8, 1e2, gen::SigmaDist::Geometric},
                      Case{24, 24, 8, 1e6, gen::SigmaDist::Geometric},
                      Case{24, 24, 8, 1e10, gen::SigmaDist::Geometric},
                      Case{24, 24, 8, 1e13, gen::SigmaDist::Geometric},
                      Case{24, 24, 8, 1e16, gen::SigmaDist::Geometric}));

INSTANTIATE_TEST_SUITE_P(
    SigmaProfiles, QdwhSweep,
    ::testing::Values(Case{24, 24, 8, 1e8, gen::SigmaDist::Arithmetic},
                      Case{24, 24, 8, 1e8, gen::SigmaDist::ClusterAtOne},
                      Case{24, 24, 8, 1e8, gen::SigmaDist::LogUniform},
                      Case{40, 20, 8, 1e12, gen::SigmaDist::ClusterAtOne},
                      Case{40, 20, 8, 1e12, gen::SigmaDist::LogUniform}));
