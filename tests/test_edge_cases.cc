// Edge cases and failure injection across the public API: degenerate sizes,
// tiles larger than the matrix, misuse detection, engine reuse after
// numerical failures.

#include <gtest/gtest.h>

#include "core/qdwh.hh"
#include "core/qdwh_svd.hh"
#include "core/zolopd.hh"
#include "gen/matgen.hh"
#include "linalg/geqrf.hh"
#include "linalg/potrf.hh"
#include "ref/dense.hh"
#include "test_util.hh"

using namespace tbp;

template <typename T>
class EdgeCases : public ::testing::Test {};
TYPED_TEST_SUITE(EdgeCases, test::AllTypes);

TYPED_TEST(EdgeCases, OneByOneQdwh) {
    using T = TypeParam;
    rt::Engine eng(2);
    TiledMatrix<T> A(1, 1, 8);
    A.at(0, 0) = from_real<T>(real_t<T>(-2.5));
    TiledMatrix<T> H(1, 1, 8);
    qdwh(eng, A, H);
    // Polar of a negative scalar: U = -1 (real) or unit phase, H = |a|.
    EXPECT_NEAR(std::abs(A.at(0, 0)), real_t<T>(1), test::tol<T>(10));
    EXPECT_NEAR(real_part(H.at(0, 0)), real_t<T>(2.5), test::tol<T>(100));
}

TYPED_TEST(EdgeCases, ComplexScalarPolarIsPhase) {
    using T = TypeParam;
    if constexpr (is_complex_v<T>) {
        rt::Engine eng(2);
        TiledMatrix<T> A(1, 1, 4);
        A.at(0, 0) = T(3, 4);  // |a| = 5, phase (3+4i)/5
        TiledMatrix<T> H(1, 1, 4);
        qdwh(eng, A, H);
        EXPECT_NEAR(std::abs(A.at(0, 0) - T(0.6, 0.8)), real_t<T>(0),
                    test::tol<T>(100));
        EXPECT_NEAR(real_part(H.at(0, 0)), real_t<T>(5), test::tol<T>(500));
    }
}

TYPED_TEST(EdgeCases, SingleColumnMatrix) {
    // m x 1: U_p = a/||a||, H = ||a||.
    using T = TypeParam;
    rt::Engine eng(2);
    int const m = 17;
    TiledMatrix<T> A(m, 1, 4);
    real_t<T> nrm(0);
    CounterRng rng(7);
    for (int i = 0; i < m; ++i) {
        A.at(i, 0) = rng.gaussian<T>(static_cast<std::uint64_t>(i));
        nrm += abs_sq(A.at(i, 0));
    }
    nrm = std::sqrt(nrm);
    auto A0 = ref::to_dense(A);
    TiledMatrix<T> H(1, 1, 4);
    qdwh(eng, A, H);
    EXPECT_NEAR(real_part(H.at(0, 0)), nrm, test::tol<T>(500) * nrm);
    for (int i = 0; i < m; ++i)
        EXPECT_NEAR(std::abs(A.at(i, 0) - A0(i, 0) / from_real<T>(nrm)),
                    real_t<T>(0), test::tol<T>(500));
}

TYPED_TEST(EdgeCases, TileLargerThanMatrix) {
    using T = TypeParam;
    rt::Engine eng(2);
    gen::MatGenOptions opt;
    opt.cond = 10;
    opt.seed = 301;
    auto A = gen::cond_matrix<T>(eng, 7, 5, 64, opt);  // one tile holds all
    auto Ad = ref::to_dense(A);
    TiledMatrix<T> H(5, 5, 64);
    qdwh(eng, A, H);
    auto U = ref::to_dense(A);
    EXPECT_LE(ref::orthogonality(U), test::tol<T>(500));
    auto UH = ref::gemm(Op::NoTrans, Op::NoTrans, T(1), U, ref::to_dense(H));
    EXPECT_LE(ref::diff_fro(UH, Ad), test::tol<T>(500) * (1 + ref::norm_fro(Ad)));
}

TYPED_TEST(EdgeCases, WideMatrixRejected) {
    using T = TypeParam;
    rt::Engine eng(2);
    TiledMatrix<T> A(4, 9, 4);  // m < n violates the contract
    TiledMatrix<T> H(9, 9, 4);
    EXPECT_THROW(qdwh(eng, A, H), Error);
}

TYPED_TEST(EdgeCases, WrongHShapeRejected) {
    using T = TypeParam;
    rt::Engine eng(2);
    gen::MatGenOptions opt;
    opt.seed = 302;
    opt.cond = 10;
    auto A = gen::cond_matrix<T>(eng, 8, 8, 4, opt);
    TiledMatrix<T> H(6, 6, 4);  // wrong size
    EXPECT_THROW(qdwh(eng, A, H), Error);
}

TYPED_TEST(EdgeCases, EngineReusableAfterNumericalFailure) {
    // A potrf failure inside tasks must not poison the engine for later work.
    using T = TypeParam;
    rt::Engine eng(3);
    TiledMatrix<T> Bad(6, 6, 3);
    la::set(eng, T(0), T(-1), Bad);
    EXPECT_THROW(
        {
            la::potrf(eng, Uplo::Lower, Bad);
            eng.wait();
        },
        Error);

    gen::MatGenOptions opt;
    opt.cond = 10;
    opt.seed = 303;
    auto A = gen::cond_matrix<T>(eng, 10, 10, 4, opt);
    TiledMatrix<T> H(10, 10, 4);
    EXPECT_NO_THROW(qdwh(eng, A, H));
}

TYPED_TEST(EdgeCases, GeqrfSingleColumn) {
    using T = TypeParam;
    rt::Engine eng(2);
    int const m = 11;
    TiledMatrix<T> A(m, 1, 3);
    for (int i = 0; i < m; ++i)
        A.at(i, 0) = from_real<T>(real_t<T>(i + 1));
    real_t<T> nrm(0);
    for (int i = 0; i < m; ++i)
        nrm += real_t<T>((i + 1) * (i + 1));
    nrm = std::sqrt(nrm);
    auto Tm = la::alloc_qr_t(A);
    la::geqrf(eng, A, Tm);
    eng.wait();
    EXPECT_NEAR(std::abs(A.at(0, 0)), nrm, test::tol<T>(100) * nrm);
}

TYPED_TEST(EdgeCases, IdentityInputConvergesImmediately) {
    using T = TypeParam;
    rt::Engine eng(2);
    int const n = 12;
    TiledMatrix<T> A(n, n, 4);
    la::set_identity(eng, A);
    TiledMatrix<T> H(n, n, 4);
    auto info = qdwh(eng, A, H);
    EXPECT_LE(info.iterations, 3);
    EXPECT_EQ(info.it_qr, 0);
    for (int i = 0; i < n; ++i) {
        EXPECT_NEAR(std::abs(A.at(i, i)), real_t<T>(1), test::tol<T>(50));
        EXPECT_NEAR(real_part(H.at(i, i)), real_t<T>(1), test::tol<T>(50));
    }
}

TYPED_TEST(EdgeCases, NearSingularStillConverges) {
    // kappa at the edge of the precision's representable conditioning.
    using T = TypeParam;
    using R = real_t<T>;
    rt::Engine eng(3);
    gen::MatGenOptions opt;
    opt.cond = std::is_same_v<R, float> ? 3e7 : 3e16;
    opt.seed = 304;
    int const n = 20, nb = 8;
    auto A = gen::cond_matrix<T>(eng, n, n, nb, opt);
    TiledMatrix<T> H(n, n, nb);
    auto info = qdwh(eng, A, H);
    auto U = ref::to_dense(A);
    EXPECT_LE(ref::orthogonality(U) / std::sqrt(R(n)), test::tol<T>(200));
    EXPECT_LE(info.iterations, 8);
}

TYPED_TEST(EdgeCases, StatusVariantsReportInsteadOfThrowing) {
    // The status-returning entry points used by the service layer: the
    // same failures that make qdwh()/zolo_pd() throw come back as codes.
    using T = TypeParam;
    rt::Engine eng(2);

    {  // zero matrix: no unique polar factor
        TiledMatrix<T> A(8, 8, 4);
        la::set(eng, T(0), T(0), A);
        TiledMatrix<T> H(8, 8, 4);
        QdwhInfo info;
        EXPECT_EQ(qdwh_status(eng, A, H, info, {}), Status::ZeroMatrix);
        EXPECT_FALSE(info.converged);
    }
    {  // non-convergence: max_iter too small for the conditioning
        gen::MatGenOptions opt;
        opt.cond = 1e6;
        opt.seed = 401;
        auto A = gen::cond_matrix<T>(eng, 16, 16, 8, opt);
        TiledMatrix<T> H(16, 16, 8);
        QdwhOptions qo;
        qo.max_iter = 1;
        QdwhInfo info;
        EXPECT_EQ(qdwh_status(eng, A, H, info, qo), Status::NotConverged);
        EXPECT_FALSE(info.converged);
        EXPECT_EQ(info.iterations, 1);
    }
    {  // invalid dimensions: wide input
        TiledMatrix<T> A(4, 9, 4);
        TiledMatrix<T> H(9, 9, 4);
        QdwhInfo info;
        EXPECT_EQ(qdwh_status(eng, A, H, info, {}),
                  Status::InvalidArgument);
    }
    {  // success still reports through the same path
        gen::MatGenOptions opt;
        opt.cond = 1e3;
        opt.seed = 402;
        auto A = gen::cond_matrix<T>(eng, 12, 12, 4, opt);
        TiledMatrix<T> H(12, 12, 4);
        QdwhInfo info;
        EXPECT_EQ(qdwh_status(eng, A, H, info, {}), Status::Ok);
        EXPECT_TRUE(info.converged);
        EXPECT_GT(info.iterations, 0);
    }
}

TYPED_TEST(EdgeCases, ZoloStatusVariants) {
    using T = TypeParam;
    rt::Engine eng(2);
    {
        TiledMatrix<T> A(8, 8, 4);
        la::set(eng, T(0), T(0), A);
        TiledMatrix<T> H(8, 8, 4);
        ZoloInfo info;
        EXPECT_EQ(zolo_pd_status(eng, A, H, info, {}), Status::ZeroMatrix);
        EXPECT_THROW(zolo_pd(eng, A, H), Error);
    }
    {  // r < 1 is a malformed request, reported not thrown
        TiledMatrix<T> A(8, 8, 4);
        TiledMatrix<T> H(8, 8, 4);
        ZoloOptions zo;
        zo.r = 0;
        ZoloInfo info;
        EXPECT_EQ(zolo_pd_status(eng, A, H, info, zo),
                  Status::InvalidArgument);
    }
}

TYPED_TEST(EdgeCases, ThrowingWrappersCarryClearMessages) {
    // The throwing API's validation errors must name the offending
    // dimensions, not just fail a bare precondition.
    using T = TypeParam;
    rt::Engine eng(2);
    TiledMatrix<T> A(4, 9, 4);
    TiledMatrix<T> H(9, 9, 4);
    try {
        qdwh(eng, A, H);
        FAIL() << "wide matrix accepted";
    } catch (Error const& e) {
        std::string const what = e.what();
        EXPECT_NE(what.find("m=4"), std::string::npos) << what;
        EXPECT_NE(what.find("n=9"), std::string::npos) << what;
    }
    EXPECT_THROW(qdwh_svd(eng, A, {}), Error);

    TiledMatrix<T> empty_mat;
    TiledMatrix<T> empty_h;
    EXPECT_THROW(qdwh(eng, empty_mat, empty_h), Error);
    EXPECT_THROW(qdwh_svd(eng, empty_mat, {}), Error);
    EXPECT_THROW(qdwh_eig(eng, empty_mat), Error);
}
