// SPMD distributed tiled algorithms: SUMMA gemm, herk, Cholesky, the right
// triangular solves, and the fully distributed Cholesky-variant QDWH —
// validated against dense references and the shared-memory solver across
// several process grids.

#include <gtest/gtest.h>

#include "comm/dist_algs.hh"
#include "core/qdwh.hh"
#include "gen/matgen.hh"
#include "ref/dense.hh"
#include "test_util.hh"

using namespace tbp;

namespace {

template <typename T>
ref::Dense<T> gather(comm::DistMatrix<T>& A, comm::Communicator& c) {
    // Every rank contributes its tiles through rank-0 via messages would be
    // overkill for tests; instead each test collects on every rank by
    // allreducing a dense image (zeros where remote).
    ref::Dense<T> D(A.m(), A.n());
    std::int64_t row0 = 0;
    for (int i = 0; i < A.mt(); ++i) {
        std::int64_t col0 = 0;
        for (int j = 0; j < A.nt(); ++j) {
            if (A.is_local(i, j)) {
                auto t = A.tile(i, j);
                for (int cc = 0; cc < t.nb(); ++cc)
                    for (int rr = 0; rr < t.mb(); ++rr)
                        D(row0 + rr, col0 + cc) = t(rr, cc);
            }
            col0 += A.tile_nb(j);
        }
        row0 += A.tile_mb(i);
    }
    std::vector<T> buf(static_cast<size_t>(A.m()) * A.n());
    for (std::int64_t j = 0; j < A.n(); ++j)
        for (std::int64_t i = 0; i < A.m(); ++i)
            buf[static_cast<size_t>(i + j * A.m())] = D(i, j);
    c.allreduce_sum(buf);
    for (std::int64_t j = 0; j < A.n(); ++j)
        for (std::int64_t i = 0; i < A.m(); ++i)
            D(i, j) = buf[static_cast<size_t>(i + j * A.m())];
    return D;
}

}  // namespace

TEST(DistAlgs, SummaGemmMatchesDense) {
    using T = double;
    int const m = 18, k = 14, n = 11, nb = 4;
    auto Da = ref::random_dense<T>(m, k, 201);
    auto Db = ref::random_dense<T>(k, n, 202);
    auto Dc = ref::random_dense<T>(m, n, 203);
    auto Cref = ref::gemm(Op::NoTrans, Op::NoTrans, 2.0, Da, Db);
    for (int j = 0; j < n; ++j)
        for (int i = 0; i < m; ++i)
            Cref(i, j) -= Dc(i, j);  // beta = -1

    for (auto [p, q] : {std::pair{1, 1}, {2, 2}, {3, 2}}) {
        Grid g{p, q};
        comm::World world(g.size());
        double err = -1;
        world.run([&](comm::Communicator& c) {
            comm::DistMatrix<T> A(c, m, k, nb, g), B(c, k, n, nb, g),
                C(c, m, n, nb, g);
            A.fill([&](std::int64_t i, std::int64_t j) { return Da(i, j); });
            B.fill([&](std::int64_t i, std::int64_t j) { return Db(i, j); });
            C.fill([&](std::int64_t i, std::int64_t j) { return Dc(i, j); });
            comm::dist_gemm(c, g, 2.0, A, B, -1.0, C);
            auto D = gather(C, c);
            if (c.rank() == 0)
                err = ref::diff_fro(D, Cref);
        });
        EXPECT_LE(err, 1e-12 * (1 + ref::norm_fro(Cref))) << p << "x" << q;
    }
}

TEST(DistAlgs, HerkMatchesDense) {
    using T = double;
    int const m = 15, n = 12, nb = 4;
    auto Da = ref::random_dense<T>(m, n, 204);
    auto P = ref::gemm(Op::ConjTrans, Op::NoTrans, 3.0, Da, Da);
    for (int i = 0; i < n; ++i)
        P(i, i) += 1.0;  // beta = 1 applied to identity C

    Grid g{2, 2};
    comm::World world(4);
    double err = -1;
    world.run([&](comm::Communicator& c) {
        comm::DistMatrix<T> A(c, m, n, nb, g), C(c, n, n, nb, g);
        A.fill([&](std::int64_t i, std::int64_t j) { return Da(i, j); });
        comm::dist_set_identity(C);
        comm::dist_herk(c, g, 3.0, A, 1.0, C);
        auto D = gather(C, c);
        if (c.rank() == 0) {
            double e = 0;
            for (int j = 0; j < n; ++j)
                for (int i = j; i < n; ++i)
                    e += abs_sq(D(i, j) - P(i, j));
            err = std::sqrt(e);
        }
    });
    EXPECT_LE(err, 1e-12 * (1 + ref::norm_fro(P)));
}

TEST(DistAlgs, PotrfMatchesDense) {
    using T = double;
    int const n = 16, nb = 4;
    auto B = ref::random_dense<T>(n, n, 205);
    auto Dz = ref::gemm(Op::NoTrans, Op::ConjTrans, 1.0, B, B);
    for (int i = 0; i < n; ++i)
        Dz(i, i) += n;

    for (auto [p, q] : {std::pair{2, 2}, {1, 3}}) {
        Grid g{p, q};
        comm::World world(g.size());
        double err = -1;
        world.run([&](comm::Communicator& c) {
            comm::DistMatrix<T> Z(c, n, n, nb, g);
            Z.fill([&](std::int64_t i, std::int64_t j) { return Dz(i, j); });
            comm::dist_potrf(c, g, Z);
            auto L = gather(Z, c);
            if (c.rank() == 0) {
                for (int j = 0; j < n; ++j)
                    for (int i = 0; i < j; ++i)
                        L(i, j) = 0.0;
                auto R = ref::gemm(Op::NoTrans, Op::ConjTrans, 1.0, L, L);
                err = ref::diff_fro(R, Dz);
            }
        });
        EXPECT_LE(err, 1e-11 * (1 + ref::norm_fro(Dz))) << p << "x" << q;
    }
}

TEST(DistAlgs, TrsmRightLowerBothOps) {
    using T = double;
    int const m = 14, n = 10, nb = 4;
    auto Dl = ref::random_dense<T>(n, n, 206);
    for (int j = 0; j < n; ++j) {
        Dl(j, j) += 2 * n;
        for (int i = 0; i < j; ++i)
            Dl(i, j) = 0.0;
    }
    auto Dx = ref::random_dense<T>(m, n, 207);

    Grid g{2, 2};
    comm::World world(4);
    ref::Dense<T> X;
    world.run([&](comm::Communicator& c) {
        comm::DistMatrix<T> Z(c, n, n, nb, g), Xd(c, m, n, nb, g);
        Z.fill([&](std::int64_t i, std::int64_t j) { return Dl(i, j); });
        Xd.fill([&](std::int64_t i, std::int64_t j) { return Dx(i, j); });
        comm::dist_trsm_right_lower(c, g, Op::ConjTrans, Z, Xd);
        comm::dist_trsm_right_lower(c, g, Op::NoTrans, Z, Xd);
        auto D = gather(Xd, c);
        if (c.rank() == 0)
            X = D;
    });
    // X (L L^H) must reproduce the original right-hand side.
    auto ZZ = ref::gemm(Op::NoTrans, Op::ConjTrans, 1.0, Dl, Dl);
    auto P = ref::gemm(Op::NoTrans, Op::NoTrans, 1.0, X, ZZ);
    EXPECT_LE(ref::diff_fro(P, Dx), 1e-10 * (1 + ref::norm_fro(Dx)));
}

TEST(DistAlgs, DistributedQdwhMatchesSharedMemory) {
    using T = double;
    int const n = 20, nb = 4;
    gen::MatGenOptions opt;
    opt.cond = 15.0;  // well-conditioned enough for the Cholesky-only path
    opt.seed = 208;

    // Shared-memory reference result.
    rt::Engine eng(3);
    auto At = gen::cond_matrix<T>(eng, n, n, nb, opt);
    auto Ad = ref::to_dense(At);
    TiledMatrix<T> H(n, n, nb);
    QdwhOptions o;
    o.condest_override = 1.0 / opt.cond;
    qdwh(eng, At, H, o);
    auto Uref = ref::to_dense(At);

    for (auto [p, q] : {std::pair{2, 2}, {3, 2}}) {
        Grid g{p, q};
        comm::World world(g.size());
        ref::Dense<T> U;
        comm::DistQdwhInfo info;
        world.run([&](comm::Communicator& c) {
            comm::DistMatrix<T> A(c, n, n, nb, g);
            A.fill([&](std::int64_t i, std::int64_t j) { return Ad(i, j); });
            auto inf = comm::dist_qdwh_chol(c, g, A, 1.0 / opt.cond);
            auto D = gather(A, c);
            if (c.rank() == 0) {
                U = D;
                info = inf;
            }
        });
        EXPECT_LE(ref::diff_fro(U, Uref), 1e-11) << p << "x" << q;
        EXPECT_LE(ref::orthogonality(U), 1e-12 * n) << p << "x" << q;
        EXPECT_GE(info.iterations, 2);
        EXPECT_LE(info.iterations, 6);
    }
}
