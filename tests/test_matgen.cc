// Matrix generator (Section 7.1): orthonormal factors, embedded singular
// values, achieved condition number, reproducibility, distributions.

#include <gtest/gtest.h>

#include "gen/matgen.hh"
#include "linalg/gemm.hh"
#include "ref/dense.hh"
#include "test_util.hh"

using namespace tbp;

template <typename T>
class MatGen : public ::testing::Test {};
TYPED_TEST_SUITE(MatGen, test::AllTypes);

TYPED_TEST(MatGen, OrthonormalColumns) {
    using T = TypeParam;
    rt::Engine eng(3);
    auto Q = gen::random_orthonormal<T>(eng, 20, 12, 5, 61);
    EXPECT_LE(ref::orthogonality(ref::to_dense(Q)), test::tol<T>(500) * 20);
}

TYPED_TEST(MatGen, SigmaProfiles) {
    using R = real_t<TypeParam>;
    gen::MatGenOptions opt;
    opt.cond = 1e4;
    for (auto dist : {gen::SigmaDist::Geometric, gen::SigmaDist::Arithmetic,
                      gen::SigmaDist::ClusterAtOne, gen::SigmaDist::LogUniform}) {
        opt.dist = dist;
        auto s = gen::sigma_values<R>(10, opt);
        EXPECT_NEAR(s.front(), R(1), R(1e-6));
        EXPECT_NEAR(s.back(), R(1e-4), R(1e-6));
        for (size_t i = 1; i < s.size(); ++i)
            EXPECT_LE(s[i], s[i - 1] * (1 + 1e-6));
    }
}

TYPED_TEST(MatGen, SingularValuesEmbedded) {
    // A^H A should have eigenvalues sigma_i^2: check trace and det-ish
    // invariants cheaply: ||A||_F^2 == sum sigma_i^2.
    using T = TypeParam;
    rt::Engine eng(3);
    gen::MatGenOptions opt;
    opt.cond = 100;
    opt.seed = 62;
    int const n = 16;
    auto A = gen::cond_matrix<T>(eng, n, n, 5, opt);
    auto s = gen::sigma_values<real_t<T>>(n, opt);
    real_t<T> sum_sq(0);
    for (auto v : s)
        sum_sq += v * v;
    auto fro = ref::norm_fro(ref::to_dense(A));
    EXPECT_NEAR(fro * fro, sum_sq, test::tol<T>(5000) * (1 + sum_sq));
}

TYPED_TEST(MatGen, Reproducible) {
    using T = TypeParam;
    rt::Engine eng(3);
    gen::MatGenOptions opt;
    opt.seed = 63;
    opt.cond = 10;
    auto A = gen::cond_matrix<T>(eng, 12, 8, 4, opt);
    auto B = gen::cond_matrix<T>(eng, 12, 8, 4, opt);
    EXPECT_EQ(ref::diff_fro(ref::to_dense(A), ref::to_dense(B)), real_t<T>(0));
}

TYPED_TEST(MatGen, TilingIndependent) {
    // Same (m, n, seed) must give the same matrix for any tile size.
    using T = TypeParam;
    rt::Engine eng(3);
    TiledMatrix<T> A(14, 9, 3), B(14, 9, 6);
    gen::fill_gaussian(eng, A, 64);
    gen::fill_gaussian(eng, B, 64);
    eng.wait();
    EXPECT_EQ(ref::diff_fro(ref::to_dense(A), ref::to_dense(B)), real_t<T>(0));
}

TYPED_TEST(MatGen, ScaleColsWorks) {
    using T = TypeParam;
    rt::Engine eng(2);
    TiledMatrix<T> A(6, 4, 3);
    la::set(eng, T(1), T(1), A);
    std::vector<real_t<T>> s{1, 2, 3, 4};
    gen::scale_cols(eng, A, s);
    for (int j = 0; j < 4; ++j)
        EXPECT_EQ(A.at(0, j), from_real<T>(s[static_cast<size_t>(j)]));
}

TYPED_TEST(MatGen, RectangularCondMatrix) {
    using T = TypeParam;
    rt::Engine eng(3);
    gen::MatGenOptions opt;
    opt.cond = 50;
    opt.seed = 65;
    auto A = gen::cond_matrix<T>(eng, 21, 10, 4, opt);
    EXPECT_EQ(A.m(), 21);
    EXPECT_EQ(A.n(), 10);
    // Columns remain bounded by sigma_max = 1 in 2-norm: fro <= sqrt(n).
    EXPECT_LE(ref::norm_fro(ref::to_dense(A)),
              std::sqrt(real_t<T>(10)) * (1 + test::tol<T>(100)));
}
