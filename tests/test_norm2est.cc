// norm2est (Algorithm 2): accuracy within the documented tolerance against
// true singular values from the generator, plus edge cases.

#include <gtest/gtest.h>

#include "comm/dist.hh"
#include "cond/norm2est.hh"
#include "gen/matgen.hh"
#include "linalg/util.hh"
#include "ref/dense.hh"
#include "test_util.hh"

using namespace tbp;

template <typename T>
class Norm2est : public ::testing::Test {};
TYPED_TEST_SUITE(Norm2est, test::AllTypes);

TYPED_TEST(Norm2est, KnownSigmaMax) {
    using T = TypeParam;
    rt::Engine eng(3);
    gen::MatGenOptions opt;
    opt.cond = 100.0;
    opt.seed = 7;
    auto A = gen::cond_matrix<T>(eng, 30, 20, 8, opt);
    auto e = cond::norm2est(eng, A);
    // sigma_max = 1 by construction; tol 0.1 on the iteration, the paper
    // accepts a factor-5 band. Power iteration converges from below.
    EXPECT_GT(e, real_t<T>(0.5));
    EXPECT_LT(e, real_t<T>(1.5));
}

TYPED_TEST(Norm2est, DiagonalMatrixExact) {
    using T = TypeParam;
    rt::Engine eng(2);
    TiledMatrix<T> A(12, 12, 4);
    for (int i = 0; i < 12; ++i)
        A.at(i, i) = from_real<T>(static_cast<real_t<T>>(i + 1));
    auto e = cond::norm2est(eng, A);
    EXPECT_NEAR(e, real_t<T>(12), real_t<T>(12) * 0.15);
}

TYPED_TEST(Norm2est, ZeroMatrix) {
    using T = TypeParam;
    rt::Engine eng(2);
    TiledMatrix<T> A(8, 8, 4);
    EXPECT_EQ(cond::norm2est(eng, A), real_t<T>(0));
}

TYPED_TEST(Norm2est, RankOne) {
    using T = TypeParam;
    rt::Engine eng(2);
    TiledMatrix<T> A(10, 6, 4);
    // A = 3 u v^T with unit u, v: sigma_max = 3.
    for (int j = 0; j < 6; ++j)
        for (int i = 0; i < 10; ++i)
            A.at(i, j) = from_real<T>(real_t<T>(3.0)
                                      / std::sqrt(real_t<T>(60)));
    auto e = cond::norm2est(eng, A);
    EXPECT_NEAR(e, real_t<T>(3), real_t<T>(0.3));
}

TYPED_TEST(Norm2est, ScalesLinearly) {
    using T = TypeParam;
    rt::Engine eng(3);
    gen::MatGenOptions opt;
    opt.cond = 10.0;
    opt.seed = 8;
    auto A = gen::cond_matrix<T>(eng, 16, 16, 4, opt);
    auto e1 = cond::norm2est(eng, A);
    la::scale(eng, from_real<T>(real_t<T>(7)), A);
    auto e7 = cond::norm2est(eng, A);
    EXPECT_NEAR(e7 / e1, real_t<T>(7), real_t<T>(0.5));
}

TYPED_TEST(Norm2est, BoundedByFroAndAboveMaxColNorm) {
    // sigma_max <= ||A||_F always; the estimate must respect it loosely.
    using T = TypeParam;
    rt::Engine eng(2);
    auto D = ref::random_dense<T>(15, 11, 9);
    auto A = ref::to_tiled(D, 4);
    auto e = cond::norm2est(eng, A);
    EXPECT_LE(e, ref::norm_fro(D) * real_t<T>(1.01));
    EXPECT_GT(e, real_t<T>(0));
}

TEST(Norm2estDist, MatchesSharedMemory) {
    // Distributed Algorithm 2 over virtual ranks == shared-memory result.
    using T = double;
    int const m = 24, n = 17, nb = 4;
    auto D = ref::random_dense<T>(m, n, 10);

    rt::Engine eng(2);
    auto A = ref::to_tiled(D, nb);
    double const e_shared = cond::norm2est(eng, A);

    for (auto [p, q] : {std::pair{1, 1}, {2, 2}, {3, 2}}) {
        comm::World world(p * q);
        std::vector<double> est(static_cast<size_t>(p * q), 0.0);
        world.run([&](comm::Communicator& c) {
            comm::DistMatrix<T> Ad(c, m, n, nb, Grid{p, q});
            Ad.fill([&](std::int64_t i, std::int64_t j) { return D(i, j); });
            est[static_cast<size_t>(c.rank())] = comm::dist_norm2est(c, Ad);
        });
        // Every rank returns the identical value (deterministic reduction)...
        for (int r = 1; r < p * q; ++r)
            EXPECT_EQ(est[static_cast<size_t>(r)], est[0])
                << "grid " << p << "x" << q << " rank " << r;
        // ...agreeing with the shared-memory estimator up to reduction-order
        // rounding.
        EXPECT_NEAR(est[0], e_shared, 1e-6 * e_shared)
            << "grid " << p << "x" << q;
    }
}
