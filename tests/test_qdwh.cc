// QDWH polar decomposition (Algorithm 1): the paper's accuracy criteria as
// assertions, iteration-count invariants from Section 4, execution-mode
// equivalence, rectangular and all-type coverage.

#include <gtest/gtest.h>

#include <cmath>

#include "blas/factor.hh"
#include "core/qdwh.hh"
#include "gen/matgen.hh"
#include "ref/dense.hh"
#include "test_util.hh"

using namespace tbp;

template <typename T>
class Qdwh : public ::testing::Test {};
TYPED_TEST_SUITE(Qdwh, test::AllTypes);

namespace {

/// Paper metrics: orthogonality ||I - U^H U||_F / sqrt(n) and backward error
/// ||A - U H||_F / ||A||_F.
template <typename T>
struct PolarErrors {
    real_t<T> orth;
    real_t<T> backward;
};

template <typename T>
PolarErrors<T> polar_errors(ref::Dense<T> const& A, ref::Dense<T> const& U,
                            ref::Dense<T> const& H) {
    auto const n = U.n();
    PolarErrors<T> e;
    e.orth = ref::orthogonality(U) / std::sqrt(static_cast<real_t<T>>(n));
    auto UH = ref::gemm(Op::NoTrans, Op::NoTrans, T(1), U, H);
    e.backward = ref::diff_fro(UH, A) / ref::norm_fro(A);
    return e;
}

template <typename T>
QdwhInfo run_qdwh(rt::Engine& eng, TiledMatrix<T>& A, TiledMatrix<T>& H,
                  QdwhOptions opts = {}) {
    return qdwh(eng, A, H, opts);
}

}  // namespace

TYPED_TEST(Qdwh, IllConditionedSquare) {
    using T = TypeParam;
    using R = real_t<T>;
    rt::Engine eng(3);
    gen::MatGenOptions opt;
    opt.cond = test::ill_cond<T>();
    opt.seed = 71;
    int const n = 29, nb = 8;
    auto A = gen::cond_matrix<T>(eng, n, n, nb, opt);
    auto Ad = ref::to_dense(A);
    TiledMatrix<T> H(n, n, nb);

    auto info = run_qdwh(eng, A, H);
    auto e = polar_errors(Ad, ref::to_dense(A), ref::to_dense(H));
    EXPECT_LE(e.orth, test::tol<T>(100));
    EXPECT_LE(e.backward, test::tol<T>(100));
    // Section 4: at most 6 iterations for ill-conditioned double-precision
    // input; QR-based iterations must engage for this conditioning.
    bool const is_float = std::is_same_v<R, float>;
    EXPECT_LE(info.iterations, is_float ? 7 : 6);
    EXPECT_GE(info.it_qr, 1);
    EXPECT_GE(info.it_chol, 1);
}

TYPED_TEST(Qdwh, WellConditionedUsesCholeskyOnly) {
    using T = TypeParam;
    rt::Engine eng(3);
    gen::MatGenOptions opt;
    opt.cond = 1.5;  // near-orthogonal input
    opt.seed = 72;
    int const n = 24, nb = 8;
    auto A = gen::cond_matrix<T>(eng, n, n, nb, opt);
    auto Ad = ref::to_dense(A);
    TiledMatrix<T> H(n, n, nb);
    auto info = run_qdwh(eng, A, H);
    EXPECT_EQ(info.it_qr, 0);  // Section 4: well-conditioned -> no QR steps
    // The conservative trcondest-based l0 can cost one extra iteration over
    // the paper's "two Cholesky" claim (see WellConditionedExactBound).
    EXPECT_LE(info.it_chol, 4);
    auto e = polar_errors(Ad, ref::to_dense(A), ref::to_dense(H));
    EXPECT_LE(e.orth, test::tol<T>(100));
    EXPECT_LE(e.backward, test::tol<T>(100));
}

TYPED_TEST(Qdwh, Rectangular) {
    using T = TypeParam;
    rt::Engine eng(3);
    gen::MatGenOptions opt;
    opt.cond = 1e4;
    opt.seed = 73;
    int const m = 37, n = 17, nb = 8;
    auto A = gen::cond_matrix<T>(eng, m, n, nb, opt);
    auto Ad = ref::to_dense(A);
    TiledMatrix<T> H(n, n, nb);
    run_qdwh(eng, A, H);
    auto e = polar_errors(Ad, ref::to_dense(A), ref::to_dense(H));
    EXPECT_LE(e.orth, test::tol<T>(100));
    EXPECT_LE(e.backward, test::tol<T>(100));
}

TYPED_TEST(Qdwh, RectangularUnevenTiles) {
    using T = TypeParam;
    rt::Engine eng(3);
    gen::MatGenOptions opt;
    opt.cond = 100;
    opt.seed = 74;
    int const m = 23, n = 11, nb = 4;  // neither divides nb
    auto A = gen::cond_matrix<T>(eng, m, n, nb, opt);
    auto Ad = ref::to_dense(A);
    TiledMatrix<T> H(n, n, nb);
    run_qdwh(eng, A, H);
    auto e = polar_errors(Ad, ref::to_dense(A), ref::to_dense(H));
    EXPECT_LE(e.orth, test::tol<T>(100));
    EXPECT_LE(e.backward, test::tol<T>(100));
}

TYPED_TEST(Qdwh, HpdInputGivesIdentityU) {
    using T = TypeParam;
    rt::Engine eng(3);
    int const n = 16, nb = 8;
    auto A = gen::hpd_matrix<T>(eng, n, nb, 75);
    TiledMatrix<T> H(n, n, nb);
    run_qdwh(eng, A, H);
    auto U = ref::to_dense(A);
    auto I = ref::identity<T>(n);
    EXPECT_LE(ref::diff_fro(U, I), test::tol<T>(5000) * n);
}

TYPED_TEST(Qdwh, HIsHermitianPsd) {
    using T = TypeParam;
    rt::Engine eng(3);
    gen::MatGenOptions opt;
    opt.cond = 1e3;
    opt.seed = 76;
    int const n = 20, nb = 8;
    auto A = gen::cond_matrix<T>(eng, n, n, nb, opt);
    TiledMatrix<T> H(n, n, nb);
    run_qdwh(eng, A, H);
    auto Hd = ref::to_dense(H);
    // Exactly Hermitian after symmetrization.
    for (int j = 0; j < n; ++j)
        for (int i = 0; i < n; ++i)
            EXPECT_LE(std::abs(Hd(i, j) - conj_val(Hd(j, i))), test::tol<T>(10));
    // PSD: the shifted Cholesky must succeed (H has sigma(A) as spectrum,
    // min sigma = 1e-3 here, so even unshifted it is PD).
    auto Hs = Hd;
    for (int i = 0; i < n; ++i)
        Hs(i, i) += from_real<T>(test::tol<T>(100));
    EXPECT_NO_THROW(blas::potrf(
        Uplo::Lower,
        Tile<T>(Hs.data(), n, n, n)));
}

TYPED_TEST(Qdwh, ModesAgreeNumerically) {
    using T = TypeParam;
    gen::MatGenOptions opt;
    opt.cond = 1e4;
    opt.seed = 77;
    int const n = 21, nb = 6;
    std::vector<ref::Dense<T>> us;
    for (auto mode : {rt::Mode::TaskDataflow, rt::Mode::ForkJoin,
                      rt::Mode::Sequential}) {
        rt::Engine eng(3, mode);
        auto A = gen::cond_matrix<T>(eng, n, n, nb, opt);
        TiledMatrix<T> H(n, n, nb);
        run_qdwh(eng, A, H);
        us.push_back(ref::to_dense(A));
    }
    // Same task set, deterministic kernels -> identical results.
    EXPECT_EQ(ref::diff_fro(us[0], us[1]), real_t<T>(0));
    EXPECT_EQ(ref::diff_fro(us[0], us[2]), real_t<T>(0));
}

TYPED_TEST(Qdwh, CondestOverrideSkipsEstimation) {
    using T = TypeParam;
    rt::Engine eng(3);
    gen::MatGenOptions opt;
    opt.cond = 1e2;
    opt.seed = 78;
    int const n = 18, nb = 6;
    auto A = gen::cond_matrix<T>(eng, n, n, nb, opt);
    auto Ad = ref::to_dense(A);
    TiledMatrix<T> H(n, n, nb);
    QdwhOptions o;
    o.condest_override = 1e-2;  // the true sigma_min
    auto info = run_qdwh(eng, A, H, o);
    EXPECT_NEAR(info.condest_l0, 1e-2, 1e-9);
    auto e = polar_errors(Ad, ref::to_dense(A), ref::to_dense(H));
    EXPECT_LE(e.orth, test::tol<T>(100));
}

TYPED_TEST(Qdwh, SkipHComputation) {
    using T = TypeParam;
    rt::Engine eng(2);
    gen::MatGenOptions opt;
    opt.cond = 10;
    opt.seed = 79;
    int const n = 12, nb = 6;
    auto A = gen::cond_matrix<T>(eng, n, n, nb, opt);
    QdwhOptions o;
    o.compute_h = false;
    TiledMatrix<T> H;  // intentionally empty
    run_qdwh(eng, A, H, o);
    auto U = ref::to_dense(A);
    EXPECT_LE(ref::orthogonality(U) / std::sqrt(real_t<T>(n)), test::tol<T>(100));
}

TYPED_TEST(Qdwh, PolarFactorMatchesSvdConstruction) {
    // The generator builds A = U Sigma V^H, so U_p = U V^H exactly.
    using T = TypeParam;
    rt::Engine eng(3);
    int const n = 14, nb = 5;
    std::uint64_t const seed = 80;
    auto U = gen::random_orthonormal<T>(eng, n, n, nb, seed * 2 + 1);
    auto V = gen::random_orthonormal<T>(eng, n, n, nb, seed * 2 + 2);
    gen::MatGenOptions opt;
    opt.cond = 1e3;
    opt.seed = seed;
    auto A = gen::cond_matrix<T>(eng, n, n, nb, opt);

    TiledMatrix<T> H(n, n, nb);
    run_qdwh(eng, A, H);

    auto Upol = ref::gemm(Op::NoTrans, Op::ConjTrans, T(1), ref::to_dense(U),
                          ref::to_dense(V));
    EXPECT_LE(ref::diff_fro(ref::to_dense(A), Upol),
              test::tol<T>(20000));
}

TYPED_TEST(Qdwh, ZeroMatrixThrows) {
    using T = TypeParam;
    rt::Engine eng(2);
    TiledMatrix<T> A(8, 8, 4);
    TiledMatrix<T> H(8, 8, 4);
    EXPECT_THROW(run_qdwh(eng, A, H), Error);
}

TYPED_TEST(Qdwh, FlopsNearModel) {
    using T = TypeParam;
    rt::Engine eng(3);
    gen::MatGenOptions opt;
    opt.cond = test::ill_cond<T>();
    opt.seed = 81;
    int const n = 32, nb = 8;
    auto A = gen::cond_matrix<T>(eng, n, n, nb, opt);
    eng.reset_stats();
    TiledMatrix<T> H(n, n, nb);
    auto info = run_qdwh(eng, A, H);
    double const model = tbp::flops::qdwh_model(n, info.it_qr, info.it_chol)
                         * (fma_flops<T>() / 2.0);
    // Measured flops within a factor of ~3 of the model at this small size
    // (tile QR and lower-order terms add overhead the n^3 model ignores).
    EXPECT_GT(info.flops, 0.2 * model);
    EXPECT_LT(info.flops, 4.0 * model);
}

TEST(QdwhDouble, WellConditionedExactBound) {
    // Paper Section 4: "well-conditioned matrices need two Cholesky-based
    // and no QR-based iterations" — holds with the exact sigma_min bound.
    rt::Engine eng(3);
    gen::MatGenOptions opt;
    opt.cond = 1.01;
    opt.seed = 84;
    int const n = 24, nb = 8;
    auto A = gen::cond_matrix<double>(eng, n, n, nb, opt);
    TiledMatrix<double> H(n, n, nb);
    QdwhOptions o;
    o.condest_override = 1.0 / opt.cond;
    auto info = qdwh(eng, A, H, o);
    EXPECT_EQ(info.it_qr, 0);
    EXPECT_EQ(info.it_chol, 2);
}

TEST(QdwhDouble, IterationCountsMatchPaper) {
    // Paper Section 4: kappa = 1e16 in double needs 3 QR + 3 Cholesky.
    rt::Engine eng(3);
    gen::MatGenOptions opt;
    opt.cond = 1e16;
    opt.seed = 82;
    int const n = 40, nb = 8;
    auto A = gen::cond_matrix<double>(eng, n, n, nb, opt);
    TiledMatrix<double> H(n, n, nb);
    auto info = qdwh(eng, A, H);
    EXPECT_EQ(info.iterations, 6);
    EXPECT_EQ(info.it_qr, 3);
    EXPECT_EQ(info.it_chol, 3);
}

TEST(QdwhDouble, LiConvergesToOne) {
    rt::Engine eng(3);
    gen::MatGenOptions opt;
    opt.cond = 1e10;
    opt.seed = 83;
    auto A = gen::cond_matrix<double>(eng, 24, 24, 8, opt);
    TiledMatrix<double> H(24, 24, 8);
    auto info = qdwh(eng, A, H);
    ASSERT_FALSE(info.li_history.empty());
    EXPECT_NEAR(info.li_history.back(), 1.0, 1e-8);
    // L is monotonically non-decreasing toward 1.
    for (size_t i = 1; i < info.li_history.size(); ++i)
        EXPECT_GE(info.li_history[i], info.li_history[i - 1] - 1e-12);
}
