// Tiled flat-tree QR: R correctness, explicit Q orthogonality, A = Q R
// reconstruction, rectangular and stacked (QDWH [sqrt(c) A; I]) shapes,
// unmqr application, mode equivalence.

#include <gtest/gtest.h>

#include "linalg/gemm.hh"
#include "linalg/geqrf.hh"
#include "linalg/util.hh"
#include "ref/dense.hh"
#include "test_util.hh"

using namespace tbp;

template <typename T>
class LaGeqrf : public ::testing::Test {};
TYPED_TEST_SUITE(LaGeqrf, test::AllTypes);

namespace {

template <typename T>
void check_qr(int m, int n, int nb, rt::Mode mode = rt::Mode::TaskDataflow) {
    rt::Engine eng(3, mode);
    auto D = ref::random_dense<T>(m, n, 41);
    auto A = ref::to_tiled(D, nb);
    auto Tm = la::alloc_qr_t(A);
    la::geqrf(eng, A, Tm);
    TiledMatrix<T> Q(m, n, nb);
    la::ungqr(eng, A, Tm, Q);
    eng.wait();

    auto Qd = ref::to_dense(Q);
    // Q has orthonormal columns.
    EXPECT_LE(ref::orthogonality(Qd), test::tol<T>(200) * std::max(m, n))
        << "m=" << m << " n=" << n << " nb=" << nb;

    // Q R == original A (R = upper triangle/trapezoid of factored A).
    ref::Dense<T> R(n, n);
    auto Ad = ref::to_dense(A);
    for (int j = 0; j < n; ++j)
        for (int i = 0; i <= j && i < m; ++i)
            R(i, j) = Ad(i, j);
    auto QR = ref::gemm(Op::NoTrans, Op::NoTrans, T(1), Qd, R);
    EXPECT_LE(ref::diff_fro(QR, D), test::tol<T>(1000) * (1 + ref::norm_fro(D)))
        << "m=" << m << " n=" << n << " nb=" << nb;
}

}  // namespace

TYPED_TEST(LaGeqrf, TallMultiTile) { check_qr<TypeParam>(18, 8, 4); }
TYPED_TEST(LaGeqrf, Square) { check_qr<TypeParam>(12, 12, 4); }
TYPED_TEST(LaGeqrf, SquareUneven) { check_qr<TypeParam>(13, 13, 4); }
TYPED_TEST(LaGeqrf, TallUneven) { check_qr<TypeParam>(19, 7, 5); }
TYPED_TEST(LaGeqrf, SingleTile) { check_qr<TypeParam>(9, 6, 16); }
TYPED_TEST(LaGeqrf, VeryTall) { check_qr<TypeParam>(31, 5, 4); }
TYPED_TEST(LaGeqrf, ForkJoin) { check_qr<TypeParam>(14, 8, 4, rt::Mode::ForkJoin); }
TYPED_TEST(LaGeqrf, Sequential) { check_qr<TypeParam>(14, 8, 4, rt::Mode::Sequential); }

TYPED_TEST(LaGeqrf, StackedQdwhShape) {
    // The QDWH QR iterate: W = [sqrt(c) A; I], (m+n) x n with A's row tiles
    // on top and the identity's square tiles below.
    using T = TypeParam;
    rt::Engine eng(3);
    int const m = 10, n = 6, nb = 4;
    auto D = ref::random_dense<T>(m, n, 42);

    auto rows = TiledMatrix<T>::chop(m, nb);
    auto cols = TiledMatrix<T>::chop(n, nb);
    auto wrows = rows;
    wrows.insert(wrows.end(), cols.begin(), cols.end());
    TiledMatrix<T> W(wrows, cols);
    auto W1 = W.sub(0, 0, static_cast<int>(rows.size()), W.nt());
    auto W2 = W.sub(static_cast<int>(rows.size()), 0,
                    static_cast<int>(cols.size()), W.nt());
    test::dense_to_tiled(D, W1);
    la::set_identity(eng, W2);
    eng.wait();
    auto Worig = ref::to_dense(W);

    auto Tm = la::alloc_qr_t(W);
    la::geqrf(eng, W, Tm);
    TiledMatrix<T> Q(wrows, cols);
    la::ungqr(eng, W, Tm, Q);
    eng.wait();

    auto Qd = ref::to_dense(Q);
    EXPECT_LE(ref::orthogonality(Qd), test::tol<T>(500) * (m + n));
    ref::Dense<T> R(n, n);
    auto Wd = ref::to_dense(W);
    for (int j = 0; j < n; ++j)
        for (int i = 0; i <= j; ++i)
            R(i, j) = Wd(i, j);
    auto QR = ref::gemm(Op::NoTrans, Op::NoTrans, T(1), Qd, R);
    EXPECT_LE(ref::diff_fro(QR, Worig),
              test::tol<T>(1000) * (1 + ref::norm_fro(Worig)));
}

TYPED_TEST(LaGeqrf, StackedTriMatchesDenseOracle) {
    // geqrf_stacked_tri + ungqr_stacked_tri on W = [A; I] must agree with
    // the dense set_identity + geqrf + ungqr oracle to factorization
    // tolerance, for m > n and m = n, even and uneven tilings. The
    // structured path gets an *uninitialized* W2 — proving no task reads a
    // structurally-zero tile before writing it.
    using T = TypeParam;
    for (auto [m, n, nb] : {std::tuple{10, 6, 4}, {8, 8, 4}, {13, 7, 5}}) {
        rt::Engine eng(3);
        auto D = ref::random_dense<T>(m, n, 47);

        auto rows = TiledMatrix<T>::chop(m, nb);
        auto cols = TiledMatrix<T>::chop(n, nb);
        int const mt1 = static_cast<int>(rows.size());
        auto wrows = rows;
        wrows.insert(wrows.end(), cols.begin(), cols.end());

        // Dense oracle.
        TiledMatrix<T> Wo(wrows, cols);
        auto Wo1 = Wo.sub(0, 0, mt1, Wo.nt());
        test::dense_to_tiled(D, Wo1);
        la::set_identity(eng, Wo.sub(mt1, 0, Wo.nt(), Wo.nt()));
        auto To = la::alloc_qr_t(Wo);
        la::geqrf(eng, Wo, To);
        TiledMatrix<T> Qo(wrows, cols);
        la::ungqr(eng, Wo, To, Qo);
        eng.wait();

        // Structured path; garbage-fill W2 to catch reads of "zero" tiles.
        TiledMatrix<T> Ws(wrows, cols);
        auto Ws1 = Ws.sub(0, 0, mt1, Ws.nt());
        test::dense_to_tiled(D, Ws1);
        la::set(eng, T(7), T(-3), Ws.sub(mt1, 0, Ws.nt(), Ws.nt()));
        auto Ts = la::alloc_qr_t(Ws);
        la::geqrf_stacked_tri(eng, Ws, mt1, T(1), Ts);
        TiledMatrix<T> Qs(wrows, cols);
        la::ungqr_stacked_tri(eng, Ws, mt1, Ts, Qs);
        eng.wait();

        auto Qod = ref::to_dense(Qo);
        auto Qsd = ref::to_dense(Qs);
        auto const tol = test::tol<T>(1000) * (m + n);
        EXPECT_LE(ref::orthogonality(Qsd), tol) << "m=" << m << " n=" << n;
        EXPECT_LE(ref::diff_fro(Qsd, Qod), tol) << "m=" << m << " n=" << n;

        // R factors agree (compare upper triangles of W's top block).
        auto Wod = ref::to_dense(Wo);
        auto Wsd = ref::to_dense(Ws);
        real_t<T> rerr(0);
        for (int j = 0; j < n; ++j)
            for (int i = 0; i <= j; ++i)
                rerr += abs_sq(Wsd(i, j) - Wod(i, j));
        EXPECT_LE(std::sqrt(rerr), tol * (1 + ref::norm_fro(D)))
            << "m=" << m << " n=" << n;

        // Q2 = R^{-1} must come out block upper triangular: everything
        // strictly below the global diagonal of the bottom block is zero.
        for (int j = 0; j < n; ++j)
            for (int i = j + 1; i < n; ++i)
                EXPECT_EQ(Qsd(m + i, j), T(0)) << i << "," << j;
    }
}

TYPED_TEST(LaGeqrf, StackedTriReconstructs) {
    // Q R == [A; I] directly from the structured factorization.
    using T = TypeParam;
    rt::Engine eng(3);
    int const m = 9, n = 6, nb = 4;
    auto D = ref::random_dense<T>(m, n, 48);

    auto rows = TiledMatrix<T>::chop(m, nb);
    auto cols = TiledMatrix<T>::chop(n, nb);
    int const mt1 = static_cast<int>(rows.size());
    auto wrows = rows;
    wrows.insert(wrows.end(), cols.begin(), cols.end());
    TiledMatrix<T> W(wrows, cols);
    auto W1 = W.sub(0, 0, mt1, W.nt());
    test::dense_to_tiled(D, W1);
    auto Tm = la::alloc_qr_t(W);
    la::geqrf_stacked_tri(eng, W, mt1, T(1), Tm);
    TiledMatrix<T> Q(wrows, cols);
    la::ungqr_stacked_tri(eng, W, mt1, Tm, Q);
    eng.wait();

    auto Qd = ref::to_dense(Q);
    auto Wd = ref::to_dense(W);
    ref::Dense<T> R(n, n);
    for (int j = 0; j < n; ++j)
        for (int i = 0; i <= j; ++i)
            R(i, j) = Wd(i, j);
    auto QR = ref::gemm(Op::NoTrans, Op::NoTrans, T(1), Qd, R);
    ref::Dense<T> Orig(m + n, n);
    for (int j = 0; j < n; ++j) {
        for (int i = 0; i < m; ++i)
            Orig(i, j) = D(i, j);
        Orig(m + j, j) = T(1);
    }
    EXPECT_LE(ref::diff_fro(QR, Orig),
              test::tol<T>(1000) * (1 + ref::norm_fro(Orig)));
}

TYPED_TEST(LaGeqrf, AllocQrTSizesShortRows) {
    // A rectangular matrix with a short bottom row tile: the T workspace
    // must still hold a full panel-width factor for every tsqrt row (a
    // short folded tile produces one reflector per panel column), while
    // the short diagonal row itself needs only min(mb, nb) rows. This is a
    // regression test for the over/under-allocation in alloc_qr_t.
    using T = TypeParam;
    int const m = 14, n = 14, nb = 4;  // rows: 4,4,4,2
    auto D = ref::random_dense<T>(m, n, 49);
    auto A = ref::to_tiled(D, nb);
    auto Tm = la::alloc_qr_t(A);
    // Row 3 is 2 rows tall but is tsqrt-folded by panels 0..2 (width 4).
    EXPECT_EQ(Tm.tile_mb(3), 4);
    // Row 0 only holds its own geqrt factor: full nb.
    EXPECT_EQ(Tm.tile_mb(0), 4);
    rt::Engine eng(3);
    la::geqrf(eng, A, Tm);
    TiledMatrix<T> Q(m, n, nb);
    la::ungqr(eng, A, Tm, Q);
    eng.wait();
    EXPECT_LE(ref::orthogonality(ref::to_dense(Q)), test::tol<T>(500) * m);
}

TYPED_TEST(LaGeqrf, UnmqrAppliesQh) {
    // unmqr(ConjTrans) on the original A must reproduce [R; 0].
    using T = TypeParam;
    rt::Engine eng(3);
    int const m = 14, n = 6, nb = 4;
    auto D = ref::random_dense<T>(m, n, 43);
    auto A = ref::to_tiled(D, nb);
    auto Tm = la::alloc_qr_t(A);
    la::geqrf(eng, A, Tm);

    auto C = ref::to_tiled(D, nb);
    la::unmqr(eng, Op::ConjTrans, A, Tm, C);
    eng.wait();

    auto Cd = ref::to_dense(C);
    auto Ad = ref::to_dense(A);
    // Top triangle equals R, bottom must vanish.
    real_t<T> err(0);
    for (int j = 0; j < n; ++j) {
        for (int i = 0; i <= j; ++i)
            err += abs_sq(Cd(i, j) - Ad(i, j));
        for (int i = j + 1; i < m; ++i)
            err += abs_sq(Cd(i, j));
    }
    EXPECT_LE(std::sqrt(err), test::tol<T>(1000) * (1 + ref::norm_fro(D)));
}

TYPED_TEST(LaGeqrf, UnmqrRoundTrip) {
    using T = TypeParam;
    rt::Engine eng(3);
    int const m = 12, n = 5, nb = 4;
    auto D = ref::random_dense<T>(m, n, 44);
    auto A = ref::to_tiled(D, nb);
    auto Tm = la::alloc_qr_t(A);
    la::geqrf(eng, A, Tm);

    auto Dc = ref::random_dense<T>(m, 3, 45);
    auto C = ref::to_tiled(Dc, nb);
    la::unmqr(eng, Op::ConjTrans, A, Tm, C);
    la::unmqr(eng, Op::NoTrans, A, Tm, C);
    eng.wait();
    EXPECT_LE(ref::diff_fro(ref::to_dense(C), Dc),
              test::tol<T>(1000) * (1 + ref::norm_fro(Dc)));
}

TYPED_TEST(LaGeqrf, ModesProduceSameFactor) {
    using T = TypeParam;
    auto D = ref::random_dense<T>(12, 6, 46);
    std::vector<ref::Dense<T>> results;
    for (auto mode : {rt::Mode::Sequential, rt::Mode::TaskDataflow,
                      rt::Mode::ForkJoin}) {
        rt::Engine eng(3, mode);
        auto A = ref::to_tiled(D, 4);
        auto Tm = la::alloc_qr_t(A);
        la::geqrf(eng, A, Tm);
        eng.wait();
        results.push_back(ref::to_dense(A));
    }
    // Identical task set and deterministic kernels: results must agree
    // bit-for-bit across schedules.
    EXPECT_EQ(ref::diff_fro(results[0], results[1]), real_t<T>(0));
    EXPECT_EQ(ref::diff_fro(results[0], results[2]), real_t<T>(0));
}
