// Tiled flat-tree QR: R correctness, explicit Q orthogonality, A = Q R
// reconstruction, rectangular and stacked (QDWH [sqrt(c) A; I]) shapes,
// unmqr application, mode equivalence.

#include <gtest/gtest.h>

#include "linalg/gemm.hh"
#include "linalg/geqrf.hh"
#include "linalg/util.hh"
#include "ref/dense.hh"
#include "test_util.hh"

using namespace tbp;

template <typename T>
class LaGeqrf : public ::testing::Test {};
TYPED_TEST_SUITE(LaGeqrf, test::AllTypes);

namespace {

template <typename T>
void check_qr(int m, int n, int nb, rt::Mode mode = rt::Mode::TaskDataflow) {
    rt::Engine eng(3, mode);
    auto D = ref::random_dense<T>(m, n, 41);
    auto A = ref::to_tiled(D, nb);
    auto Tm = la::alloc_qr_t(A);
    la::geqrf(eng, A, Tm);
    TiledMatrix<T> Q(m, n, nb);
    la::ungqr(eng, A, Tm, Q);
    eng.wait();

    auto Qd = ref::to_dense(Q);
    // Q has orthonormal columns.
    EXPECT_LE(ref::orthogonality(Qd), test::tol<T>(200) * std::max(m, n))
        << "m=" << m << " n=" << n << " nb=" << nb;

    // Q R == original A (R = upper triangle/trapezoid of factored A).
    ref::Dense<T> R(n, n);
    auto Ad = ref::to_dense(A);
    for (int j = 0; j < n; ++j)
        for (int i = 0; i <= j && i < m; ++i)
            R(i, j) = Ad(i, j);
    auto QR = ref::gemm(Op::NoTrans, Op::NoTrans, T(1), Qd, R);
    EXPECT_LE(ref::diff_fro(QR, D), test::tol<T>(1000) * (1 + ref::norm_fro(D)))
        << "m=" << m << " n=" << n << " nb=" << nb;
}

}  // namespace

TYPED_TEST(LaGeqrf, TallMultiTile) { check_qr<TypeParam>(18, 8, 4); }
TYPED_TEST(LaGeqrf, Square) { check_qr<TypeParam>(12, 12, 4); }
TYPED_TEST(LaGeqrf, SquareUneven) { check_qr<TypeParam>(13, 13, 4); }
TYPED_TEST(LaGeqrf, TallUneven) { check_qr<TypeParam>(19, 7, 5); }
TYPED_TEST(LaGeqrf, SingleTile) { check_qr<TypeParam>(9, 6, 16); }
TYPED_TEST(LaGeqrf, VeryTall) { check_qr<TypeParam>(31, 5, 4); }
TYPED_TEST(LaGeqrf, ForkJoin) { check_qr<TypeParam>(14, 8, 4, rt::Mode::ForkJoin); }
TYPED_TEST(LaGeqrf, Sequential) { check_qr<TypeParam>(14, 8, 4, rt::Mode::Sequential); }

TYPED_TEST(LaGeqrf, StackedQdwhShape) {
    // The QDWH QR iterate: W = [sqrt(c) A; I], (m+n) x n with A's row tiles
    // on top and the identity's square tiles below.
    using T = TypeParam;
    rt::Engine eng(3);
    int const m = 10, n = 6, nb = 4;
    auto D = ref::random_dense<T>(m, n, 42);

    auto rows = TiledMatrix<T>::chop(m, nb);
    auto cols = TiledMatrix<T>::chop(n, nb);
    auto wrows = rows;
    wrows.insert(wrows.end(), cols.begin(), cols.end());
    TiledMatrix<T> W(wrows, cols);
    auto W1 = W.sub(0, 0, static_cast<int>(rows.size()), W.nt());
    auto W2 = W.sub(static_cast<int>(rows.size()), 0,
                    static_cast<int>(cols.size()), W.nt());
    test::dense_to_tiled(D, W1);
    la::set_identity(eng, W2);
    eng.wait();
    auto Worig = ref::to_dense(W);

    auto Tm = la::alloc_qr_t(W);
    la::geqrf(eng, W, Tm);
    TiledMatrix<T> Q(wrows, cols);
    la::ungqr(eng, W, Tm, Q);
    eng.wait();

    auto Qd = ref::to_dense(Q);
    EXPECT_LE(ref::orthogonality(Qd), test::tol<T>(500) * (m + n));
    ref::Dense<T> R(n, n);
    auto Wd = ref::to_dense(W);
    for (int j = 0; j < n; ++j)
        for (int i = 0; i <= j; ++i)
            R(i, j) = Wd(i, j);
    auto QR = ref::gemm(Op::NoTrans, Op::NoTrans, T(1), Qd, R);
    EXPECT_LE(ref::diff_fro(QR, Worig),
              test::tol<T>(1000) * (1 + ref::norm_fro(Worig)));
}

TYPED_TEST(LaGeqrf, UnmqrAppliesQh) {
    // unmqr(ConjTrans) on the original A must reproduce [R; 0].
    using T = TypeParam;
    rt::Engine eng(3);
    int const m = 14, n = 6, nb = 4;
    auto D = ref::random_dense<T>(m, n, 43);
    auto A = ref::to_tiled(D, nb);
    auto Tm = la::alloc_qr_t(A);
    la::geqrf(eng, A, Tm);

    auto C = ref::to_tiled(D, nb);
    la::unmqr(eng, Op::ConjTrans, A, Tm, C);
    eng.wait();

    auto Cd = ref::to_dense(C);
    auto Ad = ref::to_dense(A);
    // Top triangle equals R, bottom must vanish.
    real_t<T> err(0);
    for (int j = 0; j < n; ++j) {
        for (int i = 0; i <= j; ++i)
            err += abs_sq(Cd(i, j) - Ad(i, j));
        for (int i = j + 1; i < m; ++i)
            err += abs_sq(Cd(i, j));
    }
    EXPECT_LE(std::sqrt(err), test::tol<T>(1000) * (1 + ref::norm_fro(D)));
}

TYPED_TEST(LaGeqrf, UnmqrRoundTrip) {
    using T = TypeParam;
    rt::Engine eng(3);
    int const m = 12, n = 5, nb = 4;
    auto D = ref::random_dense<T>(m, n, 44);
    auto A = ref::to_tiled(D, nb);
    auto Tm = la::alloc_qr_t(A);
    la::geqrf(eng, A, Tm);

    auto Dc = ref::random_dense<T>(m, 3, 45);
    auto C = ref::to_tiled(Dc, nb);
    la::unmqr(eng, Op::ConjTrans, A, Tm, C);
    la::unmqr(eng, Op::NoTrans, A, Tm, C);
    eng.wait();
    EXPECT_LE(ref::diff_fro(ref::to_dense(C), Dc),
              test::tol<T>(1000) * (1 + ref::norm_fro(Dc)));
}

TYPED_TEST(LaGeqrf, ModesProduceSameFactor) {
    using T = TypeParam;
    auto D = ref::random_dense<T>(12, 6, 46);
    std::vector<ref::Dense<T>> results;
    for (auto mode : {rt::Mode::Sequential, rt::Mode::TaskDataflow,
                      rt::Mode::ForkJoin}) {
        rt::Engine eng(3, mode);
        auto A = ref::to_tiled(D, 4);
        auto Tm = la::alloc_qr_t(A);
        la::geqrf(eng, A, Tm);
        eng.wait();
        results.push_back(ref::to_dense(A));
    }
    // Identical task set and deterministic kernels: results must agree
    // bit-for-bit across schedules.
    EXPECT_EQ(ref::diff_fro(results[0], results[1]), real_t<T>(0));
    EXPECT_EQ(ref::diff_fro(results[0], results[2]), real_t<T>(0));
}
