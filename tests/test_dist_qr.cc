// Distributed tile QR over virtual ranks: bit-exact agreement with the
// shared-memory factorization (same kernels, same values, same order),
// explicit Q properties, and the composed distributed QR workflow.

#include <gtest/gtest.h>

#include "comm/dist_qdwh.hh"
#include "comm/dist_qr.hh"
#include "core/qdwh.hh"
#include "gen/matgen.hh"
#include "linalg/geqrf.hh"
#include "linalg/util.hh"
#include "ref/dense.hh"
#include "test_util.hh"

using namespace tbp;

namespace {

template <typename T>
ref::Dense<T> gather(comm::DistMatrix<T>& A, comm::Communicator& c) {
    ref::Dense<T> D(A.m(), A.n());
    std::int64_t row0 = 0;
    for (int i = 0; i < A.mt(); ++i) {
        std::int64_t col0 = 0;
        for (int j = 0; j < A.nt(); ++j) {
            if (A.is_local(i, j)) {
                auto t = A.tile(i, j);
                for (int cc = 0; cc < t.nb(); ++cc)
                    for (int rr = 0; rr < t.mb(); ++rr)
                        D(row0 + rr, col0 + cc) = t(rr, cc);
            }
            col0 += A.tile_nb(j);
        }
        row0 += A.tile_mb(i);
    }
    std::vector<T> buf(static_cast<size_t>(A.m()) * A.n());
    for (std::int64_t j = 0; j < A.n(); ++j)
        for (std::int64_t i = 0; i < A.m(); ++i)
            buf[static_cast<size_t>(i + j * A.m())] = D(i, j);
    c.allreduce_sum(buf);
    for (std::int64_t j = 0; j < A.n(); ++j)
        for (std::int64_t i = 0; i < A.m(); ++i)
            D(i, j) = buf[static_cast<size_t>(i + j * A.m())];
    return D;
}

}  // namespace

TEST(DistQr, FactorsBitExactVsSharedMemory) {
    using T = double;
    int const m = 24, n = 16, nb = 4;
    auto D = ref::random_dense<T>(m, n, 501);

    // Shared-memory factorization (deterministic kernel order).
    rt::Engine eng(1, rt::Mode::Sequential);
    auto As = ref::to_tiled(D, nb);
    auto Ts = la::alloc_qr_t(As);
    la::geqrf(eng, As, Ts);
    auto Aref = ref::to_dense(As);

    for (auto [p, q] : {std::pair{1, 1}, {2, 2}, {3, 2}}) {
        Grid g{p, q};
        comm::World world(g.size());
        ref::Dense<T> Ad;
        world.run([&](comm::Communicator& c) {
            comm::DistMatrix<T> A(c, m, n, nb, g);
            // T workspace: full nb x nb tiles per (i, k) slot.
            comm::DistMatrix<T> Tm(c, static_cast<std::int64_t>(A.mt()) * nb,
                                   n, nb, g);
            A.fill([&](std::int64_t i, std::int64_t j) { return D(i, j); });
            comm::dist_geqrf(c, g, A, Tm);
            auto G = gather(A, c);
            if (c.rank() == 0)
                Ad = G;
        });
        EXPECT_EQ(ref::diff_fro(Ad, Aref), 0.0) << p << "x" << q;
    }
}

TEST(DistQr, ExplicitQProperties) {
    using T = double;
    int const m = 20, n = 12, nb = 4;
    auto D = ref::random_dense<T>(m, n, 502);

    Grid g{2, 2};
    comm::World world(4);
    ref::Dense<T> Qd, Rfac;
    world.run([&](comm::Communicator& c) {
        comm::DistMatrix<T> A(c, m, n, nb, g);
        comm::DistMatrix<T> Tm(c, static_cast<std::int64_t>(A.mt()) * nb, n,
                               nb, g);
        comm::DistMatrix<T> Q(c, m, n, nb, g);
        A.fill([&](std::int64_t i, std::int64_t j) { return D(i, j); });
        comm::dist_geqrf(c, g, A, Tm);
        comm::dist_ungqr(c, g, A, Tm, Q);
        auto Gq = gather(Q, c);
        auto Ga = gather(A, c);
        if (c.rank() == 0) {
            Qd = Gq;
            Rfac = Ga;
        }
    });

    EXPECT_LE(ref::orthogonality(Qd), 1e-12 * m);
    ref::Dense<T> R(n, n);
    for (int j = 0; j < n; ++j)
        for (int i = 0; i <= j; ++i)
            R(i, j) = Rfac(i, j);
    auto QR = ref::gemm(Op::NoTrans, Op::NoTrans, 1.0, Qd, R);
    EXPECT_LE(ref::diff_fro(QR, D), 1e-12 * (1 + ref::norm_fro(D)));
}

TEST(DistQr, StackedQdwhShape) {
    // The QDWH QR-iteration shape: [sqrt(c) A; I], (m + n) x n.
    using T = double;
    int const m = 16, n = 8, nb = 4;
    auto D = ref::random_dense<T>(m, n, 503);
    double const cc = 7.0;

    Grid g{3, 2};
    comm::World world(6);
    ref::Dense<T> Qd;
    world.run([&](comm::Communicator& c) {
        comm::DistMatrix<T> W(c, m + n, n, nb, g);
        comm::DistMatrix<T> Tm(c, static_cast<std::int64_t>(W.mt()) * nb, n,
                               nb, g);
        comm::DistMatrix<T> Q(c, m + n, n, nb, g);
        W.fill([&](std::int64_t i, std::int64_t j) {
            if (i < m)
                return std::sqrt(cc) * D(i, j);
            return (i - m == j) ? 1.0 : 0.0;
        });
        comm::dist_geqrf(c, g, W, Tm);
        comm::dist_ungqr(c, g, W, Tm, Q);
        auto Gq = gather(Q, c);
        if (c.rank() == 0)
            Qd = Gq;
    });
    EXPECT_LE(ref::orthogonality(Qd), 1e-12 * (m + n));
}

TEST(DistQdwhFull, BothBranchesMatchSharedMemory) {
    // kappa = 1e8 engages QR-based then Cholesky-based iterations; the
    // distributed driver must reproduce the shared-memory factor.
    using T = double;
    int const n = 16, nb = 4;
    gen::MatGenOptions opt;
    opt.cond = 1e8;
    opt.seed = 504;

    rt::Engine eng(2);
    auto At = gen::cond_matrix<T>(eng, n, n, nb, opt);
    auto Ad = ref::to_dense(At);
    TiledMatrix<T> H(n, n, nb);
    QdwhOptions o;
    o.condest_override = 1e-8;
    auto ref_info = qdwh(eng, At, H, o);
    auto Uref = ref::to_dense(At);

    for (auto [p, q] : {std::pair{2, 2}, {3, 2}}) {
        Grid g{p, q};
        comm::World world(g.size());
        ref::Dense<T> U;
        comm::DistQdwhInfo info;
        world.run([&](comm::Communicator& c) {
            comm::DistMatrix<T> A(c, n, n, nb, g);
            A.fill([&](std::int64_t i, std::int64_t j) { return Ad(i, j); });
            auto inf = comm::dist_qdwh(c, g, A, 1e-8);
            auto D = gather(A, c);
            if (c.rank() == 0) {
                U = D;
                info = inf;
            }
        });
        EXPECT_LE(ref::orthogonality(U), 1e-12 * n) << p << "x" << q;
        // The distributed norm2est reduces in a different order than the
        // shared-memory one; the last-bit scaling difference propagates
        // forward as ~eps * kappa on the polar factor.
        EXPECT_LE(ref::diff_fro(U, Uref), 1e-16 * opt.cond * 100)
            << p << "x" << q;
        EXPECT_EQ(info.iterations, ref_info.iterations) << p << "x" << q;
    }
}

TEST(DistQdwhFull, RectangularIllConditioned) {
    using T = double;
    int const m = 24, n = 12, nb = 4;  // m % nb == 0 as the driver requires
    gen::MatGenOptions opt;
    opt.cond = 1e10;
    opt.seed = 505;
    rt::Engine eng(2);
    auto At = gen::cond_matrix<T>(eng, m, n, nb, opt);
    auto Ad = ref::to_dense(At);

    Grid g{2, 2};
    comm::World world(4);
    ref::Dense<T> U;
    world.run([&](comm::Communicator& c) {
        comm::DistMatrix<T> A(c, m, n, nb, g);
        A.fill([&](std::int64_t i, std::int64_t j) { return Ad(i, j); });
        comm::dist_qdwh(c, g, A, 1e-10);
        auto D = gather(A, c);
        if (c.rank() == 0)
            U = D;
    });
    EXPECT_LE(ref::orthogonality(U) / std::sqrt(double(n)), 1e-13);
    // U H reconstructs A with H = sym(U^H A).
    auto UhA = ref::gemm(Op::ConjTrans, Op::NoTrans, 1.0, U, Ad);
    ref::Dense<T> Hs(n, n);
    for (int j = 0; j < n; ++j)
        for (int i = 0; i < n; ++i)
            Hs(i, j) = 0.5 * (UhA(i, j) + conj_val(UhA(j, i)));
    auto UH = ref::gemm(Op::NoTrans, Op::NoTrans, 1.0, U, Hs);
    EXPECT_LE(ref::diff_fro(UH, Ad) / ref::norm_fro(Ad), 1e-13);
}
