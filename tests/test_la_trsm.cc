// Tiled triangular solves: all side/uplo/op combinations QDWH and the
// condition estimators use, verified by residual against the dense triangle.

#include <gtest/gtest.h>

#include "linalg/trsm.hh"
#include "linalg/util.hh"
#include "ref/dense.hh"
#include "test_util.hh"

using namespace tbp;

template <typename T>
class LaTrsm : public ::testing::Test {};
TYPED_TEST_SUITE(LaTrsm, test::AllTypes);

namespace {

template <typename T>
void check_tiled_trsm(Side side, Uplo uplo, Op op, int m, int n, int nb) {
    rt::Engine eng(3);
    int const na = (side == Side::Left) ? m : n;
    auto Dtri = ref::random_dense<T>(na, na, 21);
    for (int i = 0; i < na; ++i)
        Dtri(i, i) += from_real<T>(real_t<T>(2 * na));
    auto Db = ref::random_dense<T>(m, n, 22);

    auto A = ref::to_tiled(Dtri, nb);
    auto X = ref::to_tiled(Db, nb);
    la::trsm(eng, side, uplo, op, Diag::NonUnit, T(1), A, X);
    eng.wait();

    ref::Dense<T> Atri(na, na);
    for (int j = 0; j < na; ++j)
        for (int i = 0; i < na; ++i)
            Atri(i, j) = ((uplo == Uplo::Lower) ? i >= j : i <= j) ? Dtri(i, j)
                                                                   : T(0);
    auto Xd = ref::to_dense(X);
    auto P = (side == Side::Left) ? ref::gemm(op, Op::NoTrans, T(1), Atri, Xd)
                                  : ref::gemm(Op::NoTrans, op, T(1), Xd, Atri);
    EXPECT_LE(ref::diff_fro(P, Db), test::tol<T>(1000) * (1 + ref::norm_fro(Db)))
        << to_string(op) << " side=" << (side == Side::Left ? "L" : "R")
        << " uplo=" << to_string(uplo);
}

}  // namespace

TYPED_TEST(LaTrsm, RightLowerConjTrans) {
    check_tiled_trsm<TypeParam>(Side::Right, Uplo::Lower, Op::ConjTrans, 11, 8, 3);
}
TYPED_TEST(LaTrsm, RightLowerNoTrans) {
    check_tiled_trsm<TypeParam>(Side::Right, Uplo::Lower, Op::NoTrans, 11, 8, 3);
}
TYPED_TEST(LaTrsm, LeftLowerNoTrans) {
    check_tiled_trsm<TypeParam>(Side::Left, Uplo::Lower, Op::NoTrans, 9, 6, 4);
}
TYPED_TEST(LaTrsm, LeftLowerConjTrans) {
    check_tiled_trsm<TypeParam>(Side::Left, Uplo::Lower, Op::ConjTrans, 9, 6, 4);
}
TYPED_TEST(LaTrsm, LeftUpperNoTrans) {
    check_tiled_trsm<TypeParam>(Side::Left, Uplo::Upper, Op::NoTrans, 10, 3, 4);
}
TYPED_TEST(LaTrsm, LeftUpperConjTrans) {
    check_tiled_trsm<TypeParam>(Side::Left, Uplo::Upper, Op::ConjTrans, 10, 3, 4);
}
TYPED_TEST(LaTrsm, RightUpperNoTrans) {
    check_tiled_trsm<TypeParam>(Side::Right, Uplo::Upper, Op::NoTrans, 7, 9, 4);
}
TYPED_TEST(LaTrsm, RightUpperConjTrans) {
    check_tiled_trsm<TypeParam>(Side::Right, Uplo::Upper, Op::ConjTrans, 7, 9, 4);
}

TYPED_TEST(LaTrsm, SingleTileRhsVector) {
    // Vector solve used by trcondest (n x 1 right-hand side).
    check_tiled_trsm<TypeParam>(Side::Left, Uplo::Upper, Op::NoTrans, 12, 1, 5);
}

TYPED_TEST(LaTrsm, AlphaScaling) {
    using T = TypeParam;
    rt::Engine eng(2);
    int const n = 6;
    auto Dtri = ref::random_dense<T>(n, n, 23);
    for (int i = 0; i < n; ++i)
        Dtri(i, i) += from_real<T>(real_t<T>(8));
    auto Db = ref::random_dense<T>(n, 4, 24);
    auto A = ref::to_tiled(Dtri, 3);
    auto X = ref::to_tiled(Db, 3);
    la::trsm(eng, Side::Left, Uplo::Lower, Op::NoTrans, Diag::NonUnit, T(2), A, X);
    eng.wait();

    ref::Dense<T> Atri(n, n);
    for (int j = 0; j < n; ++j)
        for (int i = j; i < n; ++i)
            Atri(i, j) = Dtri(i, j);
    auto P = ref::gemm(Op::NoTrans, Op::NoTrans, T(1), Atri, ref::to_dense(X));
    ref::Dense<T> twoB(n, 4);
    for (int j = 0; j < 4; ++j)
        for (int i = 0; i < n; ++i)
            twoB(i, j) = T(2) * Db(i, j);
    EXPECT_LE(ref::diff_fro(P, twoB), test::tol<T>(1000) * (1 + ref::norm_fro(twoB)));
}

TYPED_TEST(LaTrsm, ChainedSolvesInvertSpd) {
    // A Z^{-1} via two right solves with chol(Z) — QDWH's Cholesky step —
    // sanity-checked by inverting: (A Z^{-1}) Z == A.
    using T = TypeParam;
    rt::Engine eng(3);
    int const n = 8, m = 10;
    // SPD Z and its dense Cholesky (via tiled potrf is tested elsewhere;
    // here we build L directly as a well-conditioned lower triangle).
    auto L = ref::random_dense<T>(n, n, 25);
    for (int j = 0; j < n; ++j) {
        L(j, j) = from_real<T>(real_t<T>(4) + real_t<T>(j % 3));
        for (int i = 0; i < j; ++i)
            L(i, j) = T(0);
    }
    auto Da = ref::random_dense<T>(m, n, 26);
    auto Ltile = ref::to_tiled(L, 3);
    auto A = ref::to_tiled(Da, 3);
    // A := A L^{-H} L^{-1} = A (L L^H)^{-1}
    la::trsm(eng, Side::Right, Uplo::Lower, Op::ConjTrans, Diag::NonUnit, T(1),
             Ltile, A);
    la::trsm(eng, Side::Right, Uplo::Lower, Op::NoTrans, Diag::NonUnit, T(1),
             Ltile, A);
    eng.wait();
    // Rebuild: X (L L^H) should equal original A.
    auto Z = ref::gemm(Op::NoTrans, Op::ConjTrans, T(1), L, L);
    auto P = ref::gemm(Op::NoTrans, Op::NoTrans, T(1), ref::to_dense(A), Z);
    EXPECT_LE(ref::diff_fro(P, Da), test::tol<T>(2000) * (1 + ref::norm_fro(Da)));
}
