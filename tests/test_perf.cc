// Performance model: structural invariants (monotonicity, schedule ordering,
// peak bounds, flop accounting) and the paper's published anchor points.

#include <gtest/gtest.h>

#include <vector>

#include "blas/kernel/stats.hh"
#include "common/flops.hh"
#include "linalg/geqrf.hh"
#include "linalg/util.hh"
#include "perf/cost_model.hh"
#include "perf/qdwh_model.hh"
#include "perf/sched_report.hh"
#include "test_util.hh"

using namespace tbp::perf;

TEST(PerfModel, OpStreamFlopsMatchPaperFormula) {
    // Sum of per-op flops == Section 4 complexity model (up to the small
    // O(n^2) estimator terms).
    std::int64_t const n = 20000;
    for (auto [qr, ch] : {std::pair{3, 3}, {0, 2}, {5, 1}}) {
        auto ops = qdwh_ops(n, 320, qr, ch);
        double sum = 0;
        for (auto const& op : ops)
            sum += op.update_flops + op.panel_flops;
        double const model = tbp::flops::qdwh_model(static_cast<double>(n), qr, ch);
        // The paper's Cholesky-iteration count (4 + 1/3 n^3) is ~n^3 coarser
        // than the kernel-level sum (herk counted as a full gemm); allow the
        // corresponding band.
        EXPECT_GE(sum, 0.85 * model) << "it_qr=" << qr << " it_chol=" << ch;
        EXPECT_LE(sum, 1.05 * model) << "it_qr=" << qr << " it_chol=" << ch;
    }
}

TEST(PerfModel, StructuredOpStreamMatchesStructuredFormula) {
    // With structured QR enabled, the op-stream sum must track the 17/3 n^3
    // per-QR-iteration model instead of the dense 26/3 n^3 one.
    std::int64_t const n = 20000;
    for (auto [qr, ch] : {std::pair{3, 3}, {5, 1}}) {
        auto ops = qdwh_ops(n, 320, qr, ch, /*structured_qr=*/true);
        double sum = 0;
        for (auto const& op : ops)
            sum += op.update_flops + op.panel_flops;
        double const model = tbp::flops::qdwh_model_structured(
            static_cast<double>(n), qr, ch);
        EXPECT_GE(sum, 0.85 * model) << "it_qr=" << qr;
        EXPECT_LE(sum, 1.05 * model) << "it_qr=" << qr;
        // Structured must be strictly cheaper than dense when QR iterations
        // are present.
        auto dense = qdwh_ops(n, 320, qr, ch, /*structured_qr=*/false);
        double dsum = 0;
        for (auto const& op : dense)
            dsum += op.update_flops + op.panel_flops;
        if (qr > 0)
            EXPECT_LT(sum, dsum);
    }
}

namespace {

/// Run one stacked-QR factor + Q generation (dense oracle or structured) on
/// a live engine and return the kernel counter delta.
template <typename T>
double measured_stacked_qr_flops(std::vector<int> const& rows,
                                 std::vector<int> const& cols,
                                 bool structured) {
    using namespace tbp;
    rt::Engine eng(3);
    int const mt1 = static_cast<int>(rows.size());
    auto wrows = rows;
    wrows.insert(wrows.end(), cols.begin(), cols.end());
    int m = 0, n = 0;
    for (int r : rows) m += r;
    for (int c : cols) n += c;
    auto D = ref::random_dense<T>(m, n, 77);
    TiledMatrix<T> W(wrows, cols);
    auto Wtop = W.sub(0, 0, mt1, W.nt());
    test::dense_to_tiled(D, Wtop);
    auto Tm = la::alloc_qr_t(W);
    TiledMatrix<T> Q(wrows, cols);
    double const before = blas::kernel::flops_performed();
    if (structured) {
        la::geqrf_stacked_tri(eng, W, mt1, T(1), Tm);
        la::ungqr_stacked_tri(eng, W, mt1, Tm, Q);
    } else {
        la::set_identity(eng, W.sub(mt1, 0, W.nt(), W.nt()));
        la::geqrf(eng, W, Tm);
        la::ungqr(eng, W, Tm, Q);
    }
    eng.wait();
    return blas::kernel::flops_performed() - before;
}

}  // namespace

TEST(PerfModel, StackedQrKernelFlopsReplayIsExact) {
    // stacked_qr_kernel_flops replays the submission loops with the same
    // per-call uint64 truncation as the kernel counter, so the prediction
    // must equal the measured delta EXACTLY — for both paths, both scalar
    // weights, and uneven tilings. This is what keeps the bench JSON's
    // model-match field honest.
    using tbp::fma_flops;
    for (auto const& [rows, cols] :
         {std::pair<std::vector<int>, std::vector<int>>{{4, 4, 4}, {4, 4}},
          {{5, 5, 3}, {5, 3}},
          {{4, 4}, {4, 4}}}) {
        for (bool structured : {false, true}) {
            double const wd = fma_flops<double>() / 2.0;
            EXPECT_EQ(measured_stacked_qr_flops<double>(rows, cols, structured),
                      stacked_qr_kernel_flops(rows, cols, structured, wd))
                << "double structured=" << structured;
            double const wz = fma_flops<std::complex<float>>() / 2.0;
            EXPECT_EQ(measured_stacked_qr_flops<std::complex<float>>(
                          rows, cols, structured),
                      stacked_qr_kernel_flops(rows, cols, structured, wz))
                << "complex structured=" << structured;
        }
    }
}

TEST(PerfModel, QrTaskCountsMatchEngineDag) {
    // qr_task_counts replays the submission loops, so its total must equal
    // the traced engine's executed-task count for factor + generate.
    using namespace tbp;
    using T = double;
    for (auto const& [rows, cols] :
         {std::pair<std::vector<int>, std::vector<int>>{{4, 4, 4}, {4, 4}},
          {{5, 5, 3}, {5, 3}}}) {
        for (bool structured : {false, true}) {
            rt::Engine eng(3);
            eng.set_trace(true);
            int const mt1 = static_cast<int>(rows.size());
            int const nt = static_cast<int>(cols.size());
            auto wrows = rows;
            wrows.insert(wrows.end(), cols.begin(), cols.end());
            int m = 0, n = 0;
            for (int r : rows) m += r;
            for (int c : cols) n += c;
            auto D = ref::random_dense<T>(m, n, 78);
            TiledMatrix<T> W(wrows, cols);
            auto Wtop = W.sub(0, 0, mt1, W.nt());
            test::dense_to_tiled(D, Wtop);
            auto Tm = la::alloc_qr_t(W);
            TiledMatrix<T> Q(wrows, cols);
            eng.wait();  // drain the fill tasks before counting
            auto const fill = sched_report(eng).dag.tasks;
            if (structured) {
                la::geqrf_stacked_tri(eng, W, mt1, T(1), Tm);
                la::ungqr_stacked_tri(eng, W, mt1, Tm, Q);
            } else {
                la::set_identity(eng, W.sub(mt1, 0, W.nt(), W.nt()));
                la::geqrf(eng, W, Tm);
                la::ungqr(eng, W, Tm, Q);
            }
            eng.wait();
            auto const counts = qr_task_counts(mt1, nt, structured);
            EXPECT_EQ(static_cast<std::int64_t>(sched_report(eng).dag.tasks -
                                                fill),
                      counts.total())
                << "structured=" << structured << " mt1=" << mt1;
            // Structured must also submit fewer kernel tasks overall than
            // the dense oracle on the same grid (the skipped-zero-tile win).
            if (structured) {
                auto const dense = qr_task_counts(mt1, nt, false);
                EXPECT_LT(counts.total(), dense.total());
            }
        }
    }
}

TEST(PerfModel, TaskDataflowBeatsForkJoin) {
    for (int nodes : {1, 4, 16}) {
        auto m = MachineModel::summit(nodes);
        for (std::int64_t n : {8000, 30000}) {
            for (auto dev : {Device::Cpu, Device::Gpu}) {
                auto td = qdwh_perf(m, dev, Schedule::TaskDataflow, n, 320);
                auto fj = qdwh_perf(m, dev, Schedule::ForkJoin, n, 320);
                EXPECT_LT(td.seconds, fj.seconds)
                    << "nodes=" << nodes << " n=" << n;
            }
        }
    }
}

TEST(PerfModel, ThroughputGrowsWithSize) {
    auto m = MachineModel::summit(8);
    double prev = 0;
    for (std::int64_t n : {5000, 10000, 20000, 40000, 80000}) {
        auto r = qdwh_perf(m, Device::Gpu, Schedule::TaskDataflow, n, 320);
        EXPECT_GT(r.tflops, prev) << n;
        prev = r.tflops;
    }
}

TEST(PerfModel, BoundedByAchievableRate) {
    for (int nodes : {1, 8, 32}) {
        auto m = MachineModel::summit(nodes);
        auto r = qdwh_perf(m, Device::Gpu, Schedule::TaskDataflow,
                           m.max_n(Device::Gpu), 320);
        EXPECT_LT(r.tflops * 1e3, m.total_gflops(Device::Gpu));
        EXPECT_GT(r.tflops, 0);
    }
}

TEST(PerfModel, Anchor18xOnOneSummitNode) {
    // Paper Section 7.2: "SLATE-QDWH is faster by up to 18x on 1 node and 4
    // nodes" vs ScaLAPACK-CPU.
    auto m = MachineModel::summit(1);
    std::int64_t const n = m.max_n(Device::Gpu);
    auto gpu = qdwh_perf(m, Device::Gpu, Schedule::TaskDataflow, n, 320);
    auto scal = qdwh_perf(m, Device::Cpu, Schedule::ForkJoin, n, 192);
    double const speedup = gpu.tflops / scal.tflops;
    EXPECT_GE(speedup, 14.0);
    EXPECT_LE(speedup, 22.0);
}

TEST(PerfModel, Anchor13xOnEightSummitNodes) {
    // "approximately 13x on 8 nodes".
    auto m = MachineModel::summit(8);
    std::int64_t const n = 70000;  // within the plotted range of Fig. 2b
    auto gpu = qdwh_perf(m, Device::Gpu, Schedule::TaskDataflow, n, 320);
    auto scal = qdwh_perf(m, Device::Cpu, Schedule::ForkJoin, n, 192);
    double const speedup = gpu.tflops / scal.tflops;
    EXPECT_GE(speedup, 10.0);
    EXPECT_LE(speedup, 17.0);
}

TEST(PerfModel, SlateCpuTracksScalapack) {
    // Paper: "Using only CPU cores, SLATE's performance is similar to the
    // ScaLAPACK performance."
    auto m = MachineModel::summit(1);
    auto slate = qdwh_perf(m, Device::Cpu, Schedule::TaskDataflow, 30000, 192);
    auto scal = qdwh_perf(m, Device::Cpu, Schedule::ForkJoin, 30000, 192);
    double const ratio = slate.tflops / scal.tflops;
    EXPECT_GE(ratio, 0.95);
    EXPECT_LE(ratio, 1.35);
}

TEST(PerfModel, AnchorFrontier180TF) {
    // Paper: "around 180 Tflop/s on 16 nodes equipped with 128 GPUs", at the
    // memory-limited n = 175k.
    auto m = MachineModel::frontier(16);
    auto r = qdwh_perf(m, Device::Gpu, Schedule::TaskDataflow, 175000, 320);
    EXPECT_GE(r.tflops, 150.0);
    EXPECT_LE(r.tflops, 210.0);
}

TEST(PerfModel, FrontierMemoryLimit) {
    // "The maximum matrix size that can be tested on this number of nodes is
    // 175k, due to the large memory footprint."
    auto m = MachineModel::frontier(16);
    auto const nmax = m.max_n(Device::Gpu);
    EXPECT_GE(nmax, 175000);
    EXPECT_LE(nmax, 400000);
    EXPECT_FALSE(qdwh_perf(m, Device::Gpu, Schedule::TaskDataflow, nmax + 50000,
                           320)
                     .fits_memory);
}

TEST(PerfModel, SummitOneNodeMemoryLimit) {
    auto m = MachineModel::summit(1);
    auto const nmax = m.max_n(Device::Gpu);
    EXPECT_GE(nmax, 25000);
    EXPECT_LE(nmax, 45000);
}

TEST(PerfModel, WeakScalingImproves) {
    // Fig. 4: "good weak scalability at the largest problem size for each
    // number of nodes".
    double prev = 0;
    for (int nodes : {1, 2, 4, 8, 16, 32}) {
        auto m = MachineModel::summit(nodes);
        auto r = qdwh_perf(m, Device::Gpu, Schedule::TaskDataflow,
                           m.max_n(Device::Gpu), 320);
        EXPECT_GT(r.tflops, prev) << nodes;
        prev = r.tflops;
    }
}

TEST(PerfModel, StrongScalingIsLimited) {
    // Fig. 4: strong scalability for a fixed size is limited: going 4 -> 32
    // nodes (8x resources) at fixed n = 60k gains far less than 8x, but the
    // bigger machine is not slower at this size.
    auto r4 = qdwh_perf(MachineModel::summit(4), Device::Gpu,
                        Schedule::TaskDataflow, 60000, 320);
    auto r32 = qdwh_perf(MachineModel::summit(32), Device::Gpu,
                         Schedule::TaskDataflow, 60000, 320);
    double const gain = r32.tflops / r4.tflops;
    EXPECT_GT(gain, 1.0);
    EXPECT_LT(gain, 6.0);
}

TEST(PerfModel, GpuAwareMpiHelpsFrontierStyleMachines) {
    // Section 7.2: GPU-aware MPI benefits Frontier (NIC on GPU); staging
    // through the host costs time when it is absent.
    auto m = MachineModel::frontier(8);
    auto aware = qdwh_perf(m, Device::Gpu, Schedule::TaskDataflow, 100000, 320);
    m.gpu_aware_mpi = false;
    auto staged = qdwh_perf(m, Device::Gpu, Schedule::TaskDataflow, 100000, 320);
    EXPECT_LE(staged.tflops, aware.tflops);
}

TEST(PerfModel, TileSizeSweetSpot) {
    // Section 7.2: nb = 320 beat other tested tile sizes on GPUs; tiny and
    // huge tiles must both lose in the model (kernel starvation vs panel
    // chain dominance).
    auto m = MachineModel::summit(4);
    auto at = [&](int nb) {
        return qdwh_perf(m, Device::Gpu, Schedule::TaskDataflow, 60000, nb).tflops;
    };
    EXPECT_GT(at(320), at(32));
    EXPECT_GT(at(320), at(4096));
}

TEST(PerfModel, TileOptimaMatchPaperTuning) {
    // Section 7.2: nb = 320 best on GPUs, nb = 192 best on CPUs, at
    // representative benchmarking sizes (GPUs sweep larger matrices).
    auto m = MachineModel::summit(4);
    auto best_nb = [&](Device d, std::int64_t n) {
        double best = 0;
        int arg = 0;
        for (int nb : {64, 128, 192, 256, 320, 384, 512, 768, 1024}) {
            double const t =
                qdwh_perf(m, d, Schedule::TaskDataflow, n, nb).tflops;
            if (t > best) {
                best = t;
                arg = nb;
            }
        }
        return arg;
    };
    EXPECT_EQ(best_nb(Device::Gpu, 60000), 320);
    EXPECT_EQ(best_nb(Device::Cpu, 20000), 192);
}

TEST(SchedReport, MeasuredSchedulerEfficiency) {
    // The measured counterpart to the modeled schedules: run a real DAG and
    // check the report's invariants (accounting, utilization bounds).
    tbp::rt::Engine eng(3);
    eng.set_trace(true);
    long x = 0;
    std::vector<long> ys(64, 0);
    for (int i = 0; i < 8; ++i)
        eng.submit("chain", 1.0, {tbp::rt::readwrite(&x)}, [&x] { ++x; },
                   /*priority=*/1);
    for (size_t i = 0; i < ys.size(); ++i)
        eng.submit("fan", 1.0, {tbp::rt::read(&x), tbp::rt::write(&ys[i])},
                   [&ys, &x, i] { ys[i] = x; });
    eng.wait();
    auto const r = sched_report(eng);
    EXPECT_EQ(r.dag.tasks, 72u);
    EXPECT_EQ(r.workers, 3);
    EXPECT_EQ(r.counters.local_pops + r.counters.steals, 72u);
    EXPECT_EQ(r.sched.priority_tasks, 8u);
    EXPECT_GT(r.tasks_per_sec(), 0.0);
    EXPECT_GT(r.sched.utilization, 0.0);
    EXPECT_LE(r.sched.utilization, 1.0 + 1e-9);
    EXPECT_GE(r.sched.idle, 0.0);
    EXPECT_FALSE(r.format().empty());
}
