// Parameterized property sweep: gemmA must equal gemm for every shape, op
// and scaling (they are alternative schedules of the same contraction).

#include <gtest/gtest.h>

#include <tuple>

#include "linalg/gemm.hh"
#include "linalg/util.hh"
#include "ref/dense.hh"
#include "test_util.hh"

using namespace tbp;

namespace {

// (m, k, ncols, nb, conj_trans, beta_zero)
using Cfg = std::tuple<int, int, int, int, bool, bool>;

class GemmASweep : public ::testing::TestWithParam<Cfg> {};

}  // namespace

TEST_P(GemmASweep, MatchesGemm) {
    auto const [m, k, nc, nb, ct, beta_zero] = GetParam();
    Op const op = ct ? Op::ConjTrans : Op::NoTrans;
    rt::Engine eng(3);

    auto Da = ref::random_dense<double>(m, k, 401);
    int const rows_b = ct ? m : k;
    int const rows_c = ct ? k : m;
    auto Db = ref::random_dense<double>(rows_b, nc, 402);
    auto Dc = ref::random_dense<double>(rows_c, nc, 403);

    auto A = ref::to_tiled(Da, nb);
    auto B = ref::to_tiled(Db, nb);
    auto C1 = ref::to_tiled(Dc, nb);
    auto C2 = ref::to_tiled(Dc, nb);

    double const beta = beta_zero ? 0.0 : -1.5;
    la::gemm(eng, op, Op::NoTrans, 2.0, A, B, beta, C1);
    la::gemmA(eng, op, 2.0, A, B, beta, C2);
    eng.wait();

    auto R1 = ref::to_dense(C1);
    auto R2 = ref::to_dense(C2);
    // Same contraction, possibly different summation order: equal to
    // rounding.
    EXPECT_LE(ref::diff_fro(R1, R2), 1e-12 * (1 + ref::norm_fro(R1)));
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, GemmASweep,
    ::testing::Combine(::testing::Values(9, 16, 25),   // m
                       ::testing::Values(6, 13),       // k
                       ::testing::Values(1, 3),        // result columns
                       ::testing::Values(4, 8),        // nb
                       ::testing::Bool(),              // ConjTrans
                       ::testing::Bool()));            // beta == 0
