// Scheduler microbenchmark: the work-stealing per-worker deques vs the
// legacy single-mutex global queue, on DAGs shaped like QDWH's building
// blocks at fine tile granularity (where scheduler overhead, not kernel
// flops, dominates). Reports tasks/sec, makespan, and steal counts — the
// measured version of the paper's task-based-vs-fork-join argument applied
// to the runtime itself.
//
//   BM_SynthQdwhIteration  - synthetic panel+update sweeps with microsecond
//                            task bodies (pure scheduler overhead)
//   BM_GeqrfFineTiles      - the real tile QR driver on tiny tiles
//
// Run: bench_scheduler [--benchmark_filter=...]; TBP_THREADS sets pool size.
// Set TBP_BENCH_JSON=path to also write the measurements as a JSON document
// (shared emitter in bench_util.hh, same format as bench_gemm_kernel).

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "common/timer.hh"
#include "gen/matgen.hh"
#include "linalg/geqrf.hh"
#include "perf/sched_report.hh"
#include "runtime/engine.hh"

using namespace tbp;

namespace {

bench::JsonEmitter& emitter() {
    static bench::JsonEmitter e;
    return e;
}

// Pool size: TBP_THREADS if set, else one worker per hardware thread (the
// production configuration). Oversubscribing a small machine measures OS
// timeslicing, not the scheduler.
int threads() {
    if (char const* env = std::getenv("TBP_THREADS"))
        return std::atoi(env);
    unsigned const hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 2;
}

rt::Sched sched_of(int s) {
    return s == 0 ? rt::Sched::GlobalQueue : rt::Sched::WorkStealing;
}

char const* sched_name(int s) { return s == 0 ? "global" : "steal"; }

/// A microsecond-scale task body standing in for a tiny tile kernel.
void tiny_kernel(double* acc) {
    double x = *acc + 1.0;
    for (int k = 0; k < 64; ++k)
        x = x * 1.0000001 + 0.5;
    *acc = x;
}

/// Submit one QDWH-iteration-shaped epoch: `sweeps` successive right-looking
/// factorization sweeps over an nt x nt tile grid (panel task, panel column,
/// trailing updates), each sweep depending on the previous through the same
/// tiles — the lookahead structure the dataflow engine exploits.
std::uint64_t submit_qdwh_shaped(rt::Engine& eng, std::vector<double>& tiles,
                                 int nt, int sweeps) {
    auto key = [&](int i, int j) -> double* {
        return &tiles[static_cast<size_t>(i) * nt + j];
    };
    std::uint64_t n_tasks = 0;
    for (int s = 0; s < sweeps; ++s) {
        for (int k = 0; k < nt; ++k) {
            eng.submit("panel", {rt::readwrite(key(k, k))},
                       [p = key(k, k)] { tiny_kernel(p); }, /*priority=*/1);
            ++n_tasks;
            for (int i = k + 1; i < nt; ++i) {
                eng.submit("panel_col",
                           {rt::read(key(k, k)), rt::readwrite(key(i, k))},
                           [p = key(i, k)] { tiny_kernel(p); }, /*priority=*/1);
                ++n_tasks;
            }
            for (int j = k + 1; j < nt; ++j)
                for (int i = k + 1; i < nt; ++i) {
                    eng.submit("update",
                               {rt::read(key(i, k)), rt::read(key(k, j)),
                                rt::readwrite(key(i, j))},
                               [p = key(i, j)] { tiny_kernel(p); });
                    ++n_tasks;
                }
        }
    }
    return n_tasks;
}

void BM_SynthQdwhIteration(benchmark::State& state) {
    int const s = static_cast<int>(state.range(0));
    int const nt = static_cast<int>(state.range(1));
    rt::Engine eng(threads(), rt::Mode::TaskDataflow, sched_of(s));
    std::vector<double> tiles(static_cast<size_t>(nt) * nt, 0.0);
    std::uint64_t n_tasks = 0;
    Timer t;
    for (auto _ : state) {
        n_tasks += submit_qdwh_shaped(eng, tiles, nt, /*sweeps=*/3);
        eng.wait();
    }
    double const secs = t.elapsed();
    state.SetItemsProcessed(static_cast<std::int64_t>(n_tasks));
    auto const st = eng.sched_stats();
    state.counters["steals"] = static_cast<double>(st.steals);
    state.counters["sleeps"] = static_cast<double>(st.sleeps);
    state.SetLabel(sched_name(s));

    bench::JsonRecord r;
    r.field("bench", "synth_qdwh_iteration")
        .field("sched", sched_name(s))
        .field("nt", nt)
        .field("tasks", n_tasks)
        .field("seconds", secs)
        .field("tasks_per_sec",
               secs > 0 ? static_cast<double>(n_tasks) / secs : 0.0)
        .field("steals", st.steals)
        .field("sleeps", st.sleeps);
    emitter().add(r);
}

void BM_GeqrfFineTiles(benchmark::State& state) {
    int const s = static_cast<int>(state.range(0));
    std::int64_t const n = state.range(1);
    int const nb = 8;  // deliberately tiny tiles: many tasks, little work
    rt::Engine eng(threads(), rt::Mode::TaskDataflow, sched_of(s));
    gen::MatGenOptions opt;
    opt.cond = 1e4;
    opt.seed = 77;
    auto A0 = gen::cond_matrix<double>(eng, n, n, nb, opt);
    TiledMatrix<double> A(n, n, nb);
    auto Tm = la::alloc_qr_t(A);
    std::uint64_t n_tasks = 0;
    for (auto _ : state) {
        state.PauseTiming();
        la::copy(eng, A0, A);
        eng.wait();
        eng.reset_stats();
        state.ResumeTiming();
        la::geqrf(eng, A, Tm);
        eng.wait();
        n_tasks += eng.tasks_executed();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n_tasks));
    auto const st = eng.sched_stats();
    state.counters["steals"] = static_cast<double>(st.steals);
    state.SetLabel(sched_name(s));

    bench::JsonRecord r;
    r.field("bench", "geqrf_fine_tiles")
        .field("sched", sched_name(s))
        .field("n", n)
        .field("tasks", n_tasks)
        .field("steals", st.steals);
    emitter().add(r);
}

}  // namespace

BENCHMARK(BM_SynthQdwhIteration)
    ->ArgNames({"sched", "nt"})
    ->Args({0, 12})
    ->Args({1, 12})
    ->Args({0, 20})
    ->Args({1, 20})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK(BM_GeqrfFineTiles)
    ->ArgNames({"sched", "n"})
    ->Args({0, 128})
    ->Args({1, 128})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (char const* path = std::getenv("TBP_BENCH_JSON"))
        if (!emitter().empty())
            emitter().write(path);
    return 0;
}
