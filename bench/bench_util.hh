// Shared helpers for the figure-reproduction benches.

#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/qdwh.hh"
#include "gen/matgen.hh"
#include "perf/qdwh_model.hh"
#include "ref/dense.hh"

namespace tbp::bench {

inline void header(char const* fig, char const* title) {
    std::printf("\n=======================================================================\n");
    std::printf("%s — %s\n", fig, title);
    std::printf("=======================================================================\n");
}

/// Paper accuracy metrics for a completed polar decomposition.
struct Accuracy {
    double orth;      ///< ||I - U^H U||_F / sqrt(n)
    double backward;  ///< ||A - U H||_F / ||A||_F
};

template <typename T>
Accuracy accuracy(ref::Dense<T> const& A, TiledMatrix<T> const& U,
                  TiledMatrix<T> const& H) {
    auto Ud = ref::to_dense(U);
    auto Hd = ref::to_dense(H);
    Accuracy a;
    a.orth = ref::orthogonality(Ud) / std::sqrt(static_cast<double>(Ud.n()));
    auto UH = ref::gemm(Op::NoTrans, Op::NoTrans, T(1), Ud, Hd);
    a.backward = ref::diff_fro(UH, A) / ref::norm_fro(A);
    return a;
}

/// Threads for real-execution benches (1-core machines still want a few for
/// the dataflow scheduler to exercise).
inline int bench_threads() {
    if (char const* env = std::getenv("TBP_THREADS"))
        return std::atoi(env);
    return 3;
}

/// Sizes for real-execution benches; override with TBP_SIZES="64,128".
inline std::vector<std::int64_t> bench_sizes(std::vector<std::int64_t> dflt) {
    char const* env = std::getenv("TBP_SIZES");
    if (!env)
        return dflt;
    std::vector<std::int64_t> out;
    std::string s(env);
    size_t pos = 0;
    while (pos < s.size()) {
        size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        out.push_back(std::atoll(s.substr(pos, comma - pos).c_str()));
        pos = comma + 1;
    }
    return out;
}

}  // namespace tbp::bench
