// Shared helpers for the figure-reproduction benches: console formatting,
// accuracy metrics, environment-variable knobs, and the machine-readable
// JSON result emitter used by bench_gemm_kernel and bench_scheduler.

#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "core/qdwh.hh"
#include "gen/matgen.hh"
#include "perf/qdwh_model.hh"
#include "ref/dense.hh"

namespace tbp::bench {

inline void header(char const* fig, char const* title) {
    std::printf("\n=======================================================================\n");
    std::printf("%s — %s\n", fig, title);
    std::printf("=======================================================================\n");
}

/// Paper accuracy metrics for a completed polar decomposition.
struct Accuracy {
    double orth;      ///< ||I - U^H U||_F / sqrt(n)
    double backward;  ///< ||A - U H||_F / ||A||_F
};

template <typename T>
Accuracy accuracy(ref::Dense<T> const& A, TiledMatrix<T> const& U,
                  TiledMatrix<T> const& H) {
    auto Ud = ref::to_dense(U);
    auto Hd = ref::to_dense(H);
    Accuracy a;
    a.orth = ref::orthogonality(Ud) / std::sqrt(static_cast<double>(Ud.n()));
    auto UH = ref::gemm(Op::NoTrans, Op::NoTrans, T(1), Ud, Hd);
    a.backward = ref::diff_fro(UH, A) / ref::norm_fro(A);
    return a;
}

/// Predicted kernel-counter flops of one stacked-QR factor + Q generation on
/// W = [A; I] for an n x n A tiled with nb, dense or structured — the exact
/// value blas::kernel::flops_performed() must advance by (same per-call
/// truncation; see perf::stacked_qr_kernel_flops). Used by the bench JSON's
/// qr_model_match field so downstream tooling can assert exactness.
template <typename T>
double stacked_qr_model_flops(std::int64_t n, int nb, bool structured) {
    auto const cols = TiledMatrix<T>::chop(n, nb);
    return perf::stacked_qr_kernel_flops(cols, cols, structured,
                                         fma_flops<T>() / 2.0);
}

/// Threads for real-execution benches (1-core machines still want a few for
/// the dataflow scheduler to exercise).
inline int bench_threads() {
    if (char const* env = std::getenv("TBP_THREADS"))
        return std::atoi(env);
    return 3;
}

/// Sizes for real-execution benches; override with TBP_SIZES="64,128".
inline std::vector<std::int64_t> bench_sizes(std::vector<std::int64_t> dflt) {
    char const* env = std::getenv("TBP_SIZES");
    if (!env)
        return dflt;
    std::vector<std::int64_t> out;
    std::string s(env);
    size_t pos = 0;
    while (pos < s.size()) {
        size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        out.push_back(std::atoll(s.substr(pos, comma - pos).c_str()));
        pos = comma + 1;
    }
    return out;
}

// --- machine-readable results ------------------------------------------------
//
// Benches that feed tooling (bench_gemm_kernel, bench_scheduler) emit their
// measurements as one JSON document:
//
//   { "machine": { "host": ..., "hw_concurrency": ..., "compiler": ... },
//     "records": [ { ... }, ... ] }
//
// Records are flat key/value objects; numbers stay numbers so downstream
// scripts never parse formatted strings.

/// One flat JSON object built field by field.
class JsonRecord {
public:
    JsonRecord& field(std::string const& key, double v) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.17g", v);
        return raw(key, buf);
    }
    JsonRecord& field(std::string const& key, std::int64_t v) {
        return raw(key, std::to_string(v));
    }
    JsonRecord& field(std::string const& key, int v) {
        return field(key, static_cast<std::int64_t>(v));
    }
    JsonRecord& field(std::string const& key, std::uint64_t v) {
        return raw(key, std::to_string(v));
    }
    JsonRecord& field(std::string const& key, bool v) {
        return raw(key, v ? "true" : "false");
    }
    JsonRecord& field(std::string const& key, std::string const& v) {
        return raw(key, quote(v));
    }
    JsonRecord& field(std::string const& key, char const* v) {
        return raw(key, quote(v));
    }

    std::string str() const { return "{" + body_ + "}"; }

    /// RFC 8259 string escaping: quote, backslash, the common control-char
    /// shorthands, and \u00XX for the rest of the C0 range. Anything else
    /// (including UTF-8 multibyte sequences) passes through unchanged.
    static std::string quote(std::string const& s) {
        static char const* hex = "0123456789abcdef";
        std::string out = "\"";
        for (char c : s) {
            unsigned char const u = static_cast<unsigned char>(c);
            switch (c) {
                case '"': out += "\\\""; break;
                case '\\': out += "\\\\"; break;
                case '\b': out += "\\b"; break;
                case '\f': out += "\\f"; break;
                case '\n': out += "\\n"; break;
                case '\r': out += "\\r"; break;
                case '\t': out += "\\t"; break;
                default:
                    if (u < 0x20) {
                        out += "\\u00";
                        out += hex[(u >> 4) & 0xf];
                        out += hex[u & 0xf];
                    } else {
                        out += c;
                    }
            }
        }
        return out + "\"";
    }

private:
    JsonRecord& raw(std::string const& key, std::string const& val) {
        if (!body_.empty())
            body_ += ",";
        body_ += quote(key) + ":" + val;
        return *this;
    }
    std::string body_;
};

/// Collects records and writes the document (machine header + records).
class JsonEmitter {
public:
    void add(JsonRecord const& r) { records_.push_back(r.str()); }
    bool empty() const { return records_.empty(); }

    std::string document() const {
        std::ostringstream os;
        os << "{\"machine\":" << machine_record().str() << ",\"records\":[";
        for (size_t i = 0; i < records_.size(); ++i)
            os << (i ? "," : "") << records_[i];
        os << "]}\n";
        return os.str();
    }

    /// Write the document to `path`; returns false (with a stderr note) on
    /// I/O failure so benches can keep their console output regardless.
    bool write(std::string const& path) const {
        std::ofstream out(path);
        if (!out) {
            std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
            return false;
        }
        out << document();
        return static_cast<bool>(out);
    }

    static JsonRecord machine_record() {
        JsonRecord m;
        char host[256] = "unknown";
#if defined(__unix__) || defined(__APPLE__)
        if (gethostname(host, sizeof host) != 0)
            std::snprintf(host, sizeof host, "unknown");
        host[sizeof host - 1] = '\0';
#endif
        m.field("host", host);
        m.field("hw_concurrency",
                static_cast<std::int64_t>(std::thread::hardware_concurrency()));
#if defined(__VERSION__)
        m.field("compiler", __VERSION__);
#endif
        return m;
    }

private:
    std::vector<std::string> records_;
};

}  // namespace tbp::bench
