// Figure 6: scalability study of SLATE-QDWH across Frontier node counts
// (machine-model projection).
//
// Paper shape: performance increases with node count and with matrix size;
// GPU-aware MPI matters because Frontier's NICs attach to the GPUs.

#include <cinttypes>
#include <cstdio>

#include "bench_util.hh"

using namespace tbp;
using namespace tbp::perf;

int main() {
    bench::header("Figure 6", "SLATE-QDWH GPU scalability on Frontier "
                              "(machine-model projection)");
    int const node_counts[] = {1, 2, 4, 8, 16};
    std::vector<std::int64_t> const sizes = {20000, 40000, 80000, 120000,
                                             175000, 250000};

    std::printf("%9s", "n \\ nodes");
    for (int nodes : node_counts)
        std::printf("  %9d", nodes);
    std::printf("\n");
    for (auto n : sizes) {
        std::printf("%9" PRId64, n);
        for (int nodes : node_counts) {
            auto m = MachineModel::frontier(nodes);
            if (n > m.max_n(Device::Gpu)) {
                std::printf("  %9s", "-");
                continue;
            }
            auto r = qdwh_perf(m, Device::Gpu, Schedule::TaskDataflow, n, 320);
            std::printf("  %6.1f TF", r.tflops);
        }
        std::printf("\n");
    }

    // GPU-aware MPI ablation (Section 7.2 discussion).
    std::printf("\nGPU-aware MPI ablation at 8 nodes, n = 100k:\n");
    auto m = MachineModel::frontier(8);
    auto aware = qdwh_perf(m, Device::Gpu, Schedule::TaskDataflow, 100000, 320);
    m.gpu_aware_mpi = false;
    auto staged = qdwh_perf(m, Device::Gpu, Schedule::TaskDataflow, 100000, 320);
    std::printf("  GPU-aware MPI: %7.2f TF\n", aware.tflops);
    std::printf("  host-staged  : %7.2f TF  (%.0f%% of aware)\n", staged.tflops,
                100.0 * staged.tflops / aware.tflops);
    std::printf("\npaper: performance rises with nodes and size; GPU-aware "
                "MPI beneficial on Frontier (NIC on GPU)\n");
    return 0;
}
