// Section 6.2: norm2est quality (measured). The paper's criterion:
// tolerance 0.1, "approximations accurate to a factor of 5 ... are entirely
// satisfactory", and QDWH still converges within its 6-iteration bound.
// Includes the virtual-rank distributed Algorithm 2 (local column sums +
// Allreduce + gemmA) cross-check.

#include <cinttypes>
#include <cstdio>

#include "bench_util.hh"
#include "comm/dist.hh"
#include "cond/norm2est.hh"

using namespace tbp;

int main() {
    bench::header("Section 6.2", "two-norm estimation accuracy (measured)");
    std::printf("%9s  %12s  %10s  %10s  %8s\n", "dist", "kappa", "true s1",
                "estimate", "ratio");

    std::int64_t const n = 384;
    int const nb = 32;
    struct Case {
        gen::SigmaDist dist;
        char const* name;
        double kappa;
    };
    for (auto const& c : std::initializer_list<Case>{
             {gen::SigmaDist::Geometric, "geom", 1e4},
             {gen::SigmaDist::Geometric, "geom", 1e16},
             {gen::SigmaDist::Arithmetic, "arith", 1e8},
             {gen::SigmaDist::ClusterAtOne, "cluster", 1e8},
             {gen::SigmaDist::LogUniform, "loguni", 1e8}}) {
        rt::Engine eng(bench::bench_threads());
        gen::MatGenOptions opt;
        opt.cond = c.kappa;
        opt.dist = c.dist;
        opt.seed = 7000;
        auto A = gen::cond_matrix<double>(eng, n, n, nb, opt);
        double const est = cond::norm2est(eng, A);
        std::printf("%9s  %12.0e  %10.4f  %10.4f  %8.3f\n", c.name, c.kappa,
                    1.0, est, est / 1.0);
    }

    std::printf("\ndistributed Algorithm 2 (virtual ranks) vs shared memory, "
                "n = 96:\n");
    {
        std::int64_t const nd = 96;
        rt::Engine eng(bench::bench_threads());
        gen::MatGenOptions opt;
        opt.cond = 1e6;
        opt.seed = 7001;
        auto A = gen::cond_matrix<double>(eng, nd, nd, 16, opt);
        auto Ad = ref::to_dense(A);
        double const shared = cond::norm2est(eng, A);
        for (auto [p, q] : {std::pair{1, 1}, {2, 2}, {2, 3}}) {
            comm::World world(p * q);
            double est = 0;
            world.run([&](comm::Communicator& cc) {
                comm::DistMatrix<double> D(cc, nd, nd, 16, Grid{p, q});
                D.fill([&](std::int64_t i, std::int64_t j) { return Ad(i, j); });
                double const e = comm::dist_norm2est(cc, D);
                if (cc.rank() == 0)
                    est = e;
            });
            std::printf("  grid %dx%d: %.6f  (shared-memory: %.6f)\n", p, q,
                        est, shared);
        }
    }
    std::printf("\npaper: factor-5 accuracy suffices; tol = 0.1\n");
    return 0;
}
