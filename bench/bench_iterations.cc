// Section 4 in-text claims: iteration counts vs condition number (measured).
//
//   "the upper-bound for the number of iterations is six, assuming double
//    precision arithmetic. Experimentally, testing ill-conditioned matrices
//    requires three QR and three Cholesky-based iterations, while
//    well-conditioned matrices need two Cholesky-based and no QR-based
//    iterations."

#include <cinttypes>
#include <cstdio>

#include "bench_util.hh"

using namespace tbp;

int main() {
    bench::header("Section 4", "QDWH iteration counts vs condition number "
                               "(measured, double, n = 256)");
    std::printf("%10s  %6s  %6s  %6s  %12s  %12s\n", "kappa", "total", "QR",
                "Chol", "orth err", "bwd err");

    std::int64_t const n = 256;
    int const nb = 32;
    for (double kappa : {1.0, 1e2, 1e4, 1e8, 1e12, 1e16}) {
        rt::Engine eng(bench::bench_threads());
        gen::MatGenOptions opt;
        opt.cond = kappa;
        opt.seed = 2000;
        auto A = gen::cond_matrix<double>(eng, n, n, nb, opt);
        auto Ad = ref::to_dense(A);
        TiledMatrix<double> H(n, n, nb);
        auto info = qdwh(eng, A, H);
        auto acc = bench::accuracy(Ad, A, H);
        std::printf("%10.0e  %6d  %6d  %6d  %12.3e  %12.3e\n", kappa,
                    info.iterations, info.it_qr, info.it_chol, acc.orth,
                    acc.backward);
    }

    // The paper's exact well-conditioned claim holds with the exact
    // sigma_min bound supplied (the QR+trcondest estimate is conservative
    // and may add one iteration).
    {
        rt::Engine eng(bench::bench_threads());
        gen::MatGenOptions opt;
        opt.cond = 1.01;
        opt.seed = 2001;
        auto A = gen::cond_matrix<double>(eng, n, n, nb, opt);
        TiledMatrix<double> H(n, n, nb);
        QdwhOptions o;
        o.condest_override = 1.0 / opt.cond;
        auto info = qdwh(eng, A, H, o);
        std::printf("\nwell-conditioned (kappa=1.01, exact bound): %d QR + %d "
                    "Cholesky iterations\n",
                    info.it_qr, info.it_chol);
    }
    std::printf("paper: <= 6 iterations in double; ill-conditioned -> 3 QR + "
                "3 Cholesky; well-conditioned -> 0 QR + 2 Cholesky\n");
    return 0;
}
