// bench_precision — adaptive precision-ladder QDWH vs the all-native run
// (core/qdwh_ladder.hh, perf/prec_model.hh).
//
// What it measures and checks:
//   - the executed rung schedule (bf16 / float / native per iteration) of
//     the adaptive ladder on ill-conditioned double inputs;
//   - accuracy: the adaptive run's orthogonality must stay at native
//     machine precision (<= 50 eps64 — the native-tail contract). The
//     backward error is *reported*, not gated: bf16 rungs commit a
//     backward perturbation at bf16 precision that later native iterations
//     cannot undo (the standard mixed-precision polar trade — see
//     core/precision_policy.hh);
//   - exact cost-model agreement: the per-precision kernel-counter flop
//     buckets measured by the run must equal perf::qdwh_prec_kernel_flops
//     bit-for-bit (same formulas, same per-call truncation) — reported as
//     the prec_model_match JSON field tools/check_bench_json.py gates on;
//   - projected effective iterate throughput: with the hardware-class rate
//     model (fp32 = 2x fp64, bf16 = 4x fp64), the adaptive schedule must
//     be >= 1.5x the all-native run at n >= 512.
//
// Usage:
//   bench_precision [--smoke] [--json PATH]
//
// --smoke runs inside ctest (label "prec"): a single n = 512 double-path
// case, exits nonzero on a model mismatch, an orthogonality miss, a
// schedule that never left the native rung, or a projected speedup below
// 1.5x. Results land in BENCH_precision.json.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/timer.hh"
#include "perf/prec_model.hh"

using namespace tbp;

namespace {

struct RunOut {
    QdwhInfo info;
    bench::Accuracy acc{};
    double wall = 0;
    bool ok = false;
    bool model_match = false;
};

std::string rung_string(std::vector<prec::Prec> const& rungs) {
    std::string s;
    for (auto r : rungs) {
        if (!s.empty())
            s += ",";
        s += prec::prec_name(r);
    }
    return s;
}

/// Exact per-bucket comparison of the measured kernel counters against the
/// cost-model replay (valid only for kernel_flops_exact runs).
bool prec_model_match(QdwhInfo const& info, std::vector<int> const& cols,
                      bool structured) {
    if (!info.kernel_flops_exact)
        return false;
    auto const model = perf::qdwh_prec_kernel_flops(
        cols, cols, info.rungs, info.it_qr, structured, /*compute_h=*/true,
        fma_flops<double>() / 2.0, prec::Prec::Double);
    for (std::size_t p = 0; p < static_cast<std::size_t>(prec::kNumPrec); ++p)
        if (model.by_prec[p] != info.kernel_flops_by_prec[p])
            return false;
    return true;
}

RunOut run_one(int threads, std::int64_t n, int nb, double cond,
               prec::Precision request) {
    RunOut out;
    rt::Engine eng(threads);
    gen::MatGenOptions g;
    g.cond = cond;
    g.seed = 42 + static_cast<std::uint64_t>(n);
    auto A = gen::cond_matrix<double>(eng, n, n, nb, g);
    auto Ad = ref::to_dense(A);
    TiledMatrix<double> H(n, n, nb);
    QdwhOptions qo;
    qo.precision.request = request;
    Timer t;
    Status const s = qdwh_status(eng, A, H, out.info, qo);
    out.wall = t.elapsed();
    out.ok = s == Status::Ok && out.info.converged;
    if (!out.ok) {
        std::fprintf(stderr, "bench_precision: n=%" PRId64 " %s run failed: %s\n",
                     n, prec::precision_name(request), status_name(s));
        return out;
    }
    out.acc = bench::accuracy(Ad, A, H);
    out.model_match =
        prec_model_match(out.info, TiledMatrix<double>::chop(n, nb),
                         qo.structured_qr);
    return out;
}

/// Projected time of a run's executed schedule under the hardware-class
/// rate model (native flop-units; lower is faster).
double projected_time(QdwhInfo const& info, std::vector<int> const& cols,
                      bool structured) {
    return perf::qdwh_prec_time_model(cols, cols, info.rungs, info.it_qr,
                                      structured, /*compute_h=*/true,
                                      fma_flops<double>() / 2.0,
                                      prec::Prec::Double);
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    std::string json_path = "BENCH_precision.json";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--smoke")) {
            smoke = true;
        } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--smoke] [--json PATH]\n", argv[0]);
            return 2;
        }
    }

    int const threads = bench::bench_threads();
    int const nb = 64;
    double const cond = 1e12;
    double const eps64 = std::numeric_limits<double>::epsilon();
    bench::header("precision", "adaptive precision-ladder QDWH vs all-native "
                               "(measured, kappa = 1e12, double)");
    std::printf("%6s  %6s  %10s  %10s  %10s  %10s  %7s  %5s  %s\n", "n",
                "series", "wall_s", "orth", "backward", "speedup_x", "model",
                "iters", "rungs");

    auto const sizes = smoke ? std::vector<std::int64_t>{512}
                             : bench::bench_sizes({256, 384, 512});
    bench::JsonEmitter out;
    bool ok = true;
    auto check = [&](bool cond_, char const* what) {
        if (!cond_) {
            std::printf("smoke FAIL: %s\n", what);
            ok = false;
        }
    };

    for (auto n : sizes) {
        auto const cols = TiledMatrix<double>::chop(n, nb);
        auto const native =
            run_one(threads, n, nb, cond, prec::Precision::Native);
        auto const adapt =
            run_one(threads, n, nb, cond, prec::Precision::Adaptive);
        if (!native.ok || !adapt.ok) {
            ok = false;
            continue;
        }

        // Effective iterate throughput ratio under the projected rate model:
        // each run costed on its own executed schedule.
        double const t_native = projected_time(native.info, cols, true);
        double const t_adapt = projected_time(adapt.info, cols, true);
        double const speedup = t_adapt > 0 ? t_native / t_adapt : 0;

        struct Row {
            char const* series;
            RunOut const* r;
        } rows[2] = {{"native", &native}, {"adaptive", &adapt}};
        for (auto const& row : rows) {
            std::printf("%6" PRId64 "  %8s  %10.3f  %10.3e  %10.3e  %10.2f  "
                        "%7s  %5d  %s\n",
                        n, row.series, row.r->wall, row.r->acc.orth,
                        row.r->acc.backward,
                        row.r == &adapt ? speedup : 1.0,
                        row.r->model_match ? "exact" : "MISS",
                        row.r->info.iterations,
                        rung_string(row.r->info.rungs).c_str());
            bench::JsonRecord rec;
            rec.field("bench", "precision").field("series", row.series);
            rec.field("n", n).field("nb", nb).field("cond", cond);
            rec.field("iterations", row.r->info.iterations)
                .field("it_qr", row.r->info.it_qr)
                .field("fallbacks", row.r->info.fallbacks)
                .field("rungs", rung_string(row.r->info.rungs));
            rec.field("wall_s", row.r->wall)
                .field("orth", row.r->acc.orth)
                .field("backward", row.r->acc.backward);
            rec.field("flops_double",
                      row.r->info.kernel_flops_by_prec[static_cast<std::size_t>(
                          prec::Prec::Double)])
                .field("flops_float",
                       row.r->info.kernel_flops_by_prec[static_cast<std::size_t>(
                           prec::Prec::Float)])
                .field("flops_bf16",
                       row.r->info.kernel_flops_by_prec[static_cast<std::size_t>(
                           prec::Prec::Bf16)]);
            rec.field("prec_model_match", row.r->model_match);
            rec.field("projected_speedup", row.r == &adapt ? speedup : 1.0);
            rec.field("orth_ok", row.r->acc.orth <= 50 * eps64);
            out.add(rec);
        }

        bool left_native = false;
        for (auto r : adapt.info.rungs)
            left_native |= r != prec::Prec::Double;
        check(native.model_match, "native run kernel counters != cost model");
        check(adapt.model_match, "adaptive run kernel counters != cost model");
        check(adapt.acc.orth <= 50 * eps64,
              "adaptive orthogonality above 50 eps64");
        check(left_native, "adaptive schedule never left the native rung");
        if (n >= 512)
            check(speedup >= 1.5,
                  "projected adaptive speedup below 1.5x at n >= 512");
    }
    out.write(json_path);

    if (smoke) {
        std::printf("smoke: %s\n", ok ? "PASS" : "FAIL");
        return ok ? 0 : 1;
    }
    return ok ? 0 : 1;
}
