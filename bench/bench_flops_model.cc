// Section 4 complexity model validation (measured): the library's per-task
// flop counters, accumulated over a full QDWH run, vs the paper's formula
//
//   4/3 n^3 + (8 + 2/3) n^3 #it_QR + (4 + 1/3) n^3 #it_Chol + 2 n^3.

#include <cinttypes>
#include <cstdio>

#include "bench_util.hh"
#include "common/flops.hh"

using namespace tbp;

int main() {
    bench::header("Section 4", "QDWH flop model vs measured task flop "
                               "counters (double, kappa = 1e16)");
    std::printf("%8s  %5s  %5s  %14s  %14s  %8s\n", "n", "itQR", "itCh",
                "measured", "paper model", "ratio");

    for (std::int64_t n : bench::bench_sizes({96, 160, 256, 384})) {
        int const nb = 32;
        rt::Engine eng(bench::bench_threads());
        gen::MatGenOptions opt;
        opt.cond = 1e16;
        opt.seed = 4000;
        auto A = gen::cond_matrix<double>(eng, n, n, nb, opt);
        eng.reset_stats();
        TiledMatrix<double> H(n, n, nb);
        auto info = qdwh(eng, A, H);
        double const model = flops::qdwh_model(static_cast<double>(n),
                                               info.it_qr, info.it_chol);
        std::printf("%8" PRId64 "  %5d  %5d  %14.4e  %14.4e  %8.3f\n", n,
                    info.it_qr, info.it_chol, info.flops, model,
                    info.flops / model);
    }
    std::printf("\nratio -> 1 as n grows (the formula drops O(n^2 nb) panel "
                "and estimator terms)\n");
    return 0;
}
