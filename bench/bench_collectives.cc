// Collective-algorithm benchmark: linear (legacy oracle) vs tree /
// recursive-doubling / ring collectives, swept over rank counts and message
// sizes. For every case it cross-checks the measured CommStats totals
// (messages, bytes, max per-rank sends) against the cost model's
// collective_volume prediction — the two must match exactly, since the
// predictor replays the algorithm loops.
//
// On a small host the virtual ranks time-share cores, so wall time is noisy;
// the headline metric is the root/ring bottleneck `max_rank_sends` (linear
// bcast: P-1 at the root; tree: ceil(log2 P)), which is exact and
// machine-independent.
//
// Usage:
//   bench_collectives               full sweep, console table +
//                                   BENCH_collectives.json
//   bench_collectives --json PATH   write the JSON document to PATH
//   bench_collectives --smoke       fast ctest mode: asserts prediction ==
//                                   measurement and that tree/ring beat the
//                                   linear bottleneck at P >= 4

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "comm/communicator.hh"
#include "common/timer.hh"
#include "perf/cost_model.hh"
#include "perf/sched_report.hh"

using namespace tbp;

namespace {

char const* kind_name(perf::CollKind k) {
    switch (k) {
        case perf::CollKind::Bcast: return "bcast";
        case perf::CollKind::Reduce: return "reduce";
        case perf::CollKind::Allreduce: return "allreduce";
        case perf::CollKind::Allgather: return "allgather";
    }
    return "?";
}

struct Measured {
    perf::CommReport rep;
    double sec_per_op = 0;
};

/// Run `reps` iterations of one collective on P ranks, count doubles each.
Measured run_case(perf::CollKind kind, comm::coll::Algo algo, int P,
                  std::size_t count, int reps) {
    comm::coll::Config cfg;
    switch (kind) {
        case perf::CollKind::Bcast: cfg.bcast = algo; break;
        case perf::CollKind::Reduce: cfg.reduce = algo; break;
        case perf::CollKind::Allreduce: cfg.allreduce = algo; break;
        case perf::CollKind::Allgather: cfg.allgather = algo; break;
    }
    if (algo == comm::coll::Algo::Ring)
        cfg.deterministic = false;

    comm::World world(P);
    world.set_coll_config(cfg);
    Timer t;
    world.run([&](comm::Communicator& c) {
        std::vector<double> buf(count);
        std::vector<double> all(count * static_cast<std::size_t>(P));
        for (int r = 0; r < reps; ++r) {
            for (std::size_t i = 0; i < count; ++i)
                buf[i] = static_cast<double>((c.rank() + 1) * (r + 1))
                         + static_cast<double>(i % 17);
            switch (kind) {
                case perf::CollKind::Bcast:
                    c.bcast(buf.data(), count, 0);
                    break;
                case perf::CollKind::Reduce:
                    c.reduce(buf.data(), count,
                             [](double& a, double const& b) { a += b; }, 0);
                    break;
                case perf::CollKind::Allreduce:
                    c.allreduce_sum(buf.data(), count);
                    break;
                case perf::CollKind::Allgather:
                    c.allgather(buf.data(), count, all.data());
                    break;
            }
        }
    });
    Measured m;
    m.sec_per_op = t.elapsed() / reps;
    m.rep = perf::comm_report(world);
    return m;
}

/// Predicted traffic of `reps` iterations (volumes scale linearly).
perf::CollVolume predict(perf::CollKind kind, comm::coll::Algo algo, int P,
                         std::size_t count, int reps) {
    auto v = perf::collective_volume(kind, algo, P, count, sizeof(double));
    auto const r = static_cast<std::uint64_t>(reps);
    v.messages *= r;
    v.bytes *= r;
    v.max_rank_sends *= r;
    v.max_rank_bytes *= r;
    v.bcast_bytes *= r;
    v.reduce_bytes *= r;
    v.allreduce_bytes *= r;
    v.allgather_bytes *= r;
    v.p2p_bytes *= r;
    return v;
}

/// The per-family attribution must charge everything to the family that was
/// called: the field matching `kind` equals `bytes`, the rest stay zero.
bool check_attribution(perf::CollKind kind, perf::CollVolume const& v) {
    std::uint64_t const want[4] = {v.bcast_bytes, v.reduce_bytes,
                                   v.allreduce_bytes, v.allgather_bytes};
    for (int i = 0; i < 4; ++i) {
        bool const mine = i == static_cast<int>(kind);
        if (want[i] != (mine ? v.bytes : 0))
            return false;
    }
    return v.p2p_bytes == 0;
}

bool check_match(Measured const& m, perf::CollVolume const& v) {
    return m.rep.total.sends == v.messages
           && m.rep.total.bytes_sent == v.bytes
           && m.rep.max_rank_sends() == v.max_rank_sends
           && m.rep.max_rank_bytes() == v.max_rank_bytes
           && m.rep.leaked == 0;
}

std::vector<comm::coll::Algo> algos_for(perf::CollKind kind) {
    using comm::coll::Algo;
    switch (kind) {
        case perf::CollKind::Bcast:
        case perf::CollKind::Reduce:
            return {Algo::Linear, Algo::Tree};
        case perf::CollKind::Allreduce:
            return {Algo::Linear, Algo::Tree, Algo::RecDouble, Algo::Ring};
        case perf::CollKind::Allgather:
            return {Algo::Linear, Algo::Tree, Algo::Ring};
    }
    return {};
}

int run_sweep(std::string const& json_path) {
    bench::header("bench_collectives",
                  "algorithmic collectives vs the linear oracle");
    bench::JsonEmitter out;
    bool all_match = true;

    // Weak-scaling tail: past 8 virtual ranks the time-shared threads make
    // wall time meaningless and the allgather buffers grow as P * count, so
    // the large-P rows keep the exact traffic cross-check but drop the big
    // message size and most reps.
    std::vector<int> const ranks = {2, 3, 4, 6, 8, 16, 64};
    int const reps_small = 20;

    for (auto kind : {perf::CollKind::Bcast, perf::CollKind::Reduce,
                      perf::CollKind::Allreduce, perf::CollKind::Allgather}) {
        std::printf("\n%s:\n", kind_name(kind));
        for (int P : ranks) {
            std::vector<std::size_t> const counts =
                P <= 8 ? std::vector<std::size_t>{256, 4096, 65536}
                       : std::vector<std::size_t>{256, 4096};
            int const reps = P <= 8 ? reps_small : 3;
            for (std::size_t count : counts) {
                for (auto algo : algos_for(kind)) {
                    auto m = run_case(kind, algo, P, count, reps);
                    auto v = predict(kind, algo, P, count, reps);
                    bool const ok =
                        check_match(m, v) && check_attribution(kind, v);
                    all_match = all_match && ok;
                    std::printf(
                        "  P=%d count=%6zu %-9s %8.1f us/op  msgs %6llu  "
                        "max/rank sends %4llu  model %s\n",
                        P, count, comm::coll::algo_name(algo),
                        m.sec_per_op * 1e6,
                        static_cast<unsigned long long>(m.rep.total.sends),
                        static_cast<unsigned long long>(
                            m.rep.max_rank_sends()),
                        ok ? "match" : "MISMATCH");
                    bench::JsonRecord r;
                    r.field("collective", kind_name(kind))
                        .field("algo", comm::coll::algo_name(algo))
                        .field("ranks", P)
                        .field("count", static_cast<std::int64_t>(count))
                        .field("bytes_per_rank",
                               static_cast<std::int64_t>(count
                                                         * sizeof(double)))
                        .field("reps", reps)
                        .field("sec_per_op", m.sec_per_op)
                        .field("messages", m.rep.total.sends)
                        .field("bytes", m.rep.total.bytes_sent)
                        .field("max_rank_sends", m.rep.max_rank_sends())
                        .field("max_rank_bytes", m.rep.max_rank_bytes())
                        .field("wait_rank_seconds",
                               m.rep.total.wait_seconds / reps)
                        .field("model_messages", v.messages)
                        .field("model_bytes", v.bytes)
                        .field("model_max_rank_sends", v.max_rank_sends)
                        .field("model_max_rank_bytes", v.max_rank_bytes)
                        .field("model_bcast_bytes", v.bcast_bytes)
                        .field("model_reduce_bytes", v.reduce_bytes)
                        .field("model_allreduce_bytes", v.allreduce_bytes)
                        .field("model_allgather_bytes", v.allgather_bytes)
                        .field("model_p2p_bytes", v.p2p_bytes)
                        .field("model_match", ok);
                    out.add(r);
                }
            }
        }
    }

    if (out.write(json_path))
        std::printf("\nwrote %s\n", json_path.c_str());
    std::printf("model cross-check: %s\n",
                all_match ? "all cases match" : "MISMATCHES (see above)");
    return all_match ? 0 : 1;
}

int run_smoke(std::string const& json_path) {
    using comm::coll::Algo;
    bool ok = true;
    auto fail = [&](char const* what) {
        std::printf("smoke FAIL: %s\n", what);
        ok = false;
    };
    bench::JsonEmitter out;

    // Every (kind, algo) pair must match the model exactly, including a
    // non-power-of-two rank count.
    for (int P : {4, 6}) {
        for (auto kind :
             {perf::CollKind::Bcast, perf::CollKind::Reduce,
              perf::CollKind::Allreduce, perf::CollKind::Allgather}) {
            for (auto algo : algos_for(kind)) {
                auto m = run_case(kind, algo, P, 512, 3);
                auto v = predict(kind, algo, P, 512, 3);
                bool const attr_ok = check_attribution(kind, v);
                bool const match = check_match(m, v);
                bench::JsonRecord rec;
                rec.field("bench", "collectives_smoke");
                rec.field("kind", kind_name(kind));
                rec.field("algo", comm::coll::algo_name(algo));
                rec.field("ranks", P);
                rec.field("measured_bytes", m.rep.total.bytes_sent);
                rec.field("measured_msgs", m.rep.total.sends);
                rec.field("attribution_ok", attr_ok);
                rec.field("volume_model_match", match);
                out.add(rec);
                if (!attr_ok)
                    fail("per-family byte attribution wrong");
                if (!match) {
                    std::printf("  %s/%s P=%d: measured %llu msgs %llu bytes "
                                "max %llu vs model %llu/%llu/%llu\n",
                                kind_name(kind), comm::coll::algo_name(algo),
                                P,
                                static_cast<unsigned long long>(
                                    m.rep.total.sends),
                                static_cast<unsigned long long>(
                                    m.rep.total.bytes_sent),
                                static_cast<unsigned long long>(
                                    m.rep.max_rank_sends()),
                                static_cast<unsigned long long>(v.messages),
                                static_cast<unsigned long long>(v.bytes),
                                static_cast<unsigned long long>(
                                    v.max_rank_sends));
                    fail("measured traffic != collective_volume prediction");
                }
            }
        }
    }

    // The algorithmic collectives must beat the linear root bottleneck at
    // P >= 4 (the whole point of the engine).
    for (int P : {4, 8}) {
        auto lin_b = predict(perf::CollKind::Bcast, Algo::Linear, P, 512, 1);
        auto tre_b = predict(perf::CollKind::Bcast, Algo::Tree, P, 512, 1);
        if (tre_b.max_rank_sends >= lin_b.max_rank_sends)
            fail("tree bcast does not beat linear bottleneck");
        auto lin_a =
            predict(perf::CollKind::Allreduce, Algo::Linear, P, 512, 1);
        auto rec_a =
            predict(perf::CollKind::Allreduce, Algo::RecDouble, P, 512, 1);
        auto rin_a = predict(perf::CollKind::Allreduce, Algo::Ring, P,
                             65536, 1);
        auto lin_big =
            predict(perf::CollKind::Allreduce, Algo::Linear, P, 65536, 1);
        if (rec_a.max_rank_sends >= lin_a.max_rank_sends)
            fail("recdouble allreduce does not beat linear bottleneck");
        // Ring sends ~2 n / P bytes per rank; the linear root ships
        // (P - 1) n in its bcast phase. Total bytes tie — the per-rank
        // bandwidth bottleneck is where ring wins.
        if (rin_a.max_rank_bytes >= lin_big.max_rank_bytes)
            fail("ring allreduce does not beat linear per-rank bytes");
        bench::JsonRecord rec;
        rec.field("bench", "collectives_smoke");
        rec.field("ranks", P);
        rec.field("bottleneck_ok",
                  tre_b.max_rank_sends < lin_b.max_rank_sends
                      && rec_a.max_rank_sends < lin_a.max_rank_sends
                      && rin_a.max_rank_bytes < lin_big.max_rank_bytes);
        out.add(rec);
    }

    if (out.write(json_path))
        std::printf("wrote %s\n", json_path.c_str());
    std::printf("smoke: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    std::string json_path = "BENCH_collectives.json";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--smoke")) {
            smoke = true;
        } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--smoke] [--json PATH]\n",
                         argv[0]);
            return 2;
        }
    }
    if (smoke)
        return run_smoke(json_path);
    return run_sweep(json_path);
}
