// Section 7.2 tuning claim: "a tile size of nb = 320 provided the best
// performance [on GPUs] ... For tests on CPUs, nb = 192 gave the best
// performance among other tested tile sizes."
//
// Part 1 reproduces the sweep with the machine model (Summit). Part 2 runs a
// real wall-clock nb sweep of this library's task-based QDWH on the host
// CPU, whose optimum is this machine's own (small, core-count-bound) sweet
// spot — reported for transparency, not expected to equal 192 here.

#include <cinttypes>
#include <cstdio>

#include "bench_util.hh"
#include "common/timer.hh"

using namespace tbp;
using namespace tbp::perf;

int main() {
    bench::header("Section 7.2", "tile size tuning (model sweep + real "
                                 "wall-clock ablation)");

    auto const m = MachineModel::summit(4);
    std::printf("model sweep, 4 Summit nodes, n = 60000 (GPU) / 20000 (CPU):\n");
    std::printf("%6s  %14s  %14s\n", "nb", "GPU Tflop/s", "CPU Tflop/s");
    int best_gpu = 0, best_cpu = 0;
    double best_gpu_tf = 0, best_cpu_tf = 0;
    for (int nb : {64, 128, 192, 256, 320, 384, 512, 768, 1024}) {
        auto g = qdwh_perf(m, Device::Gpu, Schedule::TaskDataflow, 60000, nb);
        auto c = qdwh_perf(m, Device::Cpu, Schedule::TaskDataflow, 20000, nb);
        if (g.tflops > best_gpu_tf) {
            best_gpu_tf = g.tflops;
            best_gpu = nb;
        }
        if (c.tflops > best_cpu_tf) {
            best_cpu_tf = c.tflops;
            best_cpu = nb;
        }
        std::printf("%6d  %11.2f TF  %11.2f TF\n", nb, g.tflops, c.tflops);
    }
    std::printf("model optima: GPU nb = %d, CPU nb = %d "
                "(paper: 320 GPU, 192 CPU)\n",
                best_gpu, best_cpu);

    std::printf("\nreal wall-clock sweep on this host (n = 256, task-based "
                "QDWH, kappa = 1e8):\n");
    std::printf("%6s  %12s  %10s\n", "nb", "seconds", "Gflop/s");
    std::int64_t const n = 256;
    for (int nb : {16, 32, 64, 128, 256}) {
        rt::Engine eng(bench::bench_threads());
        gen::MatGenOptions opt;
        opt.cond = 1e8;
        opt.seed = 3000;
        auto A = gen::cond_matrix<double>(eng, n, n, nb, opt);
        TiledMatrix<double> H(n, n, nb);
        Timer t;
        auto info = qdwh(eng, A, H);
        double const secs = t.elapsed();
        std::printf("%6d  %12.3f  %10.2f\n", nb, secs,
                    info.flops / secs / 1e9);
    }
    return 0;
}
