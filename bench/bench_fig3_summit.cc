// Figure 3 (a, b): QDWH performance on 16 and 32 Summit nodes — SLATE-GPU vs
// SLATE-CPU vs ScaLAPACK, Tflop/s vs matrix size (machine-model projection).
//
// Paper shape: the GPU series keeps growing with matrix size (larger
// matrices exploit the GPUs better); the performance gap over ScaLAPACK
// widens with size; CPU-only runs were cut short once peak was evident.

#include <cinttypes>
#include <cstdio>

#include "bench_util.hh"

using namespace tbp;
using namespace tbp::perf;

namespace {

void one_config(int nodes, std::vector<std::int64_t> const& sizes) {
    auto const m = MachineModel::summit(nodes);
    std::printf("\n--- %d nodes of Summit (%d POWER9 cores, %d V100 GPUs) ---\n",
                nodes, nodes * m.cpu_cores, nodes * m.gpus);
    std::printf("%9s  %12s  %12s  %12s  %9s\n", "n", "SLATE-GPU", "SLATE-CPU",
                "ScaLAPACK", "GPU/Scal");
    for (auto n : sizes) {
        if (n > m.max_n(Device::Gpu))
            continue;
        auto gpu = qdwh_perf(m, Device::Gpu, Schedule::TaskDataflow, n, 320);
        auto cpu = qdwh_perf(m, Device::Cpu, Schedule::TaskDataflow, n, 192);
        auto scal = qdwh_perf(m, Device::Cpu, Schedule::ForkJoin, n, 192);
        std::printf("%9" PRId64 "  %9.2f TF  %9.2f TF  %9.2f TF  %8.1fx\n", n,
                    gpu.tflops, cpu.tflops, scal.tflops,
                    gpu.tflops / scal.tflops);
    }
}

}  // namespace

int main() {
    bench::header("Figure 3", "QDWH Tflop/s on Summit, 16 and 32 nodes "
                              "(machine-model projection)");
    one_config(16, {20000, 40000, 60000, 80000, 100000, 120000, 135000});
    one_config(32, {20000, 40000, 80000, 120000, 160000, 190000});
    std::printf("\npaper: GPU curve rises with n; gap over ScaLAPACK widens; "
                "CPU series flat near its peak\n");
    return 0;
}
