// bench_batch_exec — A/B of the batched device executor (dev::Executor,
// Target::BatchedHost) against the per-tile task oracle (Target::Tasks).
//
// The sweep runs the QDWH building blocks most sensitive to scheduler
// pressure — a tiled gemm update sweep and the structured stacked-QR
// factor + Q generation pair — over tile size x max_batch, measuring:
//   - wall-clock per target (best of several repetitions);
//   - tile ops vs engine tasks (the coalescing factor: how much scheduler
//     load the collector removes);
//   - bitwise identity of the batched results against the oracle.
//
// Usage:
//   bench_batch_exec [--smoke] [--json PATH]
//
// --smoke runs inside ctest (label "device"): exits nonzero if the batched
// path is not bitwise identical to the per-tile oracle, if the measured
// coalescing at QDWH scale (nt = 16 panels) falls below the 5x acceptance
// bar, or if batching does not beat the per-tile path's wall-clock on the
// scheduler-bound small-tile structured-QR pair (the QDWH QR iterate's hot
// kernel; the gemm sweep's fused k-loop bodies are already coarse, so its
// wall-clock is a tie and only checked for bitwise identity + coalescing).
// Results land in BENCH_batch_exec.json.

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/timer.hh"
#include "device/executor.hh"
#include "gen/matgen.hh"
#include "linalg/gemm.hh"
#include "linalg/geqrf.hh"
#include "linalg/util.hh"
#include "perf/cost_model.hh"

using namespace tbp;

namespace {

struct Measure {
    double secs = 0;          ///< best-of-reps wall-clock
    std::uint64_t ops = 0;    ///< tile ops routed
    std::uint64_t tasks = 0;  ///< engine tasks created
    double coalescing() const {
        return tasks > 0 ? static_cast<double>(ops) / static_cast<double>(tasks)
                         : 1.0;
    }
};

template <typename T>
bool bitwise_equal(TiledMatrix<T> const& A, TiledMatrix<T> const& B) {
    for (std::int64_t j = 0; j < A.n(); ++j)
        for (std::int64_t i = 0; i < A.m(); ++i) {
            T const a = A.at(i, j);
            T const b = B.at(i, j);
            if (std::memcmp(&a, &b, sizeof(T)) != 0)
                return false;
        }
    return true;
}

/// C := A B on an n x n grid with tile size nb through an executor; the
/// canonical scheduler-bound workload (one long run of same-shape gemm
/// ops). Returns the result for the bitwise check.
TiledMatrix<double> run_gemm(rt::Engine& eng, dev::ExecOptions eo,
                             std::int64_t n, int nb, int reps, Measure& m) {
    TiledMatrix<double> A(n, n, nb), B(n, n, nb), C(n, n, nb);
    gen::fill_gaussian(eng, A, 101);
    gen::fill_gaussian(eng, B, 202);
    eng.wait();
    m.secs = 1e30;
    for (int r = 0; r < reps; ++r) {
        dev::Executor ex(eng, eo);
        la::set(ex, 0.0, 0.0, C);
        ex.wait();
        Timer t;
        la::gemm(ex, Op::NoTrans, Op::NoTrans, 1.0, A, B, 0.0, C);
        ex.wait();
        m.secs = std::min(m.secs, t.elapsed());
        m.ops = ex.batch_stats().ops;
        m.tasks = ex.batch_stats().tasks;
    }
    return C;
}

/// Structured stacked QR factor + Q generation on W = [A; I] (n x n A),
/// the QDWH QR iterate's hot pair. Returns Q for the bitwise check.
TiledMatrix<double> run_qr(rt::Engine& eng, dev::ExecOptions eo,
                           std::int64_t n, int nb, int reps, Measure& m) {
    TiledMatrix<double> A0(n, n, nb);
    gen::fill_gaussian(eng, A0, 303);
    eng.wait();
    int const mt1 = A0.mt();
    auto rows = TiledMatrix<double>::chop(n, nb);
    auto const cols = rows;
    rows.insert(rows.end(), cols.begin(), cols.end());

    TiledMatrix<double> Q(rows, cols);
    m.secs = 1e30;
    for (int r = 0; r < reps; ++r) {
        TiledMatrix<double> W(rows, cols);
        dev::Executor ex(eng, eo);
        la::copy(ex, A0, W.sub(0, 0, mt1, W.nt()));
        ex.wait();
        auto Tm = la::alloc_qr_t(W);
        std::uint64_t const ops0 = ex.batch_stats().ops;
        std::uint64_t const tasks0 = ex.batch_stats().tasks;
        Timer t;
        la::geqrf_stacked_tri(ex, W, mt1, 1.0, Tm);
        la::ungqr_stacked_tri(ex, W, mt1, Tm, Q);
        ex.wait();
        m.secs = std::min(m.secs, t.elapsed());
        m.ops = ex.batch_stats().ops - ops0;
        m.tasks = ex.batch_stats().tasks - tasks0;
    }
    return Q;
}

dev::ExecOptions opts_for(bool batched, int max_batch) {
    dev::ExecOptions eo;
    eo.target = batched ? dev::Target::BatchedHost : dev::Target::Tasks;
    eo.max_batch = max_batch;
    return eo;
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    std::string json_path = "BENCH_batch_exec.json";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--smoke")) {
            smoke = true;
        } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--smoke] [--json PATH]\n",
                         argv[0]);
            return 2;
        }
    }

    int const threads = bench::bench_threads();
    bench::header("batch_exec",
                  "batched device executor vs per-tile task oracle");
    std::printf("threads %d\n\n", threads);
    rt::Engine eng(threads);
    bench::JsonEmitter out;

    auto record = [&](char const* kernel, std::int64_t n, int nb,
                      int max_batch, Measure const& tasks,
                      Measure const& batched, bool identical) {
        std::printf("%-8s n %4lld nb %3d  mb %3d | tasks %8.3fms (%6llu t) | "
                    "batched %8.3fms (%6llu t, %4.1fx) | speedup %.2fx  "
                    "bitwise %s\n",
                    kernel, static_cast<long long>(n), nb, max_batch,
                    tasks.secs * 1e3,
                    static_cast<unsigned long long>(tasks.tasks),
                    batched.secs * 1e3,
                    static_cast<unsigned long long>(batched.tasks),
                    batched.coalescing(),
                    batched.secs > 0 ? tasks.secs / batched.secs : 0.0,
                    identical ? "ok" : "FAIL");
        bench::JsonRecord r;
        r.field("bench", "batch_exec")
            .field("kernel", kernel)
            .field("n", n)
            .field("nb", nb)
            .field("max_batch", max_batch)
            .field("tasks_seconds", tasks.secs)
            .field("tasks_engine_tasks", tasks.tasks)
            .field("batched_seconds", batched.secs)
            .field("batched_engine_tasks", batched.tasks)
            .field("tile_ops", batched.ops)
            .field("coalescing", batched.coalescing())
            .field("speedup", batched.secs > 0 ? tasks.secs / batched.secs : 0.0)
            .field("bitwise_identical", identical);
        out.add(r);
    };

    bool ok = true;
    auto check = [&](bool cond, char const* what) {
        if (!cond) {
            std::printf("smoke FAIL: %s\n", what);
            ok = false;
        }
    };

    if (smoke) {
        // Small-tile gemm sweep: bitwise + coalescing gate (its fused
        // k-loop bodies are coarse enough that wall-clock is a tie).
        int const reps = 3;
        Measure gt, gb;
        auto C0 = run_gemm(eng, opts_for(false, 32), 256, 8, reps, gt);
        auto C1 = run_gemm(eng, opts_for(true, 32), 256, 8, reps, gb);
        bool const g_same = bitwise_equal(C0, C1);
        record("gemm", 256, 8, 32, gt, gb, g_same);

        // QDWH-scale structured QR pair (nt = 16 panels).
        Measure qt, qb;
        auto Q0 = run_qr(eng, opts_for(false, 32), 128, 8, reps, qt);
        auto Q1 = run_qr(eng, opts_for(true, 32), 128, 8, reps, qb);
        bool const q_same = bitwise_equal(Q0, Q1);
        record("qr_tt", 128, 8, 32, qt, qb, q_same);

        out.write(json_path);

        check(g_same, "batched gemm differs from the per-tile oracle");
        check(q_same, "batched stacked QR differs from the per-tile oracle");
        check(gb.coalescing() >= 5.0,
              "gemm coalescing below the 5x acceptance bar");
        check(qb.coalescing() >= 5.0,
              "stacked-QR coalescing below the 5x acceptance bar");
        check(qb.secs < qt.secs,
              "batched stacked QR not faster than the per-tile oracle");
        // The perf model's replay must agree with what actually ran.
        auto const model = perf::qr_batched_counts(16, 16, 8, true, 32);
        check(static_cast<std::uint64_t>(model.tile_ops) == qb.ops,
              "qr_batched_counts tile_ops mismatch vs the measured run");
        check(static_cast<std::uint64_t>(model.engine_tasks) == qb.tasks,
              "qr_batched_counts engine_tasks mismatch vs the measured run");
        std::printf("smoke: %s\n", ok ? "PASS" : "FAIL");
        return ok ? 0 : 1;
    }

    // Full sweep: tile size x batch depth, both kernels.
    int const reps = 3;
    for (int nb : {8, 16, 32, 64}) {
        for (int mb : {8, 32, 128}) {
            Measure t, b;
            auto C0 = run_gemm(eng, opts_for(false, mb), 256, nb, reps, t);
            auto C1 = run_gemm(eng, opts_for(true, mb), 256, nb, reps, b);
            record("gemm", 256, nb, mb, t, b, bitwise_equal(C0, C1));
        }
    }
    for (int nb : {8, 16, 32, 64}) {
        for (int mb : {8, 32, 128}) {
            Measure t, b;
            auto Q0 = run_qr(eng, opts_for(false, mb), 256, nb, reps, t);
            auto Q1 = run_qr(eng, opts_for(true, mb), 256, nb, reps, b);
            record("qr_tt", 256, nb, mb, t, b, bitwise_equal(Q0, Q1));
        }
    }
    out.write(json_path);
    return 0;
}
