// 2D vs 2.5D SUMMA weak-scaling bench: measures one distributed gemm per
// grid shape on the simulated-MPI world and cross-checks every per-rank
// traffic counter against perf::summa_volume — the two must match exactly,
// since the predictor replays the implementation loops. On top of the
// measured rows it prints the 2D/2.5D crossover table the auto-selector
// (perf::choose_summa_plan) works from: modeled max_rank_bytes per
// replication depth c at each rank count, weak-scaled so the tile count per
// rank stays constant as P grows to 64.
//
// The replicated layers only pay off in PartialSum mode (deterministic =
// false): ExactOrder ships one product tile per remote step to preserve the
// bitwise 2D fold order, so its reduction traffic cancels the staging win.
// The crossover assertions therefore run in PartialSum mode; ExactOrder rows
// are still model-checked exactly.
//
// Usage:
//   bench_summa_25d               full sweep, console table +
//                                 BENCH_summa_25d.json
//   bench_summa_25d --json PATH   write the JSON document to PATH
//   bench_summa_25d --smoke       fast ctest mode: asserts model ==
//                                 measured for 2D and 2.5D shapes in both
//                                 reduction modes and that the modeled
//                                 2.5D max_rank_bytes beats 2D at P >= 16

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "comm/dist_algs.hh"
#include "comm/dist_summa25.hh"
#include "common/timer.hh"
#include "perf/cost_model.hh"
#include "perf/sched_report.hh"

using namespace tbp;

namespace {

struct Shape {
    int p, q, c;
    int size() const { return p * q * c; }
};

struct Measured {
    perf::CommReport rep;
    double seconds = 0;
};

/// One distributed gemm (m x k times k x n doubles, tile nb) on the p*q*c
/// world; c == 1 runs the 2D dist_gemm path, c > 1 the 2.5D summa_25d. The
/// world does nothing else, so the report is the gemm's traffic alone.
Measured run_gemm(Shape s, std::int64_t m, std::int64_t n, std::int64_t k,
                  int nb, bool deterministic) {
    comm::coll::Config cfg;
    cfg.deterministic = deterministic;
    comm::World world(s.size());
    world.set_coll_config(cfg);
    comm::ProcGrid3d g3{s.p, s.q, s.c};
    Grid const g = g3.layer();
    Timer t;
    world.run([&](comm::Communicator& c) {
        comm::DistMatrix<double> A(c, m, k, nb, g);
        comm::DistMatrix<double> B(c, k, n, nb, g);
        comm::DistMatrix<double> C(c, m, n, nb, g);
        auto f = [](std::int64_t i, std::int64_t j) {
            return 1.0 / static_cast<double>(i + 2 * j + 3);
        };
        A.fill(f);
        B.fill(f);
        C.fill(f);
        if (s.c == 1)
            comm::dist_gemm(c, g, 1.5, A, B, 0.5, C);
        else
            comm::dist_gemm_25d(c, g3, 1.5, A, B, 0.5, C);
    });
    Measured mres;
    mres.seconds = t.elapsed();
    mres.rep = perf::comm_report(world);
    return mres;
}

bool check_match(Measured const& m, perf::SummaVolume const& v) {
    return m.rep.total.sends == v.total.messages
           && m.rep.total.bytes_sent == v.total.bytes
           && m.rep.max_rank_sends() == v.total.max_rank_sends
           && m.rep.max_rank_bytes() == v.total.max_rank_bytes
           && m.rep.leaked == 0;
}

/// Weak-scaling problem size, k-heavy (m : n : k = 2 : 1 : 4): replicating
/// layers amortize across the inner dimension, so 2.5D pays off exactly
/// when k dominates — for a square gemm at P = 16 the per-rank send volume
/// of the best 2.5D grid provably ties the 2D grid, while this shape gives
/// a strict win. The per-rank tile count stays constant as P grows 4x.
struct Dims {
    std::int64_t m, n, k;
};
Dims weak_dims(int P, int nb) {
    int side = 1;
    while (side * side * 4 < P)
        side *= 2;
    auto d = [&](int f) { return static_cast<std::int64_t>(f * side) * nb; };
    return Dims{d(4), d(2), d(8)};
}

/// Shapes measured per rank count: the near-square 2D grid plus both
/// orientations of the near-square layer grid for c in {2, 4} when c
/// divides P (the staging burden is asymmetric for a non-square gemm, so
/// the selector considers both).
std::vector<Shape> shapes_for(int P) {
    std::vector<Shape> out;
    auto near_square = [](int L) {
        int p = 1;
        for (int d = 1; d * d <= L; ++d)
            if (L % d == 0)
                p = d;
        return Shape{p, L / p, 1};
    };
    out.push_back(near_square(P));
    for (int c : {2, 4}) {
        if (P % c == 0 && P / c >= 1) {
            Shape s = near_square(P / c);
            s.c = c;
            out.push_back(s);
            if (s.p != s.q)
                out.push_back(Shape{s.q, s.p, c});
        }
    }
    return out;
}

int run_sweep(std::string const& json_path) {
    bench::header("bench_summa_25d",
                  "2D vs replicated-layer 2.5D SUMMA, model-exact traffic");
    bench::JsonEmitter out;
    bool all_match = true;

    std::vector<int> const ranks = {4, 16, 64};
    int const nb = 8;

    for (int P : ranks) {
        Dims const d = weak_dims(P, nb);
        std::printf("\nP=%d  (m = %lld, n = %lld, k = %lld, nb = %d):\n", P,
                    static_cast<long long>(d.m), static_cast<long long>(d.n),
                    static_cast<long long>(d.k), nb);
        for (bool det : {true, false}) {
            for (Shape s : shapes_for(P)) {
                // Measuring 64 ranks is fine; the allgather-free gemm keeps
                // the footprint at one matrix copy per rank share.
                auto meas = run_gemm(s, d.m, d.n, d.k, nb, det);
                auto v = perf::summa_volume(d.m, d.n, d.k, nb, sizeof(double),
                                            s.p, s.q, s.c, det);
                bool const ok = check_match(meas, v);
                all_match = all_match && ok;
                std::printf("  %dx%dx%d %-10s %8.1f ms  max/rank bytes "
                            "%10llu  (stage %llu fiber %llu reduce %llu)  "
                            "model %s\n",
                            s.p, s.q, s.c,
                            det ? "exact" : "partialsum",
                            meas.seconds * 1e3,
                            static_cast<unsigned long long>(
                                meas.rep.max_rank_bytes()),
                            static_cast<unsigned long long>(v.stage_bytes),
                            static_cast<unsigned long long>(v.fiber_bytes),
                            static_cast<unsigned long long>(v.reduce_bytes),
                            ok ? "match" : "MISMATCH");
                bench::JsonRecord r;
                r.field("ranks", P)
                    .field("p", s.p)
                    .field("q", s.q)
                    .field("c", s.c)
                    .field("m", d.m)
                    .field("n", d.n)
                    .field("k", d.k)
                    .field("nb", nb)
                    .field("deterministic", det)
                    .field("seconds", meas.seconds)
                    .field("messages", meas.rep.total.sends)
                    .field("bytes", meas.rep.total.bytes_sent)
                    .field("max_rank_sends", meas.rep.max_rank_sends())
                    .field("max_rank_bytes", meas.rep.max_rank_bytes())
                    .field("model_messages", v.total.messages)
                    .field("model_bytes", v.total.bytes)
                    .field("model_max_rank_sends", v.total.max_rank_sends)
                    .field("model_max_rank_bytes", v.total.max_rank_bytes)
                    .field("model_stage_bytes", v.stage_bytes)
                    .field("model_fiber_bytes", v.fiber_bytes)
                    .field("model_reduce_bytes", v.reduce_bytes)
                    .field("model_match", ok);
                out.add(r);
            }
        }
    }

    // Crossover table: the auto-selector's view in PartialSum mode. 2.5D
    // must win the max_rank_bytes bottleneck from P = 16 up.
    std::printf("\n2D/2.5D crossover (PartialSum, modeled max_rank_bytes):\n");
    bool crossover_ok = true;
    for (int P : ranks) {
        Dims const d = weak_dims(P, nb);
        auto plan = perf::choose_summa_plan(P, d.m, d.n, d.k, nb,
                                            sizeof(double),
                                            /*deterministic=*/false,
                                            comm::CommPlan::Auto);
        bool const won = plan.vol.total.max_rank_bytes
                         < plan.vol2d.total.max_rank_bytes;
        if (P >= 16 && !(plan.c >= 2 && won))
            crossover_ok = false;
        std::printf("  P=%3d  2d %10llu   chosen %dx%dx%d %10llu   %s\n", P,
                    static_cast<unsigned long long>(
                        plan.vol2d.total.max_rank_bytes),
                    plan.p, plan.q, plan.c,
                    static_cast<unsigned long long>(
                        plan.vol.total.max_rank_bytes),
                    plan.c > 1 ? (won ? "2.5d wins" : "2.5d NOT cheaper")
                               : "2d kept");
        bench::JsonRecord r;
        r.field("crossover_ranks", P)
            .field("m", d.m)
            .field("n", d.n)
            .field("k", d.k)
            .field("nb", nb)
            .field("chosen_p", plan.p)
            .field("chosen_q", plan.q)
            .field("chosen_c", plan.c)
            .field("model_2d_max_rank_bytes", plan.vol2d.total.max_rank_bytes)
            .field("model_chosen_max_rank_bytes",
                   plan.vol.total.max_rank_bytes)
            .field("crossover", plan.c >= 2 && won);
        out.add(r);
    }

    if (out.write(json_path))
        std::printf("\nwrote %s\n", json_path.c_str());
    std::printf("model cross-check: %s; crossover at P >= 16: %s\n",
                all_match ? "all cases match" : "MISMATCHES (see above)",
                crossover_ok ? "yes" : "NO");
    return all_match && crossover_ok ? 0 : 1;
}

int run_smoke(std::string const& json_path) {
    bool ok = true;
    auto fail = [&](char const* what) {
        std::printf("smoke FAIL: %s\n", what);
        ok = false;
    };
    bench::JsonEmitter out;

    int const nb = 4;
    // Exact model == measured for 2D and 2.5D shapes in both reduction
    // modes, including a non-square layer grid and a ragged edge (m = 36 is
    // a 9-tile side at nb = 4).
    struct Case {
        Shape s;
        std::int64_t m;
    };
    for (Case cs : {Case{{2, 2, 1}, 24}, Case{{2, 1, 2}, 24},
                    Case{{2, 2, 2}, 36}, Case{{2, 2, 4}, 24}}) {
        for (bool det : {true, false}) {
            auto meas = run_gemm(cs.s, cs.m, cs.m, cs.m, nb, det);
            auto v = perf::summa_volume(cs.m, cs.m, cs.m, nb, sizeof(double),
                                        cs.s.p, cs.s.q, cs.s.c, det);
            bool const match = check_match(meas, v);
            bench::JsonRecord rec;
            rec.field("bench", "summa_25d_smoke");
            rec.field("p", cs.s.p);
            rec.field("q", cs.s.q);
            rec.field("c", cs.s.c);
            rec.field("m", cs.m);
            rec.field("deterministic", det);
            rec.field("measured_bytes", meas.rep.total.bytes_sent);
            rec.field("measured_msgs", meas.rep.total.sends);
            rec.field("max_rank_bytes", meas.rep.max_rank_bytes());
            rec.field("volume_model_match", match);
            out.add(rec);
            if (!match) {
                std::printf("  %dx%dx%d det=%d: measured %llu msgs %llu "
                            "bytes max %llu vs model %llu/%llu/%llu\n",
                            cs.s.p, cs.s.q, cs.s.c, det ? 1 : 0,
                            static_cast<unsigned long long>(
                                meas.rep.total.sends),
                            static_cast<unsigned long long>(
                                meas.rep.total.bytes_sent),
                            static_cast<unsigned long long>(
                                meas.rep.max_rank_bytes()),
                            static_cast<unsigned long long>(v.total.messages),
                            static_cast<unsigned long long>(v.total.bytes),
                            static_cast<unsigned long long>(
                                v.total.max_rank_bytes));
                fail("measured traffic != summa_volume prediction");
            }
        }
    }

    // The selector must find a winning c >= 2 at P >= 16 in PartialSum mode
    // on the k-heavy weak-scaling shape (the acceptance crossover), and
    // must honor a forced 2D plan.
    for (int P : {16, 64}) {
        Dims const d = weak_dims(P, nb);
        auto plan = perf::choose_summa_plan(P, d.m, d.n, d.k, nb,
                                            sizeof(double), false,
                                            comm::CommPlan::Auto);
        bool const crossover_ok =
            plan.c >= 2
            && plan.vol.total.max_rank_bytes
                   < plan.vol2d.total.max_rank_bytes;
        if (!crossover_ok)
            fail("2.5d does not beat 2d max_rank_bytes at P >= 16");
        auto p2d = perf::choose_summa_plan(P, d.m, d.n, d.k, nb,
                                           sizeof(double), false,
                                           comm::CommPlan::Grid2d);
        if (p2d.c != 1)
            fail("forced 2d plan picked c > 1");
        bench::JsonRecord rec;
        rec.field("bench", "summa_25d_smoke");
        rec.field("ranks", P);
        rec.field("chosen_c", plan.c);
        rec.field("max_rank_bytes_25d", plan.vol.total.max_rank_bytes);
        rec.field("max_rank_bytes_2d", plan.vol2d.total.max_rank_bytes);
        rec.field("crossover_ok", crossover_ok && p2d.c == 1);
        out.add(rec);
    }

    if (out.write(json_path))
        std::printf("wrote %s\n", json_path.c_str());
    std::printf("smoke: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    std::string json_path = "BENCH_summa_25d.json";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--smoke")) {
            smoke = true;
        } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--smoke] [--json PATH]\n",
                         argv[0]);
            return 2;
        }
    }
    if (smoke)
        return run_smoke(json_path);
    return run_sweep(json_path);
}
