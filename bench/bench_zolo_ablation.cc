// Section 8 (future work) ablation: Zolo-PD vs QDWH (measured numerics +
// concurrency accounting).
//
// The paper motivates Zolo-PD as "requiring an even higher number of flops
// than QDWH-based PD, but able to exploit a higher level of concurrency,
// making it attractive in the strong-scaling regime". This bench measures
// both algorithms on identical ill-conditioned inputs and reports accuracy,
// iterations, measured flops, and the number of *independent* factorization
// chains per iteration (QDWH: 1; Zolo: r).

#include <cinttypes>
#include <cstdio>

#include "bench_util.hh"
#include "core/zolopd.hh"

using namespace tbp;

int main() {
    bench::header("Section 8", "Zolo-PD vs QDWH ablation (measured, double, "
                               "kappa = 1e14, n = 192)");
    std::int64_t const n = 192;
    int const nb = 32;
    gen::MatGenOptions opt;
    opt.cond = 1e14;
    opt.seed = 9000;

    std::printf("%14s  %5s  %6s  %12s  %12s  %10s  %10s\n", "algorithm",
                "iters", "indep", "orth err", "bwd err", "flops", "flops/QDWH");

    double qdwh_flops = 0;
    {
        rt::Engine eng(bench::bench_threads());
        auto A = gen::cond_matrix<double>(eng, n, n, nb, opt);
        auto Ad = ref::to_dense(A);
        TiledMatrix<double> H(n, n, nb);
        eng.reset_stats();
        auto info = qdwh(eng, A, H);
        auto acc = bench::accuracy(Ad, A, H);
        qdwh_flops = info.flops;
        std::printf("%14s  %5d  %6d  %12.3e  %12.3e  %10.2e  %10.2f\n", "QDWH",
                    info.iterations, 1, acc.orth, acc.backward, info.flops,
                    1.0);
    }
    for (int r : {2, 4, 8}) {
        rt::Engine eng(bench::bench_threads());
        auto A = gen::cond_matrix<double>(eng, n, n, nb, opt);
        auto Ad = ref::to_dense(A);
        TiledMatrix<double> H(n, n, nb);
        eng.reset_stats();
        ZoloOptions o;
        o.r = r;
        auto info = zolo_pd(eng, A, H, o);
        auto acc = bench::accuracy(Ad, A, H);
        char name[32];
        std::snprintf(name, sizeof name, "Zolo-PD r=%d", r);
        std::printf("%14s  %5d  %6d  %12.3e  %12.3e  %10.2e  %10.2f\n", name,
                    info.iterations, r, acc.orth, acc.backward, info.flops,
                    info.flops / qdwh_flops);
    }
    std::printf("\npaper (Section 8): Zolo-PD costs more flops but exposes r "
                "independent factorizations per iteration — the\n"
                "strong-scaling trade QDWH cannot make. Accuracy stays at "
                "machine precision for both.\n");
    return 0;
}
