// bench_throughput — batched "polar as a service" throughput under
// open-loop Poisson arrivals (service layer, src/service/).
//
// What it measures and checks:
//   - jobs/sec and p50/p99 latency per QoS class (Latency vs Bulk) for a
//     mixed qdwh/zolopd/posv/geqrf workload across all four scalar types;
//   - an A/B of the QoS scheduler against a FIFO baseline under bulk
//     overload: Latency-class p99 must be measurably below FIFO's;
//   - zero cross-job corruption: every successful job's output bytes are
//     compared bit-for-bit against a single-job oracle run of the same
//     spec (counter-based generation + per-job sequential engines make
//     outputs a pure function of the spec);
//   - failure containment: deliberately failing specs (non-convergence,
//     non-HPD pivot, invalid dimensions) must yield JobResult errors while
//     every other job completes.
//
// Usage:
//   bench_throughput [--smoke] [--jobs N] [--json PATH]
//
// --smoke runs inside ctest (label "service"): >= 1000 mixed jobs, exits
// nonzero on any oracle mismatch, unexpected status, a QoS p99 that is
// not below the FIFO baseline, or default (batched-bulk) throughput below
// the forced all-tasks baseline. Results land in BENCH_throughput.json.

#include <algorithm>
#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "common/rng.hh"
#include "common/timer.hh"
#include "service/service.hh"

using namespace tbp;

namespace {

struct SpecCase {
    svc::JobSpec spec;
    Status expect = Status::Ok;
};

// Mixed workload table: small problems across every kind and scalar type,
// tall and square shapes, multi-tile and single-tile (nb >= n) tilings,
// plus three deliberate failures. Job i runs cases[i % cases.size()].
std::vector<SpecCase> make_cases() {
    using svc::JobKind;
    std::vector<SpecCase> cs;
    auto add = [&](JobKind k, char t, std::int64_t m, std::int64_t n, int nb,
                   double cond) {
        SpecCase c;
        c.spec.kind = k;
        c.spec.type = t;
        c.spec.m = m;
        c.spec.n = n;
        c.spec.nb = nb;
        c.spec.cond = cond;
        c.spec.seed = 1000 + cs.size();
        if (k == JobKind::ZoloPd)
            c.spec.r = 2;
        // Pinned, not Auto: the oracle runs the spec at its default (Bulk)
        // class while the batch alternates classes, and Auto precision is
        // class-resolved — pinning keeps job bytes a pure function of the
        // spec. Adaptive also puts the ladder on the bench's critical path.
        c.spec.precision = svc::JobPrec::Adaptive;
        cs.push_back(c);
    };
    add(JobKind::Qdwh, 'd', 16, 16, 8, 1e6);
    add(JobKind::Qdwh, 'd', 48, 48, 8, 1e6);   // 36 tiles: routes Batched
    add(JobKind::Geqrf, 'd', 32, 24, 8, 0);    // 12 tiles: routes Batched
    add(JobKind::Qdwh, 's', 24, 16, 8, 1e3);
    add(JobKind::Qdwh, 'z', 12, 12, 4, 1e4);
    add(JobKind::Qdwh, 'c', 16, 16, 16, 1e2);  // single tile, nb >= n
    add(JobKind::ZoloPd, 'd', 16, 16, 8, 1e4);
    add(JobKind::ZoloPd, 'c', 12, 12, 12, 1e2);  // single tile
    add(JobKind::Geqrf, 'd', 24, 16, 8, 0);
    add(JobKind::Geqrf, 'z', 16, 12, 4, 0);
    add(JobKind::Geqrf, 's', 16, 16, 16, 0);  // single tile
    add(JobKind::Posv, 'd', 2, 16, 8, 0);     // m = nrhs for posv
    add(JobKind::Posv, 'c', 1, 12, 12, 0);    // single tile

    // Deliberate failures: the batch must absorb all three.
    {
        SpecCase c;  // qdwh that cannot converge in one iteration
        c.spec.kind = JobKind::Qdwh;
        c.spec.m = c.spec.n = 16;
        c.spec.nb = 8;
        c.spec.cond = 1e8;
        c.spec.max_iter = 1;
        c.spec.seed = 7001;
        c.expect = Status::NotConverged;
        cs.push_back(c);
    }
    {
        SpecCase c;  // indefinite posv input: potrf throws mid-iteration
        c.spec.kind = JobKind::Posv;
        c.spec.m = 1;
        c.spec.n = 16;
        c.spec.nb = 8;
        c.spec.cond = -1;
        c.spec.seed = 7002;
        c.expect = Status::NumericalError;
        cs.push_back(c);
    }
    {
        SpecCase c;  // wide matrix: rejected at admission validation
        c.spec.kind = JobKind::Qdwh;
        c.spec.m = 8;
        c.spec.n = 16;
        c.spec.nb = 8;
        c.spec.seed = 7003;
        c.expect = Status::InvalidArgument;
        cs.push_back(c);
    }
    return cs;
}

struct Oracle {
    std::vector<std::byte> u, h;
    Status status = Status::Ok;
    double secs = 0;
};

// Single-job oracle: run the provider exactly as a service worker would
// (private sequential engine, private workspace) and keep the bytes.
Oracle run_oracle(SpecCase const& c) {
    Oracle o;
    auto reg = svc::ProviderRegistry::builtin();
    svc::Workspace ws;
    svc::JobResult res;
    Timer t;
    if (svc::validate(c.spec) != Status::Ok) {
        o.status = Status::InvalidArgument;
        return o;
    }
    try {
        rt::Engine eng(1, rt::Mode::Sequential);
        (*reg.find(c.spec.kind))(eng, c.spec, ws, res);
        o.status = res.status;
    } catch (Error const&) {
        o.status = Status::NumericalError;
    }
    o.secs = t.elapsed();
    if (o.status == Status::Ok) {
        o.u.assign(ws.data(svc::Workspace::OutU),
                   ws.data(svc::Workspace::OutU) + ws.used(svc::Workspace::OutU));
        o.h.assign(ws.data(svc::Workspace::OutH),
                   ws.data(svc::Workspace::OutH) + ws.used(svc::Workspace::OutH));
    }
    return o;
}

double percentile(std::vector<double> v, double p) {
    if (v.empty())
        return 0;
    std::sort(v.begin(), v.end());
    auto idx = static_cast<size_t>(p * (static_cast<double>(v.size()) - 1));
    return v[idx];
}

struct ClassStats {
    std::uint64_t jobs = 0;
    double p50 = 0, p99 = 0;
};

struct RunOut {
    double wall = 0;
    double jobs_per_sec = 0;
    ClassStats latency, bulk;
    std::uint64_t mismatches = 0;       ///< oracle byte or status mismatches
    std::uint64_t expected_failures = 0;
    std::size_t workspaces = 0;
    std::uint64_t retried_jobs = 0;    ///< jobs that needed > 1 attempt
    std::uint64_t recovered_jobs = 0;  ///< retried jobs that ended Ok
};

// One full service run: Poisson arrivals at `rate` jobs/sec, every 16th
// job in the Latency class, verification of every result against the
// oracle table. `target` overrides each job's execution target (Auto =
// Bulk jobs batched, Latency per-tile — the service default).
RunOut run_batch(std::vector<SpecCase> const& cases,
                 std::vector<Oracle> const& oracles, int jobs, int threads,
                 double rate, bool fifo,
                 svc::JobTarget target = svc::JobTarget::Auto) {
    rt::Engine eng(threads);
    svc::ServiceOptions so;
    so.fifo = fifo;
    svc::PolarService service(eng, so);

    std::vector<svc::JobHandle> handles;
    handles.reserve(static_cast<size_t>(jobs));
    CounterRng arrivals(0xA221);
    double const t0 = wall_time();
    double t_arr = 0;
    for (int i = 0; i < jobs; ++i) {
        auto const d = static_cast<size_t>(i) % cases.size();
        svc::JobSpec s = cases[d].spec;
        s.cls = (i % 16 == 0) ? svc::JobClass::Latency : svc::JobClass::Bulk;
        s.target = target;
        double const u = arrivals.uniform(static_cast<std::uint64_t>(i));
        t_arr += -std::log1p(-std::min(u, 0.999999)) / rate;
        while (wall_time() - t0 < t_arr)
            std::this_thread::sleep_for(std::chrono::microseconds(20));
        handles.push_back(service.submit(s));
    }
    service.wait_all();

    RunOut out;
    std::vector<double> lat_l, lat_b;
    double t_last = t0;
    for (int i = 0; i < jobs; ++i) {
        auto const d = static_cast<size_t>(i) % cases.size();
        auto const& res = handles[static_cast<size_t>(i)].result();
        t_last = std::max(t_last, res.t_end);
        (res.cls == svc::JobClass::Latency ? lat_l : lat_b)
            .push_back(res.latency());
        if (cases[d].expect != Status::Ok) {
            // A failing job must report exactly its failure — and nothing
            // else in the batch is allowed to be dragged down by it.
            if (res.status == cases[d].expect)
                ++out.expected_failures;
            else
                ++out.mismatches;
            continue;
        }
        if (!res.ok()) {
            ++out.mismatches;
            continue;
        }
        auto const& h = handles[static_cast<size_t>(i)];
        bool const same_u =
            h.output_bytes(svc::Workspace::OutU) == oracles[d].u.size()
            && std::memcmp(h.output(svc::Workspace::OutU), oracles[d].u.data(),
                           oracles[d].u.size()) == 0;
        bool const same_h =
            h.output_bytes(svc::Workspace::OutH) == oracles[d].h.size()
            && std::memcmp(h.output(svc::Workspace::OutH), oracles[d].h.data(),
                           oracles[d].h.size()) == 0;
        if (!same_u || !same_h)
            ++out.mismatches;
    }
    out.wall = t_last - t0;
    out.jobs_per_sec = out.wall > 0 ? jobs / out.wall : 0;
    out.latency = {static_cast<std::uint64_t>(lat_l.size()),
                   percentile(lat_l, 0.50), percentile(lat_l, 0.99)};
    out.bulk = {static_cast<std::uint64_t>(lat_b.size()),
                percentile(lat_b, 0.50), percentile(lat_b, 0.99)};
    auto const st = service.stats();
    out.workspaces = st.workspaces_created;
    out.retried_jobs = st.retried_jobs;
    out.recovered_jobs = st.recovered_jobs;
    return out;
}

void report(char const* name, RunOut const& r, bench::JsonEmitter& out) {
    std::printf("%-5s %7.0f jobs/s  wall %.2fs  latency-class p50 %7.2fms "
                "p99 %7.2fms  bulk p50 %7.2fms p99 %7.2fms  ws %zu  "
                "mismatch %llu\n",
                name, r.jobs_per_sec, r.wall, r.latency.p50 * 1e3,
                r.latency.p99 * 1e3, r.bulk.p50 * 1e3, r.bulk.p99 * 1e3,
                r.workspaces,
                static_cast<unsigned long long>(r.mismatches));
    bench::JsonRecord rec;
    rec.field("bench", "throughput").field("sched", name);
    rec.field("jobs_per_sec", r.jobs_per_sec).field("wall_s", r.wall);
    rec.field("latency_jobs", r.latency.jobs)
        .field("latency_p50_s", r.latency.p50)
        .field("latency_p99_s", r.latency.p99);
    rec.field("bulk_jobs", r.bulk.jobs)
        .field("bulk_p50_s", r.bulk.p50)
        .field("bulk_p99_s", r.bulk.p99);
    rec.field("oracle_mismatches", r.mismatches)
        .field("expected_failures", r.expected_failures)
        .field("retried_jobs", r.retried_jobs)
        .field("recovered_jobs", r.recovered_jobs)
        .field("workspaces_created",
               static_cast<std::uint64_t>(r.workspaces));
    out.add(rec);
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    int jobs = 2000;
    bool jobs_set = false;
    std::string json_path = "BENCH_throughput.json";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--smoke")) {
            smoke = true;
        } else if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc) {
            jobs = std::atoi(argv[++i]);
            jobs_set = true;
        } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--smoke] [--jobs N] [--json PATH]\n",
                         argv[0]);
            return 2;
        }
    }
    if (smoke && !jobs_set)
        jobs = 1000;  // the smoke contract: >= 1000 mixed jobs

    int const threads = bench::bench_threads();
    bench::header("service", "batched polar-as-a-service throughput");

    auto const cases = make_cases();
    std::vector<Oracle> oracles;
    double mean_t = 0;
    int timed = 0;
    for (auto const& c : cases) {
        oracles.push_back(run_oracle(c));
        if (oracles.back().status == Status::Ok) {
            mean_t += oracles.back().secs;
            ++timed;
        }
    }
    mean_t = timed > 0 ? mean_t / timed : 1e-3;
    // Open-loop overload: arrivals at ~2x the service capacity so a Bulk
    // backlog builds and the QoS split has something to cut through.
    double const rate =
        std::min(2.0 * threads / std::max(mean_t, 1e-6), 2e5);
    std::printf("threads %d  cases %zu  mean service %.3fms  arrival rate "
                "%.0f jobs/s  jobs %d\n",
                threads, cases.size(), mean_t * 1e3, rate, jobs);

    // qos/fifo run with the service default target (Auto: Bulk jobs on the
    // batched executor); the third run forces every job per-tile for the
    // batched-vs-tasks throughput A/B.
    auto const qos = run_batch(cases, oracles, jobs, threads, rate, false);
    auto const fifo = run_batch(cases, oracles, jobs, threads, rate, true);
    auto const tasks = run_batch(cases, oracles, jobs, threads, rate, false,
                                 svc::JobTarget::Tasks);

    bench::JsonEmitter out;
    report("qos", qos, out);
    report("fifo", fifo, out);
    report("tasks", tasks, out);
    double const ratio =
        qos.latency.p99 > 0 ? fifo.latency.p99 / qos.latency.p99 : 0;
    std::printf("latency-class p99: qos %.2fms vs fifo %.2fms (%.1fx)\n",
                qos.latency.p99 * 1e3, fifo.latency.p99 * 1e3, ratio);
    double const tput_ratio =
        tasks.jobs_per_sec > 0 ? qos.jobs_per_sec / tasks.jobs_per_sec : 0;
    std::printf("throughput: batched-bulk %.0f jobs/s vs all-tasks %.0f "
                "jobs/s (%.2fx)\n",
                qos.jobs_per_sec, tasks.jobs_per_sec, tput_ratio);
    {
        bench::JsonRecord rec;
        rec.field("bench", "throughput").field("sched", "ab");
        rec.field("fifo_over_qos_latency_p99", ratio);
        rec.field("batched_over_tasks_jobs_per_sec", tput_ratio);
        out.add(rec);
    }
    out.write(json_path);

    if (smoke) {
        std::uint64_t const expect_fail_per_pass =
            (static_cast<std::uint64_t>(jobs) + cases.size() - 1) / cases.size();
        bool ok = true;
        auto check = [&](bool cond, char const* what) {
            if (!cond) {
                std::printf("smoke FAIL: %s\n", what);
                ok = false;
            }
        };
        check(qos.mismatches == 0, "qos run had oracle/status mismatches");
        check(fifo.mismatches == 0, "fifo run had oracle/status mismatches");
        check(tasks.mismatches == 0,
              "all-tasks run had oracle/status mismatches");
        check(qos.expected_failures >= expect_fail_per_pass,
              "deliberate failures missing from the qos run");
        check(qos.latency.p99 < fifo.latency.p99,
              "QoS latency-class p99 not below the FIFO baseline");
        // Batched routing must never cost throughput: resolve_target keeps
        // jobs under kBatchedMinTiles on plain tasks (too few same-shape
        // ops to amortize the collector there — measured 0.74-0.88x when
        // such jobs were routed through the executor), so the default Auto
        // mix, which batches only the >= 9-tile jobs, has to match or beat
        // the forced all-tasks run. 3% slack absorbs wall-clock jitter only.
        check(tput_ratio >= 0.97,
              "batched-bulk throughput fell below the all-tasks baseline");
        std::printf("smoke: %s\n", ok ? "PASS" : "FAIL");
        return ok ? 0 : 1;
    }
    return 0;
}
