// Figure 5: SLATE-QDWH on 16 nodes of Frontier (896 EPYC cores, 128 MI250X
// GCDs), Tflop/s vs matrix size (machine-model projection).
//
// Paper anchors: ~180 Tflop/s at the memory-limited n = 175k; the paper
// quotes this as ~24% of peak (its peak accounting differs from the
// published MI250X numbers — see EXPERIMENTS.md).

#include <cinttypes>
#include <cstdio>

#include "bench_util.hh"

using namespace tbp;
using namespace tbp::perf;

int main() {
    bench::header("Figure 5", "SLATE-QDWH GPU on 16 Frontier nodes "
                              "(machine-model projection)");
    auto const m = MachineModel::frontier(16);
    std::printf("max n fitting GPU memory: %" PRId64
                " (paper: 175k memory-limited)\n\n",
                m.max_n(Device::Gpu));
    std::printf("%9s  %12s  %16s\n", "n", "SLATE-GPU", "of model dgemm-peak");
    for (std::int64_t n : {20000, 40000, 80000, 120000, 150000, 175000}) {
        auto r = qdwh_perf(m, Device::Gpu, Schedule::TaskDataflow, n, 320);
        std::printf("%9" PRId64 "  %9.2f TF  %15.1f%%\n", n, r.tflops,
                    100.0 * r.tflops * 1e3 / m.total_gflops(Device::Gpu));
    }
    std::printf("\npaper: ~180 Tflop/s at n = 175k on 128 GCDs\n");
    return 0;
}
