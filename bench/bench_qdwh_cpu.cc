// Real wall-clock microbenchmarks (google-benchmark) of this library on the
// host CPU: QDWH under the three execution modes, its building blocks, and
// the dense baselines. This is the measured-hardware supplement to the
// modeled figures (see DESIGN.md experiment index).
//
// BM_Qdwh additionally reports the tile kernels' *measured* GFLOP/s (the
// kernel/stats.hh counter over the solver region) next to the model-formula
// rate, and every run appends a JSON record; set TBP_BENCH_JSON=path to
// write the document on exit (see bench_util.hh).

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "blas/kernel/stats.hh"
#include "common/timer.hh"
#include "core/baselines.hh"
#include "core/qdwh.hh"
#include "device/executor.hh"
#include "gen/matgen.hh"
#include "linalg/geqrf.hh"
#include "linalg/potrf.hh"
#include "ref/dense.hh"

using namespace tbp;

namespace {

bench::JsonEmitter& emitter() {
    static bench::JsonEmitter e;
    return e;
}

int threads() {
    if (char const* env = std::getenv("TBP_THREADS"))
        return std::atoi(env);
    return 3;
}

rt::Mode mode_of(int m) {
    switch (m) {
        case 0: return rt::Mode::Sequential;
        case 1: return rt::Mode::TaskDataflow;
        default: return rt::Mode::ForkJoin;
    }
}

char const* mode_name(int m) {
    switch (m) {
        case 0: return "seq";
        case 1: return "task";
        default: return "forkjoin";
    }
}

void BM_Qdwh(benchmark::State& state) {
    std::int64_t const n = state.range(0);
    int const nb = 32;
    rt::Mode const mode = mode_of(static_cast<int>(state.range(1)));
    bool const structured = state.range(2) != 0;
    bool const batched = state.range(3) != 0;
    rt::Engine eng(threads(), mode);
    gen::MatGenOptions opt;
    opt.cond = 1e8;
    opt.seed = 5000;
    auto A0 = gen::cond_matrix<double>(eng, n, n, nb, opt);
    QdwhOptions qopt;
    qopt.structured_qr = structured;
    if (batched)
        qopt.target = dev::Target::BatchedHost;

    double flops = 0;
    double kernel_flops = 0, solve_secs = 0;
    int it_qr = 0, it_chol = 0;
    std::uint64_t tile_ops = 0, engine_tasks = 0;
    double coalescing = 1.0;
    for (auto _ : state) {
        state.PauseTiming();
        auto A = A0.clone();
        TiledMatrix<double> H(n, n, nb);
        state.ResumeTiming();
        double const kf0 = blas::kernel::flops_performed();
        Timer t;
        auto info = qdwh(eng, A, H, qopt);
        solve_secs += t.elapsed();
        kernel_flops += blas::kernel::flops_performed() - kf0;
        flops = info.flops;
        it_qr = info.it_qr;
        it_chol = info.it_chol;
        tile_ops = info.tile_ops;
        engine_tasks = info.engine_tasks;
        coalescing = info.coalescing;
    }
    state.counters["Gflop/s"] = benchmark::Counter(
        flops * static_cast<double>(state.iterations()) / 1e9,
        benchmark::Counter::kIsRate);
    double const achieved =
        solve_secs > 0 ? kernel_flops / solve_secs / 1e9 : 0.0;
    state.counters["kernel_Gflop/s"] = achieved;
    if (batched)
        state.counters["coalescing"] = coalescing;
    state.SetLabel(std::string(mode_name(static_cast<int>(state.range(1)))) +
                   (structured ? "/ttqr" : "/dense") +
                   (batched ? "/batched" : ""));

    bench::JsonRecord r;
    r.field("bench", "qdwh")
        .field("n", static_cast<std::int64_t>(n))
        .field("mode", mode_name(static_cast<int>(state.range(1))))
        .field("structured_qr", structured)
        .field("target", batched ? "batched" : "tasks")
        .field("it_qr", it_qr)
        .field("it_chol", it_chol)
        .field("model_flops", flops)
        .field("kernel_flops", kernel_flops)
        .field("solve_seconds", solve_secs)
        .field("achieved_gflops", achieved)
        .field("tile_ops", tile_ops)
        .field("engine_tasks", engine_tasks)
        .field("coalescing", coalescing);
    emitter().add(r);
}

// One stacked-QR factor + Q generation, dense oracle vs structured — the
// isolated A/B behind the qdwh speedup. The JSON record carries the exact
// model-predicted kernel flops and a model-match flag: the replay in
// perf::stacked_qr_kernel_flops shares the counter's per-call truncation, so
// any mismatch is a kernel-accounting bug, not noise.
void BM_StackedQr(benchmark::State& state) {
    std::int64_t const n = state.range(0);
    int const nb = 32;
    bool const structured = state.range(1) != 0;
    rt::Engine eng(threads());
    TiledMatrix<double> A0(n, n, nb);
    gen::fill_gaussian(eng, A0, 7000);
    eng.wait();
    int const mt1 = A0.mt();

    auto wrows = TiledMatrix<double>::chop(n, nb);
    auto const cols = wrows;
    wrows.insert(wrows.end(), cols.begin(), cols.end());

    double kernel_flops = 0, secs = 0;
    for (auto _ : state) {
        state.PauseTiming();
        TiledMatrix<double> W(wrows, cols);
        la::copy(eng, A0, W.sub(0, 0, mt1, W.nt()));
        auto Tm = la::alloc_qr_t(W);
        TiledMatrix<double> Q(wrows, cols);
        eng.wait();
        state.ResumeTiming();
        double const kf0 = blas::kernel::flops_performed();
        Timer t;
        if (structured) {
            la::geqrf_stacked_tri(eng, W, mt1, 1.0, Tm);
            la::ungqr_stacked_tri(eng, W, mt1, Tm, Q);
        } else {
            la::set_identity(eng, W.sub(mt1, 0, W.nt(), W.nt()));
            la::geqrf(eng, W, Tm);
            la::ungqr(eng, W, Tm, Q);
        }
        eng.wait();
        secs += t.elapsed();
        kernel_flops = blas::kernel::flops_performed() - kf0;
    }
    double const model =
        bench::stacked_qr_model_flops<double>(n, nb, structured);
    state.counters["Gflop/s"] =
        secs > 0 ? kernel_flops * static_cast<double>(state.iterations()) /
                       secs / 1e9
                 : 0.0;
    state.SetLabel(structured ? "ttqr" : "dense");

    bench::JsonRecord r;
    r.field("bench", "stacked_qr")
        .field("n", static_cast<std::int64_t>(n))
        .field("structured_qr", structured)
        .field("qr_kernel_flops", kernel_flops)
        .field("qr_model_flops", model)
        .field("qr_model_match", kernel_flops == model)
        .field("solve_seconds", secs);
    emitter().add(r);
}

void BM_Geqrf(benchmark::State& state) {
    std::int64_t const n = state.range(0);
    int const nb = 32;
    rt::Engine eng(threads());
    TiledMatrix<double> A0(2 * n, n, nb);
    gen::fill_gaussian(eng, A0, 6000);
    eng.wait();
    for (auto _ : state) {
        state.PauseTiming();
        auto A = A0.clone();
        auto Tm = la::alloc_qr_t(A);
        state.ResumeTiming();
        la::geqrf(eng, A, Tm);
        eng.wait();
    }
}

void BM_Potrf(benchmark::State& state) {
    std::int64_t const n = state.range(0);
    int const nb = 32;
    rt::Engine eng(threads());
    auto A0 = gen::hpd_matrix<double>(eng, n, nb, 6001);
    for (auto _ : state) {
        state.PauseTiming();
        auto A = A0.clone();
        state.ResumeTiming();
        la::potrf(eng, Uplo::Lower, A);
        eng.wait();
    }
}

void BM_NewtonPolar(benchmark::State& state) {
    std::int64_t const n = state.range(0);
    rt::Engine eng(threads());
    gen::MatGenOptions opt;
    opt.cond = 1e4;
    opt.seed = 6002;
    auto A = ref::to_dense(gen::cond_matrix<double>(eng, n, n, 32, opt));
    for (auto _ : state) {
        ref::Dense<double> U, H;
        newton_polar(A, U, H);
        benchmark::DoNotOptimize(U.data());
    }
}

void BM_SvdPolar(benchmark::State& state) {
    std::int64_t const n = state.range(0);
    rt::Engine eng(threads());
    gen::MatGenOptions opt;
    opt.cond = 1e4;
    opt.seed = 6003;
    auto A = ref::to_dense(gen::cond_matrix<double>(eng, n, n, 32, opt));
    for (auto _ : state) {
        ref::Dense<double> U, H;
        svd_polar(A, U, H);
        benchmark::DoNotOptimize(U.data());
    }
}

}  // namespace

BENCHMARK(BM_Qdwh)
    ->ArgsProduct({{128, 256}, {0, 1, 2}, {0, 1}, {0}})
    ->Args({512, 1, 0, 0})  // the A/B pair behind the README flop-savings table
    ->Args({512, 1, 1, 0})
    // Tasks-vs-batched pairs behind the README batched-executor table.
    ->Args({128, 1, 1, 1})
    ->Args({256, 1, 1, 1})
    ->Args({512, 1, 1, 1})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StackedQr)
    ->ArgsProduct({{128, 256, 512}, {0, 1}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Geqrf)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Potrf)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NewtonPolar)->Arg(128)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SvdPolar)->Arg(128)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (char const* path = std::getenv("TBP_BENCH_JSON"))
        if (!emitter().empty())
            emitter().write(path);
    return 0;
}
