// Micro-kernel GEMM benchmark: measured GFLOP/s of the packed
// register-blocked kernel layer (blas/kernel/) against the naive reference
// loops, swept over tile sizes and all four scalar types. This is the
// acceptance harness for the kernel layer — the speedup it prints at
// nb=256 double is the number quoted in the PR description — and doubles as
// a retuning tool after any change to Params<T> (see kernel/params.hh).
//
// Usage:
//   bench_gemm_kernel                 full sweep, console table +
//                                     BENCH_gemm_kernel.json
//   bench_gemm_kernel --json PATH     write the JSON document to PATH
//   bench_gemm_kernel --smoke         fast ctest mode: one mid-size double
//                                     tile, asserts the micro path is no
//                                     slower than naive and bit-level sane
//
// TBP_SIZES="64,128" overrides the sweep sizes.

#include <algorithm>
#include <complex>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "blas/gemm.hh"
#include "common/aligned.hh"
#include "common/timer.hh"

using namespace tbp;

namespace {

char const* type_name(float) { return "s"; }
char const* type_name(double) { return "d"; }
char const* type_name(std::complex<float>) { return "c"; }
char const* type_name(std::complex<double>) { return "z"; }

/// Deterministic fill in [-0.5, 0.5) — xorshift, no <random> setup cost.
template <typename T>
void fill(aligned_vector<T>& v, std::uint64_t seed) {
    std::uint64_t s = seed * 2654435761u + 1;
    auto next = [&]() -> double {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        return static_cast<double>(s % 100000) / 100000.0 - 0.5;
    };
    for (auto& x : v) {
        if constexpr (is_complex_v<T>)
            x = T(static_cast<real_t<T>>(next()),
                  static_cast<real_t<T>>(next()));
        else
            x = static_cast<T>(next());
    }
}

struct PathResult {
    double gflops = 0;
    double seconds = 0;
    int reps = 0;
};

/// Time C := alpha A B + beta C at n^3 volume; kernel selected by `micro`.
template <typename T>
PathResult time_path(bool micro, int n, Tile<T> const& A, Tile<T> const& B,
                     aligned_vector<T> const& c0, Tile<T> const& C) {
    T const alpha = T(1) + T(1) / T(8);
    T const beta = T(1) / T(2);
    double const fl =
        flops::gemm(n, n, n) * (fma_flops<T>() / 2.0);

    auto run = [&] {
        std::copy(c0.begin(), c0.end(), C.data());
        if (micro)
            blas::kernel::gemm(Op::NoTrans, Op::NoTrans, alpha, A, B, beta, C);
        else
            blas::gemm_naive(Op::NoTrans, Op::NoTrans, alpha, A, B, beta, C);
    };

    run();  // warm-up (and arena growth for the micro path)
    Timer t1;
    run();
    double const once = std::max(t1.elapsed(), 1e-7);
    int const reps = std::max(3, static_cast<int>(0.12 / once));

    Timer t;
    for (int r = 0; r < reps; ++r)
        run();
    double const secs = t.elapsed() / reps;

    PathResult res;
    res.seconds = secs;
    res.gflops = fl / secs / 1e9;
    res.reps = reps;
    return res;
}

/// Max |micro - naive| relative to the result magnitude.
template <typename T>
double path_diff(int n, Tile<T> const& A, Tile<T> const& B,
                 aligned_vector<T> const& c0, Tile<T> const& C,
                 aligned_vector<T>& scratch) {
    T const alpha = T(1) + T(1) / T(8);
    T const beta = T(1) / T(2);
    std::copy(c0.begin(), c0.end(), C.data());
    blas::gemm_naive(Op::NoTrans, Op::NoTrans, alpha, A, B, beta, C);
    std::copy(C.data(), C.data() + scratch.size(), scratch.begin());
    std::copy(c0.begin(), c0.end(), C.data());
    blas::kernel::gemm(Op::NoTrans, Op::NoTrans, alpha, A, B, beta, C);
    double dmax = 0, vmax = 0;
    for (std::size_t i = 0; i < scratch.size(); ++i) {
        dmax = std::max(dmax, static_cast<double>(std::abs(C.data()[i] - scratch[i])));
        vmax = std::max(vmax, static_cast<double>(std::abs(scratch[i])));
    }
    return vmax > 0 ? dmax / vmax : dmax;
}

template <typename T>
void run_type(std::vector<std::int64_t> const& sizes,
              bench::JsonEmitter& out) {
    for (std::int64_t n64 : sizes) {
        int const n = static_cast<int>(n64);
        aligned_vector<T> a(static_cast<std::size_t>(n) * n);
        aligned_vector<T> b(a.size()), c0(a.size()), c(a.size()),
            scratch(a.size());
        fill(a, 11 + n);
        fill(b, 22 + n);
        fill(c0, 33 + n);
        Tile<T> A(a.data(), n, n, n), B(b.data(), n, n, n),
            C(c.data(), n, n, n);

        auto naive = time_path<T>(false, n, A, B, c0, C);
        auto micro = time_path<T>(true, n, A, B, c0, C);
        double const diff = path_diff<T>(n, A, B, c0, C, scratch);
        double const speedup = naive.gflops > 0
                                   ? micro.gflops / naive.gflops
                                   : 0.0;

        std::printf("  %s n=%4d  naive %7.2f GF/s  micro %7.2f GF/s  "
                    "speedup %5.2fx  maxdiff %.2e\n",
                    type_name(T{}), n, naive.gflops, micro.gflops, speedup,
                    diff);

        bench::JsonRecord r;
        r.field("op", "gemm")
            .field("type", type_name(T{}))
            .field("m", n)
            .field("n", n)
            .field("k", n)
            .field("naive_gflops", naive.gflops)
            .field("micro_gflops", micro.gflops)
            .field("speedup", speedup)
            .field("maxdiff_rel", diff);
        out.add(r);
    }
}

int run_smoke() {
    // Mid-size double tile: the micro path must beat the naive loops and
    // agree numerically. Kept fast (~1 s) so it can run inside ctest.
    int const n = 192;
    aligned_vector<double> a(static_cast<std::size_t>(n) * n);
    aligned_vector<double> b(a.size()), c0(a.size()), c(a.size()),
        scratch(a.size());
    fill(a, 101);
    fill(b, 202);
    fill(c0, 303);
    Tile<double> A(a.data(), n, n, n), B(b.data(), n, n, n),
        C(c.data(), n, n, n);

    auto naive = time_path<double>(false, n, A, B, c0, C);
    auto micro = time_path<double>(true, n, A, B, c0, C);
    double const diff = path_diff<double>(n, A, B, c0, C, scratch);
    double const speedup = micro.gflops / naive.gflops;

    std::printf("smoke: d n=%d naive %.2f GF/s micro %.2f GF/s speedup "
                "%.2fx maxdiff %.2e\n",
                n, naive.gflops, micro.gflops, speedup, diff);
    bool const ok = speedup >= 1.05 && diff < 1e-12;
    std::printf("smoke: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    std::string json_path = "BENCH_gemm_kernel.json";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--smoke")) {
            smoke = true;
        } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--json PATH]\n", argv[0]);
            return 2;
        }
    }

    if (smoke)
        return run_smoke();

    auto const sizes = bench::bench_sizes({64, 96, 128, 192, 256});
    bench::JsonEmitter out;

    bench::header("bench_gemm_kernel",
                  "packed micro-kernel vs naive tile GEMM");
    run_type<float>(sizes, out);
    run_type<double>(sizes, out);
    run_type<std::complex<float>>(sizes, out);
    run_type<std::complex<double>>(sizes, out);

    if (out.write(json_path))
        std::printf("\nwrote %s\n", json_path.c_str());
    return 0;
}
