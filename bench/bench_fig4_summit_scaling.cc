// Figure 4: scalability study of SLATE-QDWH (GPU) across Summit node counts.
//
// Paper shape: limited strong scaling at fixed n, good weak scaling at the
// largest (memory-limited) size per node count. Model projection.

#include <cinttypes>
#include <cstdio>

#include "bench_util.hh"

using namespace tbp;
using namespace tbp::perf;

int main() {
    bench::header("Figure 4", "SLATE-QDWH GPU scalability on Summit "
                              "(machine-model projection)");
    int const node_counts[] = {1, 2, 4, 8, 16, 32};
    std::vector<std::int64_t> const sizes = {10000, 20000, 40000, 80000,
                                             130000, 190000};

    std::printf("%9s", "n \\ nodes");
    for (int nodes : node_counts)
        std::printf("  %9d", nodes);
    std::printf("\n");
    for (auto n : sizes) {
        std::printf("%9" PRId64, n);
        for (int nodes : node_counts) {
            auto m = MachineModel::summit(nodes);
            if (n > m.max_n(Device::Gpu)) {
                std::printf("  %9s", "-");  // exceeds GPU memory
                continue;
            }
            auto r = qdwh_perf(m, Device::Gpu, Schedule::TaskDataflow, n, 320);
            std::printf("  %6.1f TF", r.tflops);
        }
        std::printf("\n");
    }

    std::printf("\nweak scaling at the memory-limited size per node count:\n");
    std::printf("%7s  %9s  %12s  %14s\n", "nodes", "max n", "Tflop/s",
                "TF per node");
    for (int nodes : node_counts) {
        auto m = MachineModel::summit(nodes);
        auto n = m.max_n(Device::Gpu);
        auto r = qdwh_perf(m, Device::Gpu, Schedule::TaskDataflow, n, 320);
        std::printf("%7d  %9" PRId64 "  %9.2f TF  %11.2f TF\n", nodes, n,
                    r.tflops, r.tflops / nodes);
    }

    std::printf("\nstrong scaling at fixed n = 30000:\n");
    std::printf("%7s  %12s  %12s\n", "nodes", "Tflop/s", "efficiency");
    double base = 0;
    for (int nodes : node_counts) {
        auto m = MachineModel::summit(nodes);
        auto r = qdwh_perf(m, Device::Gpu, Schedule::TaskDataflow, 30000, 320);
        if (nodes == 1)
            base = r.tflops;
        std::printf("%7d  %9.2f TF  %10.0f%%\n", nodes, r.tflops,
                    100.0 * r.tflops / (base * nodes));
    }
    std::printf("\npaper: strong scalability limited; good weak scalability "
                "at the largest size per node count\n");
    return 0;
}
