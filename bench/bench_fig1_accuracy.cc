// Figure 1 (a, b): accuracy of the QDWH polar decomposition vs matrix size,
// task-based (SLATE) vs fork-join (ScaLAPACK/POLAR stand-in), on
// ill-conditioned matrices (kappa = 1e16, double precision), plus the
// adaptive precision-ladder run (task-based) as a third series.
//
// Paper result: both series sit at ~1e-15 ("around machine precision") for
// the orthogonality error ||I - Up^H Up||_F / sqrt(n) and the backward error
// ||A - Up H||_F / ||A||_F. These are REAL measured runs of this library's
// numerics, not modeled values. The adaptive ladder's native tail must hold
// the same orthogonality contract: the run exits nonzero if any adaptive
// orthogonality exceeds 50 eps64.

#include <cinttypes>
#include <cstdio>
#include <limits>

#include "bench_util.hh"

using namespace tbp;

int main() {
    bench::header("Figure 1", "accuracy of SLATE-style vs ScaLAPACK-style QDWH "
                              "(measured, kappa = 1e16, double)");
    std::printf("%8s  %40s  %40s\n", "",
                "orthogonality |I-U'U|/sqrt(n)", "backward error |A-UH|/|A|");
    std::printf("%8s  %12s  %12s  %12s  %12s  %12s  %12s  %6s\n", "n",
                "task-based", "fork-join", "adaptive", "task-based",
                "fork-join", "adaptive", "iters");

    double const eps64 = std::numeric_limits<double>::epsilon();
    bool orth_ok = true;
    auto const sizes = bench::bench_sizes({64, 128, 192, 256, 384, 512});
    for (auto n : sizes) {
        int const nb = 32;
        gen::MatGenOptions opt;
        opt.cond = 1e16;
        opt.seed = 1000 + static_cast<std::uint64_t>(n);

        double orth[3], backward[3];
        int iters = 0;
        rt::Mode const modes[2] = {rt::Mode::TaskDataflow, rt::Mode::ForkJoin};
        for (int mi = 0; mi < 2; ++mi) {
            rt::Engine eng(bench::bench_threads(), modes[mi]);
            auto A = gen::cond_matrix<double>(eng, n, n, nb, opt);
            auto Ad = ref::to_dense(A);
            TiledMatrix<double> H(n, n, nb);
            auto info = qdwh(eng, A, H);
            auto acc = bench::accuracy(Ad, A, H);
            orth[mi] = acc.orth;
            backward[mi] = acc.backward;
            iters = info.iterations;
        }
        {
            // Adaptive precision ladder, task-based runtime: admissible
            // rungs in simulated bf16 / float, native tail — the
            // orthogonality must come out indistinguishable from the
            // all-double series (the backward error is allowed to sit at
            // the lowest executed rung's precision).
            rt::Engine eng(bench::bench_threads(), rt::Mode::TaskDataflow);
            auto A = gen::cond_matrix<double>(eng, n, n, nb, opt);
            auto Ad = ref::to_dense(A);
            TiledMatrix<double> H(n, n, nb);
            QdwhOptions qo;
            qo.precision.request = prec::Precision::Adaptive;
            QdwhInfo info;
            Status const s = qdwh_status(eng, A, H, info, qo);
            if (s != Status::Ok) {
                std::printf("adaptive run failed at n=%" PRId64 ": %s\n", n,
                            status_name(s));
                orth_ok = false;
                orth[2] = backward[2] = 0;
            } else {
                auto acc = bench::accuracy(Ad, A, H);
                orth[2] = acc.orth;
                backward[2] = acc.backward;
                orth_ok = orth_ok && acc.orth <= 50 * eps64;
            }
        }
        std::printf("%8" PRId64 "  %12.3e  %12.3e  %12.3e  %12.3e  %12.3e  "
                    "%12.3e  %6d\n",
                    n, orth[0], orth[1], orth[2], backward[0], backward[1],
                    backward[2], iters);
    }
    std::printf("\npaper: all series around 1e-15 across sizes; both "
                "formulations numerically stable\n");
    std::printf("adaptive orthogonality <= 50 eps64: %s\n",
                orth_ok ? "PASS" : "FAIL");
    return orth_ok ? 0 : 1;
}
