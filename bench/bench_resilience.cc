// Resilience benchmark: the price and the payoff of the fault plane
// (src/fault/) on the distributed QDWH workload.
//
// Three questions, answered with measured counters:
//   1. Overhead off: with an installed-but-inert plan every p2p message
//      still travels the enveloped reliable transport (seq + checksum +
//      retained copies). The logical traffic counters must be identical to
//      the bare fast path, and wall time must stay within a small factor.
//   2. Recovery: under seeded drop/corrupt/dup/delay plans the solver must
//      produce the bit-identical factor of the fault-free run, with the
//      recovery counters exactly matching the injected plan (resends ==
//      drops + corrupts, every duplicate absorbed).
//   3. Fail-stop: a poisoned rank must terminate the run with a typed error
//      inside the retry deadline — never a hang.
//
// Usage:
//   bench_resilience               full sweep, console table +
//                                  BENCH_resilience.json
//   bench_resilience --json PATH   write the JSON document to PATH
//   bench_resilience --smoke       fast ctest mode asserting 1-3

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "comm/comm_error.hh"
#include "comm/communicator.hh"
#include "comm/dist.hh"
#include "comm/dist_qdwh.hh"
#include "common/timer.hh"
#include "fault/fault_plan.hh"
#include "perf/fault_report.hh"
#include "perf/sched_report.hh"

using namespace tbp;

namespace {

struct CaseResult {
    std::vector<double> U;       // rank 0's gathered factor
    perf::CommReport comm;
    perf::FaultReport fault;
    double wall = 0;
    int iterations = 0;
    bool failed = false;         // run ended in a typed comm/rank error
    std::string error;
};

fault::RetryConfig bench_retry() {
    fault::RetryConfig rc;
    rc.timeout_ms = 5;
    rc.retry_max = 6;
    return rc;
}

/// One distributed QDWH solve (n x n, nb, P ranks in a near-square grid)
/// under `plan`; installs nothing when `install` is false (bare baseline).
CaseResult run_case(int P, std::int64_t n, int nb, fault::FaultPlan plan,
                    bool install) {
    int d = 1;
    for (int k = 1; k * k <= P; ++k)
        if (P % k == 0)
            d = k;
    Grid const g{d, P / d};
    auto fill = [](std::int64_t i, std::int64_t j) {
        return (i == j ? 2.0 : 0.0) + 1.0 / static_cast<double>(1 + i + j);
    };
    comm::World world(P);
    if (install)
        world.set_fault(plan, bench_retry());
    CaseResult r;
    Timer t;
    try {
        world.run([&](comm::Communicator& c) {
            comm::DistMatrix<double> A(c, n, n, nb, g);
            A.fill(fill);
            auto inf = comm::dist_qdwh(c, g, A, 1e-3);
            auto dense = comm::dist_gather(c, A);
            if (c.rank() == 0) {
                r.U = std::move(dense);
                r.iterations = inf.iterations;
            }
        });
    } catch (Error const& e) {
        r.failed = true;
        r.error = e.what();
    }
    r.wall = t.elapsed();
    r.comm = perf::comm_report(world);
    r.fault = perf::fault_report(world);
    return r;
}

/// Best-of-reps wall time for the overhead comparison (virtual ranks
/// time-share cores, so single runs are noisy).
double best_wall(int P, std::int64_t n, int nb, fault::FaultPlan plan,
                 bool install, int reps) {
    double best = 1e300;
    for (int i = 0; i < reps; ++i)
        best = std::min(best, run_case(P, n, nb, plan, install).wall);
    return best;
}

bool bitwise_equal(std::vector<double> const& a,
                   std::vector<double> const& b) {
    return a.size() == b.size()
           && std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

int run_sweep(std::string const& json_path) {
    bench::header("bench_resilience",
                  "fault-plane overhead and recovery on distributed QDWH");
    bench::JsonEmitter out;
    bool all_ok = true;
    std::int64_t const n = 64;
    int const nb = 32;

    struct Kind {
        char const* name;
        fault::FaultKind kind;
    };
    Kind const kinds[] = {{"drop", fault::FaultKind::Drop},
                          {"corrupt", fault::FaultKind::Corrupt},
                          {"dup", fault::FaultKind::Duplicate},
                          {"delay", fault::FaultKind::Delay},
                          {"mix", fault::FaultKind::Mix}};

    for (int P : {4, 8}) {
        auto clean = run_case(P, n, nb, {}, false);
        auto inert = run_case(P, n, nb, fault::FaultPlan{}, true);
        bool const inert_exact =
            inert.comm.total.sends == clean.comm.total.sends
            && inert.comm.total.bytes_sent == clean.comm.total.bytes_sent
            && bitwise_equal(inert.U, clean.U);
        all_ok = all_ok && inert_exact;
        std::printf("\nP=%d clean: %d iters, %llu msgs, %llu bytes, %.3fs\n",
                    P, clean.iterations,
                    static_cast<unsigned long long>(clean.comm.total.sends),
                    static_cast<unsigned long long>(
                        clean.comm.total.bytes_sent),
                    clean.wall);
        std::printf("  inert plan: counters %s, wall %.3fs\n",
                    inert_exact ? "identical" : "DIVERGED", inert.wall);
        bench::JsonRecord base;
        base.field("ranks", P)
            .field("plan", "inert")
            .field("rate", 0.0)
            .field("bitwise_match", inert_exact)
            .field("messages", inert.comm.total.sends)
            .field("bytes", inert.comm.total.bytes_sent)
            .field("wall_clean", clean.wall)
            .field("wall", inert.wall)
            .field("resends", inert.fault.total.resends)
            .field("injected", inert.fault.injected());
        out.add(base);

        for (auto const& k : kinds) {
            for (double rate : {0.01, 0.05}) {
                auto plan = fault::FaultPlan::preset(k.kind, 2024, rate);
                auto r = run_case(P, n, nb, plan, true);
                bool const match = !r.failed && bitwise_equal(r.U, clean.U)
                                   && r.comm.total.bytes_sent
                                          == clean.comm.total.bytes_sent;
                all_ok = all_ok && match;
                auto const& f = r.fault.total;
                std::printf(
                    "  %-7s rate %.2f: injected %4llu (d%llu c%llu u%llu "
                    "l%llu)  resends %4llu  %.3fs  %s\n",
                    k.name, rate,
                    static_cast<unsigned long long>(r.fault.injected()),
                    static_cast<unsigned long long>(f.injected_drops),
                    static_cast<unsigned long long>(f.injected_corrupts),
                    static_cast<unsigned long long>(f.injected_dups),
                    static_cast<unsigned long long>(f.injected_delays),
                    static_cast<unsigned long long>(f.resends), r.wall,
                    match ? "bitwise match" : "MISMATCH");
                bench::JsonRecord rec;
                rec.field("ranks", P)
                    .field("plan", k.name)
                    .field("rate", rate)
                    .field("bitwise_match", match)
                    .field("messages", r.comm.total.sends)
                    .field("bytes", r.comm.total.bytes_sent)
                    .field("wall_clean", clean.wall)
                    .field("wall", r.wall)
                    .field("injected", r.fault.injected())
                    .field("injected_drops", f.injected_drops)
                    .field("injected_corrupts", f.injected_corrupts)
                    .field("injected_dups", f.injected_dups)
                    .field("injected_delays", f.injected_delays)
                    .field("resends", f.resends)
                    .field("checksum_failures", f.checksum_failures)
                    .field("dups_absorbed", r.fault.dups_accounted());
                out.add(rec);
            }
        }
    }

    if (out.write(json_path))
        std::printf("\nwrote %s\n", json_path.c_str());
    std::printf("recovery cross-check: %s\n",
                all_ok ? "all cases bitwise" : "MISMATCHES (see above)");
    return all_ok ? 0 : 1;
}

int run_smoke() {
    bool ok = true;
    auto fail = [&](char const* what) {
        std::printf("smoke FAIL: %s\n", what);
        ok = false;
    };
    std::int64_t const n = 64;
    int const nb = 32;
    int const P = 4;

    // 1. Inert plan: logical counters and result identical to the bare
    //    path; enveloped-transport wall overhead bounded.
    auto clean = run_case(P, n, nb, {}, false);
    auto inert = run_case(P, n, nb, fault::FaultPlan{}, true);
    if (clean.failed || inert.failed)
        fail("fault-free run raised an error");
    if (inert.comm.total.sends != clean.comm.total.sends
        || inert.comm.total.bytes_sent != clean.comm.total.bytes_sent)
        fail("inert plan changed the logical traffic counters");
    if (!bitwise_equal(inert.U, clean.U))
        fail("inert plan changed the result bytes");
    if (inert.fault.injected() != 0 || inert.fault.total.resends != 0)
        fail("inert plan injected or recovered something");
    double const w_bare = best_wall(P, n, nb, {}, false, 3);
    double const w_env = best_wall(P, n, nb, fault::FaultPlan{}, true, 3);
    if (w_env > 2.5 * w_bare + 0.05) {
        std::printf("  enveloped %.4fs vs bare %.4fs\n", w_env, w_bare);
        fail("reliable-transport overhead above bound");
    }

    // 2. Drop sweep: bitwise recovery with resends == injected drops and
    //    model-exact byte counters.
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        auto plan = fault::FaultPlan::preset(fault::FaultKind::Drop, seed);
        auto r = run_case(P, n, nb, plan, true);
        if (r.failed)
            fail("drop plan run raised an error");
        if (!bitwise_equal(r.U, clean.U))
            fail("drop plan result differs from fault-free oracle");
        if (r.fault.total.resends != r.fault.total.injected_drops)
            fail("resends != injected drops");
        if (r.fault.injected() == 0)
            fail("drop plan injected nothing");
        if (r.comm.total.bytes_sent != clean.comm.total.bytes_sent)
            fail("drop plan perturbed logical byte counters");
    }

    // 3. Fail-stop: a poisoned rank terminates the run with a typed error
    //    well inside the smoke budget.
    auto poison = fault::FaultPlan::preset(fault::FaultKind::PoisonRank, 9);
    poison.poison_after_sends = 10;
    Timer t;
    auto r = run_case(P, n, nb, poison, true);
    if (!r.failed)
        fail("poisoned rank did not surface an error");
    if (r.error.empty())
        fail("poison error carries no message");
    if (t.elapsed() > 30.0)
        fail("poisoned run took too long to terminate");

    std::printf("smoke: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    std::string json_path = "BENCH_resilience.json";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--smoke")) {
            smoke = true;
        } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--smoke] [--json PATH]\n",
                         argv[0]);
            return 2;
        }
    }
    if (smoke)
        return run_smoke();
    return run_sweep(json_path);
}
