// Figure 2 (a, b): QDWH performance on 1 and 8 Summit nodes — SLATE-GPU vs
// SLATE-CPU vs ScaLAPACK (POLAR), Tflop/s vs matrix size.
//
// These series come from the calibrated machine/cost model (this machine has
// no GPUs — see DESIGN.md substitution table). The paper's headline numbers:
// SLATE-GPU up to 18x over ScaLAPACK on 1 node (and 4), ~13x on 8 nodes;
// SLATE-CPU roughly matches ScaLAPACK.

#include <cinttypes>
#include <cstdio>

#include "bench_util.hh"

using namespace tbp;
using namespace tbp::perf;

namespace {

void one_config(int nodes, std::vector<std::int64_t> const& sizes) {
    auto const m = MachineModel::summit(nodes);
    std::printf("\n--- %d node%s of Summit (%d POWER9 cores, %d V100 GPUs) ---\n",
                nodes, nodes > 1 ? "s" : "", nodes * m.cpu_cores,
                nodes * m.gpus);
    std::printf("%9s  %12s  %12s  %12s  %9s\n", "n", "SLATE-GPU", "SLATE-CPU",
                "ScaLAPACK", "GPU/Scal");
    double max_speedup = 0;
    for (auto n : sizes) {
        if (n > m.max_n(Device::Gpu))
            continue;  // paper: sizes limited by GPU memory footprint
        auto gpu = qdwh_perf(m, Device::Gpu, Schedule::TaskDataflow, n, 320);
        auto cpu = qdwh_perf(m, Device::Cpu, Schedule::TaskDataflow, n, 192);
        auto scal = qdwh_perf(m, Device::Cpu, Schedule::ForkJoin, n, 192);
        double const sp = gpu.tflops / scal.tflops;
        max_speedup = std::max(max_speedup, sp);
        std::printf("%9" PRId64 "  %9.2f TF  %9.2f TF  %9.2f TF  %8.1fx\n", n,
                    gpu.tflops, cpu.tflops, scal.tflops, sp);
    }
    std::printf("max modeled speedup at %d node%s: %.1fx\n", nodes,
                nodes > 1 ? "s" : "", max_speedup);
}

}  // namespace

int main() {
    bench::header("Figure 2", "QDWH Tflop/s on Summit, 1 and 8 nodes "
                              "(machine-model projection)");
    one_config(1, {5000, 10000, 15000, 20000, 25000, 30000, 34000});
    one_config(8, {10000, 20000, 40000, 60000, 80000, 95000});
    std::printf("\npaper: up to 18x on 1 node (Fig. 2a) and ~13x on 8 nodes "
                "(Fig. 2b); SLATE-CPU tracks ScaLAPACK\n");
    return 0;
}
