// Distributed flat-tree tile QR over virtual ranks (SPMD, real messages) —
// the communication-avoiding factorization behind QDWH's QR-based iteration,
// in its message-passing form:
//
//   - panel k: geqrt at the owner of (k, k); the TS chain folds each tile
//     below into R, relaying the evolving R tile down the panel owners;
//   - the V/T of every reflector block is broadcast along the process rows
//     that hold the trailing tiles;
//   - tsmqr couples two block rows (k and i): when their owners differ, the
//     row-k tile travels to the row-i owner and back (the classic
//     ScaLAPACK-style pairwise update exchange).
//
// dist_ungqr applies the recorded reflectors in reverse to [I; 0], and
// dist_qdwh composes these with the Cholesky kernels of dist_algs.hh into a
// complete distributed QDWH (both iteration branches).
//
// Determinism: the tile kernels see the same values in the same order as
// the shared-memory path, so the factors agree bit-for-bit — tested.

#pragma once

#include "blas/householder.hh"
#include "comm/dist_algs.hh"

namespace tbp::comm {

namespace detail {

/// Exchange-update: run fn on `runner`; tile (i, j) of A is shipped from its
/// owner to `runner` first and shipped back after, if they differ.
/// Both ranks (and only they) must call this.
template <typename T, typename Fn>
void borrow_tile(Communicator& c, DistMatrix<T>& A, int i, int j, int runner,
                 int tag, Fn const& fn) {
    int const owner = A.owner(i, j);
    if (owner == runner) {
        if (c.rank() == runner)
            fn(A.tile(i, j));
        return;
    }
    if (c.rank() == owner) {
        detail::send_tile(c, A.tile(i, j), runner, tag);
        auto back = detail::recv_tile<T>(c, A.tile_mb(i), A.tile_nb(j), runner,
                                         tag + 1);
        auto t = A.tile(i, j);
        for (int cc = 0; cc < t.nb(); ++cc)
            for (int rr = 0; rr < t.mb(); ++rr)
                t(rr, cc) = back.tile()(rr, cc);
    } else if (c.rank() == runner) {
        auto st = detail::recv_tile<T>(c, A.tile_mb(i), A.tile_nb(j), owner, tag);
        fn(st.tile());
        detail::send_tile(c, st.tile(), owner, tag + 1);
    }
}

}  // namespace detail

/// Distributed flat-tree QR: A = Q R in place (R upper, reflectors below +
/// in Tmat). Tmat must share A's tile layout with square nb(k)-sized tiles
/// (allocate with tile size = A's nb; only the top nb(k) x nb(k) is used).
template <typename T>
void dist_geqrf(Communicator& c, Grid g, DistMatrix<T>& A, DistMatrix<T>& Tmat) {
    int const mt = A.mt(), nt = A.nt();
    int const kt = std::min(mt, nt);
    int tag = 1 << 24;

    for (int k = 0; k < kt; ++k) {
        int const nbk = A.tile_nb(k);

        // -- geqrt on the diagonal tile --------------------------------------
        if (A.is_local(k, k) && Tmat.is_local(k, k)) {
            auto tt = Tmat.tile(k, k).sub(0, 0, nbk, nbk);
            blas::geqrt(A.tile(k, k), tt);
        } else if (A.owner(k, k) != Tmat.owner(k, k)) {
            // Tmat shares A's map by construction; guarded for safety.
            tbp_require(false);
        }

        // Broadcast V(k,k) + T(k,k) along process row k for the updates.
        auto rk = row_group(g, k);
        detail::Staged<T> vkk, tkk;
        {
            bool const need = in_group(rk, c.rank());
            if (need || A.owner(k, k) == c.rank()) {
                auto s = stage_tile(c, A, k, k, rk, tag);
                if (need)
                    vkk = std::move(s);
                auto s2 = stage_tile(c, Tmat, k, k, rk, tag + 1);
                if (need)
                    tkk = std::move(s2);
            }
            tag += 2;
        }
        for (int j = k + 1; j < nt; ++j) {
            if (A.is_local(k, j)) {
                int const kk = std::min(vkk.mb, nbk);
                auto tt = tkk.tile().sub(0, 0, kk, kk);
                blas::unmqr(Op::ConjTrans, vkk.tile(), tt, A.tile(k, j));
            }
        }

        // -- TS chain down the panel ----------------------------------------
        for (int i = k + 1; i < mt; ++i) {
            // tsqrt runs at owner(i, k); the R tile (k, k) is borrowed there.
            int const runner = A.owner(i, k);
            bool const involved =
                c.rank() == runner || c.rank() == A.owner(k, k);
            if (involved) {
                detail::borrow_tile(c, A, k, k, runner, tag, [&](Tile<T> r1) {
                    auto tt = Tmat.tile(i, k).sub(0, 0, nbk, nbk);
                    blas::tsqrt(r1, A.tile(i, k), tt);
                });
            }
            tag += 2;

            // Broadcast V2 = A(i,k) and T(i,k) to the union of process rows
            // k and i (both sides of every tsmqr pair need them).
            auto gi = row_group(g, i);
            auto gk = row_group(g, k);
            std::vector<int> grp = gi;
            for (int r : gk)
                if (!in_group(grp, r))
                    grp.push_back(r);
            detail::Staged<T> v2, ti;
            {
                bool const need = in_group(grp, c.rank());
                if (need || A.owner(i, k) == c.rank()) {
                    auto s = stage_tile(c, A, i, k, grp, tag);
                    if (need)
                        v2 = std::move(s);
                    auto s2 = stage_tile(c, Tmat, i, k, grp, tag + 1);
                    if (need)
                        ti = std::move(s2);
                }
                tag += 2;
            }

            // Pairwise updates: tile (k, j) borrowed to owner(i, j).
            for (int j = k + 1; j < nt; ++j) {
                int const runner2 = A.owner(i, j);
                bool const involved2 =
                    c.rank() == runner2 || c.rank() == A.owner(k, j);
                if (involved2) {
                    detail::borrow_tile(
                        c, A, k, j, runner2, tag, [&](Tile<T> c1) {
                            auto tt = ti.tile().sub(0, 0, nbk, nbk);
                            blas::tsmqr(Op::ConjTrans, v2.tile(), tt, c1,
                                        A.tile(i, j));
                        });
                }
                tag += 2;
            }
        }
    }
}

/// Form Q (A.m x A.n) explicitly from a dist_geqrf-factored A: the reverse
/// reflector sweep applied to [I; 0]. Q must share A's layout.
template <typename T>
void dist_ungqr(Communicator& c, Grid g, DistMatrix<T>& A, DistMatrix<T>& Tmat,
                DistMatrix<T>& Q) {
    int const mt = A.mt(), nt = std::min(A.mt(), A.nt());
    tbp_require(Q.mt() == mt && Q.nt() == A.nt());
    dist_set_identity(Q);

    // Deterministic application schedule: for k descending, the pairwise
    // tsmqr blocks (i = mt-1 .. k+1), then the diagonal unmqr block
    // (recorded as i == k). Tags are assigned in schedule order up front so
    // every rank agrees and the next entry's broadcast can be posted early.
    struct Entry {
        int k, i;
        int stage_tag;   // V/T broadcast: stage_tag, stage_tag + 1
        int borrow_tag;  // first pairwise exchange tag (pair entries)
    };
    std::vector<Entry> sched;
    {
        int tag = 1 << 25;
        for (int k = nt - 1; k >= 0; --k) {
            for (int i = mt - 1; i > k; --i) {
                sched.push_back({k, i, tag, tag + 2});
                tag += 2 + 2 * (Q.nt() - k);
            }
            sched.push_back({k, k, tag, 0});
            tag += 2;
        }
    }

    // A and Tmat are read-only below (only Q is written), so entry e+1's
    // V/T broadcast legally overlaps entry e's reflector applications.
    // The legacy oracle stages each entry on demand instead.
    using VT = std::pair<detail::PendingStage<T>, detail::PendingStage<T>>;
    auto stage_entry = [&](Entry const& en) {
        std::vector<int> grp = row_group(g, en.k);
        if (en.i != en.k) {
            auto gi = row_group(g, en.i);
            for (int r : grp)
                if (!in_group(gi, r))
                    gi.push_back(r);
            grp = std::move(gi);
        }
        VT vt;
        bool const need = in_group(grp, c.rank());
        if (need || A.owner(en.i, en.k) == c.rank()) {
            auto p = stage_tile_begin(c, A, en.i, en.k, grp, en.stage_tag);
            auto p2 =
                stage_tile_begin(c, Tmat, en.i, en.k, grp, en.stage_tag + 1);
            if (need) {
                vt.first = std::move(p);
                vt.second = std::move(p2);
            }
        }
        return vt;
    };

    bool const pipelined = !c.coll_config().legacy;
    VT cur;
    if (!sched.empty())
        cur = stage_entry(sched[0]);
    for (std::size_t e = 0; e < sched.size(); ++e) {
        VT next;
        if (pipelined && e + 1 < sched.size())
            next = stage_entry(sched[e + 1]);
        Entry const& en = sched[e];
        int const nbk = A.tile_nb(en.k);
        if (en.i != en.k) {
            int btag = en.borrow_tag;
            for (int j = en.k; j < Q.nt(); ++j) {
                int const runner = Q.owner(en.i, j);
                bool const involved =
                    c.rank() == runner || c.rank() == Q.owner(en.k, j);
                if (involved) {
                    detail::borrow_tile(
                        c, Q, en.k, j, runner, btag, [&](Tile<T> c1) {
                            auto tt =
                                cur.second.ready().tile().sub(0, 0, nbk, nbk);
                            blas::tsmqr(Op::NoTrans, cur.first.ready().tile(),
                                        tt, c1, Q.tile(en.i, j));
                        });
                }
                btag += 2;
            }
        } else {
            for (int j = en.k; j < Q.nt(); ++j) {
                if (Q.is_local(en.k, j)) {
                    int const kk = std::min(cur.first.ready().mb, nbk);
                    auto tt = cur.second.ready().tile().sub(0, 0, kk, kk);
                    blas::unmqr(Op::NoTrans, cur.first.ready().tile(), tt,
                                Q.tile(en.k, j));
                }
            }
        }
        if (!pipelined && e + 1 < sched.size())
            next = stage_entry(sched[e + 1]);
        cur = std::move(next);
    }
}

}  // namespace tbp::comm
