// Communication-avoiding 2.5D SUMMA over a p x q x c process grid.
//
// The matrices live block-cyclically on the p x q layer-0 grid (the
// ProcGrid3d layer grid); layers 1..c-1 hold transient replicas. The kt
// interior steps of the SUMMA k-loop are assigned to layers in contiguous
// balanced blocks (ProcGrid3d::step_lo/step_hi — a cyclic map would
// correlate step-owner columns with layers and concentrate the staging
// bottleneck). For a remote step, the layer-0 owner of each operand tile first
// ships it up the replication fiber to its layer mate (one hop), and that
// mate then stages it across its own layer's row/column group exactly like
// the 2D oracle does on layer 0 — so the per-rank staging volume drops by
// ~c while the fiber adds only one copy of each operand panel, the classic
// ~sqrt(c) per-rank traffic reduction once C contributions are reduced as
// per-layer partial sums.
//
// Two reduction modes, switched on coll::Config::deterministic (mirroring
// the Ring-allreduce precedent: the deterministic default never trades
// reproducibility for traffic):
//
//   ExactOrder (deterministic): remote layers ship each step's product
//     tile z_l = alpha op(A_il) op(B_lj) and the layer-0 owner folds all
//     steps in globally ascending l order. Because every distributed SUMMA
//     path accumulates through la::summa_step_accumulate (product into a
//     zeroed tile, then one elementwise add), the result is bit-identical
//     to the 2D oracle on the same layer grid — at the cost of shipping
//     one z tile per remote step, so this mode proves correctness rather
//     than saving traffic.
//
//   PartialSum (deterministic = false): each remote layer folds its own
//     steps (ascending l) into one partial tile per owned C tile and ships
//     that single tile; layer 0 folds its own steps, then the partials in
//     ascending layer order. Reproducible at a fixed grid shape, and the
//     mode that realizes the ~sqrt(c) max_rank_bytes win the auto-selector
//     (perf::choose_summa_plan) costs.
//
// Deadlock discipline: all sends are buffered; layer-0 fiber sends for
// every remote step are issued before any rank blocks in a receive, so
// remote layers progress independently of layer 0's step loop, and the
// within-layer staging follows the 2D oracle's owner-sends-first pattern.
// perf::summa_volume replays these loops exactly (model == measured).

#pragma once

#include <map>
#include <utility>
#include <vector>

#include "comm/dist_algs.hh"
#include "comm/grid3d.hh"
#include "linalg/summa_step.hh"

namespace tbp::comm {

/// Tags consumed by one summa_25d call starting at tag_base: a fiber and a
/// stage tag per (step, operand tile) plus a reduce tag per (step, C tile).
inline int summa25_tag_span(int mt, int nt, int kt) {
    return kt * (2 * (mt + nt) + mt * nt);
}

/// 2.5D SUMMA: C := alpha MA(:,0:kt) op(B) + beta C on the g3 layer grid,
/// with op(B) tiles taken as MB(l, j) (NoTrans) or MB(b_row_off + j, l)^H
/// (ConjTrans — the dqdwh trailing-update shape, where MA == MB == Q).
/// Collective over all g3.size() ranks; matrices are distributed on
/// g3.layer() so only layer-0 ranks own tiles.
template <typename T>
void summa_25d(Communicator& c, ProcGrid3d g3, Op opB, T alpha,
               DistMatrix<T>& MA, DistMatrix<T>& MB, int b_row_off, T beta,
               DistMatrix<T>& C, int tag_base = 1 << 24) {
    Grid const g = g3.layer();
    int const mt = C.mt(), nt = C.nt(), kt = MA.nt();
    tbp_require(c.size() == g3.size());
    tbp_require(MA.mt() >= mt);
    if (opB == Op::NoTrans)
        tbp_require(b_row_off == 0 && MB.mt() == kt && MB.nt() == nt);
    else
        tbp_require(MB.nt() == kt && b_row_off + nt <= MB.mt());

    bool const exact = c.coll_config().deterministic;
    int const my = c.rank();
    int const my_layer = g3.layer_of(my);
    int const my_lr = g3.layer_rank(my);

    auto a_coord = [&](int i, int l) { return std::pair<int, int>(i, l); };
    auto b_coord = [&](int l, int j) {
        return opB == Op::NoTrans ? std::pair<int, int>(l, j)
                                  : std::pair<int, int>(b_row_off + j, l);
    };

    int const span = mt + nt;
    auto fiber_a_tag = [&](int l, int i) { return tag_base + l * span + i; };
    auto fiber_b_tag = [&](int l, int j) {
        return tag_base + l * span + mt + j;
    };
    int const stage0 = tag_base + kt * span;
    auto stage_a_tag = [&](int l, int i) { return stage0 + l * span + i; };
    auto stage_b_tag = [&](int l, int j) { return stage0 + l * span + mt + j; };
    int const red0 = tag_base + 2 * kt * span;
    // s is the step (ExactOrder) or the sending layer's block-start step
    // (PartialSum) — block starts are distinct per populated layer and
    // always < kt, so both fit the kt * mt * nt reduce span.
    auto reduce_tag = [&](int s, int i, int j) {
        return red0 + s * (mt * nt) + i + j * mt;
    };

    for (int j = 0; j < nt; ++j)
        for (int i = 0; i < mt; ++i)
            if (C.is_local(i, j))
                blas::scale(beta, C.tile(i, j));
    if (kt == 0)
        return;

    int const my_lo = g3.step_lo(my_layer, kt);
    int const my_hi = g3.step_hi(my_layer, kt);

    // Fiber replication: layer-0 owners push every remote step's operand
    // tiles to their layer mates up front (buffered sends), so the remote
    // layers' step loops never wait on layer 0's step progress.
    if (my_layer == 0) {
        for (int l = 0; l < kt; ++l) {
            int const lay = g3.layer_of_step(l, kt);
            if (lay == 0)
                continue;
            for (int i = 0; i < mt; ++i) {
                auto ac = a_coord(i, l);
                if (MA.owner(ac.first, ac.second) == my)
                    detail::send_tile(c, MA.tile(ac.first, ac.second),
                                      g3.global(lay, my_lr), fiber_a_tag(l, i));
            }
            for (int j = 0; j < nt; ++j) {
                auto bc = b_coord(l, j);
                if (MB.owner(bc.first, bc.second) == my)
                    detail::send_tile(c, MB.tile(bc.first, bc.second),
                                      g3.global(lay, my_lr), fiber_b_tag(l, j));
            }
        }
    }

    if (my_layer > 0 && my_lo < my_hi) {
        // Remote layer: receive fiber replicas, re-stage them across this
        // layer, compute this layer's block of the steps.
        std::map<std::pair<int, int>, detail::Staged<T>> part;
        for (int l = my_lo; l < my_hi; ++l) {
            std::map<int, detail::Staged<T>> arep, brep;
            for (int i = 0; i < mt; ++i) {
                auto ac = a_coord(i, l);
                if (MA.owner(ac.first, ac.second) == my_lr)
                    arep[i] = detail::recv_tile<T>(
                        c, MA.tile_mb(ac.first), MA.tile_nb(ac.second), my_lr,
                        fiber_a_tag(l, i));
            }
            for (int j = 0; j < nt; ++j) {
                auto bc = b_coord(l, j);
                if (MB.owner(bc.first, bc.second) == my_lr)
                    brep[j] = detail::recv_tile<T>(
                        c, MB.tile_mb(bc.first), MB.tile_nb(bc.second), my_lr,
                        fiber_b_tag(l, j));
            }

            // Within-layer staging, owner's fiber mate acting as the owner.
            std::map<int, detail::Staged<T>> a_st, b_st;
            for (int i = 0; i < mt; ++i) {
                auto ac = a_coord(i, l);
                int const hold = MA.owner(ac.first, ac.second);
                auto grp = row_group(g, i);
                bool const need = in_group(grp, my_lr);
                if (my_lr == hold) {
                    auto t = arep[i].tile();
                    for (int r : grp)
                        if (r != hold)
                            detail::send_tile(c, t, g3.global(my_layer, r),
                                              stage_a_tag(l, i));
                    if (need)
                        a_st[i] = std::move(arep[i]);
                } else if (need) {
                    a_st[i] = detail::recv_tile<T>(
                        c, MA.tile_mb(ac.first), MA.tile_nb(ac.second),
                        g3.global(my_layer, hold), stage_a_tag(l, i));
                }
            }
            for (int j = 0; j < nt; ++j) {
                auto bc = b_coord(l, j);
                int const hold = MB.owner(bc.first, bc.second);
                auto grp = col_group(g, j);
                bool const need = in_group(grp, my_lr);
                if (my_lr == hold) {
                    auto t = brep[j].tile();
                    for (int r : grp)
                        if (r != hold)
                            detail::send_tile(c, t, g3.global(my_layer, r),
                                              stage_b_tag(l, j));
                    if (need)
                        b_st[j] = std::move(brep[j]);
                } else if (need) {
                    b_st[j] = detail::recv_tile<T>(
                        c, MB.tile_mb(bc.first), MB.tile_nb(bc.second),
                        g3.global(my_layer, hold), stage_b_tag(l, j));
                }
            }

            for (int j = 0; j < nt; ++j)
                for (int i = 0; i < mt; ++i) {
                    if (C.owner(i, j) != my_lr)
                        continue;
                    if (exact) {
                        std::vector<T> zb(static_cast<size_t>(C.tile_mb(i))
                                          * C.tile_nb(j));
                        Tile<T> z(zb.data(), C.tile_mb(i), C.tile_nb(j),
                                  C.tile_mb(i));
                        la::summa_step_product(Op::NoTrans, opB, alpha,
                                               a_st[i].tile(), b_st[j].tile(),
                                               z);
                        c.send(zb, my_lr, reduce_tag(l, i, j));
                    } else {
                        auto& pt = part[{i, j}];
                        if (pt.buf.empty()) {
                            pt.mb = C.tile_mb(i);
                            pt.nb = C.tile_nb(j);
                            pt.buf.assign(
                                static_cast<size_t>(pt.mb) * pt.nb, T(0));
                        }
                        la::summa_step_accumulate(Op::NoTrans, opB, alpha,
                                                  a_st[i].tile(),
                                                  b_st[j].tile(), pt.tile());
                    }
                }
        }
        if (!exact)
            for (auto& kv : part)
                c.send(kv.second.buf, my_lr,
                       reduce_tag(my_lo, kv.first.first, kv.first.second));
    }

    if (my_layer == 0) {
        for (int l = 0; l < kt; ++l) {
            int const lay = g3.layer_of_step(l, kt);
            if (lay == 0) {
                // Own step: the 2D oracle's staging + local fold.
                std::map<int, detail::Staged<T>> a_st, b_st;
                for (int i = 0; i < mt; ++i) {
                    auto ac = a_coord(i, l);
                    auto grp = row_group(g, i);
                    bool const need = in_group(grp, my);
                    if (need || MA.owner(ac.first, ac.second) == my) {
                        auto s = stage_tile(c, MA, ac.first, ac.second, grp,
                                            stage_a_tag(l, i));
                        if (need)
                            a_st[i] = std::move(s);
                    }
                }
                for (int j = 0; j < nt; ++j) {
                    auto bc = b_coord(l, j);
                    auto grp = col_group(g, j);
                    bool const need = in_group(grp, my);
                    if (need || MB.owner(bc.first, bc.second) == my) {
                        auto s = stage_tile(c, MB, bc.first, bc.second, grp,
                                            stage_b_tag(l, j));
                        if (need)
                            b_st[j] = std::move(s);
                    }
                }
                for (int j = 0; j < nt; ++j)
                    for (int i = 0; i < mt; ++i)
                        if (C.is_local(i, j))
                            la::summa_step_accumulate(
                                Op::NoTrans, opB, alpha, a_st[i].tile(),
                                b_st[j].tile(), C.tile(i, j));
            } else if (exact) {
                // Remote step: fold the shipped product tiles at step order.
                for (int j = 0; j < nt; ++j)
                    for (int i = 0; i < mt; ++i)
                        if (C.is_local(i, j)) {
                            auto z = detail::recv_tile<T>(
                                c, C.tile_mb(i), C.tile_nb(j),
                                g3.global(lay, my), reduce_tag(l, i, j));
                            blas::add(T(1), z.tile(), T(1), C.tile(i, j));
                        }
            }
        }
        if (!exact) {
            // Fold each populated remote layer's single partial per owned C
            // tile, ascending layer order (reproducible at a fixed grid).
            for (int lay = 1; lay < g3.c; ++lay) {
                int const lo = g3.step_lo(lay, kt);
                if (lo >= g3.step_hi(lay, kt))
                    continue;
                for (int j = 0; j < nt; ++j)
                    for (int i = 0; i < mt; ++i)
                        if (C.is_local(i, j)) {
                            auto z = detail::recv_tile<T>(
                                c, C.tile_mb(i), C.tile_nb(j),
                                g3.global(lay, my), reduce_tag(lo, i, j));
                            blas::add(T(1), z.tile(), T(1), C.tile(i, j));
                        }
            }
        }
    }
}

/// 2.5D SUMMA gemm: C := alpha A B + beta C (all NoTrans), the shape
/// perf::summa_volume models and perf::choose_summa_plan costs.
template <typename T>
void dist_gemm_25d(Communicator& c, ProcGrid3d g3, T alpha, DistMatrix<T>& A,
                   DistMatrix<T>& B, T beta, DistMatrix<T>& C,
                   int tag_base = 1 << 24) {
    summa_25d(c, g3, Op::NoTrans, alpha, A, B, 0, beta, C, tag_base);
}

}  // namespace tbp::comm
