// SPMD distributed tiled algorithms over virtual ranks.
//
// These run the classic 2D block-cyclic communication patterns with real
// (in-process) messages: SUMMA-style gemm with row/column tile broadcasts,
// right-looking distributed Cholesky with panel broadcasts, Hermitian
// rank-k update, and the right-side triangular solves QDWH's
// Cholesky iteration needs. dist_qdwh_chol composes them into a complete
// distributed polar decomposition for well-conditioned matrices — the
// message-passing counterpart of the shared-memory task path, used to
// validate that the distribution logic (who owns what, who sends what to
// whom) is exactly ScaLAPACK/SLATE's.
//
// Messaging convention: sends are buffered (never block), receives block;
// every rank executes the same loop nest, so matching is by (src, tag) with
// tags unique per (operation step, tile). Tile payloads are raw
// column-major buffers.

#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <vector>

#include "blas/factor.hh"
#include "blas/gemm.hh"
#include "blas/level3.hh"
#include "blas/util.hh"
#include "comm/dist.hh"
#include "common/precision.hh"
#include "linalg/summa_step.hh"

namespace tbp::comm {

namespace detail {

/// Staged remote tile: owned storage + view.
template <typename T>
struct Staged {
    std::vector<T> buf;
    int mb = 0, nb = 0;
    Tile<T> tile() { return Tile<T>(buf.data(), mb, nb, mb); }
};

/// Pack a tile view into a contiguous column-major buffer.
template <typename T>
std::vector<T> pack_tile(Tile<T> t) {
    std::vector<T> buf(static_cast<size_t>(t.mb()) * t.nb());
    for (int j = 0; j < t.nb(); ++j)
        for (int i = 0; i < t.mb(); ++i)
            buf[static_cast<size_t>(i) + static_cast<size_t>(j) * t.mb()] = t(i, j);
    return buf;
}

/// Send tile data to a rank (buffered, non-blocking in this transport).
template <typename T>
void send_tile(Communicator& c, Tile<T> t, int dst, int tag) {
    auto buf = pack_tile(t);
    c.send(buf, dst, tag);
}

template <typename T>
Staged<T> recv_tile(Communicator& c, int mb, int nb, int src, int tag) {
    Staged<T> s;
    s.mb = mb;
    s.nb = nb;
    s.buf.resize(static_cast<size_t>(mb) * nb);
    c.recv(s.buf, src, tag);
    return s;
}

}  // namespace detail

/// Ranks owning any tile in block row i (they share the grid row i % p).
inline std::vector<int> row_group(Grid g, int i) {
    std::vector<int> out;
    for (int col = 0; col < g.q; ++col)
        out.push_back((i % g.p) * g.q + col);
    return out;
}

/// Ranks owning any tile in block column j (grid column j % q).
inline std::vector<int> col_group(Grid g, int j) {
    std::vector<int> out;
    for (int row = 0; row < g.p; ++row)
        out.push_back(row * g.q + j % g.q);
    return out;
}

/// Broadcast tile (i, j) of A from its owner to `group`; returns a view of
/// the tile (local or staged). Every rank in `group` (and the owner) must
/// call this with the same arguments.
template <typename T>
detail::Staged<T> stage_tile(Communicator& c, DistMatrix<T>& A, int i, int j,
                             std::vector<int> const& group, int tag) {
    int const owner = A.owner(i, j);
    detail::Staged<T> s;
    if (c.rank() == owner) {
        auto t = A.tile(i, j);
        for (int r : group)
            if (r != owner)
                detail::send_tile(c, t, r, tag);
        // Local copy keeps the return type uniform.
        s.mb = t.mb();
        s.nb = t.nb();
        s.buf.resize(static_cast<size_t>(s.mb) * s.nb);
        for (int jj = 0; jj < s.nb; ++jj)
            for (int ii = 0; ii < s.mb; ++ii)
                s.buf[static_cast<size_t>(ii) + static_cast<size_t>(jj) * s.mb] =
                    t(ii, jj);
    } else {
        s = detail::recv_tile<T>(c, A.tile_mb(i), A.tile_nb(j), owner, tag);
    }
    return s;
}

inline bool in_group(std::vector<int> const& g, int r) {
    for (int x : g)
        if (x == r)
            return true;
    return false;
}

namespace detail {

/// In-flight staged tile: the nonblocking counterpart of stage_tile.
/// Owner ranks complete at begin (sends are buffered); receivers carry a
/// posted irecv that ready() resolves. The source tile must stay unmodified
/// between begin and the matching compute (true for the SUMMA operands:
/// only C is written while A/B panels are in flight).
template <typename T>
struct PendingStage {
    Staged<T> s;
    Request req;          // complete for the owner / local copies
    bool needed = false;  // this rank consumes the tile

    PendingStage() = default;
    PendingStage(PendingStage&&) = default;
    PendingStage(PendingStage const&) = delete;
    PendingStage& operator=(PendingStage const&) = delete;

    // Move assignment must drain the target's own irecv before its buffer
    // is freed by the vector move — a defaulted member-wise move would
    // leave the transport writing into freed memory. drain() (not wait())
    // so a transfer error on an overwritten stage is absorbed into the
    // recovery counters instead of throwing out of an assignment.
    PendingStage& operator=(PendingStage&& o) {
        if (this != &o) {
            req.drain();
            s = std::move(o.s);
            req = std::move(o.req);
            needed = o.needed;
        }
        return *this;
    }

    // The posted irecv targets s.buf, so it must complete before the
    // buffer dies — even on ranks that staged a tile they end up not
    // computing with (group membership is per block row/column, not per
    // local tile). The matching send is unconditional, so this wait
    // terminates: immediately in the fault-free engine, and within the
    // retry deadline in fault mode, where drain() absorbs a failed
    // transfer (noexcept — destructors must not throw during unwind).
    ~PendingStage() { req.drain(); }

    // The consuming path: propagates a dimensioned CommError if the staged
    // transfer ultimately failed, so compute never runs on garbage — this
    // is the "detect, report, re-drive" half of the guard (re-driving
    // happened inside wait()'s timed recovery loop).
    Staged<T>& ready() {
        req.wait();
        return s;
    }
};

}  // namespace detail

/// Nonblocking stage of tile (i, j) of A from its owner to `group`: the
/// owner isends to every group member and keeps a packed local copy; group
/// members post an irecv. Call pattern matches stage_tile (same ranks, same
/// tag); consume via .ready().
template <typename T>
detail::PendingStage<T> stage_tile_begin(Communicator& c, DistMatrix<T>& A,
                                         int i, int j,
                                         std::vector<int> const& group,
                                         int tag) {
    int const owner = A.owner(i, j);
    detail::PendingStage<T> p;
    p.needed = in_group(group, c.rank());
    if (c.rank() == owner) {
        auto t = A.tile(i, j);
        p.s.mb = t.mb();
        p.s.nb = t.nb();
        p.s.buf = detail::pack_tile(t);
        for (int r : group)
            if (r != owner)
                c.isend(p.s.buf.data(), p.s.buf.size(), r, tag);
    } else if (p.needed) {
        p.s.mb = A.tile_mb(i);
        p.s.nb = A.tile_nb(j);
        p.s.buf.resize(static_cast<size_t>(p.s.mb) * p.s.nb);
        p.req = c.irecv(p.s.buf.data(), p.s.buf.size(), owner, tag);
    }
    return p;
}

/// SUMMA: C := alpha A B + beta C (all NoTrans), conforming block-cyclic
/// distributions on the same grid.
template <typename T>
void dist_gemm(Communicator& c, Grid g, T alpha, DistMatrix<T>& A,
               DistMatrix<T>& B, T beta, DistMatrix<T>& C) {
    int const mt = C.mt(), nt = C.nt(), kt = A.nt();
    tbp_require(A.mt() == mt && B.mt() == kt && B.nt() == nt);

    // Scale local C tiles once.
    for (int j = 0; j < nt; ++j)
        for (int i = 0; i < mt; ++i)
            if (C.is_local(i, j))
                blas::scale(beta, C.tile(i, j));

    // Stage the A column panel along process rows and the B row panel along
    // process columns. Tags are closed-form per step so step l+1's panels
    // can be posted while step l computes (double-buffered pipeline); the
    // legacy oracle waits for each panel before touching the next step.
    struct Step {
        std::map<int, detail::PendingStage<T>> a, b;
    };
    auto stage_step = [&](int l) {
        int const base = (1 << 20) + l * (mt + nt);
        Step st;
        for (int i = 0; i < mt; ++i) {
            auto grp = row_group(g, i);
            bool const need = in_group(grp, c.rank());
            if (need || A.owner(i, l) == c.rank()) {
                auto p = stage_tile_begin(c, A, i, l, grp, base + i);
                if (need)
                    st.a[i] = std::move(p);
            }
        }
        for (int j = 0; j < nt; ++j) {
            auto grp = col_group(g, j);
            bool const need = in_group(grp, c.rank());
            if (need || B.owner(l, j) == c.rank()) {
                auto p = stage_tile_begin(c, B, l, j, grp, base + mt + j);
                if (need)
                    st.b[j] = std::move(p);
            }
        }
        return st;
    };

    bool const pipelined = !c.coll_config().legacy;
    Step cur;
    if (kt > 0)
        cur = stage_step(0);
    for (int l = 0; l < kt; ++l) {
        Step next;
        if (pipelined && l + 1 < kt)
            next = stage_step(l + 1);  // overlap with this step's gemms
        for (int j = 0; j < nt; ++j)
            for (int i = 0; i < mt; ++i)
                if (C.is_local(i, j))
                    la::summa_step_accumulate(Op::NoTrans, Op::NoTrans, alpha,
                                              cur.a[i].ready().tile(),
                                              cur.b[j].ready().tile(),
                                              C.tile(i, j));
        if (!pipelined && l + 1 < kt)
            next = stage_step(l + 1);
        cur = std::move(next);
    }
}

/// Distributed Hermitian rank-k update, lower triangle:
///   C := alpha A^H A + beta C, A kt x nt tiles, C nt x nt.
template <typename T>
void dist_herk(Communicator& c, Grid g, real_t<T> alpha, DistMatrix<T>& A,
               real_t<T> beta, DistMatrix<T>& C) {
    int const nt = C.nt(), kt = A.mt();
    tbp_require(C.mt() == nt && A.nt() == nt);

    for (int j = 0; j < nt; ++j)
        for (int i = j; i < nt; ++i)
            if (C.is_local(i, j))
                blas::scale(from_real<T>(beta), C.tile(i, j));

    // C(i, j) += alpha A(l, i)^H A(l, j): tile A(l, i) is needed by the
    // owners of block row i (as the conj-transposed operand) and tile
    // A(l, j) by the owners of block column j. A is read-only here, so the
    // next step's panel broadcast can overlap this step's updates.
    struct Step {
        std::map<int, detail::PendingStage<T>> row, col;
    };
    auto stage_step = [&](int l) {
        int const base = (1 << 21) + l * (2 * nt);
        Step st;
        for (int i = 0; i < nt; ++i) {
            auto grp = row_group(g, i);
            bool const need = in_group(grp, c.rank());
            if (need || A.owner(l, i) == c.rank()) {
                auto p = stage_tile_begin(c, A, l, i, grp, base + i);
                if (need)
                    st.row[i] = std::move(p);
            }
        }
        for (int j = 0; j < nt; ++j) {
            auto grp = col_group(g, j);
            bool const need = in_group(grp, c.rank());
            if (need || A.owner(l, j) == c.rank()) {
                auto p = stage_tile_begin(c, A, l, j, grp, base + nt + j);
                if (need)
                    st.col[j] = std::move(p);
            }
        }
        return st;
    };

    bool const pipelined = !c.coll_config().legacy;
    Step cur;
    if (kt > 0)
        cur = stage_step(0);
    for (int l = 0; l < kt; ++l) {
        Step next;
        if (pipelined && l + 1 < kt)
            next = stage_step(l + 1);
        for (int j = 0; j < nt; ++j) {
            for (int i = j; i < nt; ++i) {
                if (!C.is_local(i, j))
                    continue;
                if (i == j)
                    blas::herk(Uplo::Lower, Op::ConjTrans, alpha,
                               cur.col[j].ready().tile(), real_t<T>(1),
                               C.tile(i, j));
                else
                    blas::gemm(Op::ConjTrans, Op::NoTrans, from_real<T>(alpha),
                               cur.row[i].ready().tile(),
                               cur.col[j].ready().tile(), T(1), C.tile(i, j));
            }
        }
        if (!pipelined && l + 1 < kt)
            next = stage_step(l + 1);
        cur = std::move(next);
    }
}

/// Distributed right-looking Cholesky, lower triangle: A = L L^H in place.
template <typename T>
void dist_potrf(Communicator& c, Grid g, DistMatrix<T>& A) {
    int const nt = A.nt();
    tbp_require(A.mt() == nt);

    int tag = 1 << 22;
    for (int k = 0; k < nt; ++k) {
        // Factor the diagonal tile; broadcast L(k,k) down its column group.
        if (A.is_local(k, k))
            blas::potrf(Uplo::Lower, A.tile(k, k));
        auto ck_grp = col_group(g, k);
        detail::Staged<T> lkk;
        if (in_group(ck_grp, c.rank()) || A.owner(k, k) == c.rank()) {
            auto s = stage_tile(c, A, k, k, ck_grp, tag);
            if (in_group(ck_grp, c.rank()))
                lkk = std::move(s);
        }
        ++tag;

        // Panel solves.
        for (int i = k + 1; i < nt; ++i)
            if (A.is_local(i, k))
                blas::trsm(Side::Right, Uplo::Lower, Op::ConjTrans,
                           Diag::NonUnit, T(1), lkk.tile(), A.tile(i, k));

        // Broadcast panel tiles: A(i,k) to row group i and (as the mirrored
        // operand) to column group i.
        std::map<int, detail::Staged<T>> row_stage, col_stage;
        for (int i = k + 1; i < nt; ++i) {
            auto rgrp = row_group(g, i);
            if (in_group(rgrp, c.rank()) || A.owner(i, k) == c.rank()) {
                auto s = stage_tile(c, A, i, k, rgrp, tag + 2 * i);
                if (in_group(rgrp, c.rank()))
                    row_stage[i] = std::move(s);
            }
            auto cgrp = col_group(g, i);
            if (in_group(cgrp, c.rank()) || A.owner(i, k) == c.rank()) {
                auto s = stage_tile(c, A, i, k, cgrp, tag + 2 * i + 1);
                if (in_group(cgrp, c.rank()))
                    col_stage[i] = std::move(s);
            }
        }
        tag += 2 * nt;

        // Trailing update.
        for (int j = k + 1; j < nt; ++j) {
            for (int i = j; i < nt; ++i) {
                if (!A.is_local(i, j))
                    continue;
                if (i == j)
                    blas::herk(Uplo::Lower, Op::NoTrans, real_t<T>(-1),
                               col_stage[j].tile(), real_t<T>(1), A.tile(i, j));
                else
                    blas::gemm(Op::NoTrans, Op::ConjTrans, T(-1),
                               row_stage[i].tile(), col_stage[j].tile(), T(1),
                               A.tile(i, j));
            }
        }
    }
}

/// Distributed right-side triangular solve with the Cholesky factor:
///   op == ConjTrans: X := X L^{-H};  op == NoTrans: X := X L^{-1}.
/// L is the lower triangle of Z (nt x nt), X is mt x nt tiles.
template <typename T>
void dist_trsm_right_lower(Communicator& c, Grid g, Op op, DistMatrix<T>& Z,
                           DistMatrix<T>& X) {
    int const mt = X.mt(), nt = X.nt();
    tbp_require(Z.mt() == nt && Z.nt() == nt);
    bool const eff_upper = (op != Op::NoTrans);  // L^H is upper

    int tag = 1 << 23;
    auto solve_col = [&](int k) {
        auto grp = col_group(g, k);
        detail::Staged<T> lkk;
        if (in_group(grp, c.rank()) || Z.owner(k, k) == c.rank()) {
            auto s = stage_tile(c, Z, k, k, grp, tag);
            if (in_group(grp, c.rank()))
                lkk = std::move(s);
        }
        ++tag;
        for (int i = 0; i < mt; ++i)
            if (X.is_local(i, k))
                blas::trsm(Side::Right, Uplo::Lower, op, Diag::NonUnit, T(1),
                           lkk.tile(), X.tile(i, k));
        // Broadcast solved column k along process rows for the updates.
        std::map<int, detail::Staged<T>> xk;
        for (int i = 0; i < mt; ++i) {
            auto rgrp = row_group(g, i);
            if (in_group(rgrp, c.rank()) || X.owner(i, k) == c.rank()) {
                auto s = stage_tile(c, X, i, k, rgrp, tag + i);
                if (in_group(rgrp, c.rank()))
                    xk[i] = std::move(s);
            }
        }
        tag += mt;
        return xk;
    };

    if (eff_upper) {
        // X L^H = B: ascending columns; B(:,j) -= X(:,k) (L^H)(k,j)
        // with (L^H)(k,j) = L(j,k)^H, j > k.
        for (int k = 0; k < nt; ++k) {
            auto xk = solve_col(k);
            for (int j = k + 1; j < nt; ++j) {
                auto cgrp = col_group(g, j);
                detail::Staged<T> ljk;
                bool const need = in_group(cgrp, c.rank());
                if (need || Z.owner(j, k) == c.rank()) {
                    auto s = stage_tile(c, Z, j, k, cgrp, tag);
                    if (need)
                        ljk = std::move(s);
                }
                ++tag;
                for (int i = 0; i < mt; ++i)
                    if (X.is_local(i, j))
                        blas::gemm(Op::NoTrans, Op::ConjTrans, T(-1),
                                   xk[i].tile(), ljk.tile(), T(1), X.tile(i, j));
            }
        }
    } else {
        // X L = B: descending columns; B(:,j) -= X(:,k) L(k,j), k > j.
        for (int k = nt - 1; k >= 0; --k) {
            auto xk = solve_col(k);
            for (int j = 0; j < k; ++j) {
                auto cgrp = col_group(g, j);
                detail::Staged<T> lkj;
                bool const need = in_group(cgrp, c.rank());
                if (need || Z.owner(k, j) == c.rank()) {
                    auto s = stage_tile(c, Z, k, j, cgrp, tag);
                    if (need)
                        lkj = std::move(s);
                }
                ++tag;
                for (int i = 0; i < mt; ++i)
                    if (X.is_local(i, j))
                        blas::gemm(Op::NoTrans, Op::NoTrans, T(-1),
                                   xk[i].tile(), lkj.tile(), T(1), X.tile(i, j));
            }
        }
    }
}

/// Element-wise distributed update B := alpha A + beta B (conforming).
template <typename T>
void dist_add(DistMatrix<T>& A, T alpha, T beta, DistMatrix<T>& B) {
    for (int j = 0; j < A.nt(); ++j)
        for (int i = 0; i < A.mt(); ++i)
            if (A.is_local(i, j))
                blas::add(alpha, A.tile(i, j), beta, B.tile(i, j));
}

template <typename T>
void dist_copy(DistMatrix<T>& A, DistMatrix<T>& B) {
    for (int j = 0; j < A.nt(); ++j)
        for (int i = 0; i < A.mt(); ++i)
            if (A.is_local(i, j))
                blas::copy(A.tile(i, j), B.tile(i, j));
}

template <typename T>
void dist_set_identity(DistMatrix<T>& A, real_t<T> diag = 1) {
    for (int j = 0; j < A.nt(); ++j)
        for (int i = 0; i < A.mt(); ++i)
            if (A.is_local(i, j))
                blas::set(T(0), i == j ? from_real<T>(diag) : T(0), A.tile(i, j));
}

struct DistQdwhInfo {
    int iterations = 0;
    double norm2_estimate = 0;
    double conv = 0;

    // Precision-ladder accounting (dist_qdwh_adaptive; the fixed-precision
    // drivers leave these at their native defaults). Per executed iteration:
    // the rung it ran on and this rank's point-to-point traffic inside the
    // iteration-branch region only (tile staging of the QR or Cholesky
    // body — the convergence-norm allreduce and barrier are excluded, so a
    // float-rung iteration's bytes are *exactly* sizeof(float-kind) /
    // sizeof(native) times the native iteration's, with equal message
    // counts; asserted in test_precision).
    std::vector<prec::Prec> rungs;
    std::vector<std::uint64_t> iter_bytes_sent;
    std::vector<std::uint64_t> iter_msgs_sent;
};

/// Local element-wise precision conversion between conforming distributed
/// matrices on the same grid (identical ownership, no communication).
template <typename TS, typename TD>
void dist_convert(DistMatrix<TS>& A, DistMatrix<TD>& B) {
    tbp_require(A.mt() == B.mt() && A.nt() == B.nt());
    for (int j = 0; j < A.nt(); ++j) {
        for (int i = 0; i < A.mt(); ++i) {
            if (!A.is_local(i, j))
                continue;
            auto s = A.tile(i, j);
            auto d = B.tile(i, j);
            for (int c = 0; c < s.nb(); ++c)
                for (int r = 0; r < s.mb(); ++r)
                    d(r, c) = static_cast<TD>(s(r, c));
        }
    }
}

/// Fully distributed QDWH (Cholesky-iteration variant) for square,
/// reasonably conditioned matrices: the message-passing counterpart of the
/// shared-memory solver, composed entirely of the distributed kernels above
/// (norm2est with Allreduce, herk, potrf, the two right trsms, axpy, norms).
/// Every rank returns the same info.
template <typename T>
DistQdwhInfo dist_qdwh_chol(Communicator& c, Grid g, DistMatrix<T>& A,
                            double l0, int max_iter = 30) {
    using R = real_t<T>;
    int const nt = A.nt();
    tbp_require(A.mt() == nt);

    DistQdwhInfo info;
    R const eps = std::numeric_limits<R>::epsilon();
    R const tol3 = std::cbrt(R(5) * eps);
    R const tol1 = R(5) * eps;

    // Scale by the distributed two-norm estimate.
    R const alpha = dist_norm2est(c, A);
    info.norm2_estimate = static_cast<double>(alpha);
    tbp_require(alpha > R(0));
    for (int j = 0; j < nt; ++j)
        for (int i = 0; i < nt; ++i)
            if (A.is_local(i, j))
                blas::scale(from_real<T>(R(1) / alpha), A.tile(i, j));

    DistMatrix<T> Aprev(c, A.m(), A.n(), A.tile_nb(0), g);
    DistMatrix<T> Z(c, A.n(), A.n(), A.tile_nb(0), g);

    R li = static_cast<R>(l0);
    R conv = R(100);
    while ((conv >= tol3 || std::abs(li - R(1)) >= tol1)
           && info.iterations < max_iter) {
        R const l2 = li * li;
        R const dd = std::cbrt(R(4) * (R(1) - l2) / (l2 * l2));
        R const sqd = std::sqrt(R(1) + dd);
        R const a = sqd
                    + std::sqrt(R(8) - R(4) * dd
                                + R(8) * (R(2) - l2) / (l2 * sqd))
                          / R(2);
        R const b = (a - R(1)) * (a - R(1)) / R(4);
        R const cc = a + b - R(1);
        li = li * (a + b * l2) / (R(1) + cc * l2);
        tbp_require(cc <= R(100));  // Cholesky variant only (well-conditioned)

        dist_copy(A, Aprev);
        dist_set_identity(Z);
        dist_herk(c, g, cc, A, R(1), Z);
        dist_potrf(c, g, Z);
        dist_trsm_right_lower(c, g, Op::ConjTrans, Z, A);
        dist_trsm_right_lower(c, g, Op::NoTrans, Z, A);
        dist_add(Aprev, from_real<T>(b / cc), from_real<T>(a - b / cc), A);

        // conv = ||A - Aprev||_F via the distributed norm.
        dist_add(A, T(1), T(-1), Aprev);
        conv = dist_norm_fro(c, Aprev);
        ++info.iterations;
        c.barrier();
    }
    info.conv = static_cast<double>(conv);
    return info;
}

}  // namespace tbp::comm
