// Algorithmic collectives for the simulated-MPI Communicator.
//
// This header is included at the end of communicator.hh and defines the
// collective member templates declared there. Algorithm selection is per
// coll::Config (comm_stats.hh); the legacy Linear paths are kept as the
// bitwise reference oracle.
//
// Determinism contract: every reduction algorithm except Ring combines
// contributions in ascending original-rank order — acc starts from rank 0's
// block and op(acc, block_r) folds r = 1..P-1 — so Linear, Tree, and
// RecDouble produce bit-identical results. They achieve this by moving raw
// (unfolded) per-rank blocks and folding only once all blocks are present,
// trading O(P * count) buffer space for exact reproducibility across
// algorithm choices. Ring folds partial sums as chunks travel the ring
// (classic reduce-scatter + allgather): deterministic at fixed P, but a
// different association order.
//
// All internal traffic runs on reserved negative tags so it can never
// collide with user point-to-point messages (user tags are asserted >= 0).

#pragma once

#include "comm/communicator.hh"

#include <algorithm>

namespace tbp::comm {

namespace detail {

// Internal collective tag namespace (user tags are >= 0).
constexpr int kTagBcast = -1;
constexpr int kTagReduce = -2;
constexpr int kTagAllreduce = -3;
constexpr int kTagRingRS = -4;   // ring reduce-scatter phase
constexpr int kTagRingAG = -5;   // ring allgather phase
constexpr int kTagGather = -6;   // allgather
constexpr int kTagGatherv = -7;  // allgatherv payload

/// Largest power of two <= n (n >= 1).
inline int floor_pow2(int n) {
    int p = 1;
    while (p * 2 <= n)
        p *= 2;
    return p;
}

}  // namespace detail

// --- bcast -----------------------------------------------------------------

template <typename T>
void Communicator::bcast(T* data, std::size_t count, int root) {
    tbp_require(0 <= root && root < size());
    count_collective();
    if (size() == 1)
        return;
    // On a transport failure the collective's name is stamped onto the
    // dimensioned error; recovery itself lives at the p2p layer (resend /
    // dedup by sequence number), so by the time an error escapes here the
    // retry budget is already spent.
    try {
        switch (coll::resolve_bcast(cfg_, count * sizeof(T))) {
            case coll::Algo::Linear:
                bcast_linear(data, count, root);
                break;
            default:
                bcast_tree(data, count, root);
                break;
        }
    } catch (CommError const& e) {
        throw annotate(e, "bcast");
    }
}

/// Legacy oracle: root sends one message per rank (P-1 sends at the root).
template <typename T>
void Communicator::bcast_linear(T* data, std::size_t count, int root) {
    if (rank_ == root) {
        for (int r = 0; r < size(); ++r)
            if (r != root)
                send_i(data, count, r, detail::kTagBcast);
    } else {
        recv_i(data, count, root, detail::kTagBcast);
    }
}

/// Binomial tree in the rank space rotated so root maps to virtual rank 0:
/// ceil(log2 P) rounds, no rank sends more than ceil(log2 P) messages.
template <typename T>
void Communicator::bcast_tree(T* data, std::size_t count, int root) {
    int const P = size();
    int const vr = (rank_ - root + P) % P;  // virtual rank (root -> 0)

    int mask = 1;
    while (mask < P) {
        if (vr & mask) {
            int const src = (vr - mask + root) % P;
            recv_i(data, count, src, detail::kTagBcast);
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
        if (vr + mask < P) {
            int const dst = (vr + mask + root) % P;
            send_i(data, count, dst, detail::kTagBcast);
        }
        mask >>= 1;
    }
}

// --- reduce ----------------------------------------------------------------

template <typename T, typename OpF>
void Communicator::reduce(T* data, std::size_t count, OpF const& op,
                          int root) {
    tbp_require(0 <= root && root < size());
    count_collective();
    if (size() == 1)
        return;
    try {
        switch (coll::resolve_reduce(cfg_, count * sizeof(T))) {
            case coll::Algo::Linear:
                reduce_linear(data, count, op, root);
                break;
            default:
                reduce_tree(data, count, op, root);
                break;
        }
    } catch (CommError const& e) {
        throw annotate(e, "reduce");
    }
}

/// Legacy oracle: every rank sends its block to root; root folds in
/// ascending-rank order (P-1 receives at the root).
template <typename T, typename OpF>
void Communicator::reduce_linear(T* data, std::size_t count, OpF const& op,
                                 int root) {
    if (rank_ != root) {
        send_i(data, count, root, detail::kTagReduce);
        return;
    }
    std::vector<T> tmp(count);
    std::vector<T> acc(count);
    bool first = true;
    for (int r = 0; r < size(); ++r) {
        T const* contrib = data;
        if (r != root) {
            recv_i(tmp.data(), count, r, detail::kTagReduce);
            contrib = tmp.data();
        }
        if (first) {
            std::copy(contrib, contrib + count, acc.begin());
            first = false;
        } else {
            for (std::size_t i = 0; i < count; ++i)
                op(acc[i], contrib[i]);
        }
    }
    std::copy(acc.begin(), acc.end(), data);
}

/// Binomial-tree gather of raw blocks plus a single rank-ordered fold at
/// the root. Each node's buffer holds the blocks of its subtree — a
/// contiguous virtual-rank range [vr, vr + 2^k) clipped to P — in
/// ascending virtual-rank order, so the root ends with all P blocks and
/// can fold them in ascending original-rank order (bit-identical to
/// reduce_linear). No rank receives more than ceil(log2 P) messages.
template <typename T, typename OpF>
void Communicator::reduce_tree(T* data, std::size_t count, OpF const& op,
                               int root) {
    int const P = size();
    int const vr = (rank_ - root + P) % P;

    std::vector<T> buf(data, data + count);
    int mask = 1;
    while (mask < P) {
        if (vr & mask) {
            int const parent = (vr - mask + root) % P;
            send_i(buf.data(), buf.size(), parent, detail::kTagReduce);
            return;
        }
        if (vr + mask < P) {
            int const child = (vr + mask + root) % P;
            auto const nblocks = static_cast<std::size_t>(
                std::min(mask, P - (vr + mask)));
            std::size_t const old = buf.size();
            buf.resize(old + nblocks * count);
            recv_i(buf.data() + old, nblocks * count, child,
                   detail::kTagReduce);
        }
        mask <<= 1;
    }

    // Root (vr == 0): buf holds blocks for virtual ranks 0..P-1 in order.
    // Fold in ascending *original* rank order: orig r lives at virtual
    // rank (r - root + P) % P.
    std::vector<T> acc(count);
    for (int r = 0; r < P; ++r) {
        int const v = (r - root + P) % P;
        T const* blk = buf.data() + static_cast<std::size_t>(v) * count;
        if (r == 0) {
            std::copy(blk, blk + count, acc.begin());
        } else {
            for (std::size_t i = 0; i < count; ++i)
                op(acc[i], blk[i]);
        }
    }
    std::copy(acc.begin(), acc.end(), data);
}

// --- allreduce -------------------------------------------------------------

template <typename T, typename OpF>
void Communicator::allreduce(T* data, std::size_t count, OpF const& op) {
    count_collective();
    if (size() == 1)
        return;
    try {
        switch (coll::resolve_allreduce(cfg_, count * sizeof(T))) {
            case coll::Algo::Linear:
                // Legacy oracle: gather-and-fold at rank 0, linear
                // re-broadcast.
                reduce_linear(data, count, op, 0);
                bcast_linear(data, count, 0);
                break;
            case coll::Algo::RecDouble:
                allreduce_recdouble(data, count, op);
                break;
            case coll::Algo::Ring:
                allreduce_ring(data, count, op);
                break;
            default:
                reduce_tree(data, count, op, 0);
                bcast_tree(data, count, 0);
                break;
        }
    } catch (CommError const& e) {
        throw annotate(e, "allreduce");
    }
}

/// Recursive doubling on raw blocks: log2 rounds of pairwise exchange that
/// double each rank's block set, then one local ascending-rank fold on
/// every rank (bit-identical to Linear/Tree).
///
/// Non-power-of-two P: with pow2 = largest power of two <= P and
/// rem = P - pow2, the odd ranks below 2*rem pre-send their block to the
/// even neighbour and sit out; the remaining pow2 ranks get effective ids
/// e (e < rem holds blocks {2e, 2e+1}, e >= rem holds {e + rem}), run the
/// exchange, fold, and ship the result back. After round k an effective
/// rank holds the initial blocks of every e' with e' >> k == e >> k — a
/// contiguous effective range, kept in ascending order so the final buffer
/// is ascending in original rank by construction.
template <typename T, typename OpF>
void Communicator::allreduce_recdouble(T* data, std::size_t count,
                                       OpF const& op) {
    int const P = size();
    int const me = rank_;
    int const pow2 = detail::floor_pow2(P);
    int const rem = P - pow2;

    std::vector<T> buf;
    int e;  // effective rank in [0, pow2)
    if (me < 2 * rem) {
        if (me % 2 == 1) {
            // Passive: contribute, then pick up the result.
            send_i(data, count, me - 1, detail::kTagAllreduce);
            recv_i(data, count, me - 1, detail::kTagAllreduce);
            return;
        }
        e = me / 2;
        buf.resize(2 * count);
        std::copy(data, data + count, buf.begin());
        recv_i(buf.data() + count, count, me + 1, detail::kTagAllreduce);
    } else {
        e = me - rem;
        buf.assign(data, data + count);
    }

    auto orig_of = [&](int eff) { return eff < rem ? 2 * eff : eff + rem; };

    for (int mask = 1; mask < pow2; mask <<= 1) {
        int const partner = orig_of(e ^ mask);
        send_i(buf.data(), buf.size(), partner, detail::kTagAllreduce);
        std::vector<T> other;
        recv_i_dyn(other, partner, detail::kTagAllreduce);
        if (e & mask) {
            // Partner holds the lower effective half: prepend.
            other.insert(other.end(), buf.begin(), buf.end());
            buf = std::move(other);
        } else {
            buf.insert(buf.end(), other.begin(), other.end());
        }
    }

    // buf = all P blocks in ascending original-rank order; fold.
    if (count > 0) {
        T* acc = buf.data();
        for (int b = 1; b < P; ++b) {
            T const* blk = buf.data() + static_cast<std::size_t>(b) * count;
            for (std::size_t i = 0; i < count; ++i)
                op(acc[i], blk[i]);
        }
        std::copy(acc, acc + count, data);
    }
    if (me < 2 * rem)
        send_i(data, count, me + 1, detail::kTagAllreduce);
}

/// Chunk-pipelined ring: reduce-scatter (P-1 steps, each rank ends owning
/// one fully reduced chunk) then allgather (P-1 steps circulating the
/// reduced chunks). Bandwidth-optimal — every rank sends and receives
/// 2 * (P-1) / P of the payload regardless of P — but the per-chunk fold
/// order follows the ring, so results re-associate relative to the
/// rank-ordered algorithms (still deterministic at fixed P).
template <typename T, typename OpF>
void Communicator::allreduce_ring(T* data, std::size_t count, OpF const& op) {
    int const P = size();
    int const me = rank_;
    int const right = (me + 1) % P;
    int const left = (me - 1 + P) % P;
    auto lo = [&](int c) {
        return count * static_cast<std::size_t>(c) / static_cast<std::size_t>(P);
    };

    std::vector<T> tmp;
    for (int s = 0; s < P - 1; ++s) {
        int const sc = (me - s + P) % P;
        int const rc = (me - s - 1 + P) % P;
        send_i(data + lo(sc), lo(sc + 1) - lo(sc), right, detail::kTagRingRS);
        std::size_t const n = lo(rc + 1) - lo(rc);
        tmp.resize(n);
        recv_i(tmp.data(), n, left, detail::kTagRingRS);
        T* d = data + lo(rc);
        for (std::size_t i = 0; i < n; ++i)
            op(tmp[i], d[i]);
        std::copy(tmp.begin(), tmp.end(), d);
    }
    for (int s = 0; s < P - 1; ++s) {
        int const sc = (me + 1 - s + P) % P;
        int const rc = (me - s + P) % P;
        send_i(data + lo(sc), lo(sc + 1) - lo(sc), right, detail::kTagRingAG);
        recv_i(data + lo(rc), lo(rc + 1) - lo(rc), left, detail::kTagRingAG);
    }
}

// --- allgather -------------------------------------------------------------

template <typename T>
void Communicator::allgather(T const* sendbuf, std::size_t count,
                             T* recvbuf) {
    count_collective();
    if (count > 0)
        std::copy(sendbuf, sendbuf + count,
                  recvbuf + static_cast<std::size_t>(rank_) * count);
    if (size() == 1)
        return;
    try {
        switch (coll::resolve_allgather(cfg_, count * sizeof(T))) {
            case coll::Algo::Linear:
                allgather_linear(sendbuf, count, recvbuf);
                break;
            case coll::Algo::Ring:
                allgather_ring(sendbuf, count, recvbuf);
                break;
            default:
                allgather_tree(sendbuf, count, recvbuf);
                break;
        }
    } catch (CommError const& e) {
        throw annotate(e, "allgather");
    }
}

/// Everyone sends to everyone: O(P^2) messages total, but only one round.
/// Uses the nonblocking layer — all receives posted up front, then sends,
/// then wait_all — so it doubles as the request layer's exerciser.
template <typename T>
void Communicator::allgather_linear(T const* sendbuf, std::size_t count,
                                    T* recvbuf) {
    int const P = size();
    std::vector<Request> reqs;
    reqs.reserve(static_cast<std::size_t>(P - 1));
    for (int r = 0; r < P; ++r)
        if (r != rank_) {
            auto op = std::make_shared<detail::RecvOp>();
            op->src = r;
            op->tag = detail::kTagGather;
            op->data = reinterpret_cast<std::byte*>(
                recvbuf + static_cast<std::size_t>(r) * count);
            op->bytes = count * sizeof(T);
            post_recv(op);
            reqs.push_back(Request(this, std::move(op)));
        }
    for (int r = 0; r < P; ++r)
        if (r != rank_)
            send_i(sendbuf, count, r, detail::kTagGather);
    Request::wait_all(reqs);
}

/// Binomial gather of the blocks to rank 0 followed by a tree bcast of the
/// concatenated buffer: 2 * ceil(log2 P) rounds, root bottleneck gone.
template <typename T>
void Communicator::allgather_tree(T const* sendbuf, std::size_t count,
                                  T* recvbuf) {
    int const P = size();
    int const me = rank_;

    std::vector<T> buf(sendbuf, sendbuf + count);
    int mask = 1;
    bool sent = false;
    while (mask < P) {
        if (me & mask) {
            send_i(buf.data(), buf.size(), me - mask, detail::kTagGather);
            sent = true;
            break;
        }
        if (me + mask < P) {
            auto const nblocks = static_cast<std::size_t>(
                std::min(mask, P - (me + mask)));
            std::size_t const old = buf.size();
            buf.resize(old + nblocks * count);
            recv_i(buf.data() + old, nblocks * count, me + mask,
                   detail::kTagGather);
        }
        mask <<= 1;
    }
    if (!sent && me == 0)
        std::copy(buf.begin(), buf.end(), recvbuf);
    bcast_tree(recvbuf, static_cast<std::size_t>(P) * count, 0);
}

/// Ring allgather: P-1 steps circulating the blocks; bandwidth-optimal.
template <typename T>
void Communicator::allgather_ring(T const* sendbuf, std::size_t count,
                                  T* recvbuf) {
    (void)sendbuf;  // own block already placed by allgather()
    int const P = size();
    int const me = rank_;
    int const right = (me + 1) % P;
    int const left = (me - 1 + P) % P;
    for (int s = 0; s < P - 1; ++s) {
        int const sc = (me - s + P) % P;
        int const rc = (me - s - 1 + P) % P;
        send_i(recvbuf + static_cast<std::size_t>(sc) * count, count, right,
               detail::kTagGather);
        recv_i(recvbuf + static_cast<std::size_t>(rc) * count, count, left,
               detail::kTagGather);
    }
}

// --- allgatherv ------------------------------------------------------------

template <typename T>
std::vector<T> Communicator::allgatherv(std::vector<T> const& mine,
                                        std::vector<std::size_t>* counts) {
    count_collective();
    try {
    int const P = size();
    int const me = rank_;

    std::vector<std::size_t> cnt(static_cast<std::size_t>(P));
    std::size_t const myc = mine.size();
    if (P == 1) {
        cnt[0] = myc;
    } else if (cfg_.legacy) {
        cnt[static_cast<std::size_t>(me)] = myc;
        allgather_linear(&myc, 1, cnt.data());
    } else {
        cnt[static_cast<std::size_t>(me)] = myc;
        allgather_tree(&myc, 1, cnt.data());
    }

    std::vector<std::size_t> off(static_cast<std::size_t>(P) + 1, 0);
    for (int r = 0; r < P; ++r)
        off[static_cast<std::size_t>(r) + 1] =
            off[static_cast<std::size_t>(r)] + cnt[static_cast<std::size_t>(r)];
    std::vector<T> out(off[static_cast<std::size_t>(P)]);

    if (P == 1) {
        std::copy(mine.begin(), mine.end(), out.begin());
    } else if (cfg_.legacy) {
        // Linear oracle: direct exchange of payloads.
        for (int r = 0; r < P; ++r)
            if (r != me)
                send_i(mine.data(), myc, r, detail::kTagGatherv);
        for (int r = 0; r < P; ++r) {
            if (r == me)
                std::copy(mine.begin(), mine.end(), out.begin() + off[r]);
            else
                recv_i(out.data() + off[r], cnt[r], r, detail::kTagGatherv);
        }
    } else {
        // Binomial gather of variable blocks to rank 0 (subtree payload
        // sizes are computable from cnt), then tree bcast of the result.
        std::vector<T> buf = mine;
        int mask = 1;
        bool sent = false;
        while (mask < P) {
            if (me & mask) {
                send_i(buf.data(), buf.size(), me - mask,
                       detail::kTagGatherv);
                sent = true;
                break;
            }
            if (me + mask < P) {
                int const child = me + mask;
                int const hi = std::min(P, child + mask);
                std::size_t nelems = 0;
                for (int r = child; r < hi; ++r)
                    nelems += cnt[static_cast<std::size_t>(r)];
                std::size_t const old = buf.size();
                buf.resize(old + nelems);
                recv_i(buf.data() + old, nelems, child, detail::kTagGatherv);
            }
            mask <<= 1;
        }
        if (!sent && me == 0)
            std::copy(buf.begin(), buf.end(), out.begin());
        bcast_tree(out.data(), out.size(), 0);
    }

    if (counts)
        *counts = std::move(cnt);
    return out;
    } catch (CommError const& e) {
        throw annotate(e, "allgatherv");
    }
}

}  // namespace tbp::comm
