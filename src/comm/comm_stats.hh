// Per-communicator traffic counters and collective-algorithm selection.
//
// Kept free of transport details so the perf layer (cost_model's
// communication-volume predictors) and the tools can share the enums
// without pulling in the mailbox machinery.

#pragma once

#include <cstddef>
#include <cstdint>

#include "fault/fault_stats.hh"

namespace tbp::comm {

/// Message/byte/wait counters accumulated by one rank's Communicator.
/// World aggregates them across ranks after run().
///
/// Invariant kept in fault mode: sends/recvs/bytes count *logical* payload
/// traffic only — never wire envelopes, injected duplicates, or re-driven
/// copies — so perf::collective_volume stays model-exact whether or not a
/// fault plan is installed. The fault field records everything the
/// injector/recovery machinery did on top.
struct CommStats {
    std::uint64_t sends = 0;       ///< point-to-point messages pushed
    std::uint64_t recvs = 0;       ///< point-to-point messages popped
    std::uint64_t bytes_sent = 0;  ///< payload bytes pushed
    std::uint64_t bytes_recv = 0;  ///< payload bytes popped
    std::uint64_t collectives = 0; ///< collective operations entered
    double wait_seconds = 0;       ///< time blocked in recv/wait/barrier
    fault::FaultStats fault;       ///< injection/recovery counters

    CommStats& operator+=(CommStats const& o) {
        sends += o.sends;
        recvs += o.recvs;
        bytes_sent += o.bytes_sent;
        bytes_recv += o.bytes_recv;
        collectives += o.collectives;
        wait_seconds += o.wait_seconds;
        fault += o.fault;
        return *this;
    }
};

namespace coll {

/// Collective algorithm. Linear is the legacy reference oracle (root
/// gathers/sends one message per rank); the others are the engine's
/// algorithmic variants.
enum class Algo {
    Auto,       ///< size/deterministic-based selection (see resolve_*)
    Linear,     ///< legacy O(P)-at-root paths, kept as the oracle
    Tree,       ///< binomial tree (bcast; gather+rank-ordered fold reduce)
    RecDouble,  ///< recursive doubling (distance-doubling block exchange)
    Ring,       ///< chunk-pipelined ring (reduce-scatter + allgather)
};

inline char const* algo_name(Algo a) {
    switch (a) {
        case Algo::Auto: return "auto";
        case Algo::Linear: return "linear";
        case Algo::Tree: return "tree";
        case Algo::RecDouble: return "recdouble";
        case Algo::Ring: return "ring";
    }
    return "?";
}

/// Per-communicator collective configuration. Every rank must use the same
/// Config (selection depends only on Config, P, and message size, so a
/// uniformly configured World always agrees on the algorithm).
struct Config {
    Algo bcast = Algo::Auto;
    Algo reduce = Algo::Auto;
    Algo allreduce = Algo::Auto;
    Algo allgather = Algo::Auto;

    /// Oracle mode: every collective runs the legacy Linear path and the
    /// distributed kernels fall back to blocking (non-pipelined) tile
    /// staging. The reference against which the engine is validated
    /// bit-for-bit.
    bool legacy = false;

    /// When true (default), Auto only picks reduction algorithms that
    /// combine contributions in ascending-rank order (Linear, Tree,
    /// RecDouble), so results are bitwise identical across algorithm
    /// choices. Ring re-associates per chunk: reproducible run-to-run at
    /// fixed P, but not bit-identical to the rank-ordered fold; Auto uses
    /// it for large messages only when deterministic is off.
    bool deterministic = true;

    /// Auto switches allreduce to Ring at/above this payload size
    /// (deterministic == false only).
    std::size_t ring_threshold_bytes = 64 * 1024;

    /// Auto switches Tree -> RecDouble below this payload size (fewer
    /// latency-bound rounds; above it the tree's lower wire volume wins).
    std::size_t small_threshold_bytes = 8 * 1024;
};

inline Algo resolve_bcast(Config const& c, std::size_t) {
    if (c.legacy)
        return Algo::Linear;
    return c.bcast == Algo::Auto ? Algo::Tree : c.bcast;
}

inline Algo resolve_reduce(Config const& c, std::size_t) {
    if (c.legacy)
        return Algo::Linear;
    return c.reduce == Algo::Auto ? Algo::Tree : c.reduce;
}

inline Algo resolve_allreduce(Config const& c, std::size_t bytes) {
    if (c.legacy)
        return Algo::Linear;
    if (c.allreduce != Algo::Auto)
        return c.allreduce;
    if (!c.deterministic && bytes >= c.ring_threshold_bytes)
        return Algo::Ring;
    return bytes < c.small_threshold_bytes ? Algo::RecDouble : Algo::Tree;
}

inline Algo resolve_allgather(Config const& c, std::size_t bytes) {
    if (c.legacy)
        return Algo::Linear;
    if (c.allgather != Algo::Auto)
        return c.allgather;
    return bytes >= c.ring_threshold_bytes ? Algo::Ring : Algo::Tree;
}

}  // namespace coll

}  // namespace tbp::comm
