// Distributed-memory kernels over virtual ranks.
//
// DistMatrix stores only the tiles a rank owns under the 2D block-cyclic map
// (ScaLAPACK/SLATE distribution); the routines below are SPMD functions run
// inside World::run. They exercise, with real message passing, the pieces
// the paper introduces as new distributed kernels:
//
//   dist_col_abs_sums - Algorithm 2 lines 5-8: local column sums via
//                       internal::norm, then MPI_Allreduce.
//   dist_gemmA        - Section 6.2: partial tile products where A's tiles
//                       live, parallel reduction to the (replicated) result.
//   dist_norm_fro     - local sum of squares + Allreduce.
//   dist_norm2est     - the full Algorithm 2 on the distributed matrix.
//
// Vectors are replicated on every rank (valid and standard for n-vectors in
// a 2D-distributed solver's norm estimator).

#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "blas/gemm.hh"
#include "blas/util.hh"
#include "comm/communicator.hh"
#include "common/types.hh"
#include "matrix/tile.hh"
#include "matrix/tiled_matrix.hh"

namespace tbp::comm {

/// Per-rank storage of a block-cyclically distributed m-by-n matrix.
template <typename T>
class DistMatrix {
public:
    DistMatrix(Communicator& comm, std::int64_t m, std::int64_t n, int nb,
               Grid grid)
        : comm_(&comm), grid_(grid),
          rb_(TiledMatrix<T>::chop(m, nb)), cb_(TiledMatrix<T>::chop(n, nb)),
          m_(m), n_(n) {
        // The grid may be smaller than the communicator: 2.5D SUMMA builds
        // matrices on the p x q layer grid of a p*q*c world, so ranks
        // >= grid.size() (the replication layers) own no tiles.
        tbp_require(grid.size() <= comm.size());
        mt_ = static_cast<int>(rb_.size());
        nt_ = static_cast<int>(cb_.size());
        local_.resize(static_cast<size_t>(mt_) * nt_);
        for (int j = 0; j < nt_; ++j)
            for (int i = 0; i < mt_; ++i)
                if (owner(i, j) == comm.rank())
                    local_[idx(i, j)].assign(
                        static_cast<size_t>(rb_[i]) * cb_[j], T(0));
    }

    int rank() const { return comm_->rank(); }
    Grid grid() const { return grid_; }
    int owner(int i, int j) const {
        return (i % grid_.p) * grid_.q + (j % grid_.q);
    }
    bool is_local(int i, int j) const { return owner(i, j) == rank(); }

    std::int64_t m() const { return m_; }
    std::int64_t n() const { return n_; }
    int mt() const { return mt_; }
    int nt() const { return nt_; }
    int tile_mb(int i) const { return rb_[i]; }
    int tile_nb(int j) const { return cb_[j]; }

    Tile<T> tile(int i, int j) {
        tbp_require(is_local(i, j));
        return Tile<T>(local_[idx(i, j)].data(), rb_[i], cb_[j], rb_[i]);
    }

    /// Fill local tiles from a global element function f(i, j) -> T.
    template <typename F>
    void fill(F const& f) {
        std::int64_t row0 = 0;
        for (int i = 0; i < mt_; ++i) {
            std::int64_t col0 = 0;
            for (int j = 0; j < nt_; ++j) {
                if (is_local(i, j)) {
                    auto t = tile(i, j);
                    for (int c = 0; c < t.nb(); ++c)
                        for (int r = 0; r < t.mb(); ++r)
                            t(r, c) = f(row0 + r, col0 + c);
                }
                col0 += cb_[j];
            }
            row0 += rb_[i];
        }
    }

private:
    size_t idx(int i, int j) const {
        return static_cast<size_t>(i) + static_cast<size_t>(j) * mt_;
    }

    Communicator* comm_;
    Grid grid_;
    std::vector<int> rb_, cb_;
    std::int64_t m_, n_;
    int mt_ = 0, nt_ = 0;
    std::vector<std::vector<T>> local_;  // empty for remote tiles
};

/// Replicated dense image (column-major, m x n) of a distributed matrix on
/// every rank: each rank packs its local tiles in global (j, i) order and
/// one allgatherv exchanges them; every rank re-derives the others' pack
/// order from the ownership map. Collective — all ranks must call.
template <typename T>
std::vector<T> dist_gather(Communicator& comm, DistMatrix<T>& A) {
    std::vector<T> mine;
    for (int j = 0; j < A.nt(); ++j)
        for (int i = 0; i < A.mt(); ++i)
            if (A.is_local(i, j)) {
                auto t = A.tile(i, j);
                for (int cc = 0; cc < t.nb(); ++cc)
                    for (int rr = 0; rr < t.mb(); ++rr)
                        mine.push_back(t(rr, cc));
            }

    std::vector<std::size_t> counts;
    auto all = comm.allgatherv(mine, &counts);

    std::vector<std::size_t> off(counts.size() + 1, 0);
    for (std::size_t r = 0; r < counts.size(); ++r)
        off[r + 1] = off[r] + counts[r];

    auto const m = static_cast<std::size_t>(A.m());
    std::vector<T> dense(m * static_cast<std::size_t>(A.n()));
    std::vector<std::size_t> pos(counts.size(), 0);
    std::int64_t col0 = 0;
    for (int j = 0; j < A.nt(); ++j) {
        std::int64_t row0 = 0;
        for (int i = 0; i < A.mt(); ++i) {
            auto const r = static_cast<std::size_t>(A.owner(i, j));
            T const* src = all.data() + off[r] + pos[r];
            for (int cc = 0; cc < A.tile_nb(j); ++cc)
                for (int rr = 0; rr < A.tile_mb(i); ++rr)
                    dense[static_cast<std::size_t>(row0 + rr)
                          + static_cast<std::size_t>(col0 + cc) * m] = *src++;
            pos[r] += static_cast<std::size_t>(A.tile_mb(i)) * A.tile_nb(j);
            row0 += A.tile_mb(i);
        }
        col0 += A.tile_nb(j);
    }
    return dense;
}

/// Global column absolute sums: local tile sums + Allreduce (Alg. 2, l. 5-8).
template <typename T>
std::vector<real_t<T>> dist_col_abs_sums(Communicator& comm, DistMatrix<T>& A) {
    using R = real_t<T>;
    std::vector<R> sums(static_cast<size_t>(A.n()), R(0));
    std::int64_t col0 = 0;
    for (int j = 0; j < A.nt(); ++j) {
        for (int i = 0; i < A.mt(); ++i)
            if (A.is_local(i, j))
                blas::col_abs_sums(A.tile(i, j), sums.data() + col0);
        col0 += A.tile_nb(j);
    }
    comm.allreduce_sum(sums);
    return sums;
}

/// ||A||_F over the distribution.
template <typename T>
real_t<T> dist_norm_fro(Communicator& comm, DistMatrix<T>& A) {
    using R = real_t<T>;
    R local(0);
    for (int j = 0; j < A.nt(); ++j)
        for (int i = 0; i < A.mt(); ++i)
            if (A.is_local(i, j))
                local += blas::sum_sq(A.tile(i, j));
    return std::sqrt(comm.allreduce_sum_scalar(local));
}

/// y := op(A) x with x, y replicated vectors (Section 6.2's gemmA shape):
/// each rank multiplies its local tiles against the matching x block and
/// the partial y's are combined with a single Allreduce.
template <typename T>
void dist_gemmA(Communicator& comm, Op opA, DistMatrix<T>& A,
                std::vector<T> const& x, std::vector<T>& y) {
    std::int64_t const ny = (opA == Op::NoTrans) ? A.m() : A.n();
    tbp_require(static_cast<std::int64_t>(x.size())
                == ((opA == Op::NoTrans) ? A.n() : A.m()));
    y.assign(static_cast<size_t>(ny), T(0));

    std::int64_t row0 = 0;
    for (int i = 0; i < A.mt(); ++i) {
        std::int64_t col0 = 0;
        for (int j = 0; j < A.nt(); ++j) {
            if (A.is_local(i, j)) {
                auto t = A.tile(i, j);
                if (opA == Op::NoTrans) {
                    // y[row0..] += t * x[col0..]
                    for (int c = 0; c < t.nb(); ++c) {
                        T const xc = x[static_cast<size_t>(col0 + c)];
                        for (int r = 0; r < t.mb(); ++r)
                            y[static_cast<size_t>(row0 + r)] += t(r, c) * xc;
                    }
                } else {
                    // y[col0..] += t^H * x[row0..]
                    for (int c = 0; c < t.nb(); ++c) {
                        T acc(0);
                        for (int r = 0; r < t.mb(); ++r)
                            acc += conj_val(t(r, c))
                                   * x[static_cast<size_t>(row0 + r)];
                        y[static_cast<size_t>(col0 + c)] += acc;
                    }
                }
            }
            col0 += A.tile_nb(j);
        }
        row0 += A.tile_mb(i);
    }
    comm.allreduce_sum(y);
}

/// Algorithm 2 on the distributed matrix; every rank returns the same
/// estimate of ||A||_2.
template <typename T>
real_t<T> dist_norm2est(Communicator& comm, DistMatrix<T>& A,
                        double tol = 0.1, int max_iter = 100) {
    using R = real_t<T>;
    auto sums = dist_col_abs_sums(comm, A);
    std::vector<T> x(sums.size());
    for (size_t i = 0; i < sums.size(); ++i)
        x[i] = from_real<T>(sums[i]);

    auto nrm2 = [](std::vector<T> const& v) {
        R s(0);
        for (auto const& e : v)
            s += abs_sq(e);
        return std::sqrt(s);
    };

    R e = nrm2(x);
    if (e == R(0))
        return R(0);
    R e0(0), normX = e;
    std::vector<T> ax;
    int iter = 0;
    while (std::abs(e - e0) > tol * e && iter < max_iter) {
        e0 = e;
        for (auto& v : x)
            v = v * from_real<T>(R(1) / normX);
        dist_gemmA(comm, Op::NoTrans, A, x, ax);
        dist_gemmA(comm, Op::ConjTrans, A, ax, x);
        normX = nrm2(x);
        R const normAX = nrm2(ax);
        if (normAX == R(0) || normX == R(0))
            return e0;
        e = normX / normAX;
        ++iter;
    }
    return e;
}

}  // namespace tbp::comm
