#include "comm/communicator.hh"

#include <thread>

namespace tbp::comm {

void Communicator::push_message(int src, int dst, int tag,
                                std::vector<std::byte> buf) {
    {
        std::lock_guard<std::mutex> lk(s_->mtx);
        ++stats_.sends;
        stats_.bytes_sent += buf.size();
        s_->channels[{src, dst, tag}].messages.push_back(std::move(buf));
    }
    s_->cv.notify_all();
}

bool Communicator::progress_locked() {
    bool any = false;
    for (auto it = pending_.begin(); it != pending_.end();) {
        detail::RecvOp& op = **it;
        auto ch = s_->channels.find(std::make_tuple(op.src, rank_, op.tag));
        if (ch == s_->channels.end() || ch->second.messages.empty()) {
            ++it;
            continue;
        }
        auto& msg = ch->second.messages.front();
        if (op.dyn) {
            *op.dyn = std::move(msg);
            stats_.bytes_recv += op.dyn->size();
        } else {
            // The message carries its size: a count mismatch between the
            // send and the posted receive is a program error, not a
            // truncation.
            tbp_require(msg.size() == op.bytes);
            if (!msg.empty())
                std::memcpy(op.data, msg.data(), msg.size());
            stats_.bytes_recv += msg.size();
        }
        ch->second.messages.pop_front();
        ++stats_.recvs;
        op.done = true;
        any = true;
        it = pending_.erase(it);
    }
    return any;
}

void Communicator::progress() {
    bool completed;
    {
        std::lock_guard<std::mutex> lk(s_->mtx);
        completed = progress_locked();
    }
    if (completed)
        s_->cv.notify_all();
}

void Communicator::post_recv(std::shared_ptr<detail::RecvOp> op) {
    bool completed;
    {
        std::lock_guard<std::mutex> lk(s_->mtx);
        pending_.push_back(std::move(op));
        completed = progress_locked();  // the message may already be here
    }
    if (completed)
        s_->cv.notify_all();
}

void Communicator::recv_bytes(std::byte* data, std::size_t bytes, int src,
                              int tag) {
    auto op = std::make_shared<detail::RecvOp>();
    op->src = src;
    op->tag = tag;
    op->data = data;
    op->bytes = bytes;
    Timer t;
    {
        std::unique_lock<std::mutex> lk(s_->mtx);
        pending_.push_back(op);
        s_->cv.wait(lk, [&] {
            progress_locked();
            return op->done;
        });
        stats_.wait_seconds += t.elapsed();
    }
    // Our progress pass may have completed other pending receives that a
    // different thread of this rank is waiting on.
    s_->cv.notify_all();
}

void Communicator::recv_bytes_dyn(std::vector<std::byte>& out, int src,
                                  int tag) {
    auto op = std::make_shared<detail::RecvOp>();
    op->src = src;
    op->tag = tag;
    op->dyn = &out;
    Timer t;
    {
        std::unique_lock<std::mutex> lk(s_->mtx);
        pending_.push_back(op);
        s_->cv.wait(lk, [&] {
            progress_locked();
            return op->done;
        });
        stats_.wait_seconds += t.elapsed();
    }
    s_->cv.notify_all();
}

void Communicator::barrier() {
    Timer t;
    std::unique_lock<std::mutex> lk(s_->mtx);
    ++stats_.collectives;
    int const sense = s_->barrier_sense;
    if (++s_->barrier_count == s_->nranks) {
        s_->barrier_count = 0;
        s_->barrier_sense ^= 1;
        s_->cv.notify_all();
    } else {
        s_->cv.wait(lk, [&] { return s_->barrier_sense != sense; });
        stats_.wait_seconds += t.elapsed();
    }
}

World::World(int nranks) : nranks_(nranks) {
    tbp_require(nranks >= 1);
    shared_ = std::make_shared<detail::Shared>();
    shared_->nranks = nranks;
    shared_->rank_stats.resize(static_cast<std::size_t>(nranks));
}

void World::run(std::function<void(Communicator&)> const& fn) {
    shared_->rank_stats.assign(static_cast<std::size_t>(nranks_), CommStats{});
    leaked_ = 0;

    std::vector<std::thread> threads;
    std::mutex err_mtx;
    std::exception_ptr first_error;

    threads.reserve(static_cast<std::size_t>(nranks_));
    for (int r = 0; r < nranks_; ++r) {
        threads.emplace_back([&, r] {
            Communicator comm(r, shared_);
            try {
                fn(comm);
            } catch (...) {
                std::lock_guard<std::mutex> lk(err_mtx);
                if (!first_error)
                    first_error = std::current_exception();
            }
            // Flush this rank's counters (also on error, so a partial run
            // still reports what it moved).
            shared_->rank_stats[static_cast<std::size_t>(r)] = comm.stats();
        });
    }
    for (auto& t : threads)
        t.join();

    // Fresh channel state for the next run; count anything left behind so
    // tests can assert the program matched every send with a receive.
    {
        std::lock_guard<std::mutex> lk(shared_->mtx);
        for (auto const& [key, ch] : shared_->channels)
            leaked_ += ch.messages.size();
        shared_->channels.clear();
        shared_->barrier_count = 0;
        shared_->barrier_sense = 0;
    }

    if (first_error)
        std::rethrow_exception(first_error);
}

}  // namespace tbp::comm
