#include "comm/communicator.hh"

#include <algorithm>
#include <chrono>
#include <thread>

namespace tbp::comm {

void Communicator::push_message(int src, int dst, int tag,
                                std::vector<std::byte> buf) {
    fault::FaultInjector* const inj = s_->fault.get();
    if (inj) {
        // Straggler model: the slow rank pays its tax outside the lock so
        // it delays only itself, not the whole mailbox.
        double const slow = inj->slowdown_seconds(src);
        if (slow > 0) {
            std::this_thread::sleep_for(std::chrono::duration<double>(slow));
            std::lock_guard<std::mutex> lk(s_->mtx);
            ++stats_.fault.slowdowns;
        }
    }
    bool poisoned = false;
    {
        std::lock_guard<std::mutex> lk(s_->mtx);
        if (inj && inj->poison_check(src)) {
            poisoned = true;  // fail-stop below, after waking waiters
        } else {
            // Counters record the *logical* payload traffic only — never
            // envelopes, duplicates, or re-driven copies — so byte counts
            // stay model-exact with a plan installed.
            ++stats_.sends;
            stats_.bytes_sent += buf.size();
            auto& q = s_->channels[{src, dst, tag}].messages;
            if (!inj) {
                q.push_back({std::move(buf), 0});
            } else {
                std::uint64_t seq = 0;
                auto wire = inj->envelope(src, dst, tag, buf, seq);
                inj->retain(src, dst, tag, seq, wire);
                fault::FaultAction const act =
                    inj->plan().action(src, dst, tag, seq);
                if (act.drop) {
                    ++stats_.fault.injected_drops;  // never enters the queue
                } else if (act.corrupt && !buf.empty()) {
                    ++stats_.fault.injected_corrupts;
                    inj->corrupt_payload(wire, seq);
                    q.push_back({std::move(wire), 0});
                } else if (act.duplicate) {
                    ++stats_.fault.injected_dups;
                    q.push_back({wire, 0});
                    q.push_back({std::move(wire), 0});
                } else if (act.delay_ms > 0) {
                    ++stats_.fault.injected_delays;
                    q.push_back(
                        {std::move(wire), wall_time() + act.delay_ms / 1e3});
                } else {
                    q.push_back({std::move(wire), 0});
                }
            }
        }
    }
    // Wake receivers in every case: after a poison they must re-evaluate
    // sender_gone instead of sleeping out their full timeout slice.
    s_->cv.notify_all();
    if (poisoned)
        throw RankFailedError(src, inj->plan().poison_after_sends);
}

void Communicator::deliver_locked(detail::RecvOp& op, std::byte const* p,
                                  std::size_t n) {
    if (op.dyn) {
        op.dyn->assign(p, p + n);
        ++stats_.recvs;
        stats_.bytes_recv += n;
    } else if (n != op.bytes) {
        op.error = std::make_exception_ptr(
            CommError(CommError::Kind::SizeMismatch, "recv", rank_, op.src,
                      op.tag, op.bytes, n));
    } else {
        if (n != 0)
            std::memcpy(op.data, p, n);
        ++stats_.recvs;
        stats_.bytes_recv += n;
    }
    op.done = true;
}

bool Communicator::match_fault_locked(detail::RecvOp& op) {
    fault::FaultInjector& inj = *s_->fault;
    auto ch = s_->channels.find(std::make_tuple(op.src, rank_, op.tag));
    if (ch == s_->channels.end())
        return false;
    auto& q = ch->second.messages;
    std::uint64_t const want = inj.expected_seq(op.src, rank_, op.tag);
    double const now = wall_time();

    for (auto m = q.begin(); m != q.end();) {
        std::uint64_t seq = 0, sum = 0;
        std::size_t payload_bytes = 0;
        if (!fault::FaultInjector::parse(m->bytes, seq, sum,
                                         payload_bytes)) {
            // A bare (non-enveloped) message under an installed plan means
            // the plan was installed mid-world — a program error, reported
            // with coordinates rather than silently delivered.
            op.error = std::make_exception_ptr(
                CommError(CommError::Kind::ChecksumError, "recv", rank_,
                          op.src, op.tag, op.bytes, m->bytes.size()));
            op.done = true;
            q.erase(m);
            return true;
        }
        if (seq < want) {
            // Duplicate of an already-delivered message (injected dup or a
            // re-driven copy that lost the race): absorb idempotently.
            ++stats_.fault.dup_absorbed;
            m = q.erase(m);
            continue;
        }
        if (seq != want || m->release > now) {
            // Out of order (a gap left by a drop) or still embargoed: the
            // in-sequence contract says skip, the timed wait re-polls.
            ++m;
            continue;
        }
        std::byte const* payload = m->bytes.data() + fault::kHeaderBytes;
        if (!fault::FaultInjector::verify(m->bytes, sum)) {
            ++stats_.fault.checksum_failures;
            std::vector<std::byte> const* clean =
                inj.retained_copy(op.src, rank_, op.tag);
            if (clean == nullptr) {
                // Unrecoverable: corrupted on the wire and the clean copy
                // is gone (cannot happen while the GC runs on acknowledge,
                // but fail dimensioned rather than deliver garbage).
                op.error = std::make_exception_ptr(CommError(
                    CommError::Kind::ChecksumError, "recv", rank_, op.src,
                    op.tag, op.bytes, payload_bytes));
                op.done = true;
            } else {
                ++stats_.fault.resends;
                deliver_locked(op, clean->data() + fault::kHeaderBytes,
                               clean->size() - fault::kHeaderBytes);
            }
        } else {
            deliver_locked(op, payload, payload_bytes);
        }
        q.erase(m);
        inj.acknowledge(op.src, rank_, op.tag, want);
        return true;
    }
    return false;
}

bool Communicator::progress_locked() {
    bool const faulty = s_->fault != nullptr;
    bool any = false;
    for (auto it = pending_.begin(); it != pending_.end();) {
        detail::RecvOp& op = **it;
        if (faulty) {
            if (!match_fault_locked(op)) {
                ++it;
                continue;
            }
            any = true;
            it = pending_.erase(it);
            continue;
        }
        auto ch = s_->channels.find(std::make_tuple(op.src, rank_, op.tag));
        if (ch == s_->channels.end() || ch->second.messages.empty()) {
            ++it;
            continue;
        }
        auto& msg = ch->second.messages.front().bytes;
        // The message carries its size: a count mismatch between the send
        // and the posted receive is a program error, surfaced as a
        // dimensioned CommError on the waiter (the message is consumed so
        // later receives on the channel are not wedged behind it).
        if (op.dyn) {
            *op.dyn = std::move(msg);
            stats_.bytes_recv += op.dyn->size();
            ++stats_.recvs;
            op.done = true;
        } else if (msg.size() != op.bytes) {
            op.error = std::make_exception_ptr(
                CommError(CommError::Kind::SizeMismatch, "recv", rank_,
                          op.src, op.tag, op.bytes, msg.size()));
            op.done = true;
        } else {
            if (!msg.empty())
                std::memcpy(op.data, msg.data(), msg.size());
            stats_.bytes_recv += msg.size();
            ++stats_.recvs;
            op.done = true;
        }
        ch->second.messages.pop_front();
        any = true;
        it = pending_.erase(it);
    }
    return any;
}

void Communicator::progress() {
    bool completed;
    {
        std::lock_guard<std::mutex> lk(s_->mtx);
        completed = progress_locked();
    }
    if (completed)
        s_->cv.notify_all();
}

void Communicator::post_recv(std::shared_ptr<detail::RecvOp> op) {
    bool completed;
    {
        std::lock_guard<std::mutex> lk(s_->mtx);
        pending_.push_back(std::move(op));
        completed = progress_locked();  // the message may already be here
    }
    if (completed)
        s_->cv.notify_all();
}

void Communicator::fail_op_locked(detail::RecvOp& op, CommError::Kind kind,
                                  std::size_t actual) {
    op.error = std::make_exception_ptr(
        CommError(kind, "recv", rank_, op.src, op.tag, op.bytes, actual));
    op.done = true;
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
        if (it->get() == &op) {
            pending_.erase(it);
            break;
        }
    }
}

void Communicator::wait_posted_fault(
    std::unique_lock<std::mutex>& lk,
    std::shared_ptr<detail::RecvOp> const& op) {
    (void)lk;  // held on entry; wait_for releases/reacquires it
    fault::FaultInjector& inj = *s_->fault;
    fault::RetryConfig const& rc = inj.retry();
    double slice = std::max(rc.timeout_ms, 0.1) / 1e3;
    double const deadline = wall_time() + rc.deadline_seconds();
    int rounds = 0;

    for (;;) {
        progress_locked();
        if (op->done)
            return;
        if (inj.sender_gone(op->src, rank_, op->tag)) {
            // The sender fail-stopped before producing this message and no
            // retained copy exists: it can never arrive.
            fail_op_locked(*op, CommError::Kind::RankDead, 0);
            return;
        }
        double const now = wall_time();
        if (now >= deadline || rounds > rc.retry_max) {
            fail_op_locked(*op, CommError::Kind::Timeout, 0);
            return;
        }
        bool const completed = s_->cv.wait_for(
            lk, std::chrono::duration<double>(
                    std::min(slice, deadline - now)),
            [&] {
                progress_locked();
                return op->done;
            });
        if (completed)
            return;
        // Timed out with the expected message undeliverable. If the sender
        // already produced it, re-drive the retained clean copy (a drop
        // left a gap; re-posting is idempotent — any duplicate that shows
        // up later is absorbed by sequence number). No retained copy means
        // the sender is merely slow: back off and keep waiting.
        if (auto const* clean = inj.retained_copy(op->src, rank_, op->tag)) {
            ++stats_.fault.resends;
            s_->channels[{op->src, rank_, op->tag}].messages.push_back(
                {*clean, 0});
            progress_locked();
            if (op->done)
                return;
        }
        ++rounds;
        slice *= rc.backoff;
    }
}

void Communicator::wait_posted(std::shared_ptr<detail::RecvOp> const& op) {
    if (!op->done) {
        Timer t;
        {
            std::unique_lock<std::mutex> lk(s_->mtx);
            if (s_->fault) {
                wait_posted_fault(lk, op);
            } else {
                s_->cv.wait(lk, [&] {
                    progress_locked();
                    return op->done;
                });
            }
            stats_.wait_seconds += t.elapsed();
        }
        // Our progress passes may have completed other pending receives
        // that a different thread of this rank is waiting on.
        s_->cv.notify_all();
    }
    if (op->error)
        std::rethrow_exception(op->error);
}

void Communicator::recv_bytes(std::byte* data, std::size_t bytes, int src,
                              int tag) {
    auto op = std::make_shared<detail::RecvOp>();
    op->src = src;
    op->tag = tag;
    op->data = data;
    op->bytes = bytes;
    {
        std::lock_guard<std::mutex> lk(s_->mtx);
        pending_.push_back(op);
    }
    wait_posted(op);
}

void Communicator::recv_bytes_dyn(std::vector<std::byte>& out, int src,
                                  int tag) {
    auto op = std::make_shared<detail::RecvOp>();
    op->src = src;
    op->tag = tag;
    op->dyn = &out;
    {
        std::lock_guard<std::mutex> lk(s_->mtx);
        pending_.push_back(op);
    }
    wait_posted(op);
}

void Communicator::barrier() {
    Timer t;
    std::unique_lock<std::mutex> lk(s_->mtx);
    ++stats_.collectives;
    int const sense = s_->barrier_sense;
    if (++s_->barrier_count == s_->nranks) {
        s_->barrier_count = 0;
        s_->barrier_sense ^= 1;
        s_->cv.notify_all();
    } else if (!s_->fault) {
        s_->cv.wait(lk, [&] { return s_->barrier_sense != sense; });
        stats_.wait_seconds += t.elapsed();
    } else {
        // Fault mode: a barrier must never outlive the retry budget — if a
        // poisoned rank can no longer arrive, the survivors report instead
        // of hanging. The contribution is withdrawn before erroring so the
        // barrier state stays consistent for the remaining ranks.
        double const deadline =
            wall_time() + s_->fault->retry().deadline_seconds();
        double slice = std::max(s_->fault->retry().timeout_ms, 0.1) / 1e3;
        while (s_->barrier_sense == sense) {
            double const now = wall_time();
            if (now >= deadline) {
                int const arrived = s_->barrier_count;
                --s_->barrier_count;
                throw CommError(CommError::Kind::BarrierTimeout, "barrier",
                                rank_, -1, 0,
                                static_cast<std::size_t>(s_->nranks),
                                static_cast<std::size_t>(arrived));
            }
            s_->cv.wait_for(
                lk, std::chrono::duration<double>(
                        std::min(slice, deadline - now)),
                [&] { return s_->barrier_sense != sense; });
            slice *= s_->fault->retry().backoff;
        }
        stats_.wait_seconds += t.elapsed();
    }
}

World::World(int nranks) : nranks_(nranks) {
    tbp_require(nranks >= 1);
    shared_ = std::make_shared<detail::Shared>();
    shared_->nranks = nranks;
    shared_->rank_stats.resize(static_cast<std::size_t>(nranks));
}

void World::run(std::function<void(Communicator&)> const& fn) {
    shared_->rank_stats.assign(static_cast<std::size_t>(nranks_), CommStats{});
    leaked_ = 0;
    teardown_absorbed_ = 0;
    if (shared_->fault)
        shared_->fault->begin_run();

    std::vector<std::thread> threads;
    std::mutex err_mtx;
    std::exception_ptr first_error;

    threads.reserve(static_cast<std::size_t>(nranks_));
    for (int r = 0; r < nranks_; ++r) {
        threads.emplace_back([&, r] {
            Communicator comm(r, shared_);
            try {
                fn(comm);
            } catch (...) {
                std::lock_guard<std::mutex> lk(err_mtx);
                if (!first_error)
                    first_error = std::current_exception();
            }
            // Flush this rank's counters (also on error, so a partial run
            // still reports what it moved).
            shared_->rank_stats[static_cast<std::size_t>(r)] = comm.stats();
        });
    }
    for (auto& t : threads)
        t.join();

    // Fresh channel state for the next run; count anything left behind so
    // tests can assert the program matched every send with a receive. In
    // fault mode, residue of an already-delivered sequence number
    // (injected duplicates, re-driven copies that lost the race) is
    // recovery exhaust, not a leak.
    {
        std::lock_guard<std::mutex> lk(shared_->mtx);
        for (auto const& [key, ch] : shared_->channels) {
            for (auto const& m : ch.messages) {
                if (shared_->fault
                    && shared_->fault->teardown_absorbable(
                        std::get<0>(key), std::get<1>(key),
                        std::get<2>(key), m.bytes))
                    ++teardown_absorbed_;
                else
                    ++leaked_;
            }
        }
        shared_->channels.clear();
        shared_->barrier_count = 0;
        shared_->barrier_sense = 0;
    }

    if (first_error)
        std::rethrow_exception(first_error);
}

}  // namespace tbp::comm
