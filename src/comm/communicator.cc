#include "comm/communicator.hh"

#include <thread>

namespace tbp::comm {

void Communicator::push_message(int src, int dst, int tag,
                                std::vector<std::byte> buf) {
    {
        std::lock_guard<std::mutex> lk(s_->mtx);
        s_->channels[{src, dst, tag}].messages.push_back(std::move(buf));
    }
    s_->cv.notify_all();
}

std::vector<std::byte> Communicator::pop_message(int src, int dst, int tag) {
    std::unique_lock<std::mutex> lk(s_->mtx);
    auto key = std::make_tuple(src, dst, tag);
    s_->cv.wait(lk, [&] {
        auto it = s_->channels.find(key);
        return it != s_->channels.end() && !it->second.messages.empty();
    });
    auto& ch = s_->channels[key];
    auto buf = std::move(ch.messages.front());
    ch.messages.pop_front();
    return buf;
}

void Communicator::barrier() {
    std::unique_lock<std::mutex> lk(s_->mtx);
    int const sense = s_->barrier_sense;
    if (++s_->barrier_count == s_->nranks) {
        s_->barrier_count = 0;
        s_->barrier_sense ^= 1;
        s_->cv.notify_all();
    } else {
        s_->cv.wait(lk, [&] { return s_->barrier_sense != sense; });
    }
}

World::World(int nranks) : nranks_(nranks) {
    tbp_require(nranks >= 1);
    shared_ = std::make_shared<detail::Shared>();
    shared_->nranks = nranks;
    shared_->coll_slots.resize(static_cast<size_t>(nranks));
}

void World::run(std::function<void(Communicator&)> const& fn) {
    std::vector<std::thread> threads;
    std::mutex err_mtx;
    std::exception_ptr first_error;

    threads.reserve(static_cast<size_t>(nranks_));
    for (int r = 0; r < nranks_; ++r) {
        threads.emplace_back([&, r] {
            Communicator comm(r, shared_);
            try {
                fn(comm);
            } catch (...) {
                std::lock_guard<std::mutex> lk(err_mtx);
                if (!first_error)
                    first_error = std::current_exception();
            }
        });
    }
    for (auto& t : threads)
        t.join();

    // Fresh channel state for the next run.
    shared_->channels.clear();

    if (first_error)
        std::rethrow_exception(first_error);
}

}  // namespace tbp::comm
