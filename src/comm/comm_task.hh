// Communication as schedulable tasks on the shared-memory engine.
//
// Each rank runs its own rt::Engine; tile sends and receives are submitted
// as tasks keyed on the tile/staged-buffer data pointers, so the engine's
// dataflow dependencies order them against the compute tasks exactly like
// SLATE's communication tasks inside the OpenMP DAG: a gemm that consumes a
// staged panel tile waits (RAW on the staged buffer) for the receive task
// that fills it, while independent gemms keep the workers busy — comm and
// compute overlap through the DAG, not through explicit phases.
//
// Deadlock discipline (blocking receives on a finite worker pool): every
// send task is submitted BEFORE any receive task and at priority 1. A
// worker always pops its own priority lane first, so by the time any
// worker can pop a receive task (receives are submitted only after every
// send has been distributed to the deques), each worker has drained the
// sends in its own deque; a worker parked in a blocking receive therefore
// never strands an unexecuted send behind it, other workers drain their
// own lanes independently, and the transport's buffered sends guarantee
// the matching messages arrive. This holds for any worker count >= 1 and
// for Sequential mode (inline execution preserves the same order).

#pragma once

#include <deque>
#include <utility>

#include "comm/dist_algs.hh"
#include "comm/grid3d.hh"
#include "runtime/engine.hh"

namespace tbp::comm {

/// Submit a tile send as an engine task (read access on the tile data,
/// priority 1 — see the deadlock discipline above). The tile must not be
/// rewritten by tasks submitted later in this epoch unless they declare an
/// access on the same key.
template <typename T>
void task_send_tile(rt::Engine& eng, Communicator& c, Tile<T> t, int dst,
                    int tag) {
    eng.submit("send_tile", {rt::read(t.data())},
               [&c, t, dst, tag] { detail::send_tile(c, t, dst, tag); }, 1);
}

/// Submit a tile receive as an engine task. `dst` is resized here so its
/// buffer pointer (the dependency key) is stable; the task body blocks
/// until the message arrives. Submit only after every send task of the
/// epoch (see the deadlock discipline above).
template <typename T>
void task_recv_tile(rt::Engine& eng, Communicator& c, detail::Staged<T>& dst,
                    int mb, int nb, int src, int tag) {
    dst.mb = mb;
    dst.nb = nb;
    dst.buf.assign(static_cast<size_t>(mb) * nb, T(0));
    eng.submit("recv_tile", {rt::write(dst.buf.data())},
               [&c, &dst, src, tag] {
                   c.recv(dst.buf.data(), dst.buf.size(), src, tag);
               });
}

/// SUMMA gemm (C := alpha A B + beta C, NoTrans, conforming block-cyclic
/// distributions) with communication and computation both running as tasks
/// on this rank's engine. Submission order per the header discipline:
/// C scales, then every panel send of every step, then the receives, then
/// the gemms; the dataflow (RAW on staged buffers, RW chains on C tiles)
/// reproduces dist_gemm's accumulation order bit-for-bit while the engine
/// overlaps receives with ready gemms. Staged panels for all kt steps are
/// alive at once: O(kt * (mt + nt)) tiles of workspace — the price of a
/// full-DAG epoch.
template <typename T>
void dist_gemm_tasks(Communicator& c, rt::Engine& eng, Grid g, T alpha,
                     DistMatrix<T>& A, DistMatrix<T>& B, T beta,
                     DistMatrix<T>& C) {
    int const mt = C.mt(), nt = C.nt(), kt = A.nt();
    tbp_require(A.mt() == mt && B.mt() == kt && B.nt() == nt);

    for (int j = 0; j < nt; ++j)
        for (int i = 0; i < mt; ++i)
            if (C.is_local(i, j)) {
                auto t = C.tile(i, j);
                eng.submit("scale_c", {rt::readwrite(t.data())},
                           [t, beta] { blas::scale(beta, t); });
            }

    // Distinct tag namespace from the SPMD kernels so an engine epoch can
    // coexist with them in one World::run.
    int const tag0 = 1 << 27;
    auto tag_a = [&](int l, int i) { return tag0 + l * (mt + nt) + i; };
    auto tag_b = [&](int l, int j) { return tag0 + l * (mt + nt) + mt + j; };

    // Phase 1: every send of every step (priority 1).
    for (int l = 0; l < kt; ++l) {
        for (int i = 0; i < mt; ++i)
            if (A.owner(i, l) == c.rank())
                for (int r : row_group(g, i))
                    if (r != c.rank())
                        task_send_tile(eng, c, A.tile(i, l), r, tag_a(l, i));
        for (int j = 0; j < nt; ++j)
            if (B.owner(l, j) == c.rank())
                for (int r : col_group(g, j))
                    if (r != c.rank())
                        task_send_tile(eng, c, B.tile(l, j), r, tag_b(l, j));
    }

    // Phase 2: receives into per-step staged panels (kept alive past
    // wait() by this scope).
    std::vector<std::map<int, detail::Staged<T>>> a_stage(
        static_cast<size_t>(kt)),
        b_stage(static_cast<size_t>(kt));
    for (int l = 0; l < kt; ++l) {
        for (int i = 0; i < mt; ++i)
            if (in_group(row_group(g, i), c.rank())
                && A.owner(i, l) != c.rank())
                task_recv_tile(eng, c, a_stage[static_cast<size_t>(l)][i],
                               A.tile_mb(i), A.tile_nb(l), A.owner(i, l),
                               tag_a(l, i));
        for (int j = 0; j < nt; ++j)
            if (in_group(col_group(g, j), c.rank())
                && B.owner(l, j) != c.rank())
                task_recv_tile(eng, c, b_stage[static_cast<size_t>(l)][j],
                               B.tile_mb(l), B.tile_nb(j), B.owner(l, j),
                               tag_b(l, j));
    }

    // Phase 3: gemms, reading local tiles or staged buffers.
    for (int l = 0; l < kt; ++l) {
        for (int j = 0; j < nt; ++j) {
            for (int i = 0; i < mt; ++i) {
                if (!C.is_local(i, j))
                    continue;
                Tile<T> ta = A.owner(i, l) == c.rank()
                                 ? A.tile(i, l)
                                 : a_stage[static_cast<size_t>(l)][i].tile();
                Tile<T> tb = B.owner(l, j) == c.rank()
                                 ? B.tile(l, j)
                                 : b_stage[static_cast<size_t>(l)][j].tile();
                auto tc = C.tile(i, j);
                eng.submit("gemm", 2.0 * tc.mb() * tc.nb() * ta.nb(),
                           {rt::read(ta.data()), rt::read(tb.data()),
                            rt::readwrite(tc.data())},
                           [ta, tb, tc, alpha] {
                               la::summa_step_accumulate(Op::NoTrans,
                                                         Op::NoTrans, alpha,
                                                         ta, tb, tc);
                           });
            }
        }
    }
    eng.wait();
}

/// 2.5D SUMMA gemm as engine tasks: the task-DAG counterpart of
/// dist_gemm_25d, bit-identical to it in both reduction modes (every path
/// accumulates through la::summa_step_accumulate and the C-tile RW chains
/// reproduce its fold order). The sends-before-recvs discipline generalizes
/// to the replication fiber with one new task kind:
///
///   - Phase 1 (priority 1): every send that depends only on owned tiles —
///     layer-0 fiber sends for all remote steps plus layer-0's own-step
///     within-layer staging sends.
///   - Phase 1b (priority 1, remote layers): recv_forward tasks, whose body
///     blocks for a fiber tile and then issues the within-layer staging
///     sends (buffered). These depend only on phase-1 fiber sends, so
///     draining them at the priority lane before any plain receive keeps
///     the wait graph acyclic: no staging send is ever stranded behind a
///     blocked plain receive.
///   - Then plain staged receives, then compute. In ExactOrder mode remote
///     gemm tasks ship their product tile from inside the task body
///     (buffered send, never blocks); in PartialSum mode a final send task
///     per C tile reads the layer partial, ordered after its accumulates by
///     the dataflow.
template <typename T>
void dist_gemm_tasks_25d(Communicator& c, rt::Engine& eng, ProcGrid3d g3,
                         T alpha, DistMatrix<T>& A, DistMatrix<T>& B, T beta,
                         DistMatrix<T>& C,
                         int tag_base = (1 << 27) + (1 << 26)) {
    Grid const g = g3.layer();
    int const mt = C.mt(), nt = C.nt(), kt = A.nt();
    tbp_require(c.size() == g3.size());
    tbp_require(A.mt() == mt && B.mt() == kt && B.nt() == nt);

    bool const exact = c.coll_config().deterministic;
    int const my = c.rank();
    int const my_layer = g3.layer_of(my);
    int const my_lr = g3.layer_rank(my);
    int const my_lo = g3.step_lo(my_layer, kt);
    int const my_hi = g3.step_hi(my_layer, kt);

    // Same tag layout as summa_25d (fiber, stage, reduce spans), offset into
    // the engine-task namespace.
    int const span = mt + nt;
    auto fiber_a_tag = [&](int l, int i) { return tag_base + l * span + i; };
    auto fiber_b_tag = [&](int l, int j) {
        return tag_base + l * span + mt + j;
    };
    int const stage0 = tag_base + kt * span;
    auto stage_a_tag = [&](int l, int i) { return stage0 + l * span + i; };
    auto stage_b_tag = [&](int l, int j) { return stage0 + l * span + mt + j; };
    int const red0 = tag_base + 2 * kt * span;
    auto reduce_tag = [&](int s, int i, int j) {
        return red0 + s * (mt * nt) + i + j * mt;
    };

    for (int j = 0; j < nt; ++j)
        for (int i = 0; i < mt; ++i)
            if (C.is_local(i, j)) {
                auto t = C.tile(i, j);
                eng.submit("scale_c", {rt::readwrite(t.data())},
                           [t, beta] { blas::scale(beta, t); });
            }

    // Workspaces alive until eng.wait().
    std::vector<std::map<int, detail::Staged<T>>> a_rep(
        static_cast<size_t>(kt)),
        b_rep(static_cast<size_t>(kt)), a_stage(static_cast<size_t>(kt)),
        b_stage(static_cast<size_t>(kt));
    std::map<std::pair<int, int>, detail::Staged<T>> part;
    std::deque<std::vector<T>> zbufs;  // stable refs: tasks capture elements

    if (my_layer == 0) {
        // Phase 1: fiber sends (remote steps) + own-step staging sends.
        for (int l = 0; l < kt; ++l) {
            int const lay = g3.layer_of_step(l, kt);
            if (lay != 0) {
                for (int i = 0; i < mt; ++i)
                    if (A.owner(i, l) == my)
                        task_send_tile(eng, c, A.tile(i, l),
                                       g3.global(lay, my_lr),
                                       fiber_a_tag(l, i));
                for (int j = 0; j < nt; ++j)
                    if (B.owner(l, j) == my)
                        task_send_tile(eng, c, B.tile(l, j),
                                       g3.global(lay, my_lr),
                                       fiber_b_tag(l, j));
                continue;
            }
            for (int i = 0; i < mt; ++i)
                if (A.owner(i, l) == my)
                    for (int r : row_group(g, i))
                        if (r != my)
                            task_send_tile(eng, c, A.tile(i, l), r,
                                           stage_a_tag(l, i));
            for (int j = 0; j < nt; ++j)
                if (B.owner(l, j) == my)
                    for (int r : col_group(g, j))
                        if (r != my)
                            task_send_tile(eng, c, B.tile(l, j), r,
                                           stage_b_tag(l, j));
        }

        // Phase 2: staged receives for layer 0's own steps.
        for (int l = 0; l < kt; ++l) {
            if (g3.layer_of_step(l, kt) != 0)
                continue;
            for (int i = 0; i < mt; ++i)
                if (in_group(row_group(g, i), my) && A.owner(i, l) != my)
                    task_recv_tile(eng, c, a_stage[static_cast<size_t>(l)][i],
                                   A.tile_mb(i), A.tile_nb(l), A.owner(i, l),
                                   stage_a_tag(l, i));
            for (int j = 0; j < nt; ++j)
                if (in_group(col_group(g, j), my) && B.owner(l, j) != my)
                    task_recv_tile(eng, c, b_stage[static_cast<size_t>(l)][j],
                                   B.tile_mb(l), B.tile_nb(j), B.owner(l, j),
                                   stage_b_tag(l, j));
        }

        // Phase 3: per C tile, the RW chain folds steps in ascending l
        // (ExactOrder) or own steps then layers (PartialSum).
        auto own_step_gemm = [&](int l) {
            for (int j = 0; j < nt; ++j)
                for (int i = 0; i < mt; ++i) {
                    if (!C.is_local(i, j))
                        continue;
                    Tile<T> ta =
                        A.owner(i, l) == my
                            ? A.tile(i, l)
                            : a_stage[static_cast<size_t>(l)][i].tile();
                    Tile<T> tb =
                        B.owner(l, j) == my
                            ? B.tile(l, j)
                            : b_stage[static_cast<size_t>(l)][j].tile();
                    auto tc = C.tile(i, j);
                    eng.submit("gemm", 2.0 * tc.mb() * tc.nb() * ta.nb(),
                               {rt::read(ta.data()), rt::read(tb.data()),
                                rt::readwrite(tc.data())},
                               [ta, tb, tc, alpha] {
                                   la::summa_step_accumulate(Op::NoTrans,
                                                             Op::NoTrans,
                                                             alpha, ta, tb,
                                                             tc);
                               });
                }
        };
        auto recv_add = [&](int src, int s, int i, int j) {
            auto tc = C.tile(i, j);
            eng.submit("recv_add", {rt::readwrite(tc.data())},
                       [&c, tc, src, tag = reduce_tag(s, i, j)] {
                           std::vector<T> zb(
                               static_cast<size_t>(tc.mb()) * tc.nb());
                           c.recv(zb, src, tag);
                           Tile<T> z(zb.data(), tc.mb(), tc.nb(), tc.mb());
                           blas::add(T(1), z, T(1), tc);
                       });
        };
        for (int l = 0; l < kt; ++l) {
            int const lay = g3.layer_of_step(l, kt);
            if (lay == 0)
                own_step_gemm(l);
            else if (exact)
                for (int j = 0; j < nt; ++j)
                    for (int i = 0; i < mt; ++i)
                        if (C.is_local(i, j))
                            recv_add(g3.global(lay, my), l, i, j);
        }
        if (!exact)
            for (int lay = 1; lay < g3.c; ++lay) {
                int const lo = g3.step_lo(lay, kt);
                if (lo >= g3.step_hi(lay, kt))
                    continue;
                for (int j = 0; j < nt; ++j)
                    for (int i = 0; i < mt; ++i)
                        if (C.is_local(i, j))
                            recv_add(g3.global(lay, my), lo, i, j);
            }
    } else if (my_lo < my_hi) {
        // Phase 1b: recv_forward — block for the fiber tile, then issue the
        // within-layer staging sends from the task body (priority 1, before
        // any plain receive task can run).
        for (int l = my_lo; l < my_hi; ++l) {
            for (int i = 0; i < mt; ++i) {
                if (A.owner(i, l) != my_lr)
                    continue;
                auto& rep = a_rep[static_cast<size_t>(l)][i];
                rep.mb = A.tile_mb(i);
                rep.nb = A.tile_nb(l);
                rep.buf.assign(static_cast<size_t>(rep.mb) * rep.nb, T(0));
                std::vector<int> peers;
                for (int r : row_group(g, i))
                    if (r != my_lr)
                        peers.push_back(g3.global(my_layer, r));
                eng.submit("recv_forward", {rt::write(rep.buf.data())},
                           [&c, &rep, peers, src = my_lr,
                            ftag = fiber_a_tag(l, i),
                            stag = stage_a_tag(l, i)] {
                               c.recv(rep.buf.data(), rep.buf.size(), src,
                                      ftag);
                               for (int r : peers)
                                   c.send(rep.buf, r, stag);
                           },
                           1);
            }
            for (int j = 0; j < nt; ++j) {
                if (B.owner(l, j) != my_lr)
                    continue;
                auto& rep = b_rep[static_cast<size_t>(l)][j];
                rep.mb = B.tile_mb(l);
                rep.nb = B.tile_nb(j);
                rep.buf.assign(static_cast<size_t>(rep.mb) * rep.nb, T(0));
                std::vector<int> peers;
                for (int r : col_group(g, j))
                    if (r != my_lr)
                        peers.push_back(g3.global(my_layer, r));
                eng.submit("recv_forward", {rt::write(rep.buf.data())},
                           [&c, &rep, peers, src = my_lr,
                            ftag = fiber_b_tag(l, j),
                            stag = stage_b_tag(l, j)] {
                               c.recv(rep.buf.data(), rep.buf.size(), src,
                                      ftag);
                               for (int r : peers)
                                   c.send(rep.buf, r, stag);
                           },
                           1);
            }
        }

        // Plain staged receives from same-layer holders.
        for (int l = my_lo; l < my_hi; ++l) {
            for (int i = 0; i < mt; ++i)
                if (in_group(row_group(g, i), my_lr) && A.owner(i, l) != my_lr)
                    task_recv_tile(eng, c, a_stage[static_cast<size_t>(l)][i],
                                   A.tile_mb(i), A.tile_nb(l),
                                   g3.global(my_layer, A.owner(i, l)),
                                   stage_a_tag(l, i));
            for (int j = 0; j < nt; ++j)
                if (in_group(col_group(g, j), my_lr) && B.owner(l, j) != my_lr)
                    task_recv_tile(eng, c, b_stage[static_cast<size_t>(l)][j],
                                   B.tile_mb(l), B.tile_nb(j),
                                   g3.global(my_layer, B.owner(l, j)),
                                   stage_b_tag(l, j));
        }

        // Compute this layer's steps.
        if (!exact)
            for (int j = 0; j < nt; ++j)
                for (int i = 0; i < mt; ++i)
                    if (C.owner(i, j) == my_lr) {
                        auto& pt = part[{i, j}];
                        pt.mb = C.tile_mb(i);
                        pt.nb = C.tile_nb(j);
                        pt.buf.assign(static_cast<size_t>(pt.mb) * pt.nb,
                                      T(0));
                    }
        for (int l = my_lo; l < my_hi; ++l) {
            for (int j = 0; j < nt; ++j)
                for (int i = 0; i < mt; ++i) {
                    if (C.owner(i, j) != my_lr)
                        continue;
                    Tile<T> ta =
                        A.owner(i, l) == my_lr
                            ? a_rep[static_cast<size_t>(l)][i].tile()
                            : a_stage[static_cast<size_t>(l)][i].tile();
                    Tile<T> tb =
                        B.owner(l, j) == my_lr
                            ? b_rep[static_cast<size_t>(l)][j].tile()
                            : b_stage[static_cast<size_t>(l)][j].tile();
                    if (exact) {
                        zbufs.emplace_back(
                            static_cast<size_t>(C.tile_mb(i)) * C.tile_nb(j));
                        auto& zb = zbufs.back();
                        Tile<T> z(zb.data(), C.tile_mb(i), C.tile_nb(j),
                                  C.tile_mb(i));
                        eng.submit("gemm_ship",
                                   2.0 * z.mb() * z.nb() * ta.nb(),
                                   {rt::read(ta.data()), rt::read(tb.data()),
                                    rt::write(z.data())},
                                   [&c, &zb, ta, tb, z, alpha, dst = my_lr,
                                    tag = reduce_tag(l, i, j)] {
                                       la::summa_step_product(Op::NoTrans,
                                                              Op::NoTrans,
                                                              alpha, ta, tb,
                                                              z);
                                       c.send(zb, dst, tag);
                                   });
                    } else {
                        auto tp = part[{i, j}].tile();
                        eng.submit("gemm", 2.0 * tp.mb() * tp.nb() * ta.nb(),
                                   {rt::read(ta.data()), rt::read(tb.data()),
                                    rt::readwrite(tp.data())},
                                   [ta, tb, tp, alpha] {
                                       la::summa_step_accumulate(Op::NoTrans,
                                                                 Op::NoTrans,
                                                                 alpha, ta,
                                                                 tb, tp);
                                   });
                    }
                }
        }
        if (!exact)
            for (auto& kv : part) {
                auto& pt = kv.second;
                eng.submit("send_partial", {rt::read(pt.buf.data())},
                           [&c, &pt, dst = my_lr,
                            tag = reduce_tag(my_lo, kv.first.first,
                                             kv.first.second)] {
                               c.send(pt.buf, dst, tag);
                           });
            }
    }
    eng.wait();
}

}  // namespace tbp::comm
