// Communication as schedulable tasks on the shared-memory engine.
//
// Each rank runs its own rt::Engine; tile sends and receives are submitted
// as tasks keyed on the tile/staged-buffer data pointers, so the engine's
// dataflow dependencies order them against the compute tasks exactly like
// SLATE's communication tasks inside the OpenMP DAG: a gemm that consumes a
// staged panel tile waits (RAW on the staged buffer) for the receive task
// that fills it, while independent gemms keep the workers busy — comm and
// compute overlap through the DAG, not through explicit phases.
//
// Deadlock discipline (blocking receives on a finite worker pool): every
// send task is submitted BEFORE any receive task and at priority 1. A
// worker always pops its own priority lane first, so by the time any
// worker can pop a receive task (receives are submitted only after every
// send has been distributed to the deques), each worker has drained the
// sends in its own deque; a worker parked in a blocking receive therefore
// never strands an unexecuted send behind it, other workers drain their
// own lanes independently, and the transport's buffered sends guarantee
// the matching messages arrive. This holds for any worker count >= 1 and
// for Sequential mode (inline execution preserves the same order).

#pragma once

#include "comm/dist_algs.hh"
#include "runtime/engine.hh"

namespace tbp::comm {

/// Submit a tile send as an engine task (read access on the tile data,
/// priority 1 — see the deadlock discipline above). The tile must not be
/// rewritten by tasks submitted later in this epoch unless they declare an
/// access on the same key.
template <typename T>
void task_send_tile(rt::Engine& eng, Communicator& c, Tile<T> t, int dst,
                    int tag) {
    eng.submit("send_tile", {rt::read(t.data())},
               [&c, t, dst, tag] { detail::send_tile(c, t, dst, tag); }, 1);
}

/// Submit a tile receive as an engine task. `dst` is resized here so its
/// buffer pointer (the dependency key) is stable; the task body blocks
/// until the message arrives. Submit only after every send task of the
/// epoch (see the deadlock discipline above).
template <typename T>
void task_recv_tile(rt::Engine& eng, Communicator& c, detail::Staged<T>& dst,
                    int mb, int nb, int src, int tag) {
    dst.mb = mb;
    dst.nb = nb;
    dst.buf.assign(static_cast<size_t>(mb) * nb, T(0));
    eng.submit("recv_tile", {rt::write(dst.buf.data())},
               [&c, &dst, src, tag] {
                   c.recv(dst.buf.data(), dst.buf.size(), src, tag);
               });
}

/// SUMMA gemm (C := alpha A B + beta C, NoTrans, conforming block-cyclic
/// distributions) with communication and computation both running as tasks
/// on this rank's engine. Submission order per the header discipline:
/// C scales, then every panel send of every step, then the receives, then
/// the gemms; the dataflow (RAW on staged buffers, RW chains on C tiles)
/// reproduces dist_gemm's accumulation order bit-for-bit while the engine
/// overlaps receives with ready gemms. Staged panels for all kt steps are
/// alive at once: O(kt * (mt + nt)) tiles of workspace — the price of a
/// full-DAG epoch.
template <typename T>
void dist_gemm_tasks(Communicator& c, rt::Engine& eng, Grid g, T alpha,
                     DistMatrix<T>& A, DistMatrix<T>& B, T beta,
                     DistMatrix<T>& C) {
    int const mt = C.mt(), nt = C.nt(), kt = A.nt();
    tbp_require(A.mt() == mt && B.mt() == kt && B.nt() == nt);

    for (int j = 0; j < nt; ++j)
        for (int i = 0; i < mt; ++i)
            if (C.is_local(i, j)) {
                auto t = C.tile(i, j);
                eng.submit("scale_c", {rt::readwrite(t.data())},
                           [t, beta] { blas::scale(beta, t); });
            }

    // Distinct tag namespace from the SPMD kernels so an engine epoch can
    // coexist with them in one World::run.
    int const tag0 = 1 << 27;
    auto tag_a = [&](int l, int i) { return tag0 + l * (mt + nt) + i; };
    auto tag_b = [&](int l, int j) { return tag0 + l * (mt + nt) + mt + j; };

    // Phase 1: every send of every step (priority 1).
    for (int l = 0; l < kt; ++l) {
        for (int i = 0; i < mt; ++i)
            if (A.owner(i, l) == c.rank())
                for (int r : row_group(g, i))
                    if (r != c.rank())
                        task_send_tile(eng, c, A.tile(i, l), r, tag_a(l, i));
        for (int j = 0; j < nt; ++j)
            if (B.owner(l, j) == c.rank())
                for (int r : col_group(g, j))
                    if (r != c.rank())
                        task_send_tile(eng, c, B.tile(l, j), r, tag_b(l, j));
    }

    // Phase 2: receives into per-step staged panels (kept alive past
    // wait() by this scope).
    std::vector<std::map<int, detail::Staged<T>>> a_stage(
        static_cast<size_t>(kt)),
        b_stage(static_cast<size_t>(kt));
    for (int l = 0; l < kt; ++l) {
        for (int i = 0; i < mt; ++i)
            if (in_group(row_group(g, i), c.rank())
                && A.owner(i, l) != c.rank())
                task_recv_tile(eng, c, a_stage[static_cast<size_t>(l)][i],
                               A.tile_mb(i), A.tile_nb(l), A.owner(i, l),
                               tag_a(l, i));
        for (int j = 0; j < nt; ++j)
            if (in_group(col_group(g, j), c.rank())
                && B.owner(l, j) != c.rank())
                task_recv_tile(eng, c, b_stage[static_cast<size_t>(l)][j],
                               B.tile_mb(l), B.tile_nb(j), B.owner(l, j),
                               tag_b(l, j));
    }

    // Phase 3: gemms, reading local tiles or staged buffers.
    for (int l = 0; l < kt; ++l) {
        for (int j = 0; j < nt; ++j) {
            for (int i = 0; i < mt; ++i) {
                if (!C.is_local(i, j))
                    continue;
                Tile<T> ta = A.owner(i, l) == c.rank()
                                 ? A.tile(i, l)
                                 : a_stage[static_cast<size_t>(l)][i].tile();
                Tile<T> tb = B.owner(l, j) == c.rank()
                                 ? B.tile(l, j)
                                 : b_stage[static_cast<size_t>(l)][j].tile();
                auto tc = C.tile(i, j);
                eng.submit("gemm", 2.0 * tc.mb() * tc.nb() * ta.nb(),
                           {rt::read(ta.data()), rt::read(tb.data()),
                            rt::readwrite(tc.data())},
                           [ta, tb, tc, alpha] {
                               blas::gemm(Op::NoTrans, Op::NoTrans, alpha, ta,
                                          tb, T(1), tc);
                           });
            }
        }
    }
    eng.wait();
}

}  // namespace tbp::comm
