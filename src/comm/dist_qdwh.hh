// Fully distributed QDWH over virtual ranks — both iteration branches:
// QR-based (Eq. 1) on the stacked [sqrt(c) A; I] via dist_geqrf/dist_ungqr,
// and Cholesky-based (Eq. 2) via dist_herk/dist_potrf/dist_trsm. This is
// the message-passing counterpart of the shared-memory task solver and the
// paper's contribution #1 in its distributed form.
//
// Constraints of this driver (documented, checked): m must be a tile
// multiple so the stacked workspace's top block rows share A's tile
// boundaries and ownership; the sigma_min lower bound l0 is supplied by the
// caller (the shared-memory path's QR + trcondest estimate, or an
// application bound).

#pragma once

#include "comm/dist_qr.hh"
#include "comm/dist_summa25.hh"
#include "comm/grid3d.hh"

namespace tbp::comm {

/// Distributed QDWH: A (m x n tiles, m >= n, m % nb == 0) is overwritten by
/// U_p. l0 is a lower bound on sigma_min(A)/sigma_max(A). Every rank
/// returns identical info.
///
/// The matrices live on g3's p x q layer grid; with g3.c > 1 the trailing
/// A := theta Q1 Q2^H + beta A update of each QR iteration runs as 2.5D
/// SUMMA over the replication layers (the factorizations, norms, and the
/// Cholesky branch stay on layer 0, with layers >= 1 idle or contributing
/// exact zeros to the collectives — in deterministic mode the ascending-
/// rank folds make every iterate bit-identical to the 2D oracle).
template <typename T>
DistQdwhInfo dist_qdwh(Communicator& c, ProcGrid3d g3, DistMatrix<T>& A,
                       double l0, int max_iter = 30) {
    using R = real_t<T>;
    Grid const g = g3.layer();
    tbp_require(c.size() == g3.size());
    int const mt = A.mt(), nt = A.nt();
    int const nb = A.tile_nb(0);
    tbp_require(A.m() >= A.n());
    tbp_require(A.tile_mb(mt - 1) == A.tile_mb(0));  // m % nb == 0

    DistQdwhInfo info;
    R const eps = std::numeric_limits<R>::epsilon();
    R const tol3 = std::cbrt(R(5) * eps);
    R const tol1 = R(5) * eps;

    R const alpha = dist_norm2est(c, A);
    info.norm2_estimate = static_cast<double>(alpha);
    tbp_require(alpha > R(0));
    for (int j = 0; j < nt; ++j)
        for (int i = 0; i < mt; ++i)
            if (A.is_local(i, j))
                blas::scale(from_real<T>(R(1) / alpha), A.tile(i, j));

    DistMatrix<T> Aprev(c, A.m(), A.n(), nb, g);
    DistMatrix<T> Z(c, A.n(), A.n(), nb, g);
    DistMatrix<T> W(c, A.m() + A.n(), A.n(), nb, g);
    DistMatrix<T> Tm(c, static_cast<std::int64_t>(W.mt()) * nb, A.n(), nb, g);
    DistMatrix<T> Q(c, A.m() + A.n(), A.n(), nb, g);

    R li = std::min(std::max(static_cast<R>(l0),
                             std::numeric_limits<R>::min() * R(100)),
                    R(1));
    R conv = R(100);
    int tag_base = 1 << 26;

    while ((conv >= tol3 || std::abs(li - R(1)) >= tol1)
           && info.iterations < max_iter) {
        R const l2 = li * li;
        R const dd = std::cbrt(R(4) * (R(1) - l2) / (l2 * l2));
        R const sqd = std::sqrt(R(1) + dd);
        R const a = sqd
                    + std::sqrt(R(8) - R(4) * dd
                                + R(8) * (R(2) - l2) / (l2 * sqd))
                          / R(2);
        R const b = (a - R(1)) * (a - R(1)) / R(4);
        R const cc = a + b - R(1);
        li = li * (a + b * l2) / (R(1) + cc * l2);

        dist_copy(A, Aprev);

        if (cc > R(100)) {
            // --- QR-based iteration on the stacked matrix -------------------
            // W tiles in the top mt block rows share A's ownership map.
            R const sq = std::sqrt(cc);
            for (int j = 0; j < nt; ++j) {
                for (int i = 0; i < W.mt(); ++i) {
                    if (!W.is_local(i, j))
                        continue;
                    auto w = W.tile(i, j);
                    if (i < mt) {
                        blas::copy(A.tile(i, j), w);
                        blas::scale(from_real<T>(sq), w);
                    } else {
                        blas::set(T(0), (i - mt == j) ? T(1) : T(0), w);
                    }
                }
            }
            dist_geqrf(c, g, W, Tm);
            dist_ungqr(c, g, W, Tm, Q);

            // A := theta Q1 Q2^H + beta A (SUMMA over the shared column
            // index l; Q1 = top mt block rows of Q, Q2 = the rest).
            R const theta = (a - b / cc) / sq;
            R const beta = b / cc;
            if (g3.c > 1) {
                // Replicated-layer trailing update; folds through
                // la::summa_step_accumulate like the 2D loop below, so
                // deterministic mode stays bit-identical to it.
                summa_25d(c, g3, Op::ConjTrans, from_real<T>(theta), Q, Q, mt,
                          from_real<T>(beta), A, tag_base);
                tag_base += summa25_tag_span(mt, nt, nt);
            } else {
            for (int j = 0; j < nt; ++j)
                for (int i = 0; i < mt; ++i)
                    if (A.is_local(i, j))
                        blas::scale(from_real<T>(beta), A.tile(i, j));
            // Q is read-only during this SUMMA, so step l+1's panel
            // broadcasts overlap step l's gemms (same double-buffered
            // pipeline as dist_gemm; the legacy oracle stays blocking).
            struct Step {
                std::map<int, detail::PendingStage<T>> q1, q2;
            };
            auto stage_step = [&](int l) {
                int const base = tag_base + l * (mt + nt);
                Step st;
                for (int i = 0; i < mt; ++i) {
                    auto grp = row_group(g, i);
                    bool const need = in_group(grp, c.rank());
                    if (need || Q.owner(i, l) == c.rank()) {
                        auto p = stage_tile_begin(c, Q, i, l, grp, base + i);
                        if (need)
                            st.q1[i] = std::move(p);
                    }
                }
                for (int j = 0; j < nt; ++j) {
                    auto grp = col_group(g, j);
                    bool const need = in_group(grp, c.rank());
                    if (need || Q.owner(mt + j, l) == c.rank()) {
                        auto p = stage_tile_begin(c, Q, mt + j, l, grp,
                                                  base + mt + j);
                        if (need)
                            st.q2[j] = std::move(p);
                    }
                }
                return st;
            };
            bool const pipelined = !c.coll_config().legacy;
            Step cur = stage_step(0);
            for (int l = 0; l < nt; ++l) {
                Step next;
                if (pipelined && l + 1 < nt)
                    next = stage_step(l + 1);
                for (int j = 0; j < nt; ++j)
                    for (int i = 0; i < mt; ++i)
                        if (A.is_local(i, j))
                            la::summa_step_accumulate(
                                Op::NoTrans, Op::ConjTrans,
                                from_real<T>(theta), cur.q1[i].ready().tile(),
                                cur.q2[j].ready().tile(), A.tile(i, j));
                if (!pipelined && l + 1 < nt)
                    next = stage_step(l + 1);
                cur = std::move(next);
            }
            tag_base += summa25_tag_span(mt, nt, nt);
            }
        } else {
            // --- Cholesky-based iteration (Eq. 2) ---------------------------
            dist_set_identity(Z);
            dist_herk(c, g, cc, A, R(1), Z);
            dist_potrf(c, g, Z);
            dist_trsm_right_lower(c, g, Op::ConjTrans, Z, A);
            dist_trsm_right_lower(c, g, Op::NoTrans, Z, A);
            dist_add(Aprev, from_real<T>(b / cc), from_real<T>(a - b / cc), A);
        }

        dist_add(A, T(1), T(-1), Aprev);
        conv = dist_norm_fro(c, Aprev);
        ++info.iterations;
        c.barrier();
    }
    info.conv = static_cast<double>(conv);
    return info;
}

/// 2D entry point: the p x q grid spans the whole communicator (c == 1).
template <typename T>
DistQdwhInfo dist_qdwh(Communicator& c, Grid g, DistMatrix<T>& A, double l0,
                       int max_iter = 30) {
    return dist_qdwh(c, ProcGrid3d{g.p, g.q, 1}, A, l0, max_iter);
}

}  // namespace tbp::comm
