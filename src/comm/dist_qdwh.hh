// Fully distributed QDWH over virtual ranks — both iteration branches:
// QR-based (Eq. 1) on the stacked [sqrt(c) A; I] via dist_geqrf/dist_ungqr,
// and Cholesky-based (Eq. 2) via dist_herk/dist_potrf/dist_trsm. This is
// the message-passing counterpart of the shared-memory task solver and the
// paper's contribution #1 in its distributed form.
//
// Constraints of this driver (documented, checked): m must be a tile
// multiple so the stacked workspace's top block rows share A's tile
// boundaries and ownership; the sigma_min lower bound l0 is supplied by the
// caller (the shared-memory path's QR + trcondest estimate, or an
// application bound).

#pragma once

#include <memory>

#include "comm/dist_qr.hh"
#include "comm/dist_summa25.hh"
#include "comm/grid3d.hh"
#include "common/precision.hh"
#include "core/precision_policy.hh"

namespace tbp::comm {

namespace detail {

/// Distributed workspaces of one QDWH iteration in one scalar type — the
/// message-passing analogue of tbp::detail::QdwhWorkspace.
template <typename T>
struct DistQdwhWork {
    DistMatrix<T> Aprev, Z, W, Tm, Q;

    DistQdwhWork(Communicator& c, std::int64_t m, std::int64_t n, int nb,
                 Grid g)
        : Aprev(c, m, n, nb, g),
          Z(c, n, n, nb, g),
          W(c, m + n, n, nb, g),
          Tm(c, static_cast<std::int64_t>(W.mt()) * nb, n, nb, g),
          Q(c, m + n, n, nb, g) {}
};

/// One distributed QDWH iteration (both branches): A := f_k(A) with weights
/// (a, b, cc), leaving the entering iterate in w.Aprev. Extracted from
/// dist_qdwh so the precision ladder can run it on a float shadow matrix
/// set; `tag_base` advances by the same span on every rank and rung.
template <typename T>
void dist_qdwh_iter(Communicator& c, ProcGrid3d g3, DistMatrix<T>& A,
                    DistQdwhWork<T>& w, double da, double db, double dcc,
                    int& tag_base) {
    using R = real_t<T>;
    Grid const g = g3.layer();
    int const mt = A.mt(), nt = A.nt();
    R const a = static_cast<R>(da);
    R const b = static_cast<R>(db);
    R const cc = static_cast<R>(dcc);

    dist_copy(A, w.Aprev);

    if (dcc > 100.0) {
        // --- QR-based iteration on the stacked matrix -----------------------
        // W tiles in the top mt block rows share A's ownership map.
        R const sq = std::sqrt(cc);
        for (int j = 0; j < nt; ++j) {
            for (int i = 0; i < w.W.mt(); ++i) {
                if (!w.W.is_local(i, j))
                    continue;
                auto wt = w.W.tile(i, j);
                if (i < mt) {
                    blas::copy(A.tile(i, j), wt);
                    blas::scale(from_real<T>(sq), wt);
                } else {
                    blas::set(T(0), (i - mt == j) ? T(1) : T(0), wt);
                }
            }
        }
        dist_geqrf(c, g, w.W, w.Tm);
        dist_ungqr(c, g, w.W, w.Tm, w.Q);

        // A := theta Q1 Q2^H + beta A (SUMMA over the shared column
        // index l; Q1 = top mt block rows of Q, Q2 = the rest).
        R const theta = (a - b / cc) / sq;
        R const beta = b / cc;
        if (g3.c > 1) {
            // Replicated-layer trailing update; folds through
            // la::summa_step_accumulate like the 2D loop below, so
            // deterministic mode stays bit-identical to it.
            summa_25d(c, g3, Op::ConjTrans, from_real<T>(theta), w.Q, w.Q, mt,
                      from_real<T>(beta), A, tag_base);
            tag_base += summa25_tag_span(mt, nt, nt);
        } else {
            for (int j = 0; j < nt; ++j)
                for (int i = 0; i < mt; ++i)
                    if (A.is_local(i, j))
                        blas::scale(from_real<T>(beta), A.tile(i, j));
            // Q is read-only during this SUMMA, so step l+1's panel
            // broadcasts overlap step l's gemms (same double-buffered
            // pipeline as dist_gemm; the legacy oracle stays blocking).
            struct Step {
                std::map<int, detail::PendingStage<T>> q1, q2;
            };
            auto stage_step = [&](int l) {
                int const base = tag_base + l * (mt + nt);
                Step st;
                for (int i = 0; i < mt; ++i) {
                    auto grp = row_group(g, i);
                    bool const need = in_group(grp, c.rank());
                    if (need || w.Q.owner(i, l) == c.rank()) {
                        auto p = stage_tile_begin(c, w.Q, i, l, grp, base + i);
                        if (need)
                            st.q1[i] = std::move(p);
                    }
                }
                for (int j = 0; j < nt; ++j) {
                    auto grp = col_group(g, j);
                    bool const need = in_group(grp, c.rank());
                    if (need || w.Q.owner(mt + j, l) == c.rank()) {
                        auto p = stage_tile_begin(c, w.Q, mt + j, l, grp,
                                                  base + mt + j);
                        if (need)
                            st.q2[j] = std::move(p);
                    }
                }
                return st;
            };
            bool const pipelined = !c.coll_config().legacy;
            Step cur = stage_step(0);
            for (int l = 0; l < nt; ++l) {
                Step next;
                if (pipelined && l + 1 < nt)
                    next = stage_step(l + 1);
                for (int j = 0; j < nt; ++j)
                    for (int i = 0; i < mt; ++i)
                        if (A.is_local(i, j))
                            la::summa_step_accumulate(
                                Op::NoTrans, Op::ConjTrans,
                                from_real<T>(theta), cur.q1[i].ready().tile(),
                                cur.q2[j].ready().tile(), A.tile(i, j));
                if (!pipelined && l + 1 < nt)
                    next = stage_step(l + 1);
                cur = std::move(next);
            }
            tag_base += summa25_tag_span(mt, nt, nt);
        }
    } else {
        // --- Cholesky-based iteration (Eq. 2) -------------------------------
        dist_set_identity(w.Z);
        dist_herk(c, g, cc, A, R(1), w.Z);
        dist_potrf(c, g, w.Z);
        dist_trsm_right_lower(c, g, Op::ConjTrans, w.Z, A);
        dist_trsm_right_lower(c, g, Op::NoTrans, w.Z, A);
        dist_add(w.Aprev, from_real<T>(b / cc), from_real<T>(a - b / cc), A);
    }
}

}  // namespace detail

/// Distributed QDWH: A (m x n tiles, m >= n, m % nb == 0) is overwritten by
/// U_p. l0 is a lower bound on sigma_min(A)/sigma_max(A). Every rank
/// returns identical info.
///
/// The matrices live on g3's p x q layer grid; with g3.c > 1 the trailing
/// A := theta Q1 Q2^H + beta A update of each QR iteration runs as 2.5D
/// SUMMA over the replication layers (the factorizations, norms, and the
/// Cholesky branch stay on layer 0, with layers >= 1 idle or contributing
/// exact zeros to the collectives — in deterministic mode the ascending-
/// rank folds make every iterate bit-identical to the 2D oracle).
template <typename T>
DistQdwhInfo dist_qdwh(Communicator& c, ProcGrid3d g3, DistMatrix<T>& A,
                       double l0, int max_iter = 30) {
    using R = real_t<T>;
    Grid const g = g3.layer();
    tbp_require(c.size() == g3.size());
    int const mt = A.mt(), nt = A.nt();
    int const nb = A.tile_nb(0);
    tbp_require(A.m() >= A.n());
    tbp_require(A.tile_mb(mt - 1) == A.tile_mb(0));  // m % nb == 0

    DistQdwhInfo info;
    R const eps = std::numeric_limits<R>::epsilon();
    R const tol3 = std::cbrt(R(5) * eps);
    R const tol1 = R(5) * eps;

    R const alpha = dist_norm2est(c, A);
    info.norm2_estimate = static_cast<double>(alpha);
    tbp_require(alpha > R(0));
    for (int j = 0; j < nt; ++j)
        for (int i = 0; i < mt; ++i)
            if (A.is_local(i, j))
                blas::scale(from_real<T>(R(1) / alpha), A.tile(i, j));

    detail::DistQdwhWork<T> w(c, A.m(), A.n(), nb, g);

    R li = std::min(std::max(static_cast<R>(l0),
                             std::numeric_limits<R>::min() * R(100)),
                    R(1));
    R conv = R(100);
    int tag_base = 1 << 26;

    while ((conv >= tol3 || std::abs(li - R(1)) >= tol1)
           && info.iterations < max_iter) {
        R const l2 = li * li;
        R const dd = std::cbrt(R(4) * (R(1) - l2) / (l2 * l2));
        R const sqd = std::sqrt(R(1) + dd);
        R const a = sqd
                    + std::sqrt(R(8) - R(4) * dd
                                + R(8) * (R(2) - l2) / (l2 * sqd))
                          / R(2);
        R const b = (a - R(1)) * (a - R(1)) / R(4);
        R const cc = a + b - R(1);
        li = li * (a + b * l2) / (R(1) + cc * l2);

        // Branch-region traffic snapshot, mirroring dist_qdwh_adaptive so
        // per-iteration counters are comparable across the two drivers.
        CommStats const s0 = c.stats();
        detail::dist_qdwh_iter(c, g3, A, w, static_cast<double>(a),
                               static_cast<double>(b),
                               static_cast<double>(cc), tag_base);
        CommStats const s1 = c.stats();
        info.iter_bytes_sent.push_back(s1.bytes_sent - s0.bytes_sent);
        info.iter_msgs_sent.push_back(s1.sends - s0.sends);

        dist_add(A, T(1), T(-1), w.Aprev);
        conv = dist_norm_fro(c, w.Aprev);
        info.rungs.push_back(prec::native_prec<T>());
        ++info.iterations;
        c.barrier();
    }
    info.conv = static_cast<double>(conv);
    return info;
}

/// Distributed QDWH with the adaptive precision ladder: the same iteration
/// stream as dist_qdwh, but each iteration's branch body runs on a float
/// shadow matrix set when its planned rung is low — every staged tile
/// payload (panel broadcasts, SUMMA steps, trsm columns) ships
/// sizeof(float-kind) bytes per element instead of sizeof(native), exactly
/// halving the double-kind branch-region communication volume with an
/// unchanged message count and tag stream.
///
/// The rung schedule is prec::plan_rungs of (l0, tol1, max_iter, pol) — a
/// pure double computation every rank performs identically, so no rank ever
/// disagrees about payload element types. There is no fallback promotion in
/// the distributed driver (a mid-iteration rung switch would desynchronize
/// posted receives); a non-finite low-rung iterate is a hard error here,
/// and the convergence norm runs natively each iteration regardless of
/// rung. Iterates entering and leaving a low iteration convert locally
/// (zero communication). Every rank returns identical info scalars; the
/// per-iteration traffic vectors are this rank's own counts.
template <typename T>
DistQdwhInfo dist_qdwh_adaptive(Communicator& c, ProcGrid3d g3,
                                DistMatrix<T>& A, double l0,
                                prec::PrecisionPolicy const& pol,
                                int max_iter = 30) {
    using R = real_t<T>;
    using S = prec::shadow_t<T>;
    prec::Prec const native = prec::native_prec<T>();
    Grid const g = g3.layer();
    tbp_require(c.size() == g3.size());
    int const mt = A.mt(), nt = A.nt();
    int const nb = A.tile_nb(0);
    tbp_require(A.m() >= A.n());
    tbp_require(A.tile_mb(mt - 1) == A.tile_mb(0));  // m % nb == 0
    (void)nt;

    DistQdwhInfo info;
    R const eps = std::numeric_limits<R>::epsilon();
    R const tol3 = std::cbrt(R(5) * eps);
    double const tol1 = 5.0 * static_cast<double>(eps);

    R const alpha = dist_norm2est(c, A);
    info.norm2_estimate = static_cast<double>(alpha);
    tbp_require(alpha > R(0));
    for (int j = 0; j < A.nt(); ++j)
        for (int i = 0; i < mt; ++i)
            if (A.is_local(i, j))
                blas::scale(from_real<T>(R(1) / alpha), A.tile(i, j));

    double li = std::min(
        std::max(l0, static_cast<double>(std::numeric_limits<R>::min())
                         * 100.0),
        1.0);
    auto const plan = prec::plan_rungs(li, tol1, max_iter, pol, native);

    detail::DistQdwhWork<T> w(c, A.m(), A.n(), nb, g);

    // Shadow iterate + workspaces, allocated on first low-rung use.
    std::unique_ptr<DistMatrix<S>> As;
    std::unique_ptr<detail::DistQdwhWork<S>> sw;
    auto ensure_shadow = [&] {
        if (As)
            return;
        As = std::make_unique<DistMatrix<S>>(c, A.m(), A.n(), nb, g);
        sw = std::make_unique<detail::DistQdwhWork<S>>(c, A.m(), A.n(), nb, g);
    };

    R conv = R(100);
    int tag_base = 1 << 26;

    while ((conv >= tol3 || std::abs(li - 1.0) >= tol1)
           && info.iterations < max_iter) {
        std::size_t const k = static_cast<std::size_t>(info.iterations);
        prec::QdwhWeights const pw = prec::qdwh_weights(li);
        li = pw.li_next;
        prec::Prec const rung = k < plan.size() ? plan[k].rung : native;

        // Branch-region traffic snapshot (staging only; the conv allreduce
        // and barrier below are outside the delta).
        CommStats const s0 = c.stats();
        if (rung == native) {
            detail::dist_qdwh_iter(c, g3, A, w, pw.a, pw.b, pw.c, tag_base);
        } else {
            ensure_shadow();
            dist_copy(A, w.Aprev);      // native entering iterate, for conv
            dist_convert(A, *As);       // local, no messages
            {
                // Bf16 packs gemm operands at the blas level on each rank's
                // own thread — install the exec-side mode directly.
                prec::ExecModeScope mode_scope(
                    rung == prec::Prec::Bf16
                        ? (pol.compensated ? prec::GemmMode::Bf16Comp
                                           : prec::GemmMode::Bf16)
                        : prec::GemmMode::Native);
                detail::dist_qdwh_iter(c, g3, *As, *sw, pw.a, pw.b, pw.c,
                                       tag_base);
            }
            dist_convert(*As, A);       // local, no messages
        }
        CommStats const s1 = c.stats();
        info.rungs.push_back(rung);
        info.iter_bytes_sent.push_back(s1.bytes_sent - s0.bytes_sent);
        info.iter_msgs_sent.push_back(s1.sends - s0.sends);

        dist_add(A, T(1), T(-1), w.Aprev);
        conv = dist_norm_fro(c, w.Aprev);
        if (!std::isfinite(static_cast<double>(conv)))
            tbp_throw("dist_qdwh_adaptive: non-finite iterate (no fallback "
                      "in the distributed driver)");
        ++info.iterations;
        c.barrier();
    }
    info.conv = static_cast<double>(conv);
    return info;
}

/// 2D entry point: the p x q grid spans the whole communicator (c == 1).
template <typename T>
DistQdwhInfo dist_qdwh(Communicator& c, Grid g, DistMatrix<T>& A, double l0,
                       int max_iter = 30) {
    return dist_qdwh(c, ProcGrid3d{g.p, g.q, 1}, A, l0, max_iter);
}

}  // namespace tbp::comm
