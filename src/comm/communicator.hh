// Simulated message passing over in-process virtual ranks.
//
// TBP's stand-in for MPI (no MPI implementation exists in this environment):
// World spawns P ranks as threads running the same SPMD function, and
// Communicator gives each rank tagged point-to-point send/recv plus the
// collectives QDWH's building blocks use — Barrier, Bcast, Allreduce
// (Algorithm 2 line 8 reduces local column sums with MPI_Allreduce), and
// Reduce. Semantics follow MPI: sends of trivially-copyable element buffers,
// FIFO per (src, dst, tag) channel, deterministic rank-ordered reductions.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/error.hh"

namespace tbp::comm {

namespace detail {

/// Shared mailbox state for one World.
struct Shared {
    struct Channel {
        std::deque<std::vector<std::byte>> messages;
    };

    std::mutex mtx;
    std::condition_variable cv;
    // key: (src, dst, tag)
    std::map<std::tuple<int, int, int>, Channel> channels;

    // Sense-reversing barrier.
    int barrier_count = 0;
    int barrier_sense = 0;

    // Scratch area for collectives (one slot per rank).
    std::vector<std::vector<std::byte>> coll_slots;
    int coll_arrivals = 0;
    int coll_generation = 0;

    int nranks = 0;
};

}  // namespace detail

class Communicator {
public:
    Communicator(int rank, std::shared_ptr<detail::Shared> shared)
        : rank_(rank), s_(std::move(shared)) {}

    int rank() const { return rank_; }
    int size() const { return s_->nranks; }

    /// Blocking tagged send of `count` elements of trivially copyable T.
    template <typename T>
    void send(T const* data, std::size_t count, int dst, int tag = 0) {
        static_assert(std::is_trivially_copyable_v<T>);
        tbp_require(0 <= dst && dst < size());
        std::vector<std::byte> buf(count * sizeof(T));
        std::memcpy(buf.data(), data, buf.size());
        push_message(rank_, dst, tag, std::move(buf));
    }

    template <typename T>
    void send(std::vector<T> const& v, int dst, int tag = 0) {
        send(v.data(), v.size(), dst, tag);
    }

    /// Blocking tagged receive; message length must equal count elements.
    template <typename T>
    void recv(T* data, std::size_t count, int src, int tag = 0) {
        static_assert(std::is_trivially_copyable_v<T>);
        tbp_require(0 <= src && src < size());
        auto buf = pop_message(src, rank_, tag);
        tbp_require(buf.size() == count * sizeof(T));
        std::memcpy(data, buf.data(), buf.size());
    }

    template <typename T>
    void recv(std::vector<T>& v, int src, int tag = 0) {
        recv(v.data(), v.size(), src, tag);
    }

    /// All ranks synchronize.
    void barrier();

    /// Broadcast `count` elements from root to every rank (in place).
    template <typename T>
    void bcast(T* data, std::size_t count, int root = 0) {
        static_assert(std::is_trivially_copyable_v<T>);
        int const tag = kBcastTag;
        if (rank_ == root) {
            for (int r = 0; r < size(); ++r)
                if (r != root)
                    send(data, count, r, tag);
        } else {
            recv(data, count, root, tag);
        }
    }

    template <typename T>
    void bcast(std::vector<T>& v, int root = 0) {
        bcast(v.data(), v.size(), root);
    }

    /// In-place element-wise allreduce with a deterministic rank-ordered
    /// combine. `op(acc, x)` folds x into acc.
    template <typename T>
    void allreduce(T* data, std::size_t count,
                   std::function<void(T&, T const&)> const& op) {
        static_assert(std::is_trivially_copyable_v<T>);
        int const tag = kReduceTag;
        if (rank_ == 0) {
            std::vector<T> incoming(count);
            for (int r = 1; r < size(); ++r) {
                recv(incoming.data(), count, r, tag);
                for (std::size_t i = 0; i < count; ++i)
                    op(data[i], incoming[i]);
            }
        } else {
            send(data, count, 0, tag);
        }
        bcast(data, count, 0);
    }

    template <typename T>
    void allreduce_sum(T* data, std::size_t count) {
        allreduce<T>(data, count, [](T& a, T const& b) { a += b; });
    }

    template <typename T>
    void allreduce_sum(std::vector<T>& v) {
        allreduce_sum(v.data(), v.size());
    }

    template <typename T>
    T allreduce_max(T x) {
        allreduce<T>(&x, 1, [](T& a, T const& b) {
            if (b > a)
                a = b;
        });
        return x;
    }

    template <typename T>
    T allreduce_sum_scalar(T x) {
        allreduce_sum(&x, 1);
        return x;
    }

private:
    static constexpr int kBcastTag = -1;
    static constexpr int kReduceTag = -2;

    void push_message(int src, int dst, int tag, std::vector<std::byte> buf);
    std::vector<std::byte> pop_message(int src, int dst, int tag);

    int rank_;
    std::shared_ptr<detail::Shared> s_;
};

/// A set of virtual ranks executing an SPMD function on threads.
class World {
public:
    explicit World(int nranks);

    int size() const { return nranks_; }

    /// Run fn(comm) on every rank; returns when all ranks finish.
    /// Rethrows the first exception raised on any rank.
    void run(std::function<void(Communicator&)> const& fn);

private:
    int nranks_;
    std::shared_ptr<detail::Shared> shared_;
};

}  // namespace tbp::comm
