// Simulated message passing over in-process virtual ranks.
//
// TBP's stand-in for MPI (no MPI implementation exists in this environment):
// World spawns P ranks as threads running the same SPMD function, and
// Communicator gives each rank tagged point-to-point send/recv plus the
// collectives QDWH's building blocks use. Semantics follow MPI: sends of
// trivially-copyable element buffers are buffered (never block), receives
// block, FIFO per (src, dst, tag) channel, deterministic reductions.
//
// Nonblocking engine: isend/irecv return Request handles with test/wait/
// wait_all. A posted receive enters the rank's pending queue; the per-rank
// progress loop (progress(), also run by every test/wait and by blocking
// receives) matches pending receives against arrived messages in post
// order, which preserves MPI's posted-receive matching semantics. Sends
// complete at post time (the transport is buffered), so overlap comes from
// posting receives early and waiting late — the distributed kernels in
// dist_algs.hh/dist_qr.hh pipeline their panel broadcasts this way.
//
// Tag namespaces: user tags are non-negative (asserted). The library's
// collectives run in a reserved negative tag space, so internal traffic can
// never collide with user point-to-point messages.
//
// Collectives: binomial-tree bcast/reduce, recursive-doubling and ring
// (chunk-pipelined) allreduce, allgather(v) — selected per message size via
// coll::Config (see comm_stats.hh), with the legacy linear/root-bottleneck
// paths kept selectable as a bitwise reference oracle. Reductions combine
// contributions in ascending-rank order for every algorithm except Ring,
// so oracle and engine agree bit-for-bit by default.

// Fault plane: World::set_fault installs a seeded fault::FaultInjector
// (src/fault/). With a plan installed every p2p payload travels in a
// {magic, seq, checksum} wire envelope; receivers deliver strictly in
// per-channel sequence order, absorb duplicates, recover corrupted payloads
// from the sender's retained clean copy, and re-drive dropped messages
// after a timeout with bounded exponential backoff (RetryConfig). Blocked
// receives and barriers fail with a dimensioned CommError instead of
// hanging once the retry budget is exhausted, and a poisoned rank
// fail-stops by throwing RankFailedError from its own send. Without a plan
// none of this machinery is touched — the wire format and the wait paths
// are byte-for-byte the pre-fault engine.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "comm/comm_error.hh"
#include "comm/comm_stats.hh"
#include "common/error.hh"
#include "common/timer.hh"
#include "fault/injector.hh"

namespace tbp::comm {

class Communicator;

namespace detail {

/// Shared mailbox state for one World.
struct Shared {
    /// One in-flight message. `release` is the fault plane's delivery
    /// embargo (wall_time() before which progress must not match it); 0 —
    /// the only value the fault-free path ever writes — means deliverable.
    struct Msg {
        std::vector<std::byte> bytes;
        double release = 0;
    };
    struct Channel {
        std::deque<Msg> messages;
    };

    std::mutex mtx;
    std::condition_variable cv;
    // key: (src, dst, tag)
    std::map<std::tuple<int, int, int>, Channel> channels;

    // Sense-reversing barrier.
    int barrier_count = 0;
    int barrier_sense = 0;

    int nranks = 0;

    coll::Config coll_cfg;              // default config for new Communicators
    std::vector<CommStats> rank_stats;  // flushed by World::run per rank

    // Installed by World::set_fault (null: fault-free fast path). Stable
    // for the duration of a run; all mutating access holds mtx.
    std::shared_ptr<fault::FaultInjector> fault;
};

/// One posted (pending) receive. Matched against arrived messages by the
/// owning rank's progress loop, in post order.
struct RecvOp {
    int src = -1;
    int tag = 0;
    std::byte* data = nullptr;              // fixed-size destination
    std::size_t bytes = 0;                  // expected payload (fixed mode)
    std::vector<std::byte>* dyn = nullptr;  // dynamic mode: takes the payload
    bool done = false;
    // Set instead of `data` when the operation failed (size mismatch,
    // timeout, dead sender): done is still true so waiters unblock, and
    // wait/test rethrow the dimensioned CommError to the caller.
    std::exception_ptr error;
};

}  // namespace detail

/// Handle for a nonblocking operation. Default-constructed and isend
/// requests are already complete. Requests must be completed (test() ==
/// true or wait()) before the owning Communicator is destroyed.
class Request {
public:
    Request() = default;

    /// Nonblocking completion attempt; runs the progress loop. Rethrows
    /// the operation's CommError if it completed in error.
    bool test();

    /// Block until complete; wait time is charged to the rank's counters.
    /// In fault mode the wait is timed and may re-drive dropped messages;
    /// rethrows the operation's dimensioned CommError on failure.
    void wait();

    /// Complete without throwing: any transfer error is absorbed into the
    /// rank's fault.recovery_errors counter. The drain-guard primitive for
    /// destructors and unwind paths (PendingStage, staged-panel teardown).
    void drain() noexcept;

    bool done() const;

    static void wait_all(Request* rs, std::size_t n) {
        for (std::size_t i = 0; i < n; ++i)
            rs[i].wait();
    }
    static void wait_all(std::vector<Request>& rs) {
        wait_all(rs.data(), rs.size());
    }

private:
    friend class Communicator;
    Request(Communicator* c, std::shared_ptr<detail::RecvOp> op)
        : comm_(c), op_(std::move(op)) {}

    Communicator* comm_ = nullptr;
    std::shared_ptr<detail::RecvOp> op_;  // null: already complete (send)
};

class Communicator {
public:
    Communicator(int rank, std::shared_ptr<detail::Shared> shared)
        : rank_(rank), s_(std::move(shared)), cfg_(s_->coll_cfg) {}

    int rank() const { return rank_; }
    int size() const { return s_->nranks; }

    // --- point-to-point (user tag space: tag >= 0) ------------------------

    /// Blocking tagged send of `count` elements of trivially copyable T.
    /// Buffered: never blocks. Self-sends (dst == rank()) are legal and are
    /// received by a later recv/irecv on this rank. count == 0 is legal.
    template <typename T>
    void send(T const* data, std::size_t count, int dst, int tag = 0) {
        require_user_tag(tag);
        send_raw(data, count, dst, tag);
    }

    template <typename T>
    void send(std::vector<T> const& v, int dst, int tag = 0) {
        send(v.data(), v.size(), dst, tag);
    }

    /// Blocking tagged receive; the message length must equal `count`
    /// elements (asserted — the message carries its size).
    template <typename T>
    void recv(T* data, std::size_t count, int src, int tag = 0) {
        require_user_tag(tag);
        recv_raw(data, count, src, tag);
    }

    /// Blocking receive into a vector. The message length defines the
    /// element count: a default-constructed vector is resized to fit; a
    /// non-empty vector must match the message length exactly (asserted).
    template <typename T>
    void recv(std::vector<T>& v, int src, int tag = 0) {
        require_user_tag(tag);
        recv_raw_dyn(v, src, tag);
    }

    /// Nonblocking send. The transport is buffered, so the returned request
    /// is already complete; it exists so call sites read symmetrically and
    /// keep working if the transport ever becomes truly asynchronous.
    template <typename T>
    Request isend(T const* data, std::size_t count, int dst, int tag = 0) {
        require_user_tag(tag);
        send_raw(data, count, dst, tag);
        return Request();
    }

    /// Nonblocking receive of exactly `count` elements into `data`, which
    /// must stay valid until the request completes.
    template <typename T>
    Request irecv(T* data, std::size_t count, int src, int tag = 0) {
        require_user_tag(tag);
        return irecv_raw(data, count, src, tag);
    }

    /// Nonblocking receive into a pre-sized vector (irecv of v.size()).
    template <typename T>
    Request irecv(std::vector<T>& v, int src, int tag = 0) {
        return irecv(v.data(), v.size(), src, tag);
    }

    /// Per-rank progress loop: matches pending receives against arrived
    /// messages (post order). Called implicitly by test/wait and blocking
    /// receives; safe to call from any thread of this rank.
    void progress();

    /// All ranks synchronize.
    void barrier();

    // --- collectives (algorithm per coll::Config; internal tag space) -----

    /// Broadcast `count` elements from root to every rank (in place).
    template <typename T>
    void bcast(T* data, std::size_t count, int root = 0);

    template <typename T>
    void bcast(std::vector<T>& v, int root = 0) {
        bcast(v.data(), v.size(), root);
    }

    /// Reduce to root with a deterministic ascending-rank-order combine:
    /// acc starts from rank 0's contribution and op(acc, x) folds x in.
    /// Every algorithm (Linear, Tree) preserves this order bit-for-bit.
    template <typename T, typename OpF>
    void reduce(T* data, std::size_t count, OpF const& op, int root = 0);

    /// In-place element-wise allreduce. Linear/Tree/RecDouble combine in
    /// ascending-rank order (bitwise-identical across those algorithms);
    /// Ring re-associates per chunk but is deterministic at fixed P.
    template <typename T, typename OpF>
    void allreduce(T* data, std::size_t count, OpF const& op);

    template <typename T>
    void allreduce_sum(T* data, std::size_t count) {
        allreduce(data, count, [](T& a, T const& b) { a += b; });
    }

    template <typename T>
    void allreduce_sum(std::vector<T>& v) {
        allreduce_sum(v.data(), v.size());
    }

    template <typename T>
    T allreduce_max(T x) {
        allreduce(&x, std::size_t(1), [](T& a, T const& b) {
            if (b > a)
                a = b;
        });
        return x;
    }

    template <typename T>
    T allreduce_sum_scalar(T x) {
        allreduce_sum(&x, 1);
        return x;
    }

    /// Gather `count` elements from every rank into recvbuf (size() * count
    /// elements, ordered by rank) on every rank.
    template <typename T>
    void allgather(T const* sendbuf, std::size_t count, T* recvbuf);

    /// Variable-count allgather: concatenates every rank's vector in rank
    /// order on every rank. If `counts` is non-null it receives the
    /// per-rank element counts.
    template <typename T>
    std::vector<T> allgatherv(std::vector<T> const& mine,
                              std::vector<std::size_t>* counts = nullptr);

    // --- configuration and counters ---------------------------------------

    coll::Config const& coll_config() const { return cfg_; }

    /// Set this rank's collective configuration. Must be called with the
    /// same value on every rank (algorithm selection has to agree).
    void set_coll_config(coll::Config cfg) { cfg_ = cfg; }

    CommStats stats() const {
        std::lock_guard<std::mutex> lk(s_->mtx);
        return stats_;
    }
    void reset_stats() {
        std::lock_guard<std::mutex> lk(s_->mtx);
        stats_ = CommStats{};
    }

private:
    friend class Request;
    friend class World;

    static void require_user_tag(int tag) {
        // Negative tags are reserved for library-internal collectives.
        tbp_require(tag >= 0);
    }

    // Internal-tag transport used by the collective algorithms.
    template <typename T>
    void send_i(T const* data, std::size_t count, int dst, int tag) {
        send_raw(data, count, dst, tag);
    }
    template <typename T>
    void recv_i(T* data, std::size_t count, int src, int tag) {
        recv_raw(data, count, src, tag);
    }
    template <typename T>
    void recv_i_dyn(std::vector<T>& v, int src, int tag) {
        recv_raw_dyn(v, src, tag);
    }

    template <typename T>
    void send_raw(T const* data, std::size_t count, int dst, int tag) {
        static_assert(std::is_trivially_copyable_v<T>);
        tbp_require(0 <= dst && dst < size());
        std::vector<std::byte> buf(count * sizeof(T));
        if (!buf.empty())
            std::memcpy(buf.data(), data, buf.size());
        push_message(rank_, dst, tag, std::move(buf));
    }

    template <typename T>
    void recv_raw(T* data, std::size_t count, int src, int tag) {
        static_assert(std::is_trivially_copyable_v<T>);
        tbp_require(0 <= src && src < size());
        recv_bytes(reinterpret_cast<std::byte*>(data), count * sizeof(T), src,
                   tag);
    }

    template <typename T>
    void recv_raw_dyn(std::vector<T>& v, int src, int tag) {
        static_assert(std::is_trivially_copyable_v<T>);
        tbp_require(0 <= src && src < size());
        std::vector<std::byte> raw;
        recv_bytes_dyn(raw, src, tag);
        if (raw.size() % sizeof(T) != 0)
            throw CommError(CommError::Kind::SizeMismatch, "recv(vector)",
                            rank_, src, tag,
                            (raw.size() / sizeof(T) + 1) * sizeof(T),
                            raw.size());
        std::size_t const count = raw.size() / sizeof(T);
        if (!v.empty() && v.size() != count)  // pre-sized must match
            throw CommError(CommError::Kind::SizeMismatch, "recv(vector)",
                            rank_, src, tag, v.size() * sizeof(T),
                            raw.size());
        v.resize(count);
        if (!raw.empty())
            std::memcpy(v.data(), raw.data(), raw.size());
    }

    template <typename T>
    Request irecv_raw(T* data, std::size_t count, int src, int tag) {
        static_assert(std::is_trivially_copyable_v<T>);
        tbp_require(0 <= src && src < size());
        auto op = std::make_shared<detail::RecvOp>();
        op->src = src;
        op->tag = tag;
        op->data = reinterpret_cast<std::byte*>(data);
        op->bytes = count * sizeof(T);
        post_recv(op);
        return Request(this, std::move(op));
    }

    void push_message(int src, int dst, int tag, std::vector<std::byte> buf);
    void recv_bytes(std::byte* data, std::size_t bytes, int src, int tag);
    void recv_bytes_dyn(std::vector<std::byte>& out, int src, int tag);
    void post_recv(std::shared_ptr<detail::RecvOp> op);

    /// Block until the already-posted op completes; charges wait time,
    /// notifies other waiters, and rethrows the op's error. In fault mode
    /// the wait is sliced with exponential backoff and attempts recovery
    /// (re-driving retained copies) on each timeout.
    void wait_posted(std::shared_ptr<detail::RecvOp> const& op);

    /// Fault-mode body of wait_posted; caller holds lk on s_->mtx.
    void wait_posted_fault(std::unique_lock<std::mutex>& lk,
                           std::shared_ptr<detail::RecvOp> const& op);

    /// Complete op in error and unlink it from pending_ (caller holds
    /// s_->mtx).
    void fail_op_locked(detail::RecvOp& op, CommError::Kind kind,
                        std::size_t actual);

    /// Copy a verified payload into op's destination, or record a
    /// dimensioned SizeMismatch error; completes the op either way.
    /// Caller holds s_->mtx.
    void deliver_locked(detail::RecvOp& op, std::byte const* p,
                        std::size_t n);

    /// Match pending receives (post order) against arrived messages.
    /// Caller holds s_->mtx. Returns true if any receive completed.
    bool progress_locked();

    /// Fault-mode matcher for one pending op: in-sequence delivery with
    /// duplicate absorption, embargo honoring, and checksum recovery.
    /// Returns true if op completed (possibly in error). Caller holds
    /// s_->mtx.
    bool match_fault_locked(detail::RecvOp& op);

    // Collective algorithm bodies (defined in collectives.hh).
    template <typename T>
    void bcast_linear(T* data, std::size_t count, int root);
    template <typename T>
    void bcast_tree(T* data, std::size_t count, int root);
    template <typename T, typename OpF>
    void reduce_linear(T* data, std::size_t count, OpF const& op, int root);
    template <typename T, typename OpF>
    void reduce_tree(T* data, std::size_t count, OpF const& op, int root);
    template <typename T, typename OpF>
    void allreduce_recdouble(T* data, std::size_t count, OpF const& op);
    template <typename T, typename OpF>
    void allreduce_ring(T* data, std::size_t count, OpF const& op);
    template <typename T>
    void allgather_linear(T const* sendbuf, std::size_t count, T* recvbuf);
    template <typename T>
    void allgather_tree(T const* sendbuf, std::size_t count, T* recvbuf);
    template <typename T>
    void allgather_ring(T const* sendbuf, std::size_t count, T* recvbuf);

    void count_collective() {
        std::lock_guard<std::mutex> lk(s_->mtx);
        ++stats_.collectives;
    }

    int rank_;
    std::shared_ptr<detail::Shared> s_;
    coll::Config cfg_;

    // Pending receives in post order; guarded by s_->mtx (so the progress
    // loop, blocking receives, and engine-worker comm tasks can share one
    // Communicator without extra locks).
    std::deque<std::shared_ptr<detail::RecvOp>> pending_;
    CommStats stats_;  // guarded by s_->mtx
};

/// A set of virtual ranks executing an SPMD function on threads.
class World {
public:
    explicit World(int nranks);

    int size() const { return nranks_; }

    /// Collective configuration inherited by every Communicator of the next
    /// run(). coll::Config{.legacy = true} selects the oracle paths.
    void set_coll_config(coll::Config cfg) { shared_->coll_cfg = cfg; }
    coll::Config const& coll_config() const { return shared_->coll_cfg; }

    /// Install a seeded chaos plan + retry policy for subsequent run()s.
    /// Installing an inert (all-rates-zero) plan still routes every p2p
    /// message through the reliable enveloped transport — bench_resilience
    /// uses that to price the machinery against the bare fast path.
    void set_fault(fault::FaultPlan plan, fault::RetryConfig retry = {}) {
        shared_->fault = std::make_shared<fault::FaultInjector>(plan, retry);
    }
    void clear_fault() { shared_->fault.reset(); }
    fault::FaultInjector const* fault() const { return shared_->fault.get(); }

    /// Run fn(comm) on every rank; returns when all ranks finish.
    /// Rethrows the first exception raised on any rank.
    void run(std::function<void(Communicator&)> const& fn);

    /// Per-rank / aggregate traffic counters of the last run().
    CommStats stats(int rank) const {
        tbp_require(0 <= rank && rank < nranks_);
        return shared_->rank_stats[static_cast<std::size_t>(rank)];
    }
    CommStats total_stats() const {
        CommStats t;
        for (auto const& s : shared_->rank_stats)
            t += s;
        return t;
    }

    /// Messages left unreceived at the end of the last run() (0 for a
    /// correctly matched program; nonzero flags a send/recv mismatch).
    /// Fault mode: duplicate/re-driven residue whose sequence number was
    /// already delivered is *not* a leak (see teardown_absorbed()).
    std::uint64_t leaked_messages() const { return leaked_; }

    /// Enveloped leftovers classified as harmless at the end of the last
    /// run(): copies of messages the receiver had already delivered
    /// (injected duplicates and re-driven embargoed copies that lost the
    /// race against recovery).
    std::uint64_t teardown_absorbed() const { return teardown_absorbed_; }

private:
    int nranks_;
    std::uint64_t leaked_ = 0;
    std::uint64_t teardown_absorbed_ = 0;
    std::shared_ptr<detail::Shared> shared_;
};

// --- Request inline bodies (need Communicator) -----------------------------

inline bool Request::test() {
    if (!op_)
        return true;
    if (!op_->done) {
        bool completed;
        {
            std::lock_guard<std::mutex> lk(comm_->s_->mtx);
            completed = comm_->progress_locked();
            if (!op_->done && !completed)
                return false;
        }
        if (completed)
            comm_->s_->cv.notify_all();  // other waiters may have finished
    }
    if (op_->done && op_->error)
        std::rethrow_exception(op_->error);
    return op_->done;
}

inline bool Request::done() const { return !op_ || op_->done; }

inline void Request::wait() {
    if (!op_)
        return;
    if (op_->done) {
        if (op_->error)
            std::rethrow_exception(op_->error);
        return;
    }
    comm_->wait_posted(op_);
}

inline void Request::drain() noexcept {
    if (!op_ || (op_->done && !op_->error))
        return;
    try {
        wait();
    } catch (...) {
        // Absorbed by design: the guard's job is to keep teardown safe
        // (the irecv buffer must not be freed under the transport) while
        // still leaving a trace for perf::fault_report. Clearing the op's
        // error makes drain idempotent (move-assign drains, then the
        // destructor drains again).
        std::lock_guard<std::mutex> lk(comm_->s_->mtx);
        ++comm_->stats_.fault.recovery_errors;
        op_->error = nullptr;
    }
}

}  // namespace tbp::comm

#include "comm/collectives.hh"
