// Dimensioned communication errors.
//
// Fault-path diagnostics are only actionable if they say *which* transfer
// went wrong: the peer rank, the tag, and the expected vs. actual byte
// counts. CommError carries those fields structurally (tests and recovery
// code can branch on them) and renders them into the what() string, so a
// bare "size mismatch" can never reach a log without its coordinates.
// Derives from tbp::Error so existing catch sites and EXPECT_THROW
// assertions keep working unchanged.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/error.hh"

namespace tbp::comm {

class CommError : public Error {
public:
    /// What failed, mechanically. Recovery policy keys off this: a
    /// SizeMismatch is a program error (no retry), a Timeout is retried at
    /// the service layer, a RankDead job can fail over to a local provider.
    enum class Kind {
        SizeMismatch,   ///< delivered payload != posted receive count
        ChecksumError,  ///< payload corrupted and no clean copy recoverable
        Timeout,        ///< blocked past the retry budget with no progress
        RankDead,       ///< peer fail-stopped; the message can never arrive
        BarrierTimeout, ///< barrier never filled within the deadline
    };

    CommError(Kind kind, std::string const& op, int self, int peer, int tag,
              std::size_t expected, std::size_t actual)
        : Error(format(kind, op, self, peer, tag, expected, actual)),
          kind_(kind),
          self_(self),
          peer_(peer),
          tag_(tag),
          expected_(expected),
          actual_(actual) {}

    Kind kind() const { return kind_; }
    int self() const { return self_; }
    int peer() const { return peer_; }
    int tag() const { return tag_; }
    std::size_t expected_bytes() const { return expected_; }
    std::size_t actual_bytes() const { return actual_; }

    static char const* kind_name(Kind k) {
        switch (k) {
            case Kind::SizeMismatch: return "size mismatch";
            case Kind::ChecksumError: return "checksum error";
            case Kind::Timeout: return "timeout";
            case Kind::RankDead: return "rank dead";
            case Kind::BarrierTimeout: return "barrier timeout";
        }
        return "?";
    }

private:
    static std::string format(Kind kind, std::string const& op, int self,
                              int peer, int tag, std::size_t expected,
                              std::size_t actual) {
        std::string s = "comm::" + op + ": " + kind_name(kind) + " (rank "
                        + std::to_string(self) + " <- rank "
                        + std::to_string(peer) + ", tag "
                        + std::to_string(tag);
        if (expected != actual || expected != 0)
            s += ", expected " + std::to_string(expected) + " bytes, got "
                 + std::to_string(actual);
        s += ")";
        return s;
    }

    Kind kind_;
    int self_;
    int peer_;
    int tag_;
    std::size_t expected_;
    std::size_t actual_;
};

/// Re-throw helper for the collective entry points: keeps the structural
/// fields of a transport-level failure but stamps the collective's name on
/// the message, so "allreduce: timeout (rank 3 <- rank 1, ...)" reaches the
/// caller instead of an anonymous "recv".
inline CommError annotate(CommError const& e, std::string const& op) {
    return CommError(e.kind(), op, e.self(), e.peer(), e.tag(),
                     e.expected_bytes(), e.actual_bytes());
}

/// Thrown on the poisoned rank itself when its fail-stop point is reached.
/// Distinct from CommError: this is the simulated node *dying*, not a
/// transfer failing — World::run reports it as the rank's exit cause.
class RankFailedError : public Error {
public:
    explicit RankFailedError(int rank, std::uint64_t after_sends)
        : Error("rank " + std::to_string(rank)
                + " fail-stopped (poisoned after "
                + std::to_string(after_sends) + " sends)"),
          rank_(rank) {}

    int rank() const { return rank_; }

private:
    int rank_;
};

}  // namespace tbp::comm
