// 3D (p x q x c) process grid for communication-avoiding 2.5D SUMMA.
//
// The c "replication layers" each hold a p x q 2D grid; ranks are mapped
// layer-major, so global rank r lives on layer r / (p*q) at layer rank
// r % (p*q). Layer 0 owns every DistMatrix tile (the matrices are built on
// the p x q layer grid, which is allowed to be smaller than the
// communicator); layers 1..c-1 hold transient operand replicas and compute
// a 1/c share of the SUMMA interior steps, shipping their C contributions
// back down the "fiber" — the set of ranks {l*p*q + x : l < c} that share
// one layer rank x.
//
// Kept free of transport details so the perf layer (cost_model's
// summa_volume / choose_summa_plan) and core/qdwh.hh's options can share
// the types without pulling in the mailbox machinery.

#pragma once

#include "common/error.hh"
#include "matrix/tiled_matrix.hh"

namespace tbp::comm {

/// Distributed-gemm dispatch plan: the classic 2D SUMMA oracle, the
/// replicated-layer 2.5D variant, or model-driven selection between them
/// (perf::choose_summa_plan minimizes the max_rank_bytes bottleneck).
enum class CommPlan { Auto, Grid2d, Grid25d };

inline char const* comm_plan_name(CommPlan p) {
    switch (p) {
        case CommPlan::Auto: return "auto";
        case CommPlan::Grid2d: return "2d";
        case CommPlan::Grid25d: return "2.5d";
    }
    return "?";
}

/// p x q x c processor grid. c == 1 degenerates to the plain 2D grid.
struct ProcGrid3d {
    int p = 1;  ///< layer-grid rows
    int q = 1;  ///< layer-grid columns
    int c = 1;  ///< replication depth (number of layers)

    int layer_size() const { return p * q; }
    int size() const { return p * q * c; }
    Grid layer() const { return Grid{p, q}; }

    int layer_of(int rank) const { return rank / layer_size(); }
    int layer_rank(int rank) const { return rank % layer_size(); }
    int global(int layer, int lrank) const {
        return layer * layer_size() + lrank;
    }

    /// Contiguous balanced block assignment of the kt SUMMA interior steps
    /// to layers: layer lay computes steps [step_lo, step_hi). Blocks (not
    /// round-robin) matter for the bottleneck: a cyclic l % c map correlates
    /// the step's operand-owner column (l % q) with its layer whenever
    /// gcd(q, c) > 1, concentrating the staging sends on a few ranks and
    /// erasing the 2.5D win. The partition is identical in the
    /// implementation and the traffic model (perf::summa_volume replays it).
    int step_lo(int lay, int kt) const {
        return static_cast<int>(static_cast<long long>(lay) * kt / c);
    }
    int step_hi(int lay, int kt) const { return step_lo(lay + 1, kt); }
    int layer_of_step(int l, int kt) const {
        // Inverse of step_lo: the unique lay with step_lo <= l < step_hi.
        return static_cast<int>((static_cast<long long>(c) * (l + 1) - 1)
                                / kt);
    }

    /// Number of layers whose step block is non-empty (block sizes differ by
    /// at most one, so min(c, kt) blocks hold steps; when kt < c the
    /// populated layers need not be a prefix — test step_lo/step_hi).
    int active_layers(int kt) const { return c < kt ? c : kt; }
};

}  // namespace tbp::comm
