// Task-parallel flat-tree tile QR (PLASMA/SLATE style) and explicit Q
// generation — the communication-avoiding factorization behind QDWH's
// QR-based iteration (paper Eq. (1)) and condition estimate.
//
//   geqrf: A = Q R. Panel k: geqrt on the diagonal tile, then tsqrt folds
//          each tile below into the panel R; trailing tiles get the matching
//          unmqr/tsmqr updates. The reflector data stays in A's lower part
//          and per-tile T factors.
//   ungqr: forms Q (m-by-n, n = A.n) explicitly by applying the reflector
//          sequence in reverse order to [I; 0] — QDWH Algorithm 1 line 32.

#pragma once

#include <algorithm>

#include "blas/householder.hh"
#include "common/flops.hh"
#include "common/types.hh"
#include "linalg/util.hh"
#include "matrix/tiled_matrix.hh"
#include "runtime/engine.hh"

namespace tbp::la {

/// Workspace of T factors for geqrf/ungqr: tile (i, k) holds the compact WY
/// factor for the reflector that panel k generated in block row i.
template <typename T>
TiledMatrix<T> alloc_qr_t(TiledMatrix<T> const& A) {
    // Row i only ever stores the geqrt factor at (i, i) — min(mb_i, nb_i)
    // rows — and tsqrt/ttqrt factors at (i, k) for panels k < i, each
    // needing nb_k rows (a short folded tile still produces a full
    // panel-width T: every panel column gets a reflector). Size each row
    // by its widest consumer instead of the global max panel width, so
    // short diagonal rows of rectangular matrices don't over-allocate.
    int const kt = std::min(A.mt(), A.nt());
    std::vector<int> rb(static_cast<size_t>(A.mt()), 1);
    for (int i = 0; i < A.mt(); ++i) {
        int need = 1;
        if (i < kt)
            need = std::max(need, std::min(A.tile_mb(i), A.tile_nb(i)));
        for (int k = 0; k < std::min(i, kt); ++k)
            need = std::max(need, A.tile_nb(k));
        rb[static_cast<size_t>(i)] = need;
    }
    return TiledMatrix<T>(rb, A.col_tile_sizes(), A.grid());
}

/// QR factorization, flat reduction tree. On return: R in the upper
/// triangle of A, reflectors in A's lower part + Tmat (from alloc_qr_t).
/// `lookahead` promotes trailing updates into the next `lookahead` panel
/// columns onto the priority lane (SLATE's lookahead depth): panels
/// k+1..k+lookahead unblock before the bulk of the trailing matrix is
/// touched. 0 (the default) keeps the plain dataflow schedule; the
/// numerical result is identical for every depth.
template <typename Ex, typename T>
void geqrf(Ex& eng, TiledMatrix<T> A, TiledMatrix<T> Tmat, int lookahead = 0) {
    int const mt = A.mt();
    int const nt = A.nt();
    int const kt = std::min(mt, nt);
    tbp_require(Tmat.mt() == mt && Tmat.nt() == nt);
    auto upd_pr = [lookahead](int k, int j) {
        return (lookahead > 0 && j - k <= lookahead) ? 1 : 0;
    };

    for (int k = 0; k < kt; ++k) {
        int const nbk = A.tile_nb(k);
        double const fl_ge = flops::geqrf(A.tile_mb(k), nbk) * (fma_flops<T>() / 2.0);
        // The geqrt/tsqrt panel chain is the factorization's critical path;
        // priority 1 keeps it ahead of the unmqr/tsmqr trailing updates
        // (SLATE's `omp priority` hint on panel tasks).
        eng.submit("geqrt", fl_ge,
                   {rt::readwrite(A.tile_key(k, k)), rt::write(Tmat.tile_key(k, k))},
                   [A, Tmat, k, nbk] {
                       // geqrt produces min(mb, nb) reflectors, and that is
                       // all alloc_qr_t guarantees for a short diagonal row.
                       int const kk = std::min(A.tile_mb(k), nbk);
                       auto tt = Tmat.tile(k, k).sub(0, 0, kk, kk);
                       blas::geqrt(A.tile(k, k), tt);
                   },
                   /*priority=*/1);

        for (int j = k + 1; j < nt; ++j) {
            double const fl = 4.0 * A.tile_mb(k) * nbk * A.tile_nb(j)
                              * (fma_flops<T>() / 2.0);
            eng.submit("unmqr", fl,
                       {rt::read(A.tile_key(k, k)), rt::read(Tmat.tile_key(k, k)),
                        rt::readwrite(A.tile_key(k, j))},
                       [A, Tmat, k, j, nbk] {
                           int const kk = std::min(A.tile_mb(k), nbk);
                           auto tt = Tmat.tile(k, k).sub(0, 0, kk, kk);
                           blas::unmqr(Op::ConjTrans, A.tile(k, k), tt, A.tile(k, j));
                       },
                       upd_pr(k, j));
        }

        for (int i = k + 1; i < mt; ++i) {
            double const fl_ts = 2.0 * A.tile_mb(i) * nbk * nbk
                                 * (fma_flops<T>() / 2.0);
            eng.submit("tsqrt", fl_ts,
                       {rt::readwrite(A.tile_key(k, k)), rt::readwrite(A.tile_key(i, k)),
                        rt::write(Tmat.tile_key(i, k))},
                       [A, Tmat, i, k, nbk] {
                           auto tt = Tmat.tile(i, k).sub(0, 0, nbk, nbk);
                           blas::tsqrt(A.tile(k, k), A.tile(i, k), tt);
                       },
                       /*priority=*/1);

            for (int j = k + 1; j < nt; ++j) {
                double const fl = 4.0 * A.tile_mb(i) * nbk * A.tile_nb(j)
                                  * (fma_flops<T>() / 2.0);
                eng.submit("tsmqr", fl,
                           {rt::read(A.tile_key(i, k)), rt::read(Tmat.tile_key(i, k)),
                            rt::readwrite(A.tile_key(k, j)),
                            rt::readwrite(A.tile_key(i, j))},
                           [A, Tmat, i, j, k, nbk] {
                               auto tt = Tmat.tile(i, k).sub(0, 0, nbk, nbk);
                               blas::tsmqr(Op::ConjTrans, A.tile(i, k), tt,
                                           A.tile(k, j), A.tile(i, j));
                           },
                           upd_pr(k, j));
            }
        }
    }
    eng.op_fence();
}

/// QR of the QDWH stacked iterate W = [W1; w2_diag I] (Algorithm 1 line
/// 31) exploiting the identity block's structure. W1 is the dense top mt1
/// block rows of W; the caller must NOT initialize the bottom nt block
/// rows (W2): panel k's init task writes W2's diagonal tile w2_diag I
/// right before folding it, and every other W2 tile is either trailing
/// fill (first created by ttmqr's overwriting c2_zero path, then updated
/// by tsmqr) or structurally zero and never touched:
///
///   W2 tile (i, k) at panel k:    i > k   still zero     (no tasks)
///                                 i == k  w2_diag I      (init + ttqrt)
///                                 i < k   dense fill     (tsqrt/tsmqr)
///
/// Compared to dense geqrf on W this skips the set_identity sweep, every
/// tsqrt below W2's diagonal, and every trailing update into a still-zero
/// tile — halving the identity block's fold cost (per-iteration QR flops
/// drop from 10/3 n^3 to 7/3 n^3 at m = n). Requires m >= n stacking
/// (mt1 >= nt) and square W2 diagonal tiles
/// (W.tile_mb(mt1 + i) == W.tile_nb(i)), which [A; I] guarantees.
template <typename Ex, typename T>
void geqrf_stacked_tri(Ex& eng, TiledMatrix<T> W, int mt1, T w2_diag,
                       TiledMatrix<T> Tmat, int lookahead = 0) {
    int const mt = W.mt();
    int const nt = W.nt();
    tbp_require(mt == mt1 + nt && mt1 >= nt);
    tbp_require(Tmat.mt() == mt && Tmat.nt() == nt);
    for (int i = 0; i < nt; ++i)
        tbp_require(W.tile_mb(mt1 + i) == W.tile_nb(i));
    // Same lookahead contract as geqrf: promote updates into the next
    // `lookahead` panel columns so their folds start early.
    auto upd_pr = [lookahead](int k, int j) {
        return (lookahead > 0 && j - k <= lookahead) ? 1 : 0;
    };

    for (int k = 0; k < nt; ++k) {
        int const nbk = W.tile_nb(k);

        // --- dense W1 part of the panel: identical to geqrf ---------------
        double const fl_ge = flops::geqrf(W.tile_mb(k), nbk) * (fma_flops<T>() / 2.0);
        eng.submit("geqrt", fl_ge,
                   {rt::readwrite(W.tile_key(k, k)), rt::write(Tmat.tile_key(k, k))},
                   [W, Tmat, k, nbk] {
                       int const kk = std::min(W.tile_mb(k), nbk);
                       auto tt = Tmat.tile(k, k).sub(0, 0, kk, kk);
                       blas::geqrt(W.tile(k, k), tt);
                   },
                   /*priority=*/1);
        for (int j = k + 1; j < nt; ++j) {
            double const fl = 4.0 * W.tile_mb(k) * nbk * W.tile_nb(j)
                              * (fma_flops<T>() / 2.0);
            eng.submit("unmqr", fl,
                       {rt::read(W.tile_key(k, k)), rt::read(Tmat.tile_key(k, k)),
                        rt::readwrite(W.tile_key(k, j))},
                       [W, Tmat, k, j, nbk] {
                           int const kk = std::min(W.tile_mb(k), nbk);
                           auto tt = Tmat.tile(k, k).sub(0, 0, kk, kk);
                           blas::unmqr(Op::ConjTrans, W.tile(k, k), tt, W.tile(k, j));
                       },
                       upd_pr(k, j));
        }
        for (int i = k + 1; i < mt1; ++i) {
            double const fl_ts = 2.0 * W.tile_mb(i) * nbk * nbk
                                 * (fma_flops<T>() / 2.0);
            eng.submit("tsqrt", fl_ts,
                       {rt::readwrite(W.tile_key(k, k)), rt::readwrite(W.tile_key(i, k)),
                        rt::write(Tmat.tile_key(i, k))},
                       [W, Tmat, i, k, nbk] {
                           auto tt = Tmat.tile(i, k).sub(0, 0, nbk, nbk);
                           blas::tsqrt(W.tile(k, k), W.tile(i, k), tt);
                       },
                       /*priority=*/1);
            for (int j = k + 1; j < nt; ++j) {
                double const fl = 4.0 * W.tile_mb(i) * nbk * W.tile_nb(j)
                                  * (fma_flops<T>() / 2.0);
                eng.submit("tsmqr", fl,
                           {rt::read(W.tile_key(i, k)), rt::read(Tmat.tile_key(i, k)),
                            rt::readwrite(W.tile_key(k, j)),
                            rt::readwrite(W.tile_key(i, j))},
                           [W, Tmat, i, j, k, nbk] {
                               auto tt = Tmat.tile(i, k).sub(0, 0, nbk, nbk);
                               blas::tsmqr(Op::ConjTrans, W.tile(i, k), tt,
                                           W.tile(k, j), W.tile(i, j));
                           },
                           upd_pr(k, j));
            }
        }

        // --- triangle-on-triangle fold of W2's diagonal tile --------------
        int const ik = mt1 + k;
        eng.submit("w2_init", {rt::write(W.tile_key(ik, k))},
                   [W, ik, k, w2_diag] { blas::set(T(0), w2_diag, W.tile(ik, k)); },
                   /*priority=*/1);
        double const fl_tt = flops::ttqrt(nbk, nbk) * (fma_flops<T>() / 2.0);
        eng.submit("ttqrt", fl_tt,
                   {rt::readwrite(W.tile_key(k, k)), rt::readwrite(W.tile_key(ik, k)),
                    rt::write(Tmat.tile_key(ik, k))},
                   [W, Tmat, ik, k, nbk] {
                       auto tt = Tmat.tile(ik, k).sub(0, 0, nbk, nbk);
                       blas::ttqrt(W.tile(k, k), W.tile(ik, k), tt);
                   },
                   /*priority=*/1);
        for (int j = k + 1; j < nt; ++j) {
            // First fill of W2(k, j): structurally zero (and stale in a
            // reused workspace), so ttmqr's c2_zero path overwrites it.
            double const fl = flops::ttmqr(nbk, nbk, W.tile_nb(j), true)
                              * (fma_flops<T>() / 2.0);
            eng.submit("ttmqr", fl,
                       {rt::read(W.tile_key(ik, k)), rt::read(Tmat.tile_key(ik, k)),
                        rt::readwrite(W.tile_key(k, j)), rt::write(W.tile_key(ik, j))},
                       [W, Tmat, ik, j, k, nbk] {
                           auto tt = Tmat.tile(ik, k).sub(0, 0, nbk, nbk);
                           blas::ttmqr(Op::ConjTrans, W.tile(ik, k), tt,
                                       W.tile(k, j), W.tile(ik, j),
                                       /*c2_zero=*/true);
                       },
                       upd_pr(k, j));
        }

        // --- dense fill rows of W2 above its diagonal ---------------------
        for (int i2 = 0; i2 < k; ++i2) {
            int const i = mt1 + i2;
            double const fl_ts = 2.0 * W.tile_mb(i) * nbk * nbk
                                 * (fma_flops<T>() / 2.0);
            eng.submit("tsqrt", fl_ts,
                       {rt::readwrite(W.tile_key(k, k)), rt::readwrite(W.tile_key(i, k)),
                        rt::write(Tmat.tile_key(i, k))},
                       [W, Tmat, i, k, nbk] {
                           auto tt = Tmat.tile(i, k).sub(0, 0, nbk, nbk);
                           blas::tsqrt(W.tile(k, k), W.tile(i, k), tt);
                       },
                       /*priority=*/1);
            for (int j = k + 1; j < nt; ++j) {
                double const fl = 4.0 * W.tile_mb(i) * nbk * W.tile_nb(j)
                                  * (fma_flops<T>() / 2.0);
                eng.submit("tsmqr", fl,
                           {rt::read(W.tile_key(i, k)), rt::read(Tmat.tile_key(i, k)),
                            rt::readwrite(W.tile_key(k, j)),
                            rt::readwrite(W.tile_key(i, j))},
                           [W, Tmat, i, j, k, nbk] {
                               auto tt = Tmat.tile(i, k).sub(0, 0, nbk, nbk);
                               blas::tsmqr(Op::ConjTrans, W.tile(i, k), tt,
                                           W.tile(k, j), W.tile(i, j));
                           },
                           upd_pr(k, j));
            }
        }
    }
    eng.op_fence();
}

/// Form Q (A.m-by-A.n) explicitly from a geqrf-factored A: Q := Q_factored
/// applied to [I; 0]. Q must share A's row tiling; its column tiling must
/// match A's first nt block columns.
template <typename Ex, typename T>
void ungqr(Ex& eng, TiledMatrix<T> A, TiledMatrix<T> Tmat,
           TiledMatrix<T> Q) {
    int const mt = A.mt();
    int const nt = std::min(A.mt(), A.nt());
    tbp_require(Q.mt() == mt && Q.nt() == A.nt());

    set_identity(eng, Q);

    for (int k = nt - 1; k >= 0; --k) {
        int const nbk = A.tile_nb(k);
        // Panel k's product is geqrt_k * ts_{k+1} * ... * ts_{mt-1};
        // applying it means innermost (largest i) first.
        for (int i = mt - 1; i > k; --i) {
            for (int j = k; j < Q.nt(); ++j) {
                double const fl = 4.0 * A.tile_mb(i) * nbk * Q.tile_nb(j)
                                  * (fma_flops<T>() / 2.0);
                eng.submit("tsmqr", fl,
                           {rt::read(A.tile_key(i, k)), rt::read(Tmat.tile_key(i, k)),
                            rt::readwrite(Q.tile_key(k, j)),
                            rt::readwrite(Q.tile_key(i, j))},
                           [A, Tmat, Q, i, j, k, nbk] {
                               auto tt = Tmat.tile(i, k).sub(0, 0, nbk, nbk);
                               blas::tsmqr(Op::NoTrans, A.tile(i, k), tt,
                                           Q.tile(k, j), Q.tile(i, j));
                           });
            }
        }
        for (int j = k; j < Q.nt(); ++j) {
            double const fl = 4.0 * A.tile_mb(k) * nbk * Q.tile_nb(j)
                              * (fma_flops<T>() / 2.0);
            eng.submit("unmqr", fl,
                       {rt::read(A.tile_key(k, k)), rt::read(Tmat.tile_key(k, k)),
                        rt::readwrite(Q.tile_key(k, j))},
                       [A, Tmat, Q, k, j, nbk] {
                           int const kk = std::min(A.tile_mb(k), nbk);
                           auto tt = Tmat.tile(k, k).sub(0, 0, kk, kk);
                           blas::unmqr(Op::NoTrans, A.tile(k, k), tt, Q.tile(k, j));
                       });
        }
    }
    eng.op_fence();
}

/// Form the stacked Q = [Q1; Q2] explicitly from a geqrf_stacked_tri
/// factorization. Q2 (the bottom nt block rows) is block upper triangular
/// — it equals w2_diag R^{-1} — so its strict-lower tiles are only
/// zero-filled, never computed, and each panel touches only the Q2 rows
/// its reflectors can reach. The apply order is the exact reverse of
/// geqrf_stacked_tri's fold order, and the first touch of each upper Q2
/// diagonal tile goes through ttmqr's overwriting c2_zero path.
template <typename Ex, typename T>
void ungqr_stacked_tri(Ex& eng, TiledMatrix<T> W, int mt1,
                       TiledMatrix<T> Tmat, TiledMatrix<T> Q) {
    int const mt = W.mt();
    int const nt = W.nt();
    tbp_require(mt == mt1 + nt && mt1 >= nt);
    tbp_require(Q.mt() == mt && Q.nt() == nt);

    // Q1 := [I; 0]. Off-diagonal Q2 tiles are zeroed explicitly (the
    // storage may be a reused workspace): strict-lower ones stay zero in
    // the final Q, strict-upper ones are read by the fill appliers of
    // panel j before anything writes them. Q2's diagonal tiles are the
    // only ones skipped — ttmqr overwrites them at first touch.
    set_identity(eng, Q.sub(0, 0, mt1, nt));
    for (int j = 0; j < nt; ++j)
        for (int i2 = 0; i2 < nt; ++i2)
            if (i2 != j)
                eng.submit("q2_init", {rt::write(Q.tile_key(mt1 + i2, j))},
                           [Q, mt1, i2, j] {
                               blas::set(T(0), T(0), Q.tile(mt1 + i2, j));
                           });

    for (int k = nt - 1; k >= 0; --k) {
        int const nbk = W.tile_nb(k);

        // Dense W2 fill rows were folded last, so they apply first
        // (newest fold outermost), in reverse row order.
        for (int i2 = k - 1; i2 >= 0; --i2) {
            int const i = mt1 + i2;
            for (int j = k; j < Q.nt(); ++j) {
                double const fl = 4.0 * W.tile_mb(i) * nbk * Q.tile_nb(j)
                                  * (fma_flops<T>() / 2.0);
                eng.submit("tsmqr", fl,
                           {rt::read(W.tile_key(i, k)), rt::read(Tmat.tile_key(i, k)),
                            rt::readwrite(Q.tile_key(k, j)),
                            rt::readwrite(Q.tile_key(i, j))},
                           [W, Tmat, Q, i, j, k, nbk] {
                               auto tt = Tmat.tile(i, k).sub(0, 0, nbk, nbk);
                               blas::tsmqr(Op::NoTrans, W.tile(i, k), tt,
                                           Q.tile(k, j), Q.tile(i, j));
                           });
            }
        }

        // Triangle-on-triangle row: panel k's fold of W2(k, k). Column k is
        // the first touch of Q2(k, k) (structurally zero), later columns
        // update fill created by the panels already applied.
        int const ik = mt1 + k;
        for (int j = k; j < Q.nt(); ++j) {
            bool const first = (j == k);
            double const fl = flops::ttmqr(nbk, nbk, Q.tile_nb(j), first)
                              * (fma_flops<T>() / 2.0);
            std::vector<rt::Access> acc = {
                rt::read(W.tile_key(ik, k)), rt::read(Tmat.tile_key(ik, k)),
                rt::readwrite(Q.tile_key(k, j)),
                first ? rt::write(Q.tile_key(ik, j))
                      : rt::readwrite(Q.tile_key(ik, j))};
            eng.submit("ttmqr", fl, std::move(acc),
                       [W, Tmat, Q, ik, j, k, nbk, first] {
                           auto tt = Tmat.tile(ik, k).sub(0, 0, nbk, nbk);
                           blas::ttmqr(Op::NoTrans, W.tile(ik, k), tt,
                                       Q.tile(k, j), Q.tile(ik, j),
                                       /*c2_zero=*/first);
                       });
        }

        // Dense W1 rows, then the geqrt row — exactly as in ungqr.
        for (int i = mt1 - 1; i > k; --i) {
            for (int j = k; j < Q.nt(); ++j) {
                double const fl = 4.0 * W.tile_mb(i) * nbk * Q.tile_nb(j)
                                  * (fma_flops<T>() / 2.0);
                eng.submit("tsmqr", fl,
                           {rt::read(W.tile_key(i, k)), rt::read(Tmat.tile_key(i, k)),
                            rt::readwrite(Q.tile_key(k, j)),
                            rt::readwrite(Q.tile_key(i, j))},
                           [W, Tmat, Q, i, j, k, nbk] {
                               auto tt = Tmat.tile(i, k).sub(0, 0, nbk, nbk);
                               blas::tsmqr(Op::NoTrans, W.tile(i, k), tt,
                                           Q.tile(k, j), Q.tile(i, j));
                           });
            }
        }
        for (int j = k; j < Q.nt(); ++j) {
            double const fl = 4.0 * W.tile_mb(k) * nbk * Q.tile_nb(j)
                              * (fma_flops<T>() / 2.0);
            eng.submit("unmqr", fl,
                       {rt::read(W.tile_key(k, k)), rt::read(Tmat.tile_key(k, k)),
                        rt::readwrite(Q.tile_key(k, j))},
                       [W, Tmat, Q, k, j, nbk] {
                           int const kk = std::min(W.tile_mb(k), nbk);
                           auto tt = Tmat.tile(k, k).sub(0, 0, kk, kk);
                           blas::unmqr(Op::NoTrans, W.tile(k, k), tt, Q.tile(k, j));
                       });
        }
    }
    eng.op_fence();
}

/// Apply Q (or Q^H) from a geqrf-factored A to a conforming matrix C from
/// the left: C := op(Q) C. Used by the unmqr-based SVD/EVD extensions.
template <typename Ex, typename T>
void unmqr(Ex& eng, Op op, TiledMatrix<T> A, TiledMatrix<T> Tmat,
           TiledMatrix<T> C) {
    int const mt = A.mt();
    int const nt = std::min(A.mt(), A.nt());
    tbp_require(C.mt() == mt);
    tbp_require(op == Op::NoTrans || op == Op::ConjTrans);

    auto apply_panel = [&](int k) {
        int const nbk = A.tile_nb(k);
        auto ts = [&](int i) {
            for (int j = 0; j < C.nt(); ++j) {
                eng.submit("tsmqr",
                           4.0 * A.tile_mb(i) * nbk * C.tile_nb(j)
                               * (fma_flops<T>() / 2.0),
                           {rt::read(A.tile_key(i, k)), rt::read(Tmat.tile_key(i, k)),
                            rt::readwrite(C.tile_key(k, j)),
                            rt::readwrite(C.tile_key(i, j))},
                           [A, Tmat, C, i, j, k, nbk, op] {
                               auto tt = Tmat.tile(i, k).sub(0, 0, nbk, nbk);
                               blas::tsmqr(op, A.tile(i, k), tt, C.tile(k, j),
                                           C.tile(i, j));
                           });
            }
        };
        auto ge = [&] {
            for (int j = 0; j < C.nt(); ++j) {
                eng.submit("unmqr",
                           4.0 * A.tile_mb(k) * nbk * C.tile_nb(j)
                               * (fma_flops<T>() / 2.0),
                           {rt::read(A.tile_key(k, k)), rt::read(Tmat.tile_key(k, k)),
                            rt::readwrite(C.tile_key(k, j))},
                           [A, Tmat, C, k, j, nbk, op] {
                               int const kk = std::min(A.tile_mb(k), nbk);
                               auto tt = Tmat.tile(k, k).sub(0, 0, kk, kk);
                               blas::unmqr(op, A.tile(k, k), tt, C.tile(k, j));
                           });
            }
        };
        if (op == Op::ConjTrans) {
            // Q^H = ts_{mt-1}^H ... ts_{k+1}^H geqrt_k^H: geqrt first.
            ge();
            for (int i = k + 1; i < mt; ++i)
                ts(i);
        } else {
            for (int i = mt - 1; i > k; --i)
                ts(i);
            ge();
        }
    };

    if (op == Op::ConjTrans) {
        for (int k = 0; k < nt; ++k)
            apply_panel(k);
    } else {
        for (int k = nt - 1; k >= 0; --k)
            apply_panel(k);
    }
    eng.op_fence();
}

}  // namespace tbp::la
