// Task-parallel flat-tree tile QR (PLASMA/SLATE style) and explicit Q
// generation — the communication-avoiding factorization behind QDWH's
// QR-based iteration (paper Eq. (1)) and condition estimate.
//
//   geqrf: A = Q R. Panel k: geqrt on the diagonal tile, then tsqrt folds
//          each tile below into the panel R; trailing tiles get the matching
//          unmqr/tsmqr updates. The reflector data stays in A's lower part
//          and per-tile T factors.
//   ungqr: forms Q (m-by-n, n = A.n) explicitly by applying the reflector
//          sequence in reverse order to [I; 0] — QDWH Algorithm 1 line 32.

#pragma once

#include <algorithm>

#include "blas/householder.hh"
#include "common/flops.hh"
#include "common/types.hh"
#include "linalg/util.hh"
#include "matrix/tiled_matrix.hh"
#include "runtime/engine.hh"

namespace tbp::la {

/// Workspace of T factors for geqrf/ungqr: tile (i, k) holds the compact WY
/// factor for the reflector that panel k generated in block row i.
template <typename T>
TiledMatrix<T> alloc_qr_t(TiledMatrix<T> const& A) {
    // Row tile sizes: max panel width, so every T(i, k) sub-fits.
    int nb_max = 0;
    for (int j = 0; j < A.nt(); ++j)
        nb_max = std::max(nb_max, A.tile_nb(j));
    std::vector<int> rb(static_cast<size_t>(A.mt()), nb_max);
    return TiledMatrix<T>(rb, A.col_tile_sizes(), A.grid());
}

/// QR factorization, flat reduction tree. On return: R in the upper
/// triangle of A, reflectors in A's lower part + Tmat (from alloc_qr_t).
template <typename T>
void geqrf(rt::Engine& eng, TiledMatrix<T> A, TiledMatrix<T> Tmat) {
    int const mt = A.mt();
    int const nt = A.nt();
    int const kt = std::min(mt, nt);
    tbp_require(Tmat.mt() == mt && Tmat.nt() == nt);

    for (int k = 0; k < kt; ++k) {
        int const nbk = A.tile_nb(k);
        double const fl_ge = flops::geqrf(A.tile_mb(k), nbk) * (fma_flops<T>() / 2.0);
        // The geqrt/tsqrt panel chain is the factorization's critical path;
        // priority 1 keeps it ahead of the unmqr/tsmqr trailing updates
        // (SLATE's `omp priority` hint on panel tasks).
        eng.submit("geqrt", fl_ge,
                   {rt::readwrite(A.tile_key(k, k)), rt::write(Tmat.tile_key(k, k))},
                   [A, Tmat, k, nbk] {
                       auto tt = Tmat.tile(k, k).sub(0, 0, nbk, nbk);
                       blas::geqrt(A.tile(k, k), tt);
                   },
                   /*priority=*/1);

        for (int j = k + 1; j < nt; ++j) {
            double const fl = 4.0 * A.tile_mb(k) * nbk * A.tile_nb(j)
                              * (fma_flops<T>() / 2.0);
            eng.submit("unmqr", fl,
                       {rt::read(A.tile_key(k, k)), rt::read(Tmat.tile_key(k, k)),
                        rt::readwrite(A.tile_key(k, j))},
                       [A, Tmat, k, j, nbk] {
                           int const kk = std::min(A.tile_mb(k), nbk);
                           auto tt = Tmat.tile(k, k).sub(0, 0, kk, kk);
                           blas::unmqr(Op::ConjTrans, A.tile(k, k), tt, A.tile(k, j));
                       });
        }

        for (int i = k + 1; i < mt; ++i) {
            double const fl_ts = 2.0 * A.tile_mb(i) * nbk * nbk
                                 * (fma_flops<T>() / 2.0);
            eng.submit("tsqrt", fl_ts,
                       {rt::readwrite(A.tile_key(k, k)), rt::readwrite(A.tile_key(i, k)),
                        rt::write(Tmat.tile_key(i, k))},
                       [A, Tmat, i, k, nbk] {
                           auto tt = Tmat.tile(i, k).sub(0, 0, nbk, nbk);
                           blas::tsqrt(A.tile(k, k), A.tile(i, k), tt);
                       },
                       /*priority=*/1);

            for (int j = k + 1; j < nt; ++j) {
                double const fl = 4.0 * A.tile_mb(i) * nbk * A.tile_nb(j)
                                  * (fma_flops<T>() / 2.0);
                eng.submit("tsmqr", fl,
                           {rt::read(A.tile_key(i, k)), rt::read(Tmat.tile_key(i, k)),
                            rt::readwrite(A.tile_key(k, j)),
                            rt::readwrite(A.tile_key(i, j))},
                           [A, Tmat, i, j, k, nbk] {
                               auto tt = Tmat.tile(i, k).sub(0, 0, nbk, nbk);
                               blas::tsmqr(Op::ConjTrans, A.tile(i, k), tt,
                                           A.tile(k, j), A.tile(i, j));
                           });
            }
        }
    }
    eng.op_fence();
}

/// Form Q (A.m-by-A.n) explicitly from a geqrf-factored A: Q := Q_factored
/// applied to [I; 0]. Q must share A's row tiling; its column tiling must
/// match A's first nt block columns.
template <typename T>
void ungqr(rt::Engine& eng, TiledMatrix<T> A, TiledMatrix<T> Tmat,
           TiledMatrix<T> Q) {
    int const mt = A.mt();
    int const nt = std::min(A.mt(), A.nt());
    tbp_require(Q.mt() == mt && Q.nt() == A.nt());

    set_identity(eng, Q);

    for (int k = nt - 1; k >= 0; --k) {
        int const nbk = A.tile_nb(k);
        // Panel k's product is geqrt_k * ts_{k+1} * ... * ts_{mt-1};
        // applying it means innermost (largest i) first.
        for (int i = mt - 1; i > k; --i) {
            for (int j = k; j < Q.nt(); ++j) {
                double const fl = 4.0 * A.tile_mb(i) * nbk * Q.tile_nb(j)
                                  * (fma_flops<T>() / 2.0);
                eng.submit("tsmqr", fl,
                           {rt::read(A.tile_key(i, k)), rt::read(Tmat.tile_key(i, k)),
                            rt::readwrite(Q.tile_key(k, j)),
                            rt::readwrite(Q.tile_key(i, j))},
                           [A, Tmat, Q, i, j, k, nbk] {
                               auto tt = Tmat.tile(i, k).sub(0, 0, nbk, nbk);
                               blas::tsmqr(Op::NoTrans, A.tile(i, k), tt,
                                           Q.tile(k, j), Q.tile(i, j));
                           });
            }
        }
        for (int j = k; j < Q.nt(); ++j) {
            double const fl = 4.0 * A.tile_mb(k) * nbk * Q.tile_nb(j)
                              * (fma_flops<T>() / 2.0);
            eng.submit("unmqr", fl,
                       {rt::read(A.tile_key(k, k)), rt::read(Tmat.tile_key(k, k)),
                        rt::readwrite(Q.tile_key(k, j))},
                       [A, Tmat, Q, k, j, nbk] {
                           int const kk = std::min(A.tile_mb(k), nbk);
                           auto tt = Tmat.tile(k, k).sub(0, 0, kk, kk);
                           blas::unmqr(Op::NoTrans, A.tile(k, k), tt, Q.tile(k, j));
                       });
        }
    }
    eng.op_fence();
}

/// Apply Q (or Q^H) from a geqrf-factored A to a conforming matrix C from
/// the left: C := op(Q) C. Used by the unmqr-based SVD/EVD extensions.
template <typename T>
void unmqr(rt::Engine& eng, Op op, TiledMatrix<T> A, TiledMatrix<T> Tmat,
           TiledMatrix<T> C) {
    int const mt = A.mt();
    int const nt = std::min(A.mt(), A.nt());
    tbp_require(C.mt() == mt);
    tbp_require(op == Op::NoTrans || op == Op::ConjTrans);

    auto apply_panel = [&](int k) {
        int const nbk = A.tile_nb(k);
        auto ts = [&](int i) {
            for (int j = 0; j < C.nt(); ++j) {
                eng.submit("tsmqr",
                           4.0 * A.tile_mb(i) * nbk * C.tile_nb(j)
                               * (fma_flops<T>() / 2.0),
                           {rt::read(A.tile_key(i, k)), rt::read(Tmat.tile_key(i, k)),
                            rt::readwrite(C.tile_key(k, j)),
                            rt::readwrite(C.tile_key(i, j))},
                           [A, Tmat, C, i, j, k, nbk, op] {
                               auto tt = Tmat.tile(i, k).sub(0, 0, nbk, nbk);
                               blas::tsmqr(op, A.tile(i, k), tt, C.tile(k, j),
                                           C.tile(i, j));
                           });
            }
        };
        auto ge = [&] {
            for (int j = 0; j < C.nt(); ++j) {
                eng.submit("unmqr",
                           4.0 * A.tile_mb(k) * nbk * C.tile_nb(j)
                               * (fma_flops<T>() / 2.0),
                           {rt::read(A.tile_key(k, k)), rt::read(Tmat.tile_key(k, k)),
                            rt::readwrite(C.tile_key(k, j))},
                           [A, Tmat, C, k, j, nbk, op] {
                               int const kk = std::min(A.tile_mb(k), nbk);
                               auto tt = Tmat.tile(k, k).sub(0, 0, kk, kk);
                               blas::unmqr(op, A.tile(k, k), tt, C.tile(k, j));
                           });
            }
        };
        if (op == Op::ConjTrans) {
            // Q^H = ts_{mt-1}^H ... ts_{k+1}^H geqrt_k^H: geqrt first.
            ge();
            for (int i = k + 1; i < mt; ++i)
                ts(i);
        } else {
            for (int i = mt - 1; i > k; --i)
                ts(i);
            ge();
        }
    };

    if (op == Op::ConjTrans) {
        for (int k = 0; k < nt; ++k)
            apply_panel(k);
    } else {
        for (int k = nt - 1; k >= 0; --k)
            apply_panel(k);
    }
    eng.op_fence();
}

}  // namespace tbp::la
