// Separately-rounded SUMMA step accumulation.
//
// A SUMMA step's update C += alpha * op(A_il) * op(B_lj) is, in the plain
// tile gemm, accumulated element-by-element into C across the inner k loop
// — the per-step contribution never exists as a single rounded value, so it
// cannot be computed on another rank and shipped. The helpers below compute
// each step's contribution into a zeroed product tile first (one rounding
// per element) and fold it with a single elementwise add. Every distributed
// SUMMA path (the 2D SPMD oracle, the engine-task variant, the 2.5D
// replicated-layer path, and dqdwh's trailing Q1 Q2^H update) goes through
// this primitive, which is exactly what makes the 2.5D path's shipped
// product tiles bit-identical to the 2D oracle's local ascending-l fold:
// the fold is C = ((beta*C + z_0) + z_1) + ... with each z_l a rounded
// value that is the same no matter which layer computed it.

#pragma once

#include <vector>

#include "blas/gemm.hh"
#include "blas/util.hh"
#include "matrix/tile.hh"

namespace tbp::la {

/// Per-thread product-tile scratch: distributed gemm tasks on distinct C
/// tiles may run concurrently on one rank's engine workers, so the scratch
/// is thread-local (same pattern as the kernel pack arenas).
template <typename T>
inline std::vector<T>& summa_step_scratch() {
    thread_local std::vector<T> buf;
    return buf;
}

/// z := alpha * op(a) * op(b) into caller storage (beta = 0 semantics: z is
/// written without being read). This is the value a remote 2.5D layer ships.
template <typename T>
void summa_step_product(Op opA, Op opB, T alpha, Tile<T> const& a,
                        Tile<T> const& b, Tile<T> const& z) {
    blas::gemm(opA, opB, alpha, a, b, T(0), z);
}

/// c += round(alpha * op(a) * op(b)): the product is computed into the
/// thread-local scratch and folded with one elementwise add, so the step
/// contribution is a single rounded tile independent of where it was
/// computed.
template <typename T>
void summa_step_accumulate(Op opA, Op opB, T alpha, Tile<T> const& a,
                           Tile<T> const& b, Tile<T> const& c) {
    auto& buf = summa_step_scratch<T>();
    buf.resize(static_cast<size_t>(c.mb()) * c.nb());
    Tile<T> z(buf.data(), c.mb(), c.nb(), c.mb());
    summa_step_product(opA, opB, alpha, a, b, z);
    blas::add(T(1), z, T(1), c);
}

}  // namespace tbp::la
