// Task-parallel tiled matrix-matrix multiply, plus the gemmA variant of
// Section 6.2 (tall A times skinny B with a reduction into the small C).

#pragma once

#include <memory>
#include <vector>

#include "blas/gemm.hh"
#include "blas/level3.hh"
#include "blas/util.hh"
#include "common/flops.hh"
#include "common/types.hh"
#include "matrix/tiled_matrix.hh"
#include "runtime/engine.hh"

namespace tbp::la {

/// C := alpha * op(A) * op(B) + beta * C.
///
/// One task per C tile performs its full k-accumulation; parallelism comes
/// from the mt x nt independent C tiles, matching SLATE's gemm structure.
/// Tile boundaries of op(A), op(B) and C must conform.
template <typename Ex, typename T>
void gemm(Ex& eng, Op opA, Op opB, T alpha, TiledMatrix<T> A,
          TiledMatrix<T> B, T beta, TiledMatrix<T> C) {
    int const mt = C.mt();
    int const nt = C.nt();
    int const kt = (opA == Op::NoTrans) ? A.nt() : A.mt();
    tbp_require(((opA == Op::NoTrans) ? A.mt() : A.nt()) == mt);
    tbp_require(((opB == Op::NoTrans) ? B.mt() : B.nt()) == kt);
    tbp_require(((opB == Op::NoTrans) ? B.nt() : B.mt()) == nt);

    for (int j = 0; j < nt; ++j) {
        for (int i = 0; i < mt; ++i) {
            std::vector<rt::Access> acc;
            acc.reserve(static_cast<size_t>(2 * kt) + 1);
            double fl = 0;
            for (int l = 0; l < kt; ++l) {
                acc.push_back(rt::read(
                    opA == Op::NoTrans ? A.tile_key(i, l) : A.tile_key(l, i)));
                acc.push_back(rt::read(
                    opB == Op::NoTrans ? B.tile_key(l, j) : B.tile_key(j, l)));
                int const kk = (opA == Op::NoTrans) ? A.tile_nb(l) : A.tile_mb(l);
                fl += flops::gemm(C.tile_mb(i), C.tile_nb(j), kk)
                      * (fma_flops<T>() / 2.0);
            }
            acc.push_back(beta == T(0) ? rt::write(C.tile_key(i, j))
                                       : rt::readwrite(C.tile_key(i, j)));
            eng.submit("gemm", fl, std::move(acc),
                       [=] {
                           T b = beta;
                           for (int l = 0; l < kt; ++l) {
                               auto at = (opA == Op::NoTrans) ? A.tile(i, l)
                                                              : A.tile(l, i);
                               auto bt = (opB == Op::NoTrans) ? B.tile(l, j)
                                                              : B.tile(j, l);
                               blas::gemm(opA, opB, alpha, at, bt, b, C.tile(i, j));
                               b = T(1);
                           }
                       });
        }
    }
    eng.op_fence();
}

/// C := alpha * A * B^H + beta * C where B is block UPPER triangular:
/// tiles (j, l) with l < j are structurally zero and never read. This is
/// the Q1 Q2^H update of the structured QDWH iterate — Q2 = R^{-1} is
/// upper triangular, so block column j of C only sums over l >= j, halving
/// the gemm flops (2n^3 -> n^3) relative to the dense product.
template <typename Ex, typename T>
void gemm_rt_upper(Ex& eng, T alpha, TiledMatrix<T> A,
                   TiledMatrix<T> B, T beta, TiledMatrix<T> C) {
    int const mt = C.mt();
    int const nt = C.nt();
    int const kt = A.nt();
    tbp_require(A.mt() == mt && B.mt() == nt && B.nt() == kt);

    for (int j = 0; j < nt; ++j) {
        for (int i = 0; i < mt; ++i) {
            std::vector<rt::Access> acc;
            acc.reserve(static_cast<size_t>(2 * (kt - j)) + 1);
            double fl = 0;
            for (int l = j; l < kt; ++l) {
                acc.push_back(rt::read(A.tile_key(i, l)));
                acc.push_back(rt::read(B.tile_key(j, l)));
                fl += flops::gemm(C.tile_mb(i), C.tile_nb(j), A.tile_nb(l))
                      * (fma_flops<T>() / 2.0);
            }
            acc.push_back(beta == T(0) ? rt::write(C.tile_key(i, j))
                                       : rt::readwrite(C.tile_key(i, j)));
            eng.submit("gemm", fl, std::move(acc),
                       [=] {
                           T b = beta;
                           for (int l = j; l < kt; ++l) {
                               blas::gemm(Op::NoTrans, Op::ConjTrans, alpha,
                                          A.tile(i, l), B.tile(j, l), b,
                                          C.tile(i, j));
                               b = T(1);
                           }
                       });
        }
    }
    eng.op_fence();
}

/// Out-of-place variant: C := alpha * A * B^H + beta * D with the same
/// block-upper-triangular B, D and C conforming and distinct. QDWH's QR
/// update uses this to write A_k into the spare rotation buffer while
/// A_{k-1} (= D) survives untouched for the convergence check — no
/// per-iteration copy sweep.
template <typename Ex, typename T>
void gemm_rt_upper(Ex& eng, T alpha, TiledMatrix<T> A,
                   TiledMatrix<T> B, T beta, TiledMatrix<T> D,
                   TiledMatrix<T> C) {
    int const mt = C.mt();
    int const nt = C.nt();
    int const kt = A.nt();
    tbp_require(A.mt() == mt && B.mt() == nt && B.nt() == kt);
    tbp_require(D.mt() == mt && D.nt() == nt);

    for (int j = 0; j < nt; ++j) {
        for (int i = 0; i < mt; ++i) {
            std::vector<rt::Access> acc;
            acc.reserve(static_cast<size_t>(2 * (kt - j)) + 2);
            double fl = 0;
            for (int l = j; l < kt; ++l) {
                acc.push_back(rt::read(A.tile_key(i, l)));
                acc.push_back(rt::read(B.tile_key(j, l)));
                fl += flops::gemm(C.tile_mb(i), C.tile_nb(j), A.tile_nb(l))
                      * (fma_flops<T>() / 2.0);
            }
            acc.push_back(rt::read(D.tile_key(i, j)));
            acc.push_back(rt::write(C.tile_key(i, j)));
            eng.submit("gemm", fl, std::move(acc),
                       [=] {
                           blas::copy(D.tile(i, j), C.tile(i, j));
                           blas::scale(beta, C.tile(i, j));
                           for (int l = j; l < kt; ++l)
                               blas::gemm(Op::NoTrans, Op::ConjTrans, alpha,
                                          A.tile(i, l), B.tile(j, l), T(1),
                                          C.tile(i, j));
                       });
        }
    }
    eng.op_fence();
}

/// gemmA (paper Section 6.2): C := alpha * op(A) * B + beta * C where C is
/// small relative to A (in QDWH's norm2est, B and C are single-column
/// vectors). A plain tiled gemm would expose only C.mt x C.nt = O(mt) tasks
/// with long serial k-chains; gemmA instead computes per-(i, l) partial
/// products into a private workspace ("tiles of B are sent to where the
/// tiles of A reside") and then reduces the partials into each C tile
/// ("parallel reduction to where the output C tiles reside").
template <typename Ex, typename T>
void gemmA(Ex& eng, Op opA, T alpha, TiledMatrix<T> A,
           TiledMatrix<T> B, T beta, TiledMatrix<T> C) {
    int const mt = C.mt();
    int const nt = C.nt();
    int const kt = (opA == Op::NoTrans) ? A.nt() : A.mt();
    tbp_require(((opA == Op::NoTrans) ? A.mt() : A.nt()) == mt);
    tbp_require(B.mt() == kt && B.nt() == nt);

    for (int j = 0; j < nt; ++j) {
        for (int i = 0; i < mt; ++i) {
            int const mb = C.tile_mb(i);
            int const nb = C.tile_nb(j);

            // Workspace of kt partial tiles; shared_ptr keeps it alive
            // across the partial tasks and the reduction task.
            auto work = std::make_shared<std::vector<T>>(
                static_cast<size_t>(kt) * mb * nb);

            for (int l = 0; l < kt; ++l) {
                auto a_key = (opA == Op::NoTrans) ? A.tile_key(i, l)
                                                  : A.tile_key(l, i);
                int const kk = (opA == Op::NoTrans) ? A.tile_nb(l) : A.tile_mb(l);
                double const fl =
                    flops::gemm(mb, nb, kk) * (fma_flops<T>() / 2.0);
                eng.submit(
                    "gemmA_part", fl,
                    {rt::read(a_key), rt::read(B.tile_key(l, j)),
                     rt::write(work->data() + static_cast<size_t>(l) * mb * nb)},
                    [=] {
                        Tile<T> wt(work->data() + static_cast<size_t>(l) * mb * nb,
                                   mb, nb, mb);
                        auto at = (opA == Op::NoTrans) ? A.tile(i, l) : A.tile(l, i);
                        blas::gemm(opA, Op::NoTrans, alpha, at, B.tile(l, j),
                                   T(0), wt);
                    });
            }

            // Reduction into the C tile.
            std::vector<rt::Access> acc;
            for (int l = 0; l < kt; ++l)
                acc.push_back(rt::read(work->data() + static_cast<size_t>(l) * mb * nb));
            acc.push_back(beta == T(0) ? rt::write(C.tile_key(i, j))
                                       : rt::readwrite(C.tile_key(i, j)));
            // The reduction gates everything downstream of C (norm2est's
            // power-iteration chain); run it ahead of unrelated updates.
            eng.submit("gemmA_reduce", 0.0, std::move(acc), [=] {
                auto ct = C.tile(i, j);
                for (int c = 0; c < nb; ++c)
                    for (int r = 0; r < mb; ++r)
                        ct(r, c) = (beta == T(0)) ? T(0) : beta * ct(r, c);
                for (int l = 0; l < kt; ++l) {
                    Tile<T> wt(work->data() + static_cast<size_t>(l) * mb * nb,
                               mb, nb, mb);
                    for (int c = 0; c < nb; ++c)
                        for (int r = 0; r < mb; ++r)
                            ct(r, c) += wt(r, c);
                }
            },
            /*priority=*/1);
        }
    }
    eng.op_fence();
}

/// Hermitian rank-k update on the tiled level:
///   op == NoTrans:   C := alpha A A^H + beta C   (A is C.mt x kt)
///   op == ConjTrans: C := alpha A^H A + beta C   (A is kt x C.mt)
/// Only the `uplo` triangle of C is updated. alpha, beta real (herk).
template <typename Ex, typename T>
void herk(Ex& eng, Uplo uplo, Op op, real_t<T> alpha, TiledMatrix<T> A,
          real_t<T> beta, TiledMatrix<T> C) {
    int const nt = C.nt();
    tbp_require(C.mt() == nt);
    int const kt = (op == Op::NoTrans) ? A.nt() : A.mt();
    tbp_require(((op == Op::NoTrans) ? A.mt() : A.nt()) == nt);

    for (int j = 0; j < nt; ++j) {
        int const ilo = (uplo == Uplo::Lower) ? j : 0;
        int const ihi = (uplo == Uplo::Lower) ? nt : j + 1;
        for (int i = ilo; i < ihi; ++i) {
            std::vector<rt::Access> acc;
            double fl = 0;
            for (int l = 0; l < kt; ++l) {
                acc.push_back(rt::read(
                    op == Op::NoTrans ? A.tile_key(i, l) : A.tile_key(l, i)));
                if (i != j)
                    acc.push_back(rt::read(
                        op == Op::NoTrans ? A.tile_key(j, l) : A.tile_key(l, j)));
                int const kk = (op == Op::NoTrans) ? A.tile_nb(l) : A.tile_mb(l);
                fl += (i == j ? flops::syrk(C.tile_mb(i), kk)
                              : flops::gemm(C.tile_mb(i), C.tile_nb(j), kk))
                      * (fma_flops<T>() / 2.0);
            }
            acc.push_back(rt::readwrite(C.tile_key(i, j)));
            eng.submit("herk", fl, std::move(acc), [=] {
                real_t<T> b = beta;
                for (int l = 0; l < kt; ++l) {
                    if (i == j) {
                        auto at = (op == Op::NoTrans) ? A.tile(i, l) : A.tile(l, i);
                        blas::herk(uplo, op, alpha, at, b, C.tile(i, j));
                    } else {
                        // Off-diagonal tile: general product of the two
                        // distinct block rows (or columns) of A.
                        if (op == Op::NoTrans) {
                            blas::gemm(Op::NoTrans, Op::ConjTrans,
                                       from_real<T>(alpha), A.tile(i, l),
                                       A.tile(j, l), from_real<T>(b),
                                       C.tile(i, j));
                        } else {
                            blas::gemm(Op::ConjTrans, Op::NoTrans,
                                       from_real<T>(alpha), A.tile(l, i),
                                       A.tile(l, j), from_real<T>(b),
                                       C.tile(i, j));
                        }
                    }
                    b = real_t<T>(1);
                }
            });
        }
    }
    eng.op_fence();
}

}  // namespace tbp::la
