// Task-parallel tiled triangular solve with multiple right-hand sides.
//
// Supports both sides, both triangles and all ops; QDWH uses
//   Right/Lower/ConjTrans + Right/Lower/NoTrans   (A := A Z^-1 via chol(Z))
//   Left/Lower/{NoTrans,ConjTrans}                (posv solves)
//   Left/Upper/{NoTrans,ConjTrans}                (trcondest solves with R)
// The triangular matrix A must be square at the tile level; only tiles in
// its `uplo` triangle are referenced.

#pragma once

#include <vector>

#include "blas/gemm.hh"
#include "blas/level3.hh"
#include "blas/util.hh"
#include "common/flops.hh"
#include "common/types.hh"
#include "matrix/tiled_matrix.hh"
#include "runtime/engine.hh"

namespace tbp::la {

template <typename Ex, typename T>
void trsm(Ex& eng, Side side, Uplo uplo, Op op, Diag diag, T alpha,
          TiledMatrix<T> A, TiledMatrix<T> B) {
    int const mt = B.mt();
    int const nt = B.nt();
    int const at = (side == Side::Left) ? mt : nt;
    tbp_require(A.mt() == at && A.nt() == at);

    // Tile of op(A) at block position (i, j), and whether op(A) is
    // effectively upper triangular.
    bool const eff_upper = (uplo == Uplo::Upper) == (op == Op::NoTrans);
    auto a_tile = [A, op](int i, int j) {
        return (op == Op::NoTrans) ? A.tile(i, j) : A.tile(j, i);
    };
    auto a_key = [A, op](int i, int j) {
        return (op == Op::NoTrans) ? A.tile_key(i, j) : A.tile_key(j, i);
    };

    if (alpha != T(1)) {
        for (int j = 0; j < nt; ++j)
            for (int i = 0; i < mt; ++i)
                eng.submit("trsm_scale", {rt::readwrite(B.tile_key(i, j))},
                           [B, alpha, i, j] { blas::scale(alpha, B.tile(i, j)); });
    }

    if (side == Side::Left) {
        // Solve op(A) X = B. Left-looking over block rows of B.
        auto solve_row = [&](int k) {
            for (int j = 0; j < nt; ++j) {
                double const fl = flops::trsm_left(B.tile_mb(k), B.tile_nb(j))
                                  * (fma_flops<T>() / 2.0);
                // Diagonal-block solves form the critical chain; priority 1
                // keeps them ahead of the trsm_gemm trailing updates.
                eng.submit("trsm", fl,
                           {rt::read(a_key(k, k)), rt::readwrite(B.tile_key(k, j))},
                           [=] {
                               blas::trsm(Side::Left, uplo, op, diag, T(1),
                                          a_tile(k, k), B.tile(k, j));
                           },
                           /*priority=*/1);
            }
        };
        auto update_row = [&](int i, int k) {
            // B(i, :) -= op(A)(i, k) * B(k, :)
            for (int j = 0; j < nt; ++j) {
                double const fl =
                    flops::gemm(B.tile_mb(i), B.tile_nb(j), B.tile_mb(k))
                    * (fma_flops<T>() / 2.0);
                eng.submit("trsm_gemm", fl,
                           {rt::read(a_key(i, k)), rt::read(B.tile_key(k, j)),
                            rt::readwrite(B.tile_key(i, j))},
                           [=] {
                               blas::gemm(op, Op::NoTrans, T(-1), a_tile(i, k),
                                          B.tile(k, j), T(1), B.tile(i, j));
                           });
            }
        };
        if (!eff_upper) {
            for (int k = 0; k < mt; ++k) {
                solve_row(k);
                for (int i = k + 1; i < mt; ++i)
                    update_row(i, k);
            }
        } else {
            for (int k = mt - 1; k >= 0; --k) {
                solve_row(k);
                for (int i = k - 1; i >= 0; --i)
                    update_row(i, k);
            }
        }
    } else {
        // Solve X op(A) = B. Left-looking over block columns of B.
        auto solve_col = [&](int k) {
            for (int i = 0; i < mt; ++i) {
                double const fl = flops::trsm_right(B.tile_mb(i), B.tile_nb(k))
                                  * (fma_flops<T>() / 2.0);
                eng.submit("trsm", fl,
                           {rt::read(a_key(k, k)), rt::readwrite(B.tile_key(i, k))},
                           [=] {
                               blas::trsm(Side::Right, uplo, op, diag, T(1),
                                          a_tile(k, k), B.tile(i, k));
                           },
                           /*priority=*/1);
            }
        };
        auto update_col = [&](int j, int k) {
            // B(:, j) -= B(:, k) * op(A)(k, j)
            for (int i = 0; i < mt; ++i) {
                double const fl =
                    flops::gemm(B.tile_mb(i), B.tile_nb(j), B.tile_nb(k))
                    * (fma_flops<T>() / 2.0);
                eng.submit("trsm_gemm", fl,
                           {rt::read(a_key(k, j)), rt::read(B.tile_key(i, k)),
                            rt::readwrite(B.tile_key(i, j))},
                           [=] {
                               blas::gemm(Op::NoTrans, op, T(-1), B.tile(i, k),
                                          a_tile(k, j), T(1), B.tile(i, j));
                           });
            }
        };
        if (eff_upper) {
            for (int k = 0; k < nt; ++k) {
                solve_col(k);
                for (int j = k + 1; j < nt; ++j)
                    update_col(j, k);
            }
        } else {
            for (int k = nt - 1; k >= 0; --k) {
                solve_col(k);
                for (int j = k - 1; j >= 0; --j)
                    update_col(j, k);
            }
        }
    }
    eng.op_fence();
}

}  // namespace tbp::la
