// Task-parallel tiled Cholesky factorization and positive-definite solve.
//
// Right-looking tile Cholesky: once a panel's trsm tiles are done, the
// trailing update tiles run concurrently with the next panel's potrf —
// SLATE's lookahead, obtained for free from the dataflow dependencies.

#pragma once

#include "blas/factor.hh"
#include "blas/gemm.hh"
#include "blas/level3.hh"
#include "common/flops.hh"
#include "common/types.hh"
#include "linalg/trsm.hh"
#include "matrix/tiled_matrix.hh"
#include "runtime/engine.hh"

namespace tbp::la {

/// Cholesky factorization A = L L^H (uplo == Lower) of a Hermitian positive
/// definite tiled matrix; L overwrites the lower triangle. Upper variant
/// factors A = U^H U. Throws tbp::Error via the tile kernel if A is not HPD.
/// `lookahead` promotes trailing updates into the next `lookahead` panel
/// columns onto the priority lane (see geqrf); 0 keeps the plain schedule.
template <typename Ex, typename T>
void potrf(Ex& eng, Uplo uplo, TiledMatrix<T> A, int lookahead = 0) {
    int const nt = A.nt();
    tbp_require(A.mt() == nt);
    tbp_require(uplo == Uplo::Lower);  // QDWH needs Lower; Upper unimplemented
    auto upd_pr = [lookahead](int k, int j) {
        return (lookahead > 0 && j - k <= lookahead) ? 1 : 0;
    };

    for (int k = 0; k < nt; ++k) {
        double const fl_p = flops::potrf(A.tile_nb(k)) * (fma_flops<T>() / 2.0);
        // Panel tasks carry priority 1 (SLATE's `omp priority` on panels):
        // the k+1 panel chain must not starve behind trailing updates.
        eng.submit("potrf", fl_p, {rt::readwrite(A.tile_key(k, k))},
                   [A, k] { blas::potrf(Uplo::Lower, A.tile(k, k)); },
                   /*priority=*/1);

        for (int i = k + 1; i < nt; ++i) {
            double const fl = flops::trsm_right(A.tile_mb(i), A.tile_nb(k))
                              * (fma_flops<T>() / 2.0);
            eng.submit("trsm", fl,
                       {rt::read(A.tile_key(k, k)), rt::readwrite(A.tile_key(i, k))},
                       [A, i, k] {
                           blas::trsm(Side::Right, Uplo::Lower, Op::ConjTrans,
                                      Diag::NonUnit, T(1), A.tile(k, k),
                                      A.tile(i, k));
                       },
                       /*priority=*/1);
        }
        for (int j = k + 1; j < nt; ++j) {
            double const fl_h = flops::syrk(A.tile_nb(j), A.tile_nb(k))
                                * (fma_flops<T>() / 2.0);
            eng.submit("herk", fl_h,
                       {rt::read(A.tile_key(j, k)), rt::readwrite(A.tile_key(j, j))},
                       [A, j, k] {
                           blas::herk(Uplo::Lower, Op::NoTrans, real_t<T>(-1),
                                      A.tile(j, k), real_t<T>(1), A.tile(j, j));
                       },
                       upd_pr(k, j));
            for (int i = j + 1; i < nt; ++i) {
                double const fl =
                    flops::gemm(A.tile_mb(i), A.tile_nb(j), A.tile_nb(k))
                    * (fma_flops<T>() / 2.0);
                eng.submit("gemm", fl,
                           {rt::read(A.tile_key(i, k)), rt::read(A.tile_key(j, k)),
                            rt::readwrite(A.tile_key(i, j))},
                           [A, i, j, k] {
                               blas::gemm(Op::NoTrans, Op::ConjTrans, T(-1),
                                          A.tile(i, k), A.tile(j, k), T(1),
                                          A.tile(i, j));
                           },
                           upd_pr(k, j));
            }
        }
    }
    eng.op_fence();
}

/// Solve A X = B with A Hermitian positive definite: Cholesky factor, then
/// two triangular solves. A is overwritten by its factor, B by X.
template <typename Ex, typename T>
void posv(Ex& eng, TiledMatrix<T> A, TiledMatrix<T> B, int lookahead = 0) {
    potrf(eng, Uplo::Lower, A, lookahead);
    trsm(eng, Side::Left, Uplo::Lower, Op::NoTrans, Diag::NonUnit, T(1), A, B);
    trsm(eng, Side::Left, Uplo::Lower, Op::ConjTrans, Diag::NonUnit, T(1), A, B);
}

}  // namespace tbp::la
