// Task-parallel element-wise operations and norms on TiledMatrix.
//
// Every function submits one task per tile (or per block row/column for
// reductions) to the runtime engine, declaring tile accesses so the
// dataflow scheduler can overlap these with surrounding operations.
// Norm reductions return scalars and therefore synchronize (engine.wait()),
// exactly as SLATE's norm calls do inside QDWH's convergence checks.

#pragma once

#include <algorithm>
#include <cmath>
#include <mutex>
#include <vector>

#include "blas/util.hh"
#include "common/flops.hh"
#include "common/types.hh"
#include "matrix/tiled_matrix.hh"
#include "runtime/engine.hh"

namespace tbp::la {

/// B := A, tile-wise; tilings must match.
template <typename Ex, typename T>
void copy(Ex& eng, TiledMatrix<T> A, TiledMatrix<T> B) {
    tbp_require(A.mt() == B.mt() && A.nt() == B.nt());
    for (int j = 0; j < A.nt(); ++j) {
        for (int i = 0; i < A.mt(); ++i) {
            tbp_require(A.tile_mb(i) == B.tile_mb(i) && A.tile_nb(j) == B.tile_nb(j));
            eng.submit("copy", {rt::read(A.tile_key(i, j)), rt::write(B.tile_key(i, j))},
                       [A, B, i, j] { blas::copy(A.tile(i, j), B.tile(i, j)); });
        }
    }
    eng.op_fence();
}

/// B := A element-wise across precisions (slamge/dlag2s-style), tile-wise;
/// tilings must match. Used by the mixed-precision paths (qdwh_mixed, the
/// precision ladder) to move iterates between the native matrices and their
/// low-precision shadows. Charges no kernel flops: conversion is O(n^2)
/// traffic, accounted separately by the precision cost model.
template <typename Ex, typename TS, typename TD>
void convert_copy(Ex& eng, TiledMatrix<TS> const& src, TiledMatrix<TD> dst) {
    tbp_require(src.mt() == dst.mt() && src.nt() == dst.nt());
    for (int j = 0; j < src.nt(); ++j) {
        for (int i = 0; i < src.mt(); ++i) {
            tbp_require(src.tile_mb(i) == dst.tile_mb(i)
                        && src.tile_nb(j) == dst.tile_nb(j));
            eng.submit("convert",
                       {rt::read(src.tile_key(i, j)),
                        rt::write(dst.tile_key(i, j))},
                       [src, dst, i, j] {
                           auto s = src.tile(i, j);
                           auto d = dst.tile(i, j);
                           for (int c = 0; c < s.nb(); ++c)
                               for (int r = 0; r < s.mb(); ++r)
                                   d(r, c) = static_cast<TD>(s(r, c));
                       });
        }
    }
    eng.op_fence();
}

/// B := op(A) with op in {Trans, ConjTrans}; B must be A.n-by-A.m with the
/// transposed tiling.
template <typename Ex, typename T>
void transpose_copy(Ex& eng, Op op, TiledMatrix<T> A, TiledMatrix<T> B) {
    tbp_require(A.mt() == B.nt() && A.nt() == B.mt());
    for (int j = 0; j < A.nt(); ++j) {
        for (int i = 0; i < A.mt(); ++i) {
            eng.submit("transpose_copy",
                       {rt::read(A.tile_key(i, j)), rt::write(B.tile_key(j, i))},
                       [A, B, op, i, j] {
                           blas::transpose_copy(op, A.tile(i, j), B.tile(j, i));
                       });
        }
    }
    eng.op_fence();
}

/// A := alpha * A.
template <typename Ex, typename T>
void scale(Ex& eng, T alpha, TiledMatrix<T> A) {
    for (int j = 0; j < A.nt(); ++j)
        for (int i = 0; i < A.mt(); ++i)
            eng.submit("scale", {rt::readwrite(A.tile_key(i, j))},
                       [A, alpha, i, j] { blas::scale(alpha, A.tile(i, j)); });
    eng.op_fence();
}

/// B := alpha * A + beta * B (geadd).
template <typename Ex, typename T>
void add(Ex& eng, T alpha, TiledMatrix<T> A, T beta, TiledMatrix<T> B) {
    tbp_require(A.mt() == B.mt() && A.nt() == B.nt());
    for (int j = 0; j < A.nt(); ++j)
        for (int i = 0; i < A.mt(); ++i)
            eng.submit("add",
                       {rt::read(A.tile_key(i, j)), rt::readwrite(B.tile_key(i, j))},
                       [A, B, alpha, beta, i, j] {
                           blas::add(alpha, A.tile(i, j), beta, B.tile(i, j));
                       });
    eng.op_fence();
}

/// A := offdiag off the global diagonal, diag on it (laset). Assumes square
/// tiles on the diagonal when mt == nt tilings align (always true in TBP).
template <typename Ex, typename T>
void set(Ex& eng, T offdiag, T diag, TiledMatrix<T> A) {
    for (int j = 0; j < A.nt(); ++j) {
        for (int i = 0; i < A.mt(); ++i) {
            eng.submit("set", {rt::write(A.tile_key(i, j))},
                       [A, offdiag, diag, i, j] {
                           blas::set(offdiag, (i == j) ? diag : offdiag, A.tile(i, j));
                       });
        }
    }
    eng.op_fence();
}

/// A := I (square view).
template <typename Ex, typename T>
void set_identity(Ex& eng, TiledMatrix<T> A) {
    set(eng, T(0), T(1), A);
}

/// Column absolute sums of the whole matrix (the "local sums" step of
/// Algorithm 2, line 6). Returns a dense vector of length A.n().
template <typename Ex, typename T>
std::vector<real_t<T>> col_abs_sums(Ex& eng, TiledMatrix<T> A) {
    using R = real_t<T>;
    std::vector<R> sums(static_cast<size_t>(A.n()), R(0));
    std::mutex mtx;
    std::int64_t col0 = 0;
    for (int j = 0; j < A.nt(); ++j) {
        // One task per block column: sum over its tiles, then merge.
        std::vector<rt::Access> acc;
        for (int i = 0; i < A.mt(); ++i)
            acc.push_back(rt::read(A.tile_key(i, j)));
        int const nbj = A.tile_nb(j);
        eng.submit("col_sums", std::move(acc), [A, j, nbj, col0, &sums, &mtx] {
            std::vector<R> local(static_cast<size_t>(nbj), R(0));
            for (int i = 0; i < A.mt(); ++i)
                blas::col_abs_sums(A.tile(i, j), local.data());
            std::lock_guard<std::mutex> lk(mtx);
            for (int c = 0; c < nbj; ++c)
                sums[static_cast<size_t>(col0 + c)] += local[static_cast<size_t>(c)];
        });
        col0 += nbj;
    }
    eng.wait();
    return sums;
}

/// ||A - s*B||_F without modifying either operand: one fused read-only task
/// per tile replaces the add + norm pair QDWH's convergence check used to
/// need (two full-matrix sweeps and a destroyed Aprev). Partials land in
/// fixed slots and are summed in a fixed order after the fence, preserving
/// the deterministic-reduction ordering of Norm::Fro. Synchronizing.
template <typename Ex, typename T>
real_t<T> diff_norm_fro(Ex& eng, TiledMatrix<T> A, TiledMatrix<T> B,
                        real_t<T> s = real_t<T>(1)) {
    using R = real_t<T>;
    tbp_require(A.mt() == B.mt() && A.nt() == B.nt());
    std::vector<R> partial(
        static_cast<size_t>(A.mt()) * static_cast<size_t>(A.nt()), R(0));
    for (int j = 0; j < A.nt(); ++j) {
        for (int i = 0; i < A.mt(); ++i) {
            size_t const slot = static_cast<size_t>(j)
                                    * static_cast<size_t>(A.mt())
                                + static_cast<size_t>(i);
            eng.submit("diff_sum_sq",
                       {rt::read(A.tile_key(i, j)), rt::read(B.tile_key(i, j))},
                       [A, B, s, i, j, slot, &partial] {
                           partial[slot] =
                               blas::diff_sum_sq(s, A.tile(i, j), B.tile(i, j));
                       });
        }
    }
    eng.wait();
    R total(0);
    for (R p : partial)
        total += p;
    return std::sqrt(total);
}

/// Matrix norm. One/Inf/Fro/Max as in LAPACK's lange. Synchronizing.
template <typename Ex, typename T>
real_t<T> norm(Ex& eng, Norm which, TiledMatrix<T> A) {
    using R = real_t<T>;
    switch (which) {
        case Norm::One: {
            auto sums = col_abs_sums(eng, A);
            R v(0);
            for (R s : sums)
                v = std::max(v, s);
            return v;
        }
        case Norm::Inf: {
            std::vector<R> sums(static_cast<size_t>(A.m()), R(0));
            std::mutex mtx;
            std::int64_t row0 = 0;
            for (int i = 0; i < A.mt(); ++i) {
                std::vector<rt::Access> acc;
                for (int j = 0; j < A.nt(); ++j)
                    acc.push_back(rt::read(A.tile_key(i, j)));
                int const mbi = A.tile_mb(i);
                eng.submit("row_sums", std::move(acc), [A, i, mbi, row0, &sums, &mtx] {
                    std::vector<R> local(static_cast<size_t>(mbi), R(0));
                    for (int j = 0; j < A.nt(); ++j)
                        blas::row_abs_sums(A.tile(i, j), local.data());
                    std::lock_guard<std::mutex> lk(mtx);
                    for (int r = 0; r < mbi; ++r)
                        sums[static_cast<size_t>(row0 + r)] += local[static_cast<size_t>(r)];
                });
                row0 += mbi;
            }
            eng.wait();
            R v(0);
            for (R s : sums)
                v = std::max(v, s);
            return v;
        }
        case Norm::Fro: {
            // Per-tile partials summed in a fixed order after the fence:
            // a shared accumulator would add in task-completion order, whose
            // rounding varies with the schedule (and the work-stealing
            // runtime makes completion order genuinely nondeterministic).
            std::vector<R> partial(
                static_cast<size_t>(A.mt()) * static_cast<size_t>(A.nt()), R(0));
            for (int j = 0; j < A.nt(); ++j) {
                for (int i = 0; i < A.mt(); ++i) {
                    size_t const slot = static_cast<size_t>(j)
                                            * static_cast<size_t>(A.mt())
                                        + static_cast<size_t>(i);
                    eng.submit("sum_sq", {rt::read(A.tile_key(i, j))},
                               [A, i, j, slot, &partial] {
                                   partial[slot] = blas::sum_sq(A.tile(i, j));
                               });
                }
            }
            eng.wait();
            R total(0);
            for (R s : partial)
                total += s;
            return std::sqrt(total);
        }
        case Norm::Max: {
            R v(0);
            std::mutex mtx;
            for (int j = 0; j < A.nt(); ++j) {
                for (int i = 0; i < A.mt(); ++i) {
                    eng.submit("norm_max", {rt::read(A.tile_key(i, j))},
                               [A, i, j, &v, &mtx] {
                                   R s = blas::norm_max(A.tile(i, j));
                                   std::lock_guard<std::mutex> lk(mtx);
                                   v = std::max(v, s);
                               });
                }
            }
            eng.wait();
            return v;
        }
    }
    return R(0);
}

}  // namespace tbp::la
