// Scalar-type traits shared by every TBP subsystem.
//
// The library supports the four standard LAPACK scalar types
// (float, double, std::complex<float>, std::complex<double>), matching the
// paper's contribution #2. These traits give kernels a uniform way to query
// the associated real type, conjugate values, and count flops (complex
// arithmetic is weighted per the usual LAPACK convention).

#pragma once

#include <complex>
#include <cstdint>
#include <type_traits>

namespace tbp {

template <typename T>
struct is_complex : std::false_type {};

template <typename R>
struct is_complex<std::complex<R>> : std::true_type {};

template <typename T>
inline constexpr bool is_complex_v = is_complex<T>::value;

template <typename T>
struct real_type_of {
    using type = T;
};

template <typename R>
struct real_type_of<std::complex<R>> {
    using type = R;
};

/// Real type associated with scalar T (e.g. double for complex<double>).
template <typename T>
using real_t = typename real_type_of<T>::type;

/// conj() that is an identity on real types, so templated kernels can
/// conjugate unconditionally.
template <typename T>
constexpr T conj_val(T x) {
    if constexpr (is_complex_v<T>)
        return std::conj(x);
    else
        return x;
}

/// |x|^2 without the sqrt of std::abs.
template <typename T>
constexpr real_t<T> abs_sq(T x) {
    if constexpr (is_complex_v<T>)
        return x.real() * x.real() + x.imag() * x.imag();
    else
        return x * x;
}

/// Real part (identity on real types).
template <typename T>
constexpr real_t<T> real_part(T x) {
    if constexpr (is_complex_v<T>)
        return x.real();
    else
        return x;
}

/// Make a scalar of type T from a real value.
template <typename T>
constexpr T from_real(real_t<T> r) {
    return T(r);
}

/// Flop weight of one fused multiply-add in type T, following the LAPACK
/// working-note convention: a complex multiply-add costs 8 real flops,
/// a real one costs 2.
template <typename T>
constexpr double fma_flops() {
    return is_complex_v<T> ? 8.0 : 2.0;
}

/// Operation applied to a matrix operand.
enum class Op : std::uint8_t { NoTrans, Trans, ConjTrans };

/// Which triangle of a matrix is referenced.
enum class Uplo : std::uint8_t { Lower, Upper };

/// Whether a triangular matrix has an implicit unit diagonal.
enum class Diag : std::uint8_t { NonUnit, Unit };

/// Side of a matrix product or solve.
enum class Side : std::uint8_t { Left, Right };

/// Matrix norms, mirroring LAPACK's lange/lansy selectors.
enum class Norm : std::uint8_t { One, Inf, Fro, Max };

/// Resolve op(x) for a scalar element given the operand's Op.
template <typename T>
constexpr T apply_op(Op op, T x) {
    return op == Op::ConjTrans ? conj_val(x) : x;
}

/// Compose transposition: what Op does `op` become when the enclosing
/// expression is itself transposed?
constexpr Op transpose(Op op) {
    switch (op) {
        case Op::NoTrans:   return Op::Trans;
        case Op::Trans:     return Op::NoTrans;
        case Op::ConjTrans: return Op::NoTrans;  // (A^H)^H = A
    }
    return Op::NoTrans;
}

const char* to_string(Op op);
const char* to_string(Uplo uplo);
const char* to_string(Norm norm);

}  // namespace tbp
