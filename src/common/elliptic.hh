// Complete elliptic integrals and Jacobi elliptic functions.
//
// Substrate for the Zolo-PD extension (paper Section 8, ref. [25]): the
// Zolotarev rational approximation of sign(x) on [l, 1] needs K(k') and
// sn/cn/dn at equally spaced arguments. K uses the arithmetic-geometric
// mean; sn/cn/dn use the standard descending-Landen recurrence.
//
// Conventions: `k` is the modulus (not the parameter m = k^2).

#pragma once

#include <cmath>
#include <cstdlib>

#include "common/error.hh"

namespace tbp {

/// Complete elliptic integral of the first kind, K(k), modulus k in [0, 1).
inline double ellip_K(double k) {
    tbp_require(k >= 0.0 && k < 1.0);
    double a = 1.0;
    double b = std::sqrt((1.0 - k) * (1.0 + k));
    // AGM converges quadratically; the iteration cap guards against
    // dithering at the 1-ulp boundary.
    for (int i = 0; i < 60 && std::abs(a - b) > 1e-15 * a; ++i) {
        double const an = 0.5 * (a + b);
        b = std::sqrt(a * b);
        a = an;
    }
    return M_PI / (2.0 * a);
}

/// K(k) given the *complementary* modulus kc = sqrt(1 - k^2). Accurate for
/// k -> 1 (kc -> 0), where forming k itself would round to 1: uses the
/// asymptotic K = ln(4/kc) + O(kc^2 ln kc) for tiny kc.
inline double ellip_K_from_complement(double kc) {
    tbp_require(kc > 0.0 && kc <= 1.0);
    if (kc < 1e-6)
        return std::log(4.0 / kc);
    return ellip_K(std::sqrt((1.0 - kc) * (1.0 + kc)));
}

struct JacobiElliptic {
    double sn, cn, dn;
};

/// Jacobi elliptic functions sn(u, k), cn(u, k), dn(u, k) by the
/// descending Landen transformation (Numerical Recipes sncndn, adapted;
/// argument convention: modulus k, parameter m = k^2 in [0, 1]).
inline JacobiElliptic ellip_sncndn(double u, double k) {
    double const CA = 1e-12;
    double emc = 1.0 - k * k;  // complementary parameter
    JacobiElliptic r{};

    if (emc != 0.0) {
        double a = 1.0;
        r.dn = 1.0;
        double em[14], en[14];
        int l = 0;
        double c = 0;
        for (int i = 0; i < 13; ++i) {
            l = i;
            em[i] = a;
            emc = std::sqrt(emc);
            en[i] = emc;
            c = 0.5 * (a + emc);
            if (std::abs(a - emc) <= CA * a)
                break;
            emc *= a;
            a = c;
        }
        u *= c;
        r.sn = std::sin(u);
        r.cn = std::cos(u);
        if (r.sn != 0.0) {
            a = r.cn / r.sn;
            c *= a;
            for (int ll = l; ll >= 0; --ll) {
                double const b = em[ll];
                a *= c;
                c *= r.dn;
                r.dn = (en[ll] + a) / (b + a);
                a = c / b;
            }
            a = 1.0 / std::sqrt(c * c + 1.0);
            r.sn = (r.sn >= 0.0) ? a : -a;
            r.cn = c * r.sn;
        }
    } else {
        // k = 1: degenerate hyperbolic case.
        r.cn = 1.0 / std::cosh(u);
        r.dn = r.cn;
        r.sn = std::tanh(u);
    }
    return r;
}

}  // namespace tbp
