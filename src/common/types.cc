#include "common/types.hh"

namespace tbp {

const char* to_string(Op op) {
    switch (op) {
        case Op::NoTrans:   return "NoTrans";
        case Op::Trans:     return "Trans";
        case Op::ConjTrans: return "ConjTrans";
    }
    return "?";
}

const char* to_string(Uplo uplo) {
    return uplo == Uplo::Lower ? "Lower" : "Upper";
}

const char* to_string(Norm norm) {
    switch (norm) {
        case Norm::One: return "One";
        case Norm::Inf: return "Inf";
        case Norm::Fro: return "Fro";
        case Norm::Max: return "Max";
    }
    return "?";
}

}  // namespace tbp
