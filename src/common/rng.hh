// Deterministic random number generation for matrix generation and tests.
//
// A thin wrapper over a counter-based splitmix64 / xoshiro-style generator so
// that matrix entries are reproducible across runs and independent of thread
// scheduling: every (seed, index) pair maps to the same value, which lets
// tile-parallel generators fill tiles in any order.

#pragma once

#include <cmath>
#include <cstdint>

#include "common/types.hh"

namespace tbp {

/// splitmix64: high-quality 64-bit mixing of a counter.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from a 64-bit hash.
constexpr double u01_from_bits(std::uint64_t bits) {
    return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

/// Counter-based generator: stateless per call, reproducible per (seed, ctr).
class CounterRng {
public:
    explicit CounterRng(std::uint64_t seed) : seed_(seed) {}

    /// Uniform in [0,1) for a global element index.
    double uniform(std::uint64_t index) const {
        return u01_from_bits(splitmix64(seed_ ^ splitmix64(index)));
    }

    /// Standard normal via Box-Muller on two decorrelated streams.
    double normal(std::uint64_t index) const {
        // Two independent uniforms derived from the same index.
        double u1 = u01_from_bits(splitmix64(seed_ ^ splitmix64(2 * index)));
        double u2 = u01_from_bits(splitmix64(seed_ ^ splitmix64(2 * index + 1)));
        if (u1 < 1e-300)
            u1 = 1e-300;
        return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    }

    /// Scalar of type T with standard-normal real (and imaginary) parts.
    template <typename T>
    T gaussian(std::uint64_t index) const {
        if constexpr (is_complex_v<T>) {
            using R = real_t<T>;
            // Use disjoint index streams for real and imaginary parts.
            return T(static_cast<R>(normal(2 * index + 0x100000000ULL)),
                     static_cast<R>(normal(2 * index + 0x100000001ULL)));
        } else {
            return static_cast<T>(normal(index));
        }
    }

    std::uint64_t seed() const { return seed_; }

private:
    std::uint64_t seed_;
};

}  // namespace tbp
