#include "common/error.hh"

namespace tbp::detail {

void throw_require_failure(const char* cond, const char* file, int line) {
    throw Error(std::string("tbp_require failed: ") + cond + " at " + file +
                ":" + std::to_string(line));
}

}  // namespace tbp::detail
