#include "common/error.hh"

namespace tbp {

char const* status_name(Status s) {
    switch (s) {
        case Status::Ok: return "ok";
        case Status::InvalidArgument: return "invalid_argument";
        case Status::ZeroMatrix: return "zero_matrix";
        case Status::NotConverged: return "not_converged";
        case Status::NumericalError: return "numerical_error";
        case Status::InternalError: return "internal_error";
    }
    return "unknown";
}

namespace detail {

void throw_require_failure(const char* cond, const char* file, int line) {
    throw Error(std::string("tbp_require failed: ") + cond + " at " + file +
                ":" + std::to_string(line));
}

}  // namespace detail
}  // namespace tbp
