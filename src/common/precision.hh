// Precision-ladder primitives: rung/request enums, the thread-local gemm-mode
// context that carries "execute float kernels as simulated bf16" from task
// submission to the worker thread that runs the task, and the bf16
// round-to-nearest-even truncation helpers used by the pack layer.
//
// Two thread-local slots exist:
//   * ambient_gemm_mode — set by the algorithm layer (RAII ScopedGemmMode)
//     around task *submission*; the runtime engine captures it into each
//     Task so batched/stolen execution keeps the tag.
//   * exec_gemm_mode — set by the engine worker (RAII ExecModeScope) around
//     the task body; the BLAS kernel layer reads it to decide whether a
//     float gemm truncates its packed operands to bf16, and the flop
//     counters read it to pick the per-precision accounting bucket.
// Direct (engine-less) kernel calls, e.g. the SPMD distributed path, install
// ExecModeScope themselves.

#pragma once

#include <complex>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace tbp::prec {

/// Accounting bucket for kernel flops and staged bytes. Float-typed kernels
/// executing under an active bf16 gemm mode charge the Bf16 bucket; native
/// float charges Float; double-typed work always charges Double.
enum class Prec : std::uint8_t { Double = 0, Float = 1, Bf16 = 2 };

inline constexpr int kNumPrec = 3;

inline char const* prec_name(Prec p) {
    switch (p) {
        case Prec::Double: return "double";
        case Prec::Float: return "float";
        case Prec::Bf16: return "bf16";
    }
    return "?";
}

/// Execution mode for float-typed packed gemms. Native leaves operands
/// untouched; Bf16 truncates both packed operands to bf16 (fp32
/// accumulation); Bf16Comp uses the TPU-paper compensated scheme: split each
/// operand x = hi + lo with hi = bf16(x), lo = bf16(x - hi), and accumulate
/// hi*hi + hi*lo + lo*hi in fp32 (the lo*lo term is dropped).
enum class GemmMode : std::uint8_t { Native = 0, Bf16 = 1, Bf16Comp = 2 };

inline char const* gemm_mode_name(GemmMode m) {
    switch (m) {
        case GemmMode::Native: return "native";
        case GemmMode::Bf16: return "bf16";
        case GemmMode::Bf16Comp: return "bf16c";
    }
    return "?";
}

namespace detail {
inline GemmMode& ambient_slot() {
    thread_local GemmMode m = GemmMode::Native;
    return m;
}
inline GemmMode& exec_slot() {
    thread_local GemmMode m = GemmMode::Native;
    return m;
}
}  // namespace detail

inline GemmMode ambient_gemm_mode() { return detail::ambient_slot(); }
inline GemmMode exec_gemm_mode() { return detail::exec_slot(); }

/// Installed by the algorithm layer around task submission; the engine
/// captures the ambient mode into each submitted task.
class ScopedGemmMode {
public:
    explicit ScopedGemmMode(GemmMode m) : prev_(detail::ambient_slot()) {
        detail::ambient_slot() = m;
    }
    ~ScopedGemmMode() { detail::ambient_slot() = prev_; }
    ScopedGemmMode(ScopedGemmMode const&) = delete;
    ScopedGemmMode& operator=(ScopedGemmMode const&) = delete;

private:
    GemmMode prev_;
};

/// Installed by the engine worker (or a direct caller, e.g. the SPMD
/// distributed path) around kernel execution.
class ExecModeScope {
public:
    explicit ExecModeScope(GemmMode m) : prev_(detail::exec_slot()) {
        detail::exec_slot() = m;
    }
    ~ExecModeScope() { detail::exec_slot() = prev_; }
    ExecModeScope(ExecModeScope const&) = delete;
    ExecModeScope& operator=(ExecModeScope const&) = delete;

private:
    GemmMode prev_;
};

/// bf16 truncation with round-to-nearest-even: keep the top 16 bits of the
/// IEEE-754 binary32 pattern, rounding the discarded mantissa half. NaN/Inf
/// pass through untouched (the RNE carry could otherwise walk a NaN payload
/// into the sign bit).
inline float bf16_round(float x) {
    std::uint32_t u;
    std::memcpy(&u, &x, sizeof(u));
    if ((u & 0x7f800000u) == 0x7f800000u)
        return x;  // NaN or Inf
    u += 0x7fffu + ((u >> 16) & 1u);
    u &= 0xffff0000u;
    float r;
    std::memcpy(&r, &u, sizeof(r));
    return r;
}

/// Low half for the compensated scheme: lo = bf16(x - bf16(x)).
inline float bf16_low(float x) { return bf16_round(x - bf16_round(x)); }

/// Value transform applied at pack time (see blas/kernel/pack.hh).
enum class PackTrans : std::uint8_t { None = 0, Bf16Hi = 1, Bf16Lo = 2 };

inline float apply_pack_trans(PackTrans t, float x) {
    switch (t) {
        case PackTrans::None: return x;
        case PackTrans::Bf16Hi: return bf16_round(x);
        case PackTrans::Bf16Lo: return bf16_low(x);
    }
    return x;
}

/// Accounting bucket for a kernel charge of scalar type T under the current
/// execution mode: float-kind charges Bf16 while a bf16 gemm mode is active
/// on this thread, Float otherwise; double-kind always charges Double.
template <typename T>
inline Prec charge_prec() {
    if constexpr (std::is_same_v<T, float>
                  || std::is_same_v<T, std::complex<float>>) {
        return exec_gemm_mode() == GemmMode::Native ? Prec::Float : Prec::Bf16;
    } else {
        return Prec::Double;
    }
}

}  // namespace tbp::prec
