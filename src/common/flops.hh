// Flop-count formulas for the operations QDWH is built from, following the
// LAPACK working notes (real-arithmetic counts; callers scale complex counts
// with fma_flops<T>()/2).
//
// The paper's overall complexity model (Section 4, square matrices):
//
//   C_QDWH(n) = 4/3 n^3  +  (8 + 2/3) n^3 * #it_QR
//             + (4 + 1/3) n^3 * #it_Chol  +  2 n^3
//
// is reproduced by qdwh_model_flops() and checked against the library's
// measured per-operation counters in bench_flops_model.

#pragma once

#include <algorithm>
#include <cstdint>

namespace tbp::flops {

inline double gemm(double m, double n, double k) { return 2.0 * m * n * k; }

inline double syrk(double n, double k) { return n * (n + 1) * k; }

inline double trsm(double side_m, double m, double n) {
    // side == Left: solve op(A) X = B with A m-by-m, B m-by-n.
    return side_m * m * n;  // pass side_m = m (Left) or n (Right)
}

inline double trsm_left(double m, double n) { return m * m * n; }
inline double trsm_right(double m, double n) { return n * n * m; }

inline double potrf(double n) { return n * n * n / 3.0 + n * n / 2.0; }

inline double trmm(double m, double n) {
    // Left side: B := alpha op(A) B with A m-by-m triangular, B m-by-n.
    return m * m * n;
}

inline double unmqr(double m, double n, double k) {
    // Compact-WY applier on an m-by-n C with k reflectors, decomposed as
    // two unit-triangular trmm (k^2 n each), the op(T) trmm (k^2 n), two
    // dense GEMM panels (2(m-k)kn each), and the rank-update adds (2kn).
    return 4.0 * (m - k) * k * n + 3.0 * k * k * n + 2.0 * k * n;
}

inline double tsmqr(double m2, double n, double k_cols) {
    // Triangle-on-square applier: two m2-deep GEMM panels (2 m2 n k each),
    // the op(T) trmm (n^2 k), and the subtraction into C1 (2 n k).
    return 4.0 * m2 * n * k_cols + n * n * k_cols + 2.0 * n * k_cols;
}

inline double tsqrt(double m2, double n) {
    // Triangle-on-square panel factorization: reflector applications
    // (~2 m2 n^2), the T inner products (~m2 n^2), and the triangular
    // T composition (~n^3 / 3).
    return 3.0 * m2 * n * n + n * n * n / 3.0;
}

/// Entries in the upper trapezoid (diagonal included) of an m2-by-n tile
/// with m2 <= n: sum_j min(j + 1, m2). The reflector tails of ttqrt and
/// both V2 products of ttmqr touch exactly this set.
inline double tri_sum(int m2, int n) {
    double const d2 = static_cast<double>(m2);
    return d2 * (d2 + 1.0) / 2.0 + static_cast<double>(n - m2) * d2;
}

inline double ttqrt(int m2, int n) {
    // Triangle-on-triangle panel fold: column j's reflector tail has
    // t_j = min(j + 1, m2) rows, so the trailing applies cost
    // 4 sum_j t_j (n-1-j) plus the top-row updates, the T inner products
    // another 2 sum_j t_j (n-1-j), and the triangular T composition n^3/3.
    // At m2 == n this is ~4/3 n^3 vs tsqrt's 10/3 n^3 (2.5x cheaper).
    double x = 0;
    for (int j = 0; j < n; ++j)
        x += static_cast<double>(std::min(j + 1, m2)) * (n - 1 - j);
    double const dn = static_cast<double>(n);
    return 6.0 * x + dn * dn + dn * dn * dn / 3.0;
}

inline double ttmqr(int m2, int n, int nn, bool c2_zero) {
    // Triangle-on-triangle applier: the V2^H C2 accumulation (skipped when
    // C2 is known zero) and the V2 S product each touch the trapezoid once
    // per C column, plus the op(T) trmm and the C1 subtraction. At
    // m2 == n: 3 n^2 nn (2 n^2 nn when c2_zero) vs tsmqr's 5 n^2 nn.
    double const dn = static_cast<double>(n);
    double const dnn = static_cast<double>(nn);
    return (c2_zero ? 2.0 : 4.0) * tri_sum(m2, n) * dnn + dn * dn * dnn
           + 2.0 * dn * dnn;
}

inline double geqrf(double m, double n) {
    // 2mn^2 - 2/3 n^3 + lower order
    return 2.0 * m * n * n - 2.0 / 3.0 * n * n * n;
}

inline double ungqr(double m, double n, double k) {
    return 4.0 * m * n * k - 2.0 * (m + n) * k * k + 4.0 / 3.0 * k * k * k;
}

/// Paper Section 4: QDWH flop model for an m>=n matrix (counts given for
/// square n; the rectangular generalization charges QR work on m+n rows).
inline double qdwh_model(double n, int it_qr, int it_chol) {
    double n3 = n * n * n;
    return 4.0 / 3.0 * n3                       // condition estimate (QR)
           + (8.0 + 2.0 / 3.0) * n3 * it_qr     // QR-based iterations
           + (4.0 + 1.0 / 3.0) * n3 * it_chol   // Cholesky-based iterations
           + 2.0 * n3;                          // H = U^H A
}

/// QDWH model with the structure-exploiting stacked QR (square n): the
/// identity block of W = [sqrt(c) A; I] stays block upper triangular, which
/// halves its fold cost in geqrf (2n^3 -> n^3) and in ungqr, and the upper
/// triangular Q2 = R^{-1} halves the Q1 Q2^H gemm (2n^3 -> n^3), so a QR
/// iteration costs 17/3 n^3 instead of 26/3 n^3 (~35% fewer flops).
inline double qdwh_model_structured(double n, int it_qr, int it_chol) {
    double n3 = n * n * n;
    return 4.0 / 3.0 * n3
           + (5.0 + 2.0 / 3.0) * n3 * it_qr
           + (4.0 + 1.0 / 3.0) * n3 * it_chol
           + 2.0 * n3;
}

}  // namespace tbp::flops
