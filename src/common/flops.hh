// Flop-count formulas for the operations QDWH is built from, following the
// LAPACK working notes (real-arithmetic counts; callers scale complex counts
// with fma_flops<T>()/2).
//
// The paper's overall complexity model (Section 4, square matrices):
//
//   C_QDWH(n) = 4/3 n^3  +  (8 + 2/3) n^3 * #it_QR
//             + (4 + 1/3) n^3 * #it_Chol  +  2 n^3
//
// is reproduced by qdwh_model_flops() and checked against the library's
// measured per-operation counters in bench_flops_model.

#pragma once

#include <cstdint>

namespace tbp::flops {

inline double gemm(double m, double n, double k) { return 2.0 * m * n * k; }

inline double syrk(double n, double k) { return n * (n + 1) * k; }

inline double trsm(double side_m, double m, double n) {
    // side == Left: solve op(A) X = B with A m-by-m, B m-by-n.
    return side_m * m * n;  // pass side_m = m (Left) or n (Right)
}

inline double trsm_left(double m, double n) { return m * m * n; }
inline double trsm_right(double m, double n) { return n * n * m; }

inline double potrf(double n) { return n * n * n / 3.0 + n * n / 2.0; }

inline double trmm(double m, double n) {
    // Left side: B := alpha op(A) B with A m-by-m triangular, B m-by-n.
    return m * m * n;
}

inline double unmqr(double m, double n, double k) {
    // Compact-WY applier on an m-by-n C with k reflectors, decomposed as
    // two unit-triangular trmm (k^2 n each), the op(T) trmm (k^2 n), two
    // dense GEMM panels (2(m-k)kn each), and the rank-update adds (2kn).
    return 4.0 * (m - k) * k * n + 3.0 * k * k * n + 2.0 * k * n;
}

inline double tsmqr(double m2, double n, double k_cols) {
    // Triangle-on-square applier: two m2-deep GEMM panels (2 m2 n k each),
    // the op(T) trmm (n^2 k), and the subtraction into C1 (2 n k).
    return 4.0 * m2 * n * k_cols + n * n * k_cols + 2.0 * n * k_cols;
}

inline double tsqrt(double m2, double n) {
    // Triangle-on-square panel factorization: reflector applications
    // (~2 m2 n^2), the T inner products (~m2 n^2), and the triangular
    // T composition (~n^3 / 3).
    return 3.0 * m2 * n * n + n * n * n / 3.0;
}

inline double geqrf(double m, double n) {
    // 2mn^2 - 2/3 n^3 + lower order
    return 2.0 * m * n * n - 2.0 / 3.0 * n * n * n;
}

inline double ungqr(double m, double n, double k) {
    return 4.0 * m * n * k - 2.0 * (m + n) * k * k + 4.0 / 3.0 * k * k * k;
}

/// Paper Section 4: QDWH flop model for an m>=n matrix (counts given for
/// square n; the rectangular generalization charges QR work on m+n rows).
inline double qdwh_model(double n, int it_qr, int it_chol) {
    double n3 = n * n * n;
    return 4.0 / 3.0 * n3                       // condition estimate (QR)
           + (8.0 + 2.0 / 3.0) * n3 * it_qr     // QR-based iterations
           + (4.0 + 1.0 / 3.0) * n3 * it_chol   // Cholesky-based iterations
           + 2.0 * n3;                          // H = U^H A
}

}  // namespace tbp::flops
