// Error handling used throughout TBP.
//
// Numerical routines report hard failures (non-positive-definite pivot,
// non-convergence) by throwing tbp::Error; programming errors (bad
// dimensions, null tiles) are caught by tbp_require, which throws in all
// build types so tests can assert on misuse.

#pragma once

#include <stdexcept>
#include <string>

namespace tbp {

class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Non-throwing failure codes for the status-returning driver entry points
/// (qdwh_status, zolo_pd_status) and the batched service layer, which must
/// report a failing job without unwinding through shared machinery.
enum class Status {
    Ok = 0,
    InvalidArgument,  ///< malformed input: empty matrix, m < n, bad shapes
    ZeroMatrix,       ///< zero input has no unique polar factor
    NotConverged,     ///< iteration hit max_iter before the tolerance
    NumericalError,   ///< task-level numerical failure (e.g. non-HPD pivot)
    InternalError,    ///< unexpected exception escaped a provider
};

char const* status_name(Status s);

namespace detail {
/// Map a non-Ok driver Status to the throwing API's tbp::Error with a clear,
/// dimension-bearing message (the validation contract of qdwh/zolo_pd).
[[noreturn]] inline void throw_status(char const* who, Status s,
                                      long long m, long long n,
                                      int max_iter) {
    std::string const at = std::string(who) + ": ";
    switch (s) {
        case Status::InvalidArgument:
            throw Error(at + "invalid dimensions m=" + std::to_string(m)
                        + " n=" + std::to_string(n)
                        + " (require a non-empty matrix with m >= n >= 1; "
                          "H, when requested, must be n-by-n)");
        case Status::ZeroMatrix:
            throw Error(at + "zero matrix has no unique polar factor");
        case Status::NotConverged:
            throw Error(at + "did not converge within max_iter="
                        + std::to_string(max_iter) + " iterations");
        case Status::NumericalError:
            throw Error(at + "numerical failure during iteration");
        default:
            throw Error(at + "internal error");
    }
}
}  // namespace detail

namespace detail {
[[noreturn]] void throw_require_failure(const char* cond, const char* file, int line);
}  // namespace detail

}  // namespace tbp

/// Precondition check; active in every build type.
#define tbp_require(cond)                                                    \
    do {                                                                     \
        if (!(cond))                                                         \
            ::tbp::detail::throw_require_failure(#cond, __FILE__, __LINE__); \
    } while (0)

/// Numerical failure with formatted context.
#define tbp_throw(msg) throw ::tbp::Error(std::string(msg))
