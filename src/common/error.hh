// Error handling used throughout TBP.
//
// Numerical routines report hard failures (non-positive-definite pivot,
// non-convergence) by throwing tbp::Error; programming errors (bad
// dimensions, null tiles) are caught by tbp_require, which throws in all
// build types so tests can assert on misuse.

#pragma once

#include <stdexcept>
#include <string>

namespace tbp {

class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_require_failure(const char* cond, const char* file, int line);
}  // namespace detail

}  // namespace tbp

/// Precondition check; active in every build type.
#define tbp_require(cond)                                                    \
    do {                                                                     \
        if (!(cond))                                                         \
            ::tbp::detail::throw_require_failure(#cond, __FILE__, __LINE__); \
    } while (0)

/// Numerical failure with formatted context.
#define tbp_throw(msg) throw ::tbp::Error(std::string(msg))
