// 64-byte-aligned allocation helpers.
//
// Tile storage and the kernel pack buffers are allocated cache-line aligned
// so vector loads on tile origins and packed panels never straddle lines and
// never need the compiler's unaligned fixup paths. 64 bytes also matches the
// widest vector unit we dispatch to (AVX-512).

#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace tbp {

inline constexpr std::size_t kCacheLineBytes = 64;

/// Round `n` up to a multiple of `align` (align > 0).
constexpr std::size_t round_up(std::size_t n, std::size_t align) {
    return (n + align - 1) / align * align;
}

/// Minimal allocator delivering kCacheLineBytes-aligned storage, for use as
/// std::vector's allocator (aligned_vector below).
template <typename T>
struct AlignedAllocator {
    using value_type = T;

    AlignedAllocator() = default;
    template <typename U>
    AlignedAllocator(AlignedAllocator<U> const&) noexcept {}

    T* allocate(std::size_t n) {
        return static_cast<T*>(::operator new(
            n * sizeof(T), std::align_val_t(kCacheLineBytes)));
    }
    void deallocate(T* p, std::size_t n) noexcept {
        ::operator delete(p, n * sizeof(T), std::align_val_t(kCacheLineBytes));
    }

    template <typename U>
    bool operator==(AlignedAllocator<U> const&) const noexcept {
        return true;
    }
};

/// std::vector whose data() is 64-byte aligned.
template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace tbp
