// Wall-clock timing helpers for benchmarks and the runtime tracer.

#pragma once

#include <chrono>

namespace tbp {

/// Seconds since an arbitrary steady epoch.
inline double wall_time() {
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

/// Scoped stopwatch.
class Timer {
public:
    Timer() : start_(wall_time()) {}
    void reset() { start_ = wall_time(); }
    double elapsed() const { return wall_time() - start_; }

private:
    double start_;
};

}  // namespace tbp
