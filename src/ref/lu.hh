// Dense LU factorization with partial pivoting, solves, inversion, and the
// LU-based general condition estimator (paper contribution #3: "gecondest to
// compute the condition number of a matrix given its LU factorization").

#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/error.hh"
#include "common/types.hh"
#include "cond/condest.hh"
#include "ref/dense.hh"

namespace tbp::ref {

/// LU with partial pivoting: A = P L U in place; ipiv[k] is the row swapped
/// with row k (LAPACK getrf convention, 0-based). Throws on exact
/// singularity.
template <typename T>
void getrf(Dense<T>& A, std::vector<std::int64_t>& ipiv) {
    std::int64_t const n = A.n();
    tbp_require(A.m() == n);
    ipiv.assign(static_cast<size_t>(n), 0);

    for (std::int64_t k = 0; k < n; ++k) {
        // Pivot search in column k.
        std::int64_t piv = k;
        real_t<T> best = std::abs(A(k, k));
        for (std::int64_t i = k + 1; i < n; ++i) {
            if (std::abs(A(i, k)) > best) {
                best = std::abs(A(i, k));
                piv = i;
            }
        }
        ipiv[static_cast<size_t>(k)] = piv;
        if (best == real_t<T>(0))
            tbp_throw("getrf: matrix is singular");
        if (piv != k)
            for (std::int64_t j = 0; j < n; ++j)
                std::swap(A(k, j), A(piv, j));

        for (std::int64_t i = k + 1; i < n; ++i) {
            A(i, k) /= A(k, k);
            T const lik = A(i, k);
            for (std::int64_t j = k + 1; j < n; ++j)
                A(i, j) -= lik * A(k, j);
        }
    }
}

/// Solve op(A) x = b given the getrf factorization (single RHS, in place).
template <typename T>
void getrs(Op op, Dense<T> const& LU, std::vector<std::int64_t> const& ipiv,
           std::vector<T>& b) {
    std::int64_t const n = LU.n();
    tbp_require(static_cast<std::int64_t>(b.size()) == n);

    if (op == Op::NoTrans) {
        // b := P b
        for (std::int64_t k = 0; k < n; ++k)
            std::swap(b[static_cast<size_t>(k)],
                      b[static_cast<size_t>(ipiv[static_cast<size_t>(k)])]);
        // L y = b (unit lower)
        for (std::int64_t i = 0; i < n; ++i)
            for (std::int64_t j = 0; j < i; ++j)
                b[static_cast<size_t>(i)] -= LU(i, j) * b[static_cast<size_t>(j)];
        // U x = y
        for (std::int64_t i = n - 1; i >= 0; --i) {
            for (std::int64_t j = i + 1; j < n; ++j)
                b[static_cast<size_t>(i)] -= LU(i, j) * b[static_cast<size_t>(j)];
            b[static_cast<size_t>(i)] /= LU(i, i);
        }
    } else {
        // op == ConjTrans (or Trans for real): solve A^H x = b as
        // U^H y = b, L^H z = y, x = P^T z.
        for (std::int64_t i = 0; i < n; ++i) {
            for (std::int64_t j = 0; j < i; ++j)
                b[static_cast<size_t>(i)] -=
                    apply_op(op, LU(j, i)) * b[static_cast<size_t>(j)];
            b[static_cast<size_t>(i)] /= apply_op(op, LU(i, i));
        }
        for (std::int64_t i = n - 1; i >= 0; --i)
            for (std::int64_t j = i + 1; j < n; ++j)
                b[static_cast<size_t>(i)] -=
                    apply_op(op, LU(j, i)) * b[static_cast<size_t>(j)];
        for (std::int64_t k = n - 1; k >= 0; --k)
            std::swap(b[static_cast<size_t>(k)],
                      b[static_cast<size_t>(ipiv[static_cast<size_t>(k)])]);
    }
}

/// Matrix inverse via LU (n solves); for the Newton-iteration baseline.
template <typename T>
Dense<T> inverse(Dense<T> const& A) {
    std::int64_t const n = A.n();
    Dense<T> LU = A;
    std::vector<std::int64_t> ipiv;
    getrf(LU, ipiv);
    Dense<T> Inv(n, n);
    std::vector<T> col(static_cast<size_t>(n));
    for (std::int64_t j = 0; j < n; ++j) {
        std::fill(col.begin(), col.end(), T(0));
        col[static_cast<size_t>(j)] = T(1);
        getrs(Op::NoTrans, LU, ipiv, col);
        for (std::int64_t i = 0; i < n; ++i)
            Inv(i, j) = col[static_cast<size_t>(i)];
    }
    return Inv;
}

/// Reciprocal 1-norm condition estimate of A from its LU factorization,
/// using Hager's estimator with getrs as the reverse-communication solves.
template <typename T>
real_t<T> gecondest(Dense<T> const& A) {
    using R = real_t<T>;
    std::int64_t const n = A.n();
    tbp_require(A.m() == n);
    R const anorm = norm_one(A);
    if (anorm == R(0))
        return R(0);

    Dense<T> LU = A;
    std::vector<std::int64_t> ipiv;
    try {
        getrf(LU, ipiv);
    } catch (Error const&) {
        return R(0);  // exactly singular
    }

    auto solve = [&](std::vector<T>& v) { getrs(Op::NoTrans, LU, ipiv, v); };
    auto solve_h = [&](std::vector<T>& v) { getrs(Op::ConjTrans, LU, ipiv, v); };
    R const inv_norm = cond::norm1est<T>(n, solve, solve_h);
    if (inv_norm == R(0))
        return R(0);
    return R(1) / (anorm * inv_norm);
}

}  // namespace tbp::ref
