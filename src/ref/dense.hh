// Dense reference matrices and naive kernels.
//
// This is TBP's stand-in for the serial LAPACK the paper's stack bottoms out
// in: a plain column-major matrix with unblocked reference implementations.
// It serves three roles: (1) test oracle for the tiled algorithms, (2) the
// substrate for the dense baselines (Newton iteration, SVD-based polar
// decomposition) the paper's related work compares against, and (3) small
// building blocks (Jacobi EVD/SVD, LU) for the polar->EVD/SVD extensions.

#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/error.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "matrix/tiled_matrix.hh"

namespace tbp::ref {

template <typename T>
class Dense {
public:
    Dense() : m_(0), n_(0) {}
    Dense(std::int64_t m, std::int64_t n) : m_(m), n_(n),
        data_(static_cast<size_t>(m) * static_cast<size_t>(n), T(0)) {}

    std::int64_t m() const { return m_; }
    std::int64_t n() const { return n_; }

    T& operator()(std::int64_t i, std::int64_t j) {
        return data_[static_cast<size_t>(i) + static_cast<size_t>(j) * m_];
    }
    T const& operator()(std::int64_t i, std::int64_t j) const {
        return data_[static_cast<size_t>(i) + static_cast<size_t>(j) * m_];
    }

    T* data() { return data_.data(); }
    T const* data() const { return data_.data(); }

private:
    std::int64_t m_, n_;
    std::vector<T> data_;
};

// --- conversions ----------------------------------------------------------

template <typename T>
Dense<T> to_dense(TiledMatrix<T> const& A) {
    Dense<T> D(A.m(), A.n());
    for (std::int64_t j = 0; j < A.n(); ++j)
        for (std::int64_t i = 0; i < A.m(); ++i)
            D(i, j) = A.at(i, j);
    return D;
}

template <typename T>
TiledMatrix<T> to_tiled(Dense<T> const& D, int nb, Grid grid = {}) {
    TiledMatrix<T> A(D.m(), D.n(), nb, grid);
    for (std::int64_t j = 0; j < D.n(); ++j)
        for (std::int64_t i = 0; i < D.m(); ++i)
            A.at(i, j) = D(i, j);
    return A;
}

// --- naive kernels ---------------------------------------------------------

template <typename T>
Dense<T> gemm(Op opA, Op opB, T alpha, Dense<T> const& A, Dense<T> const& B) {
    std::int64_t const m = (opA == Op::NoTrans) ? A.m() : A.n();
    std::int64_t const k = (opA == Op::NoTrans) ? A.n() : A.m();
    std::int64_t const n = (opB == Op::NoTrans) ? B.n() : B.m();
    tbp_require(((opB == Op::NoTrans) ? B.m() : B.n()) == k);
    Dense<T> C(m, n);
    for (std::int64_t j = 0; j < n; ++j)
        for (std::int64_t i = 0; i < m; ++i) {
            T s(0);
            for (std::int64_t l = 0; l < k; ++l) {
                T const a = (opA == Op::NoTrans) ? A(i, l) : apply_op(opA, A(l, i));
                T const b = (opB == Op::NoTrans) ? B(l, j) : apply_op(opB, B(j, l));
                s += a * b;
            }
            C(i, j) = alpha * s;
        }
    return C;
}

template <typename T>
Dense<T> identity(std::int64_t n) {
    Dense<T> I(n, n);
    for (std::int64_t i = 0; i < n; ++i)
        I(i, i) = T(1);
    return I;
}

template <typename T>
real_t<T> norm_fro(Dense<T> const& A) {
    real_t<T> s(0);
    for (std::int64_t j = 0; j < A.n(); ++j)
        for (std::int64_t i = 0; i < A.m(); ++i)
            s += abs_sq(A(i, j));
    return std::sqrt(s);
}

template <typename T>
real_t<T> norm_one(Dense<T> const& A) {
    real_t<T> best(0);
    for (std::int64_t j = 0; j < A.n(); ++j) {
        real_t<T> s(0);
        for (std::int64_t i = 0; i < A.m(); ++i)
            s += std::abs(A(i, j));
        best = std::max(best, s);
    }
    return best;
}

template <typename T>
real_t<T> norm_max(Dense<T> const& A) {
    real_t<T> best(0);
    for (std::int64_t j = 0; j < A.n(); ++j)
        for (std::int64_t i = 0; i < A.m(); ++i)
            best = std::max(best, std::abs(A(i, j)));
    return best;
}

/// ||A - B||_F.
template <typename T>
real_t<T> diff_fro(Dense<T> const& A, Dense<T> const& B) {
    tbp_require(A.m() == B.m() && A.n() == B.n());
    real_t<T> s(0);
    for (std::int64_t j = 0; j < A.n(); ++j)
        for (std::int64_t i = 0; i < A.m(); ++i)
            s += abs_sq(A(i, j) - B(i, j));
    return std::sqrt(s);
}

/// ||I - Q^H Q||_F (orthogonality of columns).
template <typename T>
real_t<T> orthogonality(Dense<T> const& Q) {
    auto G = gemm(Op::ConjTrans, Op::NoTrans, T(1), Q, Q);
    for (std::int64_t i = 0; i < G.n(); ++i)
        G(i, i) -= T(1);
    return norm_fro(G);
}

/// Random Gaussian dense matrix (reproducible).
template <typename T>
Dense<T> random_dense(std::int64_t m, std::int64_t n, std::uint64_t seed) {
    Dense<T> A(m, n);
    CounterRng rng(seed);
    for (std::int64_t j = 0; j < n; ++j)
        for (std::int64_t i = 0; i < m; ++i)
            A(i, j) = rng.gaussian<T>(static_cast<std::uint64_t>(i + j * m));
    return A;
}

}  // namespace tbp::ref
