// Dense Jacobi eigen/singular value solvers.
//
// Two-sided Jacobi EVD for Hermitian matrices and one-sided Jacobi SVD for
// general (m >= n) matrices. These serve as (a) the SVD-based polar
// decomposition baseline the paper's related work compares against
// (A = U Sigma V^H => U_p = U V^H, H = V Sigma V^H) and (b) the symmetric
// eigensolver needed by the polar -> EVD/SVD extensions (Higham &
// Papadimitriou route, paper Sections 1 and 8).
//
// Jacobi is chosen deliberately: unconditionally convergent, high relative
// accuracy, and trivially verifiable — the right oracle for a reproduction.

#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <vector>

#include "common/error.hh"
#include "common/types.hh"
#include "ref/dense.hh"

namespace tbp::ref {

/// 2x2 unitary that diagonalizes the Hermitian matrix [[app, apq],
/// [conj(apq), aqq]] (app, aqq real). Returns J = {j11, j12, j21, j22} with
/// J^H M J diagonal.
template <typename T>
struct Rot2 {
    T j11, j12, j21, j22;
};

template <typename T>
Rot2<T> hermitian_rot(real_t<T> app, real_t<T> aqq, T apq) {
    using R = real_t<T>;
    R const norm = std::abs(apq);
    if (norm == R(0))
        return {T(1), T(0), T(0), T(1)};
    // Phase factor making the off-diagonal real: conj(apq)/|apq|.
    T const phase = conj_val(apq) / from_real<T>(norm);
    R const tau = (aqq - app) / (R(2) * norm);
    R const t = (tau >= R(0) ? R(1) : R(-1))
                / (std::abs(tau) + std::sqrt(R(1) + tau * tau));
    R const c = R(1) / std::sqrt(R(1) + t * t);
    R const s = t * c;
    // J = diag(1, phase) * [[c, s], [-s, c]]
    return {from_real<T>(c), from_real<T>(s),
            from_real<T>(-s) * phase, from_real<T>(c) * phase};
}

struct JacobiOptions {
    int max_sweeps = 60;
    double tol_factor = 10.0;  ///< convergence at tol_factor * eps * ||A||_F
};

/// Hermitian eigendecomposition A = V diag(w) V^H by cyclic two-sided
/// Jacobi. A is overwritten; eigenvalues return ascending in w, matching
/// columns of V. Throws if sweeps are exhausted (does not happen for
/// Hermitian input).
template <typename T>
void jacobi_eig(Dense<T>& A, std::vector<real_t<T>>& w, Dense<T>& V,
                JacobiOptions const& opt = {}) {
    using R = real_t<T>;
    std::int64_t const n = A.n();
    tbp_require(A.m() == n);
    V = identity<T>(n);
    w.assign(static_cast<size_t>(n), R(0));
    if (n == 0)
        return;

    R const anorm = norm_fro(A);
    R const tol = static_cast<R>(opt.tol_factor)
                  * std::numeric_limits<R>::epsilon() * (anorm + R(1));

    for (int sweep = 0; sweep < opt.max_sweeps; ++sweep) {
        R off(0);
        for (std::int64_t q = 1; q < n; ++q)
            for (std::int64_t p = 0; p < q; ++p)
                off += abs_sq(A(p, q));
        if (std::sqrt(R(2) * off) <= tol)
            break;
        if (sweep == opt.max_sweeps - 1)
            tbp_throw("jacobi_eig: did not converge");

        for (std::int64_t q = 1; q < n; ++q) {
            for (std::int64_t p = 0; p < q; ++p) {
                if (std::abs(A(p, q)) <= tol / static_cast<R>(n))
                    continue;
                auto J = hermitian_rot<T>(real_part(A(p, p)),
                                          real_part(A(q, q)), A(p, q));
                // A := A J (columns p, q).
                for (std::int64_t k = 0; k < n; ++k) {
                    T const akp = A(k, p), akq = A(k, q);
                    A(k, p) = akp * J.j11 + akq * J.j21;
                    A(k, q) = akp * J.j12 + akq * J.j22;
                }
                // A := J^H A (rows p, q).
                for (std::int64_t k = 0; k < n; ++k) {
                    T const apk = A(p, k), aqk = A(q, k);
                    A(p, k) = conj_val(J.j11) * apk + conj_val(J.j21) * aqk;
                    A(q, k) = conj_val(J.j12) * apk + conj_val(J.j22) * aqk;
                }
                // V := V J.
                for (std::int64_t k = 0; k < n; ++k) {
                    T const vkp = V(k, p), vkq = V(k, q);
                    V(k, p) = vkp * J.j11 + vkq * J.j21;
                    V(k, q) = vkp * J.j12 + vkq * J.j22;
                }
            }
        }
    }

    for (std::int64_t i = 0; i < n; ++i)
        w[static_cast<size_t>(i)] = real_part(A(i, i));

    // Sort ascending, permuting V's columns alongside.
    std::vector<std::int64_t> idx(static_cast<size_t>(n));
    std::iota(idx.begin(), idx.end(), 0);
    std::sort(idx.begin(), idx.end(), [&](std::int64_t a, std::int64_t b) {
        return w[static_cast<size_t>(a)] < w[static_cast<size_t>(b)];
    });
    std::vector<R> ws(w);
    Dense<T> Vs(n, n);
    for (std::int64_t j = 0; j < n; ++j) {
        w[static_cast<size_t>(j)] = ws[static_cast<size_t>(idx[static_cast<size_t>(j)])];
        for (std::int64_t i = 0; i < n; ++i)
            Vs(i, j) = V(i, idx[static_cast<size_t>(j)]);
    }
    V = Vs;
}

/// Thin SVD A = U diag(s) V^H by one-sided Jacobi (m >= n). U is m-by-n
/// with orthonormal columns, s descending, V n-by-n unitary.
template <typename T>
void jacobi_svd(Dense<T> A, Dense<T>& U, std::vector<real_t<T>>& s,
                Dense<T>& V, JacobiOptions const& opt = {}) {
    using R = real_t<T>;
    std::int64_t const m = A.m();
    std::int64_t const n = A.n();
    tbp_require(m >= n);
    V = identity<T>(n);

    for (int sweep = 0; sweep < opt.max_sweeps; ++sweep) {
        bool rotated = false;
        for (std::int64_t q = 1; q < n; ++q) {
            for (std::int64_t p = 0; p < q; ++p) {
                // Gram entries of columns p, q.
                R app(0), aqq(0);
                T apq(0);
                for (std::int64_t k = 0; k < m; ++k) {
                    app += abs_sq(A(k, p));
                    aqq += abs_sq(A(k, q));
                    apq += conj_val(A(k, p)) * A(k, q);
                }
                // Relative stopping criterion (de Rijk): columns p, q are
                // numerically orthogonal. An absolute cutoff would skip
                // rotations among tiny columns and wreck U's orthogonality
                // for ill-conditioned input.
                if (app == R(0) || aqq == R(0)
                    || std::abs(apq) <= std::numeric_limits<R>::epsilon()
                                            * std::sqrt(app * aqq) * R(4))
                    continue;
                rotated = true;
                auto J = hermitian_rot<T>(app, aqq, apq);
                for (std::int64_t k = 0; k < m; ++k) {
                    T const akp = A(k, p), akq = A(k, q);
                    A(k, p) = akp * J.j11 + akq * J.j21;
                    A(k, q) = akp * J.j12 + akq * J.j22;
                }
                for (std::int64_t k = 0; k < n; ++k) {
                    T const vkp = V(k, p), vkq = V(k, q);
                    V(k, p) = vkp * J.j11 + vkq * J.j21;
                    V(k, q) = vkp * J.j12 + vkq * J.j22;
                }
            }
        }
        if (!rotated)
            break;
        if (sweep == opt.max_sweeps - 1)
            tbp_throw("jacobi_svd: did not converge");
    }

    // Extract singular values and left vectors.
    s.assign(static_cast<size_t>(n), R(0));
    U = Dense<T>(m, n);
    for (std::int64_t j = 0; j < n; ++j) {
        R nrm(0);
        for (std::int64_t k = 0; k < m; ++k)
            nrm += abs_sq(A(k, j));
        nrm = std::sqrt(nrm);
        s[static_cast<size_t>(j)] = nrm;
        if (nrm > R(0)) {
            for (std::int64_t k = 0; k < m; ++k)
                U(k, j) = A(k, j) / from_real<T>(nrm);
        } else {
            U(j, j) = T(1);  // arbitrary unit vector for a null column
        }
    }

    // Sort descending.
    std::vector<std::int64_t> idx(static_cast<size_t>(n));
    std::iota(idx.begin(), idx.end(), 0);
    std::sort(idx.begin(), idx.end(), [&](std::int64_t a, std::int64_t b) {
        return s[static_cast<size_t>(a)] > s[static_cast<size_t>(b)];
    });
    std::vector<R> ss(s);
    Dense<T> Us(m, n), Vs(n, n);
    for (std::int64_t j = 0; j < n; ++j) {
        auto const src = idx[static_cast<size_t>(j)];
        s[static_cast<size_t>(j)] = ss[static_cast<size_t>(src)];
        for (std::int64_t i = 0; i < m; ++i)
            Us(i, j) = U(i, src);
        for (std::int64_t i = 0; i < n; ++i)
            Vs(i, j) = V(i, src);
    }
    U = Us;
    V = Vs;
}

}  // namespace tbp::ref
