#include "perf/cost_model.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>

#include "common/flops.hh"
#include "device/executor.hh"

namespace tbp::perf {

namespace {

int floor_pow2(int n) {
    int p = 1;
    while (p * 2 <= n)
        p *= 2;
    return p;
}

/// Accumulates per-rank message traffic for one simulated collective.
struct VolumeSim {
    std::vector<std::uint64_t> sends;
    std::vector<std::uint64_t> rank_bytes;
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    std::size_t elem = 0;

    VolumeSim(int P, std::size_t elem_bytes)
        : sends(static_cast<std::size_t>(P)),
          rank_bytes(static_cast<std::size_t>(P)), elem(elem_bytes) {}

    void add(int from, std::size_t elems) {
        ++messages;
        bytes += elems * elem;
        ++sends[static_cast<std::size_t>(from)];
        rank_bytes[static_cast<std::size_t>(from)] += elems * elem;
    }

    CollVolume result() const {
        CollVolume v;
        v.messages = messages;
        v.bytes = bytes;
        for (auto s : sends)
            v.max_rank_sends = std::max(v.max_rank_sends, s);
        for (auto b : rank_bytes)
            v.max_rank_bytes = std::max(v.max_rank_bytes, b);
        return v;
    }
};

// The sim_* helpers replay the exact loop structure of the algorithms in
// comm/collectives.hh (virtual-rank space; root rotation is a bijection, so
// counts are root-invariant).

void sim_bcast_linear(VolumeSim& v, int P, std::size_t count) {
    for (int r = 1; r < P; ++r)
        v.add(0, count);
}

void sim_bcast_tree(VolumeSim& v, int P, std::size_t count) {
    for (int vr = 0; vr < P; ++vr) {
        int mask = 1;
        while (mask < P) {
            if (vr & mask)
                break;
            mask <<= 1;
        }
        mask >>= 1;
        while (mask > 0) {
            if (vr + mask < P)
                v.add(vr, count);
            mask >>= 1;
        }
    }
}

void sim_reduce_linear(VolumeSim& v, int P, std::size_t count) {
    for (int r = 1; r < P; ++r)
        v.add(r, count);
}

void sim_reduce_tree(VolumeSim& v, int P, std::size_t count) {
    // Each non-root virtual rank sends its whole subtree buffer once:
    // min(lowbit(vr), P - vr) blocks.
    for (int vr = 1; vr < P; ++vr) {
        int const lowbit = vr & (-vr);
        auto const blocks =
            static_cast<std::size_t>(std::min(lowbit, P - vr));
        v.add(vr, blocks * count);
    }
}

void sim_allreduce_recdouble(VolumeSim& v, int P, std::size_t count) {
    int const pow2 = floor_pow2(P);
    int const rem = P - pow2;
    for (int r = 0; r < 2 * rem; r += 2)
        v.add(r + 1, count);  // passive odd ranks contribute
    std::vector<std::size_t> blocks(static_cast<std::size_t>(pow2));
    for (int e = 0; e < pow2; ++e)
        blocks[static_cast<std::size_t>(e)] = e < rem ? 2 : 1;
    for (int mask = 1; mask < pow2; mask <<= 1) {
        auto const prev = blocks;
        for (int e = 0; e < pow2; ++e) {
            int const orig = e < rem ? 2 * e : e + rem;
            v.add(orig, prev[static_cast<std::size_t>(e)] * count);
            blocks[static_cast<std::size_t>(e)] =
                prev[static_cast<std::size_t>(e)]
                + prev[static_cast<std::size_t>(e ^ mask)];
        }
    }
    for (int r = 0; r < 2 * rem; r += 2)
        v.add(r, count);  // results shipped back
}

void sim_allreduce_ring(VolumeSim& v, int P, std::size_t count) {
    auto lo = [&](int c) {
        return count * static_cast<std::size_t>(c)
               / static_cast<std::size_t>(P);
    };
    for (int phase = 0; phase < 2; ++phase) {
        for (int s = 0; s < P - 1; ++s) {
            for (int me = 0; me < P; ++me) {
                int const sc = phase == 0 ? (me - s + P) % P
                                          : (me + 1 - s + P) % P;
                v.add(me, lo(sc + 1) - lo(sc));
            }
        }
    }
}

void sim_allgather_linear(VolumeSim& v, int P, std::size_t count) {
    for (int me = 0; me < P; ++me)
        for (int r = 1; r < P; ++r)
            v.add(me, count);
}

void sim_allgather_ring(VolumeSim& v, int P, std::size_t count) {
    for (int s = 0; s < P - 1; ++s)
        for (int me = 0; me < P; ++me)
            v.add(me, count);
}

}  // namespace

CollVolume collective_volume(CollKind kind, comm::coll::Algo algo, int nranks,
                             std::size_t count, std::size_t elem_bytes) {
    using comm::coll::Algo;
    VolumeSim v(nranks, elem_bytes);
    if (nranks <= 1)
        return v.result();
    switch (kind) {
        case CollKind::Bcast:
            if (algo == Algo::Linear)
                sim_bcast_linear(v, nranks, count);
            else
                sim_bcast_tree(v, nranks, count);
            break;
        case CollKind::Reduce:
            if (algo == Algo::Linear)
                sim_reduce_linear(v, nranks, count);
            else
                sim_reduce_tree(v, nranks, count);
            break;
        case CollKind::Allreduce:
            switch (algo) {
                case Algo::Linear:
                    sim_reduce_linear(v, nranks, count);
                    sim_bcast_linear(v, nranks, count);
                    break;
                case Algo::RecDouble:
                    sim_allreduce_recdouble(v, nranks, count);
                    break;
                case Algo::Ring:
                    sim_allreduce_ring(v, nranks, count);
                    break;
                default:
                    sim_reduce_tree(v, nranks, count);
                    sim_bcast_tree(v, nranks, count);
                    break;
            }
            break;
        case CollKind::Allgather:
            if (algo == Algo::Linear) {
                sim_allgather_linear(v, nranks, count);
            } else if (algo == Algo::Ring) {
                sim_allgather_ring(v, nranks, count);
            } else {
                sim_reduce_tree(v, nranks, count);  // gather = same shape
                sim_bcast_tree(v, nranks,
                               static_cast<std::size_t>(nranks) * count);
            }
            break;
    }
    auto out = v.result();
    switch (kind) {
        case CollKind::Bcast: out.bcast_bytes = out.bytes; break;
        case CollKind::Reduce: out.reduce_bytes = out.bytes; break;
        case CollKind::Allreduce: out.allreduce_bytes = out.bytes; break;
        case CollKind::Allgather: out.allgather_bytes = out.bytes; break;
    }
    return out;
}

namespace {

std::vector<int> chop_dim(std::int64_t n, int nb) {
    std::vector<int> out;
    while (n > 0) {
        int const b = n < nb ? static_cast<int>(n) : nb;
        out.push_back(b);
        n -= b;
    }
    return out;
}

/// Largest divisor of n that is <= sqrt(n) — the near-square grid rule the
/// driver and choose_summa_plan share.
int near_square_p(int n) {
    int best = 1;
    for (int d = 1; d * d <= n; ++d)
        if (n % d == 0)
            best = d;
    return best;
}

}  // namespace

SummaVolume summa_volume(std::int64_t m, std::int64_t n, std::int64_t k,
                         int nb, std::size_t elem_bytes, int p, int q, int c,
                         bool deterministic) {
    comm::ProcGrid3d const g3{p, q, c};
    auto const rb = chop_dim(m, nb);
    auto const cb = chop_dim(n, nb);
    auto const kb = chop_dim(k, nb);
    int const mt = static_cast<int>(rb.size());
    int const nt = static_cast<int>(cb.size());
    int const kt = static_cast<int>(kb.size());

    auto owner_a = [&](int i, int l) { return (i % p) * q + (l % q); };
    auto owner_b = [&](int l, int j) { return (l % p) * q + (j % q); };
    auto owner_c = [&](int i, int j) { return (i % p) * q + (j % q); };

    VolumeSim v(g3.size(), elem_bytes);
    SummaVolume sv;
    auto add = [&](int from, std::size_t elems, std::uint64_t& role) {
        v.add(from, elems);
        role += static_cast<std::uint64_t>(elems) * elem_bytes;
    };

    // Replays dist_gemm's stage_step (c == 1, every step) and summa_25d's
    // fiber + re-stage + reduce loops (c > 1): owners send each operand
    // panel tile to the q - 1 / p - 1 other row/column-group members of the
    // layer that computes the step, remote layers having first received one
    // fiber copy per tile from the layer-0 owner.
    for (int l = 0; l < kt; ++l) {
        int const lay = g3.layer_of_step(l, kt);
        auto const ke = static_cast<std::size_t>(kb[static_cast<size_t>(l)]);
        for (int i = 0; i < mt; ++i) {
            auto const e = static_cast<std::size_t>(rb[static_cast<size_t>(i)]) * ke;
            int const own = owner_a(i, l);
            if (lay != 0)
                add(own, e, sv.fiber_bytes);
            for (int r = 0; r < q - 1; ++r)
                add(g3.global(lay, own), e, sv.stage_bytes);
        }
        for (int j = 0; j < nt; ++j) {
            auto const e = ke * static_cast<std::size_t>(cb[static_cast<size_t>(j)]);
            int const own = owner_b(l, j);
            if (lay != 0)
                add(own, e, sv.fiber_bytes);
            for (int r = 0; r < p - 1; ++r)
                add(g3.global(lay, own), e, sv.stage_bytes);
        }
        if (lay != 0 && deterministic) {
            // ExactOrder: one product tile per C tile per remote step.
            for (int j = 0; j < nt; ++j)
                for (int i = 0; i < mt; ++i)
                    add(g3.global(lay, owner_c(i, j)),
                        static_cast<std::size_t>(rb[static_cast<size_t>(i)])
                            * static_cast<std::size_t>(
                                cb[static_cast<size_t>(j)]),
                        sv.reduce_bytes);
        }
    }
    if (!deterministic) {
        // PartialSum: one partial per C tile per populated remote layer.
        for (int lay = 1; lay < g3.c; ++lay) {
            if (g3.step_lo(lay, kt) >= g3.step_hi(lay, kt))
                continue;
            for (int j = 0; j < nt; ++j)
                for (int i = 0; i < mt; ++i)
                    add(g3.global(lay, owner_c(i, j)),
                        static_cast<std::size_t>(rb[static_cast<size_t>(i)])
                            * static_cast<std::size_t>(
                                cb[static_cast<size_t>(j)]),
                        sv.reduce_bytes);
        }
    }
    sv.total = v.result();
    sv.total.p2p_bytes = sv.stage_bytes;
    sv.total.bcast_bytes = sv.fiber_bytes;
    sv.total.reduce_bytes = sv.reduce_bytes;
    return sv;
}

SummaPlan choose_summa_plan(int P, std::int64_t m, std::int64_t n,
                            std::int64_t k, int nb, std::size_t elem_bytes,
                            bool deterministic, comm::CommPlan forced) {
    SummaPlan best;
    bool have = false;
    for (int c = 1; c <= P; ++c) {
        if (P % c != 0)
            continue;
        int const L = P / c;
        int const p0 = near_square_p(L);
        int const q0 = L / p0;
        // The c == 1 candidate is pinned to the canonical near-square grid —
        // it is the in-tree 2D oracle path the driver runs and the baseline
        // vol2d reports. Replicated layer grids additionally try the
        // transposed orientation: for a non-square gemm the staging burden
        // (q - 1 per A tile vs p - 1 per B tile) is asymmetric.
        int const orientations = (c > 1 && p0 != q0) ? 2 : 1;
        for (int ori = 0; ori < orientations; ++ori) {
            int const p = ori ? q0 : p0;
            int const q = ori ? p0 : q0;
            auto vol = summa_volume(m, n, k, nb, elem_bytes, p, q, c,
                                    deterministic);
            if (c == 1)
                best.vol2d = vol;
            if (forced == comm::CommPlan::Grid2d && c != 1)
                continue;
            if (forced == comm::CommPlan::Grid25d && c == 1 && P > 1)
                continue;
            if (!have
                || vol.total.max_rank_bytes < best.vol.total.max_rank_bytes) {
                best.p = p;
                best.q = q;
                best.c = c;
                best.vol = vol;
                have = true;
            }
        }
    }
    return best;
}

QrTaskCounts qr_task_counts(int mt1, int nt, bool structured) {
    QrTaskCounts c;
    int const mt = mt1 + nt;
    if (!structured) {
        // set_identity(W2) + geqrf(W) + set_identity(Q) + ungqr(W -> Q).
        c.init = static_cast<std::int64_t>(nt) * nt      // W2 := I
                 + static_cast<std::int64_t>(mt) * nt;   // Q := I
        for (int k = 0; k < nt; ++k) {
            ++c.geqrt;
            c.unmqr += nt - 1 - k;           // geqrf trailing row
            c.tsqrt += mt - 1 - k;
            c.tsmqr += static_cast<std::int64_t>(mt - 1 - k) * (nt - 1 - k);
            c.tsmqr += static_cast<std::int64_t>(mt - 1 - k) * (nt - k);  // ungqr
            c.unmqr += nt - k;               // ungqr geqrt row
        }
        return c;
    }
    // w2_init per panel + geqrf_stacked_tri + Q1 identity + q2_init
    // off-diagonal zero fills + ungqr_stacked_tri.
    c.init = static_cast<std::int64_t>(nt)                 // w2_init
             + static_cast<std::int64_t>(mt1) * nt         // Q1 := [I; 0]
             + static_cast<std::int64_t>(nt) * (nt - 1);   // q2_init
    for (int k = 0; k < nt; ++k) {
        ++c.geqrt;
        c.unmqr += nt - 1 - k;
        c.tsqrt += (mt1 - 1 - k) + k;  // W1 rows + W2 fill rows
        c.tsmqr += static_cast<std::int64_t>(mt1 - 1) * (nt - 1 - k);
        ++c.ttqrt;
        c.ttmqr += nt - 1 - k;
        // ungqr_stacked_tri: fill rows + W1 rows apply to columns k..nt-1,
        // the ttmqr row likewise, then the geqrt row.
        c.tsmqr += static_cast<std::int64_t>(mt1 - 1) * (nt - k);
        c.ttmqr += nt - k;
        c.unmqr += nt - k;
    }
    return c;
}

namespace {

/// Mirror of dev::Executor's batching collector: one open group, joined on
/// (name, per-op flops, priority, arity) equality, flushed by a key change,
/// a non-batchable submission, max_batch, or a fence. Counts only — the
/// replay below feeds it the drivers' exact submission order.
struct BatchSim {
    explicit BatchSim(int mb) : max_batch(std::max(1, mb)) {}

    int max_batch;
    std::int64_t ops = 0;
    std::int64_t tasks = 0;

    void submit(char const* name, double flops, int priority,
                std::size_t arity) {
        ++ops;
        if (!dev::Executor::batchable(name)) {
            flush();
            ++tasks;
            return;
        }
        bool const joins = open_ && open_name_ == name && open_flops_ == flops
                           && open_prio_ == priority && open_arity_ == arity;
        if (!joins)
            flush();
        if (!open_) {
            open_ = true;
            open_name_ = name;
            open_flops_ = flops;
            open_prio_ = priority;
            open_arity_ = arity;
        }
        if (++open_n_ >= max_batch)
            flush();
    }

    void flush() {
        if (!open_)
            return;
        ++tasks;
        open_ = false;
        open_n_ = 0;
    }

private:
    bool open_ = false;
    std::string open_name_;
    double open_flops_ = 0;
    int open_prio_ = 0;
    std::size_t open_arity_ = 0;
    int open_n_ = 0;
};

}  // namespace

BatchedDagCounts qr_batched_counts(int mt1, int nt, int nb, bool structured,
                                   int max_batch) {
    BatchSim sim(max_batch);
    int const mt = mt1 + nt;
    double const upd = 4.0 * nb * nb * nb;  // unmqr/tsmqr per-op flop key
    auto set_sweep = [&](std::int64_t tiles) {
        for (std::int64_t t = 0; t < tiles; ++t)
            sim.submit("set", 0.0, 0, 1);
        sim.flush();  // la::set ends with op_fence
    };

    if (!structured) {
        // set_identity(W2) + geqrf(W) + set_identity(Q) + ungqr, exactly as
        // qr_task_counts' dense contract.
        set_sweep(static_cast<std::int64_t>(nt) * nt);
        for (int k = 0; k < nt; ++k) {
            sim.submit("geqrt", 0.0, 1, 2);
            for (int j = k + 1; j < nt; ++j)
                sim.submit("unmqr", upd, 0, 3);
            for (int i = k + 1; i < mt; ++i) {
                sim.submit("tsqrt", 0.0, 1, 3);
                for (int j = k + 1; j < nt; ++j)
                    sim.submit("tsmqr", upd, 0, 4);
            }
        }
        sim.flush();
        set_sweep(static_cast<std::int64_t>(mt) * nt);
        for (int k = nt - 1; k >= 0; --k) {
            for (int i = mt - 1; i > k; --i)
                for (int j = k; j < nt; ++j)
                    sim.submit("tsmqr", upd, 0, 4);
            for (int j = k; j < nt; ++j)
                sim.submit("unmqr", upd, 0, 3);
        }
        sim.flush();
        return {sim.ops, sim.tasks};
    }

    // geqrf_stacked_tri + ungqr_stacked_tri.
    double const ttm_first = flops::ttmqr(nb, nb, nb, true);
    double const ttm_upd = flops::ttmqr(nb, nb, nb, false);
    for (int k = 0; k < nt; ++k) {
        sim.submit("geqrt", 0.0, 1, 2);
        for (int j = k + 1; j < nt; ++j)
            sim.submit("unmqr", upd, 0, 3);
        for (int i = k + 1; i < mt1; ++i) {
            sim.submit("tsqrt", 0.0, 1, 3);
            for (int j = k + 1; j < nt; ++j)
                sim.submit("tsmqr", upd, 0, 4);
        }
        sim.submit("w2_init", 0.0, 1, 1);
        sim.submit("ttqrt", 0.0, 1, 3);
        for (int j = k + 1; j < nt; ++j)
            sim.submit("ttmqr", ttm_first, 0, 4);
        for (int i2 = 0; i2 < k; ++i2) {
            sim.submit("tsqrt", 0.0, 1, 3);
            for (int j = k + 1; j < nt; ++j)
                sim.submit("tsmqr", upd, 0, 4);
        }
    }
    sim.flush();
    set_sweep(static_cast<std::int64_t>(mt1) * nt);
    for (std::int64_t t = 0; t < static_cast<std::int64_t>(nt) * (nt - 1); ++t)
        sim.submit("q2_init", 0.0, 0, 1);
    for (int k = nt - 1; k >= 0; --k) {
        for (int i2 = k - 1; i2 >= 0; --i2)
            for (int j = k; j < nt; ++j)
                sim.submit("tsmqr", upd, 0, 4);
        for (int j = k; j < nt; ++j)
            sim.submit("ttmqr", j == k ? ttm_first : ttm_upd, 0, 4);
        for (int i = mt1 - 1; i > k; --i)
            for (int j = k; j < nt; ++j)
                sim.submit("tsmqr", upd, 0, 4);
        for (int j = k; j < nt; ++j)
            sim.submit("unmqr", upd, 0, 3);
    }
    sim.flush();
    return {sim.ops, sim.tasks};
}

int CostModel::total_devices() const {
    return dev_ == Device::Gpu ? m_.nodes * m_.gpus : m_.nodes;
}

double CostModel::device_rate(KernelClass cls, double n_local) const {
    double const base = dev_ == Device::Gpu ? m_.gpu_gflops
                                            : m_.cpu_node_gflops();
    double eff_max, ramp;
    if (dev_ == Device::Gpu) {
        ramp = m_.gpu_ramp_n;
        eff_max = (cls == KernelClass::Panel) ? m_.gpu_panel_eff
                                              : m_.gpu_gemm_eff;
    } else {
        ramp = m_.cpu_ramp_n;
        eff_max = (cls == KernelClass::Panel) ? m_.cpu_panel_eff
                                              : m_.cpu_gemm_eff;
    }
    if (cls == KernelClass::Trsm)
        eff_max *= 0.8;  // triangular solves trail gemm slightly
    // Saturation ramp in the per-device local dimension; the tile size also
    // gates kernel efficiency (small nb starves the device)...
    double const ramp_f = n_local / (n_local + ramp);
    double const nb_f = static_cast<double>(nb_) / (nb_ + (dev_ == Device::Gpu ? 160.0 : 48.0));
    // ...while too-large tiles starve the *scheduler*: a device needs several
    // concurrent tiles per execution unit to stay busy. This is what makes
    // the CPU optimum (nb = 192, 42 cores/node) sit below the GPU optimum
    // (nb = 320) in Section 7.2's tuning.
    double const tiles = (n_local / nb_) * (n_local / nb_);
    double const want = dev_ == Device::Gpu ? 280.0 : 8.0 * m_.cpu_cores;
    double const gran_f = tiles / (tiles + want);
    return base * eff_max * ramp_f * nb_f * gran_f;
}

TimeBreakdown CostModel::op_time(OpSpec const& op) const {
    TimeBreakdown t;
    int const P = total_devices();
    double const sqrtP = std::sqrt(static_cast<double>(P));
    double const n_local =
        static_cast<double>(op.n) / std::max(1.0, sqrtP);

    // --- compute -----------------------------------------------------------
    double const agg_update_rate =
        device_rate(KernelClass::Gemm, n_local) * 1e9 * P;
    t.update = op.update_flops / agg_update_rate;

    // Panel chain: distributed over one process column (sqrt(P) devices),
    // at panel efficiency.
    double const panel_rate =
        device_rate(KernelClass::Panel, n_local) * 1e9 * sqrtP;
    t.panel = op.panel_flops / panel_rate;

    // --- communication -------------------------------------------------------
    double const elem = 8.0;  // double precision (paper Section 7.1)
    double const words_per_proc =
        op.comm_factor * static_cast<double>(op.n) * static_cast<double>(op.n)
        / std::max(1.0, sqrtP);
    double const procs_per_node = static_cast<double>(P) / m_.nodes;
    double const bytes_per_node = words_per_proc * procs_per_node * elem;

    // Split intra-node (fast fabric) vs inter-node (NIC) traffic.
    double const inter_frac =
        m_.nodes > 1 ? 1.0 - 1.0 / std::sqrt(static_cast<double>(m_.nodes))
                     : 0.0;
    double const intra_bytes = bytes_per_node * (1.0 - inter_frac);
    double const inter_bytes = bytes_per_node * inter_frac;
    double net = inter_bytes / (m_.net_bw_gbs * 1e9)
                 + intra_bytes / (m_.d2h_bw_gbs * 1e9);
    if (dev_ == Device::Gpu && !m_.gpu_aware_mpi) {
        // Inter-node messages stage through host memory both ways.
        net += 2.0 * inter_bytes / (m_.d2h_bw_gbs * 1e9);
    }
    t.network = net;

    t.latency = op.panel_steps * std::log2(std::max(2, P))
                * m_.net_latency_us * 1e-6;

    // --- schedule composition -------------------------------------------------
    if (sched_ == Schedule::TaskDataflow) {
        // Dataflow overlaps panel chains, updates, and communication; the
        // residual serialization is (1 - task_overlap).
        double const overlapped =
            std::max({t.update, t.panel, t.network});
        double const serial = (t.update + t.panel + t.network) - overlapped;
        t.total = overlapped + (1.0 - m_.task_overlap) * serial + t.latency;
    } else {
        // Bulk-synchronous: phases add up, idle cores while the panel runs,
        // and a barrier per panel step.
        t.barrier = op.panel_steps * m_.forkjoin_barrier_us * 1e-6
                    * std::log2(std::max(2, P));
        t.total = (t.update + t.panel) * (1.0 + m_.forkjoin_idle_frac)
                  + t.network + t.latency + t.barrier;
    }
    return t;
}

TimeBreakdown CostModel::total_time(std::vector<OpSpec> const& ops,
                                    int sync_points) const {
    TimeBreakdown sum;
    for (auto const& op : ops)
        sum += op_time(op);
    // Convergence checks synchronize the whole machine.
    sum.latency += sync_points * m_.net_latency_us * 1e-6
                   * std::log2(std::max(2, total_devices()));
    sum.total += sync_points * m_.net_latency_us * 1e-6
                 * std::log2(std::max(2, total_devices()));
    return sum;
}

}  // namespace tbp::perf
