// Per-operation cost model for 2D block-cyclic tiled algorithms.
//
// Each high-level operation (geqrf, ungqr, gemm, herk, potrf, trsm) is
// charged:
//   compute   - update flops at the kernel-class rate of the device, plus a
//               panel chain whose throughput is panel-efficiency bound (the
//               lookahead-vs-fork-join distinction lives here);
//   network   - 2D-distribution communication volume c_w * n^2 / sqrt(P)
//               words per process plus per-panel message latency, routed
//               over NVLink/Infinity-Fabric intra-node and the NIC
//               inter-node, with a host staging penalty when MPI is not
//               GPU-aware (paper Section 7.2's Summit/Frontier contrast);
//   schedule  - TaskDataflow overlaps panel/update/comm (max composition,
//               damped by task_overlap); ForkJoin adds them, loses
//               forkjoin_idle_frac to idle cores, and pays a barrier per
//               panel step (the ScaLAPACK bulk-synchronous penalty of
//               Section 3).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "comm/comm_stats.hh"
#include "comm/grid3d.hh"
#include "perf/machine.hh"

namespace tbp::perf {

/// Collective operation shapes whose communication volume the model
/// predicts (mirroring the algorithms in comm/collectives.hh exactly).
enum class CollKind { Bcast, Reduce, Allreduce, Allgather };

/// Predicted aggregate traffic of one collective across all ranks.
struct CollVolume {
    std::uint64_t messages = 0;  ///< point-to-point messages, all ranks
    std::uint64_t bytes = 0;     ///< payload bytes, all ranks

    /// Largest per-rank send count — the root/ring bottleneck the
    /// algorithmic collectives exist to remove (linear bcast: P-1 at the
    /// root; tree: ceil(log2 P)).
    std::uint64_t max_rank_sends = 0;

    /// Largest per-rank outgoing byte count — the bandwidth bottleneck;
    /// ring's chunking wins here (~2n/P per rank vs the linear root's
    /// (P-1) n) even though its message count is higher.
    std::uint64_t max_rank_bytes = 0;

    /// Per-role byte attribution: for collective_volume the field matching
    /// `kind` equals `bytes` and the rest are zero (an allreduce's internal
    /// reduce+bcast legs are charged to allreduce_bytes — the caller asked
    /// for an allreduce); summa_volume splits one gemm's traffic into
    /// within-layer staging (p2p), fiber replication (the bcast role of the
    /// third grid dimension) and C reduction. Note the maxes above are
    /// maxes of per-rank sums, so per-role CollVolumes cannot simply be
    /// added — attribution lives alongside one simulated whole.
    std::uint64_t bcast_bytes = 0;
    std::uint64_t reduce_bytes = 0;
    std::uint64_t allreduce_bytes = 0;
    std::uint64_t allgather_bytes = 0;
    std::uint64_t p2p_bytes = 0;
};

/// Exact communication volume of a collective as implemented in
/// comm/collectives.hh: the predictors replay the algorithm loop structure,
/// so measured CommStats totals from a single collective must match them
/// exactly (tested). `algo` must be concrete (resolve Auto via
/// comm::coll::resolve_* first); `count` is elements per rank and
/// `elem_bytes` the scalar size.
CollVolume collective_volume(CollKind kind, comm::coll::Algo algo, int nranks,
                             std::size_t count, std::size_t elem_bytes);

/// Exact traffic of one distributed SUMMA gemm (m x k times k x n, tile
/// size nb) as implemented in comm/: c == 1 replays dist_gemm's per-step
/// panel staging; c > 1 replays summa_25d's fiber replication, within-layer
/// staging, and C reduction in the mode the deterministic flag selects
/// (ExactOrder ships a product tile per remote step; PartialSum one partial
/// per C tile per layer). Measured per-rank CommStats from a lone gemm in a
/// p*q*c world match these numbers exactly (tested and smoke-benched).
struct SummaVolume {
    CollVolume total;  ///< totals + per-rank bottleneck maxes + attribution
    std::uint64_t stage_bytes = 0;   ///< within-layer operand staging (p2p)
    std::uint64_t fiber_bytes = 0;   ///< replication along the c fibers
    std::uint64_t reduce_bytes = 0;  ///< C contributions back to layer 0
};

SummaVolume summa_volume(std::int64_t m, std::int64_t n, std::int64_t k,
                         int nb, std::size_t elem_bytes, int p, int q, int c,
                         bool deterministic);

/// Grid shape choose_summa_plan settled on, with the modeled traffic of the
/// pick and of the 2D reference at the same total rank count.
struct SummaPlan {
    int p = 1, q = 1, c = 1;
    SummaVolume vol;    ///< the chosen (p, q, c)
    SummaVolume vol2d;  ///< the c == 1 near-square candidate at the same P
};

/// Bottleneck-driven 2D-vs-2.5D selection: enumerate every replication
/// depth c dividing P with a near-square p x q layer grid (p*q*c == P) and
/// return the candidate minimizing total.max_rank_bytes for the reduction
/// mode that will actually run (ties prefer smaller c — the shallower grid
/// costs less workspace). `forced` restricts the candidate set: Grid2d to
/// c == 1, Grid25d to c > 1 (for prime P that leaves only the degenerate
/// c == P single-rank-per-layer shape, still a valid grid).
SummaPlan choose_summa_plan(int P, std::int64_t m, std::int64_t n,
                            std::int64_t k, int nb, std::size_t elem_bytes,
                            bool deterministic, comm::CommPlan forced);

/// Task-count breakdown of one stacked-QR factor + Q generation, by kernel.
/// `init` counts the zero/identity initialization tasks (set_identity
/// sweeps for the dense path; w2_init/q2_init for the structured one).
struct QrTaskCounts {
    std::int64_t geqrt = 0;
    std::int64_t unmqr = 0;
    std::int64_t tsqrt = 0;
    std::int64_t tsmqr = 0;
    std::int64_t ttqrt = 0;
    std::int64_t ttmqr = 0;
    std::int64_t init = 0;
    std::int64_t total() const {
        return geqrt + unmqr + tsqrt + tsmqr + ttqrt + ttmqr + init;
    }
};

/// Exact task counts of geqrf + ungqr on the stacked [W1; W2] tile grid
/// (W1 mt1 x nt, W2 nt x nt) — dense, or geqrf_stacked_tri +
/// ungqr_stacked_tri when `structured`. Replays the submission loops, so
/// counts match the engine's executed-task count for the pair exactly
/// (tested in test_perf).
QrTaskCounts qr_task_counts(int mt1, int nt, bool structured);

/// Engine-DAG shape of the same factor + Q-generation pair when routed
/// through the batched device executor (dev::Executor) with the given
/// max_batch. `tile_ops` is the per-tile operation count — always equal to
/// qr_task_counts(mt1, nt, structured).total() and to the traced
/// DagStats::tile_ops; `engine_tasks` is the scheduler task count after
/// coalescing, matching the traced DagStats::tasks exactly for a uniform
/// nb x nb tiling (tested in test_device).
struct BatchedDagCounts {
    std::int64_t tile_ops = 0;
    std::int64_t engine_tasks = 0;

    /// Scheduler-load reduction: tile ops per engine task.
    double coalescing() const {
        return engine_tasks > 0
                   ? static_cast<double>(tile_ops)
                         / static_cast<double>(engine_tasks)
                   : 1.0;
    }
};

/// Replay the geqrf(+set_identity) + ungqr submission streams through the
/// batching collector's grouping rule (same kernel name, per-op flops,
/// priority and arity coalesce; non-batchable ops and fences flush), for a
/// uniform nb x nb tile grid. max_batch < 1 is clamped to 1 (no batching:
/// engine_tasks == tile_ops).
BatchedDagCounts qr_batched_counts(int mt1, int nt, int nb, bool structured,
                                   int max_batch);

enum class Schedule { TaskDataflow, ForkJoin };

/// Kernel class determines the efficiency curve applied to a device.
enum class KernelClass { Gemm, Panel, Trsm, Memcpy };

/// One high-level operation in an algorithm's op stream.
struct OpSpec {
    std::string name;
    double update_flops = 0;  ///< trailing-matrix (compute-bound) flops
    double panel_flops = 0;   ///< panel-chain (latency-bound) flops
    double comm_factor = 0;   ///< c_w in words = c_w * n^2 / sqrt(P) per proc
    double panel_steps = 0;   ///< # of panel steps (messages, barriers)
    std::int64_t n = 0;       ///< problem dimension driving comm volume
};

/// Time breakdown for one operation or a whole algorithm (seconds).
struct TimeBreakdown {
    double update = 0;
    double panel = 0;
    double network = 0;
    double latency = 0;
    double barrier = 0;
    double total = 0;

    TimeBreakdown& operator+=(TimeBreakdown const& o) {
        update += o.update;
        panel += o.panel;
        network += o.network;
        latency += o.latency;
        barrier += o.barrier;
        total += o.total;
        return *this;
    }
};

class CostModel {
public:
    CostModel(MachineModel machine, Device device, Schedule schedule, int nb)
        : m_(std::move(machine)), dev_(device), sched_(schedule), nb_(nb) {}

    MachineModel const& machine() const { return m_; }
    Device device() const { return dev_; }
    Schedule schedule() const { return sched_; }
    int nb() const { return nb_; }

    /// Devices participating (GPUs or a per-core view collapsed to nodes).
    int total_devices() const;

    /// Effective rate (Gflop/s) of one device for a kernel class, given the
    /// per-device local dimension (efficiency ramp).
    double device_rate(KernelClass cls, double n_local) const;

    /// Model the execution time of one operation.
    TimeBreakdown op_time(OpSpec const& op) const;

    /// Sum a stream of operations (adds per-iteration sync latency).
    TimeBreakdown total_time(std::vector<OpSpec> const& ops,
                             int sync_points = 0) const;

private:
    MachineModel m_;
    Device dev_;
    Schedule sched_;
    int nb_;
};

}  // namespace tbp::perf
