// Measured scheduler-efficiency report for the task runtime.
//
// The modeled figures (cost_model.hh, qdwh_model.hh) charge the fork-join
// schedule its barrier/idle penalty analytically; this module is the
// measured counterpart on the host: it combines the recorded DAG statistics
// (total work, critical path, average parallelism) with the scheduler's own
// event counters (local pops, steals, cv sleeps) and the per-worker
// idle/busy split of the actual execution, so benches and the driver can
// print how close the runtime came to the DAG's available parallelism.

#pragma once

#include <sstream>
#include <string>
#include <vector>

#include "comm/communicator.hh"
#include "runtime/engine.hh"
#include "runtime/trace_analysis.hh"

namespace tbp::perf {

/// Measured communication-engine counters of one World::run, the comm
/// counterpart of SchedReport: per-rank and aggregate message/byte/wait
/// figures that benches and the driver print next to the cost model's
/// collective_volume predictions.
struct CommReport {
    std::vector<comm::CommStats> per_rank;
    comm::CommStats total;
    std::uint64_t leaked = 0;  ///< unmatched messages (0 for a correct run)

    /// Largest per-rank send count — the measured bottleneck metric that
    /// collective_volume's max_rank_sends predicts.
    std::uint64_t max_rank_sends() const {
        std::uint64_t m = 0;
        for (auto const& s : per_rank)
            m = std::max(m, s.sends);
        return m;
    }

    /// Largest per-rank outgoing byte count (collective_volume's
    /// max_rank_bytes — the bandwidth bottleneck).
    std::uint64_t max_rank_bytes() const {
        std::uint64_t m = 0;
        for (auto const& s : per_rank)
            m = std::max(m, s.bytes_sent);
        return m;
    }

    std::string format() const {
        std::ostringstream os;
        os << "comm report: " << per_rank.size() << " ranks\n"
           << "  messages " << total.sends << " (max/rank "
           << max_rank_sends() << "), bytes " << total.bytes_sent
           << ", collectives " << total.collectives << "\n"
           << "  wait " << total.wait_seconds << " rank-seconds";
        if (leaked)
            os << ", LEAKED " << leaked << " messages";
        os << "\n";
        return os.str();
    }
};

/// Snapshot the traffic counters of the last World::run.
inline CommReport comm_report(comm::World const& world) {
    CommReport r;
    for (int rank = 0; rank < world.size(); ++rank)
        r.per_rank.push_back(world.stats(rank));
    r.total = world.total_stats();
    r.leaked = world.leaked_messages();
    return r;
}

struct SchedReport {
    rt::DagStats dag;                  ///< schedule-independent DAG stats
    rt::SchedulerEfficiency sched;     ///< measured steal/idle behaviour
    rt::Engine::SchedStats counters;   ///< engine event counters
    int workers = 0;
    double measured_flops = 0;         ///< tile-kernel flops (kernel/stats.hh)

    /// Executed tasks per second of wall time (scheduler throughput).
    double tasks_per_sec() const {
        return sched.makespan > 0
                   ? static_cast<double>(dag.tasks) / sched.makespan
                   : 0.0;
    }

    /// Achieved compute rate over the makespan: the measured counterpart of
    /// the machine model's assumed GFLOP/s (cost_model's cpu_core_gflops).
    double achieved_gflops() const {
        return sched.makespan > 0 ? measured_flops / sched.makespan / 1e9
                                  : 0.0;
    }

    std::string format() const {
        std::ostringstream os;
        os << "scheduler report: " << dag.tasks << " tasks on " << workers
           << " workers";
        if (dag.tile_ops > dag.tasks)
            os << " (" << dag.tile_ops << " tile ops batched)";
        os << "\n"
           << "  makespan " << sched.makespan << " s, " << tasks_per_sec()
           << " tasks/s, utilization " << sched.utilization << "\n"
           << "  DAG: work " << dag.total_work << " s, critical path "
           << dag.critical_path << " s, avg parallelism "
           << dag.avg_parallelism << "\n"
           << "  steals " << counters.steals << " (fraction "
           << sched.steal_fraction << "), local pops " << counters.local_pops
           << ", global pops " << counters.global_pops << ", sleeps "
           << counters.sleeps << "\n"
           << "  idle " << sched.idle << " worker-seconds, priority tasks "
           << sched.priority_tasks << "\n";
        if (measured_flops > 0) {
            os << "  kernel flops " << measured_flops << ", achieved "
               << achieved_gflops() << " GFLOP/s\n";
        }
        return os.str();
    }
};

/// Snapshot a report from an engine whose trace covers the run of interest.
/// Call after Engine::wait(). Pass the tile-kernel flop delta for the region
/// (blas::kernel::flops_performed() before/after) to get achieved GFLOP/s in
/// the report; the no-argument form leaves that line out.
inline SchedReport sched_report(rt::Engine const& eng,
                                double measured_flops = 0) {
    SchedReport r;
    r.dag = rt::analyze(eng.trace());
    r.sched = rt::scheduler_efficiency(eng.trace());
    r.counters = eng.sched_stats();
    r.workers = eng.num_threads();
    r.measured_flops = measured_flops;
    return r;
}

}  // namespace tbp::perf
