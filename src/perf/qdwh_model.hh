// QDWH end-to-end performance projection: composes the Algorithm 1 op
// stream (condition estimate, QR-based iterations on the stacked
// [sqrt(c) A; I], Cholesky-based iterations, H formation) and charges it to
// a machine/device/schedule through the cost model.
//
// Flop accounting matches the paper's Section 4 complexity formula; the
// reported Tflop/s uses that formula's flops (as performance papers do), so
// model output is directly comparable to Figures 2-6.

#pragma once

#include <cstdint>
#include <vector>

#include "perf/cost_model.hh"
#include "perf/machine.hh"

namespace tbp::perf {

struct QdwhPerfResult {
    double seconds = 0;
    double tflops = 0;        ///< paper-formula flops / time
    double model_flops = 0;   ///< Section 4 formula
    double peak_fraction = 0; ///< tflops / machine peak
    bool fits_memory = true;
    int it_qr = 3;
    int it_chol = 3;
    TimeBreakdown breakdown;
};

/// The operation stream of one QDWH run on an n x n matrix. With
/// structured_qr the QR iterations charge the stacked-[sqrt(c) A; I]
/// structure exploitation (7/3 n^3 geqrf + 7/3 n^3 ungqr + n^3 gemm
/// instead of 10/3 + 10/3 + 2); default false keeps the paper's Section 4
/// dense formula as the anchor.
std::vector<OpSpec> qdwh_ops(std::int64_t n, int nb, int it_qr, int it_chol,
                             bool structured_qr = false);

/// Project a full QDWH run. Defaults model the paper's benchmark case:
/// ill-conditioned input, 3 QR + 3 Cholesky iterations.
QdwhPerfResult qdwh_perf(MachineModel const& machine, Device device,
                         Schedule schedule, std::int64_t n, int nb,
                         int it_qr = 3, int it_chol = 3,
                         bool structured_qr = false);

/// Exact task-level replay of the stacked-QR factor + Q generation: returns
/// the total count the tile kernels will add to
/// blas::kernel::flops_performed() for one geqrf + ungqr on W = [W1; W2]
/// (dense) or geqrf_stacked_tri + ungqr_stacked_tri (structured), with W1's
/// row tile sizes in `w1_rows` and the (square-tile) column sizes in
/// `cols`. `weight` is fma_flops<T>() / 2 (1 for real scalars, 4 for
/// complex). The kernel counter truncates each call's charge to uint64
/// before accumulating, and so does this replay — measured minus modeled
/// must be exactly zero (tested in test_perf, recorded by bench_qdwh_cpu).
double stacked_qr_kernel_flops(std::vector<int> const& w1_rows,
                               std::vector<int> const& cols, bool structured,
                               double weight);

/// Measured-vs-modeled comparison for a real run: the achieved compute rate
/// from the tile kernels' flop counter (blas::kernel::flops_performed()
/// delta over the region) against the cost model's projected rate for the
/// same problem. `ratio` > 1 means the host beat the model's assumptions.
struct AchievedRate {
    double measured_flops = 0;   ///< tile-kernel flops actually executed
    double seconds = 0;          ///< measured wall time
    double achieved_gflops = 0;  ///< measured_flops / seconds
    double modeled_gflops = 0;   ///< model_flops / model seconds
    double ratio = 0;            ///< achieved / modeled
};

AchievedRate achieved_vs_model(QdwhPerfResult const& model,
                               double measured_flops, double seconds);

}  // namespace tbp::perf
