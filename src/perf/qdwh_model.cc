#include "perf/qdwh_model.hh"

#include "common/flops.hh"

namespace tbp::perf {

std::vector<OpSpec> qdwh_ops(std::int64_t n, int nb, int it_qr, int it_chol) {
    double const dn = static_cast<double>(n);
    double const n2 = dn * dn;
    double const n3 = n2 * dn;
    double const steps = dn / nb;

    std::vector<OpSpec> ops;

    // Stage 1: norm2est — a handful of gemv sweeps plus reductions.
    ops.push_back({"norm2est", 8 * n2, 0, 0.05, 8, n});

    // Stage 2: condition estimate — QR of A plus trcondest's O(n^2) solves.
    {
        double const total = flops::geqrf(dn, dn);
        double const panel = n2 * nb;
        ops.push_back({"condest_geqrf", total - panel, panel, 1.5, steps, n});
        ops.push_back({"trcondest", 10 * n2, 0, 0.02, 10, n});
    }

    // Stage 3a: QR-based iterations on the stacked (2n) x n matrix.
    for (int k = 0; k < it_qr; ++k) {
        double const qr_total = flops::geqrf(2 * dn, dn);   // 10/3 n^3
        double const qr_panel = 3 * n2 * nb;
        ops.push_back({"qr_geqrf", qr_total - qr_panel, qr_panel, 2.0, steps, n});
        double const un_total = flops::ungqr(2 * dn, dn, dn);  // 10/3 n^3
        double const un_panel = 3 * n2 * nb;
        ops.push_back({"qr_ungqr", un_total - un_panel, un_panel, 2.0, steps, n});
        ops.push_back({"qr_gemm", 2 * n3, 0, 2.0, steps, n});
    }

    // Stage 3b: Cholesky-based iterations.
    for (int k = 0; k < it_chol; ++k) {
        ops.push_back({"chol_herk", n3, 0, 1.0, steps, n});
        double const po_total = flops::potrf(dn);  // n^3/3
        double const po_panel = 0.5 * n2 * nb;
        ops.push_back({"chol_potrf", po_total - po_panel, po_panel, 0.5, steps, n});
        // Two right-side triangular solves (A Z^{-1}); trsm trails gemm rate
        // slightly — folded in as a 1.15x inflation.
        ops.push_back({"chol_trsm", 2 * n3 * 1.15, 0, 1.0, steps, n});
    }

    // Stage 4: H = U^H A (+ symmetrization, bandwidth-bound, negligible).
    ops.push_back({"h_gemm", 2 * n3, 0, 2.0, steps, n});

    return ops;
}

QdwhPerfResult qdwh_perf(MachineModel const& machine, Device device,
                         Schedule schedule, std::int64_t n, int nb,
                         int it_qr, int it_chol) {
    CostModel cm(machine, device, schedule, nb);
    auto const ops = qdwh_ops(n, nb, it_qr, it_chol);

    QdwhPerfResult r;
    r.it_qr = it_qr;
    r.it_chol = it_chol;
    // One global sync per iteration (convergence norm) plus setup stages.
    r.breakdown = cm.total_time(ops, it_qr + it_chol + 4);
    r.seconds = r.breakdown.total;
    r.model_flops = flops::qdwh_model(static_cast<double>(n), it_qr, it_chol);
    r.tflops = r.model_flops / r.seconds / 1e12;
    r.peak_fraction = r.tflops * 1e12 / (machine.peak_gflops(device) * 1e9);
    r.fits_memory = n <= machine.max_n(device);
    return r;
}

AchievedRate achieved_vs_model(QdwhPerfResult const& model,
                               double measured_flops, double seconds) {
    AchievedRate r;
    r.measured_flops = measured_flops;
    r.seconds = seconds;
    r.achieved_gflops = seconds > 0 ? measured_flops / seconds / 1e9 : 0.0;
    r.modeled_gflops = model.tflops * 1e3;
    r.ratio = r.modeled_gflops > 0 ? r.achieved_gflops / r.modeled_gflops
                                   : 0.0;
    return r;
}

}  // namespace tbp::perf
