#include "perf/qdwh_model.hh"

#include <algorithm>

#include "common/flops.hh"

namespace tbp::perf {

std::vector<OpSpec> qdwh_ops(std::int64_t n, int nb, int it_qr, int it_chol,
                             bool structured_qr) {
    double const dn = static_cast<double>(n);
    double const n2 = dn * dn;
    double const n3 = n2 * dn;
    double const steps = dn / nb;

    std::vector<OpSpec> ops;

    // Stage 1: norm2est — a handful of gemv sweeps plus reductions.
    ops.push_back({"norm2est", 8 * n2, 0, 0.05, 8, n});

    // Stage 2: condition estimate — QR of A plus trcondest's O(n^2) solves.
    {
        double const total = flops::geqrf(dn, dn);
        double const panel = n2 * nb;
        ops.push_back({"condest_geqrf", total - panel, panel, 1.5, steps, n});
        ops.push_back({"trcondest", 10 * n2, 0, 0.02, 10, n});
    }

    // Stage 3a: QR-based iterations on the stacked (2n) x n matrix. The
    // structured path never touches the identity block's zero tiles (n^3
    // saved in geqrf and in ungqr) and the triangular Q2 halves the
    // Q1 Q2^H product (2n^3 -> n^3); its panel chain is also shorter (no
    // tsqrt below W2's diagonal).
    for (int k = 0; k < it_qr; ++k) {
        double const tri = structured_qr ? n3 : 0.0;
        double const qr_total = flops::geqrf(2 * dn, dn) - tri;  // 10/3 or 7/3
        double const qr_panel = (structured_qr ? 2.5 : 3.0) * n2 * nb;
        ops.push_back({"qr_geqrf", qr_total - qr_panel, qr_panel, 2.0, steps, n});
        double const un_total = flops::ungqr(2 * dn, dn, dn) - tri;
        double const un_panel = (structured_qr ? 2.5 : 3.0) * n2 * nb;
        ops.push_back({"qr_ungqr", un_total - un_panel, un_panel, 2.0, steps, n});
        ops.push_back({"qr_gemm", structured_qr ? n3 : 2 * n3, 0, 2.0, steps, n});
    }

    // Stage 3b: Cholesky-based iterations.
    for (int k = 0; k < it_chol; ++k) {
        ops.push_back({"chol_herk", n3, 0, 1.0, steps, n});
        double const po_total = flops::potrf(dn);  // n^3/3
        double const po_panel = 0.5 * n2 * nb;
        ops.push_back({"chol_potrf", po_total - po_panel, po_panel, 0.5, steps, n});
        // Two right-side triangular solves (A Z^{-1}); trsm trails gemm rate
        // slightly — folded in as a 1.15x inflation.
        ops.push_back({"chol_trsm", 2 * n3 * 1.15, 0, 1.0, steps, n});
    }

    // Stage 4: H = U^H A (+ symmetrization, bandwidth-bound, negligible).
    ops.push_back({"h_gemm", 2 * n3, 0, 2.0, steps, n});

    return ops;
}

QdwhPerfResult qdwh_perf(MachineModel const& machine, Device device,
                         Schedule schedule, std::int64_t n, int nb,
                         int it_qr, int it_chol, bool structured_qr) {
    CostModel cm(machine, device, schedule, nb);
    auto const ops = qdwh_ops(n, nb, it_qr, it_chol, structured_qr);

    QdwhPerfResult r;
    r.it_qr = it_qr;
    r.it_chol = it_chol;
    // One global sync per iteration (convergence norm) plus setup stages.
    r.breakdown = cm.total_time(ops, it_qr + it_chol + 4);
    r.seconds = r.breakdown.total;
    r.model_flops =
        structured_qr
            ? flops::qdwh_model_structured(static_cast<double>(n), it_qr,
                                           it_chol)
            : flops::qdwh_model(static_cast<double>(n), it_qr, it_chol);
    r.tflops = r.model_flops / r.seconds / 1e12;
    r.peak_fraction = r.tflops * 1e12 / (machine.peak_gflops(device) * 1e9);
    r.fits_memory = n <= machine.max_n(device);
    return r;
}

double stacked_qr_kernel_flops(std::vector<int> const& w1_rows,
                               std::vector<int> const& cols, bool structured,
                               double weight) {
    // Replays, task by task, the kernel calls of la::geqrf + la::ungqr on
    // the stacked shape (dense) or la::geqrf_stacked_tri +
    // la::ungqr_stacked_tri (structured), charging each call exactly what
    // the tile kernel charges: the formula times `weight`, truncated to
    // uint64 before accumulating (matching blas::kernel::count_flops).
    // Truncation-then-sum is order independent, so the replay order need
    // not match the execution order.
    std::uint64_t total = 0;
    auto charge = [&](double formula) {
        total += static_cast<std::uint64_t>(formula * weight);
    };
    int const mt1 = static_cast<int>(w1_rows.size());
    int const nt = static_cast<int>(cols.size());
    auto row = [&](int i) {
        return i < mt1 ? w1_rows[static_cast<size_t>(i)]
                       : cols[static_cast<size_t>(i - mt1)];
    };
    int const mt = mt1 + nt;

    if (!structured) {
        // geqrf on the dense (mt1 + nt) x nt tile grid.
        for (int k = 0; k < nt; ++k) {
            int const nbk = cols[static_cast<size_t>(k)];
            charge(flops::geqrf(row(k), nbk));
            for (int j = k + 1; j < nt; ++j)
                charge(flops::unmqr(row(k), cols[static_cast<size_t>(j)],
                                    std::min(row(k), nbk)));
            for (int i = k + 1; i < mt; ++i) {
                charge(flops::tsqrt(row(i), nbk));
                for (int j = k + 1; j < nt; ++j)
                    charge(flops::tsmqr(row(i), nbk,
                                        cols[static_cast<size_t>(j)]));
            }
        }
        // ungqr applies every panel to columns k..nt-1 of the stacked Q.
        for (int k = 0; k < nt; ++k) {
            int const nbk = cols[static_cast<size_t>(k)];
            for (int i = k + 1; i < mt; ++i)
                for (int j = k; j < nt; ++j)
                    charge(flops::tsmqr(row(i), nbk,
                                        cols[static_cast<size_t>(j)]));
            for (int j = k; j < nt; ++j)
                charge(flops::unmqr(row(k), cols[static_cast<size_t>(j)],
                                    std::min(row(k), nbk)));
        }
        return static_cast<double>(total);
    }

    // geqrf_stacked_tri: W1 is dense, W2's tile (i2, k) is tsqrt fill for
    // i2 < k, a ttqrt triangular fold at i2 == k, untouched below.
    for (int k = 0; k < nt; ++k) {
        int const nbk = cols[static_cast<size_t>(k)];
        charge(flops::geqrf(row(k), nbk));
        for (int j = k + 1; j < nt; ++j)
            charge(flops::unmqr(row(k), cols[static_cast<size_t>(j)],
                                std::min(row(k), nbk)));
        for (int i = k + 1; i < mt1; ++i) {
            charge(flops::tsqrt(row(i), nbk));
            for (int j = k + 1; j < nt; ++j)
                charge(flops::tsmqr(row(i), nbk, cols[static_cast<size_t>(j)]));
        }
        charge(flops::ttqrt(nbk, nbk));
        for (int j = k + 1; j < nt; ++j)
            charge(flops::ttmqr(nbk, nbk, cols[static_cast<size_t>(j)],
                                /*c2_zero=*/true));
        for (int i2 = 0; i2 < k; ++i2) {
            charge(flops::tsqrt(cols[static_cast<size_t>(i2)], nbk));
            for (int j = k + 1; j < nt; ++j)
                charge(flops::tsmqr(cols[static_cast<size_t>(i2)], nbk,
                                    cols[static_cast<size_t>(j)]));
        }
    }
    // ungqr_stacked_tri: fill rows, the ttmqr row (column k's first touch
    // through the cheaper c2_zero path), dense W1 rows, the geqrt row.
    for (int k = 0; k < nt; ++k) {
        int const nbk = cols[static_cast<size_t>(k)];
        for (int i2 = 0; i2 < k; ++i2)
            for (int j = k; j < nt; ++j)
                charge(flops::tsmqr(cols[static_cast<size_t>(i2)], nbk,
                                    cols[static_cast<size_t>(j)]));
        for (int j = k; j < nt; ++j)
            charge(flops::ttmqr(nbk, nbk, cols[static_cast<size_t>(j)],
                                /*c2_zero=*/j == k));
        for (int i = k + 1; i < mt1; ++i)
            for (int j = k; j < nt; ++j)
                charge(flops::tsmqr(row(i), nbk, cols[static_cast<size_t>(j)]));
        for (int j = k; j < nt; ++j)
            charge(flops::unmqr(row(k), cols[static_cast<size_t>(j)],
                                std::min(row(k), nbk)));
    }
    return static_cast<double>(total);
}

AchievedRate achieved_vs_model(QdwhPerfResult const& model,
                               double measured_flops, double seconds) {
    AchievedRate r;
    r.measured_flops = measured_flops;
    r.seconds = seconds;
    r.achieved_gflops = seconds > 0 ? measured_flops / seconds / 1e9 : 0.0;
    r.modeled_gflops = model.tflops * 1e3;
    r.ratio = r.modeled_gflops > 0 ? r.achieved_gflops / r.modeled_gflops
                                   : 0.0;
    return r;
}

}  // namespace tbp::perf
