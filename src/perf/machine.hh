// Machine models for the performance projection (the stand-in for the
// paper's Summit and Frontier testbeds — see DESIGN.md, substitution table).
//
// Parameters come from the paper's Section 7.1 hardware description and
// public system documents; the per-kernel efficiencies and network constants
// are calibrated so the model reproduces the paper's published anchor
// points (18x at 1-4 Summit nodes, ~13x at 8 nodes, ~180 Tflop/s on 16
// Frontier nodes). EXPERIMENTS.md records model output vs paper for every
// figure.

#pragma once

#include <cstdint>
#include <string>

namespace tbp::perf {

/// Execution resource the model charges compute time against.
enum class Device { Cpu, Gpu };

struct MachineModel {
    std::string name;
    int nodes = 1;

    // --- compute ----------------------------------------------------------
    int cpu_cores = 42;          ///< usable cores per node
    double cpu_core_gflops = 23; ///< dgemm rate per core (double precision)
    int gpus = 6;                ///< devices (GCDs on Frontier) per node
    double gpu_gflops = 6200;    ///< achievable dgemm rate per device
    double gpu_peak_gflops = 7800;  ///< theoretical peak per device

    // --- kernel-class efficiency on top of the dgemm rate ------------------
    // Large compute-bound updates run near the dgemm rate; panel
    // factorizations are latency/bandwidth bound, much more so on GPUs.
    double gpu_gemm_eff = 0.85;
    double gpu_panel_eff = 0.04;
    double cpu_gemm_eff = 0.90;
    double cpu_panel_eff = 0.45;
    /// Ramp: kernel efficiency reaches half its max when the per-device
    /// matrix dimension equals this value.
    double gpu_ramp_n = 9000;
    double cpu_ramp_n = 700;

    // --- memory ------------------------------------------------------------
    double gpu_mem_gb = 16;   ///< HBM per device
    double cpu_mem_gb = 512;  ///< DRAM per node
    /// Effective working set in units of n x n matrices. The QDWH-SVD
    /// framework's footprint is large ([37]); on Frontier everything must
    /// be resident in HBM (33 gives the paper's 175k cap on 16 nodes),
    /// while Summit's host-attached NIC and 512 GB DRAM let SLATE stage
    /// part of the working set on the host (10 resident).
    double workset_matrices = 10;

    // --- communication ------------------------------------------------------
    double net_bw_gbs = 23;       ///< per-node effective injection bandwidth
    double net_latency_us = 2.0;
    double d2h_bw_gbs = 40;       ///< host<->device aggregate per node
    bool gpu_aware_mpi = false;   ///< NIC attached to GPU (Frontier) or CPU

    // --- runtime/schedule ----------------------------------------------------
    double forkjoin_barrier_us = 30;  ///< cost of one bulk-synchronous barrier
    /// Fraction of fork-join phase time lost to idle cores while the panel
    /// holds the critical path (no lookahead, paper Section 3).
    double forkjoin_idle_frac = 0.10;
    /// Residual non-overlap of the task-based schedule (dataflow hides most
    /// but not all communication behind compute).
    double task_overlap = 0.85;

    int ranks() const;            ///< MPI ranks in the paper's launch config
    double cpu_node_gflops() const { return cpu_cores * cpu_core_gflops; }
    double gpu_node_gflops() const { return gpus * gpu_gflops; }
    double total_gflops(Device d) const;
    double peak_gflops(Device d) const;

    /// Largest square n that fits the QDWH working set (~10 matrices of
    /// n x n scalars) in the device memory of the whole machine.
    std::int64_t max_n(Device d, int elem_size = 8) const;

    /// Summit: 2x22-core POWER9 + 6 V100 per node, EDR InfiniBand,
    /// NIC on the CPU (paper Section 7.1).
    static MachineModel summit(int nodes);

    /// Frontier: 64-core EPYC + 4 MI250X (8 GCDs) per node, Slingshot,
    /// NIC attached to the GPUs -> GPU-aware MPI helps (Sections 5, 7.2).
    static MachineModel frontier(int nodes);
};

}  // namespace tbp::perf
