// Measured fault-plane report for the comm engine: the resilience
// counterpart of sched_report.hh's CommReport.
//
// With a FaultInjector installed (World::set_fault), every rank's CommStats
// carries a fault::FaultStats block counting what the plan injected (drops,
// delays, dups, corruptions, slowdowns) and what the reliable transport did
// about it (resends, checksum failures, absorbed duplicates). Because the
// plan is a pure function of its seed, a correct transport makes these
// counters exact identities of the plan (injector.hh documents them:
// resends == drops under a drop-only plan, checksum_failures == corrupts,
// dup_absorbed + teardown-absorbed == dups); fault_report gathers them so
// tests and benches can assert those identities and operators can print
// them next to the traffic counters.

#pragma once

#include <sstream>
#include <string>
#include <vector>

#include "comm/communicator.hh"
#include "fault/fault_stats.hh"

namespace tbp::perf {

/// Aggregated fault/recovery counters of one World::run.
struct FaultReport {
    std::vector<fault::FaultStats> per_rank;
    fault::FaultStats total;
    /// Duplicate messages still in flight at teardown (delivered original
    /// already consumed); classified by World::run, not per rank.
    std::uint64_t teardown_absorbed = 0;
    bool installed = false;  ///< a FaultInjector was active for the run

    /// Total injected faults of every kind.
    std::uint64_t injected() const {
        return total.injected_drops + total.injected_delays
               + total.injected_dups + total.injected_corrupts;
    }

    /// Every duplicate the plan injected, whether absorbed by a receiver
    /// mid-run or swept at teardown.
    std::uint64_t dups_accounted() const {
        return total.dup_absorbed + teardown_absorbed;
    }

    std::string format() const {
        std::ostringstream os;
        if (!installed)
            return "fault report: no fault plane installed\n";
        os << "fault report: " << per_rank.size() << " ranks, "
           << injected() << " faults injected\n"
           << "  injected: drops " << total.injected_drops << ", delays "
           << total.injected_delays << ", dups " << total.injected_dups
           << ", corrupts " << total.injected_corrupts << ", slowdowns "
           << total.slowdowns << "\n"
           << "  recovery: resends " << total.resends
           << ", checksum failures " << total.checksum_failures
           << ", dups absorbed " << total.dup_absorbed << " (+"
           << teardown_absorbed << " at teardown)";
        if (total.recovery_errors)
            os << ", recovery errors " << total.recovery_errors;
        os << "\n";
        return os.str();
    }
};

/// Snapshot the fault counters of the last World::run.
inline FaultReport fault_report(comm::World const& world) {
    FaultReport r;
    r.installed = world.fault() != nullptr;
    for (int rank = 0; rank < world.size(); ++rank) {
        r.per_rank.push_back(world.stats(rank).fault);
        r.total += r.per_rank.back();
    }
    r.teardown_absorbed = world.teardown_absorbed();
    return r;
}

}  // namespace tbp::perf
