// Precision-aware QDWH cost model: exact per-precision replay of the tile
// kernels' flop charges for an adaptive (or fixed-rung) run, plus a simple
// per-precision rate model for projected speedup.
//
// Contract (the ladder analogue of perf::stacked_qr_kernel_flops): for a run
// whose QdwhInfo reports kernel_flops_exact, the modeled per-bucket totals
// equal the measured blas::kernel::flops_performed(Prec) deltas *exactly* —
// same formulas, same per-call uint64 truncation, same loop structure as the
// task graphs in linalg/{gemm,potrf,trsm}.hh and the stacked-QR replay.
// Bucketing follows the execution semantics: every charge inside an
// iteration lands in that iteration's rung bucket (the ladder wraps the
// whole iteration body in one gemm-mode scope, and charge_prec<T>() buckets
// by scalar kind + active mode), and the H stage is always native.
//
// The measured region is the iteration loop + H stage (snapshots taken after
// the condition estimate), so the condest QR and norm2est gemvs are *not*
// replayed here.

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/flops.hh"
#include "common/precision.hh"
#include "perf/qdwh_model.hh"

namespace tbp::perf {

namespace detail {

/// Accumulates charges exactly as blas::kernel::count_flops does: each
/// call's double charge truncates to uint64 before summing.
struct TruncAcc {
    double total = 0;
    void add(double fl) {
        if (fl > 0)
            total += static_cast<double>(static_cast<std::uint64_t>(fl));
    }
};

}  // namespace detail

/// Kernel-counter flops of one Cholesky-based QDWH iteration (Eq. 2) on an
/// iterate with row tile sizes `rows` (mt tiles) and column tile sizes
/// `cols` (nt tiles). Replays, call for call:
///   la::herk  (Lower, ConjTrans)  Z := c A^H A + I
///   la::potrf (Lower)             Z = L L^H
///   la::trsm  (Right/Lower/ConjTrans then Right/Lower/NoTrans)
/// copy / set_identity / add charge nothing. `weight` = fma_flops<T>()/2.
inline double chol_iter_kernel_flops(std::vector<int> const& rows,
                                     std::vector<int> const& cols,
                                     double weight) {
    int const mt = static_cast<int>(rows.size());
    int const nt = static_cast<int>(cols.size());
    detail::TruncAcc acc;

    // la::herk, op == ConjTrans, C = Z (nt x nt, Lower), kt = mt.
    for (int j = 0; j < nt; ++j)
        for (int i = j; i < nt; ++i)
            for (int l = 0; l < mt; ++l)
                acc.add((i == j ? flops::syrk(cols[static_cast<std::size_t>(i)],
                                              rows[static_cast<std::size_t>(l)])
                                : flops::gemm(cols[static_cast<std::size_t>(i)],
                                              cols[static_cast<std::size_t>(j)],
                                              rows[static_cast<std::size_t>(l)]))
                        * weight);

    // la::potrf on Z.
    for (int k = 0; k < nt; ++k) {
        acc.add(flops::potrf(cols[static_cast<std::size_t>(k)]) * weight);
        for (int i = k + 1; i < nt; ++i)
            acc.add(flops::trsm_right(cols[static_cast<std::size_t>(i)],
                                      cols[static_cast<std::size_t>(k)])
                    * weight);
        for (int j = k + 1; j < nt; ++j) {
            acc.add(flops::syrk(cols[static_cast<std::size_t>(j)],
                                cols[static_cast<std::size_t>(k)])
                    * weight);
            for (int i = j + 1; i < nt; ++i)
                acc.add(flops::gemm(cols[static_cast<std::size_t>(i)],
                                    cols[static_cast<std::size_t>(j)],
                                    cols[static_cast<std::size_t>(k)])
                        * weight);
        }
    }

    // Two right-side solves on the m x n iterate: ConjTrans sweeps block
    // columns ascending and updates j > k, NoTrans descending with j < k.
    // Per solved column k, every block row i gets one tile trsm; each
    // update (k -> j) is one tile gemm per block row.
    for (int pass = 0; pass < 2; ++pass) {
        bool const conj = pass == 0;
        for (int k = 0; k < nt; ++k) {
            for (int i = 0; i < mt; ++i)
                acc.add(flops::trsm_right(rows[static_cast<std::size_t>(i)],
                                          cols[static_cast<std::size_t>(k)])
                        * weight);
            int const jlo = conj ? k + 1 : 0;
            int const jhi = conj ? nt : k;
            for (int j = jlo; j < jhi; ++j)
                for (int i = 0; i < mt; ++i)
                    acc.add(flops::gemm(rows[static_cast<std::size_t>(i)],
                                        cols[static_cast<std::size_t>(j)],
                                        cols[static_cast<std::size_t>(k)])
                            * weight);
        }
    }
    return acc.total;
}

/// Kernel-counter flops of one QR-based QDWH iteration (Eq. 1): the stacked
/// [sqrt(c) A; I] geqrf + ungqr (delegated to the existing exact replay) and
/// the Q1 Q2^H update — block upper triangular when structured (l >= j),
/// dense otherwise. copy / scale / set_identity charge nothing.
inline double qr_iter_kernel_flops(std::vector<int> const& rows,
                                   std::vector<int> const& cols,
                                   bool structured, double weight) {
    int const mt = static_cast<int>(rows.size());
    int const nt = static_cast<int>(cols.size());
    detail::TruncAcc acc;
    acc.total += stacked_qr_kernel_flops(rows, cols, structured, weight);
    for (int j = 0; j < nt; ++j)
        for (int i = 0; i < mt; ++i)
            for (int l = structured ? j : 0; l < nt; ++l)
                acc.add(flops::gemm(rows[static_cast<std::size_t>(i)],
                                    cols[static_cast<std::size_t>(j)],
                                    cols[static_cast<std::size_t>(l)])
                        * weight);
    return acc.total;
}

/// Kernel-counter flops of the H = U^H A stage (la::gemm ConjTrans/NoTrans
/// into the nt x nt H; symmetrization's transpose_copy + add charge 0).
inline double h_stage_kernel_flops(std::vector<int> const& rows,
                                   std::vector<int> const& cols,
                                   double weight) {
    int const mt = static_cast<int>(rows.size());
    int const nt = static_cast<int>(cols.size());
    detail::TruncAcc acc;
    for (int j = 0; j < nt; ++j)
        for (int i = 0; i < nt; ++i)
            for (int l = 0; l < mt; ++l)
                acc.add(flops::gemm(cols[static_cast<std::size_t>(i)],
                                    cols[static_cast<std::size_t>(j)],
                                    rows[static_cast<std::size_t>(l)])
                        * weight);
    return acc.total;
}

/// Per-precision kernel-flop totals for a QDWH run, bucketed as the counters
/// bucket them: one entry per prec::Prec.
struct QdwhPrecFlops {
    std::array<double, prec::kNumPrec> by_prec{};

    double total() const {
        double t = 0;
        for (double v : by_prec)
            t += v;
        return t;
    }
    double at(prec::Prec p) const {
        return by_prec[static_cast<std::size_t>(p)];
    }
};

/// Replay a full run from its executed schedule: `rungs` is
/// QdwhInfo::rungs (one executed rung per iteration — fallback promotions
/// already folded in), the first `it_qr` iterations are QR-based (QDWH's c_k
/// decreases monotonically, so the QR block always precedes the Cholesky
/// block), and the H stage (if computed) charges at `native`. Valid against
/// measured QdwhInfo::kernel_flops_by_prec whenever kernel_flops_exact.
inline QdwhPrecFlops qdwh_prec_kernel_flops(
    std::vector<int> const& rows, std::vector<int> const& cols,
    std::vector<prec::Prec> const& rungs, int it_qr, bool structured,
    bool compute_h, double weight, prec::Prec native) {
    QdwhPrecFlops out;
    double const qr_fl = qr_iter_kernel_flops(rows, cols, structured, weight);
    double const ch_fl = chol_iter_kernel_flops(rows, cols, weight);
    for (std::size_t k = 0; k < rungs.size(); ++k)
        out.by_prec[static_cast<std::size_t>(rungs[k])] +=
            static_cast<int>(k) < it_qr ? qr_fl : ch_fl;
    if (compute_h)
        out.by_prec[static_cast<std::size_t>(native)] +=
            h_stage_kernel_flops(rows, cols, weight);
    return out;
}

/// Relative per-rung execution rates for the projected-speedup model,
/// normalized to the native rung (rate 1). Defaults reflect hardware-class
/// throughput ratios, not the simulation host: fp32 streams twice the
/// elements of fp64 per cache line and runs twice the vector lanes (2x),
/// and bf16 halves the traffic again (4x fp64 — conservative next to real
/// tensor-core silicon at 8-16x). Compensated bf16 triples the gemm passes
/// (hi*hi + hi*lo + lo*hi), so its rate is a third of plain bf16.
struct PrecRates {
    double native = 1.0;
    double flt = 2.0;
    double bf16 = 4.0;
    double bf16_comp = 4.0 / 3.0;
};

/// Projected time (in native-rung flop-units) of a rung schedule relative
/// to the all-native run of the same iteration count: sum of per-iteration
/// flops divided by each rung's rate. speedup = all-native time / this.
inline double qdwh_prec_time_model(std::vector<int> const& rows,
                                   std::vector<int> const& cols,
                                   std::vector<prec::Prec> const& rungs,
                                   int it_qr, bool structured, bool compute_h,
                                   double weight, prec::Prec native,
                                   bool compensated = false,
                                   PrecRates const& rates = {}) {
    double const qr_fl = qr_iter_kernel_flops(rows, cols, structured, weight);
    double const ch_fl = chol_iter_kernel_flops(rows, cols, weight);
    double t = 0;
    for (std::size_t k = 0; k < rungs.size(); ++k) {
        double const fl = static_cast<int>(k) < it_qr ? qr_fl : ch_fl;
        double rate = rates.native;
        if (rungs[k] != native) {
            rate = rungs[k] == prec::Prec::Bf16
                       ? (compensated ? rates.bf16_comp : rates.bf16)
                       : rates.flt;
        }
        t += fl / rate;
    }
    if (compute_h)
        t += h_stage_kernel_flops(rows, cols, weight) / rates.native;
    return t;
}

}  // namespace tbp::perf
