#include "perf/machine.hh"

#include <algorithm>
#include <cmath>

namespace tbp::perf {

int MachineModel::ranks() const {
    // Paper Section 7.1: ScaLAPACK used 1 rank/core; SLATE used a few ranks
    // per node with all GPUs attached. The model charges communication per
    // node, so node count is the natural rank unit.
    return nodes;
}

double MachineModel::total_gflops(Device d) const {
    return nodes * (d == Device::Gpu ? gpu_node_gflops() : cpu_node_gflops());
}

double MachineModel::peak_gflops(Device d) const {
    return d == Device::Gpu ? nodes * gpus * gpu_peak_gflops
                            : nodes * cpu_node_gflops() / 0.9;
}

std::int64_t MachineModel::max_n(Device d, int elem_size) const {
    double const mem_bytes =
        (d == Device::Gpu ? nodes * gpus * gpu_mem_gb : nodes * cpu_mem_gb)
        * 1e9;
    double const n = std::sqrt(mem_bytes / (workset_matrices * elem_size));
    return static_cast<std::int64_t>(n);
}

MachineModel MachineModel::summit(int nodes) {
    MachineModel m;
    m.name = "Summit";
    m.nodes = std::max(nodes, 1);
    m.cpu_cores = 42;           // 2 x 22 cores minus OS reservation
    m.cpu_core_gflops = 23.0;   // POWER9 dgemm per core
    m.gpus = 6;                 // V100
    m.gpu_gflops = 6300.0;      // ~81% of 7.8 Tflop/s dgemm
    m.gpu_peak_gflops = 7800.0;
    m.gpu_mem_gb = 16.0;
    m.cpu_mem_gb = 512.0;
    m.net_bw_gbs = 14.0;        // dual-rail EDR, effective for collectives
    m.net_latency_us = 2.0;
    m.d2h_bw_gbs = 300.0;       // NVLink CPU<->GPU aggregate
    m.gpu_aware_mpi = false;    // NIC on the CPU (paper Section 7.2)
    return m;
}

MachineModel MachineModel::frontier(int nodes) {
    MachineModel m;
    m.name = "Frontier";
    m.nodes = std::max(nodes, 1);
    m.cpu_cores = 56;           // 64 minus OS reservation
    m.cpu_core_gflops = 36.0;   // EPYC Zen3 dgemm per core
    m.gpus = 8;                 // MI250X GCDs
    m.gpu_gflops = 11200.0;     // achievable dgemm per GCD
    m.gpu_peak_gflops = 23950.0;
    m.gpu_mem_gb = 64.0;
    m.cpu_mem_gb = 512.0;
    m.net_bw_gbs = 11.0;        // Slingshot-11, effective for collectives
    m.net_latency_us = 2.0;
    m.d2h_bw_gbs = 288.0;       // Infinity Fabric 4 x 36 GB/s x 2 dirs
    m.gpu_aware_mpi = true;     // NIC attached to the GPUs (Section 5)
    m.workset_matrices = 33.0;  // fully HBM-resident working set
    m.gpu_ramp_n = 45000;       // bigger devices need bigger local blocks
    return m;
}

}  // namespace tbp::perf
