// Device executor: the Target::{Tasks,BatchedHost} seam of the drivers.
//
// SLATE's headline GPU numbers come from its Target::Devices path: tile
// operations are grouped into batched kernel calls per device instead of
// being dispatched one task per tile. TBP's analogue is this executor. The
// algorithm drivers in src/linalg/ are templated over an engine-like
// parameter and submit per-tile operations exactly as before; an Executor
// interposed between a driver and the runtime engine either forwards every
// operation unchanged (Target::Tasks — the per-tile oracle) or coalesces
// runs of same-shape batchable operations into single engine tasks that
// execute the whole batch back-to-back on one worker (Target::BatchedHost).
//
// Batching collector: at most ONE group is open at a time. A batchable
// submission joins the open group iff it matches the group's key — same
// kernel name, same per-op flop count (the same-shape proxy: equal-shape
// tiles cost identical flops, ragged edge tiles split off), same priority,
// job and access-list arity. Anything else — a different key, a
// non-batchable operation, a fence — flushes the group first, so the engine
// always receives tasks in driver program order and the dependency graph it
// derives is a conservative coarsening of the per-tile graph (the group's
// access list is the first-touch-ordered union of its members' accesses,
// with modes widened to ReadWrite on conflict). Within a group the member
// bodies run sequentially in submission order on one worker, so results are
// bitwise identical to the per-tile path, and the whole batch reuses that
// worker's hot thread-local pack arenas (src/blas/kernel/arena.hh) — one
// arena checkout per batch instead of per tile op.
//
// Accounting: a group task is submitted with ops = batch size, so the
// engine's tile-op counters and the traced DAG (DagStats::tile_ops) still
// reconcile exactly with perf::qr_task_counts even though the scheduler
// sees 5-30x fewer tasks.
//
// Streams: under BatchedHost every launch also drives the modeled
// per-device command streams (stream.hh), charging H2D staging on first
// touch and D2H writeback at wait() from the Summit/Frontier machine model.

#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/precision.hh"
#include "device/stream.hh"
#include "perf/machine.hh"
#include "runtime/engine.hh"

namespace tbp::dev {

/// Where the drivers execute: per-tile engine tasks (the oracle) or the
/// CPU-simulated batched device path.
enum class Target { Tasks, BatchedHost };

inline char const* target_name(Target t) {
    return t == Target::Tasks ? "tasks" : "batched";
}

struct ExecOptions {
    Target target = Target::Tasks;
    /// Largest number of tile ops coalesced into one engine task. Small
    /// values keep more scheduler parallelism; large values amortize more
    /// per-task overhead (bench_batch_exec sweeps this).
    int max_batch = 32;
    /// Simulated devices for the stream model (round-robin batch placement).
    int num_devices = 1;
    /// Bytes of one staged tile for the stream model; 0 picks a 64x64
    /// double tile. Callers that know the tiling (qdwh) set it exactly.
    std::size_t tile_bytes = 0;
    /// Drive the modeled command streams under BatchedHost.
    bool model_streams = true;
    /// Machine whose H2D/D2H bandwidth and device rate cost the streams.
    perf::MachineModel machine{};
};

/// Collector counters: how many tile ops were routed, and into how many
/// engine tasks they were coalesced.
struct BatchStats {
    std::uint64_t ops = 0;      ///< tile ops submitted through the executor
    std::uint64_t tasks = 0;    ///< engine tasks actually created
    std::uint64_t groups = 0;   ///< tasks carrying a batch of >= 2 ops
    std::uint64_t singles = 0;  ///< tasks carrying exactly 1 op
    std::uint64_t max_group = 0;

    /// Scheduler-load reduction: tile ops per engine task.
    double coalescing() const {
        return tasks > 0 ? static_cast<double>(ops) / static_cast<double>(tasks)
                         : 1.0;
    }
};

class Executor {
public:
    explicit Executor(rt::Engine& eng, ExecOptions opts = {})
        : eng_(eng),
          opts_(opts),
          streams_(opts.num_devices, opts.machine,
                   opts.tile_bytes ? opts.tile_bytes : kDefaultTileBytes) {
        if (opts_.max_batch < 1)
            opts_.max_batch = 1;
    }
    ~Executor() { flush(); }

    Executor(Executor const&) = delete;
    Executor& operator=(Executor const&) = delete;

    rt::Engine& engine() { return eng_; }
    Target target() const { return opts_.target; }
    bool batched() const { return opts_.target == Target::BatchedHost; }
    rt::Mode mode() const { return eng_.mode(); }
    int num_threads() const { return eng_.num_threads(); }

    /// Engine-compatible submission; the drivers call this exactly as they
    /// call rt::Engine::submit. Under Target::Tasks it forwards verbatim.
    void submit(char const* name, double flops,
                std::vector<rt::Access> accesses, std::function<void()> fn,
                int priority = 0, rt::JobId job = rt::kAmbientJob) {
        ++stats_.ops;
        if (!batched() || !batchable(name)) {
            flush();
            ++stats_.tasks;
            ++stats_.singles;
            if (batched() && opts_.model_streams)
                streams_.issue(accesses, flops);
            eng_.submit(name, flops, std::move(accesses), std::move(fn),
                        priority, job);
            return;
        }
        GroupKey const key{name, flops, priority, job, accesses.size(),
                           prec::ambient_gemm_mode()};
        if (open_ && !open_->key.matches(key))
            flush();
        if (!open_) {
            open_.emplace();
            open_->key = key;
        }
        open_->flops += flops;
        for (auto const& a : accesses)
            open_->merge(a);
        open_->fns.push_back(std::move(fn));
        if (open_->fns.size() >= static_cast<std::size_t>(opts_.max_batch))
            flush();
    }

    void submit(char const* name, std::vector<rt::Access> accesses,
                std::function<void()> fn, int priority = 0,
                rt::JobId job = rt::kAmbientJob) {
        submit(name, 0.0, std::move(accesses), std::move(fn), priority, job);
    }

    /// Hand the open group to the engine (no-op if nothing is buffered).
    void flush() {
        if (!open_)
            return;
        Group g = std::move(*open_);
        open_.reset();
        std::uint64_t const b = g.fns.size();
        ++stats_.tasks;
        if (b >= 2) {
            ++stats_.groups;
            stats_.max_group = std::max(stats_.max_group, b);
        } else {
            ++stats_.singles;
        }
        if (opts_.model_streams)
            streams_.issue(g.accesses, g.flops);
        // A singleton keeps its kernel name so traces stay comparable with
        // the per-tile path; a real batch is prefixed for the trace reader.
        std::string const name =
            b >= 2 ? std::string("batch_") + g.key.name : g.key.name;
        auto fns = std::make_shared<std::vector<std::function<void()>>>(
            std::move(g.fns));
        // The flush may run long after submission under a different ambient
        // mode (e.g. the ladder promoted rungs between open and flush);
        // re-establish the group's captured mode so the engine tags the
        // batch task with the precision its members were submitted under.
        prec::ScopedGemmMode mode_scope(g.key.gemm_mode);
        eng_.submit(name.c_str(), g.flops, std::move(g.accesses),
                    [fns] {
                        for (auto& f : *fns)
                            f();
                    },
                    g.key.priority, g.key.job, b);
    }

    /// Inter-operation fence: flush, then the engine's op_fence semantics.
    void op_fence() {
        flush();
        eng_.op_fence();
    }

    /// Host synchronization: flush, drain the engine, write the modeled
    /// dirty tiles back (the host observes results here).
    void wait() {
        flush();
        eng_.wait();
        if (batched() && opts_.model_streams)
            streams_.sync();
    }

    double flops_executed() const { return eng_.flops_executed(); }

    BatchStats const& batch_stats() const { return stats_; }
    StreamStats const& stream_stats() const { return streams_.stats(); }
    StreamSet& streams() { return streams_; }

    /// Tile operations that coalesce: the shape-regular inner kernels of
    /// the update sweeps (gemm/herk/tsmqr/ttmqr/unmqr/trsm_gemm) and the
    /// element-wise sweeps. Panel factorizations (geqrt/tsqrt/ttqrt/potrf)
    /// and diagonal solves stay per-tile: they are the critical chain and
    /// batching them would serialize independent panels behind one task.
    static bool batchable(char const* name) {
        static constexpr char const* kNames[] = {
            "gemm", "herk",  "tsmqr", "ttmqr", "unmqr",          "trsm_gemm",
            "copy", "scale", "add",   "set",   "transpose_copy", "q2_init",
            "convert",
        };
        for (char const* n : kNames)
            if (std::strcmp(name, n) == 0)
                return true;
        return false;
    }

private:
    static constexpr std::size_t kDefaultTileBytes = 64 * 64 * sizeof(double);

    struct GroupKey {
        char const* name = "";
        double flops = 0;  ///< per-op flops — the same-shape proxy
        int priority = 0;
        rt::JobId job = rt::kAmbientJob;
        std::size_t arity = 0;  ///< accesses per op
        // Precision tag: ops submitted under different gemm modes must not
        // coalesce — the whole batch executes under one exec mode.
        prec::GemmMode gemm_mode = prec::GemmMode::Native;

        bool matches(GroupKey const& o) const {
            return flops == o.flops && priority == o.priority && job == o.job
                   && arity == o.arity && gemm_mode == o.gemm_mode
                   && std::strcmp(name, o.name) == 0;
        }
    };

    struct Group {
        GroupKey key;
        double flops = 0;  ///< sum over members
        std::vector<std::function<void()>> fns;
        std::vector<rt::Access> accesses;  ///< merged, first-touch order
        std::unordered_map<void const*, std::size_t> index;

        /// Union a member access into the merged list. Widening a repeated
        /// key to ReadWrite is always safe: the group's external
        /// dependencies become a superset of its members' and the member
        /// bodies run in submission order inside the task.
        void merge(rt::Access const& a) {
            auto const [it, inserted] = index.emplace(a.key, accesses.size());
            if (inserted) {
                accesses.push_back(a);
                return;
            }
            auto& mode = accesses[it->second].mode;
            if (mode != a.mode)
                mode = rt::AccessMode::ReadWrite;
        }
    };

    rt::Engine& eng_;
    ExecOptions opts_;
    StreamSet streams_;
    std::optional<Group> open_;
    BatchStats stats_;
};

// The drivers are templated over the executor-like parameter; these shims
// let them query batching/target on a plain engine without a dependency of
// runtime/ on device/.
inline bool is_batched(rt::Engine const&) { return false; }
inline bool is_batched(Executor const& ex) { return ex.batched(); }

}  // namespace tbp::dev
