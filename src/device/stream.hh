// Modeled per-device command streams for the batched host executor.
//
// A real SLATE Target::Devices backend stages tiles into device memory over
// PCIe/xGMI, launches batched kernels on per-device streams, and writes
// dirty tiles back at synchronization points, overlapping the copies with
// compute via double buffering. The CPU-simulated executor has no device
// memory, but it drives this model with the exact same event sequence a GPU
// backend would see: every batch launch becomes a stream issue (H2D upload
// of non-resident operand tiles + a compute event), and every host
// synchronization becomes a D2H writeback of the dirty set. Times are
// charged from the Summit/Frontier machine model in src/perf/, so benches
// can report how much staging the batched schedule would expose on the
// paper's hardware — these numbers are MODELED, never added to measured
// wall time (see DESIGN.md "what is measured vs what is modeled").

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "perf/machine.hh"
#include "runtime/engine.hh"

namespace tbp::dev {

/// Aggregate counters of the modeled streams (all devices).
struct StreamStats {
    std::uint64_t issues = 0;      ///< command-stream launches
    std::uint64_t h2d_events = 0;  ///< tile uploads (first touch per epoch)
    std::uint64_t d2h_events = 0;  ///< dirty-tile writebacks at syncs
    double h2d_bytes = 0;
    double d2h_bytes = 0;
    double copy_seconds = 0;     ///< modeled staging time, both directions
    double compute_seconds = 0;  ///< modeled device compute time
    double exposed_copy_seconds = 0;  ///< staging the pipeline failed to hide
    double makespan_seconds = 0;      ///< modeled timeline (slowest device)

    /// Fraction of staging time hidden behind compute by the double-buffered
    /// streams; 1 when every upload overlapped, 0 when all were exposed.
    double overlap_fraction() const {
        if (copy_seconds <= 0)
            return 1.0;
        return std::min(
            1.0, std::max(0.0, 1.0 - exposed_copy_seconds / copy_seconds));
    }
};

/// One modeled copy/compute stream pair per "device", with a resident-tile
/// set so uploads are charged on first touch only (tiles stay device
/// resident between batches, as SLATE keeps workspace tiles on the GPU).
class StreamSet {
public:
    StreamSet(int num_devices, perf::MachineModel const& machine,
              std::size_t tile_bytes)
        : machine_(machine),
          tile_bytes_(static_cast<double>(tile_bytes)),
          dev_(static_cast<std::size_t>(std::max(1, num_devices))) {}

    int num_devices() const { return static_cast<int>(dev_.size()); }

    /// Record one batch launch: round-robin it onto a device, upload its
    /// non-resident operand tiles on the copy stream, then run `flops` on
    /// the compute stream (which waits for the upload — double buffering
    /// hides the copy iff the compute stream is still busy with the
    /// previous batch). Returns the device chosen.
    int issue(std::vector<rt::Access> const& accesses, double flops) {
        int const d = static_cast<int>(next_++ % dev_.size());
        Device& dv = dev_[static_cast<std::size_t>(d)];

        double up = 0;
        for (auto const& a : accesses) {
            if (dv.resident.insert(a.key).second) {
                up += tile_bytes_;
                ++stats_.h2d_events;
            }
            if (a.mode != rt::AccessMode::Read)
                dv.dirty.insert(a.key);
        }

        double const t_copy =
            up > 0 ? up / h2d_bw() + machine_.net_latency_us * 1e-6 : 0.0;
        double const t_comp = flops > 0 ? flops / compute_rate() : 0.0;

        double const copy_done = dv.copy_done + t_copy;
        // Compute waits for its operands; any wait past the point where the
        // compute stream drained is staging the pipeline failed to hide.
        stats_.exposed_copy_seconds +=
            std::max(0.0, copy_done - std::max(dv.compute_done, dv.copy_done));
        dv.copy_done = copy_done;
        dv.compute_done = std::max(dv.compute_done, copy_done) + t_comp;

        ++stats_.issues;
        stats_.h2d_bytes += up;
        stats_.copy_seconds += t_copy;
        stats_.compute_seconds += t_comp;
        update_makespan();
        return d;
    }

    /// Host synchronization point: write every dirty tile back. The
    /// writeback happens at a barrier, so it is exposed by construction.
    /// Residency survives (tiles stay cached on the device for the next
    /// operation); only the dirty set drains.
    void sync() {
        for (auto& dv : dev_) {
            if (dv.dirty.empty())
                continue;
            double const down =
                tile_bytes_ * static_cast<double>(dv.dirty.size());
            double const t = down / h2d_bw() + machine_.net_latency_us * 1e-6;
            stats_.d2h_events += dv.dirty.size();
            stats_.d2h_bytes += down;
            stats_.copy_seconds += t;
            stats_.exposed_copy_seconds += t;
            dv.copy_done = std::max(dv.copy_done, dv.compute_done) + t;
            dv.dirty.clear();
        }
        update_makespan();
    }

    /// Drop residency (a new problem's tiles reuse the addresses).
    void reset_residency() {
        for (auto& dv : dev_) {
            dv.resident.clear();
            dv.dirty.clear();
        }
    }

    StreamStats const& stats() const { return stats_; }

private:
    struct Device {
        std::unordered_set<void const*> resident;
        std::unordered_set<void const*> dirty;
        double copy_done = 0;     ///< copy-stream timeline (seconds)
        double compute_done = 0;  ///< compute-stream timeline (seconds)
    };

    /// Host<->device bandwidth per device (the machine model's aggregate
    /// split across the devices sharing the links).
    double h2d_bw() const {
        return machine_.d2h_bw_gbs * 1e9
               / static_cast<double>(dev_.size());
    }
    /// Batched updates run near the device's dgemm rate.
    double compute_rate() const {
        return machine_.gpu_gflops * 1e9 * machine_.gpu_gemm_eff;
    }

    void update_makespan() {
        double m = 0;
        for (auto const& dv : dev_)
            m = std::max(m, std::max(dv.copy_done, dv.compute_done));
        stats_.makespan_seconds = m;
    }

    perf::MachineModel machine_;
    double tile_bytes_;
    std::vector<Device> dev_;
    std::uint64_t next_ = 0;
    StreamStats stats_;
};

}  // namespace tbp::dev
