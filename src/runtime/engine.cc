#include "runtime/engine.hh"

#include <algorithm>

#include "common/error.hh"
#include "common/precision.hh"
#include "common/timer.hh"

namespace tbp::rt {

struct Engine::Task {
    std::function<void()> fn;
    std::string name;
    double flops = 0;
    int priority = 0;
    std::uint64_t id = 0;
    JobId job = kAmbientJob;
    std::uint64_t ops = 1;
    // Gemm mode captured from the submitting thread's ambient slot, so a
    // worker (or a later batch flush) executes the body under the precision
    // the algorithm layer requested at submission (see common/precision.hh).
    prec::GemmMode gemm_mode = prec::GemmMode::Native;
    std::vector<std::uint64_t> dep_ids;

    // Scheduling state.
    std::mutex mtx;
    bool done = false;
    std::atomic<int> unresolved{1};  // +1 submission guard
    std::vector<Task*> successors;   // guarded by mtx until done
};

struct Engine::ObjectState {
    Task* last_writer = nullptr;
    std::vector<Task*> readers_since_write;
};

// A worker's ready deque. The owner pops LIFO from the back; thieves pop
// FIFO from the front. Priority > 0 tasks live in their own lane, drained
// before normal work by owner and thieves alike.
struct Engine::WorkerQueue {
    std::mutex mtx;
    std::deque<Task*> high;
    std::deque<Task*> low;
};

Engine::Engine(int num_threads, Mode mode, Sched sched)
    : mode_(mode), sched_(sched) {
    if (mode_ == Mode::Sequential)
        return;
    int n = num_threads;
    if (n <= 0) {
        n = static_cast<int>(std::thread::hardware_concurrency());
        if (n <= 0)
            n = 2;
    }
    queues_.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        queues_.emplace_back(std::make_unique<WorkerQueue>());
    workers_.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        workers_.emplace_back([this, i] { worker_loop(i); });
}

Engine::~Engine() {
    if (mode_ == Mode::Sequential)
        return;
    try {
        wait();
    } catch (...) {
        // Destructor must not throw; errors were the caller's to collect.
    }
    shutdown_.store(true);
    {
        std::lock_guard<std::mutex> lk(queue_mtx_);
    }
    queue_cv_.notify_all();
    for (auto& w : workers_)
        w.join();
}

void Engine::submit(char const* name, double flops,
                    std::vector<Access> accesses, std::function<void()> fn,
                    int priority, JobId job, std::uint64_t ops) {
    if (mode_ == Mode::Sequential) {
        double const t0 = wall_time();
        if (!job_poisoned(job)) {
            // Inline execution still routes the ambient gemm mode through
            // the exec slot so kernels behave identically to worker threads.
            prec::ExecModeScope mode_scope(prec::ambient_gemm_mode());
            fn();  // exceptions propagate straight to the (inline) caller
        }
        double const t1 = wall_time();
        tasks_executed_.fetch_add(1, std::memory_order_relaxed);
        tile_ops_executed_.fetch_add(ops, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lk(stats_mtx_);
            flops_executed_ += flops;
        }
        if (trace_on_.load(std::memory_order_relaxed)) {
            std::lock_guard<std::mutex> lk(trace_mtx_);
            trace_.push_back({name, flops, t0, t1, 0, next_id_++, {}, priority,
                              false, ops});
        }
        return;
    }

    auto t = std::make_unique<Task>();
    t->fn = std::move(fn);
    t->name = name;
    t->flops = flops;
    t->priority = priority;
    t->job = job;
    t->ops = ops;
    t->gemm_mode = prec::ambient_gemm_mode();
    t->id = next_id_++;

    // Derive dependencies superscalar-style from the access list. A task
    // can reach the same predecessor through several accesses (e.g. Read
    // then ReadWrite of one key); count each edge once, both for the
    // unresolved count and for the traced DAG.
    auto add_dep = [&](Task* pred) {
        if (pred == nullptr || pred == t.get())
            return;
        if (std::find(t->dep_ids.begin(), t->dep_ids.end(), pred->id)
            != t->dep_ids.end())
            return;
        std::lock_guard<std::mutex> lk(pred->mtx);
        if (!pred->done) {
            pred->successors.push_back(t.get());
            t->unresolved.fetch_add(1, std::memory_order_relaxed);
        }
        t->dep_ids.push_back(pred->id);
    };

    for (auto const& a : accesses) {
        ObjectState& st = objects_[a.key];
        if (a.mode == AccessMode::Read) {
            add_dep(st.last_writer);
            st.readers_since_write.push_back(t.get());
        } else {
            // Write / ReadWrite: after the last writer and all readers.
            add_dep(st.last_writer);
            for (Task* r : st.readers_since_write)
                add_dep(r);
            st.readers_since_write.clear();
            st.last_writer = t.get();
        }
    }

    outstanding_.fetch_add(1, std::memory_order_relaxed);

    Task* raw = t.get();
    all_tasks_.push_back(std::move(t));

    // Drop the submission guard; enqueue if all inputs resolved.
    if (raw->unresolved.fetch_sub(1, std::memory_order_acq_rel) == 1)
        make_ready(raw, -1);
}

void Engine::make_ready(Task* t, int src_worker) {
    if (sched_ == Sched::GlobalQueue) {
        {
            std::lock_guard<std::mutex> lk(queue_mtx_);
            if (t->priority > 0)
                ready_.push_front(t);
            else
                ready_.push_back(t);
        }
        queue_cv_.notify_one();
        return;
    }

    size_t const nq = queues_.size();
    size_t const qi = (src_worker >= 0) ? static_cast<size_t>(src_worker)
                                        : (next_queue_++ % nq);
    WorkerQueue& q = *queues_[qi];
    {
        std::lock_guard<std::mutex> lk(q.mtx);
        (t->priority > 0 ? q.high : q.low).push_back(t);
    }
    // Wake someone only if someone is asleep, so the steady state (every
    // worker busy) pays a single load here and nothing else. No wake is
    // lost: a worker bumps sleepers_ before its definitive emptiness sweep
    // (queues_empty(), which locks every q.mtx). If that sweep missed this
    // push, the sweep's critical section on q.mtx preceded ours, so its
    // sleepers_ increment happens-before our load below and we notify. The
    // empty critical section orders the notify against a sleeper that is
    // between its sweep and the cv wait (it holds queue_mtx_ throughout).
    if (sleepers_.load() > 0) {
        {
            std::lock_guard<std::mutex> lk(queue_mtx_);
        }
        queue_cv_.notify_one();
    }
}

bool Engine::queues_empty() const {
    for (auto const& q : queues_) {
        std::lock_guard<std::mutex> lk(q->mtx);
        if (!q->high.empty() || !q->low.empty())
            return false;
    }
    return true;
}

Engine::Task* Engine::pop_local(int worker_id) {
    WorkerQueue& q = *queues_[static_cast<size_t>(worker_id)];
    std::lock_guard<std::mutex> lk(q.mtx);
    Task* t = nullptr;
    if (!q.high.empty()) {
        t = q.high.back();
        q.high.pop_back();
    } else if (!q.low.empty()) {
        t = q.low.back();
        q.low.pop_back();
    }
    return t;
}

Engine::Task* Engine::steal(int thief_id) {
    size_t const nq = queues_.size();
    for (size_t k = 1; k < nq; ++k) {
        WorkerQueue& q = *queues_[(static_cast<size_t>(thief_id) + k) % nq];
        Task* t = nullptr;
        std::deque<Task*> high_batch, low_batch;
        {
            std::unique_lock<std::mutex> lk(q.mtx, std::try_to_lock);
            if (!lk.owns_lock())
                continue;  // victim busy; a notify covers anything it adds
            if (!q.high.empty()) {
                t = q.high.front();
                q.high.pop_front();
            } else if (!q.low.empty()) {
                t = q.low.front();
                q.low.pop_front();
            }
            if (!t)
                continue;
            // Steal-half: take the older (FIFO) half of the victim's
            // backlog with us, so fine-grained DAGs do not pay one sweep
            // per stolen task. Collected locally and re-queued after the
            // victim's lock is dropped — holding two queue locks at once
            // could deadlock a cycle of thieves.
            for (size_t n = q.high.size() / 2; n > 0; --n) {
                high_batch.push_back(q.high.front());
                q.high.pop_front();
            }
            for (size_t n = q.low.size() / 2; n > 0; --n) {
                low_batch.push_back(q.low.front());
                q.low.pop_front();
            }
        }
        if (!high_batch.empty() || !low_batch.empty()) {
            WorkerQueue& mine = *queues_[static_cast<size_t>(thief_id)];
            std::lock_guard<std::mutex> lk(mine.mtx);
            for (Task* b : high_batch)
                mine.high.push_back(b);
            for (Task* b : low_batch)
                mine.low.push_back(b);
        }
        return t;
    }
    return nullptr;
}

void Engine::worker_loop(int worker_id) {
    if (sched_ == Sched::GlobalQueue) {
        for (;;) {
            Task* t = nullptr;
            {
                std::unique_lock<std::mutex> lk(queue_mtx_);
                if (ready_.empty()) {
                    sleeps_.fetch_add(1, std::memory_order_relaxed);
                    queue_cv_.wait(lk, [&] {
                        return shutdown_.load(std::memory_order_relaxed)
                               || !ready_.empty();
                    });
                }
                if (ready_.empty())
                    return;  // shutdown with no work left
                t = ready_.front();
                ready_.pop_front();
            }
            global_pops_.fetch_add(1, std::memory_order_relaxed);
            run_task(t, worker_id, false);
        }
    }

    for (;;) {
        Task* t = pop_local(worker_id);
        bool stolen = false;
        if (!t) {
            t = steal(worker_id);
            stolen = (t != nullptr);
        }
        if (!t) {
            std::unique_lock<std::mutex> lk(queue_mtx_);
            // Publish intent to sleep BEFORE the definitive emptiness sweep:
            // make_ready pushes and then reads sleepers_, and the sweep
            // locks every queue mutex, so at least one side observes the
            // other and the wake cannot be lost (see make_ready).
            sleepers_.fetch_add(1);
            bool slept = false;
            if (queues_empty()) {
                if (shutdown_.load(std::memory_order_relaxed)) {
                    sleepers_.fetch_sub(1, std::memory_order_relaxed);
                    return;
                }
                sleeps_.fetch_add(1, std::memory_order_relaxed);
                queue_cv_.wait(lk, [&] {
                    return shutdown_.load(std::memory_order_relaxed)
                           || !queues_empty();
                });
                slept = true;
            }
            sleepers_.fetch_sub(1, std::memory_order_relaxed);
            if (shutdown_.load(std::memory_order_relaxed) && queues_empty())
                return;
            if (!slept) {
                // The steal sweep's try_lock missed a busy victim; give that
                // thread the core before sweeping again.
                lk.unlock();
                std::this_thread::yield();
            }
            continue;  // retry pop/steal
        }
        (stolen ? steals_ : local_pops_).fetch_add(1, std::memory_order_relaxed);
        run_task(t, worker_id, stolen);
    }
}

void Engine::run_task(Task* t, int worker_id, bool stolen) {
    double const t0 = wall_time();
    // Once an error is latched for this task's job, drain that job's DAG
    // without executing bodies: the task still retires and releases
    // successors so wait() terminates, but nothing computes on poisoned
    // data. Tasks of other jobs are unaffected — a failing batch job must
    // not abort its siblings. The common no-error case costs one relaxed
    // atomic load (poisoned_jobs_ == 0 skips the map lookup).
    if (!job_poisoned(t->job)) {
        prec::ExecModeScope mode_scope(t->gemm_mode);
        try {
            t->fn();
        } catch (...) {
            poison_job(t->job, std::current_exception());
        }
    }
    // Release the body eagerly: the Task skeleton must survive until the
    // epoch reset in wait() for dependency bookkeeping, but the closure's
    // captures (job state, workspaces) should not. A service that never
    // calls wait() would otherwise pin every job's arena until shutdown.
    t->fn = nullptr;
    double const t1 = wall_time();

    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    tile_ops_executed_.fetch_add(t->ops, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lk(stats_mtx_);
        flops_executed_ += t->flops;
    }
    if (trace_on_.load(std::memory_order_relaxed)) {
        std::lock_guard<std::mutex> lk(trace_mtx_);
        trace_.push_back({t->name, t->flops, t0, t1, worker_id, t->id,
                          t->dep_ids, t->priority, stolen, t->ops});
    }

    std::vector<Task*> succ;
    {
        std::lock_guard<std::mutex> lk(t->mtx);
        t->done = true;
        succ.swap(t->successors);
    }
    for (Task* s : succ) {
        if (s->unresolved.fetch_sub(1, std::memory_order_acq_rel) == 1)
            make_ready(s, worker_id);
    }

    if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        {
            std::lock_guard<std::mutex> lk(queue_mtx_);
        }
        idle_cv_.notify_all();
    }
}

void Engine::wait() {
    if (mode_ != Mode::Sequential) {
        std::unique_lock<std::mutex> lk(queue_mtx_);
        idle_cv_.wait(lk, [&] {
            return outstanding_.load(std::memory_order_relaxed) == 0;
        });
    }
    // Fresh dependency epoch; tasks are retired.
    objects_.clear();
    all_tasks_.clear();
    // Only the ambient job's error surfaces here; explicit jobs keep their
    // latch until take_job_error() so a poisoned batch job cannot abort an
    // unrelated caller's wait().
    if (auto err = take_job_error(kAmbientJob))
        std::rethrow_exception(err);
}

std::exception_ptr Engine::take_job_error(JobId job) {
    std::lock_guard<std::mutex> lk(error_mtx_);
    auto it = job_errors_.find(job);
    if (it == job_errors_.end())
        return nullptr;
    std::exception_ptr err = it->second;
    job_errors_.erase(it);
    poisoned_jobs_.fetch_sub(1, std::memory_order_release);
    return err;
}

void Engine::poison_job(JobId job, std::exception_ptr err) {
    std::lock_guard<std::mutex> lk(error_mtx_);
    auto const inserted = job_errors_.emplace(job, std::move(err)).second;
    if (inserted)
        poisoned_jobs_.fetch_add(1, std::memory_order_release);
}

bool Engine::job_poisoned(JobId job) const {
    if (poisoned_jobs_.load(std::memory_order_acquire) == 0)
        return false;
    std::lock_guard<std::mutex> lk(error_mtx_);
    return job_errors_.count(job) != 0;
}

void Engine::op_fence() {
    if (mode_ != Mode::TaskDataflow)
        wait();
}

double Engine::flops_executed() const {
    std::lock_guard<std::mutex> lk(stats_mtx_);
    return flops_executed_;
}

Engine::SchedStats Engine::sched_stats() const {
    SchedStats s;
    s.local_pops = local_pops_.load(std::memory_order_relaxed);
    s.steals = steals_.load(std::memory_order_relaxed);
    s.global_pops = global_pops_.load(std::memory_order_relaxed);
    s.sleeps = sleeps_.load(std::memory_order_relaxed);
    return s;
}

void Engine::reset_stats() {
    tasks_executed_.store(0);
    tile_ops_executed_.store(0);
    local_pops_.store(0);
    steals_.store(0);
    global_pops_.store(0);
    sleeps_.store(0);
    std::lock_guard<std::mutex> lk(stats_mtx_);
    flops_executed_ = 0;
}

void Engine::set_trace(bool on) {
    trace_on_.store(on, std::memory_order_relaxed);
}

void Engine::clear_trace() {
    std::lock_guard<std::mutex> lk(trace_mtx_);
    trace_.clear();
}

}  // namespace tbp::rt
