#include "runtime/engine.hh"

#include <algorithm>

#include "common/error.hh"
#include "common/timer.hh"

namespace tbp::rt {

struct Engine::Task {
    std::function<void()> fn;
    std::string name;
    double flops = 0;
    std::uint64_t id = 0;
    std::vector<std::uint64_t> dep_ids;

    // Scheduling state.
    std::mutex mtx;
    bool done = false;
    std::atomic<int> unresolved{1};  // +1 submission guard
    std::vector<Task*> successors;   // guarded by mtx until done
};

struct Engine::ObjectState {
    Task* last_writer = nullptr;
    std::vector<Task*> readers_since_write;
};

Engine::Engine(int num_threads, Mode mode) : mode_(mode) {
    if (mode_ == Mode::Sequential)
        return;
    int n = num_threads;
    if (n <= 0) {
        n = static_cast<int>(std::thread::hardware_concurrency());
        if (n <= 0)
            n = 2;
    }
    workers_.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        workers_.emplace_back([this, i] { worker_loop(i); });
}

Engine::~Engine() {
    if (mode_ == Mode::Sequential)
        return;
    try {
        wait();
    } catch (...) {
        // Destructor must not throw; errors were the caller's to collect.
    }
    {
        std::lock_guard<std::mutex> lk(queue_mtx_);
        shutdown_ = true;
    }
    queue_cv_.notify_all();
    for (auto& w : workers_)
        w.join();
}

void Engine::submit(char const* name, double flops,
                    std::vector<Access> accesses, std::function<void()> fn) {
    if (mode_ == Mode::Sequential) {
        double const t0 = wall_time();
        fn();
        double const t1 = wall_time();
        tasks_executed_.fetch_add(1, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lk(stats_mtx_);
            flops_executed_ += flops;
        }
        if (trace_on_) {
            std::lock_guard<std::mutex> lk(trace_mtx_);
            trace_.push_back({name, flops, t0, t1, 0, next_id_++, {}});
        }
        return;
    }

    auto t = std::make_unique<Task>();
    t->fn = std::move(fn);
    t->name = name;
    t->flops = flops;
    t->id = next_id_++;

    // Derive dependencies superscalar-style from the access list.
    auto add_dep = [&](Task* pred) {
        if (pred == nullptr || pred == t.get())
            return;
        std::lock_guard<std::mutex> lk(pred->mtx);
        if (!pred->done) {
            pred->successors.push_back(t.get());
            t->unresolved.fetch_add(1, std::memory_order_relaxed);
        }
        t->dep_ids.push_back(pred->id);
    };

    for (auto const& a : accesses) {
        ObjectState& st = objects_[a.key];
        if (a.mode == AccessMode::Read) {
            add_dep(st.last_writer);
            st.readers_since_write.push_back(t.get());
        } else {
            // Write / ReadWrite: after the last writer and all readers.
            add_dep(st.last_writer);
            for (Task* r : st.readers_since_write)
                add_dep(r);
            st.readers_since_write.clear();
            st.last_writer = t.get();
        }
    }

    {
        std::lock_guard<std::mutex> lk(queue_mtx_);
        ++outstanding_;
    }

    Task* raw = t.get();
    all_tasks_.push_back(std::move(t));

    // Drop the submission guard; enqueue if all inputs resolved.
    if (raw->unresolved.fetch_sub(1, std::memory_order_acq_rel) == 1)
        make_ready(raw);
}

void Engine::make_ready(Task* t) {
    {
        std::lock_guard<std::mutex> lk(queue_mtx_);
        ready_.push_back(t);
    }
    queue_cv_.notify_one();
}

void Engine::worker_loop(int worker_id) {
    for (;;) {
        Task* t = nullptr;
        {
            std::unique_lock<std::mutex> lk(queue_mtx_);
            queue_cv_.wait(lk, [&] { return shutdown_ || !ready_.empty(); });
            if (shutdown_ && ready_.empty())
                return;
            t = ready_.front();
            ready_.pop_front();
        }
        run_task(t, worker_id);
    }
}

void Engine::run_task(Task* t, int worker_id) {
    double const t0 = wall_time();
    try {
        t->fn();
    } catch (...) {
        std::lock_guard<std::mutex> lk(error_mtx_);
        if (!first_error_)
            first_error_ = std::current_exception();
    }
    double const t1 = wall_time();

    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lk(stats_mtx_);
        flops_executed_ += t->flops;
    }
    if (trace_on_) {
        std::lock_guard<std::mutex> lk(trace_mtx_);
        trace_.push_back({t->name, t->flops, t0, t1, worker_id, t->id, t->dep_ids});
    }

    std::vector<Task*> succ;
    {
        std::lock_guard<std::mutex> lk(t->mtx);
        t->done = true;
        succ.swap(t->successors);
    }
    for (Task* s : succ) {
        if (s->unresolved.fetch_sub(1, std::memory_order_acq_rel) == 1)
            make_ready(s);
    }

    {
        std::lock_guard<std::mutex> lk(queue_mtx_);
        --outstanding_;
        if (outstanding_ == 0)
            idle_cv_.notify_all();
    }
}

void Engine::wait() {
    if (mode_ != Mode::Sequential) {
        std::unique_lock<std::mutex> lk(queue_mtx_);
        idle_cv_.wait(lk, [&] { return outstanding_ == 0; });
    }
    // Fresh dependency epoch; tasks are retired.
    objects_.clear();
    all_tasks_.clear();
    std::exception_ptr err;
    {
        std::lock_guard<std::mutex> lk(error_mtx_);
        std::swap(err, first_error_);
    }
    if (err)
        std::rethrow_exception(err);
}

void Engine::op_fence() {
    if (mode_ != Mode::TaskDataflow)
        wait();
}

double Engine::flops_executed() const {
    std::lock_guard<std::mutex> lk(const_cast<std::mutex&>(stats_mtx_));
    return flops_executed_;
}

void Engine::reset_stats() {
    tasks_executed_.store(0);
    std::lock_guard<std::mutex> lk(stats_mtx_);
    flops_executed_ = 0;
}

void Engine::set_trace(bool on) { trace_on_ = on; }

void Engine::clear_trace() {
    std::lock_guard<std::mutex> lk(trace_mtx_);
    trace_.clear();
}

}  // namespace tbp::rt
