// Analysis and replay of recorded task traces.
//
// The engine's trace (task name, flops, duration, dependency edges) is a
// faithful record of the algorithm's dataflow DAG. This module computes the
// schedule-independent quantities the paper's task-based argument rests on —
// total work, critical path, average parallelism — and provides a
// list-scheduling replay that executes the recorded DAG on a modeled number
// of workers (with an optional per-task time model), so the available
// lookahead parallelism of the real QDWH DAG can be quantified without the
// hardware the paper used.

#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/error.hh"
#include "runtime/engine.hh"

namespace tbp::rt {

/// Schedule-independent DAG statistics.
struct DagStats {
    std::uint64_t tasks = 0;
    std::uint64_t tile_ops = 0;  ///< sum of per-task ops (= tasks unless batched)
    double total_work = 0;       ///< sum of task durations (seconds)
    double total_flops = 0;
    double critical_path = 0;    ///< longest dependency chain (seconds)
    double avg_parallelism = 0;  ///< total_work / critical_path
    double measured_makespan = 0;  ///< wall span of the actual execution
};

/// Compute DAG statistics from a trace. Task ids are assigned in submission
/// order, so ascending id is a topological order.
inline DagStats analyze(std::vector<TaskRecord> const& trace) {
    DagStats s;
    s.tasks = trace.size();
    if (trace.empty())
        return s;

    std::vector<TaskRecord const*> by_id(trace.size());
    std::unordered_map<std::uint64_t, size_t> index;
    index.reserve(trace.size());
    {
        // Trace is completion-ordered; re-sort by id for topological order.
        std::vector<TaskRecord const*> sorted;
        sorted.reserve(trace.size());
        for (auto const& r : trace)
            sorted.push_back(&r);
        std::sort(sorted.begin(), sorted.end(),
                  [](auto* a, auto* b) { return a->id < b->id; });
        by_id = std::move(sorted);
        for (size_t i = 0; i < by_id.size(); ++i)
            index[by_id[i]->id] = i;
    }

    std::vector<double> finish(by_id.size(), 0);
    double t_min = by_id[0]->t_start, t_max = 0;
    for (size_t i = 0; i < by_id.size(); ++i) {
        auto const& r = *by_id[i];
        double const dur = r.t_end - r.t_start;
        s.tile_ops += r.ops;
        s.total_work += dur;
        s.total_flops += r.flops;
        t_min = std::min(t_min, r.t_start);
        t_max = std::max(t_max, r.t_end);
        double ready = 0;
        for (auto dep : r.deps) {
            auto it = index.find(dep);
            if (it != index.end())
                ready = std::max(ready, finish[it->second]);
        }
        finish[i] = ready + dur;
        s.critical_path = std::max(s.critical_path, finish[i]);
    }
    s.measured_makespan = t_max - t_min;
    s.avg_parallelism =
        s.critical_path > 0 ? s.total_work / s.critical_path : 0;
    return s;
}

/// Per-worker utilization of the actual execution.
struct WorkerUtilization {
    std::vector<double> busy;  ///< per worker
    double makespan = 0;
    double utilization = 0;  ///< mean busy / makespan
};

inline WorkerUtilization worker_utilization(std::vector<TaskRecord> const& trace) {
    WorkerUtilization u;
    if (trace.empty())
        return u;
    double t_min = trace.front().t_start, t_max = 0;
    int max_worker = 0;
    for (auto const& r : trace) {
        max_worker = std::max(max_worker, r.worker);
        t_min = std::min(t_min, r.t_start);
        t_max = std::max(t_max, r.t_end);
    }
    u.busy.assign(static_cast<size_t>(max_worker) + 1, 0.0);
    for (auto const& r : trace)
        u.busy[static_cast<size_t>(std::max(r.worker, 0))] += r.t_end - r.t_start;
    u.makespan = t_max - t_min;
    if (u.makespan > 0) {
        double sum = 0;
        for (double b : u.busy)
            sum += b;
        u.utilization = sum / (u.makespan * static_cast<double>(u.busy.size()));
    }
    return u;
}

/// Scheduler-efficiency view of an executed trace: how the work-stealing
/// runtime behaved, reported alongside the schedule-independent DagStats.
/// `stolen_tasks` counts tasks run by a worker that took them from another
/// worker's deque; `idle` is the worker-seconds the pool spent not running
/// task bodies (scheduling overhead + genuine dependency stalls).
struct SchedulerEfficiency {
    std::uint64_t tasks = 0;
    std::uint64_t stolen_tasks = 0;
    std::uint64_t priority_tasks = 0;  ///< tasks submitted with priority > 0
    double steal_fraction = 0;         ///< stolen_tasks / tasks
    double makespan = 0;               ///< wall span of the execution
    double busy = 0;                   ///< sum of task durations
    double idle = 0;                   ///< workers * makespan - busy
    double utilization = 0;            ///< busy / (workers * makespan)
};

inline SchedulerEfficiency scheduler_efficiency(
    std::vector<TaskRecord> const& trace) {
    SchedulerEfficiency e;
    e.tasks = trace.size();
    if (trace.empty())
        return e;
    for (auto const& r : trace) {
        if (r.stolen)
            ++e.stolen_tasks;
        if (r.priority > 0)
            ++e.priority_tasks;
    }
    e.steal_fraction =
        static_cast<double>(e.stolen_tasks) / static_cast<double>(e.tasks);
    auto const u = worker_utilization(trace);
    e.makespan = u.makespan;
    for (double b : u.busy)
        e.busy += b;
    double const capacity = u.makespan * static_cast<double>(u.busy.size());
    e.idle = std::max(0.0, capacity - e.busy);
    e.utilization = u.utilization;
    return e;
}

/// Replay the recorded DAG with list scheduling on `workers` workers.
/// `time_of` maps a task record to its modeled duration; defaults to the
/// measured duration. Returns the modeled makespan.
inline double replay(std::vector<TaskRecord> const& trace, int workers,
                     std::function<double(TaskRecord const&)> const& time_of
                     = {}) {
    tbp_require(workers >= 1);
    if (trace.empty())
        return 0;

    std::vector<TaskRecord const*> by_id;
    by_id.reserve(trace.size());
    for (auto const& r : trace)
        by_id.push_back(&r);
    std::sort(by_id.begin(), by_id.end(),
              [](auto* a, auto* b) { return a->id < b->id; });
    std::unordered_map<std::uint64_t, size_t> index;
    for (size_t i = 0; i < by_id.size(); ++i)
        index[by_id[i]->id] = i;

    auto dur = [&](TaskRecord const& r) {
        return time_of ? time_of(r) : (r.t_end - r.t_start);
    };

    // Dependency counting.
    std::vector<int> unresolved(by_id.size(), 0);
    std::vector<std::vector<size_t>> succ(by_id.size());
    for (size_t i = 0; i < by_id.size(); ++i) {
        for (auto dep : by_id[i]->deps) {
            auto it = index.find(dep);
            if (it != index.end()) {
                succ[it->second].push_back(i);
                ++unresolved[i];
            }
        }
    }

    // Event-driven list scheduling: a min-heap of (finish_time, task),
    // `workers` slots.
    std::vector<double> ready_time(by_id.size(), 0);
    using Ev = std::pair<double, size_t>;
    std::priority_queue<Ev, std::vector<Ev>, std::greater<>> running;
    std::priority_queue<Ev, std::vector<Ev>, std::greater<>> ready;  // (ready_time, id)
    for (size_t i = 0; i < by_id.size(); ++i)
        if (unresolved[i] == 0)
            ready.push({0.0, i});

    double now = 0, makespan = 0;
    int busy = 0;
    while (!ready.empty() || !running.empty()) {
        // Start as many ready tasks (whose ready_time <= now) as fit.
        while (busy < workers && !ready.empty()
               && ready.top().first <= now + 1e-18) {
            auto [rt_, i] = ready.top();
            ready.pop();
            double const f = now + dur(*by_id[i]);
            running.push({f, i});
            ++busy;
        }
        if (running.empty()) {
            // Idle until the next task becomes ready.
            tbp_require(!ready.empty());
            now = ready.top().first;
            continue;
        }
        // Advance to the next completion.
        auto [f, i] = running.top();
        running.pop();
        --busy;
        now = std::max(now, f);
        makespan = std::max(makespan, f);
        for (size_t sidx : succ[i]) {
            if (--unresolved[sidx] == 0) {
                ready_time[sidx] = f;
                ready.push({f, sidx});
            }
        }
    }
    return makespan;
}

}  // namespace tbp::rt
