// Superscalar dataflow task engine.
//
// This is TBP's stand-in for SLATE's "OpenMP tasks to track data
// dependencies" (paper abstract): the algorithm layer submits tasks in
// sequential program order, each declaring read/write accesses on tile data
// pointers, and the engine derives RAW/WAR/WAW dependencies exactly like an
// OpenMP `depend(in/out/inout)` region, then executes ready tasks on a
// thread pool. Lookahead across panels, updates, and successive operations
// emerges from the dataflow, as in SLATE.
//
// Execution modes:
//   Sequential  - submit() runs the task inline (debugging, references)
//   TaskDataflow- full asynchronous dataflow (the paper's SLATE mode)
//   ForkJoin    - same engine, but the algorithm layer's op_fence() becomes
//                 a full barrier after every high-level operation. This
//                 reproduces the bulk-synchronous fork-join schedule of
//                 ScaLAPACK/POLAR that Section 3 identifies as the
//                 state-of-the-art's bottleneck.
//
// The engine can also record a trace (task names, flop counts, dependency
// edges, start/end times, worker ids) consumed by the performance-model
// replay in src/perf/.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace tbp::rt {

enum class Mode { Sequential, TaskDataflow, ForkJoin };

enum class AccessMode { Read, Write, ReadWrite };

/// One data access of a task: a key (tile data pointer) plus a mode.
struct Access {
    void const* key;
    AccessMode mode;
};

inline Access read(void const* key) { return {key, AccessMode::Read}; }
inline Access write(void const* key) { return {key, AccessMode::Write}; }
inline Access readwrite(void const* key) { return {key, AccessMode::ReadWrite}; }

/// Trace record of one executed task (for tests and the perf replay).
struct TaskRecord {
    std::string name;
    double flops = 0;
    double t_start = 0;
    double t_end = 0;
    int worker = -1;
    std::uint64_t id = 0;
    std::vector<std::uint64_t> deps;  // ids of predecessor tasks
};

class Engine {
public:
    /// num_threads <= 0 picks std::thread::hardware_concurrency().
    explicit Engine(int num_threads = 0, Mode mode = Mode::TaskDataflow);
    ~Engine();

    Engine(Engine const&) = delete;
    Engine& operator=(Engine const&) = delete;

    Mode mode() const { return mode_; }
    int num_threads() const { return static_cast<int>(workers_.size()); }

    /// Submit a task. Must be called from a single submitter thread (the
    /// algorithm driver), as with OpenMP task regions.
    void submit(char const* name, double flops, std::vector<Access> accesses,
                std::function<void()> fn);

    /// Convenience overload without cost metadata.
    void submit(char const* name, std::vector<Access> accesses,
                std::function<void()> fn) {
        submit(name, 0.0, std::move(accesses), std::move(fn));
    }

    /// Wait for every submitted task to finish. Rethrows the first exception
    /// thrown by any task. Clears the dependency table (a fresh epoch).
    void wait();

    /// Barrier inserted by the algorithm layer between high-level operations.
    /// A no-op under TaskDataflow (lookahead allowed); a full wait() under
    /// ForkJoin and Sequential.
    void op_fence();

    // --- statistics -------------------------------------------------------
    std::uint64_t tasks_executed() const { return tasks_executed_.load(); }
    double flops_executed() const;
    void reset_stats();

    // --- tracing ----------------------------------------------------------
    void set_trace(bool on);
    bool tracing() const { return trace_on_; }
    /// Trace of the tasks executed since set_trace(true). Call after wait().
    std::vector<TaskRecord> const& trace() const { return trace_; }
    void clear_trace();

private:
    struct Task;
    struct ObjectState;

    void worker_loop(int worker_id);
    void run_task(Task* t, int worker_id);
    void make_ready(Task* t);

    Mode mode_;
    std::vector<std::thread> workers_;

    std::mutex queue_mtx_;
    std::condition_variable queue_cv_;
    std::condition_variable idle_cv_;
    std::deque<Task*> ready_;
    bool shutdown_ = false;
    std::uint64_t outstanding_ = 0;  // guarded by queue_mtx_

    // Dependency bookkeeping; touched only by the submitter thread.
    std::unordered_map<void const*, ObjectState> objects_;
    std::vector<std::unique_ptr<Task>> all_tasks_;
    std::uint64_t next_id_ = 0;

    std::atomic<std::uint64_t> tasks_executed_{0};
    std::mutex stats_mtx_;
    double flops_executed_ = 0;  // guarded by stats_mtx_

    bool trace_on_ = false;
    std::mutex trace_mtx_;
    std::vector<TaskRecord> trace_;

    std::mutex error_mtx_;
    std::exception_ptr first_error_;
};

}  // namespace tbp::rt
