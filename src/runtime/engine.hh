// Superscalar dataflow task engine with a work-stealing scheduler.
//
// This is TBP's stand-in for SLATE's "OpenMP tasks to track data
// dependencies" (paper abstract): the algorithm layer submits tasks in
// sequential program order, each declaring read/write accesses on tile data
// pointers, and the engine derives RAW/WAR/WAW dependencies exactly like an
// OpenMP `depend(in/out/inout)` region, then executes ready tasks on a
// thread pool. Lookahead across panels, updates, and successive operations
// emerges from the dataflow, as in SLATE.
//
// Execution modes:
//   Sequential  - submit() runs the task inline (debugging, references)
//   TaskDataflow- full asynchronous dataflow (the paper's SLATE mode)
//   ForkJoin    - same engine, but the algorithm layer's op_fence() becomes
//                 a full barrier after every high-level operation. This
//                 reproduces the bulk-synchronous fork-join schedule of
//                 ScaLAPACK/POLAR that Section 3 identifies as the
//                 state-of-the-art's bottleneck.
//
// Scheduler (Sched):
//   WorkStealing (default) - one ready deque per worker. A worker pops its
//     own deque LIFO (newest first, for cache locality with the task that
//     just produced the data); an idle worker sweeps the other workers'
//     deques and steals FIFO (oldest first, the task least likely to be hot
//     in the victim's cache), taking half of the victim's backlog with it
//     so fine-grained DAGs amortize the sweep over many tasks. Only when a
//     local pop and a full steal sweep both fail does the worker sleep on a
//     condition variable; a push wakes a worker only if one is actually
//     asleep (sleeper-count gate), so the steady state where every worker
//     is busy pays no wake-up traffic. Tasks released by a running task are
//     pushed to that worker's own deque; tasks submitted by the driver
//     thread are distributed round-robin.
//   GlobalQueue - the pre-work-stealing scheduler: a single mutex-guarded
//     FIFO shared by all workers. Kept selectable so bench_scheduler can
//     measure what the decentralized queues buy at fine task granularity.
//
// Priority: submit() takes an optional integer priority (default 0). Each
// deque keeps priority > 0 tasks in a separate high-priority lane that is
// always popped (and stolen) before priority-0 work. The algorithm layer
// marks critical-path tasks — panel factorizations (geqrt, tsqrt, potrf)
// and triangular panel solves — mirroring SLATE's `omp priority` hint on
// panel tasks, so trailing-matrix updates cannot starve the panel chain.
// Priorities are a scheduling hint only; dependency order always wins.
//
// Error propagation contract: errors are latched per *job*. Every task
// belongs to a job (the optional JobId argument of submit(); the default,
// kAmbientJob = 0, is the ordinary single-algorithm case). The first
// exception thrown by a task of a job poisons that job: the bodies of its
// subsequently dequeued tasks are skipped (the tasks still retire and
// release their successors, so wait() terminates and the dependency epoch
// stays consistent) — the job's DAG drains quickly instead of computing on
// poisoned data, while tasks of every other job keep executing normally.
// The ambient job's error is rethrown (and cleared) by the next wait(),
// preserving the single-job contract; errors of explicit jobs (new_job())
// are never rethrown by wait() and are claimed with take_job_error(). A
// host can also poison a job directly via poison_job() — the batched
// service layer uses this to fence off a job whose provider failed without
// routing the exception through a task body.
//
// The engine can also record a trace (task names, flop counts, dependency
// edges, start/end times, worker ids, priorities, whether the task was
// stolen) consumed by the performance-model replay in src/perf/ and the
// scheduler-efficiency reports in trace_analysis.hh.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace tbp::rt {

enum class Mode { Sequential, TaskDataflow, ForkJoin };

/// Ready-queue organization of the worker pool.
enum class Sched { GlobalQueue, WorkStealing };

enum class AccessMode { Read, Write, ReadWrite };

/// Error-scoping domain of a task (see header comment). Job 0 is the
/// ambient job of plain submit() callers; explicit ids come from new_job().
using JobId = std::uint64_t;
inline constexpr JobId kAmbientJob = 0;

/// One data access of a task: a key (tile data pointer) plus a mode.
struct Access {
    void const* key;
    AccessMode mode;
};

inline Access read(void const* key) { return {key, AccessMode::Read}; }
inline Access write(void const* key) { return {key, AccessMode::Write}; }
inline Access readwrite(void const* key) { return {key, AccessMode::ReadWrite}; }

/// Trace record of one executed task (for tests and the perf replay).
struct TaskRecord {
    std::string name;
    double flops = 0;
    double t_start = 0;
    double t_end = 0;
    int worker = -1;
    std::uint64_t id = 0;
    std::vector<std::uint64_t> deps;  // ids of predecessor tasks (deduped)
    int priority = 0;
    bool stolen = false;  // executed by a worker that stole it from a victim
    std::uint64_t ops = 1;  // tile operations the body performed (batch size)
};

class Engine {
public:
    /// Scheduler event counters since construction / reset_stats().
    struct SchedStats {
        std::uint64_t local_pops = 0;   ///< tasks popped from the owner deque
        std::uint64_t steals = 0;       ///< tasks stolen from a victim deque
        std::uint64_t global_pops = 0;  ///< GlobalQueue-mode dequeues
        std::uint64_t sleeps = 0;       ///< times a worker blocked on the cv
    };

    /// num_threads <= 0 picks std::thread::hardware_concurrency().
    explicit Engine(int num_threads = 0, Mode mode = Mode::TaskDataflow,
                    Sched sched = Sched::WorkStealing);
    ~Engine();

    Engine(Engine const&) = delete;
    Engine& operator=(Engine const&) = delete;

    Mode mode() const { return mode_; }
    Sched sched() const { return sched_; }
    int num_threads() const { return static_cast<int>(workers_.size()); }

    /// Submit a task. Must be called from a single submitter thread (the
    /// algorithm driver), as with OpenMP task regions. priority > 0 marks a
    /// critical-path task scheduled ahead of priority-0 work (see header).
    /// `job` selects the error-scoping domain the task belongs to. `ops` is
    /// the number of tile operations the body performs — 1 for an ordinary
    /// per-tile task, the batch size for a batched-executor group task — so
    /// DAG-level accounting (perf::qr_task_counts vs. the traced DAG) stays
    /// exact when one engine task carries a whole batch.
    void submit(char const* name, double flops, std::vector<Access> accesses,
                std::function<void()> fn, int priority = 0,
                JobId job = kAmbientJob, std::uint64_t ops = 1);

    /// Convenience overload without cost metadata.
    void submit(char const* name, std::vector<Access> accesses,
                std::function<void()> fn, int priority = 0,
                JobId job = kAmbientJob) {
        submit(name, 0.0, std::move(accesses), std::move(fn), priority, job);
    }

    /// Wait for every submitted task to finish. Rethrows the first exception
    /// thrown by an *ambient-job* task (and clears that latch). Errors of
    /// explicit jobs stay latched for take_job_error(). Clears the
    /// dependency table (a fresh epoch).
    void wait();

    // --- job error scoping ------------------------------------------------
    /// Fresh error-scoping domain for a batch job (thread-safe).
    JobId new_job() { return next_job_.fetch_add(1, std::memory_order_relaxed); }

    /// Claim and clear a job's latched error; nullptr if the job is clean.
    /// The job id must not be reused for new tasks afterwards.
    std::exception_ptr take_job_error(JobId job);

    /// Latch `err` for `job` directly (first error wins): pending tasks of
    /// that job drain with skipped bodies, exactly as if a task had thrown.
    /// Safe from any thread, including from inside a running task.
    void poison_job(JobId job, std::exception_ptr err);

    /// True if the job currently has a latched (unclaimed) error.
    bool job_poisoned(JobId job) const;

    /// Barrier inserted by the algorithm layer between high-level operations.
    /// A no-op under TaskDataflow (lookahead allowed); a full wait() under
    /// ForkJoin and Sequential.
    void op_fence();

    // --- statistics -------------------------------------------------------
    std::uint64_t tasks_executed() const { return tasks_executed_.load(); }
    /// Tile operations executed (sum of per-task `ops`). Equals
    /// tasks_executed() when nothing is batched; larger under the batched
    /// device executor, where one task can carry many tile ops.
    std::uint64_t tile_ops_executed() const { return tile_ops_executed_.load(); }
    double flops_executed() const;
    SchedStats sched_stats() const;
    void reset_stats();

    // --- tracing ----------------------------------------------------------
    void set_trace(bool on);
    bool tracing() const { return trace_on_.load(std::memory_order_relaxed); }
    /// Trace of the tasks executed since set_trace(true). Call after wait().
    std::vector<TaskRecord> const& trace() const { return trace_; }
    void clear_trace();

private:
    struct Task;
    struct ObjectState;
    struct WorkerQueue;

    void worker_loop(int worker_id);
    void run_task(Task* t, int worker_id, bool stolen);
    /// src_worker >= 0: released by that worker (push to its own deque);
    /// src_worker < 0: submitted by the driver (round-robin).
    void make_ready(Task* t, int src_worker);
    Task* pop_local(int worker_id);
    Task* steal(int thief_id);
    /// Definitive emptiness check: locks every worker deque in turn. Only
    /// used on the (rare) sleep path, keeping the push/pop hot paths free
    /// of any shared ready counter.
    bool queues_empty() const;

    Mode mode_;
    Sched sched_;
    std::vector<std::thread> workers_;

    // Sleep/wake and GlobalQueue state. queue_mtx_ guards ready_ (GlobalQueue
    // mode only) and brackets every notify so cv waiters cannot miss a wake.
    std::mutex queue_mtx_;
    std::condition_variable queue_cv_;
    std::condition_variable idle_cv_;
    std::deque<Task*> ready_;  // GlobalQueue mode; high priority at the front
    std::atomic<bool> shutdown_{false};
    std::atomic<std::uint64_t> outstanding_{0};

    // WorkStealing state: one deque pair per worker. sleepers_ gates the
    // notify in make_ready (paired with the sleeper's lock-sweep of every
    // deque, see queues_empty()) so a push with every worker busy skips the
    // wake entirely.
    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::atomic<int> sleepers_{0};
    std::uint64_t next_queue_ = 0;  // round-robin cursor; driver thread only

    // Dependency bookkeeping; touched only by the submitter thread.
    std::unordered_map<void const*, ObjectState> objects_;
    std::vector<std::unique_ptr<Task>> all_tasks_;
    std::uint64_t next_id_ = 0;

    std::atomic<std::uint64_t> tasks_executed_{0};
    std::atomic<std::uint64_t> tile_ops_executed_{0};
    std::atomic<std::uint64_t> local_pops_{0};
    std::atomic<std::uint64_t> steals_{0};
    std::atomic<std::uint64_t> global_pops_{0};
    std::atomic<std::uint64_t> sleeps_{0};
    mutable std::mutex stats_mtx_;
    double flops_executed_ = 0;  // guarded by stats_mtx_

    std::atomic<bool> trace_on_{false};
    std::mutex trace_mtx_;
    std::vector<TaskRecord> trace_;

    // Per-job error latches. poisoned_jobs_ counts map entries so the
    // run_task hot path stays a single atomic load while no job is poisoned.
    mutable std::mutex error_mtx_;
    std::unordered_map<JobId, std::exception_ptr> job_errors_;  // guarded
    std::atomic<std::uint64_t> poisoned_jobs_{0};
    std::atomic<JobId> next_job_{1};
};

}  // namespace tbp::rt
