// Built-in providers for the service layer: qdwh, zolopd, posv, geqrf over
// all four scalar types, dispatched on JobSpec::type.
//
// Every provider follows the same shape: generate the input reproducibly
// from the spec's counter-RNG seed (gen/matgen.hh — same (dims, seed) gives
// the same matrix regardless of tiling or schedule), solve on the job's
// private engine, and stage the outputs as dense column-major bytes into
// the job's workspace. Running each job on a sequential private engine
// makes its output bytes a pure function of the spec, which is what lets
// the bench compare a 1000-job concurrent batch bit-for-bit against
// single-job oracle runs.
//
// Failure contract: solvers with status-returning entry points (qdwh,
// zolopd) report through JobResult::status; posv/geqrf use the throwing
// la:: calls and let tbp::Error escape to the service body, which maps it
// to Status::NumericalError. Either way the batch continues.

#pragma once

#include <cmath>
#include <complex>
#include <cstdint>
#include <limits>
#include <vector>

#include "comm/dist.hh"
#include "comm/dist_qdwh.hh"
#include "core/qdwh.hh"
#include "core/zolopd.hh"
#include "device/executor.hh"
#include "gen/matgen.hh"
#include "linalg/geqrf.hh"
#include "linalg/potrf.hh"
#include "matrix/tiled_matrix.hh"
#include "runtime/engine.hh"
#include "service/registry.hh"

namespace tbp::svc {

/// Invoke f with a value of the scalar type named by `t` ('s','d','c','z');
/// false if the tag is unknown.
template <typename F>
bool with_scalar_type(char t, F&& f) {
    switch (t) {
        case 's': f(float{}); return true;
        case 'd': f(double{}); return true;
        case 'c': f(std::complex<float>{}); return true;
        case 'z': f(std::complex<double>{}); return true;
        default: return false;
    }
}

/// Spec validation shared by the service front end: a malformed spec turns
/// into an InvalidArgument JobResult without ever reaching a provider.
inline Status validate(JobSpec const& spec) {
    bool const known_type = spec.type == 's' || spec.type == 'd'
                            || spec.type == 'c' || spec.type == 'z';
    if (!known_type || spec.nb < 1 || spec.n < 1 || spec.max_iter < 0
        || spec.r < 0)
        return Status::InvalidArgument;
    if (spec.kind == JobKind::Posv) {
        if (spec.m < 1)  // m is the right-hand-side count for posv
            return Status::InvalidArgument;
    } else if (spec.m < spec.n) {
        return Status::InvalidArgument;
    }
    if (spec.kind == JobKind::DistQdwh) {
        // The distributed driver requires tile-aligned rows; the l0 bound
        // comes from 1/cond, so the condition target must be >= 1. Ranks
        // are virtual threads — cap them so a typo can't fork 10^6 threads.
        if (spec.m % spec.nb != 0 || spec.cond < 1 || spec.ranks < 0
            || spec.ranks > 64)
            return Status::InvalidArgument;
    }
    return Status::Ok;
}

namespace detail {

/// Whether to actually wrap a job in the batched executor. The collector
/// earns its keep by relieving scheduler pressure on a parallel engine; on
/// a sequential engine (the service's private per-job engines) there is no
/// pressure to relieve and its group-key bookkeeping sits directly on the
/// critical path — measured 0.74-0.88x jobs/sec on the throughput mix even
/// at 36 tiles. So Auto engages the executor only when the spec resolves
/// Batched AND the engine is parallel; an explicit JobTarget::Batched
/// override still always forces it.
inline bool use_batched_exec(JobSpec const& spec, rt::Engine const& eng) {
    if (spec.target == JobTarget::Batched)
        return true;
    return resolve_target(spec) == JobTarget::Batched
           && eng.num_threads() > 1;
}

/// Run `body(ex)` on the engine or on a batched executor wrapping it,
/// per the spec's resolved target (Bulk jobs default to batched). Used by
/// the providers without a status-returning solver dispatch of their own
/// (posv, geqrf); qdwh/zolopd route through their options instead.
template <typename T, typename Body>
void with_exec(rt::Engine& eng, JobSpec const& spec, Body&& body) {
    if (use_batched_exec(spec, eng)) {
        dev::ExecOptions eo;
        eo.target = dev::Target::BatchedHost;
        eo.tile_bytes = static_cast<std::size_t>(spec.nb)
                        * static_cast<std::size_t>(spec.nb) * sizeof(T);
        // Service jobs run on private sequential engines; the stream-overlap
        // model would only add bookkeeping latency with nothing to overlap.
        eo.model_streams = false;
        dev::Executor ex(eng, eo);
        body(ex);
        ex.wait();
    } else {
        body(eng);
    }
}

/// Stage A as dense column-major scalars into `slot`; returns bytes used.
template <typename T>
std::size_t stage_dense(Workspace& ws, Workspace::Slot slot,
                        TiledMatrix<T> A) {
    std::int64_t const m = A.m();
    std::int64_t const n = A.n();
    T* p = ws.get_as<T>(slot, static_cast<std::size_t>(m * n));
    for (std::int64_t j = 0; j < n; ++j)
        for (std::int64_t i = 0; i < m; ++i)
            p[static_cast<std::size_t>(i + j * m)] = A.at(i, j);
    return static_cast<std::size_t>(m * n) * sizeof(T);
}

template <typename T>
void run_qdwh(rt::Engine& eng, JobSpec const& spec, Workspace& ws,
              JobResult& res) {
    gen::MatGenOptions g;
    g.cond = spec.cond;
    g.seed = spec.seed;
    TiledMatrix<T> A =
        gen::cond_matrix<T>(eng, spec.m, spec.n, spec.nb, g);
    TiledMatrix<T> H(spec.n, spec.n, spec.nb);
    QdwhOptions qo;
    if (spec.max_iter > 0)
        qo.max_iter = spec.max_iter;
    if (detail::use_batched_exec(spec, eng))
        qo.target = dev::Target::BatchedHost;
    qo.lookahead = spec.lookahead;
    qo.model_streams = false;  // private sequential engine: nothing overlaps
    qo.precision.request = resolve_precision(spec);
    QdwhInfo info;
    Status const s = qdwh_status(eng, A, H, info, qo);
    res.status = s;
    res.iterations = info.iterations;
    res.converged = info.converged;
    res.flops = info.flops;
    if (s == Status::Ok) {
        stage_dense(ws, Workspace::OutU, A);
        stage_dense(ws, Workspace::OutH, H);
    } else {
        res.error = std::string(job_kind_name(spec.kind)) + ": "
                    + status_name(s);
    }
}

template <typename T>
void run_zolopd(rt::Engine& eng, JobSpec const& spec, Workspace& ws,
                JobResult& res) {
    gen::MatGenOptions g;
    g.cond = spec.cond;
    g.seed = spec.seed;
    TiledMatrix<T> A =
        gen::cond_matrix<T>(eng, spec.m, spec.n, spec.nb, g);
    TiledMatrix<T> H(spec.n, spec.n, spec.nb);
    ZoloOptions zo;
    if (spec.max_iter > 0)
        zo.max_iter = spec.max_iter;
    if (spec.r > 0)
        zo.r = spec.r;
    if (detail::use_batched_exec(spec, eng))
        zo.target = dev::Target::BatchedHost;
    zo.lookahead = spec.lookahead;
    zo.precision.request = resolve_precision(spec);
    ZoloInfo info;
    Status const s = zolo_pd_status(eng, A, H, info, zo);
    res.status = s;
    res.iterations = info.iterations;
    res.converged = info.converged;
    res.flops = info.flops;
    if (s == Status::Ok) {
        stage_dense(ws, Workspace::OutU, A);
        stage_dense(ws, Workspace::OutH, H);
    } else {
        res.error = std::string(job_kind_name(spec.kind)) + ": "
                    + status_name(s);
    }
}

template <typename T>
void run_posv(rt::Engine& eng, JobSpec const& spec, Workspace& ws,
              JobResult& res) {
    double const flops0 = eng.flops_executed();
    TiledMatrix<T> A = gen::hpd_matrix<T>(eng, spec.n, spec.nb, spec.seed);
    if (spec.cond < 0) {
        // Failure-injection hook: shift the spectrum below zero so potrf
        // meets a non-positive pivot (hpd_matrix builds B B^H + n I, whose
        // smallest eigenvalue is ~n).
        for (std::int64_t i = 0; i < spec.n; ++i)
            A.at(i, i) -= from_real<T>(static_cast<real_t<T>>(2 * spec.n + 1));
    }
    TiledMatrix<T> B(spec.n, spec.m, spec.nb);
    gen::fill_gaussian(eng, B, spec.seed ^ 0x9e3779b97f4a7c15ULL);
    // throws tbp::Error on a non-HPD pivot
    with_exec<T>(eng, spec,
                 [&](auto& ex) { la::posv(ex, A, B, spec.lookahead); });
    eng.wait();
    res.status = Status::Ok;
    res.converged = true;
    res.flops = eng.flops_executed() - flops0;
    stage_dense(ws, Workspace::OutU, B);
}

template <typename T>
void run_geqrf(rt::Engine& eng, JobSpec const& spec, Workspace& ws,
               JobResult& res) {
    double const flops0 = eng.flops_executed();
    TiledMatrix<T> A(spec.m, spec.n, spec.nb);
    gen::fill_gaussian(eng, A, spec.seed);
    TiledMatrix<T> Tm = la::alloc_qr_t(A);
    TiledMatrix<T> Q(spec.m, spec.n, spec.nb);
    with_exec<T>(eng, spec, [&](auto& ex) {
        la::geqrf(ex, A, Tm, spec.lookahead);
        la::ungqr(ex, A, Tm, Q);
    });
    eng.wait();
    res.status = Status::Ok;
    res.converged = true;
    res.flops = eng.flops_executed() - flops0;
    stage_dense(ws, Workspace::OutU, Q);
    stage_dense(ws, Workspace::OutH, A);  // reflectors + R for the oracle
}

/// Near-square process grid for P virtual ranks: the largest divisor
/// d <= sqrt(P) gives a d x (P/d) grid (4 -> 2x2, 8 -> 2x4, 7 -> 1x7).
inline Grid dist_grid(int nranks) {
    int d = 1;
    for (int k = 1; k * k <= nranks; ++k)
        if (nranks % k == 0)
            d = k;
    return Grid{d, nranks / d};
}

template <typename T>
void run_dist_qdwh(rt::Engine& eng, JobSpec const& spec, Workspace& ws,
                   JobResult& res) {
    using R = real_t<T>;
    double const flops0 = eng.flops_executed();
    int const P = spec.ranks > 0 ? spec.ranks : 4;
    Grid const grid = dist_grid(P);
    int const max_iter = spec.max_iter > 0 ? spec.max_iter : 30;

    // Same reproducible input the local Qdwh provider would generate for
    // this spec — that identity is what makes single-rank failover (and the
    // chaos tests' fault-free oracle) meaningful.
    gen::MatGenOptions g;
    g.cond = spec.cond;
    g.seed = spec.seed;
    TiledMatrix<T> A0 =
        gen::cond_matrix<T>(eng, spec.m, spec.n, spec.nb, g);
    eng.wait();

    comm::World world(P);
    if (spec.fault.enabled()) {
        fault::RetryConfig rc;
        if (spec.timeout_ms > 0)
            rc.timeout_ms = spec.timeout_ms;
        if (spec.retry_max > 0)
            rc.retry_max = spec.retry_max;
        world.set_fault(spec.fault, rc);
    }

    std::vector<T> U;
    comm::DistQdwhInfo info;
    // CommError / RankFailedError out of run() propagate to the service's
    // retry loop; a recovered chaos run reaches here with clean results.
    world.run([&](comm::Communicator& c) {
        comm::DistMatrix<T> A(c, spec.m, spec.n, spec.nb, grid);
        A.fill([&](std::int64_t i, std::int64_t j) { return A0.at(i, j); });
        auto inf = comm::dist_qdwh(c, grid, A, 1.0 / spec.cond, max_iter);
        auto dense = comm::dist_gather(c, A);
        if (c.rank() == 0) {
            info = inf;
            U = std::move(dense);
        }
    });

    res.iterations = info.iterations;
    res.flops = eng.flops_executed() - flops0;
    double const tol3 =
        std::cbrt(5.0 * std::numeric_limits<R>::epsilon());
    res.converged = info.iterations < max_iter || info.conv < tol3;
    if (!res.converged) {
        res.status = Status::NotConverged;
        res.error = std::string(job_kind_name(spec.kind)) + ": "
                    + status_name(Status::NotConverged);
        return;
    }

    std::int64_t const m = spec.m, n = spec.n;
    T* pu = ws.get_as<T>(Workspace::OutU, static_cast<std::size_t>(m * n));
    std::copy(U.begin(), U.end(), pu);

    // H = (U^H A + (U^H A)^H) / 2, formed densely on rank 0's gathered
    // factor (n is the small dimension; this is O(m n^2) scalar work).
    T* ph = ws.get_as<T>(Workspace::OutH, static_cast<std::size_t>(n * n));
    for (std::int64_t j = 0; j < n; ++j)
        for (std::int64_t i = 0; i < n; ++i) {
            T acc{};
            for (std::int64_t k = 0; k < m; ++k)
                acc += conj_val(U[static_cast<std::size_t>(k + i * m)])
                       * A0.at(k, j);
            ph[static_cast<std::size_t>(i + j * n)] = acc;
        }
    for (std::int64_t j = 0; j < n; ++j)
        for (std::int64_t i = 0; i <= j; ++i) {
            T const h = (ph[static_cast<std::size_t>(i + j * n)]
                         + conj_val(ph[static_cast<std::size_t>(j + i * n)]))
                        / T(2);
            ph[static_cast<std::size_t>(i + j * n)] = h;
            ph[static_cast<std::size_t>(j + i * n)] = conj_val(h);
        }
    res.status = Status::Ok;
}

}  // namespace detail

inline ProviderRegistry ProviderRegistry::builtin() {
    ProviderRegistry reg;
    reg.add(JobKind::Qdwh, [](rt::Engine& eng, JobSpec const& spec,
                              Workspace& ws, JobResult& res) {
        with_scalar_type(spec.type, [&](auto tag) {
            detail::run_qdwh<decltype(tag)>(eng, spec, ws, res);
        });
    });
    reg.add(JobKind::ZoloPd, [](rt::Engine& eng, JobSpec const& spec,
                                Workspace& ws, JobResult& res) {
        with_scalar_type(spec.type, [&](auto tag) {
            detail::run_zolopd<decltype(tag)>(eng, spec, ws, res);
        });
    });
    reg.add(JobKind::Posv, [](rt::Engine& eng, JobSpec const& spec,
                              Workspace& ws, JobResult& res) {
        with_scalar_type(spec.type, [&](auto tag) {
            detail::run_posv<decltype(tag)>(eng, spec, ws, res);
        });
    });
    reg.add(JobKind::Geqrf, [](rt::Engine& eng, JobSpec const& spec,
                               Workspace& ws, JobResult& res) {
        with_scalar_type(spec.type, [&](auto tag) {
            detail::run_geqrf<decltype(tag)>(eng, spec, ws, res);
        });
    });
    reg.add(JobKind::DistQdwh, [](rt::Engine& eng, JobSpec const& spec,
                                  Workspace& ws, JobResult& res) {
        with_scalar_type(spec.type, [&](auto tag) {
            detail::run_dist_qdwh<decltype(tag)>(eng, spec, ws, res);
        });
    });
    return reg;
}

}  // namespace tbp::svc
