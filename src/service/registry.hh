// Provider registry: maps a JobKind to the callable that executes it.
//
// A provider runs one job to completion on the job's private engine,
// reporting through JobResult (status + info + outputs staged into the
// workspace). Providers communicate failure by Status where the solver
// offers a status-returning entry point (qdwh_status, zolo_pd_status) and
// by throwing tbp::Error where it does not (posv's non-HPD pivot); the
// service maps escaped exceptions to JobResult errors so neither path can
// abort a batch.
//
// The registry is a value type: the service takes a copy at construction,
// so tests can register fakes (e.g. a provider that always throws) without
// touching global state.

#pragma once

#include <functional>
#include <unordered_map>

#include "runtime/engine.hh"
#include "service/arena.hh"
#include "service/job.hh"

namespace tbp::svc {

class ProviderRegistry {
public:
    using Provider = std::function<void(rt::Engine&, JobSpec const&,
                                        Workspace&, JobResult&)>;

    /// Registry with the built-in qdwh/zolopd/posv/geqrf providers over all
    /// four scalar types (providers.hh).
    static ProviderRegistry builtin();

    void add(JobKind kind, Provider p) {
        providers_[static_cast<int>(kind)] = std::move(p);
    }

    Provider const* find(JobKind kind) const {
        auto const it = providers_.find(static_cast<int>(kind));
        return it == providers_.end() ? nullptr : &it->second;
    }

private:
    std::unordered_map<int, Provider> providers_;
};

}  // namespace tbp::svc
