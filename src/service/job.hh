// Job model for the batched "polar as a service" front end (service.hh).
//
// A JobSpec names everything needed to run one solve reproducibly: the
// solver kind, the QoS class, the scalar type, dimensions, tiling, and the
// counter-based generator seed. Because generation is counter-based
// (gen/matgen.hh) and each job executes on its own sequential engine, the
// output bytes of a job are a pure function of its spec — the property the
// throughput bench exploits to check batches bit-for-bit against a
// single-job oracle.
//
// A JobResult carries the per-job outcome. A failing job reports through
// Status + error text here; it never aborts the batch (service.hh).

#pragma once

#include <cstdint>
#include <string>

#include "common/error.hh"
#include "core/precision_policy.hh"
#include "fault/fault_plan.hh"

namespace tbp::svc {

/// Solver kinds the built-in provider registry dispatches on.
enum class JobKind {
    Qdwh,      ///< polar decomposition, QDWH iteration (core/qdwh.hh)
    ZoloPd,    ///< polar decomposition, Zolotarev rational iteration
    Posv,      ///< Hermitian positive-definite solve (potrf + 2 trsm)
    Geqrf,     ///< QR factorization + explicit Q generation
    DistQdwh,  ///< distributed QDWH over virtual ranks (comm/dist_qdwh.hh),
               ///< optionally under a seeded fault plan; the failover
               ///< target of graceful degradation is the local Qdwh kind
};

/// QoS classes mapped onto the engine's per-worker priority lanes:
/// Latency jobs ride the high lane past any depth of Bulk backlog.
enum class JobClass {
    Latency,  ///< interactive: engine priority 1 (high lane)
    Bulk,     ///< throughput: engine priority 0 (normal lane)
};

inline char const* job_kind_name(JobKind k) {
    switch (k) {
        case JobKind::Qdwh: return "qdwh";
        case JobKind::ZoloPd: return "zolopd";
        case JobKind::Posv: return "posv";
        case JobKind::Geqrf: return "geqrf";
        case JobKind::DistQdwh: return "dqdwh";
    }
    return "unknown";
}

inline char const* job_class_name(JobClass c) {
    return c == JobClass::Latency ? "latency" : "bulk";
}

/// Execution-target override for a job. Auto resolves from the QoS class:
/// Bulk jobs run on the batched device executor (throughput — coalesced
/// engine tasks, modeled streams), Latency jobs stay per-tile (lowest
/// time-to-first-result). Tasks/Batched force one path regardless of class.
enum class JobTarget {
    Auto,     ///< Bulk -> Batched, Latency -> Tasks
    Tasks,    ///< force per-tile engine tasks
    Batched,  ///< force the batched device executor
};

inline char const* job_target_name(JobTarget t) {
    switch (t) {
        case JobTarget::Auto: return "auto";
        case JobTarget::Tasks: return "tasks";
        case JobTarget::Batched: return "batched";
    }
    return "unknown";
}

/// Per-job precision request. Auto resolves from the QoS class: Bulk jobs
/// run the adaptive ladder (throughput — the schedule is deterministic per
/// spec, so batch outputs stay bit-reproducible), Latency jobs stay native
/// (no conversion sweeps on the time-to-first-result path). The rest force
/// one prec::Precision regardless of class.
enum class JobPrec {
    Auto,      ///< Bulk -> Adaptive, Latency -> Native
    Native,    ///< every iteration in the job's scalar type
    Float,     ///< float rung + native tail (double-kind jobs)
    Bf16,      ///< simulated-bf16 rung + native tail
    Adaptive,  ///< condition-driven per-iteration rung schedule
};

inline char const* job_prec_name(JobPrec p) {
    switch (p) {
        case JobPrec::Auto: return "auto";
        case JobPrec::Native: return "native";
        case JobPrec::Float: return "float";
        case JobPrec::Bf16: return "bf16";
        case JobPrec::Adaptive: return "adaptive";
    }
    return "unknown";
}

struct JobSpec {
    JobKind kind = JobKind::Qdwh;
    JobClass cls = JobClass::Bulk;
    char type = 'd';  ///< scalar type: 's', 'd', 'c', 'z'
    /// Rows (for Posv: number of right-hand sides, >= 1).
    std::int64_t m = 0;
    std::int64_t n = 0;  ///< columns (m >= n >= 1 for the factorizations)
    int nb = 0;          ///< tile size, >= 1
    std::uint64_t seed = 0;  ///< counter-RNG seed: same spec -> same bytes
    /// Target condition number of the generated input. For Posv a negative
    /// value requests an indefinite matrix (deliberate failure injection).
    double cond = 1e6;
    int max_iter = 0;  ///< 0 = solver default; 1 forces NotConverged paths
    int r = 0;         ///< Zolo-PD partial-fraction terms; 0 = default
    /// Execution target; Auto routes Bulk jobs onto the batched executor.
    JobTarget target = JobTarget::Auto;
    int lookahead = 0;  ///< panel lookahead depth of the QR/Cholesky solves
    /// Precision ladder request; Auto routes Bulk jobs onto the adaptive
    /// ladder (qdwh/zolopd kinds only; the direct factorizations and the
    /// distributed kind run native).
    JobPrec precision = JobPrec::Auto;

    // --- DistQdwh / resilience fields (inert for the local kinds) ---------
    int ranks = 0;  ///< virtual ranks of a DistQdwh job; 0 = default (4)
    /// Seeded chaos plan installed on the job's World (default: inert).
    /// Part of the spec on purpose: a chaos job is as reproducible as a
    /// clean one — same spec, same faults, same recovery, same bytes.
    fault::FaultPlan fault{};
    double timeout_ms = 0;  ///< comm retry timeout; 0 = RetryConfig default
    int retry_max = 0;      ///< comm resend budget; 0 = RetryConfig default
    /// Service-level attempts for this job (re-running the whole provider
    /// body with backoff); 0 = the service's RetryPolicy default.
    int max_attempts = 0;
};

/// Resolve a job's effective target from its override, QoS class, and tile
/// count. The batched executor earns its keep by coalescing many same-shape
/// tile ops into one engine task; a job with only a handful of tiles has
/// too few same-shape ops per flush window to amortize the collector's
/// group-key bookkeeping, which then sits on the critical path (measured
/// 0.74-0.88x jobs/sec on the <= 6-tile service throughput mix, native and
/// adaptive precision alike). Jobs under kBatchedMinTiles stay on plain
/// tasks even for Bulk — an explicit JobTarget::Batched override still
/// forces the executor.
inline constexpr std::int64_t kBatchedMinTiles = 9;

inline JobTarget resolve_target(JobSpec const& spec) {
    if (spec.target != JobTarget::Auto)
        return spec.target;
    std::int64_t const rows = spec.kind == JobKind::Posv ? spec.n : spec.m;
    std::int64_t const mt = (rows + spec.nb - 1) / spec.nb;
    std::int64_t const nt = (spec.n + spec.nb - 1) / spec.nb;
    if (mt * nt < kBatchedMinTiles)
        return JobTarget::Tasks;
    return spec.cls == JobClass::Bulk ? JobTarget::Batched : JobTarget::Tasks;
}

/// Resolve a job's effective precision request from its override and QoS
/// class (see JobPrec).
inline prec::Precision resolve_precision(JobSpec const& spec) {
    switch (spec.precision) {
        case JobPrec::Auto:
            return spec.cls == JobClass::Bulk ? prec::Precision::Adaptive
                                              : prec::Precision::Native;
        case JobPrec::Native: return prec::Precision::Native;
        case JobPrec::Float: return prec::Precision::Float;
        case JobPrec::Bf16: return prec::Precision::Bf16;
        case JobPrec::Adaptive: return prec::Precision::Adaptive;
    }
    return prec::Precision::Native;
}

struct JobResult {
    std::uint64_t id = 0;  ///< admission-order id assigned by the service
    JobKind kind = JobKind::Qdwh;
    JobClass cls = JobClass::Bulk;
    Status status = Status::InternalError;
    std::string error;  ///< non-empty iff status != Status::Ok

    int iterations = 0;
    bool converged = false;
    double flops = 0;  ///< measured on the job's private engine

    // --- resilience outcome ------------------------------------------------
    int attempts = 1;  ///< provider executions (1 = clean first-try run)
    /// The job ultimately succeeded but needed more than one attempt or a
    /// provider failover — the "saved by the retry machinery" marker the
    /// throughput bench reports.
    bool recovered = false;
    /// Graceful degradation fired: a faulted DistQdwh run was re-dispatched
    /// to the single-rank Qdwh provider.
    bool failed_over = false;

    double t_submit = 0;  ///< admission wall time
    double t_start = 0;   ///< body start (t_start - t_submit = queueing)
    double t_end = 0;     ///< body end

    bool ok() const { return status == Status::Ok; }
    double latency() const { return t_end - t_submit; }
};

}  // namespace tbp::svc
